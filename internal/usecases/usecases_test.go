package usecases

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/workflow"
)

func newRunner(t *testing.T, scale float64) (*workflow.Runner, *core.Session) {
	t.Helper()
	sess, err := core.NewSession(core.SessionConfig{
		Seed:  13,
		Clock: simtime.NewScaled(scale, core.DefaultOrigin),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sess.Close)
	p, err := sess.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Cores: 256, GPUs: 16})
	if err != nil {
		t.Fatal(err)
	}
	r, err := workflow.NewRunner(sess, p)
	if err != nil {
		t.Fatal(err)
	}
	return r, sess
}

func TestTableIMatchesPaper(t *testing.T) {
	out := TableI().Render()
	for _, want := range []string{
		"Cell Painting", "Signature Detection", "Uncertainty Quantification",
		"Mutation Detection Analysis", "LLM-based signature comparison",
		"hyperparameter optimization", "Post-processing",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q:\n%s", want, out)
		}
	}
	// Table I marks exactly two stages as not service-enabled
	if got := strings.Count(out, "No"); got != 2 {
		t.Fatalf("Table I has %d 'No' rows, want 2", got)
	}
}

func TestSampleTrialDeterministic(t *testing.T) {
	a := SampleTrial(rng.New(1).Derive("x"))
	b := SampleTrial(rng.New(1).Derive("x"))
	if a != b {
		t.Fatal("same seed produced different trials")
	}
	if a.LearningRate <= 0 || a.BatchSize <= 0 {
		t.Fatalf("trial = %+v", a)
	}
}

func TestCellPaintingPipelineRuns(t *testing.T) {
	r, sess := newRunner(t, 1_000_000) // minutes-scale workload, heavy compression
	cfg := CellPaintingConfig{
		DatasetBytes: 64 << 20, // 64 MB test-scale dataset
		Shards:       4,
		HPOTrials:    4,
		TrainTime:    rng.ConstDuration(2 * time.Minute),
	}
	p := CellPainting(cfg, sess.RNG())
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := r.Run(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	fetch, _ := rep.StageReport("fetch-dataset")
	prep, _ := rep.StageReport("preprocess-augment")
	train, _ := rep.StageReport("train-hpo")
	if prep.Tasks != 4 || train.Tasks != 4 || fetch.Tasks != 1 {
		t.Fatalf("task counts: fetch=%d prep=%d train=%d", fetch.Tasks, prep.Tasks, train.Tasks)
	}
	// asynchronous coupling (§II-A): training starts before preprocessing
	// finishes (gated on the first shard, not the full set)
	if !train.Started.Before(prep.Finished) {
		t.Fatal("training did not overlap preprocessing")
	}
	// every trial carries its hyperparameters
	if got := sess.PilotManager().List()[0].Stage().BytesUnder("delta:/scratch/cellpainting/processed/"); got <= 0 {
		t.Fatal("no processed data staged")
	}
}

func TestSignaturePipelineStructure(t *testing.T) {
	cfg := SignatureConfig{}
	p := Signature(cfg, rng.New(1))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Stages) != 3 {
		t.Fatalf("stages without LLM = %d, want 3", len(p.Stages))
	}
	cfg.UseLLM = true
	p = Signature(cfg, rng.New(1))
	if len(p.Stages) != 4 {
		t.Fatalf("stages with LLM = %d, want 4", len(p.Stages))
	}
	// paper scale: 15 samples
	if got := len(p.Stages[0].Tasks); got != 15 {
		t.Fatalf("VEP tasks = %d, want 15", got)
	}
	// VEP memory requirement
	if p.Stages[0].Tasks[0].MemGB != 3 {
		t.Fatalf("VEP memory = %v GB, want 3", p.Stages[0].Tasks[0].MemGB)
	}
}

func TestSignaturePipelineRunsWithLLM(t *testing.T) {
	r, _ := newRunner(t, 1_000_000)
	coll := metrics.NewCollector()
	cfg := SignatureConfig{
		Samples:    4,
		VEPTime:    rng.ConstDuration(90 * time.Second),
		EnrichTime: rng.ConstDuration(60 * time.Second),
		UseLLM:     true,
		LLMQueries: 2,
		Collector:  coll,
	}
	p := Signature(cfg, rng.New(2))
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := r.Run(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if coll.Count("sig.llm.inference") != 2 {
		t.Fatalf("LLM queries recorded = %d, want 2", coll.Count("sig.llm.inference"))
	}
	llm, ok := rep.StageReport("llm-signature-comparison")
	if !ok || llm.Services != 1 {
		t.Fatalf("LLM stage report = %+v", llm)
	}
	// ordering: annotation strictly precedes enrichment
	ann, _ := rep.StageReport("vep-annotation")
	enr, _ := rep.StageReport("pathway-enrichment")
	if enr.Started.Before(ann.Finished) {
		t.Fatal("enrichment started before annotation finished")
	}
}

func TestSignatureComputePipelineEndToEnd(t *testing.T) {
	// Compute mode: the pipeline performs real annotation, enrichment and
	// regression on synthetic data. The dose ladder across samples must
	// yield a positive dose-response slope on the radiation pathway.
	r, sess := newRunner(t, 1_000_000)
	res := &SignatureResults{}
	cfg := SignatureConfig{
		Samples:           8,
		VEPTime:           rng.ConstDuration(90 * time.Second),
		EnrichTime:        rng.ConstDuration(60 * time.Second),
		Compute:           true,
		Results:           res,
		VariantsPerSample: 400,
	}
	p := Signature(cfg, sess.RNG())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if _, err := r.Run(ctx, p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if res.Hits[i] == nil {
			t.Fatalf("sample %d has no hits", i)
		}
		if _, ok := res.TopPathway(i); !ok {
			t.Fatalf("sample %d has no enrichment", i)
		}
	}
	fit := res.DoseFit()
	if fit.Slope <= 0 {
		t.Fatalf("dose-response slope %v, want positive (hotspot burden grows with dose)", fit.Slope)
	}
	// the highest-dose sample should rank radiation-response at the top
	top, _ := res.TopPathway(7)
	if top.Pathway != "radiation-response" {
		t.Fatalf("high-dose sample's top pathway = %s (p=%g)", top.Pathway, top.PValue)
	}
}

func TestHPOCampaignOnRuntime(t *testing.T) {
	sess, err := core.NewSession(core.SessionConfig{
		Seed:  31,
		Clock: simtime.NewScaled(1_000_000, core.DefaultOrigin),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	p, err := sess.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Cores: 256, GPUs: 16})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	study, err := RunHPOCampaign(ctx, sess, p, HPOCampaignConfig{
		Rounds: 3, TrialsPerRound: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	trials := study.Trials()
	if len(trials) != 12 {
		t.Fatalf("trials = %d, want 12", len(trials))
	}
	best, err := study.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Value > 1.5 {
		t.Fatalf("best objective %v implausibly bad after 12 trials", best.Value)
	}
	// GPUs released after the campaign
	for _, node := range p.Nodes() {
		if node.FreeGPUs() != node.Spec().GPUs {
			t.Fatalf("node %s leaked GPUs", node.Name())
		}
	}
}

func TestUQPipelineHierarchy(t *testing.T) {
	cfg := UQConfig{}
	if got := cfg.TaskCount(); got != 12 { // 2 methods × 3 seeds × 2 models
		t.Fatalf("default UQ task count = %d, want 12", got)
	}
	p := UQ(cfg)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Stages[1].Tasks); got != 12 {
		t.Fatalf("fine-tune tasks = %d", got)
	}
	// three-level hierarchy visible in metadata
	meta := p.Stages[1].Tasks[0].Metadata
	for _, k := range []string{"model", "method", "seed"} {
		if meta[k] == "" {
			t.Fatalf("metadata missing %q: %v", k, meta)
		}
	}
}

func TestUQPipelineRuns(t *testing.T) {
	r, _ := newRunner(t, 100000)
	cfg := UQConfig{
		Methods:      []string{"bayesian-lora"},
		Seeds:        2,
		Models:       []string{"llama-8b"},
		FinetuneTime: rng.ConstDuration(30 * time.Minute),
	}
	p := UQ(cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := r.Run(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	ft, _ := rep.StageReport("uq-finetuning")
	if ft.Tasks != 2 {
		t.Fatalf("fine-tune tasks = %d", ft.Tasks)
	}
	// concurrency: 2 GPU tasks of 30 min on 16 GPUs must overlap — the
	// stage must take well under the ~60 min a serial run would need
	if ft.Duration() > 55*time.Minute {
		t.Fatalf("fine-tuning stage took %v, not concurrent", ft.Duration())
	}
}

func TestUQConfigDefaultsPreserved(t *testing.T) {
	cfg := UQConfig{Methods: []string{"a", "b", "c"}, Seeds: 5, Models: []string{"m"}}
	if got := cfg.TaskCount(); got != 15 {
		t.Fatalf("TaskCount = %d, want 15", got)
	}
	if len(cfg.Methods) != 3 {
		t.Fatal("TaskCount mutated the config")
	}
}

// Integration tests: cross-module scenarios exercising the full stack —
// hybrid local/remote inference, mixed task+service workloads, failure
// injection with client-side rerouting, the Updater stream, and
// determinism of the calibrated models.
package repro

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/llm"
	"repro/internal/loadbal"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/proto"
	"repro/internal/restapi"
	"repro/internal/rng"
	"repro/internal/serving"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/states"
	"repro/internal/usecases"
	"repro/internal/workflow"
)

func newIntSession(t *testing.T, scale float64) *core.Session {
	t.Helper()
	sess, err := core.NewSession(core.SessionConfig{
		Seed:  99,
		Clock: simtime.NewScaled(scale, core.DefaultOrigin),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sess.Close)
	return sess
}

// TestHybridLocalRemoteInference runs the paper's headline scenario: one
// client consumes a local (Delta, msgq) and a remote (R3, msgq over WAN)
// model instance through identical interfaces, and the remote one costs
// more communication time.
func TestHybridLocalRemoteInference(t *testing.T) {
	sess := newIntSession(t, 1000)
	delta, err := sess.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Cores: 256, GPUs: 16})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := sess.PilotManager().Submit(spec.PilotDescription{Platform: "r3", Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	localSvc, err := delta.Services().Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "local", Cores: 1},
		Model:           "noop", ProbeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	remoteSvc, err := r3.Services().Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "remote", Cores: 1},
		Model:           "noop", ProbeInterval: time.Hour, Persistent: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := delta.Services().WaitReady(ctx, localSvc.UID()); err != nil {
		t.Fatal(err)
	}
	if err := r3.Services().WaitReady(ctx, remoteSvc.UID()); err != nil {
		t.Fatal(err)
	}

	clientAddr := platform.Addr("delta", delta.Nodes()[0].Name(), "client")
	measure := func(ep proto.Endpoint) time.Duration {
		cl, err := sess.Dial(clientAddr, ep)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		coll := metrics.NewCollector()
		for i := 0; i < 32; i++ {
			_, bd, err := cl.Infer(ctx, "ping", 0)
			if err != nil {
				t.Fatal(err)
			}
			coll.Add("comm", bd.Components["communication"])
		}
		return coll.Stats("comm").Mean
	}
	localComm := measure(localSvc.Endpoint())
	remoteComm := measure(remoteSvc.Endpoint())
	if float64(remoteComm) < 1.2*float64(localComm) {
		t.Fatalf("remote communication %v not clearly above local %v", remoteComm, localComm)
	}
}

// TestFailureInjectionWithPoolRerouting kills one of three services
// mid-stream; the liveness probe withdraws its endpoint and the pool
// keeps serving from the survivors.
func TestFailureInjectionWithPoolRerouting(t *testing.T) {
	sess := newIntSession(t, 100000)
	p, err := sess.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Cores: 256, GPUs: 16})
	if err != nil {
		t.Fatal(err)
	}
	sm := sess.ServiceManager()
	sm.AddPilot(p)
	var uids []string
	for i := 0; i < 3; i++ {
		inst, err := sm.Submit(spec.ServiceDescription{
			TaskDescription: spec.TaskDescription{Name: fmt.Sprintf("s%d", i), Cores: 1},
			Model:           "noop",
			ProbeInterval:   2 * time.Second, // fast probing at this scale
		})
		if err != nil {
			t.Fatal(err)
		}
		uids = append(uids, inst.UID())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sm.WaitReady(ctx, uids...); err != nil {
		t.Fatal(err)
	}
	pool, err := sess.Pool("delta//client", "noop", loadbal.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	for i := 0; i < 6; i++ {
		if _, _, err := pool.Infer(ctx, "x", 0); err != nil {
			t.Fatal(err)
		}
	}
	// kill the first service and wait for the probe to withdraw it
	victim, _ := sm.Get(uids[0])
	victim.Kill()
	deadline := time.Now().Add(5 * time.Second)
	for len(sm.Endpoints("noop")) != 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := len(sm.Endpoints("noop")); got != 2 {
		t.Fatalf("endpoints after kill = %d, want 2", got)
	}
	// the pool must keep serving (eviction of the dead connection may cost
	// one failed attempt, so allow retries)
	served := 0
	for i := 0; i < 12 && served < 6; i++ {
		if _, _, err := pool.Infer(ctx, "x", 0); err == nil {
			served++
		}
	}
	if served < 6 {
		t.Fatalf("only %d/6 post-failure requests served", served)
	}
}

// TestHybridWorkflowTasksAndServices runs a workflow mixing plain compute
// tasks with a service stage whose clients are function tasks — the
// paper's AI-out-HPC coupling in one pipeline.
func TestHybridWorkflowTasksAndServices(t *testing.T) {
	sess := newIntSession(t, 100000)
	p, err := sess.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Cores: 256, GPUs: 16})
	if err != nil {
		t.Fatal(err)
	}
	runner, err := workflow.NewRunner(sess, p)
	if err != nil {
		t.Fatal(err)
	}
	var inferences int
	var mu sync.Mutex
	pipe := &workflow.Pipeline{Name: "hybrid", Stages: []*workflow.Stage{
		{
			Name: "hpc-simulate",
			Tasks: []spec.TaskDescription{
				{Name: "md-0", Cores: 32, Duration: rng.ConstDuration(time.Minute)},
				{Name: "md-1", Cores: 32, Duration: rng.ConstDuration(time.Minute)},
			},
		},
		{
			Name:  "ml-analyze",
			After: []string{"hpc-simulate"},
			Services: []spec.ServiceDescription{{
				TaskDescription: spec.TaskDescription{Name: "analyzer", GPUs: 1},
				Model:           "llama-8b", ProbeInterval: time.Hour,
			}},
			Post: func(ctx context.Context, s *core.Session) error {
				eps := s.ServiceManager().Endpoints("llama-8b")
				if len(eps) != 1 {
					return fmt.Errorf("want 1 endpoint, got %d", len(eps))
				}
				cl, err := s.Dial("delta//analyzer-client", eps[0])
				if err != nil {
					return err
				}
				defer cl.Close()
				for i := 0; i < 3; i++ {
					if _, _, err := cl.Infer(ctx, "analyze trajectory", 16); err != nil {
						return err
					}
					mu.Lock()
					inferences++
					mu.Unlock()
				}
				return nil
			},
		},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if _, err := runner.Run(ctx, pipe); err != nil {
		t.Fatal(err)
	}
	if inferences != 3 {
		t.Fatalf("inferences = %d", inferences)
	}
	// services terminated, resources restored
	if got := len(sess.ServiceManager().Endpoints("llama-8b")); got != 0 {
		t.Fatalf("%d endpoints left after pipeline", got)
	}
}

// TestRESTRemoteThroughSessionDial registers a genuine HTTP REST model
// service as a remote endpoint and consumes it through the same
// Session.Dial used for local services.
func TestRESTRemoteThroughSessionDial(t *testing.T) {
	sess := newIntSession(t, 100000)
	spec_, err := llm.Lookup("llama-8b")
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(4)
	srv, err := serving.New(serving.Config{
		UID:     "r3.rest.0001",
		Backend: serving.LLMBackend{M: llm.NewInstance(spec_, sess.Clock(), src.Derive("m"))},
		Clock:   sess.Clock(),
		Src:     src.Derive("s"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	g, err := restapi.NewGateway(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	sess.RegisterRemote(g.Endpoint())
	eps := sess.ServiceManager().Endpoints("llama-8b")
	if len(eps) != 1 || eps[0].Protocol != "rest" {
		t.Fatalf("endpoints = %+v", eps)
	}
	cl, err := sess.Dial("delta//rest-client", eps[0])
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	reply, bd, err := cl.Infer(context.Background(), "remote over real HTTP", 16)
	if err != nil {
		t.Fatal(err)
	}
	if reply.OutputTokens < 1 || bd.Components["inference"] <= 0 {
		t.Fatalf("reply = %+v bd = %+v", reply, bd)
	}
}

// TestUpdaterObservesServiceLifecycle subscribes to the Updater channel
// and watches a service task progress through its extended state model.
func TestUpdaterObservesServiceLifecycle(t *testing.T) {
	sess := newIntSession(t, 100000)
	sub, err := sess.SubscribeUpdates(512, "service")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	p, err := sess.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Cores: 256, GPUs: 16})
	if err != nil {
		t.Fatal(err)
	}
	// wire service state updates: pilot's service manager machines are
	// internal, so observe via polling the instance + the updates channel
	// for task entities; service transitions flow through the same
	// StateCallback when wired — here we assert the registry-visible
	// lifecycle.
	sm := sess.ServiceManager()
	sm.AddPilot(p)
	inst, err := sm.Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "watched", Cores: 1},
		Model:           "noop", ProbeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sm.WaitReady(ctx, inst.UID()); err != nil {
		t.Fatal(err)
	}
	if inst.State() != states.ServiceActive {
		t.Fatalf("state = %s", inst.State())
	}
	if err := sm.Terminate(inst.UID(), true); err != nil {
		t.Fatal(err)
	}
	if inst.State() != states.ServiceDone {
		t.Fatalf("state after terminate = %s", inst.State())
	}
}

// TestExp1Determinism: the deterministic components of the bootstrap
// measurement (launch base below saturation, model init) replay exactly
// for the same seed.
func TestExp1Determinism(t *testing.T) {
	run := func() experiments.BTRow {
		res, err := experiments.RunBT(context.Background(), experiments.BTConfig{
			Counts: []int{4}, Model: "llama-8b", Scale: 20000, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows[0]
	}
	a, b := run(), run()
	if a.Init.Mean != b.Init.Mean || a.Init.Std != b.Init.Std {
		t.Fatalf("init not deterministic: %v vs %v", a.Init.Mean, b.Init.Mean)
	}
	if a.Launch.Mean != b.Launch.Mean {
		t.Fatalf("launch (below saturation) not deterministic: %v vs %v", a.Launch.Mean, b.Launch.Mean)
	}
}

// TestFullLUCIDCampaign chains all three use-case pipelines in one
// session, sequentially, as the LUCID project would.
func TestFullLUCIDCampaign(t *testing.T) {
	sess := newIntSession(t, 1_000_000)
	p, err := sess.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Cores: 256, GPUs: 16})
	if err != nil {
		t.Fatal(err)
	}
	runner, err := workflow.NewRunner(sess, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	pipes := []*workflow.Pipeline{
		usecases.CellPainting(usecases.CellPaintingConfig{
			DatasetBytes: 4 << 30, Shards: 4, HPOTrials: 4,
		}, sess.RNG()),
		usecases.Signature(usecases.SignatureConfig{Samples: 5}, sess.RNG()),
		usecases.UQ(usecases.UQConfig{Seeds: 2}),
	}
	for _, pipe := range pipes {
		rep, err := runner.Run(ctx, pipe)
		if err != nil {
			t.Fatalf("%s: %v", pipe.Name, err)
		}
		if rep.Duration() <= 0 {
			t.Fatalf("%s: empty report", pipe.Name)
		}
	}
	// after the campaign every pilot resource is free again
	for _, node := range p.Nodes() {
		if node.FreeCores() != node.Spec().Cores || node.FreeGPUs() != node.Spec().GPUs {
			t.Fatalf("node %s leaked resources", node.Name())
		}
	}
}

package core

// Tests for the routed service lifecycle: router-seam placement
// (pinning, shape-aware selection), the session EndpointRegistry mirror,
// failure-driven re-placement with atomic re-publication, the
// pinned-service error path, and client behaviour across a failover
// (endpoint-caching clients erroring out vs registry-resolving clients
// recovering).

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/pilot"
	"repro/internal/platform"
	"repro/internal/spec"
	"repro/internal/states"
)

func noopService(name string) spec.ServiceDescription {
	return spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: name, Cores: 1},
		Model:           "noop",
		ProbeInterval:   time.Hour, // liveness probing irrelevant here
		StartTimeout:    time.Hour,
	}
}

// waitReplacements polls until the handle reports n re-placements.
func waitReplacements(t *testing.T, h *Service, n int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for h.Replacements() != n {
		if time.Now().After(deadline) {
			t.Fatalf("replacements = %d, want %d", h.Replacements(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServiceRoutingPinToPilot pins a service to the second pilot: the
// router is bypassed and the service bootstraps exactly there.
func TestServiceRoutingPinToPilot(t *testing.T) {
	s := newSession(t, 100000)
	sm := s.ServiceManager()
	p1, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	sm.AddPilot(p1)
	sm.AddPilot(p2)
	d := noopService("pinned")
	d.Pilot = p2.UID()
	h, err := sm.Submit(d)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sm.WaitReady(ctx, h.UID()); err != nil {
		t.Fatal(err)
	}
	if h.Pilot() != p2.UID() {
		t.Fatalf("pinned service on %s, want %s", h.Pilot(), p2.UID())
	}
	// round-robin state untouched by the pinned submit: the next unpinned
	// service goes to pilot 1 (first rotation step).
	h2, err := sm.Submit(noopService("free"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.WaitReady(ctx, h2.UID()); err != nil {
		t.Fatal(err)
	}
	if h2.Pilot() != p1.UID() {
		t.Fatalf("unpinned service on %s, want %s", h2.Pilot(), p1.UID())
	}
	// pinning to an unknown pilot fails at submit
	bad := noopService("lost")
	bad.Pilot = "pilot.nowhere.0001"
	if _, err := sm.Submit(bad); err == nil {
		t.Fatal("Submit accepted a service pinned to an unknown pilot")
	}
}

// TestServiceRoutingShapeAware drives the router seam with capacity-fit
// on mismatched pilots: a GPU service submitted with the thin (GPU-less)
// pilot first in rotation must still land on the fat pilot — the
// shape-blind seed round-robin would have wedged it.
func TestServiceRoutingShapeAware(t *testing.T) {
	s, fatP, thinP := heteroSession(t, "capacity-fit")
	sm := s.ServiceManager()
	sm.AddPilot(thinP) // thin first: round-robin would pick it
	sm.AddPilot(fatP)
	d := spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "llm", GPUs: 1},
		Model:           "llama-8b",
		ProbeInterval:   time.Hour,
		StartTimeout:    time.Hour,
	}
	h, err := sm.Submit(d)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sm.WaitReady(ctx, h.UID()); err != nil {
		t.Fatal(err)
	}
	if h.Pilot() != fatP.UID() {
		t.Fatalf("GPU service on %s, want fat pilot %s", h.Pilot(), fatP.UID())
	}
}

// TestServiceFailoverReplacesAndRepublishes is the tentpole pin: the
// pilot hosting a service dies; the session re-places the service on the
// survivor through the router, re-bootstraps it under the same UID, and
// re-publishes its endpoint with a bumped generation.
func TestServiceFailoverReplacesAndRepublishes(t *testing.T) {
	s := newSession(t, 100000)
	sm := s.ServiceManager()
	p1, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	sm.AddPilot(p1)
	sm.AddPilot(p2)
	h, err := sm.Submit(noopService("svc"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sm.WaitReady(ctx, h.UID()); err != nil {
		t.Fatal(err)
	}
	if h.Pilot() != p1.UID() {
		t.Fatalf("service on %s, want first pilot %s", h.Pilot(), p1.UID())
	}
	reg := s.EndpointRegistry()
	ep1, gen, ok := reg.Resolve(h.UID())
	if !ok || gen != 1 {
		t.Fatalf("initial publication: ok=%v gen=%d", ok, gen)
	}

	if err := p1.Shutdown(); err != nil {
		t.Fatal(err)
	}
	waitReplacements(t, h, 1)
	if err := sm.WaitReady(ctx, h.UID()); err != nil {
		t.Fatalf("re-placed service never became ready: %v", err)
	}
	if h.Pilot() != p2.UID() {
		t.Fatalf("re-placed service on %s, want survivor %s", h.Pilot(), p2.UID())
	}
	ep2, gen2, ok := reg.Resolve(h.UID())
	if !ok || gen2 != 2 {
		t.Fatalf("re-publication: ok=%v gen=%d", ok, gen2)
	}
	if ep2.Address == ep1.Address {
		t.Fatalf("re-published endpoint kept the dead address %s", ep2.Address)
	}
	if ep2.ServiceUID != h.UID() {
		t.Fatalf("stable UID broken: %s vs %s", ep2.ServiceUID, h.UID())
	}
	// the re-placed service serves
	cl, err := s.DialService(platform.Addr("delta", "", "client.0001"), h.UID())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.Infer(ctx, "post-failover", 0); err != nil {
		t.Fatalf("inference after failover: %v", err)
	}
	select {
	case <-h.Done():
		t.Fatalf("handle settled during failover: %v", h.Err())
	default:
	}
}

// TestServicePinnedSurfacesPilotStopped pins the pinned-service error
// path: no migration, the handle fails with pilot.ErrPilotStopped and the
// registry entry is withdrawn.
func TestServicePinnedSurfacesPilotStopped(t *testing.T) {
	s := newSession(t, 100000)
	sm := s.ServiceManager()
	p1, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	sm.AddPilot(p1)
	sm.AddPilot(p2)
	d := noopService("pinned")
	d.Pilot = p1.UID()
	h, err := sm.Submit(d)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sm.WaitReady(ctx, h.UID()); err != nil {
		t.Fatal(err)
	}
	if err := p1.Shutdown(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.Done():
	case <-ctx.Done():
		t.Fatal("pinned service never settled after its pilot stopped")
	}
	if !errors.Is(h.Err(), pilot.ErrPilotStopped) {
		t.Fatalf("pinned service err = %v, want pilot.ErrPilotStopped", h.Err())
	}
	if h.Replacements() != 0 {
		t.Fatalf("pinned service re-placed %d times", h.Replacements())
	}
	if _, _, ok := s.EndpointRegistry().Resolve(h.UID()); ok {
		t.Fatal("dead pinned service still resolvable")
	}
}

// TestServiceFailoverNoSurvivorFails: with no surviving pilot the service
// settles with an error instead of wedging.
func TestServiceFailoverNoSurvivorFails(t *testing.T) {
	s := newSession(t, 100000)
	sm := s.ServiceManager()
	p1, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	sm.AddPilot(p1)
	h, err := sm.Submit(noopService("svc"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sm.WaitReady(ctx, h.UID()); err != nil {
		t.Fatal(err)
	}
	if err := p1.Shutdown(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.Done():
	case <-ctx.Done():
		t.Fatal("orphaned service never settled")
	}
	if !errors.Is(h.Err(), pilot.ErrPilotStopped) {
		t.Fatalf("err = %v, want pilot.ErrPilotStopped", h.Err())
	}
}

// TestServiceFailoverClientContrast contrasts the two client styles the
// svcfail ablation measures: across a failover, a client that cached the
// raw endpoint errors on every request, while a registry-resolving client
// recovers all of them.
func TestServiceFailoverClientContrast(t *testing.T) {
	s := newSession(t, 100000)
	sm := s.ServiceManager()
	p1, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	sm.AddPilot(p1)
	sm.AddPilot(p2)
	h, err := sm.Submit(noopService("svc"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sm.WaitReady(ctx, h.UID()); err != nil {
		t.Fatal(err)
	}

	caching, err := s.Dial(platform.Addr("delta", "", "cache-client"), h.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	defer caching.Close()
	resolving, err := s.DialService(platform.Addr("delta", "", "resolve-client"), h.UID())
	if err != nil {
		t.Fatal(err)
	}
	defer resolving.Close()
	if _, _, err := caching.Infer(ctx, "pre", 0); err != nil {
		t.Fatalf("caching pre-kill: %v", err)
	}
	if _, _, err := resolving.Infer(ctx, "pre", 0); err != nil {
		t.Fatalf("resolving pre-kill: %v", err)
	}

	genBefore := s.EndpointRegistry().Generation(h.UID())
	if err := p1.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.EndpointRegistry().AwaitNewer(ctx, h.UID(), genBefore); err != nil {
		t.Fatalf("failover re-publication never landed: %v", err)
	}

	const post = 8
	cachingOK, resolvingOK := 0, 0
	for i := 0; i < post; i++ {
		if _, _, err := caching.Infer(ctx, "post", 0); err == nil {
			cachingOK++
		}
		if _, _, err := resolving.Infer(ctx, "post", 0); err == nil {
			resolvingOK++
		}
	}
	if cachingOK != 0 {
		t.Fatalf("endpoint-caching client recovered %d/%d requests against a dead address", cachingOK, post)
	}
	if resolvingOK != post {
		t.Fatalf("registry-resolving client recovered %d/%d requests", resolvingOK, post)
	}
	if resolving.Reresolved() != 1 {
		t.Fatalf("resolver re-resolved %d times, want 1", resolving.Reresolved())
	}
}

// TestServiceAgentTerminationWithdrawsRegistry: a graceful termination
// initiated below the session (agent-level Terminate — the control
// channel's CtlTerminate path) must still tombstone the session registry
// entry when the watcher settles the handle, or parked resolvers would
// wait forever for a re-publication.
func TestServiceAgentTerminationWithdrawsRegistry(t *testing.T) {
	s := newSession(t, 100000)
	sm := s.ServiceManager()
	p1, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	sm.AddPilot(p1)
	h, err := sm.Submit(noopService("svc"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sm.WaitReady(ctx, h.UID()); err != nil {
		t.Fatal(err)
	}
	// terminate below the session: the watcher, not Terminate, must clean
	// the session registry
	if err := p1.Services().Terminate(h.UID(), false); err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.Done():
	case <-ctx.Done():
		t.Fatal("agent-terminated service never settled at the session")
	}
	if h.Err() != nil {
		t.Fatalf("graceful agent termination err = %v", h.Err())
	}
	if _, _, ok := s.EndpointRegistry().Resolve(h.UID()); ok {
		t.Fatal("agent-terminated service still resolvable in the session registry")
	}
}

// TestServiceTerminateWithdrawsRegistry: graceful termination settles the
// handle without error and tombstones the registry entry.
func TestServiceTerminateWithdrawsRegistry(t *testing.T) {
	s := newSession(t, 100000)
	sm := s.ServiceManager()
	p1, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	sm.AddPilot(p1)
	h, err := sm.Submit(noopService("svc"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sm.WaitReady(ctx, h.UID()); err != nil {
		t.Fatal(err)
	}
	if err := sm.Terminate(h.UID(), true); err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.Done():
	case <-ctx.Done():
		t.Fatal("terminated service never settled")
	}
	if h.Err() != nil {
		t.Fatalf("graceful terminate err = %v", h.Err())
	}
	if h.State() != states.ServiceDone {
		t.Fatalf("state = %s", h.State())
	}
	if _, _, ok := s.EndpointRegistry().Resolve(h.UID()); ok {
		t.Fatal("terminated service still resolvable")
	}
}

package scheduler

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/rng"
)

// --- nodeIndex unit property -------------------------------------------------

// TestNodeIndexMatchesLinearScan drives random allocations and releases
// over a heterogeneous node set and checks after every step that the
// segment tree answers every demand query exactly like the seed's linear
// first-fit scan.
func TestNodeIndexMatchesLinearScan(t *testing.T) {
	src := rng.New(42)
	specs := []platform.NodeSpec{
		{Cores: 8, GPUs: 0, MemGB: 32},
		{Cores: 64, GPUs: 8, MemGB: 256},
		{Cores: 16, GPUs: 2, MemGB: 64},
	}
	var nodes []*platform.Node
	for i := 0; i < 37; i++ { // deliberately not a power of two
		sp := specs[src.Intn(len(specs))]
		nodes = append(nodes, platform.NewNode(fmt.Sprintf("n%02d", i), sp))
	}
	ix := newNodeIndex(nodes)

	linearFind := func(cores, gpus int, mem float64) int {
		for i, n := range nodes {
			fc, fg, fm := n.Free()
			if fc >= cores && fg >= gpus && fm >= mem {
				return i
			}
		}
		return -1
	}

	var live []*platform.Allocation
	for step := 0; step < 2000; step++ {
		if src.Intn(3) == 0 && len(live) > 0 {
			// release a random live allocation
			k := src.Intn(len(live))
			a := live[k]
			live = append(live[:k], live[k+1:]...)
			a.Release()
			ix.refresh(indexOf(nodes, a.Node()))
		} else {
			cores, gpus := src.Intn(10), src.Intn(3)
			mem := float64(src.Intn(64))
			want := linearFind(cores, gpus, mem)
			got := ix.find(cores, gpus, mem)
			if got != want {
				t.Fatalf("step %d: find(%d,%d,%.0f) = %d, linear scan = %d",
					step, cores, gpus, mem, got, want)
			}
			if got >= 0 {
				a := nodes[got].TryAlloc(cores, gpus, mem)
				if a == nil {
					t.Fatalf("step %d: index pointed at node %d but TryAlloc failed", step, got)
				}
				live = append(live, a)
				ix.refresh(got)
			}
		}
	}
}

// findBestExhaustive is the PR-2 best-fit query kept as a test-only
// oracle: visit every fitting leaf (pruning only non-fitting subtrees)
// and keep the least weighted leftover, ties toward the lower index.
// The augmented findBest must agree with it on every pool state.
func findBestExhaustive(ix *nodeIndex, cores, gpus int, memGB float64) int {
	best, bestScore := -1, 0.0
	var walk func(p int)
	walk = func(p int) {
		if !ix.covers(p, cores, gpus, memGB) {
			return
		}
		if p >= ix.size {
			i := p - ix.size
			if i >= len(ix.nodes) {
				return
			}
			score := float64(ix.cores[p]-cores) +
				ix.w.GPU*float64(ix.gpus[p]-gpus) +
				ix.w.Mem*(ix.mem[p]-memGB)
			if best < 0 || score < bestScore {
				best, bestScore = i, score
			}
			return
		}
		walk(2 * p)
		walk(2*p + 1)
	}
	if len(ix.nodes) > 0 {
		walk(1)
	}
	return best
}

// leftoverScore recomputes a node's weighted leftover for a demand, for
// tie verification in the differential test.
func leftoverScore(ix *nodeIndex, i, cores, gpus int, memGB float64) float64 {
	leaf := ix.size + i
	return float64(ix.cores[leaf]-cores) +
		ix.w.GPU*float64(ix.gpus[leaf]-gpus) +
		ix.w.Mem*(ix.mem[leaf]-memGB)
}

// TestFindBestMatchesExhaustiveOracle is the differential test for the
// min-leftover augmentation: on randomized mixed pools under random
// allocation/release churn, the O(log n) branch-and-bound findBest must
// pick the same node as the exhaustive least-leftover scan — or, on a
// tie, a node with exactly equal leftover.
func TestFindBestMatchesExhaustiveOracle(t *testing.T) {
	specs := []platform.NodeSpec{
		{Cores: 128, GPUs: 16, MemGB: 1024},
		{Cores: 64, GPUs: 8, MemGB: 256},
		{Cores: 16, GPUs: 0, MemGB: 64},
		{Cores: 8, GPUs: 2, MemGB: 32},
	}
	for trial := 0; trial < 5; trial++ {
		src := rng.New(uint64(9000 + trial))
		var nodes []*platform.Node
		n := 17 + src.Intn(48) // deliberately spans non-power-of-two sizes
		for i := 0; i < n; i++ {
			sp := specs[src.Intn(len(specs))]
			nodes = append(nodes, platform.NewNode(fmt.Sprintf("n%02d", i), sp))
		}
		ix := newNodeIndex(nodes)
		var live []*platform.Allocation
		for step := 0; step < 1500; step++ {
			if src.Intn(3) == 0 && len(live) > 0 {
				k := src.Intn(len(live))
				a := live[k]
				live = append(live[:k], live[k+1:]...)
				a.Release()
				ix.refresh(indexOf(nodes, a.Node()))
				continue
			}
			cores, gpus := src.Intn(20), src.Intn(4)
			mem := float64(src.Intn(96))
			got := ix.findBest(cores, gpus, mem)
			want := findBestExhaustive(ix, cores, gpus, mem)
			switch {
			case got == want:
			case got < 0 || want < 0:
				t.Fatalf("trial %d step %d: findBest(%d,%d,%.0f) = %d, oracle = %d",
					trial, step, cores, gpus, mem, got, want)
			default:
				gs := leftoverScore(ix, got, cores, gpus, mem)
				ws := leftoverScore(ix, want, cores, gpus, mem)
				if gs != ws {
					t.Fatalf("trial %d step %d: findBest(%d,%d,%.0f) = %d (leftover %v), oracle = %d (leftover %v)",
						trial, step, cores, gpus, mem, got, gs, want, ws)
				}
			}
			if got >= 0 {
				a := nodes[got].TryAlloc(cores, gpus, mem)
				if a == nil {
					t.Fatalf("trial %d step %d: findBest pointed at node %d but TryAlloc failed", trial, step, got)
				}
				live = append(live, a)
				ix.refresh(got)
			}
		}
	}
}

func indexOf(nodes []*platform.Node, n *platform.Node) int {
	for i, m := range nodes {
		if m == n {
			return i
		}
	}
	return -1
}

// --- end-to-end equivalence with the seed first-fit --------------------------

// refGrant is one grant of the reference scheduler.
type refGrant struct {
	uid   string
	node  string
	cores []int
	gpus  []int
}

// refScheduler replays the seed algorithm exactly: a strict
// (priority desc, FIFO) wait pool drained by a linear first-fit scan over
// a mirror node set whenever capacity changes.
type refScheduler struct {
	nodes   []*platform.Node
	allocs  map[string][]*platform.Allocation // uid → live mirror allocations
	waiting []waitItem
	seq     uint64
	grants  []refGrant
}

func newRefScheduler(n, cores, gpus int, memGB float64) *refScheduler {
	p := platform.New("ref", n, platform.NodeSpec{Cores: cores, GPUs: gpus, MemGB: memGB})
	return &refScheduler{nodes: p.Nodes(), allocs: make(map[string][]*platform.Allocation)}
}

func (r *refScheduler) submit(req Request) {
	r.seq++
	r.waiting = append(r.waiting, waitItem{req: req, seq: r.seq})
	r.drain()
}

func (r *refScheduler) release(uid string) {
	q := r.allocs[uid]
	a := q[0]
	r.allocs[uid] = q[1:]
	a.Release()
	r.drain()
}

func (r *refScheduler) drain() {
	for len(r.waiting) > 0 {
		// strict priority, FIFO within class: pick min (priority desc, seq)
		best := 0
		for i := 1; i < len(r.waiting); i++ {
			bi, bb := r.waiting[i], r.waiting[best]
			if bi.req.Priority > bb.req.Priority ||
				(bi.req.Priority == bb.req.Priority && bi.seq < bb.seq) {
				best = i
			}
		}
		head := r.waiting[best]
		var alloc *platform.Allocation
		for _, n := range r.nodes {
			if a := n.TryAlloc(head.req.Cores, head.req.GPUs, head.req.MemGB); a != nil {
				alloc = a
				break
			}
		}
		if alloc == nil {
			return // head blocked: strict no-backfill
		}
		r.waiting = append(r.waiting[:best], r.waiting[best+1:]...)
		r.allocs[head.req.UID] = append(r.allocs[head.req.UID], alloc)
		r.grants = append(r.grants, refGrant{
			uid:   head.req.UID,
			node:  alloc.Node().Name(),
			cores: alloc.Cores,
			gpus:  alloc.GPUs,
		})
	}
}

// TestIndexedPlacementMatchesSeedFirstFit is the property test for the
// scheduler rebuild: on randomized submit/release traces the indexed,
// batch-draining scheduler must grant the identical placement sequence —
// same order, same UIDs, same nodes, same slot indices — as the seed's
// lock-per-grant linear first-fit.
func TestIndexedPlacementMatchesSeedFirstFit(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		src := rng.New(uint64(1000 + trial))
		const nNodes, nCores, nGPUs = 5, 16, 4
		const memGB = 256.0 // must mirror the nodes() helper's spec exactly

		c := newCollector()
		s := New(nodes(nNodes, nCores, nGPUs), c.fn)
		ref := newRefScheduler(nNodes, nCores, nGPUs, memGB)

		granted := make(map[string][]Placement) // uid → live real placements
		nGrants := 0
		syncGrants := func() {
			got := c.waitN(t, len(ref.grants))
			for ; nGrants < len(ref.grants); nGrants++ {
				g, want := got[nGrants], ref.grants[nGrants]
				if g.Req.UID != want.uid || g.Alloc.Node().Name() != "test-"+nodeSuffix(want.node) {
					t.Fatalf("trial %d grant %d: got %s on %s, seed first-fit gives %s on %s",
						trial, nGrants, g.Req.UID, g.Alloc.Node().Name(), want.uid, want.node)
				}
				if !equalInts(g.Alloc.Cores, want.cores) || !equalInts(g.Alloc.GPUs, want.gpus) {
					t.Fatalf("trial %d grant %d (%s): slots %v/%v, seed gives %v/%v",
						trial, nGrants, g.Req.UID, g.Alloc.Cores, g.Alloc.GPUs, want.cores, want.gpus)
				}
				granted[g.Req.UID] = append(granted[g.Req.UID], g)
			}
		}

		var releasable []string
		for ev := 0; ev < 120; ev++ {
			if src.Intn(3) != 0 || len(releasable) == 0 {
				uid := fmt.Sprintf("t%03d", ev)
				req := Request{
					UID:      uid,
					Cores:    src.Intn(nCores) + 1,
					GPUs:     src.Intn(nGPUs + 1),
					MemGB:    float64(src.Intn(32)),
					Priority: src.Intn(3) * 10,
				}
				if err := s.Submit(req); err != nil {
					t.Fatalf("trial %d: submit %s: %v", trial, uid, err)
				}
				ref.submit(req)
				releasable = append(releasable, uid)
			} else {
				k := src.Intn(len(releasable))
				uid := releasable[k]
				q := granted[uid]
				if len(q) == 0 {
					continue // not granted yet (blocked in both schedulers)
				}
				releasable = append(releasable[:k], releasable[k+1:]...)
				granted[uid] = q[1:]
				s.Release(q[0].Alloc)
				ref.release(uid)
			}
			syncGrants()
		}
		// final quiescence: both wait pools must agree
		time.Sleep(10 * time.Millisecond)
		if w := s.Waiting(); w != len(ref.waiting) {
			t.Fatalf("trial %d: %d waiting, seed leaves %d", trial, w, len(ref.waiting))
		}
		s.Close()
	}
}

func nodeSuffix(refName string) string {
	// ref nodes are "ref-nodeNNNN", real test nodes "test-nodeNNNN"
	return refName[len("ref-"):]
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestNegativeDemandRejected pins the guard against demand values no node
// can ever grant: Node.TryAlloc rejects negative requests, so admitting
// one would leave it wedged at the wait-pool head (and, with the index's
// miss-recovery loop, livelock the scheduler goroutine).
func TestNegativeDemandRejected(t *testing.T) {
	c := newCollector()
	s := New(nodes(1, 8, 2), c.fn)
	defer s.Close()
	for _, req := range []Request{
		{UID: "neg-cores", Cores: -1},
		{UID: "neg-gpus", GPUs: -2},
		{UID: "neg-mem", MemGB: -0.5},
	} {
		var uns ErrUnsatisfiable
		if err := s.Submit(req); !errors.As(err, &uns) {
			t.Fatalf("Submit(%s) = %v, want ErrUnsatisfiable", req.UID, err)
		}
	}
	// the scheduler must still be fully operational
	if err := s.Submit(Request{UID: "ok", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	if got := c.waitN(t, 1); got[0].Req.UID != "ok" {
		t.Fatalf("placement = %+v", got[0])
	}
}

// TestOutOfBandReleaseRecovered verifies the release-epoch re-sync: when
// an allocation is released directly (bypassing Scheduler.Release, as the
// service manager's failure paths do), the next scheduling kick must still
// see the freed capacity.
func TestOutOfBandReleaseRecovered(t *testing.T) {
	c := newCollector()
	s := New(nodes(1, 4, 0), c.fn)
	defer s.Close()
	_ = s.Submit(Request{UID: "a", Cores: 4})
	first := c.waitN(t, 1)[0]
	_ = s.Submit(Request{UID: "b", Cores: 4})
	first.Alloc.Release() // behind the scheduler's back: no index refresh
	s.poke()              // a bare kick, as any later Submit would deliver
	got := c.waitN(t, 2)
	if got[1].Req.UID != "b" {
		t.Fatalf("placement after out-of-band release = %s", got[1].Req.UID)
	}
}

// TestIndexPriorityPreservation floods a saturated pilot with requests of
// mixed priorities and verifies the indexed scheduler still grants in
// strict (priority desc, submission order) sequence as capacity trickles
// back — the §III service-before-task guarantee.
func TestIndexPriorityPreservation(t *testing.T) {
	c := newCollector()
	s := New(nodes(2, 4, 0), c.fn)
	defer s.Close()
	// saturate both nodes
	_ = s.Submit(Request{UID: "fill-a", Cores: 4})
	_ = s.Submit(Request{UID: "fill-b", Cores: 4})
	fillers := c.waitN(t, 2)

	prios := []int{0, 50, 10, 50, 0, 100, 10, 100, 0, 50}
	for i, p := range prios {
		_ = s.Submit(Request{UID: fmt.Sprintf("q-%02d-p%03d", i, p), Cores: 4, Priority: p})
	}
	want := []string{
		"q-05-p100", "q-07-p100",
		"q-01-p050", "q-03-p050", "q-09-p050",
		"q-02-p010", "q-06-p010",
		"q-00-p000", "q-04-p000", "q-08-p000",
	}
	for _, f := range fillers {
		s.Release(f.Alloc)
	}
	seen := 2
	for _, wantUID := range want {
		got := c.waitN(t, seen+1)
		if uid := got[seen].Req.UID; uid != wantUID {
			t.Fatalf("grant %d: %s, want %s", seen-2, uid, wantUID)
		}
		s.Release(got[seen].Alloc)
		seen++
	}
}

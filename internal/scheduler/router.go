package scheduler

import "sync"

// Router dispatches placements to per-UID waiters. A pilot agent creates
// one Router and installs Route as the scheduler's PlaceFn; managers call
// Expect before submitting so the placement callback finds its consumer.
type Router struct {
	mu    sync.Mutex
	chans map[string]chan Placement
}

// NewRouter returns an empty Router.
func NewRouter() *Router {
	return &Router{chans: make(map[string]chan Placement)}
}

// Expect registers interest in the placement of uid. It must be called
// before (or concurrently with) the scheduler granting the placement.
func (r *Router) Expect(uid string) <-chan Placement {
	ch := make(chan Placement, 1)
	r.mu.Lock()
	r.chans[uid] = ch
	r.mu.Unlock()
	return ch
}

// Cancel removes interest in uid (e.g. submission failed, task context
// cancelled, pilot stopping). It reports whether the waiter was still
// registered: a false return means Route already committed to this uid —
// exactly one placement is in flight to the channel and the caller must
// receive and release it, or the allocation leaks.
func (r *Router) Cancel(uid string) bool {
	r.mu.Lock()
	_, ok := r.chans[uid]
	delete(r.chans, uid)
	r.mu.Unlock()
	return ok
}

// Route delivers p to its waiter and reports whether one existed. Use as
// the scheduler's PlaceFn (or as part of a composite one).
func (r *Router) Route(p Placement) bool {
	r.mu.Lock()
	ch, ok := r.chans[p.Req.UID]
	if ok {
		delete(r.chans, p.Req.UID)
	}
	r.mu.Unlock()
	if ok {
		ch <- p
	}
	return ok
}

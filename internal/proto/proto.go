// Package proto defines the wire protocol of the runtime: message
// envelopes, typed payloads, and length-prefixed framing for stream
// transports. It is the Go analogue of RADICAL-Pilot's ZeroMQ message
// schema: every client↔agent and task↔service exchange in this repository
// is one of these messages.
package proto

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// Kind discriminates envelope payloads.
type Kind string

// Message kinds. The set mirrors the channels in the paper's Fig. 2:
// submission (1), scheduling (2), execution (3), service API calls (4/5),
// and state/information updates (6).
const (
	KindSubmit        Kind = "submit"         // client → manager: new descriptions
	KindSchedule      Kind = "schedule"       // manager → scheduler: placement request
	KindExecute       Kind = "execute"        // scheduler → executor: launch order
	KindRequest       Kind = "request"        // task → service: API call
	KindReply         Kind = "reply"          // service → task: API response
	KindControl       Kind = "control"        // manager → service: control command
	KindStateUpdate   Kind = "state_update"   // any → updater: entity state change
	KindEndpoint      Kind = "endpoint"       // service → registry: endpoint publication
	KindHeartbeat     Kind = "heartbeat"      // service → manager: liveness
	KindLoadReport    Kind = "load_report"    // observer → registry: balancing gauge
	KindRegister      Kind = "register"       // component → session: registration
	KindStageRequest  Kind = "stage_request"  // manager → stager: data movement
	KindStageComplete Kind = "stage_complete" // stager → manager: staging done
	KindError         Kind = "error"          // any → any: failure report
)

// Envelope is the single message type carried by every channel.
//
// Besides the wire form (Body), an envelope built by NewEnvelope retains
// its payload value in an unexported field. In-process transports hand the
// envelope to the receiver by value, so Decode can satisfy matching
// payload types with a struct copy instead of a JSON parse — the dominant
// per-request CPU and allocation cost on the REQ/REP hot path. For those
// fast-path payload types Body stays nil until first wire access
// (WireBody): an envelope that never leaves the address space never pays
// json.Marshal either. The snapshot field is invisible to encoding/json:
// an envelope that crosses a real wire (TCP framing) loses it and Decode
// falls back to the JSON body.
type Envelope struct {
	Kind Kind            `json:"kind"`
	ID   uint64          `json:"id"`           // per-sender sequence number
	From string          `json:"from"`         // sender UID
	To   string          `json:"to,omitempty"` // recipient UID (empty: topic/broadcast)
	Sent time.Time       `json:"sent"`         // clock time at send
	Body json.RawMessage `json:"body,omitempty"`

	// typed is the in-process payload snapshot; nil after wire transport
	// or for payload types without a fast path.
	typed any
}

// NewEnvelope builds a fresh envelope around body.
//
// Fast-path payload types (the value-typed snapshots Decode understands)
// are kept unencoded: the JSON body materializes lazily on first wire
// access via WireBody, so an envelope that lives and dies inside one
// address space never pays json.Marshal at all. All other payloads are
// encoded eagerly — a pointer or map payload must be snapshotted at send
// time, before its referents can mutate.
func NewEnvelope(kind Kind, id uint64, from, to string, sent time.Time, body any) (Envelope, error) {
	env := Envelope{Kind: kind, ID: id, From: from, To: to, Sent: sent}
	switch body.(type) {
	// Value-typed payloads with no reference fields are true snapshots
	// (boxed copies): safe to keep for the in-process decode fast path
	// and to re-encode later for the wire. Pointer payloads and payloads
	// holding maps (Control.Args) are deliberately excluded — their
	// referents could mutate after send.
	case InferenceRequest, InferenceReply, Heartbeat, LoadReport, StateUpdate, Endpoint, ErrorBody:
		env.typed = body
		return env, nil
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return Envelope{}, fmt.Errorf("proto: marshal %s body: %w", kind, err)
	}
	env.Body = raw
	return env, nil
}

// WireBody returns the envelope's JSON body, encoding the in-process
// payload snapshot on first wire access. Transports call it before
// framing or charging size-dependent link costs; in-process deliveries
// that decode via the typed snapshot never trigger the encode.
func (e *Envelope) WireBody() (json.RawMessage, error) {
	if e.Body == nil && e.typed != nil {
		raw, err := json.Marshal(e.typed)
		if err != nil {
			return nil, fmt.Errorf("proto: marshal %s body: %w", e.Kind, err)
		}
		e.Body = raw
	}
	return e.Body, nil
}

// Decode unmarshals the envelope body into out, validating the kind first.
// When the envelope still carries its in-process payload snapshot and out
// is a pointer to the same payload type, the decode is a plain struct copy.
func (e Envelope) Decode(want Kind, out any) error {
	if e.Kind != want {
		return fmt.Errorf("proto: decode kind %q as %q", e.Kind, want)
	}
	if e.typed != nil {
		switch dst := out.(type) {
		case *InferenceRequest:
			if v, ok := e.typed.(InferenceRequest); ok {
				*dst = v
				return nil
			}
		case *InferenceReply:
			if v, ok := e.typed.(InferenceReply); ok {
				*dst = v
				return nil
			}
		case *Heartbeat:
			if v, ok := e.typed.(Heartbeat); ok {
				*dst = v
				return nil
			}
		case *LoadReport:
			if v, ok := e.typed.(LoadReport); ok {
				*dst = v
				return nil
			}
		case *StateUpdate:
			if v, ok := e.typed.(StateUpdate); ok {
				*dst = v
				return nil
			}
		case *Endpoint:
			if v, ok := e.typed.(Endpoint); ok {
				*dst = v
				return nil
			}
		case *ErrorBody:
			if v, ok := e.typed.(ErrorBody); ok {
				*dst = v
				return nil
			}
		}
	}
	raw, err := (&e).WireBody() // lazy body: materialize for the JSON path
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("proto: decode %s body: %w", e.Kind, err)
	}
	return nil
}

// EncodedBodyLen returns the length of the envelope's JSON body, encoding
// a lazily-held payload snapshot just to measure it (the encode result is
// not cached — the receiver is a value so hot-path callers' envelopes do
// not escape to the heap). Transports that charge for bandwidth use it;
// latency-only links never need a size.
func (e Envelope) EncodedBodyLen() int {
	if e.Body == nil && e.typed != nil {
		raw, err := json.Marshal(e.typed)
		if err != nil {
			return 0
		}
		return len(raw)
	}
	return len(e.Body)
}

// InferenceRequest is the payload of a KindRequest message: one API call
// from a client task to a model service (paper §IV: a prompt sent via the
// service interface).
type InferenceRequest struct {
	RequestUID string `json:"request_uid"`
	ClientUID  string `json:"client_uid"`
	Model      string `json:"model"` // model name, e.g. "llama-8b" or "noop"
	Prompt     string `json:"prompt"`
	MaxTokens  int    `json:"max_tokens,omitempty"`
	// NoBatch excludes the request from batched inference: a server with
	// continuous batching enabled serves it alone rather than coalescing
	// it with compatible queued requests.
	NoBatch bool `json:"no_batch,omitempty"`
	// SentAt is the client clock time immediately before the request
	// entered the transport; used for RT decomposition.
	SentAt time.Time `json:"sent_at"`
}

// Timing carries the service-side timestamps used to decompose response
// time into the paper's communication / service / inference components.
type Timing struct {
	ReceivedAt   time.Time `json:"received_at"` // request hit the service socket
	DequeuedAt   time.Time `json:"dequeued_at"` // request left the service queue
	InferStartAt time.Time `json:"infer_start_at"`
	InferEndAt   time.Time `json:"infer_end_at"`
	RepliedAt    time.Time `json:"replied_at"` // reply entered the transport
}

// QueueTime returns how long the request waited in the service queue.
func (t Timing) QueueTime() time.Duration { return t.DequeuedAt.Sub(t.ReceivedAt) }

// ServiceTime returns the service-side handling time excluding inference:
// parse/queue/deserialize plus reply formation (paper Exp 2 "service").
func (t Timing) ServiceTime() time.Duration {
	return t.RepliedAt.Sub(t.ReceivedAt) - t.InferTime()
}

// InferTime returns the pure model inference duration (paper "inference").
func (t Timing) InferTime() time.Duration { return t.InferEndAt.Sub(t.InferStartAt) }

// InferenceReply is the payload of a KindReply message.
type InferenceReply struct {
	RequestUID   string `json:"request_uid"`
	ServiceUID   string `json:"service_uid"`
	Model        string `json:"model"`
	Text         string `json:"text"`
	PromptTokens int    `json:"prompt_tokens"`
	OutputTokens int    `json:"output_tokens"`
	Timing       Timing `json:"timing"`
	Err          string `json:"err,omitempty"`
}

// ControlCommand names a service control operation.
type ControlCommand string

// Control commands supported by the service control channel.
const (
	CtlPrepare   ControlCommand = "prepare"   // pre-load / warm the capability
	CtlDrain     ControlCommand = "drain"     // stop accepting, finish queue
	CtlTerminate ControlCommand = "terminate" // stop now
	CtlPing      ControlCommand = "ping"      // liveness probe
)

// Control is the payload of a KindControl message.
type Control struct {
	Command ControlCommand    `json:"command"`
	Target  string            `json:"target"` // service UID
	Args    map[string]string `json:"args,omitempty"`
}

// Endpoint is the payload of a KindEndpoint message: a service publishing
// where it can be reached (paper Exp 1 "publish" component).
type Endpoint struct {
	ServiceUID  string    `json:"service_uid"`
	Model       string    `json:"model"`
	Address     string    `json:"address"`  // transport address (msgq or URL)
	Protocol    string    `json:"protocol"` // "msgq" | "rest"
	Node        string    `json:"node,omitempty"`
	PublishedAt time.Time `json:"published_at"`
	// Generation counts publications of this service UID: every re-publish
	// (e.g. after a failover re-placement) increments it. Clients that
	// cache an endpoint compare generations against the session endpoint
	// registry to detect that their copy went stale and re-resolve.
	Generation uint64 `json:"generation,omitempty"`
	// Incarnation is the session incarnation that published the endpoint
	// (minted per crash recovery). The session EndpointRegistry fences on
	// it: a publication stamped with an incarnation below the fence is a
	// zombie from before a recovery and is rejected, so it can never
	// clobber its re-placed successor. Zero for journal-less sessions.
	Incarnation uint64 `json:"incarnation,omitempty"`
}

// StateUpdate is the payload of a KindStateUpdate message.
type StateUpdate struct {
	EntityUID string    `json:"entity_uid"`
	Entity    string    `json:"entity"` // "pilot" | "task" | "service"
	State     string    `json:"state"`
	At        time.Time `json:"at"`
	Detail    string    `json:"detail,omitempty"`
}

// Heartbeat is the payload of a KindHeartbeat message. QueueDepth is the
// compatibility sum of the two honest gauges: Queued (admitted, waiting
// for a worker) and InFlight (currently executing). Busy means the
// service is executing at least one request — a deep queue alone does
// not set it.
type Heartbeat struct {
	ServiceUID string    `json:"service_uid"`
	At         time.Time `json:"at"`
	QueueDepth int       `json:"queue_depth"`
	Queued     int       `json:"queued"`
	InFlight   int       `json:"in_flight"`
	Busy       bool      `json:"busy"`
}

// LoadReport is the payload of a KindLoadReport message: one endpoint's
// balancing gauges, pushed by whoever observes the instance (the session
// autoscaler's control loop, a campaign's reporter) into the session
// EndpointRegistry. Unlike Heartbeat — a liveness signal consumed by the
// ServiceManager — a LoadReport exists only to steer balancing clients,
// and At is load-bearing: balancers treat a report older than their
// staleness horizon as no information at all and fall back to blind
// rotation rather than chase a gauge the world has moved past.
type LoadReport struct {
	ServiceUID string    `json:"service_uid"`
	Queued     int       `json:"queued"`
	InFlight   int       `json:"in_flight"`
	At         time.Time `json:"at"`
}

// StageRequest is the payload of a KindStageRequest message.
type StageRequest struct {
	TaskUID   string `json:"task_uid"`
	Source    string `json:"source"`
	Target    string `json:"target"`
	Bytes     int64  `json:"bytes"`
	Direction string `json:"direction"` // "in" | "out"
	Mode      string `json:"mode"`      // "copy" | "link" | "transfer"
}

// ErrorBody is the payload of a KindError message.
type ErrorBody struct {
	Origin string `json:"origin"`
	Msg    string `json:"msg"`
}

// --- framing -------------------------------------------------------------

// MaxFrameSize bounds a single framed message (16 MiB). Larger frames are
// rejected to protect against corrupt length prefixes.
const MaxFrameSize = 16 << 20

// ErrFrameTooLarge is returned when a frame exceeds MaxFrameSize.
var ErrFrameTooLarge = errors.New("proto: frame exceeds maximum size")

// WriteFrame writes env as a length-prefixed JSON frame, materializing a
// lazily-encoded body first (the snapshot does not cross the wire).
func WriteFrame(w io.Writer, env Envelope) error {
	if _, err := env.WireBody(); err != nil {
		return err
	}
	raw, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("proto: marshal envelope: %w", err)
	}
	if len(raw) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(raw)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("proto: write frame header: %w", err)
	}
	if _, err := w.Write(raw); err != nil {
		return fmt.Errorf("proto: write frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed JSON frame.
func ReadFrame(r io.Reader) (Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Envelope{}, err // preserve io.EOF for clean shutdown detection
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return Envelope{}, ErrFrameTooLarge
	}
	raw := make([]byte, n)
	if _, err := io.ReadFull(r, raw); err != nil {
		return Envelope{}, fmt.Errorf("proto: read frame body: %w", err)
	}
	var env Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return Envelope{}, fmt.Errorf("proto: unmarshal envelope: %w", err)
	}
	return env, nil
}

package service

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/simtime"
)

// Registry is the endpoint registry services publish into — the
// information channel of the paper's Fig. 2 (6): "Users (or third-party
// middleware components) get information about services and tasks via
// dedicated communication channels." Publication costs the Fig. 3
// `publish` bootstrap component.
type Registry struct {
	clock simtime.Clock
	src   *rng.Source
	// publishOverhead is the time to communicate service endpoints to the
	// client side; Fig. 3 shows it below launch time throughout.
	publishOverhead rng.DurationDist

	mu        sync.Mutex
	endpoints map[string]proto.Endpoint // by service UID
	waiters   map[string][]chan struct{}
}

// DefaultPublishOverhead matches Fig. 3: publish stays in the
// sub-second band, under the ~2s launch time.
func DefaultPublishOverhead() rng.DurationDist {
	return rng.NormalDuration(400*time.Millisecond, 120*time.Millisecond)
}

// NewRegistry returns an empty registry. overhead may be zero-valued to
// use the default.
func NewRegistry(clock simtime.Clock, src *rng.Source, overhead rng.DurationDist) *Registry {
	if overhead.IsZero() {
		overhead = DefaultPublishOverhead()
	}
	return &Registry{
		clock:           clock,
		src:             src,
		publishOverhead: overhead,
		endpoints:       make(map[string]proto.Endpoint),
		waiters:         make(map[string][]chan struct{}),
	}
}

// Publish records ep after sleeping the publication overhead, and returns
// the overhead paid. Existing registrations are overwritten (re-publish).
func (r *Registry) Publish(ep proto.Endpoint) time.Duration {
	d := r.publishOverhead.Sample(r.src)
	if d > 0 {
		r.clock.Sleep(d)
	}
	ep.PublishedAt = r.clock.Now()
	r.mu.Lock()
	r.endpoints[ep.ServiceUID] = ep
	for _, ch := range r.waiters[ep.ServiceUID] {
		close(ch)
	}
	delete(r.waiters, ep.ServiceUID)
	r.mu.Unlock()
	return d
}

// Withdraw removes a service's endpoint (service terminated or failed).
func (r *Registry) Withdraw(uid string) {
	r.mu.Lock()
	delete(r.endpoints, uid)
	r.mu.Unlock()
}

// Lookup returns the endpoint of one service.
func (r *Registry) Lookup(uid string) (proto.Endpoint, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ep, ok := r.endpoints[uid]
	return ep, ok
}

// ByModel returns every endpoint exposing the named model, sorted by
// service UID for deterministic iteration.
func (r *Registry) ByModel(model string) []proto.Endpoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []proto.Endpoint
	for _, ep := range r.endpoints {
		if ep.Model == model {
			out = append(out, ep)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ServiceUID < out[j].ServiceUID })
	return out
}

// All returns every endpoint, sorted by service UID.
func (r *Registry) All() []proto.Endpoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]proto.Endpoint, 0, len(r.endpoints))
	for _, ep := range r.endpoints {
		out = append(out, ep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ServiceUID < out[j].ServiceUID })
	return out
}

// WaitFor blocks until uid's endpoint is published or ctx expires.
func (r *Registry) WaitFor(ctx context.Context, uid string) (proto.Endpoint, error) {
	r.mu.Lock()
	if ep, ok := r.endpoints[uid]; ok {
		r.mu.Unlock()
		return ep, nil
	}
	ch := make(chan struct{})
	r.waiters[uid] = append(r.waiters[uid], ch)
	r.mu.Unlock()
	select {
	case <-ch:
		ep, _ := r.Lookup(uid)
		return ep, nil
	case <-ctx.Done():
		return proto.Endpoint{}, ctx.Err()
	}
}

package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

func TestComputeBasic(t *testing.T) {
	s := Compute([]time.Duration{ms(10), ms(20), ms(30), ms(40)})
	if s.N != 4 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Mean != ms(25) {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if s.Min != ms(10) || s.Max != ms(40) {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.P50 != ms(20) {
		t.Fatalf("P50 = %v (nearest rank)", s.P50)
	}
}

func TestComputeEmpty(t *testing.T) {
	s := Compute(nil)
	if s.N != 0 || s.Mean != 0 || s.P99 != 0 {
		t.Fatalf("empty Compute = %+v", s)
	}
}

func TestComputeSingle(t *testing.T) {
	s := Compute([]time.Duration{ms(7)})
	if s.Mean != ms(7) || s.Std != 0 || s.P50 != ms(7) || s.P99 != ms(7) {
		t.Fatalf("single Compute = %+v", s)
	}
}

func TestComputeDoesNotMutateInput(t *testing.T) {
	in := []time.Duration{ms(3), ms(1), ms(2)}
	Compute(in)
	if in[0] != ms(3) || in[1] != ms(1) || in[2] != ms(2) {
		t.Fatal("Compute sorted the caller's slice")
	}
}

func TestComputeStd(t *testing.T) {
	// values 10,10,20,20 → mean 15, std 5
	s := Compute([]time.Duration{ms(10), ms(10), ms(20), ms(20)})
	if s.Std < ms(5)-time.Microsecond || s.Std > ms(5)+time.Microsecond {
		t.Fatalf("Std = %v, want 5ms", s.Std)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	vals := make([]time.Duration, 100)
	for i := range vals {
		vals[i] = ms(i + 1) // 1..100 ms
	}
	s := Compute(vals)
	if s.P50 != ms(50) || s.P95 != ms(95) || s.P99 != ms(99) {
		t.Fatalf("percentiles = %v/%v/%v", s.P50, s.P95, s.P99)
	}
}

func TestStatsInvariantProperty(t *testing.T) {
	// Property: Min <= P50 <= P95 <= P99 <= Max and Min <= Mean <= Max.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]time.Duration, len(raw))
		for i, r := range raw {
			vals[i] = time.Duration(r) * time.Microsecond
		}
		s := Compute(vals)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 &&
			s.P99 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorAddAndStats(t *testing.T) {
	c := NewCollector()
	c.Add("bt.launch", ms(100))
	c.Add("bt.launch", ms(200))
	if got := c.Count("bt.launch"); got != 2 {
		t.Fatalf("Count = %d", got)
	}
	if s := c.Stats("bt.launch"); s.Mean != ms(150) {
		t.Fatalf("Stats.Mean = %v", s.Mean)
	}
	if got := c.Series("missing"); got != nil {
		t.Fatal("missing series returned non-nil")
	}
}

func TestCollectorSeriesIsCopy(t *testing.T) {
	c := NewCollector()
	c.Add("x", ms(1))
	s := c.Series("x")
	s[0] = ms(999)
	if c.Series("x")[0] != ms(1) {
		t.Fatal("Series returned shared backing array")
	}
}

func TestCollectorAddAll(t *testing.T) {
	c := NewCollector()
	c.AddAll("rt", map[string]time.Duration{
		"communication": ms(1), "service": ms(2), "inference": ms(3),
	})
	for _, comp := range RTComponents {
		if c.Count("rt."+comp) != 1 {
			t.Fatalf("component %s not recorded", comp)
		}
	}
}

func TestCollectorNamesSorted(t *testing.T) {
	c := NewCollector()
	c.Add("z", ms(1))
	c.Add("a", ms(1))
	c.Add("m", ms(1))
	names := c.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "m" || names[2] != "z" {
		t.Fatalf("Names = %v", names)
	}
}

func TestCollectorMerge(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	a.Add("x", ms(1))
	b.Add("x", ms(3))
	b.Add("y", ms(5))
	a.Merge(b)
	if a.Count("x") != 2 || a.Count("y") != 1 {
		t.Fatalf("merge counts = %d/%d", a.Count("x"), a.Count("y"))
	}
	// merge must not alias b's storage
	b.Add("x", ms(7))
	if a.Count("x") != 2 {
		t.Fatal("Merge aliased source collector")
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector()
	c.Add("x", ms(1))
	c.Reset()
	if len(c.Names()) != 0 {
		t.Fatal("Reset left series behind")
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Add("s", ms(j))
			}
		}()
	}
	wg.Wait()
	if got := c.Count("s"); got != 8000 {
		t.Fatalf("concurrent Count = %d, want 8000", got)
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{Components: map[string]time.Duration{"a": ms(1), "b": ms(2)}}
	if b.Total() != ms(3) {
		t.Fatalf("Total = %v", b.Total())
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{Title: "Fig. 3", Header: []string{"N", "launch", "init"}}
	tab.AddRow("1", "2.001", "25.3")
	tab.AddRow("640", "18.2", "25.1")
	out := tab.Render()
	if !strings.Contains(out, "Fig. 3") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("rendered %d lines: %q", len(lines), out)
	}
	// alignment: the header's "launch" column must start at the same offset
	// as the corresponding data cells
	hIdx := strings.Index(lines[1], "launch")
	dIdx := strings.Index(lines[3], "2.001")
	if hIdx != dIdx {
		t.Fatalf("column misaligned: header at %d, data at %d\n%s", hIdx, dIdx, out)
	}
}

func TestFormatters(t *testing.T) {
	if got := FmtSeconds(1500 * time.Millisecond); got != "1.500" {
		t.Fatalf("FmtSeconds = %q", got)
	}
	s := Stats{Mean: 2 * time.Second, Std: 250 * time.Millisecond}
	if got := FmtMeanStd(s); got != "2.000 ± 0.250" {
		t.Fatalf("FmtMeanStd = %q", got)
	}
	str := Stats{N: 1, Mean: time.Second}.String()
	if !strings.Contains(str, "n=1") || !strings.Contains(str, "mean=1.000s") {
		t.Fatalf("Stats.String = %q", str)
	}
}

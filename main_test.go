package repro

import (
	"os"
	"testing"

	"repro/internal/xproc"
)

// TestMain lets the root test binary double as a pilot-agent executable:
// the cross-process benchmarks (BenchmarkAblationXproc) spawn agents by
// re-executing os.Executable() with RPPILOT_AGENT set, and MaybeRunAgent
// turns those children into agents before any test or benchmark runs.
func TestMain(m *testing.M) {
	xproc.MaybeRunAgent()
	os.Exit(m.Run())
}

package service

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/msgq"
	"repro/internal/proto"
	"repro/internal/simtime"
)

// Client is the task-side view of one service: it sends inference requests
// through the service's published endpoint and decomposes each response
// time into the paper's communication / service / inference components.
type Client struct {
	uid   string // client (task) UID, also its transport address
	clock simtime.Clock
	conn  msgq.Client
	ep    proto.Endpoint

	uidPrefix string // precomputed "<uid>.req." request-UID prefix
	seq       atomic.Uint64
}

// Dial connects clientUID (an address, typically platform.Addr of the
// client task) to the service endpoint ep over net.
func Dial(net *msgq.Network, clock simtime.Clock, clientUID string, ep proto.Endpoint) (*Client, error) {
	conn, err := net.Dial(clientUID, ep.Address)
	if err != nil {
		return nil, fmt.Errorf("service: dial %s: %w", ep.ServiceUID, err)
	}
	return &Client{uid: clientUID, clock: clock, conn: conn, ep: ep, uidPrefix: clientUID + ".req."}, nil
}

// Endpoint returns the endpoint this client talks to.
func (c *Client) Endpoint() proto.Endpoint { return c.ep }

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Infer performs one synchronous inference call and returns the reply plus
// the RT breakdown:
//
//	communication — transport time (request + reply hops)
//	service       — service-side queueing, parsing and serialization
//	inference     — pure model compute
//
// The total response time (RT of Exp 2/3) is the sum of the three.
func (c *Client) Infer(ctx context.Context, prompt string, maxTokens int) (proto.InferenceReply, metrics.Breakdown, error) {
	id := c.seq.Add(1)

	req := proto.InferenceRequest{
		RequestUID: c.requestUID(id),
		ClientUID:  c.uid,
		Model:      c.ep.Model,
		Prompt:     prompt,
		MaxTokens:  maxTokens,
		SentAt:     c.clock.Now(),
	}
	env, err := proto.NewEnvelope(proto.KindRequest, id, c.uid, c.ep.ServiceUID, req.SentAt, req)
	if err != nil {
		return proto.InferenceReply{}, metrics.Breakdown{}, err
	}
	start := c.clock.Now()
	out, err := c.conn.Request(ctx, env)
	total := c.clock.Now().Sub(start)
	if err != nil {
		return proto.InferenceReply{}, metrics.Breakdown{}, err
	}
	if out.Kind == proto.KindError {
		var eb proto.ErrorBody
		_ = out.Decode(proto.KindError, &eb)
		return proto.InferenceReply{}, metrics.Breakdown{}, fmt.Errorf("service %s: %s", c.ep.ServiceUID, eb.Msg)
	}
	var reply proto.InferenceReply
	if err := out.Decode(proto.KindReply, &reply); err != nil {
		return proto.InferenceReply{}, metrics.Breakdown{}, err
	}
	if reply.Err != "" {
		return reply, metrics.Breakdown{}, errors.New(reply.Err)
	}
	return reply, DecomposeRT(total, reply.Timing), nil
}

// requestUID renders "<client>.req.NNNNNN" (zero-padded to six digits,
// like the seed's fmt.Sprintf format) in one allocation.
func (c *Client) requestUID(id uint64) string {
	buf := make([]byte, 0, len(c.uidPrefix)+20)
	buf = append(buf, c.uidPrefix...)
	for w := uint64(100000); w > 1 && id < w; w /= 10 {
		buf = append(buf, '0')
	}
	buf = strconv.AppendUint(buf, id, 10)
	return string(buf)
}

// DecomposeRT splits a measured round-trip total into the paper's RT
// components using the service-side timestamps. Client and service share
// the session clock domain (as they share a synchronized testbed clock in
// the paper's measurements).
func DecomposeRT(total time.Duration, t proto.Timing) metrics.Breakdown {
	infer := t.InferTime()
	svc := t.ServiceTime()
	if svc < 0 {
		svc = 0
	}
	comm := total - infer - svc
	if comm < 0 {
		comm = 0
	}
	return metrics.Breakdown{Components: map[string]time.Duration{
		"communication": comm,
		"service":       svc,
		"inference":     infer,
	}}
}

// Package scheduler implements the agent-side continuous scheduler of the
// runtime. It binds tasks and service tasks to node resources (cores,
// GPUs, memory) within a pilot's allocation, honouring the priority
// relation the paper's extended Scheduler enacts between services and
// tasks: "We extended the existing Scheduler to enact priority relations
// between services and tasks" — in workflows, services often have to start
// before any computing task (§III).
//
// The wait pool is a priority queue: higher priority first, FIFO within a
// priority class. Placement retries happen continuously as resources are
// released. Unlike a naive first-fit, placement does not scan the node
// list: a segment-tree capacity index (see index.go) locates a fitting
// node in O(log nodes), and each scheduling kick drains every grantable
// request in one batch under a single lock acquisition.
//
// Which waiting request is granted next — and on which node — is decided
// by a pluggable Policy (see policy.go). The default, Strict, keeps the
// seed semantics: first-fit placement and hard head-of-line blocking.
// Backfill and BestFit trade bounded head starvation for utilization and
// lower fragmentation; select them per pilot via pilot.Config.SchedPolicy
// or per platform via platform.Platform.SchedPolicy.
package scheduler

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/platform"
	"repro/internal/simtime"
)

// Request asks for resources for one entity.
type Request struct {
	// UID identifies the task or service.
	UID string
	// Cores, GPUs, MemGB are the per-node resource demand.
	Cores int
	GPUs  int
	MemGB float64
	// Priority orders the wait pool: higher first. The ServiceManager
	// submits services with a raised priority.
	Priority int
}

// Placement is a granted request.
type Placement struct {
	Req   Request
	Alloc *platform.Allocation
}

// PlaceFn receives each successful placement. It is called from a
// dedicated scheduler goroutine: implementations may block briefly but
// must not call back into the scheduler synchronously except Release.
type PlaceFn func(Placement)

// Scheduler performs continuous policy-driven scheduling over a fixed
// node set.
type Scheduler struct {
	nodes  []*platform.Node
	place  PlaceFn
	policy Policy
	clock  simtime.Clock

	mu      sync.Mutex
	index   *nodeIndex
	nodeOf  map[*platform.Node]int
	waiting waitHeap
	seq     uint64
	closed  bool
	kick    chan struct{}
	done    chan struct{}

	scheduled int
	failed    int
	// seenEpoch mirrors platform.ReleaseEpoch for the releases this
	// scheduler has already folded into its index (its own Releases are
	// point-refreshed; a full-refresh miss recovery accounts the rest).
	// While they match, no capacity has been returned behind the
	// scheduler's back and a placement miss needs no O(nodes) re-sync.
	seenEpoch uint64

	// batch is the grant buffer reused across scheduling passes; it is
	// only touched by the scheduler goroutine.
	batch []Placement

	// gen counts state mutations (submissions, grants, releases, index
	// re-syncs). Snapshot caches its last result against it, so repeated
	// probes over an unchanged scheduler — a router ranking the same pilot
	// for every task of a submit batch — skip the lock and the shape-table
	// copy entirely. Bumped only while mu is held; read lock-free.
	gen       atomic.Uint64
	snapCache atomic.Pointer[cachedSnapshot]
}

// cachedSnapshot pairs a Snapshot with the generation it was built at.
type cachedSnapshot struct {
	gen  uint64
	snap Snapshot
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("scheduler: closed")

// ErrUnsatisfiable is returned when a request can never fit on any node.
type ErrUnsatisfiable struct{ Req Request }

// Error implements error.
func (e ErrUnsatisfiable) Error() string {
	return fmt.Sprintf("scheduler: request %s (%d cores, %d gpus, %.1f GB) exceeds every node",
		e.Req.UID, e.Req.Cores, e.Req.GPUs, e.Req.MemGB)
}

// Option configures a Scheduler at construction time.
type Option func(*Scheduler)

// WithPolicy selects the placement policy (default Strict). The policy
// instance must be exclusive to this scheduler: backfill policies keep
// per-head starvation state.
func WithPolicy(p Policy) Option {
	return func(s *Scheduler) {
		if p != nil {
			s.policy = p
		}
	}
}

// WithClock sets the clock backing the backfill starvation time bound and
// Pool.Now (default: the wall clock). Pilots pass their simulation clock
// so the T bound is measured in simulated time.
func WithClock(c simtime.Clock) Option {
	return func(s *Scheduler) {
		if c != nil {
			s.clock = c
		}
	}
}

// New starts a scheduler over nodes, delivering placements to place.
// Without options it schedules with the Strict policy on the wall clock.
func New(nodes []*platform.Node, place PlaceFn, opts ...Option) *Scheduler {
	s := &Scheduler{
		nodes:     nodes,
		place:     place,
		policy:    Strict(),
		clock:     simtime.NewReal(),
		index:     newNodeIndex(nodes),
		nodeOf:    make(map[*platform.Node]int, len(nodes)),
		waiting:   newWaitHeap(),
		kick:      make(chan struct{}, 1),
		done:      make(chan struct{}),
		seenEpoch: platform.ReleaseEpoch(),
	}
	for _, opt := range opts {
		opt(s)
	}
	for i, n := range nodes {
		s.nodeOf[n] = i
	}
	go s.loop()
	return s
}

// Submit enqueues a request. It returns ErrUnsatisfiable immediately when
// no node in the pilot could ever satisfy the request.
func (s *Scheduler) Submit(req Request) error {
	if !s.satisfiable(req) {
		s.mu.Lock()
		s.failed++
		s.mu.Unlock()
		return ErrUnsatisfiable{Req: req}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.seq++
	s.waiting.push(waitItem{req: req, seq: s.seq})
	s.gen.Add(1)
	s.mu.Unlock()
	s.poke()
	return nil
}

// Generation returns the scheduler's mutation counter. Two equal reads
// with no mutation in between guarantee Snapshot returns identical data,
// which is what lets callers batch routing decisions over one probe.
func (s *Scheduler) Generation() uint64 { return s.gen.Load() }

// satisfiable reports whether some node's total capacity covers req.
// Negative demands are unsatisfiable: Node.TryAlloc rejects them on every
// node, so admitting one would wedge the wait-pool head forever. The
// check is O(distinct shapes) over the index's immutable spec list — no
// lock needed.
func (s *Scheduler) satisfiable(req Request) bool {
	if req.Cores < 0 || req.GPUs < 0 || req.MemGB < 0 {
		return false
	}
	for _, sp := range s.index.specs {
		if sp.Covers(req.Cores, req.GPUs, req.MemGB) {
			return true
		}
	}
	return false
}

// Release returns an allocation to its node and re-kicks scheduling.
func (s *Scheduler) Release(a *platform.Allocation) {
	before := platform.ReleaseEpoch()
	a.Release()
	after := platform.ReleaseEpoch()
	s.mu.Lock()
	if i, ok := s.nodeOf[a.Node()]; ok {
		s.index.refresh(i)
		// Account our own release so a later placement miss does not
		// mistake it for out-of-band capacity needing a full re-sync.
		// Advance only when this call provably was release number
		// before+1 and nothing else interleaved — any ambiguity
		// (concurrent releases elsewhere, an already-released alloc)
		// leaves seenEpoch behind, which merely costs one conservative
		// refreshAll later, never a missed placement.
		if s.seenEpoch == before && after == before+1 {
			s.seenEpoch = after
		}
	}
	s.gen.Add(1)
	s.mu.Unlock()
	s.poke()
}

// Policy returns the scheduler's placement policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// Waiting returns the wait-pool depth.
func (s *Scheduler) Waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiting.len()
}

// Scheduled returns the count of granted placements.
func (s *Scheduler) Scheduled() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scheduled
}

// Close stops the scheduler. Waiting requests are dropped.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.gen.Add(1)
	s.mu.Unlock()
	close(s.done)
}

func (s *Scheduler) poke() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

func (s *Scheduler) loop() {
	for {
		select {
		case <-s.done:
			return
		case <-s.kick:
			s.schedule()
		}
	}
}

// schedule drains as much of the wait pool as the policy will grant. What
// "grantable" means is the policy's call: Strict stops at the first
// blocked head (the readiness guarantee of §III outweighs utilization),
// Backfill/BestFit keep granting fitting lower-priority work within the
// starvation bound. The ablation benchmark BenchmarkAblationBackfill
// quantifies the trade-off.
//
// Each pass collects every grantable request under one lock acquisition
// and delivers the whole batch after unlocking, so PlaceFn work (and the
// Releases it may perform) never holds up grant decisions.
func (s *Scheduler) schedule() {
	for {
		s.mu.Lock()
		pool := Pool{s: s}
		s.batch = s.batch[:0]
		for !s.closed && s.waiting.len() > 0 {
			pos, alloc := s.policy.Grant(&pool)
			if alloc == nil {
				break // nothing grantable: wait for a release
			}
			it := s.waiting.removeAt(pos)
			s.scheduled++
			s.batch = append(s.batch, Placement{Req: it.req, Alloc: alloc})
		}
		// A pass may mutate the index even without granting (a policy's
		// tryPlace/fits re-sync after an out-of-band release), so the
		// generation advances unconditionally — an occasional spurious
		// snapshot rebuild, never a stale one.
		s.gen.Add(1)
		s.mu.Unlock()
		if len(s.batch) == 0 {
			return
		}
		for _, p := range s.batch {
			s.place(p)
		}
	}
}

// tryPlace attempts placement of req via the capacity index: first-fit
// (lowest fitting node index) by default, least-leftover when bestFit is
// set. Callers hold s.mu.
func (s *Scheduler) tryPlace(req Request, bestFit bool) *platform.Allocation {
	find := s.index.find
	if bestFit {
		find = s.index.findBest
	}
	refreshed := false
	for {
		i := find(req.Cores, req.GPUs, req.MemGB)
		if i < 0 {
			if refreshed {
				return nil
			}
			// The index can only under-report capacity if an allocation
			// was released directly (not through Scheduler.Release) since
			// we last synced. The release-epoch comparison detects that
			// without touching any node; only a genuine out-of-band
			// release pays the O(nodes) re-sync.
			epoch := platform.ReleaseEpoch()
			if epoch == s.seenEpoch {
				return nil
			}
			s.seenEpoch = epoch
			s.index.refreshAll()
			refreshed = true
			continue
		}
		a := s.nodes[i].TryAlloc(req.Cores, req.GPUs, req.MemGB)
		s.index.refresh(i)
		if a != nil {
			return a
		}
		// The leaf was stale-high (capacity consumed behind the
		// scheduler's back); the refresh above corrected it — retry.
	}
}

// fits reports whether some node's current free capacity covers req,
// re-syncing the index once when an out-of-band release may have returned
// capacity behind the scheduler's back. Callers hold s.mu.
func (s *Scheduler) fits(req Request) bool {
	if s.index.find(req.Cores, req.GPUs, req.MemGB) >= 0 {
		return true
	}
	epoch := platform.ReleaseEpoch()
	if epoch == s.seenEpoch {
		return false
	}
	s.seenEpoch = epoch
	s.index.refreshAll()
	return s.index.find(req.Cores, req.GPUs, req.MemGB) >= 0
}

// --- wait pool --------------------------------------------------------------

type waitItem struct {
	req Request
	seq uint64
}

// waitHeap is the scheduler's wait pool: a hand-rolled binary heap
// ordered by (priority desc, seq asc) — avoiding container/heap keeps
// push/pop free of interface boxing — augmented with a per-priority
// bucket index for the backfill policies' highest-priority-fitting
// query. The heap answers "who is the strict head" in O(1); the buckets
// enumerate the pool in exact strict order without sorting, so the
// backfill scan stops at its first fit instead of testing every waiting
// request (the pre-index scan was O(waiting · log nodes) per grant,
// which ROADMAP carried as a deep-pool perf debt since PR 2).
type waitHeap struct {
	items []waitItem
	// pos maps a request's seq to its current items position, maintained
	// across every sift swap, so a bucket hit translates to a pool
	// position in O(1).
	pos map[uint64]int
	// prios lists the distinct priorities present, descending; buckets
	// holds each priority's waiting seqs in ascending (submission) order.
	// Walking prios outer, buckets inner therefore visits the pool in
	// exactly the strict (priority desc, seq asc) grant order.
	prios   []int
	buckets map[int][]uint64
}

func newWaitHeap() waitHeap {
	return waitHeap{pos: make(map[uint64]int), buckets: make(map[int][]uint64)}
}

func (h *waitHeap) len() int { return len(h.items) }

func (h *waitHeap) less(i, j int) bool {
	if h.items[i].req.Priority != h.items[j].req.Priority {
		return h.items[i].req.Priority > h.items[j].req.Priority
	}
	return h.items[i].seq < h.items[j].seq
}

func (h *waitHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].seq] = i
	h.pos[h.items[j].seq] = j
}

func (h *waitHeap) push(it waitItem) {
	h.items = append(h.items, it)
	h.pos[it.seq] = len(h.items) - 1
	h.siftUp(len(h.items) - 1)
	h.bucketInsert(it.req.Priority, it.seq)
}

// removeAt deletes and returns the item at backing-array position pos
// (0 = head). Backfill policies grant from arbitrary positions, so the
// vacated slot's replacement may need to move either direction.
func (h *waitHeap) removeAt(pos int) waitItem {
	it := h.items[pos]
	last := len(h.items) - 1
	h.items[pos] = h.items[last]
	h.items[last] = waitItem{} // release references held by the vacated slot
	h.items = h.items[:last]
	delete(h.pos, it.seq)
	if pos < last {
		h.pos[h.items[pos].seq] = pos
		h.siftDown(pos)
		h.siftUp(pos)
	}
	h.bucketRemove(it.req.Priority, it.seq)
	return it
}

func (h *waitHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *waitHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		first := i
		if l < len(h.items) && h.less(l, first) {
			first = l
		}
		if r < len(h.items) && h.less(r, first) {
			first = r
		}
		if first == i {
			return
		}
		h.swap(i, first)
		i = first
	}
}

// bucketInsert files seq under prio, keeping the bucket ascending and
// the priority list descending. Seqs usually arrive in increasing order
// (fresh submissions), making the common insert an append; the binary
// search covers re-pushes of old seqs.
func (h *waitHeap) bucketInsert(prio int, seq uint64) {
	b := h.buckets[prio]
	if len(b) == 0 {
		i := sort.Search(len(h.prios), func(i int) bool { return h.prios[i] <= prio })
		h.prios = append(h.prios, 0)
		copy(h.prios[i+1:], h.prios[i:])
		h.prios[i] = prio
	}
	i := sort.Search(len(b), func(i int) bool { return b[i] >= seq })
	b = append(b, 0)
	copy(b[i+1:], b[i:])
	b[i] = seq
	h.buckets[prio] = b
}

// bucketRemove unfiles seq from prio's bucket, dropping the priority
// from the walk list when its bucket empties.
func (h *waitHeap) bucketRemove(prio int, seq uint64) {
	b := h.buckets[prio]
	i := sort.Search(len(b), func(i int) bool { return b[i] >= seq })
	if i >= len(b) || b[i] != seq {
		return // not present: tolerated for robustness, never expected
	}
	b = append(b[:i], b[i+1:]...)
	if len(b) == 0 {
		delete(h.buckets, prio)
		j := sort.Search(len(h.prios), func(j int) bool { return h.prios[j] <= prio })
		h.prios = append(h.prios[:j], h.prios[j+1:]...)
		return
	}
	h.buckets[prio] = b
}

// firstFit walks the pool in strict (priority desc, seq asc) order —
// skipping the head, which the caller already failed to place — and
// returns the pool position of the first request fits accepts, or -1.
// This is exactly the argmin under Before over all fitting non-head
// positions that the backfill policies need, but it stops at the first
// fit instead of testing the whole pool.
func (h *waitHeap) firstFit(fits func(pos int) bool) int {
	if len(h.items) == 0 {
		return -1
	}
	headSeq := h.items[0].seq
	for _, prio := range h.prios {
		for _, seq := range h.buckets[prio] {
			if seq == headSeq {
				continue
			}
			if i := h.pos[seq]; fits(i) {
				return i
			}
		}
	}
	return -1
}

package experiments

import (
	"context"
	"os"
	"testing"

	"repro/internal/xproc"
)

// TestMain lets this test binary double as the pilot-agent executable:
// xproc.Spawn re-executes os.Executable() — here, the test binary — with
// RPPILOT_AGENT set, and MaybeRunAgent turns that child into an agent
// before any test runs.
func TestMain(m *testing.M) {
	xproc.MaybeRunAgent()
	os.Exit(m.Run())
}

// TestXprocMatchesInproc pins the determinism contract of the transport
// seam: the route and failover ablations produce identical outcome counts
// whether pilots are goroutines on the in-proc transport or OS processes
// on pooled TCP. Placement timing differs across the wire; outcomes must
// not.
func TestXprocMatchesInproc(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns agent processes")
	}
	res, err := RunXproc(context.Background(), DefaultXprocConfig())
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Route) != len(res.RouteInproc) || len(res.Route) == 0 {
		t.Fatalf("route rows: %d os-process vs %d in-proc", len(res.Route), len(res.RouteInproc))
	}
	for i, x := range res.Route {
		in := res.RouteInproc[i]
		if x != in {
			t.Errorf("route %s: os-process %+v != in-proc %+v", x.Router, x, in)
		}
	}

	if len(res.SvcFail) != len(res.SvcFailInproc) || len(res.SvcFail) == 0 {
		t.Fatalf("svcfail rows: %d os-process vs %d in-proc", len(res.SvcFail), len(res.SvcFailInproc))
	}
	for i, x := range res.SvcFail {
		in := res.SvcFailInproc[i]
		// Host UIDs and replacement bookkeeping are process- vs
		// session-scoped; the wire-invariant quantities are the counts.
		if x.PreKill != in.PreKill || x.Recovered != in.Recovered ||
			x.Failed != in.Failed || x.Reresolved != in.Reresolved ||
			x.Generation != in.Generation {
			t.Errorf("svcfail %s: os-process %+v != in-proc %+v", x.Client, x, in)
		}
	}

	// The scenario-level acceptance: zero post-failover requests lost by
	// the resolving client, all of them lost by the caching client, and
	// the capacity-fit router running every task the round-robin router
	// fails.
	post := res.Cfg.Requests - res.Cfg.KillAfter
	for _, row := range res.SvcFail {
		switch row.Client {
		case SvcFailClientCaching:
			if row.Recovered != 0 || row.Failed != post {
				t.Errorf("caching client: recovered %d failed %d, want 0/%d", row.Recovered, row.Failed, post)
			}
		case SvcFailClientResolving:
			if row.Recovered != post || row.Failed != 0 {
				t.Errorf("resolving client: recovered %d failed %d, want %d/0", row.Recovered, row.Failed, post)
			}
		}
	}
	for _, row := range res.Route {
		switch row.Router {
		case "capacity-fit":
			if row.FatDone != res.Cfg.FatTasks || row.FatFailed != 0 {
				t.Errorf("capacity-fit: fat %d done %d failed, want %d/0", row.FatDone, row.FatFailed, res.Cfg.FatTasks)
			}
		case "round-robin":
			if row.FatFailed == 0 {
				t.Error("round-robin misroutes no fat tasks; the mismatch scenario is broken")
			}
		}
		if row.ThinDone != res.Cfg.ThinTasks {
			t.Errorf("%s: thin done %d, want %d", row.Router, row.ThinDone, res.Cfg.ThinTasks)
		}
	}
}

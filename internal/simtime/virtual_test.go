package simtime

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var origin = time.Date(2025, 3, 17, 0, 0, 0, 0, time.UTC)

func TestVirtualNowStartsAtOrigin(t *testing.T) {
	v := NewVirtual(origin)
	if !v.Now().Equal(origin) {
		t.Fatalf("Now() = %v, want %v", v.Now(), origin)
	}
}

func TestVirtualAdvanceMovesNow(t *testing.T) {
	v := NewVirtual(origin)
	v.Advance(5 * time.Second)
	if got := v.Now(); !got.Equal(origin.Add(5 * time.Second)) {
		t.Fatalf("Now() = %v, want origin+5s", got)
	}
}

func TestVirtualAdvanceToBackwardsIsNoop(t *testing.T) {
	v := NewVirtual(origin)
	v.Advance(time.Second)
	v.AdvanceTo(origin) // earlier than now
	if got := v.Now(); !got.Equal(origin.Add(time.Second)) {
		t.Fatalf("Now() = %v, want origin+1s", got)
	}
}

func TestVirtualAfterFiresAtDeadline(t *testing.T) {
	v := NewVirtual(origin)
	ch := v.After(3 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before Advance")
	default:
	}
	v.Advance(2 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired too early")
	default:
	}
	v.Advance(time.Second)
	select {
	case tm := <-ch:
		if !tm.Equal(origin.Add(3 * time.Second)) {
			t.Fatalf("fired at %v, want origin+3s", tm)
		}
	default:
		t.Fatal("After did not fire at deadline")
	}
}

func TestVirtualSleepWakesOnAdvance(t *testing.T) {
	v := NewVirtual(origin)
	done := make(chan time.Time)
	go func() {
		v.Sleep(10 * time.Second)
		done <- v.Now()
	}()
	// wait until the sleeper is registered
	for v.PendingSleepers() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(10 * time.Second)
	select {
	case woke := <-done:
		if !woke.Equal(origin.Add(10 * time.Second)) {
			t.Fatalf("woke at %v, want origin+10s", woke)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sleeper never woke")
	}
}

func TestVirtualSleepZeroReturnsImmediately(t *testing.T) {
	v := NewVirtual(origin)
	v.Sleep(0)
	v.Sleep(-time.Second)
	if v.PendingSleepers() != 0 {
		t.Fatal("non-positive Sleep registered a sleeper")
	}
}

func TestVirtualTimerStop(t *testing.T) {
	v := NewVirtual(origin)
	tm := v.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
	v.Advance(2 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestVirtualTimerStopAfterFire(t *testing.T) {
	v := NewVirtual(origin)
	tm := v.NewTimer(time.Second)
	v.Advance(time.Second)
	if tm.Stop() {
		t.Fatal("Stop() = true after fire")
	}
}

func TestVirtualTickerFiresRepeatedly(t *testing.T) {
	v := NewVirtual(origin)
	tk := v.NewTicker(time.Second)
	for i := 1; i <= 3; i++ {
		v.Advance(time.Second)
		select {
		case tm := <-tk.C():
			want := origin.Add(time.Duration(i) * time.Second)
			if !tm.Equal(want) {
				t.Fatalf("tick %d at %v, want %v", i, tm, want)
			}
		default:
			t.Fatalf("tick %d missing", i)
		}
	}
	tk.Stop()
	v.Advance(5 * time.Second)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker fired")
	default:
	}
}

func TestVirtualTickerDropsWhenSlow(t *testing.T) {
	v := NewVirtual(origin)
	tk := v.NewTicker(time.Second)
	defer tk.Stop()
	v.Advance(10 * time.Second) // 10 periods, buffer of 1
	n := 0
	for {
		select {
		case <-tk.C():
			n++
			continue
		default:
		}
		break
	}
	if n == 0 || n > 2 {
		t.Fatalf("drained %d ticks, want 1..2 (buffered drop semantics)", n)
	}
}

func TestVirtualDeadlineOrdering(t *testing.T) {
	v := NewVirtual(origin)
	chA := v.After(3 * time.Second)
	chB := v.After(1 * time.Second)
	chC := v.After(2 * time.Second)
	ready := func(ch <-chan time.Time) bool {
		select {
		case <-ch:
			return true
		default:
			return false
		}
	}
	v.Advance(time.Second)
	if !ready(chB) || ready(chA) || ready(chC) {
		t.Fatal("after 1s only B should have fired")
	}
	v.Advance(time.Second)
	if !ready(chC) || ready(chA) {
		t.Fatal("after 2s only C should additionally have fired")
	}
	v.Advance(time.Second)
	if !ready(chA) {
		t.Fatal("after 3s A should have fired")
	}
}

func TestVirtualNextDeadline(t *testing.T) {
	v := NewVirtual(origin)
	if _, ok := v.NextDeadline(); ok {
		t.Fatal("NextDeadline reported a deadline on empty clock")
	}
	v.After(7 * time.Second)
	v.After(2 * time.Second)
	dl, ok := v.NextDeadline()
	if !ok || !dl.Equal(origin.Add(2*time.Second)) {
		t.Fatalf("NextDeadline = %v/%v, want origin+2s/true", dl, ok)
	}
}

func TestVirtualAutoAdvanceSingle(t *testing.T) {
	v := NewVirtualAuto(origin)
	done := make(chan time.Time)
	v.Go(func() {
		v.Sleep(42 * time.Second)
		done <- v.Now()
	})
	select {
	case woke := <-done:
		if !woke.Equal(origin.Add(42 * time.Second)) {
			t.Fatalf("auto-advance woke at %v, want origin+42s", woke)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("auto-advance never fired")
	}
}

func TestVirtualAutoAdvanceTwoGoroutinesInterleave(t *testing.T) {
	v := NewVirtualAuto(origin)
	var mu sync.Mutex
	var trace []string
	var wg sync.WaitGroup
	wg.Add(2)
	v.Go(func() {
		defer wg.Done()
		v.Sleep(1 * time.Second)
		mu.Lock()
		trace = append(trace, "a1")
		mu.Unlock()
		v.Sleep(2 * time.Second) // wakes at t=3
		mu.Lock()
		trace = append(trace, "a3")
		mu.Unlock()
	})
	v.Go(func() {
		defer wg.Done()
		v.Sleep(2 * time.Second) // wakes at t=2
		mu.Lock()
		trace = append(trace, "b2")
		mu.Unlock()
	})
	donech := make(chan struct{})
	go func() { wg.Wait(); close(donech) }()
	select {
	case <-donech:
	case <-time.After(2 * time.Second):
		t.Fatal("auto-advance deadlocked")
	}
	if !v.Now().Equal(origin.Add(3 * time.Second)) {
		t.Fatalf("final Now() = %v, want origin+3s", v.Now())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(trace) != 3 || trace[0] != "a1" || trace[1] != "b2" || trace[2] != "a3" {
		t.Fatalf("trace = %v, want [a1 b2 a3]", trace)
	}
}

func TestVirtualAutoBlockUnblock(t *testing.T) {
	v := NewVirtualAuto(origin)
	ch := make(chan int)
	done := make(chan time.Time)
	// Producer sleeps 5s then sends; consumer blocks on the channel. Without
	// Block/Unblock the clock would stall (consumer counted as runnable).
	v.Go(func() {
		v.Sleep(5 * time.Second)
		ch <- 1
	})
	v.Go(func() {
		v.Block()
		<-ch
		v.Unblock()
		done <- v.Now()
	})
	select {
	case woke := <-done:
		if !woke.Equal(origin.Add(5 * time.Second)) {
			t.Fatalf("consumer resumed at %v, want origin+5s", woke)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Block/Unblock coordination deadlocked")
	}
}

func TestVirtualMonotonicityProperty(t *testing.T) {
	// Property: for any sequence of positive advances and timer arms, Now()
	// never decreases and all timers fire at exactly their deadline.
	f := func(steps []uint16) bool {
		v := NewVirtual(origin)
		prev := v.Now()
		for _, s := range steps {
			d := time.Duration(s%1000+1) * time.Millisecond
			ch := v.After(d)
			v.Advance(d)
			got := <-ch
			if got.Before(prev) {
				return false
			}
			if !got.Equal(prev.Add(d)) {
				return false
			}
			prev = v.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSleepCtxVirtual(t *testing.T) {
	v := NewVirtual(origin)
	done := make(chan error, 1)
	go func() { done <- SleepCtx(t.Context(), v, time.Second) }()
	for v.PendingSleepers() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(time.Second)
	if err := <-done; err != nil {
		t.Fatalf("SleepCtx = %v, want nil", err)
	}
}

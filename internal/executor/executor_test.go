package executor

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/spec"
)

var origin = time.Date(2025, 3, 17, 0, 0, 0, 0, time.UTC)

func newExec(scale float64) (*Executor, simtime.Clock) {
	clock := simtime.NewScaled(scale, origin)
	launch := platform.LaunchModel{
		Base:       rng.ConstDuration(2 * time.Second),
		Saturation: 160,
		PenaltyExp: 1.6,
	}
	return New(clock, rng.New(1), launch), clock
}

func TestLaunchBaseline(t *testing.T) {
	e, _ := newExec(100000)
	d := e.Launch("task.0001")
	if d != 2*time.Second {
		t.Fatalf("launch = %v, want 2s base", d)
	}
}

func TestLaunchConcurrencyPenalty(t *testing.T) {
	// scale 1000: each launch holds ~2ms real, so 200 spawning goroutines
	// genuinely overlap and the concurrency counter passes the saturation
	// threshold
	e, _ := newExec(1000)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var maxD time.Duration
	// hold 200 launches in flight concurrently: those sampling with
	// concurrency > 160 pay the penalty
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d := e.Launch("svc")
			mu.Lock()
			if d > maxD {
				maxD = d
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if maxD <= 2*time.Second {
		t.Fatalf("max launch %v shows no concurrency penalty", maxD)
	}
	if e.Launching() != 0 {
		t.Fatalf("Launching = %d after completion", e.Launching())
	}
}

func TestRunPayloadDuration(t *testing.T) {
	e, _ := newExec(100000)
	d := spec.TaskDescription{UID: "t1", Duration: rng.ConstDuration(5 * time.Second)}
	elapsed, err := e.RunPayload(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed < 4*time.Second {
		t.Fatalf("payload elapsed %v, want ≈5s sim", elapsed)
	}
	if e.Completed() != 1 || e.Failures() != 0 {
		t.Fatalf("counts = %d/%d", e.Completed(), e.Failures())
	}
}

func TestRunPayloadFunc(t *testing.T) {
	e, _ := newExec(100000)
	ran := false
	d := spec.TaskDescription{UID: "t2", Func: func(ctx context.Context) error {
		ran = true
		return nil
	}}
	if _, err := e.RunPayload(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("Func payload did not run")
	}
}

func TestRunPayloadDurationPlusFunc(t *testing.T) {
	// a task carrying both sleeps the modelled duration and then runs the
	// function payload
	e, _ := newExec(100000)
	ran := false
	d := spec.TaskDescription{
		UID:      "both",
		Duration: rng.ConstDuration(5 * time.Second),
		Func:     func(ctx context.Context) error { ran = true; return nil },
	}
	elapsed, err := e.RunPayload(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("Func did not run")
	}
	if elapsed < 4*time.Second {
		t.Fatalf("elapsed %v, want ≈5s modelled time", elapsed)
	}
}

func TestRunPayloadFuncError(t *testing.T) {
	e, _ := newExec(100000)
	boom := errors.New("boom")
	d := spec.TaskDescription{UID: "t3", Func: func(ctx context.Context) error { return boom }}
	_, err := e.RunPayload(context.Background(), d)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if e.Failures() != 1 {
		t.Fatalf("Failures = %d", e.Failures())
	}
}

func TestRunPayloadCancellation(t *testing.T) {
	e, _ := newExec(1) // real time so the sleep genuinely blocks
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		d := spec.TaskDescription{UID: "t4", Duration: rng.ConstDuration(time.Hour)}
		_, err := e.RunPayload(ctx, d)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled payload did not return")
	}
}

func TestExecuteReleasesAllocation(t *testing.T) {
	e, _ := newExec(100000)
	p := platform.New("test", 1, platform.NodeSpec{Cores: 4, GPUs: 0, MemGB: 8})
	placedCh := make(chan scheduler.Placement, 4)
	sched := scheduler.New(p.Nodes(), func(pl scheduler.Placement) { placedCh <- pl })
	defer sched.Close()
	if err := sched.Submit(scheduler.Request{UID: "t5", Cores: 4}); err != nil {
		t.Fatal(err)
	}
	pl := <-placedCh
	d := spec.TaskDescription{UID: "t5", Duration: rng.ConstDuration(time.Second)}
	res := e.Execute(context.Background(), sched, pl, d)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.LaunchTime <= 0 || res.ExecTime <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if p.Nodes()[0].FreeCores() != 4 {
		t.Fatal("allocation not released after Execute")
	}
}

func TestGoAndWait(t *testing.T) {
	e, _ := newExec(100000)
	p := platform.New("test", 1, platform.NodeSpec{Cores: 8, GPUs: 0, MemGB: 8})
	placedCh := make(chan scheduler.Placement, 8)
	sched := scheduler.New(p.Nodes(), func(pl scheduler.Placement) { placedCh <- pl })
	defer sched.Close()

	var mu sync.Mutex
	var results []Result
	for i := 0; i < 4; i++ {
		if err := sched.Submit(scheduler.Request{UID: "t", Cores: 2}); err != nil {
			t.Fatal(err)
		}
		pl := <-placedCh
		d := spec.TaskDescription{UID: "t", Duration: rng.ConstDuration(time.Second)}
		e.Go(context.Background(), sched, pl, d, func(r Result) {
			mu.Lock()
			results = append(results, r)
			mu.Unlock()
		})
	}
	e.Wait()
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	if e.Completed() != 4 {
		t.Fatalf("Completed = %d", e.Completed())
	}
}

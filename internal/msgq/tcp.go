package msgq

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/proto"
)

// Pooled, zero-copy TCP REQ/REP transport.
//
// The read path pulls length-prefixed binary frames (proto.AppendFrame /
// proto.DecodeFrame) into sync.Pool-recycled buffers through a buffered
// reader, and decodes lazily: header fields are parsed in place, the JSON
// body is retained as a sub-slice of the pooled buffer — no second copy.
// The write path assembles the frame into a per-connection scratch buffer
// and issues a single conn.Write per message, with one JSON pass through
// the envelope's WireBody cache.
//
// Buffer ownership rules (see ARCHITECTURE.md Flow 8):
//   - Server side: the request buffer belongs to the transport. A handler
//     may read the request Body only until its reply frame has been
//     encoded; the buffer is recycled immediately after the reply write.
//   - Client side: reply bodies are copied out of the read buffer before
//     delivery, because the reply envelope escapes to the caller with no
//     lifetime bound.

// framePool recycles frame read buffers across connections and requests.
var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// maxPooledBuf caps the capacity of buffers returned to framePool (and of
// retained write scratch buffers) so one huge frame does not pin a huge
// buffer forever.
const maxPooledBuf = 1 << 20

func getBuf() *[]byte { return framePool.Get().(*[]byte) }

func putBuf(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	framePool.Put(b)
}

// errConnTorn reports a reply write refused because the connection was
// already torn down (peer hangup, malformed frame, or server Close) — as
// opposed to a write that itself failed on a live connection.
var errConnTorn = errors.New("msgq: connection torn down")

// TCPServerOptions tunes a TCP server's per-connection dispatch.
type TCPServerOptions struct {
	// Workers bounds the handler goroutines per connection (default 8).
	// When every worker is busy and the queue is full, the connection's
	// read loop blocks — natural TCP backpressure — instead of spawning
	// unboundedly like the seed transport.
	Workers int
	// Inline serves requests on the connection's read loop itself: zero
	// dispatch overhead, but a blocking handler stalls the whole
	// connection. Only for handlers known not to block (mirroring the
	// inproc fast path for context-less requests).
	Inline bool
}

// TCPServer is a REQ/REP endpoint over real TCP sockets speaking binary
// proto frames. Multiple requests may be in flight on one connection;
// replies are matched to requests by envelope ID. Dispatch is
// connection-local: a bounded worker set per connection, or inline on the
// read loop when the handler is known not to block.
type TCPServer struct {
	ln      net.Listener
	handler Handler
	opts    TCPServerOptions

	mu     sync.Mutex
	closed bool
	conns  map[*tcpConn]struct{}
	wg     sync.WaitGroup

	dropped atomic.Uint64
}

// ListenTCP binds a REQ/REP server on addr ("host:port"; ":0" picks a free
// port) with default options.
func ListenTCP(addr string, h Handler) (*TCPServer, error) {
	return ListenTCPOpts(addr, h, TCPServerOptions{})
}

// ListenTCPOpts binds a REQ/REP server on addr with explicit dispatch
// options.
func ListenTCPOpts(addr string, h Handler, opts TCPServerOptions) (*TCPServer, error) {
	if h == nil {
		return nil, fmt.Errorf("msgq: listen %s: nil handler", addr)
	}
	if opts.Workers <= 0 {
		opts.Workers = 8
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("msgq: listen %s: %w", addr, err)
	}
	s := &TCPServer{ln: ln, handler: h, opts: opts, conns: make(map[*tcpConn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr implements Server.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// DroppedReplies reports how many handler replies could not be written
// because their connection was already torn down. A nonzero value after
// Close is expected when handlers were still running; a climbing value on
// a live server means peers are hanging up mid-request.
func (s *TCPServer) DroppedReplies() uint64 { return s.dropped.Load() }

// Close implements Server. It does not wait for in-flight handlers (a
// stuck handler must not wedge Close); their reply writes fail with the
// torn-connection sentinel and are counted by DroppedReplies.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*tcpConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.tear()
	}
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c := &tcpConn{srv: s, conn: conn, br: bufio.NewReaderSize(conn, 32<<10)}
		if !s.opts.Inline {
			c.reqs = make(chan connReq, s.opts.Workers)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go c.readLoop()
	}
}

// connReq is one decoded request handed from a connection's read loop to a
// worker, together with the pooled buffer its Body aliases.
type connReq struct {
	env proto.Envelope
	buf *[]byte
}

// tcpConn is one accepted server connection: buffered frame reads, a
// bounded worker set (or inline dispatch), and checked single-write
// replies behind a shared scratch buffer.
type tcpConn struct {
	srv  *TCPServer
	conn net.Conn
	br   *bufio.Reader

	wmu     sync.Mutex
	scratch []byte

	// down flips exactly once when the connection is torn (read loop
	// exit, write failure, or server Close); the underlying conn is
	// closed by whichever side wins the flip, never twice.
	down atomic.Bool

	reqs    chan connReq // nil in inline mode
	workers int          // owned by the read loop
}

// tear marks the connection down and closes it exactly once.
func (c *tcpConn) tear() {
	if c.down.CompareAndSwap(false, true) {
		_ = c.conn.Close()
	}
}

// readLoop reads frames into pooled buffers and dispatches them. It is the
// only goroutine that sends on (and therefore closes) c.reqs.
func (c *tcpConn) readLoop() {
	defer c.srv.wg.Done()
	defer func() {
		c.srv.mu.Lock()
		delete(c.srv.conns, c)
		c.srv.mu.Unlock()
		c.tear()
		if c.reqs != nil {
			close(c.reqs) // workers drain the queue, then exit
		}
	}()
	// The interner is read-loop-local: header strings repeat per peer.
	in := proto.NewInterner()
	if c.srv.opts.Inline {
		var buf []byte
		for {
			payload, err := proto.ReadFramePayload(c.br, &buf)
			if err != nil {
				return // EOF on clean close; any error (incl. corrupt frame) tears the conn
			}
			env, err := proto.DecodeFrameInterned(payload, in)
			if err != nil {
				return
			}
			c.serve(env, nil) // buf is reused next iteration: reply already written
		}
	}
	for {
		buf := getBuf()
		payload, err := proto.ReadFramePayload(c.br, buf)
		if err != nil {
			putBuf(buf)
			return
		}
		env, err := proto.DecodeFrameInterned(payload, in)
		if err != nil {
			putBuf(buf)
			return
		}
		req := connReq{env: env, buf: buf}
		// Lazily grow the worker set: one worker as soon as there is any
		// work, more while the queue has depth, up to the bound. A full
		// queue blocks the read loop — backpressure, not goroutine spray.
		if c.workers == 0 || (len(c.reqs) > 0 && c.workers < c.srv.opts.Workers) {
			c.workers++
			go c.worker()
		}
		c.reqs <- req
	}
}

// worker serves queued requests until the read loop closes the queue.
// Workers are deliberately not tracked by the server WaitGroup: Close must
// not block on a stuck handler; torn-connection reply writes are dropped
// and counted instead.
func (c *tcpConn) worker() {
	for req := range c.reqs {
		c.serve(req.env, req.buf)
	}
}

// serve runs the handler and writes the reply, then recycles the request
// buffer. The buffer is recycled only after the reply write: the handler
// or the reply envelope may alias the request Body (echo handlers), and
// the ownership contract extends exactly until the reply frame is encoded.
func (c *tcpConn) serve(env proto.Envelope, buf *[]byte) {
	reply := c.srv.handler(env)
	reply.ID = env.ID // replies are matched by request ID
	if err := c.writeFrame(&reply); err != nil {
		c.srv.dropped.Add(1)
	}
	if buf != nil {
		putBuf(buf)
	}
}

// writeFrame encodes env into the connection scratch buffer and writes it
// in a single syscall. It is the checked write: a connection already torn
// down returns errConnTorn without touching the socket (no spurious
// double-Close), while a genuine write failure tears the connection and
// returns the real error.
func (c *tcpConn) writeFrame(env *proto.Envelope) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.down.Load() {
		return errConnTorn
	}
	b, err := proto.AppendFrame(c.scratch[:0], env)
	if err != nil {
		// The peer's matching request would hang forever without a
		// reply; tearing the connection fails it over there instead.
		c.tear()
		return err
	}
	if cap(b) <= maxPooledBuf {
		c.scratch = b[:0]
	} else {
		c.scratch = nil
	}
	if _, err := c.conn.Write(b); err != nil {
		if c.down.Load() {
			// Close raced in under the write: torn down, not broken.
			return errConnTorn
		}
		c.tear()
		return err
	}
	return nil
}

// --- client --------------------------------------------------------------

// Pending-reply table geometry: requests park in a lock-striped ring of
// reusable waiter slots instead of a map[uint64]chan behind one mutex. An
// envelope ID encodes generation | stripe | slot, so the read loop finds
// its waiter with one stripe lock and no map traffic, and slot reuse is
// detected by generation mismatch rather than ABA on the ID.
const (
	pendStripes    = 16   // concurrent requesters spread across this many locks
	slotsPerStripe = 4096 // in-flight bound: pendStripes × slotsPerStripe ≈ 65k requests
)

// waiter lifecycle, advanced by compare-and-swap so exactly one of
// {reply, cancel, connection error} wins a slot.
const (
	waiterIdle      uint32 = iota // in the free list
	waiterArmed                   // request in flight
	waiterDelivered               // read loop (or error walker) owns the result
	waiterCancelled               // requester withdrew (ctx or write error)
)

// waiter is one reusable pending-request slot.
type waiter struct {
	state atomic.Uint32
	gen   uint32          // bumped per acquisition; guarded by the stripe mutex
	ch    chan waitResult // buffered 1, reused across acquisitions
}

type waitResult struct {
	env proto.Envelope
	err error
}

// pendStripe is one lock's worth of waiter slots.
type pendStripe struct {
	mu    sync.Mutex
	slots []*waiter
	free  []int32
}

// TCPClient is a REQ/REP client over one TCP connection with an ID-matched
// reply mux, allowing concurrent Request calls. See the pending-reply
// table notes above for how replies find their requesters.
type TCPClient struct {
	conn net.Conn
	br   *bufio.Reader

	wmu     sync.Mutex // frame write serialization
	scratch []byte

	stripes [pendStripes]pendStripe
	rr      atomic.Uint32 // stripe rotation for acquisitions

	closed atomic.Bool
	dead   atomic.Bool // read loop has failed; set before the error walk
	errMu  sync.Mutex
	errVal error

	late atomic.Uint64
}

// DialTCP connects to a TCP server.
func DialTCP(addr string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("msgq: dial %s: %w", addr, err)
	}
	c := &TCPClient{conn: conn, br: bufio.NewReaderSize(conn, 32<<10)}
	go c.readLoop()
	return c, nil
}

// LateReplies reports how many replies arrived for requests that were no
// longer waiting — cancelled by context, failed at write time, or already
// completed under a recycled slot generation. The seed transport dropped
// these silently; the gauge makes the cancel/reply race observable.
func (c *TCPClient) LateReplies() uint64 { return c.late.Load() }

func (c *TCPClient) readErr() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	if c.errVal == nil {
		return ErrClosed
	}
	return c.errVal
}

// fail records the terminal read error, then wakes every armed waiter.
// The dead flag is stored before the stripe walk and Request re-checks it
// after arming — the flag-flag protocol guarantees at least one side sees
// the other, so no waiter can arm itself into a dead table and hang.
func (c *TCPClient) fail(err error) {
	if err == io.EOF || errors.Is(err, net.ErrClosed) {
		err = ErrClosed
	}
	c.errMu.Lock()
	if c.errVal == nil {
		c.errVal = err
	} else {
		err = c.errVal
	}
	c.errMu.Unlock()
	c.dead.Store(true)
	for si := range c.stripes {
		st := &c.stripes[si]
		st.mu.Lock()
		for _, w := range st.slots {
			if w.state.CompareAndSwap(waiterArmed, waiterDelivered) {
				w.ch <- waitResult{err: err}
			}
		}
		st.mu.Unlock()
	}
}

func (c *TCPClient) readLoop() {
	var buf []byte
	in := proto.NewInterner()
	for {
		payload, err := proto.ReadFramePayload(c.br, &buf)
		if err != nil {
			c.fail(err)
			return
		}
		env, err := proto.DecodeFrameInterned(payload, in)
		if err != nil {
			c.fail(err)
			return
		}
		c.deliver(env)
	}
}

// deliver routes one reply to its waiter, or counts it late. The CAS to
// waiterDelivered is the race decider: a concurrent cancel that lost it
// will collect this result instead of its context error.
func (c *TCPClient) deliver(env proto.Envelope) {
	gen := uint32(env.ID >> 32)
	si := int(env.ID>>16) & 0xffff
	slot := int(env.ID) & 0xffff
	if si >= pendStripes {
		c.late.Add(1)
		return
	}
	st := &c.stripes[si]
	st.mu.Lock()
	if slot >= len(st.slots) {
		st.mu.Unlock()
		c.late.Add(1)
		return
	}
	w := st.slots[slot]
	if w.gen != gen || !w.state.CompareAndSwap(waiterArmed, waiterDelivered) {
		st.mu.Unlock()
		c.late.Add(1)
		return
	}
	st.mu.Unlock()
	if env.Body != nil {
		// The only copy on the reply path: the envelope escapes to the
		// requester with no lifetime bound, while the read buffer is
		// reused for the very next frame.
		env.Body = append([]byte(nil), env.Body...)
	}
	w.ch <- waitResult{env: env} // buffered; the slot is not recycled until received
}

// acquire arms a waiter slot and returns it with its wire ID.
func (c *TCPClient) acquire() (*waiter, uint64, int, int, error) {
	si := int(c.rr.Add(1)) % pendStripes
	st := &c.stripes[si]
	st.mu.Lock()
	var slot int
	if n := len(st.free); n > 0 {
		slot = int(st.free[n-1])
		st.free = st.free[:n-1]
	} else {
		if len(st.slots) >= slotsPerStripe {
			st.mu.Unlock()
			return nil, 0, 0, 0, fmt.Errorf("msgq: over %d requests in flight", pendStripes*slotsPerStripe)
		}
		slot = len(st.slots)
		st.slots = append(st.slots, &waiter{ch: make(chan waitResult, 1)})
	}
	w := st.slots[slot]
	w.gen++
	gen := w.gen
	w.state.Store(waiterArmed)
	st.mu.Unlock()
	return w, uint64(gen)<<32 | uint64(si)<<16 | uint64(slot), si, slot, nil
}

// release returns a settled slot to its stripe's free list.
func (c *TCPClient) release(si, slot int, w *waiter) {
	st := &c.stripes[si]
	st.mu.Lock()
	w.state.Store(waiterIdle)
	st.free = append(st.free, int32(slot))
	st.mu.Unlock()
}

// collect blocks for the delivered result and recycles the slot. Safe only
// after the slot's state reached waiterDelivered: delivery sends exactly
// once after winning that CAS.
func (c *TCPClient) collect(si, slot int, w *waiter) (proto.Envelope, error) {
	res := <-w.ch
	c.release(si, slot, w)
	if res.err != nil {
		return proto.Envelope{}, res.err
	}
	return res.env, nil
}

// Request implements Client. The envelope's ID field is overwritten with a
// connection-unique slot-coded ID.
//
// The cancel/reply race is decided by one CAS on the waiter state: if the
// cancel wins, the request returns ctx.Err() and the in-flight reply is
// counted by LateReplies when it lands; if the reply wins, the request
// returns that reply even though the context fired. Both interleavings are
// deterministic — no reply is ever dropped without accounting.
func (c *TCPClient) Request(ctx context.Context, env proto.Envelope) (proto.Envelope, error) {
	if c.closed.Load() {
		return proto.Envelope{}, ErrClosed
	}
	if c.dead.Load() {
		return proto.Envelope{}, c.readErr()
	}
	w, id, si, slot, err := c.acquire()
	if err != nil {
		return proto.Envelope{}, err
	}
	if c.dead.Load() {
		// The read loop died around our acquisition. The error walker may
		// or may not have seen the armed slot; the CAS decides.
		if w.state.CompareAndSwap(waiterArmed, waiterCancelled) {
			c.release(si, slot, w)
			return proto.Envelope{}, c.readErr()
		}
		return c.collect(si, slot, w)
	}

	env.ID = id
	c.wmu.Lock()
	b, err := proto.AppendFrame(c.scratch[:0], &env)
	if err == nil {
		if cap(b) <= maxPooledBuf {
			c.scratch = b[:0]
		} else {
			c.scratch = nil
		}
		_, err = c.conn.Write(b)
	}
	c.wmu.Unlock()
	if err != nil {
		if w.state.CompareAndSwap(waiterArmed, waiterCancelled) {
			c.release(si, slot, w)
			return proto.Envelope{}, fmt.Errorf("msgq: send request: %w", err)
		}
		// The error walker beat us to the slot; surface its verdict.
		return c.collect(si, slot, w)
	}

	if ctx.Done() == nil {
		// Fast path for uncancellable requests: plain blocking receive,
		// no select machinery (mirrors the inproc inline path).
		return c.collect(si, slot, w)
	}
	select {
	case res := <-w.ch:
		c.release(si, slot, w)
		if res.err != nil {
			return proto.Envelope{}, res.err
		}
		return res.env, nil
	case <-ctx.Done():
		if w.state.CompareAndSwap(waiterArmed, waiterCancelled) {
			c.release(si, slot, w)
			return proto.Envelope{}, ctx.Err()
		}
		// The reply won the CAS before our cancel: deliver it.
		return c.collect(si, slot, w)
	}
}

// Close implements Client.
func (c *TCPClient) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	return c.conn.Close()
}

package xproc

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/msgq"
	"repro/internal/platform"
	"repro/internal/proto"
	"repro/internal/scheduler"
	"repro/internal/spec"
)

// Proc is the driver-side handle of one pilot-agent process. It implements
// router.Target (UID/Shapes/Snapshot), so the session-level routers route
// across OS processes exactly as they route across in-proc pilots.
type Proc struct {
	cfg    AgentConfig
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	cli    *msgq.TCPClient
	shapes []platform.NodeGroup

	nextID atomic.Uint64
	killed atomic.Bool
}

// Spawn re-executes the current binary as a pilot agent and waits for its
// ready handshake. The child inherits stderr; its stdin is a pipe held
// open for the driver's lifetime (EOF is the agent's die signal).
func Spawn(ctx context.Context, cfg AgentConfig) (*Proc, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("xproc: spawn: %w", err)
	}
	raw, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("xproc: spawn: %w", err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), EnvAgentConfig+"="+string(raw))
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("xproc: spawn %s: %w", cfg.UID, err)
	}
	p := &Proc{cfg: cfg, cmd: cmd, stdin: stdin}

	// Scan stdout for the ready line, bounded by ctx and a hard cap.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if addr, ok := strings.CutPrefix(sc.Text(), readyPrefix); ok {
				addrCh <- addr
				break
			}
		}
		close(addrCh)
		_, _ = io.Copy(io.Discard, stdout) // keep the pipe drained
	}()
	deadline := 30 * time.Second
	var addr string
	select {
	case a, ok := <-addrCh:
		if !ok || a == "" {
			_ = p.Kill()
			return nil, fmt.Errorf("xproc: agent %s exited before ready", cfg.UID)
		}
		addr = a
	case <-time.After(deadline):
		_ = p.Kill()
		return nil, fmt.Errorf("xproc: agent %s not ready after %s", cfg.UID, deadline)
	case <-ctx.Done():
		_ = p.Kill()
		return nil, ctx.Err()
	}

	cli, err := msgq.DialTCP(addr)
	if err != nil {
		_ = p.Kill()
		return nil, err
	}
	p.cli = cli
	// Cache the pilot's shapes once: routers consult Shapes() per
	// submission and must not pay (or fail) an RPC each time.
	var shapes []platform.NodeGroup
	if err := p.call(ctx, "shapes", nil, &shapes); err != nil {
		_ = p.Kill()
		return nil, fmt.Errorf("xproc: agent %s shapes: %w", cfg.UID, err)
	}
	p.shapes = shapes
	return p, nil
}

// call performs one control RPC.
func (p *Proc) call(ctx context.Context, method string, args any, out any) error {
	body := callBody{Method: method}
	if args != nil {
		raw, err := json.Marshal(args)
		if err != nil {
			return err
		}
		body.Args = raw
	}
	env, err := proto.NewEnvelope(KindCall, p.nextID.Add(1), "driver", p.cfg.UID, time.Now(), body)
	if err != nil {
		return err
	}
	reply, err := p.cli.Request(ctx, env)
	if err != nil {
		return err
	}
	var rb replyBody
	if err := reply.Decode(proto.KindReply, &rb); err != nil {
		return err
	}
	if rb.Err != "" {
		return errors.New(rb.Err)
	}
	if out != nil && rb.Result != nil {
		return json.Unmarshal(rb.Result, out)
	}
	return nil
}

// UID implements router.Target.
func (p *Proc) UID() string { return p.cfg.UID }

// Shapes implements router.Target (cached at spawn).
func (p *Proc) Shapes() []platform.NodeGroup { return p.shapes }

// Snapshot implements router.Target via RPC; a dead agent yields the zero
// snapshot (no free capacity) so load-aware routers steer away from it.
func (p *Proc) Snapshot() scheduler.Snapshot {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var snap scheduler.Snapshot
	if err := p.call(ctx, "snapshot", nil, &snap); err != nil {
		return scheduler.Snapshot{}
	}
	return snap
}

// SubmitTask submits a task description to the agent's pilot and returns
// the assigned task UID.
func (p *Proc) SubmitTask(ctx context.Context, d spec.TaskDescription) (string, error) {
	var res submitResult
	if err := p.call(ctx, "submit", submitArgs{Desc: d}, &res); err != nil {
		return "", err
	}
	return res.UID, nil
}

// WaitTasks blocks until every listed task settles on the agent and
// returns their final states (one blocking RPC for the whole set).
func (p *Proc) WaitTasks(ctx context.Context, uids []string) ([]TaskStatus, error) {
	var res waitReply
	if err := p.call(ctx, "wait", waitArgs{UIDs: uids}, &res); err != nil {
		return nil, err
	}
	return res.Tasks, nil
}

// SubmitService submits a service description to the agent's pilot.
func (p *Proc) SubmitService(ctx context.Context, d spec.ServiceDescription) (string, error) {
	var res submitResult
	if err := p.call(ctx, "svc_submit", svcSubmitArgs{Desc: d}, &res); err != nil {
		return "", err
	}
	return res.UID, nil
}

// AwaitService blocks until the service is ACTIVE and returns its
// published endpoint — a dialable "tcp://host:port" address, since agent
// pilots run the TCP transport.
func (p *Proc) AwaitService(ctx context.Context, uid string) (proto.Endpoint, error) {
	var res svcAwaitReply
	if err := p.call(ctx, "svc_await", svcAwaitArgs{UID: uid}, &res); err != nil {
		return proto.Endpoint{}, err
	}
	return res.Endpoint, nil
}

// Ping round-trips the control channel.
func (p *Proc) Ping(ctx context.Context) error { return p.call(ctx, "ping", nil, nil) }

// Shutdown asks the agent to exit cleanly and waits for the process,
// killing it if it lingers.
func (p *Proc) Shutdown(ctx context.Context) error {
	if p.killed.Load() {
		return nil
	}
	callCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	err := p.call(callCtx, "shutdown", nil, nil)
	cancel()
	_ = p.cli.Close()
	_ = p.stdin.Close()
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		_ = p.cmd.Process.Kill()
		<-done
	}
	p.killed.Store(true)
	return err
}

// Kill terminates the agent process immediately (SIGKILL) — the
// cross-process analogue of killing a pilot's host mid-run.
func (p *Proc) Kill() error {
	if p.killed.Swap(true) {
		return nil
	}
	if p.cli != nil {
		_ = p.cli.Close()
	}
	_ = p.stdin.Close()
	err := p.cmd.Process.Kill()
	_ = p.cmd.Wait()
	return err
}

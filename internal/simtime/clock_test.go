package simtime

import (
	"context"
	"testing"
	"time"
)

func TestRealClockBasics(t *testing.T) {
	c := NewReal()
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatalf("Real.Now() = %v far behind wall clock", now)
	}
	start := time.Now()
	c.Sleep(5 * time.Millisecond)
	if el := time.Since(start); el < 4*time.Millisecond {
		t.Fatalf("Real.Sleep returned after %v, want >= ~5ms", el)
	}
}

func TestRealTimerAndTicker(t *testing.T) {
	c := NewReal()
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(time.Second):
		t.Fatal("real timer did not fire")
	}
	tk := c.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(time.Second):
		t.Fatal("real ticker did not tick")
	}
}

func TestRealAfter(t *testing.T) {
	c := NewReal()
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("Real.After did not fire")
	}
}

func TestSinceHelper(t *testing.T) {
	v := NewVirtual(origin)
	start := v.Now()
	v.Advance(90 * time.Second)
	if d := Since(v, start); d != 90*time.Second {
		t.Fatalf("Since = %v, want 90s", d)
	}
}

func TestSleepCtxCancelled(t *testing.T) {
	v := NewVirtual(origin)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- SleepCtx(ctx, v, time.Hour) }()
	for v.PendingSleepers() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("SleepCtx = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("SleepCtx did not observe cancellation")
	}
}

func TestSleepCtxNonPositive(t *testing.T) {
	v := NewVirtual(origin)
	if err := SleepCtx(context.Background(), v, 0); err != nil {
		t.Fatalf("SleepCtx(0) = %v, want nil", err)
	}
}

func TestScaledClockCompression(t *testing.T) {
	// 1000x: sleeping 1 simulated second should take ~1ms real.
	c := NewScaled(1000, origin)
	start := time.Now()
	c.Sleep(time.Second)
	el := time.Since(start)
	if el < 500*time.Microsecond || el > 500*time.Millisecond {
		t.Fatalf("scaled sleep of 1s took %v real, want ~1ms", el)
	}
}

func TestScaledClockNowAdvances(t *testing.T) {
	c := NewScaled(1000, origin)
	time.Sleep(2 * time.Millisecond) // ~2 simulated seconds
	el := c.Now().Sub(origin)
	if el < 500*time.Millisecond {
		t.Fatalf("scaled Now advanced only %v sim after 2ms real", el)
	}
}

func TestScaledClockTimerTickerAfter(t *testing.T) {
	c := NewScaled(1000, origin)
	tm := c.NewTimer(time.Second) // ~1ms real
	select {
	case <-tm.C():
	case <-time.After(time.Second):
		t.Fatal("scaled timer did not fire")
	}
	select {
	case <-c.After(time.Second):
	case <-time.After(time.Second):
		t.Fatal("scaled After did not fire")
	}
	tk := c.NewTicker(time.Second)
	select {
	case <-tk.C():
	case <-time.After(time.Second):
		t.Fatal("scaled ticker did not tick")
	}
	tk.Stop()
	tk.Stop() // idempotent
}

func TestScaledTimerStop(t *testing.T) {
	c := NewScaled(1, origin)
	tm := c.NewTimer(time.Hour)
	if !tm.Stop() {
		t.Fatal("Stop on pending scaled timer = false")
	}
}

func TestScaledPanicsOnBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewScaled(0) did not panic")
		}
	}()
	NewScaled(0, origin)
}

func TestScaledCompressRoundsUp(t *testing.T) {
	c := NewScaled(1e12, origin)
	if w := c.compress(time.Nanosecond); w != 1 {
		t.Fatalf("compress rounded to %v, want 1ns floor", w)
	}
	if w := c.compress(-time.Second); w != 0 {
		t.Fatalf("compress(-1s) = %v, want 0", w)
	}
}

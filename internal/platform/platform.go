// Package platform models the computing platforms of the paper's
// evaluation: OLCF Frontier (local bootstrap scaling, Exp 1), NCSA Delta
// (local NOOP/llama scaling, Exp 2/3), and R3, a cloud server hosting
// remote model services. A platform is a set of nodes with cores, GPUs and
// memory, an interconnect latency distribution, WAN latency distributions
// to other platforms, and a launch-overhead model reproducing the paper's
// observed system-level startup behaviour.
package platform

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/msgq"
	"repro/internal/rng"
)

// releaseEpoch counts every allocation release in the process. Schedulers
// compare it against the releases they performed themselves to detect
// capacity returned behind their back (allocations released directly
// rather than through Scheduler.Release) without scanning nodes.
var releaseEpoch atomic.Uint64

// ReleaseEpoch returns the process-wide allocation release counter.
func ReleaseEpoch() uint64 { return releaseEpoch.Load() }

// NodeSpec describes the hardware of one node type.
type NodeSpec struct {
	Cores int
	GPUs  int
	MemGB float64
}

// Covers reports whether a node of this shape could ever satisfy the
// per-node demand — the one admission predicate shared by the
// scheduler's satisfiability check, its snapshot's CanEverFit, and the
// shape-aware task routers, so all three layers agree on what fits.
func (s NodeSpec) Covers(cores, gpus int, memGB float64) bool {
	return s.Cores >= cores && s.GPUs >= gpus && s.MemGB >= memGB
}

// NodeGroup is a run of identically shaped nodes inside a platform.
// Mixed-shape platforms (NewMixed) are described as an ordered list of
// groups; Shapes reports the same structure back for any node set.
type NodeGroup struct {
	Count int
	Spec  NodeSpec
}

// Node is one allocatable machine. All methods are safe for concurrent
// use.
//
// Free capacity is tracked in maintained counters updated on every
// allocation and release, so capacity queries are O(1) instead of O(slots)
// scans over the slot bitmaps — the scheduler reads these counters on
// every placement attempt.
type Node struct {
	name string
	spec NodeSpec

	mu        sync.Mutex
	coreUsed  []bool
	gpuUsed   []bool
	freeCores int
	freeGPUs  int
	memUsedGB float64
}

// NewNode returns an idle node.
func NewNode(name string, spec NodeSpec) *Node {
	return &Node{
		name:      name,
		spec:      spec,
		coreUsed:  make([]bool, spec.Cores),
		gpuUsed:   make([]bool, spec.GPUs),
		freeCores: spec.Cores,
		freeGPUs:  spec.GPUs,
	}
}

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// Spec returns the node hardware description.
func (n *Node) Spec() NodeSpec { return n.spec }

// FreeCores returns the number of unallocated cores.
func (n *Node) FreeCores() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.freeCores
}

// FreeGPUs returns the number of unallocated GPUs.
func (n *Node) FreeGPUs() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.freeGPUs
}

// FreeMemGB returns the unallocated memory.
func (n *Node) FreeMemGB() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.spec.MemGB - n.memUsedGB
}

// Free returns the node's free cores, GPUs and memory in one lock
// acquisition — the scheduler's index refresh reads all three per node.
func (n *Node) Free() (cores, gpus int, memGB float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.freeCores, n.freeGPUs, n.spec.MemGB - n.memUsedGB
}

// Allocation records resources held on one node. Release it exactly once.
type Allocation struct {
	node  *Node
	Cores []int
	GPUs  []int
	MemGB float64

	releaseOnce sync.Once
}

// Node returns the node the allocation lives on.
func (a *Allocation) Node() *Node { return a.node }

// Release returns the allocation's resources to the node. Safe to call
// more than once; only the first call has effect.
func (a *Allocation) Release() {
	a.releaseOnce.Do(func() {
		a.node.mu.Lock()
		defer a.node.mu.Unlock()
		for _, c := range a.Cores {
			a.node.coreUsed[c] = false
		}
		for _, g := range a.GPUs {
			a.node.gpuUsed[g] = false
		}
		a.node.freeCores += len(a.Cores)
		a.node.freeGPUs += len(a.GPUs)
		a.node.memUsedGB -= a.MemGB
		releaseEpoch.Add(1)
	})
}

// TryAlloc attempts to allocate cores, gpus and memGB on the node,
// returning nil when the node cannot satisfy the request. Slot indices are
// assigned lowest-first, which keeps placements deterministic. The
// feasibility check reads the maintained free counters (O(1)); only an
// accepted allocation pays the slot scan.
func (n *Node) TryAlloc(cores, gpus int, memGB float64) *Allocation {
	if cores < 0 || gpus < 0 || memGB < 0 {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.freeCores < cores || n.freeGPUs < gpus {
		return nil
	}
	if n.spec.MemGB-n.memUsedGB < memGB {
		return nil
	}
	a := &Allocation{node: n, MemGB: memGB}
	if slots := cores + gpus; slots > 0 {
		// one backing array for both slot lists: a single allocation
		buf := make([]int, 0, slots)
		for i := 0; i < len(n.coreUsed) && len(buf) < cores; i++ {
			if !n.coreUsed[i] {
				n.coreUsed[i] = true
				buf = append(buf, i)
			}
		}
		a.Cores = buf[:len(buf):len(buf)]
		for i := 0; i < len(n.gpuUsed) && len(buf) < slots; i++ {
			if !n.gpuUsed[i] {
				n.gpuUsed[i] = true
				buf = append(buf, i)
			}
		}
		a.GPUs = buf[len(a.Cores):]
	}
	n.freeCores -= cores
	n.freeGPUs -= gpus
	n.memUsedGB += memGB
	return a
}

// LaunchModel reproduces the paper's Fig. 3 launch-time behaviour: launch
// overhead per service instance is roughly constant up to Saturation
// concurrent launches, beyond which a system-level (MPI startup) penalty
// grows super-linearly with concurrency.
type LaunchModel struct {
	// Base is the per-instance launch overhead at low concurrency.
	Base rng.DurationDist
	// Saturation is the concurrency beyond which the penalty applies
	// (observed ~160 on Frontier).
	Saturation int
	// PenaltyExp shapes the super-linear growth factor
	// (concurrency/Saturation)^PenaltyExp applied to the base mean.
	PenaltyExp float64
}

// Sample draws the launch overhead for one instance when `concurrent`
// instances are being launched together.
func (m LaunchModel) Sample(src *rng.Source, concurrent int) time.Duration {
	return m.Base.Sample(src) + m.Penalty(concurrent)
}

// Penalty returns the system-level startup penalty added to the base
// launch overhead when `concurrent` instances launch together.
func (m LaunchModel) Penalty(concurrent int) time.Duration {
	if m.Saturation <= 0 || concurrent <= m.Saturation {
		return 0
	}
	factor := math.Pow(float64(concurrent)/float64(m.Saturation), m.PenaltyExp)
	return time.Duration(float64(m.Base.Mean()) * (factor - 1))
}

// Platform is a named set of nodes plus its latency topology.
type Platform struct {
	name  string
	nodes []*Node

	// LocalLatency is the one-way node-to-node latency inside the
	// platform.
	LocalLatency rng.DurationDist
	// IntraNodeLatency is the one-way latency between endpoints on the
	// same node (loopback / shared memory).
	IntraNodeLatency rng.DurationDist
	// WANLatency maps a remote platform name to the one-way latency of
	// the wide-area link.
	WANLatency map[string]rng.DurationDist
	// Launch models service/task launch overhead.
	Launch LaunchModel
	// SchedPolicy names the default scheduling policy for pilots acquired
	// on this platform ("strict", "backfill", "best-fit"; empty = strict).
	// pilot.Config.SchedPolicy and core.SessionConfig.SchedPolicy override
	// it per pilot and per session.
	SchedPolicy string
}

// New assembles a platform of n identical nodes.
func New(name string, n int, spec NodeSpec) *Platform {
	if n <= 0 {
		panic(fmt.Sprintf("platform: %s with %d nodes", name, n))
	}
	return NewMixed(name, []NodeGroup{{Count: n, Spec: spec}})
}

// NewMixed assembles a heterogeneous platform from an ordered list of
// node groups. Nodes are numbered consecutively across groups, so group
// order is placement order for index-based (first-fit) schedulers: a
// fragmentation-sensitive catalog entry puts its large nodes first to
// expose the first-fit failure mode that best-fit placement avoids.
func NewMixed(name string, groups []NodeGroup) *Platform {
	total := 0
	for _, g := range groups {
		if g.Count <= 0 {
			panic(fmt.Sprintf("platform: %s group with %d nodes", name, g.Count))
		}
		total += g.Count
	}
	if total == 0 {
		panic(fmt.Sprintf("platform: %s with no node groups", name))
	}
	p := &Platform{
		name:       name,
		WANLatency: make(map[string]rng.DurationDist),
	}
	i := 0
	for _, g := range groups {
		for k := 0; k < g.Count; k++ {
			p.nodes = append(p.nodes, NewNode(fmt.Sprintf("%s-node%04d", name, i), g.Spec))
			i++
		}
	}
	return p
}

// Name returns the platform name.
func (p *Platform) Name() string { return p.name }

// Nodes returns the platform's nodes (the slice is shared; nodes are
// individually thread-safe).
func (p *Platform) Nodes() []*Node { return p.nodes }

// Node returns the named node, or nil.
func (p *Platform) Node(name string) *Node {
	for _, n := range p.nodes {
		if n.name == name {
			return n
		}
	}
	return nil
}

// Shapes returns the platform's node composition as consecutive runs of
// identical specs, in node order.
func (p *Platform) Shapes() []NodeGroup { return ShapesOf(p.nodes) }

// ShapesOf compresses a node list into consecutive runs of identical
// specs, in node order. Pilots use it to report the shape mix of their
// virtual node view; a single-group result means a homogeneous pool.
func ShapesOf(nodes []*Node) []NodeGroup {
	var groups []NodeGroup
	for _, n := range nodes {
		if len(groups) > 0 && groups[len(groups)-1].Spec == n.spec {
			groups[len(groups)-1].Count++
			continue
		}
		groups = append(groups, NodeGroup{Count: 1, Spec: n.spec})
	}
	return groups
}

// FormatShapes renders a node-group list compactly, e.g.
// "32×128c/16g + 96×16c/0g".
func FormatShapes(groups []NodeGroup) string {
	var b strings.Builder
	for i, g := range groups {
		if i > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%d×%dc/%dg", g.Count, g.Spec.Cores, g.Spec.GPUs)
	}
	return b.String()
}

// TotalCores returns the core count across all nodes.
func (p *Platform) TotalCores() int {
	total := 0
	for _, n := range p.nodes {
		total += n.spec.Cores
	}
	return total
}

// TotalGPUs returns the GPU count across all nodes.
func (p *Platform) TotalGPUs() int {
	total := 0
	for _, n := range p.nodes {
		total += n.spec.GPUs
	}
	return total
}

// FreeGPUs returns currently unallocated GPUs across all nodes.
func (p *Platform) FreeGPUs() int {
	total := 0
	for _, n := range p.nodes {
		total += n.FreeGPUs()
	}
	return total
}

// FreeCores returns currently unallocated cores across all nodes.
func (p *Platform) FreeCores() int {
	total := 0
	for _, n := range p.nodes {
		total += n.FreeCores()
	}
	return total
}

// Utilization returns the fraction of cores and GPUs currently allocated.
func (p *Platform) Utilization() (cores, gpus float64) {
	tc, tg := p.TotalCores(), p.TotalGPUs()
	if tc > 0 {
		cores = 1 - float64(p.FreeCores())/float64(tc)
	}
	if tg > 0 {
		gpus = 1 - float64(p.FreeGPUs())/float64(tg)
	}
	return cores, gpus
}

// --- address scheme -------------------------------------------------------

// Addr formats a transport address "platform/node/entity". Node may be
// empty for platform-level endpoints (e.g. the client session).
func Addr(platform, node, entity string) string {
	if node == "" {
		return platform + "//" + entity
	}
	return platform + "/" + node + "/" + entity
}

// ParseAddr splits an address produced by Addr.
func ParseAddr(addr string) (platform, node, entity string, err error) {
	parts := strings.SplitN(addr, "/", 3)
	if len(parts) != 3 {
		return "", "", "", fmt.Errorf("platform: malformed address %q", addr)
	}
	return parts[0], parts[1], parts[2], nil
}

// --- topology resolver -----------------------------------------------------

// Topology resolves link profiles between addressed endpoints across a set
// of platforms.
type Topology struct {
	platforms map[string]*Platform
	// DefaultWAN is used between platforms with no explicit WAN entry.
	DefaultWAN rng.DurationDist
}

// NewTopology indexes the given platforms.
func NewTopology(platforms ...*Platform) *Topology {
	t := &Topology{platforms: make(map[string]*Platform, len(platforms))}
	for _, p := range platforms {
		t.platforms[p.name] = p
	}
	return t
}

// Platform returns the named platform, or nil.
func (t *Topology) Platform(name string) *Platform { return t.platforms[name] }

// PlatformNames returns the sorted platform names.
func (t *Topology) PlatformNames() []string {
	names := make([]string, 0, len(t.platforms))
	for n := range t.platforms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Resolver returns a msgq.Resolver implementing the topology: same node →
// intra-node latency; same platform → local latency; different platforms →
// WAN latency (source platform's entry for the target, else DefaultWAN).
func (t *Topology) Resolver() msgq.Resolver {
	return func(from, to string) msgq.LinkProfile {
		fp, fn, _, errF := ParseAddr(from)
		tp, tn, _, errT := ParseAddr(to)
		if errF != nil || errT != nil {
			return msgq.LinkProfile{} // unaddressed endpoints: free link
		}
		if fp == tp {
			p := t.platforms[fp]
			if p == nil {
				return msgq.LinkProfile{}
			}
			if fn == tn && fn != "" {
				return msgq.LinkProfile{Latency: p.IntraNodeLatency}
			}
			return msgq.LinkProfile{Latency: p.LocalLatency}
		}
		if p := t.platforms[fp]; p != nil {
			if d, ok := p.WANLatency[tp]; ok {
				return msgq.LinkProfile{Latency: d}
			}
		}
		if p := t.platforms[tp]; p != nil {
			if d, ok := p.WANLatency[fp]; ok {
				return msgq.LinkProfile{Latency: d}
			}
		}
		return msgq.LinkProfile{Latency: t.DefaultWAN}
	}
}

package service

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/metrics"
	"repro/internal/msgq"
	"repro/internal/proto"
)

// DialFn connects to one concrete endpoint. The session supplies an
// implementation that dispatches on the endpoint protocol (msgq vs rest),
// so a Resolver is transport-agnostic.
type DialFn func(ep proto.Endpoint) (Caller, error)

// DefaultResolverRetries bounds how many times one Infer call re-resolves
// after a failure before surfacing the error. Each retry requires the
// registry to publish a generation newer than the one that failed, so the
// bound is on failovers survived per request, not on busy-loop attempts.
const DefaultResolverRetries = 3

// Resolver is a Caller bound to a stable service UID instead of a raw
// endpoint. Every Infer resolves the UID through the session
// EndpointRegistry: while the cached generation is current the cached
// connection is reused (one registry read per request), and when a request
// fails — or the registry reports a newer generation — the resolver drops
// the stale connection, awaits the re-publication, redials, and retries.
// This is the client half of failure-driven service re-placement: a pilot
// death re-publishes the service's endpoint under the same UID with a
// bumped generation, and resolver-backed clients follow it while
// endpoint-caching clients keep erroring into the dead address.
type Resolver struct {
	reg  *EndpointRegistry
	uid  string
	dial DialFn
	// retries bounds re-resolutions per Infer (DefaultResolverRetries).
	retries int

	mu         sync.Mutex
	cur        Caller
	gen        uint64
	reresolved int
	closed     bool
}

// NewResolver builds a Resolver for uid over reg. dial must not be nil;
// retries ≤ 0 selects DefaultResolverRetries.
func NewResolver(reg *EndpointRegistry, uid string, dial DialFn, retries int) (*Resolver, error) {
	if reg == nil || dial == nil {
		return nil, fmt.Errorf("service: resolver for %s needs a registry and a dial function", uid)
	}
	if retries <= 0 {
		retries = DefaultResolverRetries
	}
	return &Resolver{reg: reg, uid: uid, dial: dial, retries: retries}, nil
}

// Reresolved counts how many times the resolver dropped a stale
// connection and re-resolved the endpoint (0 while no failover happened).
func (r *Resolver) Reresolved() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reresolved
}

// Infer implements Caller. The happy path costs one registry generation
// check over a plain Caller; on an endpoint failure it parks in
// AwaitNewer until the failover re-publication lands (bounded by ctx and
// the retry budget) and retries the same request against the new
// endpoint. Application-level errors from a live, current-generation
// service (a full queue, a model error) surface immediately — they are
// the service answering, not the endpoint dying, and no re-publication
// would change the outcome.
func (r *Resolver) Infer(ctx context.Context, prompt string, maxTokens int) (proto.InferenceReply, metrics.Breakdown, error) {
	var lastErr error
	for attempt := 0; attempt <= r.retries; attempt++ {
		cl, gen, err := r.client(ctx)
		if err != nil {
			return proto.InferenceReply{}, metrics.Breakdown{}, err
		}
		reply, bd, err := cl.Infer(ctx, prompt, maxTokens)
		if err == nil {
			return reply, bd, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
		if !r.stale(err, gen) {
			break
		}
		if attempt == r.retries {
			// Budget exhausted: no further attempt will run, so parking
			// for the next publication would be dead work (and could
			// block a background-context caller indefinitely).
			break
		}
		// The endpoint failed (or went stale) at generation gen: drop the
		// connection and wait for a strictly newer publication before
		// retrying, so a dead endpoint is never redialed and a hard
		// service error (withdrawn UID) surfaces instead of looping. The
		// wait's own verdict wins over the transport error: ErrWithdrawn
		// means "gone for good", ctx.Err() means "caller gave up" — both
		// more actionable than the endpoint failure that preceded them.
		r.evict(gen)
		if _, _, werr := r.reg.AwaitNewer(ctx, r.uid, gen); werr != nil {
			lastErr = fmt.Errorf("%w (endpoint failed first: %v)", werr, lastErr)
			break
		}
	}
	return proto.InferenceReply{}, metrics.Breakdown{}, lastErr
}

// stale reports whether a failed request at generation gen should trigger
// re-resolution: the transport says the endpoint is gone, the registry
// already holds a different generation, or the entry is suspended (a
// failover is in flight). A live entry at the same generation returning
// an application error is NOT stale — parking would wait for a
// publication that will never come.
func (r *Resolver) stale(err error, gen uint64) bool {
	if errors.Is(err, msgq.ErrClosed) || errors.Is(err, msgq.ErrUnknownAddr) {
		return true
	}
	if _, liveGen, ok := r.reg.Resolve(r.uid); !ok || liveGen != gen {
		return true
	}
	return false
}

// client returns a Caller connected to the current endpoint of r.uid,
// redialing when the registry holds a newer generation than the cached
// connection (or none is cached yet). The first resolution waits for the
// endpoint to be published at all.
func (r *Resolver) client(ctx context.Context) (Caller, uint64, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, 0, fmt.Errorf("service: resolver for %s closed", r.uid)
	}
	cur, gen := r.cur, r.gen
	r.mu.Unlock()

	ep, liveGen, ok := r.reg.Resolve(r.uid)
	if !ok {
		// Not live right now: first call before publication, or a failover
		// in flight. Park until the (re-)publication lands.
		var err error
		ep, liveGen, err = r.reg.AwaitNewer(ctx, r.uid, gen)
		if err != nil {
			return nil, 0, err
		}
	}
	if cur != nil && gen == liveGen {
		return cur, gen, nil
	}

	cl, err := r.dial(ep)
	if err != nil {
		return nil, 0, err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		_ = cl.Close()
		return nil, 0, fmt.Errorf("service: resolver for %s closed", r.uid)
	}
	if r.cur != nil && r.gen >= liveGen {
		// another goroutine installed an equal-or-newer connection while
		// we dialed: keep the fresher one, never regress the cache
		cl2, gen2 := r.cur, r.gen
		r.mu.Unlock()
		_ = cl.Close()
		return cl2, gen2, nil
	}
	old := r.cur
	r.cur, r.gen = cl, liveGen
	if gen != 0 || old != nil {
		r.reresolved++
	}
	r.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
	return cl, liveGen, nil
}

// evict drops the cached connection if it still carries generation gen.
func (r *Resolver) evict(gen uint64) {
	r.mu.Lock()
	var old Caller
	if r.cur != nil && r.gen == gen {
		old = r.cur
		r.cur = nil
	}
	r.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
}

// Close implements Caller: drops the cached connection and refuses
// further calls.
func (r *Resolver) Close() error {
	r.mu.Lock()
	old := r.cur
	r.cur = nil
	r.closed = true
	r.mu.Unlock()
	if old != nil {
		return old.Close()
	}
	return nil
}

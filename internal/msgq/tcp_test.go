package msgq

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/simtime"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTCPCancelLosesToReply pins the reply-wins interleaving of the
// cancel/reply race: once the read loop's CAS has moved the waiter to
// delivered, a racing cancel must collect and return that reply instead of
// dropping it (white-box at the waiter-table level, where the interleaving
// can be forced deterministically).
func TestTCPCancelLosesToReply(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	w, id, si, slot, err := c.acquire()
	if err != nil {
		t.Fatal(err)
	}
	// The reply lands first: deliver wins the CAS.
	c.deliver(proto.Envelope{Kind: proto.KindReply, ID: id, Body: []byte(`{"x":1}`)})
	if w.state.Load() != waiterDelivered {
		t.Fatalf("state = %d, want delivered", w.state.Load())
	}
	// The cancel path now loses the CAS and must surface the reply.
	if w.state.CompareAndSwap(waiterArmed, waiterCancelled) {
		t.Fatal("cancel CAS won against a delivered reply")
	}
	reply, err := c.collect(si, slot, w)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if string(reply.Body) != `{"x":1}` {
		t.Fatalf("reply body = %q", reply.Body)
	}
	if got := c.LateReplies(); got != 0 {
		t.Fatalf("LateReplies = %d, want 0 (reply was consumed)", got)
	}
}

// TestTCPCancelBeatsReply pins the cancel-wins interleaving end to end:
// Request returns ctx.Err() while the handler still runs, and the reply,
// when it lands, is counted by LateReplies instead of vanishing.
func TestTCPCancelBeatsReply(t *testing.T) {
	release := make(chan struct{})
	srv, err := ListenTCP("127.0.0.1:0", func(env proto.Envelope) proto.Envelope {
		<-release
		return echoHandler(env)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		env, _ := proto.NewEnvelope(proto.KindRequest, 0, "cli", "srv", t0, proto.InferenceRequest{Prompt: "p"})
		_, err := c.Request(ctx, env)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond) // request reaches the blocked handler
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("Request after cancel: %v, want context.Canceled", err)
	}
	close(release)
	waitFor(t, "late reply accounting", func() bool { return c.LateReplies() == 1 })
}

// TestTCPServerCloseDropsLateReplies pins the S2 contract: a handler still
// running at Close writes its reply into a torn-down connection; the write
// is refused cleanly (no panic, no double close) and counted.
func TestTCPServerCloseDropsLateReplies(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	srv, err := ListenTCP("127.0.0.1:0", func(env proto.Envelope) proto.Envelope {
		close(entered)
		<-release
		return echoHandler(env)
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	errCh := make(chan error, 1)
	go func() {
		env, _ := proto.NewEnvelope(proto.KindRequest, 0, "cli", "srv", t0, proto.InferenceRequest{Prompt: "p"})
		_, err := c.Request(context.Background(), env)
		errCh <- err
	}()
	<-entered
	if err := srv.Close(); err != nil { // must not block on the stuck handler
		t.Fatalf("Close: %v", err)
	}
	if err := <-errCh; !errors.Is(err, ErrClosed) {
		t.Fatalf("Request after server close: %v, want ErrClosed", err)
	}
	close(release)
	waitFor(t, "dropped reply accounting", func() bool { return srv.DroppedReplies() == 1 })
}

// TestTCPServerGarbageTearsConn sends raw garbage at the server: the
// connection must be torn down without a panic, and the listener must keep
// serving fresh connections.
func TestTCPServerGarbageTearsConn(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Plausible length prefix, garbage payload.
	if _, err := raw.Write([]byte{0, 0, 0, 4, 0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("server kept the connection alive after a corrupt frame")
	}
	raw.Close()

	// The server survives and serves the next connection.
	c, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	env, _ := proto.NewEnvelope(proto.KindRequest, 0, "cli", "srv", t0, proto.InferenceRequest{Prompt: "ok"})
	if _, err := c.Request(context.Background(), env); err != nil {
		t.Fatalf("request after garbage conn: %v", err)
	}
}

// TestTCPClientGarbageReplyFailsTyped points the client at a server that
// answers with a corrupt frame: pending requests fail with the typed frame
// error, not a hang or panic.
func TestTCPClientGarbageReplyFailsTyped(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 4096)
		if _, err := conn.Read(buf); err != nil {
			return
		}
		_, _ = conn.Write([]byte{0, 0, 0, 2, 0xff, 0xff}) // bad version
	}()

	c, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	env, _ := proto.NewEnvelope(proto.KindRequest, 0, "cli", "srv", t0, proto.InferenceRequest{Prompt: "p"})
	if _, err := c.Request(context.Background(), env); !errors.Is(err, proto.ErrBadFrame) {
		t.Fatalf("Request: %v, want proto.ErrBadFrame", err)
	}
}

// TestTCPInlineServer exercises the inline dispatch mode (handler on the
// read loop) through a concurrent client load.
func TestTCPInlineServer(t *testing.T) {
	srv, err := ListenTCPOpts("127.0.0.1:0", echoHandler, TCPServerOptions{Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			for j := 0; j < 50; j++ {
				env, _ := proto.NewEnvelope(proto.KindRequest, 0, "cli", "srv", t0,
					proto.InferenceRequest{Prompt: "p", MaxTokens: i*100 + j})
				reply, err := c.Request(context.Background(), env)
				if err != nil {
					done <- err
					return
				}
				var req proto.InferenceRequest
				if err := reply.Decode(proto.KindReply, &req); err != nil {
					done <- err
					return
				}
				if req.MaxTokens != i*100+j {
					done <- errors.New("reply mismatched request")
					return
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestNetworkBindViaTCP exercises the transport seam: a TCP bind is
// reachable by logical name in-process and by its published tcp:// address
// from a completely separate Network (standing in for another process).
func TestNetworkBindViaTCP(t *testing.T) {
	clock := simtime.NewReal()
	n := NewNetwork(clock, rng.New(1).Derive("net"), nil)
	defer n.Close()

	srv, err := n.BindVia(TransportTCP, "plat/node/svc", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if len(addr) < len(tcpScheme) || addr[:len(tcpScheme)] != tcpScheme {
		t.Fatalf("TCP bind Addr = %q, want %s prefix", addr, tcpScheme)
	}

	// Same-process dial by logical name.
	c1, err := n.Dial("cli", "plat/node/svc")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	env, _ := proto.NewEnvelope(proto.KindRequest, 0, "cli", "svc", t0, proto.InferenceRequest{Prompt: "a"})
	if _, err := c1.Request(context.Background(), env); err != nil {
		t.Fatalf("logical-name dial request: %v", err)
	}

	// Cross-process dial by socket address via an unrelated Network.
	other := NewNetwork(clock, rng.New(2).Derive("net"), nil)
	defer other.Close()
	c2, err := other.Dial("cli2", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Request(context.Background(), env); err != nil {
		t.Fatalf("tcp:// dial request: %v", err)
	}

	// Double bind of the logical name is refused.
	if _, err := n.BindVia(TransportTCP, "plat/node/svc", echoHandler); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("double bind: %v, want ErrAddrInUse", err)
	}
	// Closing frees the logical name.
	if err := srv.Close(); err != nil {
		t.Fatalf("bind close: %v", err)
	}
	if _, err := n.BindVia(TransportTCP, "plat/node/svc", echoHandler); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestSetTransport(t *testing.T) {
	n := NewNetwork(simtime.NewReal(), rng.New(1).Derive("net"), nil)
	defer n.Close()
	if err := n.SetTransport("carrier-pigeon"); err == nil {
		t.Fatal("unknown transport accepted")
	}
	if err := n.SetTransport(TransportTCP); err != nil {
		t.Fatal(err)
	}
	// Default-transport binds now land on TCP.
	srv, err := n.BindVia("", "a/b/c", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if addr := srv.Addr(); addr[:len(tcpScheme)] != tcpScheme {
		t.Fatalf("default bind Addr = %q, want TCP", addr)
	}
}

// TestNetworkCloseClosesTCPBinds ensures Close tears TCP listeners down
// with the rest of the endpoints.
func TestNetworkCloseClosesTCPBinds(t *testing.T) {
	n := NewNetwork(simtime.NewReal(), rng.New(1).Derive("net"), nil)
	srv, err := n.BindVia(TransportTCP, "x/y/z", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	real := srv.Addr()[len(tcpScheme):]
	if _, err := net.DialTimeout("tcp", real, time.Second); err == nil {
		t.Fatal("TCP listener survived Network.Close")
	}
}

package rng

import (
	"encoding/json"
	"fmt"
	"math"
)

// distJSON is the wire form of a Dist. Every catalog distribution maps to
// one kind; the parameters not used by a kind stay at their zero value.
// Normal's lower truncation bound is a pointer because -Inf (the
// untruncated case) has no JSON representation — absence means -Inf.
type distJSON struct {
	Kind  string   `json:"kind"`
	V     float64  `json:"v,omitempty"`
	Lo    float64  `json:"lo,omitempty"`
	Hi    float64  `json:"hi,omitempty"`
	Mu    float64  `json:"mu,omitempty"`
	Sigma float64  `json:"sigma,omitempty"`
	Min   *float64 `json:"min,omitempty"`
	Mean  float64  `json:"mean,omitempty"`
}

// MarshalJSON serializes the distribution so task descriptions survive a
// write-ahead journal round trip. The catalog distributions round-trip
// exactly; a caller-defined Dist implementation degrades to a Const at its
// Mean (the journal cannot serialize arbitrary code, and the mean
// preserves the workload's expected cost).
func (dd DurationDist) MarshalJSON() ([]byte, error) {
	if dd.D == nil {
		return []byte("null"), nil
	}
	var out distJSON
	switch d := dd.D.(type) {
	case Const:
		out = distJSON{Kind: "const", V: d.V}
	case Uniform:
		out = distJSON{Kind: "uniform", Lo: d.Lo, Hi: d.Hi}
	case Normal:
		out = distJSON{Kind: "normal", Mu: d.Mu, Sigma: d.Sigma}
		if !math.IsInf(d.Min, -1) {
			min := d.Min
			out.Min = &min
		}
	case LogNormal:
		out = distJSON{Kind: "lognormal", Mu: d.Mu, Sigma: d.Sigma}
	case Exponential:
		out = distJSON{Kind: "exponential", Mean: d.MeanV}
	default:
		out = distJSON{Kind: "const", V: dd.D.Mean()}
	}
	return json.Marshal(out)
}

// UnmarshalJSON reverses MarshalJSON.
func (dd *DurationDist) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		dd.D = nil
		return nil
	}
	var in distJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	switch in.Kind {
	case "const":
		dd.D = Const{V: in.V}
	case "uniform":
		dd.D = Uniform{Lo: in.Lo, Hi: in.Hi}
	case "normal":
		min := math.Inf(-1)
		if in.Min != nil {
			min = *in.Min
		}
		dd.D = Normal{Mu: in.Mu, Sigma: in.Sigma, Min: min}
	case "lognormal":
		dd.D = LogNormal{Mu: in.Mu, Sigma: in.Sigma}
	case "exponential":
		dd.D = Exponential{MeanV: in.Mean}
	default:
		return fmt.Errorf("rng: unknown distribution kind %q", in.Kind)
	}
	return nil
}

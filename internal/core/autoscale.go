package core

import (
	"fmt"
	"time"

	"repro/internal/pilot"
	"repro/internal/service"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/states"
)

// This file implements the session autoscaler: the control loop that
// closes the paper's declared-future-work loop by scaling a service's
// replica count with demand. A service submitted with MaxReplicas > 1
// gets a per-handle loop on the session clock that each ScaleInterval
// reads the honest per-endpoint queue gauges (serving.Server's Queued
// split, PR-8), publishes them as registry load reports for balancing
// clients, and spawns or retires replica instances under the logical
// service UID.
//
// Replicas are ordinary pilot-level services named <uid>.rN, routed
// through the session Router like any service and auto-mirrored into the
// session EndpointRegistry by the pilot publish hook (handle-less
// services mirror unconditionally, with the session incarnation
// stamped). They are deliberately not journaled: replica count is
// derived from demand, so after a crash recovery the autoscaler simply
// re-derives it instead of replaying it.
//
// Determinism contract: on an auto-advancing virtual clock the loop
// goroutine is clock-registered, and it NEVER blocks on anything but
// clock.Sleep — no WaitReady, no Drain. A registered goroutine parked on
// a channel would freeze the clock and deadlock every in-flight request
// sleep. Spawns are therefore fire-and-forget (the replica's bootstrap
// runs on its own clock-registered goroutine and is observed ACTIVE on a
// later tick) and retires are two-phase: leave the balancing group now,
// then terminate on a later tick once the replica reports zero queued
// and zero in-flight — at which point Stop is sleep-free.

// replicaRef tracks one autoscaled replica instance under a Service
// handle.
type replicaRef struct {
	uid      string
	inst     *service.Instance
	p        *pilot.Pilot
	member   bool // admitted to the registry balancing group (seen ACTIVE)
	draining bool // removed from balancing; terminated once empty
}

// applyScaleDefaults fills the autoscaler knobs of a scaled description.
func applyScaleDefaults(d *spec.ServiceDescription) {
	if d.MinReplicas == 0 {
		d.MinReplicas = 1
	}
	if d.ScaleInterval <= 0 {
		d.ScaleInterval = 2 * time.Second
	}
	if d.ScaleUpQueue <= 0 {
		d.ScaleUpQueue = 4
	}
	if d.ScaleDownQueue <= 0 {
		d.ScaleDownQueue = 1
	}
	if d.ScaleStabilize <= 0 {
		d.ScaleStabilize = 3
	}
}

// startAutoscaler launches h's autoscale loop, clock-registered on a
// runnability-accounting clock (the clock.Go rule: register before
// spawn).
func (sm *ServiceManager) startAutoscaler(h *Service) {
	if run := simtime.RunnersOf(sm.sess.clock); run != nil {
		run.AddRunner()
		go func() {
			defer run.DoneRunner()
			sm.autoscale(h)
		}()
	} else {
		go sm.autoscale(h)
	}
}

// autoscale is the per-handle control loop: one evaluation per
// ScaleInterval of the session clock until the logical service reaches a
// final state, then a best-effort teardown of surviving replicas.
func (sm *ServiceManager) autoscale(h *Service) {
	for {
		sm.sess.clock.Sleep(h.desc.ScaleInterval)
		select {
		case <-h.done:
			sm.scaleShutdown(h)
			return
		default:
		}
		sm.scaleTick(h)
	}
}

// scaleTick runs one autoscaler evaluation for h.
func (sm *ServiceManager) scaleTick(h *Service) {
	d := h.desc

	h.mu.Lock()
	base := h.inst
	reps := append([]*replicaRef(nil), h.reps...)
	h.mu.Unlock()

	// Phase 1 — reconcile replica lifecycles. A replica that reached a
	// final state on its own (hosting pilot died, liveness kill) is
	// reaped, not re-placed: replica count derives from demand, and the
	// next evaluation re-spawns if the load still warrants it. A
	// bootstrapped replica is admitted to the balancing group; a drained
	// one is terminated now that Stop is sleep-free.
	kept := reps[:0]
	for _, r := range reps {
		switch {
		case r.inst.Final():
			if r.member {
				sm.reg.RemoveMember(h.uid, r.uid)
			}
			sm.reg.Withdraw(r.uid)
		case r.draining:
			if r.inst.Queued() == 0 && r.inst.InFlight() == 0 {
				sm.reg.Withdraw(r.uid)
				_ = r.p.Services().Terminate(r.uid, false)
			} else {
				kept = append(kept, r)
			}
		default:
			if !r.member && r.inst.State() == states.ServiceActive {
				sm.reg.AddMember(h.uid, r.uid)
				r.member = true
			}
			kept = append(kept, r)
		}
	}

	// Phase 2 — read the load signal and publish it for balancing
	// clients. Serving set: the base instance plus admitted,
	// non-draining replicas.
	queued, serving := 0, 1
	if base != nil {
		queued = base.Queued()
		sm.reg.ReportLoad(h.uid, service.Load{Queued: base.Queued(), InFlight: base.InFlight()})
	}
	pending := 0
	for _, r := range kept {
		switch {
		case r.draining:
		case r.member:
			queued += r.inst.Queued()
			serving++
			sm.reg.ReportLoad(r.uid, service.Load{Queued: r.inst.Queued(), InFlight: r.inst.InFlight()})
		default:
			pending++ // bootstrap in flight: counts against the max, not the mean
		}
	}

	h.mu.Lock()
	h.reps = kept
	if serving > h.peakReps {
		h.peakReps = serving
	}
	finished := h.finished
	h.mu.Unlock()
	if finished {
		return
	}

	// Phase 3 — the scaling decision. Mean queued requests per serving
	// replica against the up/down thresholds; scale-down waits for
	// ScaleStabilize consecutive quiet evaluations (hysteresis) and
	// retires the newest replica, never the base instance.
	mean := float64(queued) / float64(serving)
	minReps := d.MinReplicas
	if minReps < 1 {
		minReps = 1
	}
	switch {
	case serving+pending < minReps:
		h.below = 0
		sm.spawnReplica(h)
	case mean >= d.ScaleUpQueue && serving+pending < d.MaxReplicas:
		h.below = 0
		sm.spawnReplica(h)
	case mean <= d.ScaleDownQueue && pending == 0:
		h.below++
		if h.below >= d.ScaleStabilize && serving > minReps {
			h.below = 0
			sm.retireNewest(h)
		}
	default:
		h.below = 0
	}
}

// spawnReplica fires off one replica bootstrap for h: route, submit,
// track. The bootstrap proceeds on its own clock-registered goroutine
// (model load sleeps and all); the replica joins the balancing group
// when a later tick observes it ACTIVE. Routing or dispatch failures are
// dropped — the next evaluation retries if demand persists.
func (sm *ServiceManager) spawnReplica(h *Service) {
	h.mu.Lock()
	h.repSeq++
	ruid := fmt.Sprintf("%s.r%d", h.uid, h.repSeq)
	h.mu.Unlock()

	d := h.desc
	d.UID = ruid
	d.MinReplicas, d.MaxReplicas = 0, 0 // a replica is not itself scaled

	sm.mu.Lock()
	if sm.closed {
		sm.mu.Unlock()
		return
	}
	p, err := sm.routeLocked(d)
	sm.mu.Unlock()
	if err != nil {
		return
	}
	inst, err := p.Services().Submit(d)
	if err != nil {
		return
	}
	h.mu.Lock()
	h.reps = append(h.reps, &replicaRef{uid: ruid, inst: inst, p: p})
	h.mu.Unlock()
}

// retireNewest starts the two-phase retirement of h's newest serving
// replica: drop it from the balancing group immediately (no new requests
// route to it), terminate on a later tick once its queue and in-flight
// gauges reach zero.
func (sm *ServiceManager) retireNewest(h *Service) {
	h.mu.Lock()
	var victim *replicaRef
	for i := len(h.reps) - 1; i >= 0; i-- {
		if r := h.reps[i]; r.member && !r.draining {
			victim = r
			break
		}
	}
	if victim != nil {
		victim.draining = true
		victim.member = false
	}
	h.mu.Unlock()
	if victim != nil {
		sm.reg.RemoveMember(h.uid, victim.uid)
	}
}

// scaleShutdown tears down every surviving replica after the logical
// service reached a final state. Best-effort: the hosting pilots may
// already be gone (session close shuts them down first).
func (sm *ServiceManager) scaleShutdown(h *Service) {
	h.mu.Lock()
	reps := h.reps
	h.reps = nil
	h.mu.Unlock()
	for _, r := range reps {
		if r.member {
			sm.reg.RemoveMember(h.uid, r.uid)
		}
		sm.reg.Withdraw(r.uid)
		_ = r.p.Services().Terminate(r.uid, false)
	}
}

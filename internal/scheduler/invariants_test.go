package scheduler

// Scheduler invariant suite: randomized property tests over fuzzed
// heterogeneous pools and request streams, run against every built-in
// policy. The seed's tests only ever generated homogeneous pools; these
// pin the safety properties that must hold regardless of node-shape mix
// or placement policy:
//
//   - admission: a request some node shape could ever satisfy is
//     accepted (it may wait), an impossible one is rejected;
//   - no over-commit: at quiescence every node's free counters equal
//     its spec minus exactly the live placements on it (which also
//     proves every release restored exactly what was granted — any
//     asymmetry would accumulate as drift and fail a later round);
//   - conservation: accepted == Scheduled() + Waiting() at quiescence,
//     and after draining, every node returns to idle.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/rng"
)

// invariantShapes is the node-shape alphabet the fuzzer draws pools
// from: spans the catalog's extremes (hetero fat, Delta, hetero thin,
// and a small GPU blade).
var invariantShapes = []platform.NodeSpec{
	{Cores: 128, GPUs: 16, MemGB: 1024},
	{Cores: 64, GPUs: 4, MemGB: 256},
	{Cores: 16, GPUs: 0, MemGB: 64},
	{Cores: 8, GPUs: 2, MemGB: 32},
}

// quiesce waits for genuine scheduler quiescence — every accepted
// request is either granted or waiting (so no submission is still in
// flight toward the scheduler goroutine), every grant has been
// delivered to the collector, and the grant count has stayed put over
// several settle windows — then returns a snapshot of all placements.
// A bare "no new placement for one window" check would race a loaded
// scheduler goroutine that simply had not run yet.
func quiesce(t *testing.T, c *collector, s *Scheduler, accepted int) []Placement {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	stable, last := 0, -1
	for {
		g, w := s.Scheduled(), s.Waiting()
		c.mu.Lock()
		n := len(c.placed)
		c.mu.Unlock()
		if n == g && g+w == accepted && g == last {
			if stable++; stable >= 3 {
				c.mu.Lock()
				out := append([]Placement{}, c.placed...)
				c.mu.Unlock()
				return out
			}
		} else {
			stable = 0
		}
		last = g
		if time.Now().After(deadline) {
			t.Fatalf("scheduler did not quiesce within 5s (granted %d, waiting %d, delivered %d, accepted %d)",
				g, w, n, accepted)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// checkAccounting asserts that every node's free counters equal its spec
// minus the demands of the live placements on it. Call at quiescence
// only (in-flight grants would show as transient mismatches).
func checkAccounting(t *testing.T, nodes []*platform.Node, live map[*Placement]bool) {
	t.Helper()
	type usage struct {
		cores, gpus int
		mem         float64
	}
	used := make(map[string]usage, len(nodes))
	for p := range live {
		u := used[p.Alloc.Node().Name()]
		u.cores += len(p.Alloc.Cores)
		u.gpus += len(p.Alloc.GPUs)
		u.mem += p.Alloc.MemGB
		used[p.Alloc.Node().Name()] = u
	}
	for _, n := range nodes {
		sp := n.Spec()
		u := used[n.Name()]
		fc, fg, fm := n.Free()
		if u.cores > sp.Cores || u.gpus > sp.GPUs || u.mem > sp.MemGB {
			t.Fatalf("node %s over-committed: %d/%d cores, %d/%d gpus, %.1f/%.1f GB",
				n.Name(), u.cores, sp.Cores, u.gpus, sp.GPUs, u.mem, sp.MemGB)
		}
		if fc != sp.Cores-u.cores || fg != sp.GPUs-u.gpus || fm != sp.MemGB-u.mem {
			t.Fatalf("node %s accounting drift: free %d/%d/%.1f, want %d/%d/%.1f",
				n.Name(), fc, fg, fm, sp.Cores-u.cores, sp.GPUs-u.gpus, sp.MemGB-u.mem)
		}
	}
}

// TestSchedulerInvariants fuzzes heterogeneous pools and request streams
// across all three built-in policies.
func TestSchedulerInvariants(t *testing.T) {
	policies := []struct {
		name string
		mk   func(src *rng.Source) Policy
	}{
		{"strict", func(*rng.Source) Policy { return Strict() }},
		{"backfill", func(src *rng.Source) Policy {
			return Backfill(BackfillConfig{MaxBypass: 1 + src.Intn(32), MaxDelay: -1})
		}},
		{"best-fit", func(src *rng.Source) Policy {
			return BestFit(BackfillConfig{MaxBypass: -1, MaxDelay: -1})
		}},
	}
	for _, pol := range policies {
		pol := pol
		t.Run(pol.name, func(t *testing.T) {
			t.Parallel()
			for trial := 0; trial < 5; trial++ {
				src := rng.New(uint64(4000 + trial))
				var nodes []*platform.Node
				n := 4 + src.Intn(13)
				for i := 0; i < n; i++ {
					sp := invariantShapes[src.Intn(len(invariantShapes))]
					nodes = append(nodes, platform.NewNode(fmt.Sprintf("inv-%02d-%02d", trial, i), sp))
				}
				// the largest per-dimension capacities any single shape in
				// this pool offers, for the admission oracle
				satisfiable := func(req Request) bool {
					for _, m := range nodes {
						sp := m.Spec()
						if sp.Cores >= req.Cores && sp.GPUs >= req.GPUs && sp.MemGB >= req.MemGB {
							return true
						}
					}
					return false
				}

				c := newCollector()
				s := New(nodes, c.fn, WithPolicy(pol.mk(src)))
				accepted := 0
				live := make(map[*Placement]bool)
				consumed := 0 // prefix of c.placed already folded into live

				foldGrants := func(placed []Placement) {
					for ; consumed < len(placed); consumed++ {
						cp := placed[consumed]
						live[&cp] = true
					}
				}

				for round := 0; round < 3; round++ {
					// submission burst: random demands, some impossible
					for i := 0; i < 12+src.Intn(16); i++ {
						req := Request{
							UID:      fmt.Sprintf("r%02d-%03d", round, i),
							Cores:    src.Intn(150),
							GPUs:     src.Intn(20),
							MemGB:    float64(src.Intn(1100)),
							Priority: src.Intn(3) * 50,
						}
						err := s.Submit(req)
						if satisfiable(req) != (err == nil) {
							t.Fatalf("trial %d: Submit(%+v) = %v, satisfiable = %v",
								trial, req, err, satisfiable(req))
						}
						if err == nil {
							accepted++
						}
					}
					foldGrants(quiesce(t, c, s, accepted))
					checkAccounting(t, nodes, live)
					if got := s.Scheduled() + s.Waiting(); got != accepted {
						t.Fatalf("trial %d round %d: Scheduled+Waiting = %d, accepted = %d",
							trial, round, got, accepted)
					}
					// release a random subset; freed capacity re-kicks grants
					for p := range live {
						if src.Intn(2) == 0 {
							s.Release(p.Alloc)
							delete(live, p)
						}
					}
					foldGrants(quiesce(t, c, s, accepted))
					checkAccounting(t, nodes, live)
				}

				// drain: keep releasing everything granted until the wait
				// pool empties (after a full release the pool is idle, so a
				// satisfiable head always fits — the drain terminates)
				for i := 0; ; i++ {
					for p := range live {
						s.Release(p.Alloc)
						delete(live, p)
					}
					foldGrants(quiesce(t, c, s, accepted))
					if len(live) == 0 && s.Waiting() == 0 {
						break
					}
					if i > accepted {
						t.Fatalf("trial %d: drain did not converge (%d live, %d waiting)",
							trial, len(live), s.Waiting())
					}
				}
				if s.Scheduled() != accepted {
					t.Fatalf("trial %d: drained Scheduled = %d, accepted = %d",
						trial, s.Scheduled(), accepted)
				}
				for _, m := range nodes {
					sp := m.Spec()
					if fc, fg, fm := m.Free(); fc != sp.Cores || fg != sp.GPUs || fm != sp.MemGB {
						t.Fatalf("trial %d: node %s not idle after drain (%d/%d/%.1f free)",
							trial, m.Name(), fc, fg, fm)
					}
				}
				s.Close()
			}
		})
	}
}

// TestSchedulerMixedPoolLargestShapeBusyWaits is the admission
// regression for mixed pools: a request that fits only the largest node
// shape, submitted while every such node is busy, must be *admitted and
// wait* (capacity will return), must not be rejected as unsatisfiable,
// and — under backfill — must not wedge traffic that fits the smaller
// shapes. A request exceeding every shape is still rejected outright.
func TestSchedulerMixedPoolLargestShapeBusyWaits(t *testing.T) {
	mixed := []*platform.Node{
		platform.NewNode("fat", platform.NodeSpec{Cores: 64, GPUs: 8, MemGB: 256}),
		platform.NewNode("thin-0", platform.NodeSpec{Cores: 8, GPUs: 0, MemGB: 32}),
		platform.NewNode("thin-1", platform.NodeSpec{Cores: 8, GPUs: 0, MemGB: 32}),
		platform.NewNode("thin-2", platform.NodeSpec{Cores: 8, GPUs: 0, MemGB: 32}),
	}
	c := newCollector()
	s := New(mixed, c.fn, WithPolicy(Backfill(BackfillConfig{MaxBypass: -1, MaxDelay: -1})))
	defer s.Close()

	// occupy the only fat node
	if err := s.Submit(Request{UID: "fat-filler", Cores: 64, GPUs: 8}); err != nil {
		t.Fatal(err)
	}
	filler := c.waitN(t, 1)[0]
	if filler.Alloc.Node().Name() != "fat" {
		t.Fatalf("filler placed on %s", filler.Alloc.Node().Name())
	}

	// fits only the fat shape (thin nodes have 8 cores, 0 GPUs): with the
	// fat node busy this must wait, not be rejected
	if err := s.Submit(Request{UID: "fat-only", Cores: 32, GPUs: 4, Priority: 100}); err != nil {
		t.Fatalf("fat-only request rejected while the fat node was busy: %v", err)
	}
	// beyond every shape: still rejected
	if err := s.Submit(Request{UID: "impossible", Cores: 65}); err == nil {
		t.Fatal("request exceeding every shape was admitted")
	}

	// smaller-shape traffic keeps flowing around the blocked head
	for i := 0; i < 3; i++ {
		if err := s.Submit(Request{UID: fmt.Sprintf("thin-task-%d", i), Cores: 8}); err != nil {
			t.Fatal(err)
		}
	}
	got := c.waitN(t, 4)
	for _, p := range got[1:] {
		if p.Req.UID == "fat-only" {
			t.Fatal("fat-only granted while no fat node was free")
		}
	}
	if w := s.Waiting(); w != 1 {
		t.Fatalf("Waiting = %d, want 1 (the fat-only head)", w)
	}

	// capacity returns → the waiting head is granted on the fat node
	s.Release(filler.Alloc)
	got = c.waitN(t, 5)
	if got[4].Req.UID != "fat-only" || got[4].Alloc.Node().Name() != "fat" {
		t.Fatalf("post-release grant = %s on %s, want fat-only on fat",
			got[4].Req.UID, got[4].Alloc.Node().Name())
	}
}

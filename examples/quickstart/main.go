// Quickstart: the minimal end-to-end use of the runtime — one session, one
// pilot, one llama-8b service task, one inference round trip through the
// published endpoint, with the paper's BT and RT decompositions printed.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/simtime"
	"repro/internal/spec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Session: clock (1000x compressed), topology, network, managers.
	sess, err := core.NewSession(core.SessionConfig{
		Seed:  1,
		Clock: simtime.NewScaled(1000, core.DefaultOrigin),
	})
	if err != nil {
		return err
	}
	defer sess.Close()

	// 2. Pilot: acquire Delta resources (Table II: 256 cores / 16 GPUs).
	p, err := sess.PilotManager().Submit(spec.PilotDescription{
		Platform: "delta", Cores: 256, GPUs: 16,
	})
	if err != nil {
		return err
	}
	fmt.Printf("pilot %s ACTIVE on %d nodes\n", p.UID(), len(p.Nodes()))

	// 3. Service task: one llama-8b instance on one GPU, via the unified
	//    submission API (ServiceDescription extends TaskDescription).
	sm := sess.ServiceManager()
	sm.AddPilot(p)
	inst, err := sm.Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "llm-service", GPUs: 1},
		Model:           "llama-8b",
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := sm.WaitReady(ctx, inst.UID()); err != nil {
		return err
	}
	bt := inst.Bootstrap()
	fmt.Printf("service %s ACTIVE at %s\n", inst.UID(), inst.Endpoint().Address)
	fmt.Printf("  bootstrap: launch=%.2fs init=%.2fs publish=%.2fs (Fig. 3 components)\n",
		bt.Components["launch"].Seconds(), bt.Components["init"].Seconds(), bt.Components["publish"].Seconds())

	// 4. Inference through the service endpoint.
	client, err := sess.Dial(platform.Addr("delta", "", "client.0001"), inst.Endpoint())
	if err != nil {
		return err
	}
	defer client.Close()
	reply, rt, err := client.Infer(ctx, "summarize the effect of low-dose radiation on cell morphology", 64)
	if err != nil {
		return err
	}
	fmt.Printf("inference: %d prompt + %d output tokens\n", reply.PromptTokens, reply.OutputTokens)
	fmt.Printf("  response time: communication=%.4fs service=%.4fs inference=%.3fs (Fig. 6 components)\n",
		rt.Components["communication"].Seconds(), rt.Components["service"].Seconds(), rt.Components["inference"].Seconds())
	fmt.Printf("  reply: %.60s...\n", reply.Text)

	// 5. Graceful teardown.
	return sm.Terminate(inst.UID(), true)
}

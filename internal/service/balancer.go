package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/proto"
)

// Balancer is an inference client for a logical service UID that may be
// backed by several replicas: the base instance plus whatever replica
// members the session autoscaler currently lists in the EndpointRegistry
// group. Each request reads the live membership, picks the member with
// the least reported load (queued + in-flight, ties broken round-robin),
// and delegates to that member's Resolver — so every replica request
// still gets the resolvers' generation-aware failover machinery. With no
// members the Balancer degrades to a plain Resolver on the base UID.
//
// Membership and load reports come from the autoscaler's control loop,
// so balancing decisions lag reality by at most one scale interval; the
// round-robin tie-break spreads the burst that lands inside one interval.
type Balancer struct {
	reg  *EndpointRegistry
	uid  string
	dial DialFn
	rr   atomic.Uint64

	mu     sync.Mutex
	res    map[string]*Resolver
	closed bool
}

// NewBalancer returns a Balancer for the logical service uid.
func NewBalancer(reg *EndpointRegistry, uid string, dial DialFn) (*Balancer, error) {
	if reg == nil {
		return nil, fmt.Errorf("service: balancer %s: nil registry", uid)
	}
	if dial == nil {
		return nil, fmt.Errorf("service: balancer %s: nil dial", uid)
	}
	return &Balancer{reg: reg, uid: uid, dial: dial, res: make(map[string]*Resolver)}, nil
}

// Infer routes one request to the least-loaded group member and blocks
// for its reply.
func (b *Balancer) Infer(ctx context.Context, prompt string, maxTokens int) (proto.InferenceReply, metrics.Breakdown, error) {
	target := b.uid
	if members := b.reg.Members(b.uid); len(members) > 0 {
		target = b.pick(members)
	}
	r, err := b.resolver(target)
	if err != nil {
		return proto.InferenceReply{}, metrics.Breakdown{}, err
	}
	return r.Infer(ctx, prompt, maxTokens)
}

// pick selects the least-loaded of the base UID and the replica members,
// breaking ties with a rotating counter so equally-idle replicas share
// the burst that arrives between two load reports.
func (b *Balancer) pick(members []string) string {
	best := []string{b.uid}
	bestLoad := b.load(b.uid)
	for _, m := range members {
		switch l := b.load(m); {
		case l < bestLoad:
			best = append(best[:0], m)
			bestLoad = l
		case l == bestLoad:
			best = append(best, m)
		}
	}
	if len(best) == 1 {
		return best[0]
	}
	return best[int(b.rr.Add(1)-1)%len(best)]
}

func (b *Balancer) load(uid string) int {
	l := b.reg.LoadOf(uid)
	return l.Queued + l.InFlight
}

// resolver returns (creating on first use) the member's Resolver.
func (b *Balancer) resolver(uid string) (*Resolver, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, fmt.Errorf("service: balancer %s closed", b.uid)
	}
	if r, ok := b.res[uid]; ok {
		return r, nil
	}
	r, err := NewResolver(b.reg, uid, b.dial, 0)
	if err != nil {
		return nil, err
	}
	b.res[uid] = r
	return r, nil
}

// Reresolved sums the re-resolution counts of every member resolver.
func (b *Balancer) Reresolved() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, r := range b.res {
		n += r.Reresolved()
	}
	return n
}

// Close closes every member resolver. Subsequent Infer calls fail.
func (b *Balancer) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	for _, r := range b.res {
		_ = r.Close()
	}
	return nil
}

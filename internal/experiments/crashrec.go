package experiments

// Crash-recovery ablation: the paper's runtime keeps all campaign state in
// the client process, so a client crash strands every pilot, task and
// service it was driving. This ablation quantifies what the write-ahead
// journal and core.Recover buy: a journaled session drives tasks and a
// service across two pilots, the client is killed at one of three fault
// points (mid-transition append — torn record, mid-endpoint-publish —
// lost record, mid-failover — the suspend record of an in-flight
// re-placement is lost), and recovery reattaches to the surviving pilots
// and resumes the campaign. The contrast row runs the identical scenario
// without a journal: the "recovery" finds nothing and the client loses
// every handle. Counts are exact by construction — placements are either
// pinned or follow the deterministic round-robin dispatch, and fault
// points fire on specific journal record kinds.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/pilot"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/states"
)

// Fault points of the crash-recovery ablation.
const (
	// FaultMidTransition kills the client while a task state transition is
	// being appended: the record is torn in half, the canonical artifact
	// of a crash mid-write.
	FaultMidTransition = "mid-transition"
	// FaultMidPublish kills the client while a service endpoint
	// publication is being appended: the record is lost entirely.
	FaultMidPublish = "mid-publish"
	// FaultMidFailover kills the client while a failover is in flight:
	// the hosting pilot died, and the suspend record of the re-placement
	// never reaches the journal.
	FaultMidFailover = "mid-failover"
)

// CrashRecConfig parameterizes the crash-recovery ablation.
type CrashRecConfig struct {
	// Tasks is the number of long-running tasks in flight at the crash
	// (default 6).
	Tasks int
	// FaultPoints lists the fault points driven (default: all three).
	FaultPoints []string
	// Scale is the clock compression (default 20000).
	Scale float64
	// Seed drives determinism.
	Seed uint64
}

// DefaultCrashRecConfig returns the figure-scale parameterization.
func DefaultCrashRecConfig() CrashRecConfig {
	return CrashRecConfig{
		Tasks:       6,
		FaultPoints: []string{FaultMidTransition, FaultMidPublish, FaultMidFailover},
		Scale:       20000,
		Seed:        27,
	}
}

// CrashRecRow is one (fault point, journal mode) outcome.
type CrashRecRow struct {
	FaultPoint string
	Journaled  bool

	// TasksInFlight and ServicesLive are the pre-crash campaign size (the
	// mid-transition and mid-publish points add one trigger entity each).
	TasksInFlight int
	ServicesLive  int

	// Recovered reports whether core.Recover produced a session at all
	// (always false for the journal-less contrast).
	Recovered bool
	// Incarnation is the recovered session incarnation (0 when lost).
	Incarnation uint64
	// TornTail reports the replay found a half-written final record.
	TornTail bool

	// Exact recovery accounting (all zero when the journal is absent).
	PilotsAlive, PilotsLost              int
	TasksReattached, TasksRerouted       int
	TasksSettled                         int
	ServicesReattached, ServicesReplaced int
	ServicesSettled                      int

	// TasksCompleted counts tasks that ran to DONE under the recovered
	// session — the resume-N-of-N claim.
	TasksCompleted int
}

// CrashRecResult is the ablation dataset.
type CrashRecResult struct {
	Cfg  CrashRecConfig
	Rows []CrashRecRow
}

// RunCrashRec executes the crash-recovery ablation: each fault point once
// with the write-ahead journal and once without.
func RunCrashRec(ctx context.Context, cfg CrashRecConfig) (*CrashRecResult, error) {
	if cfg.Tasks <= 0 {
		cfg.Tasks = 6
	}
	if len(cfg.FaultPoints) == 0 {
		cfg.FaultPoints = []string{FaultMidTransition, FaultMidPublish, FaultMidFailover}
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 20000
	}
	res := &CrashRecResult{Cfg: cfg}
	for _, point := range cfg.FaultPoints {
		for _, journaled := range []bool{true, false} {
			row, err := runCrashRecPoint(ctx, cfg, point, journaled)
			if err != nil {
				return res, fmt.Errorf("experiments: crashrec %s (journal=%v): %w", point, journaled, err)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// runCrashRecPoint drives one scenario: two half-platform delta pilots,
// one unpinned service (round-robin lands it on the first pilot),
// cfg.Tasks long tasks, then the fault. Task placement is pinned to the
// second pilot for the mid-failover point (whose first pilot dies), and
// left to the deterministic round-robin dispatch otherwise.
func runCrashRecPoint(ctx context.Context, cfg CrashRecConfig, point string, journaled bool) (CrashRecRow, error) {
	row := CrashRecRow{FaultPoint: point, Journaled: journaled}
	dir, err := os.MkdirTemp("", "crashrec")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)
	jp := filepath.Join(dir, "session.wal")

	scfg := core.SessionConfig{
		Seed:     cfg.Seed,
		Clock:    simtime.NewScaled(cfg.Scale, core.DefaultOrigin),
		FastBoot: true,
	}
	if journaled {
		scfg.JournalPath = jp
		// fsync batching on the compressed clock would fire every few
		// microseconds of wall time; a simulated minute keeps it honest
		// without busy-syncing.
		scfg.JournalFlushEvery = time.Minute
	}
	sess, err := core.NewSession(scfg)
	if err != nil {
		return row, err
	}

	var pilots []*pilot.Pilot
	for i := 0; i < 2; i++ {
		p, err := sess.PilotManager().Submit(spec.PilotDescription{
			Platform: "delta", Cores: 128, GPUs: 8,
		})
		if err != nil {
			return row, err
		}
		sess.TaskManager().AddPilot(p)
		sess.ServiceManager().AddPilot(p)
		pilots = append(pilots, p)
	}

	svc, err := sess.ServiceManager().Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "svc", Cores: 1},
		Model:           "noop",
		ProbeInterval:   time.Hour,
		StartTimeout:    time.Hour,
	})
	if err != nil {
		return row, err
	}
	if err := svc.WaitReady(ctx); err != nil {
		return row, err
	}
	row.ServicesLive = 1

	taskDesc := func(i int) spec.TaskDescription {
		d := spec.TaskDescription{
			Name: fmt.Sprintf("work-%d", i), Cores: 1,
			Duration: rng.ConstDuration(4 * time.Hour),
		}
		if point == FaultMidFailover {
			// The first pilot dies at this fault point; pinning the fleet
			// to the survivor keeps the reattach count exact instead of
			// racing the old session's own re-routing against the crash.
			d.Pilot = pilots[1].UID()
		}
		return d
	}
	var tasks []*core.Task
	for i := 0; i < cfg.Tasks; i++ {
		ts, err := sess.TaskManager().Submit(ctx, taskDesc(i))
		if err != nil {
			return row, err
		}
		tasks = append(tasks, ts...)
	}
	row.TasksInFlight = cfg.Tasks
	// Let every task reach RUNNING before arming the fault: in-flight
	// grants would otherwise append transitions that race the trigger for
	// the crash record.
	if err := awaitAllRunning(ctx, tasks); err != nil {
		return row, err
	}

	// Arm the fault and trigger it.
	crashed := make(chan struct{})
	var armed atomic.Bool
	if journaled {
		jw := sess.Journal()
		jw.OnCrash(func() {
			sess.Abandon()
			close(crashed)
		})
		jw.SetCrashHook(func(rec journal.Record) journal.CrashMode {
			if !armed.Load() {
				return journal.NoCrash
			}
			switch point {
			case FaultMidTransition:
				if rec.Kind == journal.KindTransition {
					return journal.CrashTorn
				}
			case FaultMidPublish:
				if rec.Kind == journal.KindEndpoint && endpointOp(rec) == journal.OpPublish {
					return journal.CrashLost
				}
			case FaultMidFailover:
				if rec.Kind == journal.KindEndpoint && endpointOp(rec) == journal.OpSuspend {
					return journal.CrashLost
				}
			}
			return journal.NoCrash
		})
	}
	armed.Store(true)

	switch point {
	case FaultMidTransition:
		// The trigger task's first state transition is the crash record.
		if _, err := sess.TaskManager().Submit(ctx, spec.TaskDescription{
			Name: "trigger", Cores: 1, Duration: rng.ConstDuration(4 * time.Hour),
		}); err != nil {
			return row, err
		}
		row.TasksInFlight++
	case FaultMidPublish:
		// A second service's bootstrap publication is the crash record.
		if _, err := sess.ServiceManager().Submit(spec.ServiceDescription{
			TaskDescription: spec.TaskDescription{Name: "svc2", Cores: 1},
			Model:           "noop",
			ProbeInterval:   time.Hour,
			StartTimeout:    time.Hour,
		}); err != nil {
			return row, err
		}
		row.ServicesLive++
	case FaultMidFailover:
		// Kill the service host: the watcher's suspend is the crash record.
		if err := pilots[0].Shutdown(); err != nil {
			return row, err
		}
	default:
		return row, fmt.Errorf("unknown fault point %q", point)
	}

	if journaled {
		select {
		case <-crashed:
		case <-time.After(60 * time.Second):
			return row, fmt.Errorf("fault point %s never fired", point)
		case <-ctx.Done():
			return row, ctx.Err()
		}
	} else {
		// No journal, no fault hook: the client dies at the same logical
		// point, taking all campaign state with it.
		if point == FaultMidPublish {
			// Give the trigger service's bootstrap the same head start the
			// journaled run gets from its crash hook.
			waitSvcCount(sess, 2)
		}
		sess.Abandon()
	}

	// Recovery. The journal-less contrast recovers from the path its
	// session never wrote: total loss, by construction.
	s2, rep, err := core.Recover(jp, core.RecoverConfig{})
	if err != nil {
		if journaled {
			return row, err
		}
		return row, nil // expected: nothing to recover from
	}
	defer s2.Close()
	row.Recovered = true
	row.Incarnation = rep.Incarnation
	row.TornTail = rep.Stats.TornTail
	row.PilotsAlive = len(rep.PilotsAlive)
	row.PilotsLost = len(rep.PilotsLost)
	row.TasksReattached = len(rep.TasksReattached)
	row.TasksRerouted = len(rep.TasksRerouted)
	row.TasksSettled = len(rep.TasksSettled)
	row.ServicesReattached = len(rep.ServicesReattached)
	row.ServicesReplaced = len(rep.ServicesReplaced)
	row.ServicesSettled = len(rep.ServicesSettled)

	// Resume the campaign: every recovered task must run to DONE.
	waitCtx, cancel := context.WithTimeout(ctx, 120*time.Second)
	defer cancel()
	if err := s2.TaskManager().Wait(waitCtx); err != nil {
		return row, fmt.Errorf("post-recovery wait: %w", err)
	}
	for _, t := range s2.TaskManager().Tasks() {
		if t.State() == states.TaskDone {
			row.TasksCompleted++
		}
	}
	return row, nil
}

// awaitAllRunning polls (real time, bounded) until every task reports
// RUNNING.
func awaitAllRunning(ctx context.Context, tasks []*core.Task) error {
	deadline := time.Now().Add(60 * time.Second)
	for _, t := range tasks {
		for t.State() != states.TaskExecuting {
			if time.Now().After(deadline) {
				return fmt.Errorf("task %s stuck in %s before the fault", t.UID(), t.State())
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	return nil
}

// waitSvcCount polls until the session manages n services (bounded).
func waitSvcCount(sess *core.Session, n int) {
	deadline := time.Now().Add(10 * time.Second)
	for len(sess.ServiceManager().Services()) < n && time.Now().Before(deadline) {
		time.Sleep(200 * time.Microsecond)
	}
}

// endpointOp decodes the op of a KindEndpoint record ("" on mismatch).
func endpointOp(rec journal.Record) string {
	var b journal.EndpointBody
	if err := json.Unmarshal(rec.Body, &b); err != nil {
		return ""
	}
	return b.Op
}

// Table renders the crash-recovery ablation.
func (r *CrashRecResult) Table() metrics.Table {
	t := metrics.Table{
		Title: fmt.Sprintf(
			"Crash-recovery ablation — client killed at three fault points, %d tasks + services across 2 pilots (journal vs none)",
			r.Cfg.Tasks),
		Header: []string{"fault point", "journal", "recovered", "incarnation", "torn tail",
			"pilots alive/lost", "tasks reattach/reroute/settle", "svcs reattach/replace/settle", "tasks completed"},
	}
	for _, row := range r.Rows {
		mode := "none"
		if row.Journaled {
			mode = "wal"
		}
		rec := "lost"
		if row.Recovered {
			rec = "yes"
		}
		t.AddRow(row.FaultPoint, mode, rec,
			fmt.Sprintf("%d", row.Incarnation),
			fmt.Sprintf("%v", row.TornTail),
			fmt.Sprintf("%d/%d", row.PilotsAlive, row.PilotsLost),
			fmt.Sprintf("%d/%d/%d", row.TasksReattached, row.TasksRerouted, row.TasksSettled),
			fmt.Sprintf("%d/%d/%d", row.ServicesReattached, row.ServicesReplaced, row.ServicesSettled),
			fmt.Sprintf("%d/%d", row.TasksCompleted, row.TasksInFlight))
	}
	return t
}

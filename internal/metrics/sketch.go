package metrics

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// DefaultSketchAlpha is the default relative-error bound of a Sketch: 1%.
const DefaultSketchAlpha = 0.01

// maxSketchBuckets bounds the dense bucket array. With alpha = 0.01 the
// full positive int64-nanosecond range (≈292 years) needs ~2170 buckets;
// the cap is a safety net against absurd alphas, not a tuning knob.
const maxSketchBuckets = 1 << 16

// Sketch is a fixed-memory streaming percentile estimator over durations —
// a log-bucketed histogram in the DDSketch family. Bucket i covers the
// value interval (γ^(i-1), γ^i] nanoseconds with γ = (1+α)/(1-α), so any
// value inside a bucket is within relative error α of the bucket's
// midpoint estimate 2γ^i/(γ+1).
//
// Accuracy contract: for every q, Quantile(q) is within relative error α
// of the exact nearest-rank quantile (rank = ceil(q·n), the convention
// Compute uses), deterministically — the rank-th smallest sample falls in
// some bucket, the rank walk lands in that bucket, and the estimate is
// within α of every value the bucket covers. Min and max are tracked
// exactly, so Quantile(q) at the extreme ranks returns them exactly.
//
// Memory is O(log(max/min)/α) — independent of the number of samples
// observed (MemoryBytes reports it) — and Merge folds two sketches with
// identical α bucket-by-bucket, so merge(a, b) yields exactly the same
// quantiles as one sketch fed a's and b's samples.
//
// A Sketch is safe for concurrent use.
type Sketch struct {
	mu      sync.Mutex
	alpha   float64
	gamma   float64
	lnGamma float64
	counts  []uint64 // dense, grown on demand; index = bucket
	zero    uint64   // samples ≤ 0
	n       uint64
	sum     float64
	sumsq   float64
	min     time.Duration
	max     time.Duration
}

// NewSketch returns an empty sketch with relative-error bound alpha
// (alpha ≤ 0 selects DefaultSketchAlpha; alpha must be < 1).
func NewSketch(alpha float64) *Sketch {
	if alpha <= 0 {
		alpha = DefaultSketchAlpha
	}
	if alpha >= 1 {
		panic(fmt.Sprintf("metrics: sketch alpha %v out of range (0, 1)", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{alpha: alpha, gamma: gamma, lnGamma: math.Log(gamma)}
}

// Alpha returns the sketch's relative-error bound.
func (s *Sketch) Alpha() float64 { return s.alpha }

// bucketOf returns the bucket index of a positive duration.
func (s *Sketch) bucketOf(v time.Duration) int {
	idx := int(math.Ceil(math.Log(float64(v)) / s.lnGamma))
	if idx < 0 {
		idx = 0 // v = 1ns lands at index 0; nothing smaller is positive
	}
	if idx >= maxSketchBuckets {
		idx = maxSketchBuckets - 1
	}
	return idx
}

// Observe adds one sample.
func (s *Sketch) Observe(v time.Duration) {
	s.mu.Lock()
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	f := float64(v)
	s.sum += f
	s.sumsq += f * f
	if v <= 0 {
		s.zero++
		s.mu.Unlock()
		return
	}
	idx := s.bucketOf(v)
	if idx >= len(s.counts) {
		grown := make([]uint64, idx+1)
		copy(grown, s.counts)
		s.counts = grown
	}
	s.counts[idx]++
	s.mu.Unlock()
}

// Count returns the number of observed samples.
func (s *Sketch) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.n)
}

// Min returns the exact minimum observed sample (0 when empty).
func (s *Sketch) Min() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.min
}

// Max returns the exact maximum observed sample (0 when empty).
func (s *Sketch) Max() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max
}

// Quantile returns the q-quantile estimate (nearest-rank convention,
// rank = ceil(q·n), matching Compute). The extreme ranks return the exact
// min/max; interior ranks are within relative error Alpha of the exact
// nearest-rank value. An empty sketch returns 0.
func (s *Sketch) Quantile(q float64) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quantileLocked(q)
}

func (s *Sketch) quantileLocked(q float64) time.Duration {
	if s.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.n {
		rank = s.n
	}
	if rank == 1 {
		return s.min
	}
	if rank == s.n {
		return s.max
	}
	if rank <= s.zero {
		return 0
	}
	cum := s.zero
	for i, c := range s.counts {
		cum += c
		if cum >= rank {
			// midpoint estimate 2γ^i/(γ+1) of bucket (γ^(i-1), γ^i],
			// rounded to the nearest integer nanosecond (so the bound is
			// α relative error plus at most half a nanosecond)
			est := 2 * math.Exp(float64(i)*s.lnGamma) / (s.gamma + 1)
			return time.Duration(est + 0.5)
		}
	}
	return s.max // unreachable when counts are consistent
}

// Stats summarizes the sketch in the same shape Compute returns: exact
// N/mean/std/min/max, sketched percentiles.
func (s *Sketch) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Stats{}
	}
	n := float64(s.n)
	mean := s.sum / n
	variance := s.sumsq/n - mean*mean
	if variance < 0 {
		variance = 0 // numerical noise
	}
	return Stats{
		N:    int(s.n),
		Mean: time.Duration(mean),
		Std:  time.Duration(math.Sqrt(variance)),
		Min:  s.min,
		Max:  s.max,
		P50:  s.quantileLocked(0.50),
		P95:  s.quantileLocked(0.95),
		P99:  s.quantileLocked(0.99),
	}
}

// Merge folds other into s bucket-by-bucket. Both sketches must share the
// same alpha: the bucket boundaries are a function of it, and adding
// counts across different boundaries would silently void the error bound.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil {
		return nil
	}
	if s == other {
		return fmt.Errorf("metrics: cannot merge a sketch into itself")
	}
	other.mu.Lock()
	oCounts := append([]uint64(nil), other.counts...)
	oZero, oN := other.zero, other.n
	oSum, oSumsq := other.sum, other.sumsq
	oMin, oMax := other.min, other.max
	oAlpha := other.alpha
	other.mu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	if oAlpha != s.alpha {
		return fmt.Errorf("metrics: sketch alpha mismatch: %v vs %v", s.alpha, oAlpha)
	}
	if oN == 0 {
		return nil
	}
	if s.n == 0 || oMin < s.min {
		s.min = oMin
	}
	if s.n == 0 || oMax > s.max {
		s.max = oMax
	}
	if len(oCounts) > len(s.counts) {
		grown := make([]uint64, len(oCounts))
		copy(grown, s.counts)
		s.counts = grown
	}
	for i, c := range oCounts {
		s.counts[i] += c
	}
	s.zero += oZero
	s.n += oN
	s.sum += oSum
	s.sumsq += oSumsq
	return nil
}

// MemoryBytes reports the sketch's bucket-array footprint — a function of
// the observed value range and alpha, not of the sample count.
func (s *Sketch) MemoryBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.counts) * 8
}

// Reset clears the sketch, keeping its alpha.
func (s *Sketch) Reset() {
	s.mu.Lock()
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.zero, s.n, s.sum, s.sumsq = 0, 0, 0, 0
	s.min, s.max = 0, 0
	s.mu.Unlock()
}

// Command rppilot is a standalone pilot-agent process: it launches one
// pilot on the TCP transport, prints "RPPILOT_READY <host:port>" on
// stdout, and serves control RPCs (task submission, service bootstrap,
// scheduler snapshots) as binary proto frames until it is told to shut
// down or its stdin reaches EOF.
//
// It runs in two modes:
//
//   - Spawned: a driver (xproc.Spawn, `rpexp -exp xproc`, the experiments
//     tests) re-executes a binary with the agent config JSON in the
//     RPPILOT_AGENT environment variable. MaybeRunAgent detects it and
//     never returns.
//
//   - Manual: flags assemble the same config for foreground use, e.g.
//
//     rppilot -uid pilot.0000 -platform hetero -nodes 32
//
// See README "Multi-process sessions" and ARCHITECTURE.md Flow 8.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/xproc"
)

func main() {
	xproc.MaybeRunAgent()

	uid := flag.String("uid", "pilot.0000", "pilot UID")
	plat := flag.String("platform", "hetero", "catalog platform to carve the pilot from")
	nodes := flag.Int("nodes", 0, "pilot node count (0: whole platform)")
	skip := flag.Int("skip", 0, "nodes to pre-allocate before acquiring (partition carving)")
	seed := flag.Uint64("seed", 1, "RNG seed")
	scale := flag.Float64("scale", 2000, "clock compression factor")
	sched := flag.String("sched", "", "pilot scheduling policy (default strict)")
	flag.Parse()

	err := xproc.RunAgent(xproc.AgentConfig{
		UID:         *uid,
		Platform:    *plat,
		SkipNodes:   *skip,
		Nodes:       *nodes,
		Seed:        *seed,
		Scale:       *scale,
		SchedPolicy: *sched,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rppilot: %v\n", err)
		os.Exit(1)
	}
}

package msgq

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/simtime"
)

// These tests pin down the REQ/REP and PUB/SUB hot-path optimizations so
// they cannot silently regress: the in-process transport itself must stay
// allocation-free on the synchronous fast path, and publishing must not
// spawn goroutines or allocate per subscriber.

// TestRequestFastPathAllocFree asserts that a round trip through the
// in-proc transport — two hops plus the handler call — performs zero
// transport-side allocations when the context is not cancellable.
func TestRequestFastPathAllocFree(t *testing.T) {
	n := newTestNet()
	defer n.Close()
	if _, err := n.Bind("svc", echoHandler); err != nil {
		t.Fatal(err)
	}
	c, err := n.Dial("client", "svc")
	if err != nil {
		t.Fatal(err)
	}
	env, _ := proto.NewEnvelope(proto.KindRequest, 1, "client", "svc", t0, struct{}{})
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := c.Request(ctx, env); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("fast-path Request allocates %.1f objects/op, want 0", allocs)
	}
}

// TestPublishAllocFree asserts that Publish with live subscribers
// allocates nothing and spawns no goroutines: delivery runs on each
// subscriber's persistent worker.
func TestPublishAllocFree(t *testing.T) {
	n := newTestNet()
	defer n.Close()
	p, err := n.BindPub("updates")
	if err != nil {
		t.Fatal(err)
	}
	subs := make([]*Subscription, 4)
	for i := range subs {
		sub, err := n.Subscribe(fmt.Sprintf("s%d", i), "updates", 4096)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
		defer sub.Cancel()
	}
	env, _ := proto.NewEnvelope(proto.KindStateUpdate, 1, "u", "", t0, proto.StateUpdate{State: "X"})
	allocs := testing.AllocsPerRun(100, func() { p.Publish("topic", env) })
	if allocs > 0 {
		t.Fatalf("Publish allocates %.1f objects/op with 4 subscribers, want 0", allocs)
	}
}

// TestSubscriberWorkerDelivers exercises the persistent-worker delivery
// pipeline under a latency-modelled link: messages must arrive in order
// and each must arrive no earlier than its modelled traversal time.
func TestSubscriberWorkerDelivers(t *testing.T) {
	resolve := func(from, to string) LinkProfile {
		return LinkProfile{Latency: rng.ConstDuration(2 * time.Millisecond)}
	}
	n := NewNetwork(simtime.NewReal(), rng.New(1), resolve)
	defer n.Close()
	p, _ := n.BindPub("updates")
	sub, _ := n.Subscribe("a", "updates", 64)
	defer sub.Cancel()

	start := time.Now()
	const burst = 8
	for i := 0; i < burst; i++ {
		env, _ := proto.NewEnvelope(proto.KindStateUpdate, uint64(i), "u", "", t0, proto.StateUpdate{State: "X"})
		p.Publish("t", env)
	}
	for i := 0; i < burst; i++ {
		select {
		case env := <-sub.C:
			if env.ID != uint64(i) {
				t.Fatalf("out-of-order delivery: got ID %d at position %d", env.ID, i)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("message %d never delivered", i)
		}
	}
	// a burst is pipelined, not serialized: all 8 messages share one
	// ~2ms traversal window rather than paying 8 × 2ms back to back
	if el := time.Since(start); el < 2*time.Millisecond || el > 1500*time.Millisecond {
		t.Fatalf("burst delivered in %v, want ≈ one traversal time", el)
	}
}

// TestRequestCachedServerSurvivesRebind verifies the dial-time server
// cache re-resolves through the registry when the server closes and the
// address is rebound — matching the seed's lookup-every-request semantics.
func TestRequestCachedServerSurvivesRebind(t *testing.T) {
	n := newTestNet()
	defer n.Close()
	var hits atomic.Int32
	s1, _ := n.Bind("svc", func(env proto.Envelope) proto.Envelope {
		hits.Add(1)
		return echoHandler(env)
	})
	c, _ := n.Dial("client", "svc")
	env, _ := proto.NewEnvelope(proto.KindRequest, 1, "client", "svc", t0, struct{}{})
	if _, err := c.Request(context.Background(), env); err != nil {
		t.Fatal(err)
	}
	_ = s1.Close()
	var rebound atomic.Int32
	if _, err := n.Bind("svc", func(env proto.Envelope) proto.Envelope {
		rebound.Add(1)
		return echoHandler(env)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Request(context.Background(), env); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 1 || rebound.Load() != 1 {
		t.Fatalf("old server saw %d, rebound server saw %d; want 1/1", hits.Load(), rebound.Load())
	}
}

// BenchmarkInprocRequest measures the synchronous REQ/REP fast path.
func BenchmarkInprocRequest(b *testing.B) {
	n := newTestNet()
	defer n.Close()
	_, _ = n.Bind("svc", echoHandler)
	c, _ := n.Dial("client", "svc")
	env, _ := proto.NewEnvelope(proto.KindRequest, 1, "client", "svc", t0, struct{}{})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Request(ctx, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInprocRequestContended is the contention benchmark: GOMAXPROCS
// client goroutines, each with its own connection, hammering one server on
// one shared Network. Before the registry split and dial-time server
// cache, every request serialized on the global Network mutex.
func BenchmarkInprocRequestContended(b *testing.B) {
	n := newTestNet()
	defer n.Close()
	_, _ = n.Bind("svc", echoHandler)
	ctx := context.Background()
	var id atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		c, err := n.Dial(fmt.Sprintf("client-%d", id.Add(1)), "svc")
		if err != nil {
			b.Error(err)
			return
		}
		env, _ := proto.NewEnvelope(proto.KindRequest, 1, "client", "svc", t0, struct{}{})
		for pb.Next() {
			if _, err := c.Request(ctx, env); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkPublishFanout measures Publish cost against 16 subscribers.
func BenchmarkPublishFanout(b *testing.B) {
	n := newTestNet()
	defer n.Close()
	p, _ := n.BindPub("updates")
	for i := 0; i < 16; i++ {
		sub, err := n.Subscribe(fmt.Sprintf("s%d", i), "updates", 1)
		if err != nil {
			b.Fatal(err)
		}
		defer sub.Cancel()
	}
	env, _ := proto.NewEnvelope(proto.KindStateUpdate, 1, "u", "", t0, proto.StateUpdate{State: "X"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Publish("t", env)
	}
}

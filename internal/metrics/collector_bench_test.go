package metrics

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// legacyCollector is the pre-rework collector — one global mutex around a
// name → slice map — kept inline as the before/after baseline for
// BenchmarkCollectorContention.
type legacyCollector struct {
	mu     sync.Mutex
	series map[string][]time.Duration
}

func newLegacyCollector() *legacyCollector {
	return &legacyCollector{series: make(map[string][]time.Duration)}
}

func (c *legacyCollector) Add(name string, v time.Duration) {
	c.mu.Lock()
	c.series[name] = append(c.series[name], v)
	c.mu.Unlock()
}

// BenchmarkCollectorContention measures concurrent Add throughput with
// every goroutine writing its own series — the load-harness pattern where
// per-worker latency streams share one collector. The legacy variant
// serializes all of them on one mutex; the per-series variant only touches
// the collector-level lock on the read path.
func BenchmarkCollectorContention(b *testing.B) {
	names := make([]string, runtime.GOMAXPROCS(0))
	for i := range names {
		names[i] = fmt.Sprintf("worker.%02d", i)
	}
	b.Run("legacy-global-mutex", func(b *testing.B) {
		c := newLegacyCollector()
		var next sync.Map
		b.RunParallel(func(pb *testing.PB) {
			name := names[0]
			for i := range names {
				if _, taken := next.LoadOrStore(i, true); !taken {
					name = names[i]
					break
				}
			}
			for pb.Next() {
				c.Add(name, time.Millisecond)
			}
		})
	})
	b.Run("per-series-locking", func(b *testing.B) {
		c := NewCollector()
		var next sync.Map
		b.RunParallel(func(pb *testing.PB) {
			name := names[0]
			for i := range names {
				if _, taken := next.LoadOrStore(i, true); !taken {
					name = names[i]
					break
				}
			}
			for pb.Next() {
				c.Add(name, time.Millisecond)
			}
		})
	})
}

// BenchmarkCollectorSingleSeries is the pathological shared-series case:
// per-series locking cannot help here, and this pins that it also does not
// regress versus the global mutex.
func BenchmarkCollectorSingleSeries(b *testing.B) {
	c := NewCollector()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add("shared", time.Millisecond)
		}
	})
}

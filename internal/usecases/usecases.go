// Package usecases implements the three LUCID pipelines of the paper's
// §II as workflow pipelines on the service-enabled runtime. Each builder
// returns a Pipeline whose stages mirror the paper's Table I rows,
// including which stages are enabled as services.
//
// Data sizes, sample counts and stage structure follow the paper: the Cell
// Painting pipeline processes a ~1.6 TB image dataset before ViT
// fine-tuning with Optuna-style hyperparameter search; Signature Detection
// annotates 15 ~300 MB VCF samples with VEP, enriches against
// KEGG/GO-style pathway sets, derives dose-response outputs, and compares
// signatures with an LLM service; Uncertainty Quantification sweeps a
// three-level hierarchy of UQ method × random seed × base model.
package usecases

import (
	"context"
	"fmt"
	"time"

	"sync"

	"repro/internal/bio"
	"repro/internal/core"
	"repro/internal/hpo"
	"repro/internal/metrics"
	"repro/internal/pilot"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/training"
	"repro/internal/workflow"
)

// --- Table I -----------------------------------------------------------------

// TableI renders the paper's use-case table.
func TableI() metrics.Table {
	t := metrics.Table{
		Title:  "Table I — Use cases: pipelines, resources, and service-based implementation",
		Header: []string{"ID", "Pipeline Name", "Stage Name", "Resource Type", "Enable as Service"},
	}
	t.AddRow("1", "Cell Painting", "Data pre-processing & augmentation", "CPU", "Yes")
	t.AddRow("", "", "Model training with hyperparameter optimization", "GPU", "Yes")
	t.AddRow("2", "Signature Detection", "Data Preparation", "CPU", "Yes")
	t.AddRow("", "", "Mutation Detection Analysis", "CPU", "No")
	t.AddRow("", "", "LLM-based signature comparison", "GPU", "Yes")
	t.AddRow("3", "Uncertainty Quantification", "Data Preparation", "CPU", "Yes")
	t.AddRow("", "", "UQ methods with three-level parallelism", "GPU", "No")
	t.AddRow("", "", "Post-processing", "GPU", "Yes")
	return t
}

// --- Use case II-A: Cell Painting ---------------------------------------------

// CellPaintingConfig sizes the pipeline. Zero values take paper-scale
// defaults; tests and examples pass reduced sizes.
type CellPaintingConfig struct {
	// DatasetBytes is the raw cell-painting dataset size (paper: ~1.6 TB,
	// staged via Globus).
	DatasetBytes int64
	// Shards is the number of parallel preprocessing tasks.
	Shards int
	// HPOTrials is the number of hyperparameter configurations explored
	// (Optuna-style random search over lr/batch/decay/dropout).
	HPOTrials int
	// TrainTime is the per-trial fine-tuning duration.
	TrainTime rng.DurationDist
	// PreprocessTime is the per-shard CPU processing duration.
	PreprocessTime rng.DurationDist
	// GateBytes is how much processed data must be staged before training
	// starts ("training ... only when sufficient processed data are
	// available").
	GateBytes int64
	// UseTrainingModel derives per-trial durations from the distributed
	// training performance model (internal/training) instead of
	// TrainTime, coupling each trial's batch size to its wall time.
	UseTrainingModel bool
	// TrainSamples and TrainEpochs parameterize the training model
	// (defaults 50000 samples, 3 epochs).
	TrainSamples int
	TrainEpochs  int
}

func (c *CellPaintingConfig) defaults() {
	if c.DatasetBytes <= 0 {
		c.DatasetBytes = 1_600_000_000_000 // ~1.6 TB
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.HPOTrials <= 0 {
		c.HPOTrials = 8
	}
	if c.TrainTime.IsZero() {
		c.TrainTime = rng.NormalDuration(20*time.Minute, 4*time.Minute)
	}
	if c.PreprocessTime.IsZero() {
		c.PreprocessTime = rng.NormalDuration(5*time.Minute, time.Minute)
	}
	if c.GateBytes <= 0 {
		c.GateBytes = c.DatasetBytes / int64(c.Shards) // first shard complete
	}
	if c.TrainSamples <= 0 {
		c.TrainSamples = 50000
	}
	if c.TrainEpochs <= 0 {
		c.TrainEpochs = 3
	}
}

// HPOTrial is one explored hyperparameter configuration.
type HPOTrial struct {
	LearningRate float64
	BatchSize    int
	WeightDecay  float64
	Dropout      float64
}

// SampleTrial draws one Optuna-style random-search configuration.
func SampleTrial(src *rng.Source) HPOTrial {
	lrs := []float64{1e-5, 3e-5, 1e-4, 3e-4}
	batches := []int{16, 32, 64, 128}
	return HPOTrial{
		LearningRate: lrs[src.Intn(len(lrs))],
		BatchSize:    batches[src.Intn(len(batches))],
		WeightDecay:  []float64{0, 0.01, 0.1}[src.Intn(3)],
		Dropout:      []float64{0, 0.1, 0.2, 0.3}[src.Intn(4)],
	}
}

// CellPainting builds the §II-A pipeline: a Globus-style transfer of the
// dataset, CPU preprocessing/augmentation shards feeding a staging area,
// and GPU ViT fine-tuning trials that start as soon as the data gate opens
// — preprocessing and training run asynchronously, trials concurrently.
func CellPainting(cfg CellPaintingConfig, src *rng.Source) *workflow.Pipeline {
	cfg.defaults()
	shardBytes := cfg.DatasetBytes / int64(cfg.Shards)

	// stage 1a: wide-area dataset transfer (Globus analogue)
	fetch := &workflow.Stage{
		Name: "fetch-dataset",
		Tasks: []spec.TaskDescription{{
			Name:  "globus-transfer",
			Cores: 1,
			InputStaging: []spec.StagingDirective{{
				Source: "globus:/lucid/cellpainting-raw",
				Target: "delta:/scratch/cellpainting/raw",
				Bytes:  cfg.DatasetBytes,
				Mode:   spec.StageTransfer,
			}},
		}},
	}

	// stage 1b: preprocessing shards (CPU, service-enabled per Table I —
	// here realized as parallel tasks staging processed shards out)
	var prep []spec.TaskDescription
	for i := 0; i < cfg.Shards; i++ {
		prep = append(prep, spec.TaskDescription{
			Name:     fmt.Sprintf("preprocess-%02d", i),
			Cores:    4,
			Duration: cfg.PreprocessTime,
			OutputStaging: []spec.StagingDirective{{
				Source: fmt.Sprintf("delta:/scratch/cellpainting/raw/shard-%02d", i),
				Target: fmt.Sprintf("delta:/scratch/cellpainting/processed/shard-%02d", i),
				Bytes:  shardBytes,
				Mode:   spec.StageCopy,
			}},
		})
	}
	preprocess := &workflow.Stage{
		Name:  "preprocess-augment",
		After: []string{"fetch-dataset"},
		Tasks: prep,
	}

	// stage 2: ViT fine-tuning with HPO, gated on processed data. Trial
	// durations come from the distributed-training performance model
	// (internal/training) unless the config overrides TrainTime, so a
	// trial's batch size influences its wall time as it would on hardware.
	var trials []spec.TaskDescription
	for i := 0; i < cfg.HPOTrials; i++ {
		trial := SampleTrial(src.Derive(fmt.Sprintf("trial-%02d", i)))
		dur := cfg.TrainTime
		if cfg.UseTrainingModel {
			job := training.ViTBase(cfg.TrainSamples, trial.BatchSize, cfg.TrainEpochs, 1)
			if d, err := job.Duration(); err == nil {
				dur = d
			}
		}
		trials = append(trials, spec.TaskDescription{
			Name:     fmt.Sprintf("finetune-vit-%02d", i),
			GPUs:     1,
			Duration: dur,
			Metadata: map[string]string{
				"lr":      fmt.Sprintf("%g", trial.LearningRate),
				"batch":   fmt.Sprintf("%d", trial.BatchSize),
				"decay":   fmt.Sprintf("%g", trial.WeightDecay),
				"dropout": fmt.Sprintf("%g", trial.Dropout),
			},
		})
	}
	train := &workflow.Stage{
		Name: "train-hpo",
		// asynchronous coupling: training depends on the transfer only; the
		// Pre gate (checked against the DataManager) lets it start as soon
		// as the first processed shards land, while preprocessing continues.
		After: []string{"fetch-dataset"},
		Pre: func(ctx context.Context, sess *core.Session) error {
			pilots := sess.PilotManager().List()
			if len(pilots) == 0 {
				return fmt.Errorf("cellpainting: no pilots")
			}
			// the DataManager gate: block until enough processed shards are
			// staged (checked on the pilot hosting the preprocessing tasks)
			select {
			case <-pilots[0].Stage().WaitBytes("delta:/scratch/cellpainting/processed/", cfg.GateBytes):
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
		Tasks: trials,
	}

	return &workflow.Pipeline{
		Name:   "cell-painting",
		Stages: []*workflow.Stage{fetch, preprocess, train},
	}
}

// --- Use case II-B: Signature Detection ----------------------------------------

// SignatureConfig sizes the pipeline.
type SignatureConfig struct {
	// Samples is the VCF sample count (paper: 15, ~300 MB each).
	Samples int
	// SampleBytes is the per-sample VCF size.
	SampleBytes int64
	// VEPTime is the per-sample annotation duration (paper: 1-5 min,
	// ~3 GB memory).
	VEPTime rng.DurationDist
	// EnrichTime is the per-sample pathway-enrichment duration (CPU,
	// minutes).
	EnrichTime rng.DurationDist
	// UseLLM adds the LLM-based signature comparison stage.
	UseLLM bool
	// LLMQueries is the number of comparison prompts sent to the service.
	LLMQueries int
	// Collector, when set, receives RT breakdowns of the LLM stage.
	Collector *metrics.Collector
	// Compute attaches real computation (internal/bio) to every stage:
	// synthetic VCF generation + VEP-style annotation, hypergeometric
	// pathway enrichment, and a dose-response fit, with results in
	// Results.
	Compute bool
	// Results receives the computed outputs when Compute is set.
	Results *SignatureResults
	// VariantsPerSample sizes each synthetic sample (default 400).
	VariantsPerSample int
}

// SignatureResults carries the computed outputs of a Compute-enabled
// Signature run. Safe for concurrent task access.
type SignatureResults struct {
	mu sync.Mutex
	// Doses holds the per-sample radiation dose.
	Doses []float64
	// Hits holds per-sample gene hit counts.
	Hits []map[string]int
	// Enrichments holds per-sample pathway enrichments.
	Enrichments [][]bio.Enrichment
	// Fit is the dose-response association over the radiation pathway.
	Fit bio.DoseResponse
}

// TopPathway returns the best-ranked pathway of sample i.
func (r *SignatureResults) TopPathway(i int) (bio.Enrichment, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.Enrichments) || len(r.Enrichments[i]) == 0 {
		return bio.Enrichment{}, false
	}
	return r.Enrichments[i][0], true
}

// DoseFit returns the fitted dose-response.
func (r *SignatureResults) DoseFit() bio.DoseResponse {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.Fit
}

func (c *SignatureConfig) defaults() {
	if c.Samples <= 0 {
		c.Samples = 15
	}
	if c.SampleBytes <= 0 {
		c.SampleBytes = 300_000_000
	}
	if c.VEPTime.IsZero() {
		c.VEPTime = rng.Seconds(rng.Uniform{Lo: 60, Hi: 300}) // 1-5 min
	}
	if c.EnrichTime.IsZero() {
		c.EnrichTime = rng.NormalDuration(3*time.Minute, 45*time.Second)
	}
	if c.LLMQueries <= 0 {
		c.LLMQueries = 4
	}
}

// Signature builds the §II-B pipeline: concurrent VEP annotation of each
// VCF sample, pathway enrichment, dose-response integration, and —
// optionally — LLM-based signature comparison against a service instance.
// With cfg.Compute set, every stage performs its real computation on
// synthetic data (internal/bio) in addition to its modelled runtime.
func Signature(cfg SignatureConfig, src *rng.Source) *workflow.Pipeline {
	cfg.defaults()

	// computational substrate (shared across stages when Compute is on)
	var (
		model    *bio.GeneModel
		pathways []bio.Pathway
		res      = cfg.Results
	)
	if cfg.Compute {
		if res == nil {
			res = &SignatureResults{}
		}
		model = bio.NewGeneModel(500)
		pathways = bio.SyntheticPathways(model, src.Derive("pathways"), 20, 25)
		res.mu.Lock()
		res.Doses = make([]float64, cfg.Samples)
		res.Hits = make([]map[string]int, cfg.Samples)
		res.Enrichments = make([][]bio.Enrichment, cfg.Samples)
		for i := range res.Doses {
			// dose ladder across samples: 0 .. ~0.9
			res.Doses[i] = float64(i) / float64(cfg.Samples) * 0.9
		}
		res.mu.Unlock()
	}
	variantsPer := cfg.VariantsPerSample
	if variantsPer <= 0 {
		variantsPer = 400
	}

	var vep []spec.TaskDescription
	for i := 0; i < cfg.Samples; i++ {
		var fn spec.TaskFunc
		if cfg.Compute {
			i := i
			sampleSrc := src.Derive(fmt.Sprintf("sample-%02d", i))
			fn = func(ctx context.Context) error {
				res.mu.Lock()
				dose := res.Doses[i]
				res.mu.Unlock()
				variants := bio.GenerateVCF(sampleSrc.Derive("vcf"), variantsPer, dose)
				anns := bio.Annotate(model, sampleSrc.Derive("ann"), variants)
				hits := bio.GeneHits(anns)
				res.mu.Lock()
				res.Hits[i] = hits
				res.mu.Unlock()
				return nil
			}
		}
		vep = append(vep, spec.TaskDescription{
			Name:     fmt.Sprintf("vep-annotate-%02d", i),
			Cores:    1,
			MemGB:    3, // paper: ~3 GB per VEP run
			Duration: cfg.VEPTime,
			Func:     fn,
			InputStaging: []spec.StagingDirective{{
				Source: fmt.Sprintf("delta:/data/vcf/sample-%02d.vcf", i),
				Target: fmt.Sprintf("delta:/scratch/sig/vcf/sample-%02d.vcf", i),
				Bytes:  cfg.SampleBytes,
				Mode:   spec.StageCopy,
			}},
			OutputStaging: []spec.StagingDirective{{
				Source: fmt.Sprintf("delta:/scratch/sig/vcf/sample-%02d.vcf", i),
				Target: fmt.Sprintf("delta:/scratch/sig/annotated/sample-%02d.json", i),
				Bytes:  cfg.SampleBytes / 2,
				Mode:   spec.StageCopy,
			}},
		})
	}
	annotate := &workflow.Stage{Name: "vep-annotation", Tasks: vep}

	var enrich []spec.TaskDescription
	for i := 0; i < cfg.Samples; i++ {
		var fn spec.TaskFunc
		if cfg.Compute {
			i := i
			fn = func(ctx context.Context) error {
				res.mu.Lock()
				hits := res.Hits[i]
				res.mu.Unlock()
				if hits == nil {
					return fmt.Errorf("signature: sample %d has no annotation hits", i)
				}
				enr := bio.Enrich(model, hits, pathways)
				res.mu.Lock()
				res.Enrichments[i] = enr
				res.mu.Unlock()
				return nil
			}
		}
		enrich = append(enrich, spec.TaskDescription{
			Name:     fmt.Sprintf("pathway-enrich-%02d", i),
			Cores:    4, // "can be parallelized across multiple cores"
			Duration: cfg.EnrichTime,
			Func:     fn,
		})
	}
	enrichment := &workflow.Stage{
		Name:  "pathway-enrichment",
		After: []string{"vep-annotation"},
		Tasks: enrich,
	}

	var doseFn spec.TaskFunc
	if cfg.Compute {
		doseFn = func(ctx context.Context) error {
			// response metric: the radiation-response pathway's overlap per
			// sample, regressed against dose
			var points []bio.DosePoint
			res.mu.Lock()
			for i, enr := range res.Enrichments {
				for _, e := range enr {
					if e.Pathway == "radiation-response" {
						points = append(points, bio.DosePoint{
							Dose: res.Doses[i], Response: float64(e.Overlap),
						})
					}
				}
			}
			res.mu.Unlock()
			fit, err := bio.FitDoseResponse(points)
			if err != nil {
				return err
			}
			res.mu.Lock()
			res.Fit = fit
			res.mu.Unlock()
			return nil
		}
	}
	doseResponse := &workflow.Stage{
		Name:  "dose-response",
		After: []string{"pathway-enrichment"},
		Tasks: []spec.TaskDescription{{
			Name:     "dose-response-integration",
			Cores:    4,
			Duration: rng.NormalDuration(2*time.Minute, 30*time.Second),
			Func:     doseFn,
			OutputStaging: []spec.StagingDirective{{
				Source: "delta:/scratch/sig/dose",
				Target: "delta:/results/sig/dose-response.csv",
				Bytes:  512_000, // "kilobyte to megabyte range"
				Mode:   spec.StageCopy,
			}},
		}},
	}

	stages := []*workflow.Stage{annotate, enrichment, doseResponse}

	if cfg.UseLLM {
		coll := cfg.Collector
		llmStage := &workflow.Stage{
			Name:  "llm-signature-comparison",
			After: []string{"dose-response"},
			Services: []spec.ServiceDescription{{
				TaskDescription: spec.TaskDescription{Name: "sig-llm", GPUs: 1},
				Model:           "llama-8b",
				ProbeInterval:   time.Hour,
			}},
			Tasks: []spec.TaskDescription{{
				Name:  "signature-compare",
				Cores: 1,
				Func: func(ctx context.Context) error {
					return nil // replaced by the runner-bound closure below
				},
			}},
		}
		// the comparison task needs session access: bind it via Post
		llmStage.Tasks = nil
		llmStage.Post = func(ctx context.Context, sess *core.Session) error {
			eps := sess.ServiceManager().Endpoints("llama-8b")
			if len(eps) == 0 {
				return fmt.Errorf("signature: no llama-8b endpoint")
			}
			cl, err := sess.Dial("delta//sig-compare-client", eps[0])
			if err != nil {
				return err
			}
			defer cl.Close()
			for q := 0; q < cfg.LLMQueries; q++ {
				prompt := fmt.Sprintf(
					"compare mutational signature %d against KEGG pathway enrichments and hypothesize a low-dose radiation mechanism", q)
				_, rt, err := cl.Infer(ctx, prompt, 128)
				if err != nil {
					return err
				}
				if coll != nil {
					coll.AddAll("sig.llm", rt.Components)
				}
			}
			return nil
		}
		stages = append(stages, llmStage)
	}

	return &workflow.Pipeline{Name: "signature-detection", Stages: stages}
}

// --- HPO campaign (Optuna analogue driving the runtime) -------------------------

// HPOCampaignConfig parameterizes RunHPOCampaign.
type HPOCampaignConfig struct {
	// Rounds of ask→run→tell iterations.
	Rounds int
	// TrialsPerRound run as concurrent GPU tasks.
	TrialsPerRound int
	// TrainSamples/TrainEpochs parameterize the per-trial training model.
	TrainSamples int
	TrainEpochs  int
}

func (c *HPOCampaignConfig) defaults() {
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
	if c.TrialsPerRound <= 0 {
		c.TrialsPerRound = 4
	}
	if c.TrainSamples <= 0 {
		c.TrainSamples = 20000
	}
	if c.TrainEpochs <= 0 {
		c.TrainEpochs = 1
	}
}

// CellPaintingSpace is the pipeline's hyperparameter search space.
func CellPaintingSpace() hpo.Space {
	return hpo.Space{
		{Name: "lr", Choices: []float64{1e-5, 3e-5, 1e-4, 3e-4}},
		{Name: "batch", Choices: []float64{16, 32, 64, 128}},
		{Name: "decay", Choices: []float64{0, 0.01, 0.1}},
		{Name: "dropout", Choices: []float64{0, 0.1, 0.2, 0.3}},
	}
}

// hpoSurrogate is the deterministic validation-loss surrogate the campaign
// optimizes: best near lr=1e-4, batch=64, decay=0.01, dropout=0.1, plus
// seeded noise.
func hpoSurrogate(params map[string]float64, src *rng.Source) float64 {
	loss := 0.4 * absf(log10(params["lr"])-log10(1e-4))
	loss += 0.2 * absf(params["batch"]-64) / 64
	loss += 2 * absf(params["decay"]-0.01)
	loss += absf(params["dropout"] - 0.1)
	return loss + 0.02*src.Normal(0, 1)
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func log10(v float64) float64 {
	// v is a positive learning rate from the search grid
	l := 0.0
	for v < 1 {
		v *= 10
		l--
	}
	return l
}

// RunHPOCampaign drives the iterative Optuna-style optimization of the
// Cell Painting training stage on the runtime: each round asks the study
// for a batch of configurations, runs them as concurrent GPU tasks whose
// modelled duration comes from the training performance model, and tells
// the observed objective back. It returns the study for inspection.
func RunHPOCampaign(ctx context.Context, sess *core.Session, p *pilot.Pilot, cfg HPOCampaignConfig) (*hpo.Study, error) {
	cfg.defaults()
	src := sess.RNG().Derive("hpo-campaign")
	study, err := hpo.NewStudy(CellPaintingSpace(), hpo.TPESampler{}, src.Derive("study"))
	if err != nil {
		return nil, err
	}
	for round := 0; round < cfg.Rounds; round++ {
		type running struct {
			trial hpo.Trial
			task  *pilot.Task
		}
		var batch []running
		for i := 0; i < cfg.TrialsPerRound; i++ {
			trial := study.Ask()
			job := training.ViTBase(cfg.TrainSamples, int(trial.Params["batch"]), cfg.TrainEpochs, 1)
			dur, err := job.Duration()
			if err != nil {
				return nil, err
			}
			task, err := p.SubmitTask(ctx, spec.TaskDescription{
				Name:     fmt.Sprintf("hpo-r%d-t%d", round, trial.ID),
				GPUs:     1,
				Duration: dur,
			})
			if err != nil {
				return nil, err
			}
			batch = append(batch, running{trial: trial, task: task})
		}
		for _, r := range batch {
			if err := p.WaitTasks(ctx, r.task.UID()); err != nil {
				return nil, err
			}
			value := hpoSurrogate(r.trial.Params, src.Derive(fmt.Sprintf("obj-%d", r.trial.ID)))
			if err := study.Tell(r.trial.ID, value); err != nil {
				return nil, err
			}
		}
	}
	return study, nil
}

// --- Use case II-C: Uncertainty Quantification ----------------------------------

// UQConfig sizes the pipeline's three-level hierarchy.
type UQConfig struct {
	// Methods are the UQ methods compared (paper: e.g. Bayesian LoRA,
	// LoRA ensemble).
	Methods []string
	// Seeds is the number of random seeds per method.
	Seeds int
	// Models are the base LLMs compared (paper: e.g. Llama, Mistral).
	Models []string
	// FinetuneTime is the per-task fine-tuning duration.
	FinetuneTime rng.DurationDist
	// TaskGPUMemGB is the per-task GPU memory demand (paper: 5-60 GB).
	TaskGPUMemGB float64
}

func (c *UQConfig) defaults() {
	if len(c.Methods) == 0 {
		c.Methods = []string{"bayesian-lora", "lora-ensemble"}
	}
	if c.Seeds <= 0 {
		c.Seeds = 3
	}
	if len(c.Models) == 0 {
		c.Models = []string{"llama-8b", "mistral-7b"}
	}
	if c.FinetuneTime.IsZero() {
		c.FinetuneTime = rng.NormalDuration(15*time.Minute, 3*time.Minute)
	}
	if c.TaskGPUMemGB <= 0 {
		c.TaskGPUMemGB = 24
	}
}

// TaskCount returns methods × seeds × models.
func (c UQConfig) TaskCount() int {
	cc := c
	cc.defaults()
	return len(cc.Methods) * cc.Seeds * len(cc.Models)
}

// UQ builds the §II-C pipeline: cheap data preparation, the three-level
// fine-tuning hierarchy at maximal task concurrency, and post-processing.
func UQ(cfg UQConfig) *workflow.Pipeline {
	cfg.defaults()

	prepare := &workflow.Stage{
		Name: "data-preparation",
		Tasks: []spec.TaskDescription{{
			Name:  "prepare-qa-dataset",
			Cores: 1,
			InputStaging: []spec.StagingDirective{{
				Source: "delta:/data/uq/qa-pairs.txt",
				Target: "delta:/scratch/uq/qa-pairs.txt",
				Bytes:  3_400_000, // paper: ~3.4 MB of Q&A text
				Mode:   spec.StageCopy,
			}},
			Duration: rng.NormalDuration(30*time.Second, 5*time.Second),
		}},
	}

	var ft []spec.TaskDescription
	for _, model := range cfg.Models {
		for _, method := range cfg.Methods {
			for seed := 0; seed < cfg.Seeds; seed++ {
				ft = append(ft, spec.TaskDescription{
					Name:     fmt.Sprintf("uq-%s-%s-seed%d", model, method, seed),
					GPUs:     1,
					MemGB:    cfg.TaskGPUMemGB,
					Duration: cfg.FinetuneTime,
					Metadata: map[string]string{
						"model": model, "method": method, "seed": fmt.Sprintf("%d", seed),
					},
				})
			}
		}
	}
	finetune := &workflow.Stage{
		Name:  "uq-finetuning",
		After: []string{"data-preparation"},
		Tasks: ft,
	}

	post := &workflow.Stage{
		Name:  "post-processing",
		After: []string{"uq-finetuning"},
		Tasks: []spec.TaskDescription{{
			Name:     "aggregate-uq-metrics",
			GPUs:     1,
			Duration: rng.NormalDuration(time.Minute, 10*time.Second),
			OutputStaging: []spec.StagingDirective{{
				Source: "delta:/scratch/uq/metrics",
				Target: "delta:/results/uq/summary.csv",
				Bytes:  64_000,
				Mode:   spec.StageCopy,
			}},
		}},
	}

	return &workflow.Pipeline{
		Name:   "uncertainty-quantification",
		Stages: []*workflow.Stage{prepare, finetune, post},
	}
}

package service

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/loadbal"
	"repro/internal/metrics"
	"repro/internal/proto"
)

// Caller is the client-side inference interface, satisfied by the msgq
// Client, the REST client adapter, and the load-balanced Pool. Client
// tasks program against Caller, so local and remote model instances are
// interchangeable — the interoperability §III requires.
type Caller interface {
	// Infer performs one synchronous inference and returns the reply and
	// the RT breakdown (communication / service / inference).
	Infer(ctx context.Context, prompt string, maxTokens int) (proto.InferenceReply, metrics.Breakdown, error)
	Close() error
}

// Pool is a load-balanced Caller over every live endpoint of one model,
// resolved through the session EndpointRegistry — the "dynamically
// rerouting requests to less used service instances" of the paper's
// future work, layered client-side over any Balancer.
//
// The registry is the single source of endpoint truth: the candidate set
// is re-read per request (services joining, leaving, or failing over are
// picked up live), and each candidate is called through a per-UID
// Resolver, so pooled clients get exactly the generation-stamped
// stale-endpoint detection Resolver clients have. The pre-registry
// design cached raw connections and dropped one whenever a request
// errored; that heuristic raced endpoint re-publication — an error
// observed against generation G could evict the already-republished G+1
// connection — and is gone: staleness is now decided by comparing the
// failed generation against the registry, never inferred from an error.
type Pool struct {
	reg   *EndpointRegistry
	model string
	bal   loadbal.Balancer
	dial  DialFn

	mu     sync.Mutex
	res    map[string]*Resolver // by service UID, created lazily
	closed bool
}

// NewPool builds a Pool over the registry's live endpoints for model.
// bal defaults to round-robin when nil.
func NewPool(reg *EndpointRegistry, model string, bal loadbal.Balancer, dial DialFn) (*Pool, error) {
	if reg == nil || dial == nil {
		return nil, fmt.Errorf("service: pool needs a registry and a dial function")
	}
	if bal == nil {
		bal = loadbal.NewRoundRobin()
	}
	return &Pool{
		reg:   reg,
		model: model,
		bal:   bal,
		dial:  dial,
		res:   make(map[string]*Resolver),
	}, nil
}

// Infer implements Caller: pick a live endpoint and forward the call
// through its generation-aware resolver.
func (p *Pool) Infer(ctx context.Context, prompt string, maxTokens int) (proto.InferenceReply, metrics.Breakdown, error) {
	eps := p.reg.ByModel(p.model)
	ep, err := p.bal.Pick(eps)
	if err != nil {
		return proto.InferenceReply{}, metrics.Breakdown{}, err
	}
	r, err := p.resolver(ep.ServiceUID)
	if err != nil {
		return proto.InferenceReply{}, metrics.Breakdown{}, err
	}
	return r.Infer(ctx, prompt, maxTokens)
}

func (p *Pool) resolver(uid string) (*Resolver, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, fmt.Errorf("service: pool for %s closed", p.model)
	}
	if r, ok := p.res[uid]; ok {
		return r, nil
	}
	r, err := NewResolver(p.reg, uid, p.dial, 0)
	if err != nil {
		return nil, err
	}
	p.res[uid] = r
	return r, nil
}

// Close implements Caller: releases every member resolver.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for uid, r := range p.res {
		_ = r.Close()
		delete(p.res, uid)
	}
	return nil
}

// Package core is the client-facing runtime facade — the analogue of
// RADICAL-Pilot's client layer extended with the paper's service
// capabilities. A Session owns the clock, RNG, platform topology,
// communication network and metrics; a PilotManager acquires pilots; a
// TaskManager and a ServiceManager submit TaskDescriptions and
// ServiceDescriptions through one unified API (Fig. 2 (1)); an Updater
// publishes every entity state transition on a dedicated channel
// (Fig. 2 (6)). Remote (e.g. R3-hosted) services register their endpoints
// directly with the session, so client tasks consume local and remote
// model instances through the same interface.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/executor"
	"repro/internal/loadbal"
	"repro/internal/metrics"
	"repro/internal/msgq"
	"repro/internal/pilot"
	"repro/internal/platform"
	"repro/internal/profile"
	"repro/internal/proto"
	"repro/internal/restapi"
	"repro/internal/rng"
	"repro/internal/router"
	"repro/internal/scheduler"
	"repro/internal/service"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/states"
)

// DefaultOrigin is the simulated epoch used when no clock is supplied.
var DefaultOrigin = time.Date(2025, 3, 17, 0, 0, 0, 0, time.UTC)

// UpdatesAddr is the session-level PUB endpoint for state updates.
const UpdatesAddr = "session//updates"

// SessionConfig parameterizes a Session.
type SessionConfig struct {
	// Seed drives all stochastic behaviour; the same seed replays the
	// same run.
	Seed uint64
	// Clock defaults to a 1000x scaled clock at DefaultOrigin.
	Clock simtime.Clock
	// Topology defaults to the full catalog topology: the paper's three
	// platforms (frontier, delta, r3) plus the mixed-shape hetero campus.
	Topology *platform.Topology
	// FastBoot zeroes pilot boot, launch and publish overheads. Use for
	// runs that measure steady-state behaviour (the paper's Exp 2/3, where
	// bootstrap is out of scope) on low clock scales where those sleeps
	// would cost real wall time.
	FastBoot bool
	// SchedPolicy names the placement policy every pilot's agent
	// scheduler uses ("strict", "backfill", "best-fit"). Empty defers to
	// the platform's default, then to strict.
	SchedPolicy string
	// Router names the session-level task→pilot routing strategy of the
	// TaskManager ("round-robin", "least-loaded", "capacity-fit"). Empty
	// selects round-robin, the seed dispatch.
	Router string
}

// Session is one runtime instance.
type Session struct {
	uid   string
	clock simtime.Clock
	src   *rng.Source
	topo  *platform.Topology
	net   *msgq.Network
	coll  *metrics.Collector
	prof  *profile.Recorder

	updates msgq.Publisher

	mu       sync.Mutex
	closed   bool
	remotes  map[string]proto.Endpoint
	fastBoot bool
	schedPol string

	pm *PilotManager
	tm *TaskManager
	sm *ServiceManager
}

// NewSession assembles a runtime session.
func NewSession(cfg SessionConfig) (*Session, error) {
	if cfg.Clock == nil {
		cfg.Clock = simtime.NewScaled(1000, DefaultOrigin)
	}
	if cfg.Topology == nil {
		cfg.Topology = platform.DefaultTopology()
	}
	// Fail fast on a bad policy or router name instead of at the first
	// pilot launch / task submission.
	if _, err := scheduler.PolicyByName(cfg.SchedPolicy); err != nil {
		return nil, err
	}
	rt, err := router.ByName(cfg.Router)
	if err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	net := msgq.NewNetwork(cfg.Clock, src.Derive("net"), cfg.Topology.Resolver())
	s := &Session{
		uid:      fmt.Sprintf("session.%08x", src.Derive("uid").Uint64()&0xffffffff),
		clock:    cfg.Clock,
		src:      src,
		topo:     cfg.Topology,
		net:      net,
		coll:     metrics.NewCollector(),
		prof:     profile.NewRecorder(),
		remotes:  make(map[string]proto.Endpoint),
		fastBoot: cfg.FastBoot,
		schedPol: cfg.SchedPolicy,
	}
	pub, err := net.BindPub(UpdatesAddr)
	if err != nil {
		net.Close()
		return nil, err
	}
	s.updates = pub
	s.pm = &PilotManager{sess: s, pilots: make(map[string]*pilot.Pilot)}
	s.tm = &TaskManager{
		sess:     s,
		rt:       rt,
		tasks:    make(map[string]*Task),
		overflow: make(map[string]*Task),
	}
	s.sm = &ServiceManager{sess: s, owner: make(map[string]*pilot.Pilot)}
	return s, nil
}

// UID returns the session identifier.
func (s *Session) UID() string { return s.uid }

// Clock returns the session clock.
func (s *Session) Clock() simtime.Clock { return s.clock }

// RNG returns the session's root RNG source.
func (s *Session) RNG() *rng.Source { return s.src }

// Network returns the session's communication network.
func (s *Session) Network() *msgq.Network { return s.net }

// Topology returns the platform topology.
func (s *Session) Topology() *platform.Topology { return s.topo }

// Metrics returns the session-wide metrics collector.
func (s *Session) Metrics() *metrics.Collector { return s.coll }

// Profile returns the session profile recorder (the RADICAL-Analytics
// analogue): every entity state transition is recorded with its clock
// timestamp and can be exported as CSV.
func (s *Session) Profile() *profile.Recorder { return s.prof }

// PilotManager returns the session's pilot manager.
func (s *Session) PilotManager() *PilotManager { return s.pm }

// TaskManager returns the session's task manager.
func (s *Session) TaskManager() *TaskManager { return s.tm }

// ServiceManager returns the session's service manager.
func (s *Session) ServiceManager() *ServiceManager { return s.sm }

// SubscribeUpdates attaches to the Updater's state-update channel,
// optionally filtered by entity topics ("pilot", "task", "service").
func (s *Session) SubscribeUpdates(buffer int, topics ...string) (*msgq.Subscription, error) {
	return s.net.Subscribe("client", UpdatesAddr, buffer, topics...)
}

// publishState is the Updater: it broadcasts one state transition on the
// session's update channel and records it in the session profile.
func (s *Session) publishState(entity string) states.Callback {
	record := s.prof.Callback(entity)
	return func(uid string, from, to states.State, at time.Time) {
		record(uid, from, to, at)
		env, err := proto.NewEnvelope(proto.KindStateUpdate, 0, uid, "", at, proto.StateUpdate{
			EntityUID: uid, Entity: entity, State: string(to), At: at,
		})
		if err != nil {
			return
		}
		s.updates.Publish(entity, env)
	}
}

// RegisterRemote adds a remote (externally managed, e.g. R3-hosted)
// service endpoint to the session. Remote models "are usually persistent
// on dedicated resources and do not need to be bootstrapped" (§IV).
func (s *Session) RegisterRemote(ep proto.Endpoint) {
	s.mu.Lock()
	s.remotes[ep.ServiceUID] = ep
	s.mu.Unlock()
}

// RemoteEndpoints returns registered remote endpoints (all models when
// model is empty).
func (s *Session) RemoteEndpoints(model string) []proto.Endpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []proto.Endpoint
	for _, ep := range s.remotes {
		if model == "" || ep.Model == model {
			out = append(out, ep)
		}
	}
	sortEndpoints(out)
	return out
}

// Dial connects a client address to a service endpoint, dispatching on
// the endpoint protocol: msgq endpoints get an in-network client, REST
// endpoints (remote R3-style deployments) get an HTTP-backed caller. Both
// satisfy service.Caller, so client tasks are agnostic to locality.
func (s *Session) Dial(clientAddr string, ep proto.Endpoint) (service.Caller, error) {
	if ep.Protocol == "rest" {
		return restapi.NewCaller(ep, s.clock)
	}
	return service.Dial(s.net, s.clock, clientAddr, ep)
}

// Pool returns a load-balanced Caller over all endpoints of model,
// re-resolved per request across local pilots and remote registrations.
func (s *Session) Pool(clientAddr, model string, bal loadbal.Balancer) (*service.Pool, error) {
	return service.NewPool(s.net, s.clock, clientAddr, bal, func() []proto.Endpoint {
		return s.sm.Endpoints(model)
	})
}

// Close shuts the session down: pilots, services, network. Tasks still
// parked in the TaskManager's overflow pool fail with ErrSessionClosed,
// and the pilot shutdowns fail queued tasks instead of re-routing them.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.tm.close()
	s.pm.shutdownAll()
	s.net.Close()
}

func sortEndpoints(eps []proto.Endpoint) {
	for i := 1; i < len(eps); i++ {
		for j := i; j > 0 && eps[j].ServiceUID < eps[j-1].ServiceUID; j-- {
			eps[j], eps[j-1] = eps[j-1], eps[j]
		}
	}
}

// --- PilotManager -----------------------------------------------------------

// PilotManager acquires and tracks pilots.
type PilotManager struct {
	sess *Session

	mu     sync.Mutex
	seq    int
	pilots map[string]*pilot.Pilot
}

// Submit launches a pilot on the described platform.
func (pm *PilotManager) Submit(desc spec.PilotDescription) (*pilot.Pilot, error) {
	plat := pm.sess.topo.Platform(desc.Platform)
	if plat == nil {
		return nil, fmt.Errorf("core: unknown platform %q", desc.Platform)
	}
	pm.mu.Lock()
	pm.seq++
	seq := pm.seq
	pm.mu.Unlock()
	if desc.UID == "" {
		desc.UID = fmt.Sprintf("pilot.%s.%04d", desc.Platform, seq)
	}
	cfg := pilot.Config{
		Clock:         pm.sess.clock,
		Src:           pm.sess.src.Derive(fmt.Sprintf("pilot.%s.%d", desc.Platform, seq)),
		Net:           pm.sess.net,
		Platform:      plat,
		SchedPolicy:   pm.sess.schedPol,
		StateCallback: pm.sess.publishState("task"),
	}
	if pm.sess.fastBoot {
		cfg.BootTime = rng.ConstDuration(0)
		cfg.PublishOverhead = rng.ConstDuration(0)
		cfg.LaunchModel = &platform.LaunchModel{}
	}
	p, err := pilot.Launch(cfg, desc)
	if err != nil {
		return nil, err
	}
	pm.mu.Lock()
	pm.pilots[p.UID()] = p
	pm.mu.Unlock()
	return p, nil
}

// Get returns a pilot by UID.
func (pm *PilotManager) Get(uid string) (*pilot.Pilot, bool) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	p, ok := pm.pilots[uid]
	return p, ok
}

// List returns all pilots.
func (pm *PilotManager) List() []*pilot.Pilot {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	out := make([]*pilot.Pilot, 0, len(pm.pilots))
	for _, p := range pm.pilots {
		out = append(out, p)
	}
	return out
}

func (pm *PilotManager) shutdownAll() {
	for _, p := range pm.List() {
		if p.State() == states.PilotActive {
			_ = p.Shutdown()
		}
	}
}

// --- TaskManager -------------------------------------------------------------

// ErrSessionClosed is the failure overflow-pooled tasks receive when the
// session shuts down before new capacity arrives for them.
var ErrSessionClosed = errors.New("core: session closed")

// TaskManager submits compute tasks across the session's pilots. Which
// pilot a task binds to is the pluggable Router's decision (default:
// round-robin, the seed dispatch; see SessionConfig.Router), made one
// task at a time against the pilots' live capacity snapshots — the
// session-level half of the pilot abstraction's late binding.
//
// Submission is transactional per description: Submit returns the
// successfully submitted prefix together with the error that stopped the
// batch. Validation failures and routing rejections stop the batch
// before any routing state moves, so resubmitting the remainder
// continues the sequence exactly where it stopped. (A pilot dying in
// the instant between routing and dispatch re-enters routing instead of
// erroring; only that race consumes extra rotation steps.)
//
// Tasks whose pilot shuts down before granting them resources are
// re-routed to another active pilot; when none is attached they park in
// a session-level overflow pool that AddPilot drains, so late-bound work
// survives pilot churn. Tasks pinned to a pilot (TaskDescription.Pilot)
// and tasks already executing are not re-routed: the former fail with
// pilot.ErrPilotStopped, the latter keep their own lifecycle.
type TaskManager struct {
	sess *Session

	mu       sync.Mutex
	pilots   []*pilot.Pilot
	rt       router.Router
	seq      int
	tasks    map[string]*Task
	overflow map[string]*Task
	closed   bool
}

// Task is a session-level task handle. It follows one logical task
// across pilot re-routes: the underlying pilot task may be replaced when
// a pilot dies, but the UID, description and completion channel stay.
type Task struct {
	tm  *TaskManager
	uid string
	// desc and ctx are fixed at submission; re-dispatches reuse both.
	desc spec.TaskDescription
	ctx  context.Context

	mu       sync.Mutex
	cur      *pilot.Task
	p        *pilot.Pilot
	reroutes int
	finished bool
	err      error
	done     chan struct{}
}

// UID returns the stable logical task UID.
func (t *Task) UID() string { return t.uid }

// Description returns the submitted description.
func (t *Task) Description() spec.TaskDescription { return t.desc }

// State returns the task's current lifecycle state. A task parked in the
// session overflow pool (no pilot bound) reports TMGR_SCHEDULING.
func (t *Task) State() states.State {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur != nil {
		return t.cur.State()
	}
	if t.finished {
		if t.err != nil {
			return states.TaskFailed
		}
		return states.TaskDone
	}
	return states.TaskTmgrScheduling
}

// Result returns the execution result (valid once Done() is closed).
func (t *Task) Result() executor.Result {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur != nil {
		return t.cur.Result()
	}
	return executor.Result{Err: t.err}
}

// Pilot returns the UID of the pilot currently running the task, or ""
// while it sits in the session overflow pool.
func (t *Task) Pilot() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.p == nil {
		return ""
	}
	return t.p.UID()
}

// Reroutes counts how many times the session re-bound this task to a new
// pilot after its previous one shut down.
func (t *Task) Reroutes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reroutes
}

// Done returns a channel closed when the logical task reaches a final
// state — including across re-routes, which the per-pilot task handles
// underneath cannot express.
func (t *Task) Done() <-chan struct{} { return t.done }

// Err returns the task's final error (nil on success; undefined before
// Done() closes).
func (t *Task) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// finish seals the logical task exactly once.
func (t *Task) finish(err error) {
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	t.err = err
	t.mu.Unlock()
	close(t.done)
}

// AddPilot attaches a pilot to the task manager and offers it to every
// task parked in the overflow pool.
func (tm *TaskManager) AddPilot(p *pilot.Pilot) {
	tm.mu.Lock()
	tm.pilots = append(tm.pilots, p)
	pending := make([]*Task, 0, len(tm.overflow))
	for _, t := range tm.overflow {
		pending = append(pending, t)
	}
	for _, t := range pending {
		delete(tm.overflow, t.uid)
	}
	tm.mu.Unlock()
	// Drain deterministically in submission order (UIDs embed the
	// session sequence number).
	sortTasks(pending)
	for _, t := range pending {
		tm.requeue(t)
	}
}

// RouterName returns the name of the active task→pilot router.
func (tm *TaskManager) RouterName() string {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.rt.Name()
}

// Submit routes and dispatches descriptions over the attached pilots,
// one at a time in order. On error it returns the successfully submitted
// prefix together with the error; descriptions after the failure are
// neither submitted nor accounted in any router state, so a retry of the
// remainder continues the task→pilot sequence unperturbed.
func (tm *TaskManager) Submit(ctx context.Context, descs ...spec.TaskDescription) ([]*Task, error) {
	tasks := make([]*Task, 0, len(descs))
	for _, d := range descs {
		t, err := tm.submitOne(ctx, d)
		if err != nil {
			return tasks, err
		}
		tasks = append(tasks, t)
	}
	return tasks, nil
}

// submitOne validates, routes and dispatches a single description.
// Validation runs before routing so a malformed description cannot
// advance the router's selection state, and a pilot that leaves ACTIVE
// between routing and dispatch triggers a re-route over the survivors
// rather than an error — only validation failures, routing rejections
// and capacity exhaustion surface to the caller.
func (tm *TaskManager) submitOne(ctx context.Context, d spec.TaskDescription) (*Task, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	for {
		tm.mu.Lock()
		if tm.closed {
			tm.mu.Unlock()
			return nil, ErrSessionClosed
		}
		if len(tm.pilots) == 0 {
			tm.mu.Unlock()
			return nil, errors.New("core: task manager has no pilots")
		}
		if d.UID == "" {
			tm.seq++
			d.UID = fmt.Sprintf("%s.task.%06d", tm.sess.uid, tm.seq)
		}
		if _, dup := tm.tasks[d.UID]; dup {
			tm.mu.Unlock()
			return nil, fmt.Errorf("core: duplicate task UID %s", d.UID)
		}
		p, err := tm.routeLocked(d)
		if err != nil {
			tm.mu.Unlock()
			return nil, err
		}
		t := &Task{tm: tm, uid: d.UID, desc: d, ctx: ctx, done: make(chan struct{})}
		tm.tasks[d.UID] = t
		tm.mu.Unlock()

		if err := tm.dispatch(t, p); err != nil {
			// The routed pilot left ACTIVE between routing and dispatch.
			// Seal and drop the handle (a concurrent Wait/Tasks snapshot
			// may already hold it), then retry: the state filter now
			// excludes the dead pilot. Terminal pilot states make the
			// retry count finite.
			t.finish(err)
			tm.mu.Lock()
			delete(tm.tasks, d.UID)
			tm.mu.Unlock()
			if pinned := d.Pilot != ""; pinned {
				return nil, err
			}
			continue
		}
		return t, nil
	}
}

// routeLocked picks the destination pilot for d: the pinned pilot when
// the description names one, the Router's choice over the currently
// active pilots otherwise. Callers hold tm.mu.
func (tm *TaskManager) routeLocked(d spec.TaskDescription) (*pilot.Pilot, error) {
	if d.Pilot != "" {
		for _, p := range tm.pilots {
			if p.UID() == d.Pilot {
				if p.State() != states.PilotActive {
					return nil, fmt.Errorf("core: task %s pinned to pilot %s in state %s",
						d.UID, d.Pilot, p.State())
				}
				return p, nil
			}
		}
		return nil, fmt.Errorf("core: task %s pinned to unknown pilot %q", d.UID, d.Pilot)
	}
	targets, live := tm.activeTargetsLocked()
	if len(live) == 0 {
		return nil, errors.New("core: no active pilots")
	}
	i, err := tm.rt.Route(targets, d)
	if err != nil {
		return nil, err
	}
	return live[i], nil
}

// activeTargetsLocked returns the attached pilots that are currently
// ACTIVE, as router targets and as pilots (same order). Callers hold
// tm.mu.
func (tm *TaskManager) activeTargetsLocked() ([]router.Target, []*pilot.Pilot) {
	targets := make([]router.Target, 0, len(tm.pilots))
	live := make([]*pilot.Pilot, 0, len(tm.pilots))
	for _, p := range tm.pilots {
		if p.State() != states.PilotActive {
			continue
		}
		targets = append(targets, p)
		live = append(live, p)
	}
	return targets, live
}

// dispatch submits the task to p and starts its watcher.
func (tm *TaskManager) dispatch(t *Task, p *pilot.Pilot) error {
	pt, err := p.SubmitTask(t.ctx, t.desc)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.cur, t.p = pt, p
	t.mu.Unlock()
	go tm.watch(t, pt, p)
	return nil
}

// watch follows one pilot-level task to a final state and settles or
// re-routes the logical task: DONE finishes it, a queued-at-shutdown
// failure (pilot.ErrPilotStopped, unpinned) re-enters routing, anything
// else fails it.
func (tm *TaskManager) watch(t *Task, pt *pilot.Task, p *pilot.Pilot) {
	// The pilot drives every task to a final state (context cancellation
	// and pilot shutdown are both failure paths), so this wait needs no
	// deadline of its own.
	_ = p.WaitTasks(context.Background(), pt.UID())
	if pt.State() == states.TaskDone {
		t.finish(nil)
		return
	}
	err := pt.Result().Err
	if errors.Is(err, pilot.ErrPilotStopped) && t.desc.Pilot == "" {
		tm.requeue(t)
		return
	}
	if err == nil {
		err = fmt.Errorf("core: task %s failed", t.uid)
	}
	t.finish(err)
}

// requeue re-routes a task whose pilot stopped before granting it
// resources: to another active pilot when one can take it, into the
// overflow pool when none is attached, or to failure when no attached
// pilot's shapes could ever fit it (shape-aware routers reject it the
// same way they would at submit). A pilot that dies between routing and
// dispatch just re-enters routing — terminal pilot states keep the
// retry count bounded by the number of attached pilots.
func (tm *TaskManager) requeue(t *Task) {
	t.mu.Lock()
	t.cur, t.p = nil, nil
	t.reroutes++
	t.mu.Unlock()

	for {
		tm.mu.Lock()
		if tm.closed {
			tm.mu.Unlock()
			t.finish(ErrSessionClosed)
			return
		}
		targets, live := tm.activeTargetsLocked()
		if len(live) == 0 {
			tm.overflow[t.uid] = t
			tm.mu.Unlock()
			return
		}
		i, err := tm.rt.Route(targets, t.desc)
		tm.mu.Unlock()
		if err != nil {
			t.finish(err)
			return
		}
		if err := tm.dispatch(t, live[i]); err != nil {
			continue
		}
		return
	}
}

// close fails every overflow-pooled task and stops further submissions.
func (tm *TaskManager) close() {
	tm.mu.Lock()
	tm.closed = true
	pending := make([]*Task, 0, len(tm.overflow))
	for uid, t := range tm.overflow {
		pending = append(pending, t)
		delete(tm.overflow, uid)
	}
	tm.mu.Unlock()
	for _, t := range pending {
		t.finish(ErrSessionClosed)
	}
}

// Wait blocks until the listed tasks reach a final state (following them
// across re-routes); with none listed it waits for every task submitted
// through this manager so far. It returns the first task failure, or the
// context error if ctx expires first.
func (tm *TaskManager) Wait(ctx context.Context, tasks ...*Task) error {
	if len(tasks) == 0 {
		tm.mu.Lock()
		tasks = make([]*Task, 0, len(tm.tasks))
		for _, t := range tm.tasks {
			tasks = append(tasks, t)
		}
		tm.mu.Unlock()
		sortTasks(tasks)
	}
	var firstErr error
	for _, t := range tasks {
		if t.tm != tm {
			return fmt.Errorf("core: task %s not owned by this manager", t.UID())
		}
		select {
		case <-t.done:
			if err := t.Err(); err != nil && firstErr == nil {
				firstErr = err
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return firstErr
}

// Tasks returns every task submitted through this manager, in submission
// order.
func (tm *TaskManager) Tasks() []*Task {
	tm.mu.Lock()
	out := make([]*Task, 0, len(tm.tasks))
	for _, t := range tm.tasks {
		out = append(out, t)
	}
	tm.mu.Unlock()
	sortTasks(out)
	return out
}

// Overflow reports how many tasks are parked in the session overflow
// pool awaiting an active pilot.
func (tm *TaskManager) Overflow() int {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return len(tm.overflow)
}

// sortTasks orders tasks by UID — submission order for manager-assigned
// UIDs, which embed the session sequence number.
func sortTasks(tasks []*Task) {
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].uid < tasks[j].uid })
}

// --- ServiceManager -----------------------------------------------------------

// ServiceManager submits service tasks across pilots and aggregates
// endpoint discovery over local pilots and remote registrations.
type ServiceManager struct {
	sess *Session

	mu     sync.Mutex
	pilots []*pilot.Pilot
	rr     int
	owner  map[string]*pilot.Pilot // service UID → hosting pilot
}

// AddPilot attaches a pilot to the service manager.
func (sm *ServiceManager) AddPilot(p *pilot.Pilot) {
	sm.mu.Lock()
	sm.pilots = append(sm.pilots, p)
	sm.mu.Unlock()
}

// Submit dispatches one service description to the next pilot.
func (sm *ServiceManager) Submit(d spec.ServiceDescription) (*service.Instance, error) {
	sm.mu.Lock()
	if len(sm.pilots) == 0 {
		sm.mu.Unlock()
		return nil, errors.New("core: service manager has no pilots")
	}
	p := sm.pilots[sm.rr%len(sm.pilots)]
	sm.rr++
	sm.mu.Unlock()

	inst, err := p.Services().Submit(d)
	if err != nil {
		return nil, err
	}
	sm.mu.Lock()
	sm.owner[inst.UID()] = p
	sm.mu.Unlock()
	return inst, nil
}

// WaitReady blocks until the listed services are ACTIVE.
func (sm *ServiceManager) WaitReady(ctx context.Context, uids ...string) error {
	for _, uid := range uids {
		sm.mu.Lock()
		p, ok := sm.owner[uid]
		sm.mu.Unlock()
		if !ok {
			return fmt.Errorf("core: service %s not owned by this manager", uid)
		}
		if err := p.Services().WaitReady(ctx, uid); err != nil {
			return err
		}
	}
	return nil
}

// Terminate stops a managed service.
func (sm *ServiceManager) Terminate(uid string, drain bool) error {
	sm.mu.Lock()
	p, ok := sm.owner[uid]
	sm.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: service %s not owned by this manager", uid)
	}
	return p.Services().Terminate(uid, drain)
}

// Get returns a managed instance.
func (sm *ServiceManager) Get(uid string) (*service.Instance, bool) {
	sm.mu.Lock()
	p, ok := sm.owner[uid]
	sm.mu.Unlock()
	if !ok {
		return nil, false
	}
	return p.Services().Get(uid)
}

// Endpoints returns every known endpoint for model (local pilots plus
// remote registrations), in deterministic order.
func (sm *ServiceManager) Endpoints(model string) []proto.Endpoint {
	sm.mu.Lock()
	pilots := append([]*pilot.Pilot{}, sm.pilots...)
	sm.mu.Unlock()
	var out []proto.Endpoint
	for _, p := range pilots {
		out = append(out, p.Registry().ByModel(model)...)
	}
	out = append(out, sm.sess.RemoteEndpoints(model)...)
	sortEndpoints(out)
	return out
}

// QueueDepth reports a managed service's live queue depth (remote
// endpoints report 0: their depth is not observable from the client side).
func (sm *ServiceManager) QueueDepth(uid string) int {
	if inst, ok := sm.Get(uid); ok {
		return inst.QueueDepth()
	}
	return 0
}

package msgq

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/proto"
)

// inprocServer is a REQ/REP endpoint on a Network.
type inprocServer struct {
	net     *Network
	addr    string
	handler Handler

	mu     sync.Mutex
	closed bool
}

// Bind registers a REQ/REP server at addr. Requests are served
// concurrently; serialization (e.g. the paper's single-threaded services)
// is the handler's responsibility.
func (n *Network) Bind(addr string, h Handler) (Server, error) {
	if h == nil {
		return nil, fmt.Errorf("msgq: bind %s: nil handler", addr)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.reps[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	s := &inprocServer{net: n, addr: addr, handler: h}
	n.reps[addr] = s
	return s, nil
}

// Addr implements Server.
func (s *inprocServer) Addr() string { return s.addr }

// Close implements Server.
func (s *inprocServer) Close() error {
	s.mu.Lock()
	closed := s.closed
	s.closed = true
	s.mu.Unlock()
	if closed {
		return nil
	}
	s.net.mu.Lock()
	delete(s.net.reps, s.addr)
	s.net.mu.Unlock()
	return nil
}

func (s *inprocServer) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// inprocClient is a connected REQ/REP client.
type inprocClient struct {
	net     *Network
	from    string
	to      string
	profile LinkProfile

	mu     sync.Mutex
	closed bool
}

// Dial connects a client at address from to the server bound at to. The
// link profile is resolved once at dial time, mirroring a connected socket.
func (n *Network) Dial(from, to string) (Client, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.reps[to]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownAddr, to)
	}
	return &inprocClient{net: n, from: from, to: to, profile: n.resolve(from, to)}, nil
}

// Request implements Client. The calling goroutine pays the request hop,
// the handler execution, and the reply hop — matching the synchronous
// REQ/REP round trip the paper's response-time metric measures.
func (c *inprocClient) Request(ctx context.Context, env proto.Envelope) (proto.Envelope, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return proto.Envelope{}, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return proto.Envelope{}, err
	}

	c.net.mu.Lock()
	srv, ok := c.net.reps[c.to]
	c.net.mu.Unlock()
	if !ok || srv.isClosed() {
		return proto.Envelope{}, fmt.Errorf("%w: %s", ErrUnknownAddr, c.to)
	}

	type result struct {
		env proto.Envelope
		err error
	}
	done := make(chan result, 1)
	go func() {
		c.net.hop(c.profile, env) // request traversal
		if srv.isClosed() {
			done <- result{err: ErrClosed}
			return
		}
		reply := srv.handler(env)
		c.net.hop(c.profile, reply) // reply traversal
		done <- result{env: reply}
	}()
	select {
	case r := <-done:
		return r.env, r.err
	case <-ctx.Done():
		return proto.Envelope{}, ctx.Err()
	}
}

// Close implements Client.
func (c *inprocClient) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return nil
}

// --- PUB/SUB --------------------------------------------------------------

// Publisher broadcasts envelopes to topic subscribers.
type Publisher interface {
	Publish(topic string, env proto.Envelope)
	Addr() string
	Close() error
}

// Subscription receives published envelopes for its topics.
type Subscription struct {
	C      <-chan proto.Envelope
	cancel func()
}

// Cancel removes the subscription and closes C.
func (s *Subscription) Cancel() {
	if s.cancel != nil {
		s.cancel()
	}
}

type subscriber struct {
	id     uint64
	topics map[string]bool // empty set = all topics
	ch     chan proto.Envelope
	from   string
}

type inprocPublisher struct {
	net  *Network
	addr string

	mu     sync.Mutex
	closed bool
	nextID uint64
	subs   map[uint64]*subscriber
}

// BindPub registers a PUB endpoint at addr.
func (n *Network) BindPub(addr string) (Publisher, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.pubs[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	p := &inprocPublisher{net: n, addr: addr, subs: make(map[uint64]*subscriber)}
	n.pubs[addr] = p
	return p, nil
}

// Subscribe attaches to the PUB endpoint at addr, receiving envelopes whose
// topic is in topics (all topics when none given). buffer sizes the
// delivery channel; slow subscribers drop messages rather than block the
// publisher, matching PUB/SUB semantics.
func (n *Network) Subscribe(from, addr string, buffer int, topics ...string) (*Subscription, error) {
	n.mu.Lock()
	p, ok := n.pubs[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownAddr, addr)
	}
	if buffer <= 0 {
		buffer = 64
	}
	ts := make(map[string]bool, len(topics))
	for _, t := range topics {
		ts[t] = true
	}
	sub := &subscriber{topics: ts, ch: make(chan proto.Envelope, buffer), from: from}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	p.nextID++
	sub.id = p.nextID
	p.subs[sub.id] = sub
	p.mu.Unlock()
	return &Subscription{
		C: sub.ch,
		cancel: func() {
			p.mu.Lock()
			if _, ok := p.subs[sub.id]; ok {
				delete(p.subs, sub.id)
				close(sub.ch)
			}
			p.mu.Unlock()
		},
	}, nil
}

// Publish implements Publisher. Delivery is asynchronous per subscriber,
// paying one link-latency hop.
func (p *inprocPublisher) Publish(topic string, env proto.Envelope) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	targets := make([]*subscriber, 0, len(p.subs))
	for _, s := range p.subs {
		if len(s.topics) == 0 || s.topics[topic] {
			targets = append(targets, s)
		}
	}
	p.mu.Unlock()
	for _, s := range targets {
		s := s
		profile := p.net.resolve(p.addr, s.from)
		go func() {
			p.net.hop(profile, env)
			p.mu.Lock()
			_, live := p.subs[s.id]
			p.mu.Unlock()
			if !live {
				return
			}
			select {
			case s.ch <- env:
			default: // slow subscriber: drop
			}
		}()
	}
}

// Addr implements Publisher.
func (p *inprocPublisher) Addr() string { return p.addr }

// Close implements Publisher.
func (p *inprocPublisher) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for id, s := range p.subs {
		delete(p.subs, id)
		close(s.ch)
	}
	p.mu.Unlock()
	p.net.mu.Lock()
	delete(p.net.pubs, p.addr)
	p.net.mu.Unlock()
	return nil
}

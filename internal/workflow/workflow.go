// Package workflow is the orchestration layer above the runtime facade —
// the role EnTK/Parsl/AirFlow play in the paper's Fig. 1 stack. A Pipeline
// is a DAG of Stages; each stage may start services, submit tasks, and run
// gate hooks (e.g. "start training only when sufficient processed data are
// available", §II-A). Independent stages execute concurrently, giving the
// asynchronous, task-level-parallel execution model all three LUCID use
// cases require.
package workflow

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/pilot"
	"repro/internal/spec"
)

// Hook is a stage-level callback (gates, post-processing).
type Hook func(ctx context.Context, sess *core.Session) error

// Stage is one node of the pipeline DAG.
type Stage struct {
	// Name must be unique within the pipeline.
	Name string
	// After lists stage names that must complete first. Empty means the
	// stage is a root and may start immediately.
	After []string
	// Pre runs before any submission (use for data gates).
	Pre Hook
	// Services are started (and awaited ready) before the stage's tasks.
	Services []spec.ServiceDescription
	// Tasks are submitted together and awaited.
	Tasks []spec.TaskDescription
	// Pilot optionally routes this stage's tasks to the named pilot (a
	// routing hint copied onto each task description that does not pin a
	// pilot itself), so data-local stages can follow their staged inputs
	// instead of the session router's choice. Empty leaves routing to the
	// session's Router.
	Pilot string
	// Post runs after all tasks complete.
	Post Hook
	// KeepServices leaves this stage's services running after the
	// pipeline ends (as if their descriptions were marked Persistent).
	// By default pipeline-started services are drained and terminated at
	// pipeline end.
	KeepServices bool
}

// Pipeline is a named stage DAG.
type Pipeline struct {
	Name   string
	Stages []*Stage
}

// Validate checks name uniqueness, dependency resolution and acyclicity.
func (p *Pipeline) Validate() error {
	if p.Name == "" {
		return errors.New("workflow: unnamed pipeline")
	}
	byName := make(map[string]*Stage, len(p.Stages))
	for _, st := range p.Stages {
		if st.Name == "" {
			return fmt.Errorf("workflow: %s: unnamed stage", p.Name)
		}
		if _, dup := byName[st.Name]; dup {
			return fmt.Errorf("workflow: %s: duplicate stage %q", p.Name, st.Name)
		}
		byName[st.Name] = st
	}
	for _, st := range p.Stages {
		for _, dep := range st.After {
			if _, ok := byName[dep]; !ok {
				return fmt.Errorf("workflow: %s: stage %q depends on unknown %q", p.Name, st.Name, dep)
			}
		}
	}
	// cycle detection: Kahn's algorithm
	indeg := make(map[string]int, len(p.Stages))
	next := make(map[string][]string)
	for _, st := range p.Stages {
		indeg[st.Name] += 0
		for _, dep := range st.After {
			indeg[st.Name]++
			next[dep] = append(next[dep], st.Name)
		}
	}
	var queue []string
	for name, d := range indeg {
		if d == 0 {
			queue = append(queue, name)
		}
	}
	seen := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		seen++
		for _, m := range next[n] {
			indeg[m]--
			if indeg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if seen != len(p.Stages) {
		return fmt.Errorf("workflow: %s: dependency cycle", p.Name)
	}
	return nil
}

// StageReport records one stage's execution.
type StageReport struct {
	Stage    string
	Started  time.Time
	Finished time.Time
	Tasks    int
	Services int
	Err      error
}

// Duration returns the stage's wall time on the session clock.
func (r StageReport) Duration() time.Duration { return r.Finished.Sub(r.Started) }

// Report aggregates a pipeline run.
type Report struct {
	Pipeline string
	Started  time.Time
	Finished time.Time
	Stages   []StageReport
}

// Duration returns the pipeline's wall time on the session clock.
func (r *Report) Duration() time.Duration { return r.Finished.Sub(r.Started) }

// StageReport returns the report of the named stage.
func (r *Report) StageReport(name string) (StageReport, bool) {
	for _, s := range r.Stages {
		if s.Stage == name {
			return s, true
		}
	}
	return StageReport{}, false
}

// Runner executes pipelines on a session.
type Runner struct {
	sess   *core.Session
	pilots []*pilot.Pilot
}

// NewRunner builds a Runner submitting to the given pilots through the
// session's task and service managers.
func NewRunner(sess *core.Session, pilots ...*pilot.Pilot) (*Runner, error) {
	if sess == nil || len(pilots) == 0 {
		return nil, errors.New("workflow: runner needs a session and at least one pilot")
	}
	for _, p := range pilots {
		sess.TaskManager().AddPilot(p)
		sess.ServiceManager().AddPilot(p)
	}
	return &Runner{sess: sess, pilots: pilots}, nil
}

// Run executes the pipeline DAG. Independent stages run concurrently; a
// stage failure fails its dependents transitively but lets independent
// branches finish. Services started by the pipeline are terminated at
// pipeline end unless their description marks them Persistent.
func (r *Runner) Run(ctx context.Context, p *Pipeline) (*Report, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	clock := r.sess.Clock()
	report := &Report{Pipeline: p.Name, Started: clock.Now()}

	type stageState struct {
		stage *Stage
		done  chan struct{}
		err   error
	}
	st := make(map[string]*stageState, len(p.Stages))
	for _, s := range p.Stages {
		st[s.Name] = &stageState{stage: s, done: make(chan struct{})}
	}

	type startedSvc struct {
		inst *core.Service
		keep bool
	}
	var started []startedSvc
	var startedMu sync.Mutex

	var wg sync.WaitGroup
	var repMu sync.Mutex
	for _, s := range p.Stages {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			state := st[s.Name]
			defer close(state.done)

			// wait for dependencies
			for _, dep := range s.After {
				depState := st[dep]
				select {
				case <-depState.done:
					if depState.err != nil {
						state.err = fmt.Errorf("workflow: stage %s: dependency %s failed: %w", s.Name, dep, depState.err)
						repMu.Lock()
						report.Stages = append(report.Stages, StageReport{Stage: s.Name, Err: state.err})
						repMu.Unlock()
						return
					}
				case <-ctx.Done():
					state.err = ctx.Err()
					return
				}
			}

			rep := StageReport{Stage: s.Name, Started: clock.Now()}
			state.err = r.runStage(ctx, s, &rep, func(inst *core.Service) {
				startedMu.Lock()
				started = append(started, startedSvc{inst: inst, keep: s.KeepServices})
				startedMu.Unlock()
			})
			rep.Err = state.err
			rep.Finished = clock.Now()
			repMu.Lock()
			report.Stages = append(report.Stages, rep)
			repMu.Unlock()
		}()
	}
	wg.Wait()
	report.Finished = clock.Now()

	// terminate services started by this run, unless their description is
	// Persistent or their stage asked to keep them
	for _, sv := range started {
		if !sv.keep && !sv.inst.Description().Persistent {
			_ = r.sess.ServiceManager().Terminate(sv.inst.UID(), true)
		}
	}

	var firstErr error
	for _, s := range p.Stages {
		if err := st[s.Name].err; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return report, firstErr
}

func (r *Runner) runStage(ctx context.Context, s *Stage, rep *StageReport, record func(*core.Service)) error {
	if s.Pre != nil {
		if err := s.Pre(ctx, r.sess); err != nil {
			return fmt.Errorf("workflow: stage %s pre-hook: %w", s.Name, err)
		}
	}
	sm := r.sess.ServiceManager()
	var svcUIDs []string
	for _, sd := range s.Services {
		inst, err := sm.Submit(sd)
		if err != nil {
			return fmt.Errorf("workflow: stage %s service %s: %w", s.Name, sd.Name, err)
		}
		record(inst)
		svcUIDs = append(svcUIDs, inst.UID())
	}
	if len(svcUIDs) > 0 {
		if err := sm.WaitReady(ctx, svcUIDs...); err != nil {
			return fmt.Errorf("workflow: stage %s services: %w", s.Name, err)
		}
	}
	rep.Services = len(svcUIDs)

	if len(s.Tasks) > 0 {
		descs := s.Tasks
		if s.Pilot != "" {
			descs = make([]spec.TaskDescription, len(s.Tasks))
			copy(descs, s.Tasks)
			for i := range descs {
				if descs[i].Pilot == "" {
					descs[i].Pilot = s.Pilot
				}
			}
		}
		tasks, err := r.sess.TaskManager().Submit(ctx, descs...)
		if err != nil {
			return fmt.Errorf("workflow: stage %s tasks: %w", s.Name, err)
		}
		rep.Tasks = len(tasks)
		if err := r.sess.TaskManager().Wait(ctx, tasks...); err != nil {
			return fmt.Errorf("workflow: stage %s: %w", s.Name, err)
		}
	}

	if s.Post != nil {
		if err := s.Post(ctx, r.sess); err != nil {
			return fmt.Errorf("workflow: stage %s post-hook: %w", s.Name, err)
		}
	}
	return nil
}

package service

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/loadbal"
	"repro/internal/metrics"
	"repro/internal/msgq"
	"repro/internal/proto"
)

// poolCaller is a scripted in-memory backend for pool tests: it answers
// with the endpoint identity it was dialed for, optionally parks on a
// gate before answering, and fails with the transport's endpoint-gone
// error once its address is marked dead.
type poolCaller struct {
	uid, addr string
	dead      *atomic.Value // current dead address (string), may be nil
	gate      chan struct{} // when non-nil, Infer blocks here first
	entered   chan struct{} // signaled once per Infer before the gate
}

func (f *poolCaller) Infer(ctx context.Context, prompt string, maxTokens int) (proto.InferenceReply, metrics.Breakdown, error) {
	if f.entered != nil {
		f.entered <- struct{}{}
	}
	if f.gate != nil {
		<-f.gate
	}
	if f.dead != nil {
		if d, _ := f.dead.Load().(string); d == f.addr {
			return proto.InferenceReply{}, metrics.Breakdown{}, fmt.Errorf("%w: %s", msgq.ErrClosed, f.addr)
		}
	}
	return proto.InferenceReply{ServiceUID: f.uid, Model: "noop", Text: f.addr}, metrics.Breakdown{}, nil
}

func (f *poolCaller) Close() error { return nil }

// poolDial returns a DialFn minting poolCallers and the dial counter.
func poolDial(dead *atomic.Value) (DialFn, *atomic.Int64) {
	var dials atomic.Int64
	return func(e proto.Endpoint) (Caller, error) {
		dials.Add(1)
		return &poolCaller{uid: e.ServiceUID, addr: e.Address, dead: dead}, nil
	}, &dials
}

func TestPoolValidation(t *testing.T) {
	dial, _ := poolDial(nil)
	if _, err := NewPool(nil, "noop", nil, dial); err == nil {
		t.Fatal("NewPool accepted a nil registry")
	}
	if _, err := NewPool(NewEndpointRegistry(), "noop", nil, nil); err == nil {
		t.Fatal("NewPool accepted a nil dial function")
	}
}

func TestPoolRoundRobinAcrossServices(t *testing.T) {
	reg := NewEndpointRegistry()
	for i := 0; i < 3; i++ {
		reg.Publish(ep(fmt.Sprintf("svc-%d", i), fmt.Sprintf("addr-%d", i)))
	}
	dial, _ := poolDial(nil)
	pool, err := NewPool(reg, "noop", loadbal.NewRoundRobin(), dial)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	served := map[string]int{}
	for i := 0; i < 9; i++ {
		reply, _, err := pool.Infer(context.Background(), "x", 0)
		if err != nil {
			t.Fatal(err)
		}
		served[reply.ServiceUID]++
	}
	if len(served) != 3 {
		t.Fatalf("requests hit %d services, want 3", len(served))
	}
	for uid, n := range served {
		if n != 3 {
			t.Fatalf("service %s served %d/9, want 3 (round robin)", uid, n)
		}
	}
}

func TestPoolNoEndpoints(t *testing.T) {
	dial, _ := poolDial(nil)
	pool, err := NewPool(NewEndpointRegistry(), "noop", nil, dial)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, _, err := pool.Infer(context.Background(), "x", 0); err == nil {
		t.Fatal("Infer succeeded with no endpoints")
	}
}

func TestPoolPicksUpNewServices(t *testing.T) {
	reg := NewEndpointRegistry()
	reg.Publish(ep("a", "addr-a"))
	dial, _ := poolDial(nil)
	pool, err := NewPool(reg, "noop", loadbal.NewRoundRobin(), dial)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, _, err := pool.Infer(context.Background(), "x", 0); err != nil {
		t.Fatal(err)
	}
	// a second service joins; the pool must route to it without re-creation
	reg.Publish(ep("b", "addr-b"))
	served := map[string]bool{}
	for i := 0; i < 8; i++ {
		reply, _, err := pool.Infer(context.Background(), "x", 0)
		if err != nil {
			t.Fatal(err)
		}
		served[reply.ServiceUID] = true
	}
	if len(served) != 2 {
		t.Fatalf("pool used %d services after join, want 2", len(served))
	}
}

func TestPoolFollowsWithdrawal(t *testing.T) {
	reg := NewEndpointRegistry()
	reg.Publish(ep("a", "addr-a"))
	reg.Publish(ep("b", "addr-b"))
	dial, _ := poolDial(nil)
	pool, err := NewPool(reg, "noop", loadbal.NewRoundRobin(), dial)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	// warm both connections
	for i := 0; i < 2; i++ {
		if _, _, err := pool.Infer(context.Background(), "x", 0); err != nil {
			t.Fatal(err)
		}
	}
	// a leaves the registry: its endpoint vanishes from ByModel, so every
	// subsequent request lands on b
	reg.Withdraw("a")
	for i := 0; i < 4; i++ {
		reply, _, err := pool.Infer(context.Background(), "x", 0)
		if err != nil {
			t.Fatal(err)
		}
		if reply.ServiceUID != "b" {
			t.Fatalf("request served by %s after withdrawal of a", reply.ServiceUID)
		}
	}
}

func TestPoolLeastPendingPrefersIdleService(t *testing.T) {
	reg := NewEndpointRegistry()
	// publication order fixes ByModel order: busy first, so a naive
	// picker would choose it
	reg.Publish(ep("busy", "addr-busy"))
	reg.Publish(ep("idle", "addr-idle"))
	depths := map[string]int{"busy": 4, "idle": 0}
	depth := func(uid string) int { return depths[uid] }
	dial, _ := poolDial(nil)
	pool, err := NewPool(reg, "noop", loadbal.NewLeastPending(depth), dial)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	reply, _, err := pool.Infer(context.Background(), "quick", 8)
	if err != nil {
		t.Fatal(err)
	}
	if reply.ServiceUID != "idle" {
		t.Fatalf("least-pending pool routed to the saturated service %s", reply.ServiceUID)
	}
}

// TestPoolRepublicationDuringInFlightError pins the evict-on-error race
// the registry fold removed (satellite bugfix): a request in flight
// against generation G errors after the endpoint was already republished
// at G+1 and a fresh connection to G+1 was warmed by another request.
// The old pool evicted cached connections by UID whenever a request
// errored, which here would have torn down the healthy G+1 connection
// and forced a third dial; generation-aware staleness keeps it.
func TestPoolRepublicationDuringInFlightError(t *testing.T) {
	reg := NewEndpointRegistry()
	var dead atomic.Value
	dead.Store("")
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	var dials atomic.Int64
	dial := func(e proto.Endpoint) (Caller, error) {
		n := dials.Add(1)
		c := &poolCaller{uid: e.ServiceUID, addr: e.Address, dead: &dead}
		if n == 1 {
			// only the first (generation-1) connection parks on the gate
			c.gate, c.entered = gate, entered
		}
		return c, nil
	}
	pool, err := NewPool(reg, "noop", loadbal.NewRoundRobin(), dial)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	reg.Publish(ep("svc", "gen1-addr"))
	req1 := make(chan error, 1)
	go func() {
		_, _, err := pool.Infer(context.Background(), "x", 0)
		req1 <- err
	}()
	<-entered // request 1 is in flight against the generation-1 connection

	// failover: generation 1 dies, generation 2 is republished, and a
	// second request warms the generation-2 connection (dial #2)
	dead.Store("gen1-addr")
	reg.Suspend("svc")
	reg.Publish(ep("svc", "gen2-addr"))
	reply, _, err := pool.Infer(context.Background(), "x", 0)
	if err != nil || reply.Text != "gen2-addr" {
		t.Fatalf("post-republish infer = %q err %v", reply.Text, err)
	}
	if n := dials.Load(); n != 2 {
		t.Fatalf("dials = %d after warming generation 2, want 2", n)
	}

	// request 1's error finally lands, carrying generation 1: the
	// resolver must retry on the cached generation-2 connection, not
	// evict it
	close(gate)
	select {
	case err := <-req1:
		if err != nil {
			t.Fatalf("in-flight request did not fail over: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never settled")
	}
	if n := dials.Load(); n != 2 {
		t.Fatalf("dials = %d after the stale error, want 2 (gen-2 connection evicted?)", n)
	}
	// and the pool keeps serving on the surviving connection
	if _, _, err := pool.Infer(context.Background(), "x", 0); err != nil {
		t.Fatal(err)
	}
	if n := dials.Load(); n != 2 {
		t.Fatalf("dials = %d after follow-up request, want 2", n)
	}
}

func TestPoolClosedRejects(t *testing.T) {
	reg := NewEndpointRegistry()
	reg.Publish(ep("a", "addr-a"))
	dial, _ := poolDial(nil)
	pool, err := NewPool(reg, "noop", nil, dial)
	if err != nil {
		t.Fatal(err)
	}
	_ = pool.Close()
	if _, _, err := pool.Infer(context.Background(), "x", 0); err == nil {
		t.Fatal("Infer succeeded on closed pool")
	}
}

package serving

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/simtime"
)

var origin = time.Date(2025, 3, 17, 0, 0, 0, 0, time.UTC)

func newServer(t *testing.T, model string, concurrency int) *Server {
	return newServerScaled(t, model, concurrency, 100000)
}

// newServerScaled lets slow-clock tests (scale 1000) observe queueing while
// fast tests compress model loads to microseconds (scale 100000).
func newServerScaled(t *testing.T, model string, concurrency int, scale float64) *Server {
	t.Helper()
	spec, err := llm.Lookup(model)
	if err != nil {
		t.Fatal(err)
	}
	clock := simtime.NewScaled(scale, origin)
	src := rng.New(42)
	s, err := New(Config{
		UID:         "service.0001",
		Backend:     LLMBackend{M: llm.NewInstance(spec, clock, src.Derive("model"))},
		Clock:       clock,
		Src:         src.Derive("server"),
		Concurrency: concurrency,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func start(t *testing.T, s *Server) {
	t.Helper()
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
}

func req(uid, prompt string, max int) proto.InferenceRequest {
	return proto.InferenceRequest{RequestUID: uid, ClientUID: "task.0001", Prompt: prompt, MaxTokens: max}
}

func TestNewValidation(t *testing.T) {
	clock := simtime.NewScaled(1000, origin)
	src := rng.New(1)
	spec, _ := llm.Lookup("noop")
	backend := LLMBackend{M: llm.NewInstance(spec, clock, src)}
	if _, err := New(Config{Clock: clock, Src: src}); err == nil {
		t.Fatal("New accepted nil backend")
	}
	if _, err := New(Config{Backend: backend, Src: src}); err == nil {
		t.Fatal("New accepted nil clock")
	}
	if _, err := New(Config{Backend: backend, Clock: clock}); err == nil {
		t.Fatal("New accepted nil src")
	}
}

func TestStartLoadsBackend(t *testing.T) {
	s := newServer(t, "llama-8b", 1)
	if s.Ready() {
		t.Fatal("server ready before Start")
	}
	load, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	if load < 10*time.Second {
		t.Fatalf("load time %v implausibly small for llama-8b", load)
	}
	if !s.Ready() || s.LoadTime() != load {
		t.Fatal("server not ready after Start")
	}
	if _, err := s.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
}

func TestSubmitBeforeStart(t *testing.T) {
	s := newServer(t, "noop", 1)
	_, err := s.Submit(context.Background(), req("r1", "x", 1))
	if !errors.Is(err, ErrNotReady) {
		t.Fatalf("err = %v, want ErrNotReady", err)
	}
	if s.Rejected() != 1 {
		t.Fatalf("Rejected = %d", s.Rejected())
	}
}

func TestSubmitRoundTrip(t *testing.T) {
	s := newServer(t, "llama-8b", 1)
	start(t, s)
	reply, err := s.Submit(context.Background(), req("r1", "classify this sample", 32))
	if err != nil {
		t.Fatal(err)
	}
	if reply.RequestUID != "r1" || reply.ServiceUID != "service.0001" || reply.Model != "llama-8b" {
		t.Fatalf("reply header = %+v", reply)
	}
	if reply.OutputTokens < 1 {
		t.Fatal("no output tokens")
	}
	if s.Processed() != 1 {
		t.Fatalf("Processed = %d", s.Processed())
	}
}

func TestTimingMonotoneAndDecomposable(t *testing.T) {
	// scale 1000 keeps real scheduling noise (≲1ms → ≲1s sim) well below
	// the multi-second inference it is compared against
	s := newServerScaled(t, "llama-8b", 1, 1000)
	start(t, s)
	reply, err := s.Submit(context.Background(), req("r1", "prompt", 1024))
	if err != nil {
		t.Fatal(err)
	}
	tm := reply.Timing
	if tm.ReceivedAt.After(tm.DequeuedAt) || tm.DequeuedAt.After(tm.InferStartAt) ||
		tm.InferStartAt.After(tm.InferEndAt) || tm.InferEndAt.After(tm.RepliedAt) {
		t.Fatalf("timing not monotone: %+v", tm)
	}
	if tm.InferTime() <= 0 {
		t.Fatal("zero inference time for llama")
	}
	if tm.ServiceTime() <= 0 {
		t.Fatal("zero service overhead")
	}
	// paper Fig. 6: inference dominates service overhead by orders of
	// magnitude for a real model
	if tm.InferTime() < 10*tm.ServiceTime() {
		t.Fatalf("inference (%v) does not dominate service (%v)", tm.InferTime(), tm.ServiceTime())
	}
}

func TestNoopInferenceNearZero(t *testing.T) {
	// low clock scale: at high scales, sub-microsecond real gaps between
	// Now() calls inflate into large simulated durations
	s := newServerScaled(t, "noop", 1, 100)
	start(t, s)
	reply, err := s.Submit(context.Background(), req("r1", "ignored", 0))
	if err != nil {
		t.Fatal(err)
	}
	if it := reply.Timing.InferTime(); it > 50*time.Millisecond {
		t.Fatalf("noop inference time = %v (sim), want ≈0", it)
	}
}

func TestSingleThreadedQueueing(t *testing.T) {
	// The paper's single-threaded service: N concurrent clients → requests
	// serialize, and later requests show queue time ≫ first request's.
	s := newServer(t, "llama-8b", 1)
	start(t, s)
	const n = 4
	var wg sync.WaitGroup
	queueTimes := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reply, err := s.Submit(context.Background(), req("r", "prompt", 64))
			if err != nil {
				t.Error(err)
				return
			}
			queueTimes[i] = reply.Timing.QueueTime()
		}(i)
	}
	wg.Wait()
	var maxQ time.Duration
	for _, q := range queueTimes {
		if q > maxQ {
			maxQ = q
		}
	}
	// with ~seconds-long inferences, the last of 4 serialized requests must
	// have queued for at least one inference duration
	if maxQ < 500*time.Millisecond {
		t.Fatalf("max queue time %v too small for single-threaded service", maxQ)
	}
}

func TestConcurrentWorkersReduceQueueing(t *testing.T) {
	serial := newServer(t, "llama-8b", 1)
	parallel := newServer(t, "llama-8b", 4)
	start(t, serial)
	start(t, parallel)
	run := func(s *Server) time.Duration {
		const n = 4
		var wg sync.WaitGroup
		var mu sync.Mutex
		var total time.Duration
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				reply, err := s.Submit(context.Background(), req("r", "p", 64))
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				total += reply.Timing.QueueTime()
				mu.Unlock()
			}()
		}
		wg.Wait()
		return total
	}
	qSerial, qParallel := run(serial), run(parallel)
	if qParallel >= qSerial {
		t.Fatalf("4 workers queued %v, single worker %v — want reduction", qParallel, qSerial)
	}
}

func TestQueueFull(t *testing.T) {
	spec, _ := llm.Lookup("llama-8b")
	clock := simtime.NewScaled(100000, origin)
	src := rng.New(1)
	s, err := New(Config{
		UID:      "svc",
		Backend:  LLMBackend{M: llm.NewInstance(spec, clock, src.Derive("m"))},
		Clock:    clock,
		Src:      src.Derive("s"),
		QueueCap: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	start(t, s)
	// saturate: 1 executing + 1 queued, then the next must be rejected
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Submit(context.Background(), req("r", "p", 512))
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	full := 0
	for err := range errs {
		if errors.Is(err, ErrQueueFull) {
			full++
		}
	}
	if full == 0 {
		t.Fatal("no request was rejected with ErrQueueFull")
	}
}

func TestHandlerRoundTrip(t *testing.T) {
	s := newServer(t, "noop", 1)
	start(t, s)
	h := s.Handler()
	env, _ := proto.NewEnvelope(proto.KindRequest, 9, "task.0001", "service.0001", origin, req("r9", "x", 0))
	out := h(env)
	if out.Kind != proto.KindReply || out.ID != 9 {
		t.Fatalf("handler reply = %+v", out)
	}
	var rep proto.InferenceReply
	if err := out.Decode(proto.KindReply, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.RequestUID != "r9" {
		t.Fatalf("reply body = %+v", rep)
	}
}

func TestHandlerBadRequest(t *testing.T) {
	s := newServer(t, "noop", 1)
	start(t, s)
	h := s.Handler()
	env, _ := proto.NewEnvelope(proto.KindControl, 1, "x", "y", origin, proto.Control{})
	out := h(env)
	if out.Kind != proto.KindError {
		t.Fatalf("handler accepted wrong-kind request: %+v", out)
	}
}

func TestHandlerErrorWhenNotReady(t *testing.T) {
	s := newServer(t, "noop", 1)
	h := s.Handler()
	env, _ := proto.NewEnvelope(proto.KindRequest, 1, "x", "y", origin, req("r", "p", 0))
	out := h(env)
	if out.Kind != proto.KindError {
		t.Fatal("handler replied to request before Start")
	}
	var eb proto.ErrorBody
	if err := out.Decode(proto.KindError, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Msg == "" {
		t.Fatal("empty error message")
	}
}

func TestDrainFinishesQueue(t *testing.T) {
	s := newServer(t, "llama-8b", 1)
	start(t, s)
	const n = 3
	var wg sync.WaitGroup
	ok := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), req("r", "p", 32)); err == nil {
				ok <- struct{}{}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let requests enqueue
	s.Drain()
	wg.Wait()
	if len(ok) != n {
		t.Fatalf("%d/%d queued requests served across drain", len(ok), n)
	}
	if _, err := s.Submit(context.Background(), req("r", "p", 32)); err == nil {
		t.Fatal("Submit accepted after Drain")
	}
	s.Drain() // idempotent
}

func TestStopFlushesQueueWithErrors(t *testing.T) {
	s := newServerScaled(t, "llama-8b", 1, 1000) // inference ≈ 40ms real
	start(t, s)
	var wg sync.WaitGroup
	results := make(chan error, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reply, err := s.Submit(context.Background(), req("r", "p", 2048))
			if err == nil && reply.Err != "" {
				err = errors.New(reply.Err)
			}
			results <- err
		}()
	}
	time.Sleep(20 * time.Millisecond)
	s.Stop()
	s.Stop() // idempotent
	wg.Wait()
	close(results)
	var failed int
	for err := range results {
		if err != nil {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("Stop did not flush any queued request with an error")
	}
	if _, err := s.Submit(context.Background(), req("r", "p", 1)); !errors.Is(err, ErrStopped) {
		t.Fatalf("Submit after Stop = %v, want ErrStopped", err)
	}
}

func TestSubmitContextCancellation(t *testing.T) {
	s := newServerScaled(t, "llama-8b", 1, 1000) // inference ≈ 15ms real
	start(t, s)
	// occupy the single worker with a ~45ms (real) inference
	go s.Submit(context.Background(), req("long", "p", 2048)) //nolint:errcheck
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := s.Submit(ctx, req("r", "p", 2048))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestQueueDepthTracksLoad(t *testing.T) {
	s := newServerScaled(t, "llama-8b", 1, 1000) // inference ≈ 4ms real per 64 tokens
	start(t, s)
	if d := s.QueueDepth(); d != 0 {
		t.Fatalf("idle depth = %d", d)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Submit(context.Background(), req("r", "p", 2048)) //nolint:errcheck
		}()
	}
	time.Sleep(20 * time.Millisecond)
	if d := s.QueueDepth(); d < 1 || d > 3 {
		t.Fatalf("depth under load = %d, want 1..3", d)
	}
	wg.Wait()
	if d := s.QueueDepth(); d != 0 {
		t.Fatalf("depth after drain = %d", d)
	}
}

func TestStartAfterStop(t *testing.T) {
	s := newServer(t, "noop", 1)
	s.Stop()
	if _, err := s.Start(); !errors.Is(err, ErrStopped) {
		t.Fatalf("Start after Stop = %v, want ErrStopped", err)
	}
}

func TestDedupWindowServesRedeliveryExactlyOnce(t *testing.T) {
	s := newServer(t, "noop", 1)
	start(t, s)
	defer s.Stop()

	first, err := s.Submit(context.Background(), req("dup-1", "p", 8))
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	// Redelivery of the same request UID (a resolver retry after a lost
	// reply) must answer from memory, not re-execute.
	second, err := s.Submit(context.Background(), req("dup-1", "p", 8))
	if err != nil {
		t.Fatalf("redelivery: %v", err)
	}
	if s.Processed() != 1 {
		t.Fatalf("Processed = %d, want exactly 1 execution", s.Processed())
	}
	if s.Deduped() != 1 {
		t.Fatalf("Deduped = %d, want 1", s.Deduped())
	}
	if second.RequestUID != first.RequestUID || second.Text != first.Text ||
		second.Timing != first.Timing {
		t.Fatalf("cached reply differs: %+v vs %+v", second, first)
	}
	// A fresh UID still executes.
	if _, err := s.Submit(context.Background(), req("dup-2", "p", 8)); err != nil {
		t.Fatalf("fresh submit: %v", err)
	}
	if s.Processed() != 2 || s.Deduped() != 1 {
		t.Fatalf("after fresh UID: processed=%d deduped=%d", s.Processed(), s.Deduped())
	}
}

func TestDedupWindowEviction(t *testing.T) {
	spec, err := llm.Lookup("noop")
	if err != nil {
		t.Fatal(err)
	}
	clock := simtime.NewScaled(100000, origin)
	src := rng.New(7)
	s, err := New(Config{
		UID:         "service.0001",
		Backend:     LLMBackend{M: llm.NewInstance(spec, clock, src.Derive("model"))},
		Clock:       clock,
		Src:         src.Derive("server"),
		DedupWindow: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	start(t, s)
	defer s.Stop()

	for _, uid := range []string{"a", "b", "c"} { // "a" evicted at "c"
		if _, err := s.Submit(context.Background(), req(uid, "p", 8)); err != nil {
			t.Fatalf("submit %s: %v", uid, err)
		}
	}
	if _, err := s.Submit(context.Background(), req("a", "p", 8)); err != nil {
		t.Fatalf("resubmit evicted: %v", err)
	}
	if s.Processed() != 4 || s.Deduped() != 0 {
		t.Fatalf("evicted UID deduped: processed=%d deduped=%d", s.Processed(), s.Deduped())
	}
	if _, err := s.Submit(context.Background(), req("c", "p", 8)); err != nil {
		t.Fatalf("resubmit remembered: %v", err)
	}
	if s.Deduped() != 1 {
		t.Fatalf("remembered UID not deduped: %d", s.Deduped())
	}
}

func TestDedupDisabled(t *testing.T) {
	spec, err := llm.Lookup("noop")
	if err != nil {
		t.Fatal(err)
	}
	clock := simtime.NewScaled(100000, origin)
	src := rng.New(7)
	s, err := New(Config{
		UID:         "service.0001",
		Backend:     LLMBackend{M: llm.NewInstance(spec, clock, src.Derive("model"))},
		Clock:       clock,
		Src:         src.Derive("server"),
		DedupWindow: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	start(t, s)
	defer s.Stop()
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(context.Background(), req("same", "p", 8)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Processed() != 2 || s.Deduped() != 0 {
		t.Fatalf("disabled dedup intercepted: processed=%d deduped=%d", s.Processed(), s.Deduped())
	}
}

// --- Continuous batching (PR 8) ----------------------------------------------

// recordingBackend is a BatchBackend that records every batch it serves.
// The entered/gate channels let tests hold the worker mid-inference so
// the queue contents at the next dequeue are exactly known.
type recordingBackend struct {
	entered chan struct{} // one signal per InferBatch entry (after recording)
	gate    chan struct{} // each InferBatch waits for one token before returning

	mu      sync.Mutex
	batches [][]llm.BatchItem
}

func (b *recordingBackend) Name() string        { return "rec" }
func (b *recordingBackend) Load() time.Duration { return 0 }
func (b *recordingBackend) MemGB() float64      { return 0 }

func (b *recordingBackend) Infer(prompt string, maxTokens int) llm.Result {
	return b.InferBatch([]llm.BatchItem{{Prompt: prompt, MaxTokens: maxTokens}})[0]
}

func (b *recordingBackend) InferBatch(items []llm.BatchItem) []llm.Result {
	b.mu.Lock()
	b.batches = append(b.batches, append([]llm.BatchItem(nil), items...))
	b.mu.Unlock()
	if b.entered != nil {
		b.entered <- struct{}{}
	}
	if b.gate != nil {
		<-b.gate
	}
	return make([]llm.Result, len(items))
}

func (b *recordingBackend) recorded() [][]string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([][]string, len(b.batches))
	for i, batch := range b.batches {
		for _, it := range batch {
			out[i] = append(out[i], it.Prompt)
		}
	}
	return out
}

func newBatchServer(t *testing.T, b Backend, maxBatch int) *Server {
	t.Helper()
	s, err := New(Config{
		UID:         "service.0001",
		Backend:     b,
		Clock:       simtime.NewScaled(100000, origin),
		Src:         rng.New(42),
		Concurrency: 1,
		MaxBatch:    maxBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// plugAndQueue occupies the single worker with a plug request (direct
// handoff: always a batch of one) and then queues reqs in order, using
// the Queued gauge to serialize the concurrent submits.
func plugAndQueue(t *testing.T, s *Server, b *recordingBackend, wg *sync.WaitGroup, reqs []proto.InferenceRequest) {
	t.Helper()
	submit := func(r proto.InferenceRequest) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), r); err != nil {
				t.Error(err)
			}
		}()
	}
	submit(req("plug", "plug", 1))
	<-b.entered // worker holds the plug batch until the test releases it
	for i, r := range reqs {
		submit(r)
		waitQueued(t, s, i+1)
	}
}

func waitQueued(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Queued() < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (at %d)", n, s.Queued())
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// drainBatches releases the gated backend until every submitted request
// has been served, consuming one entered signal per subsequent batch.
func drainBatches(t *testing.T, b *recordingBackend, wg *sync.WaitGroup, more int) {
	t.Helper()
	b.gate <- struct{}{} // release the plug
	for i := 0; i < more; i++ {
		<-b.entered
		b.gate <- struct{}{}
	}
	wg.Wait()
}

func batchReq(uid, model string, noBatch bool) proto.InferenceRequest {
	r := req(uid, uid, 1)
	r.Model = model
	r.NoBatch = noBatch
	return r
}

// TestBatchFormationGroupsByModel: a dequeue takes the head plus every
// consecutive queued request for the same model, stopping at the first
// incompatible one — and picks the remainder up as later batches.
func TestBatchFormationGroupsByModel(t *testing.T) {
	b := &recordingBackend{entered: make(chan struct{}), gate: make(chan struct{})}
	s := newBatchServer(t, b, 4)
	start(t, s)
	defer s.Stop()
	var wg sync.WaitGroup
	plugAndQueue(t, s, b, &wg, []proto.InferenceRequest{
		batchReq("r0", "a", false),
		batchReq("r1", "a", false),
		batchReq("r2", "a", false),
		batchReq("r3", "b", false),
		batchReq("r4", "a", false),
	})
	drainBatches(t, b, &wg, 3)
	want := [][]string{{"plug"}, {"r0", "r1", "r2"}, {"r3"}, {"r4"}}
	if got := b.recorded(); !reflect.DeepEqual(got, want) {
		t.Fatalf("batches = %v, want %v", got, want)
	}
	if s.Processed() != 6 {
		t.Fatalf("Processed = %d, want 6", s.Processed())
	}
}

// TestBatchFormationHonorsMaxBatch: six compatible queued requests under
// MaxBatch 4 dequeue as a batch of four, then a batch of two.
func TestBatchFormationHonorsMaxBatch(t *testing.T) {
	b := &recordingBackend{entered: make(chan struct{}), gate: make(chan struct{})}
	s := newBatchServer(t, b, 4)
	start(t, s)
	defer s.Stop()
	var wg sync.WaitGroup
	var reqs []proto.InferenceRequest
	for i := 0; i < 6; i++ {
		reqs = append(reqs, batchReq(fmt.Sprintf("r%d", i), "a", false))
	}
	plugAndQueue(t, s, b, &wg, reqs)
	drainBatches(t, b, &wg, 2)
	want := [][]string{{"plug"}, {"r0", "r1", "r2", "r3"}, {"r4", "r5"}}
	if got := b.recorded(); !reflect.DeepEqual(got, want) {
		t.Fatalf("batches = %v, want %v", got, want)
	}
}

// TestBatchFormationHonorsNoBatch: a NoBatch head dequeues alone even
// with compatible followers, and a NoBatch follower stops the extension.
func TestBatchFormationHonorsNoBatch(t *testing.T) {
	b := &recordingBackend{entered: make(chan struct{}), gate: make(chan struct{})}
	s := newBatchServer(t, b, 4)
	start(t, s)
	defer s.Stop()
	var wg sync.WaitGroup
	plugAndQueue(t, s, b, &wg, []proto.InferenceRequest{
		batchReq("n0", "a", true),
		batchReq("r1", "a", false),
		batchReq("n2", "a", true),
		batchReq("r3", "a", false),
	})
	drainBatches(t, b, &wg, 4)
	want := [][]string{{"plug"}, {"n0"}, {"r1"}, {"n2"}, {"r3"}}
	if got := b.recorded(); !reflect.DeepEqual(got, want) {
		t.Fatalf("batches = %v, want %v", got, want)
	}
}

// TestCancellationDeterministicOnVirtualClock pins the drop-box
// cancellation protocol's determinism: on an auto-advancing virtual
// clock, a plug inference occupies the single worker while ten requests
// queue behind it; half carry contexts canceled at 10ms of virtual time
// — far inside the plug's ~1s inference, so exactly those five abandon
// — and half run to completion. Counts are exact, the worker still
// executes abandoned jobs (abandonment is client-side), and two runs
// finish at the identical virtual instant.
func TestCancellationDeterministicOnVirtualClock(t *testing.T) {
	run := func() (completed, canceled int64, end time.Time) {
		clock := simtime.NewVirtualAuto(origin)
		spec, err := llm.Lookup("vit-base")
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(7)
		s, err := New(Config{
			UID:         "service.0001",
			Backend:     LLMBackend{M: llm.NewInstance(spec, clock, src.Derive("model"))},
			Clock:       clock,
			Src:         src.Derive("server"),
			Concurrency: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Start(); err != nil {
			t.Fatal(err)
		}
		var done, ctxErr atomic.Int64
		var wg sync.WaitGroup
		wg.Add(1)
		clock.Go(func() {
			defer wg.Done()
			// ~1s inference (vit-base generates ~2000 tok/s).
			wg.Add(1)
			clock.Go(func() {
				defer wg.Done()
				if _, err := s.Submit(context.Background(), req("plug", "plug", 2048)); err == nil {
					done.Add(1)
				}
			})
			clock.Sleep(time.Millisecond) // the plug is in flight now
			for i := 0; i < 10; i++ {
				r := req(fmt.Sprintf("r%d", i), "payload", 8)
				cancelable := i%2 == 1
				ctx, cancel := context.WithCancel(context.Background())
				var ret chan struct{}
				if cancelable {
					ret = make(chan struct{}, 1)
					retOut := ret
					wg.Add(1)
					clock.Go(func() {
						defer wg.Done()
						clock.Sleep(10 * time.Millisecond)
						cancel()
						// Hold the clock (registered, parked on a plain
						// channel) until the abandonment commits, so
						// virtual time cannot jump to the plug's end and
						// let the reply win the drop-box race.
						<-retOut
					})
				}
				wg.Add(1)
				clock.Go(func() {
					defer wg.Done()
					defer cancel() // idempotent; releases the non-cancelable contexts
					_, err := s.Submit(ctx, r)
					if ret != nil {
						ret <- struct{}{}
					}
					switch {
					case err == nil:
						done.Add(1)
					case errors.Is(err, context.Canceled):
						ctxErr.Add(1)
					default:
						t.Errorf("unexpected error: %v", err)
					}
				})
			}
		})
		wg.Wait()
		s.Drain() // the worker finishes the abandoned leftovers
		return done.Load(), ctxErr.Load(), clock.Now()
	}
	c1, x1, e1 := run()
	c2, x2, e2 := run()
	if c1 != 6 || x1 != 5 {
		t.Fatalf("run 1: completed=%d canceled=%d, want 6/5", c1, x1)
	}
	if c2 != c1 || x2 != x1 {
		t.Fatalf("runs disagree: %d/%d vs %d/%d", c1, x1, c2, x2)
	}
	if !e1.Equal(e2) {
		t.Fatalf("virtual end times diverge: %v vs %v", e1, e2)
	}
}

package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/states"
)

func newSession(t *testing.T, scale float64) *Session {
	t.Helper()
	s, err := NewSession(SessionConfig{
		Seed:  42,
		Clock: simtime.NewScaled(scale, DefaultOrigin),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func deltaPilotDesc() spec.PilotDescription {
	return spec.PilotDescription{Platform: "delta", Cores: 256, GPUs: 16}
}

func TestSessionDefaults(t *testing.T) {
	s, err := NewSession(SessionConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.UID() == "" || s.Clock() == nil || s.Topology() == nil || s.Network() == nil {
		t.Fatal("session accessors incomplete")
	}
	if s.Topology().Platform("frontier") == nil {
		t.Fatal("default topology missing frontier")
	}
}

func TestPilotManagerSubmitAndGet(t *testing.T) {
	s := newSession(t, 100000)
	p, err := s.PilotManager().Submit(deltaPilotDesc())
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s.PilotManager().Get(p.UID()); !ok || got != p {
		t.Fatal("Get did not return the pilot")
	}
	if len(s.PilotManager().List()) != 1 {
		t.Fatal("List size wrong")
	}
}

func TestPilotManagerUnknownPlatform(t *testing.T) {
	s := newSession(t, 100000)
	if _, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "mars", Nodes: 1}); err == nil {
		t.Fatal("accepted unknown platform")
	}
}

func TestTaskManagerNoPilots(t *testing.T) {
	s := newSession(t, 100000)
	if _, err := s.TaskManager().Submit(context.Background(), spec.TaskDescription{
		Name: "t", Cores: 1, Duration: rng.ConstDuration(time.Second),
	}); err == nil {
		t.Fatal("Submit without pilots succeeded")
	}
}

func TestEndToEndTaskExecution(t *testing.T) {
	s := newSession(t, 100000)
	p, err := s.PilotManager().Submit(deltaPilotDesc())
	if err != nil {
		t.Fatal(err)
	}
	tm := s.TaskManager()
	tm.AddPilot(p)
	descs := make([]spec.TaskDescription, 8)
	for i := range descs {
		descs[i] = spec.TaskDescription{Name: "sim", Cores: 8, Duration: rng.ConstDuration(10 * time.Second)}
	}
	tasks, err := tm.Submit(context.Background(), descs...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := tm.Wait(ctx, tasks...); err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		if task.State() != states.TaskDone {
			t.Fatalf("task %s = %s", task.UID(), task.State())
		}
	}
}

func TestEndToEndServiceInference(t *testing.T) {
	s := newSession(t, 1000)
	p, err := s.PilotManager().Submit(deltaPilotDesc())
	if err != nil {
		t.Fatal(err)
	}
	sm := s.ServiceManager()
	sm.AddPilot(p)
	inst, err := sm.Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "llm", GPUs: 1},
		Model:           "llama-8b",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sm.WaitReady(ctx, inst.UID()); err != nil {
		t.Fatal(err)
	}
	eps := sm.Endpoints("llama-8b")
	if len(eps) != 1 {
		t.Fatalf("endpoints = %d", len(eps))
	}
	client, err := s.Dial(platform.Addr("delta", "", "client.0001"), eps[0])
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	reply, rt, err := client.Infer(ctx, "hypothesize a radiation signature", 64)
	if err != nil {
		t.Fatal(err)
	}
	if reply.OutputTokens < 1 || rt.Total() <= 0 {
		t.Fatalf("reply = %+v rt = %+v", reply, rt)
	}
	if err := sm.Terminate(inst.UID(), true); err != nil {
		t.Fatal(err)
	}
}

func TestServiceManagerRoundRobinAcrossPilots(t *testing.T) {
	s := newSession(t, 100000)
	p1, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	sm := s.ServiceManager()
	sm.AddPilot(p1)
	sm.AddPilot(p2)
	a, _ := sm.Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "a", Cores: 1}, Model: "noop"})
	b, _ := sm.Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "b", Cores: 1}, Model: "noop"})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sm.WaitReady(ctx, a.UID(), b.UID()); err != nil {
		t.Fatal(err)
	}
	// one service per pilot registry
	if len(p1.Registry().All()) != 1 || len(p2.Registry().All()) != 1 {
		t.Fatalf("distribution = %d/%d, want 1/1", len(p1.Registry().All()), len(p2.Registry().All()))
	}
}

func TestRemoteEndpointRegistration(t *testing.T) {
	s := newSession(t, 100000)
	s.RegisterRemote(proto.Endpoint{ServiceUID: "r3.svc.1", Model: "llama-8b", Address: "r3/r3-node0000/svc.1", Protocol: "msgq"})
	s.RegisterRemote(proto.Endpoint{ServiceUID: "r3.svc.2", Model: "noop", Address: "r3/r3-node0000/svc.2", Protocol: "msgq"})
	if got := len(s.RemoteEndpoints("")); got != 2 {
		t.Fatalf("all remotes = %d", got)
	}
	if got := len(s.RemoteEndpoints("llama-8b")); got != 1 {
		t.Fatalf("llama remotes = %d", got)
	}
	// merged discovery through the ServiceManager
	if got := len(s.ServiceManager().Endpoints("llama-8b")); got != 1 {
		t.Fatalf("merged endpoints = %d", got)
	}
}

func TestUpdaterPublishesStateTransitions(t *testing.T) {
	s := newSession(t, 100000)
	sub, err := s.SubscribeUpdates(256, "task")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	p, err := s.PilotManager().Submit(deltaPilotDesc())
	if err != nil {
		t.Fatal(err)
	}
	tm := s.TaskManager()
	tm.AddPilot(p)
	tasks, _ := tm.Submit(context.Background(), spec.TaskDescription{
		Name: "watched", Cores: 1, Duration: rng.ConstDuration(time.Second),
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := tm.Wait(ctx, tasks...); err != nil {
		t.Fatal(err)
	}
	sawDone := false
	deadline := time.After(5 * time.Second)
	for !sawDone {
		select {
		case env := <-sub.C:
			var up proto.StateUpdate
			if err := env.Decode(proto.KindStateUpdate, &up); err != nil {
				t.Fatal(err)
			}
			if up.EntityUID == tasks[0].UID() && up.State == string(states.TaskDone) {
				sawDone = true
			}
		case <-deadline:
			t.Fatal("never observed DONE on the update channel")
		}
	}
}

func TestSessionCloseShutsPilots(t *testing.T) {
	s := newSession(t, 100000)
	p, err := s.PilotManager().Submit(deltaPilotDesc())
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if p.State() != states.PilotDone {
		t.Fatalf("pilot state after session close = %s", p.State())
	}
}

func TestSessionProfileRecordsTaskLifecycle(t *testing.T) {
	s := newSession(t, 100000)
	p, err := s.PilotManager().Submit(deltaPilotDesc())
	if err != nil {
		t.Fatal(err)
	}
	tm := s.TaskManager()
	tm.AddPilot(p)
	tasks, err := tm.Submit(context.Background(), spec.TaskDescription{
		Name: "profiled", Cores: 1, Duration: rng.ConstDuration(7 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := tm.Wait(ctx, tasks...); err != nil {
		t.Fatal(err)
	}
	prof := s.Profile()
	if prof.Len() == 0 {
		t.Fatal("profile recorded nothing")
	}
	ds := prof.Durations("task", states.TaskExecuting, states.TaskStagingOutput)
	found := false
	for _, d := range ds {
		if d >= 7*time.Second {
			found = true
		}
	}
	if !found {
		t.Fatalf("no execution span ≥ 7s in profile: %v", ds)
	}
}

// TestPolicySelectionThreadsToPilots pins the end-to-end policy seam:
// a session-level SchedPolicy reaches every pilot's agent scheduler, a
// bad name fails session construction, and the default stays strict.
func TestPolicySelectionThreadsToPilots(t *testing.T) {
	s, err := NewSession(SessionConfig{
		Seed:        42,
		Clock:       simtime.NewScaled(100000, DefaultOrigin),
		SchedPolicy: "backfill",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p, err := s.PilotManager().Submit(deltaPilotDesc())
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Scheduler().Policy().Name(); got != "backfill" {
		t.Fatalf("pilot scheduler policy = %q, want backfill", got)
	}

	def := newSession(t, 100000)
	dp, err := def.PilotManager().Submit(deltaPilotDesc())
	if err != nil {
		t.Fatal(err)
	}
	if got := dp.Scheduler().Policy().Name(); got != "strict" {
		t.Fatalf("default pilot scheduler policy = %q, want strict", got)
	}

	if _, err := NewSession(SessionConfig{Seed: 1, SchedPolicy: "round-robin"}); err == nil {
		t.Fatal("NewSession accepted an unknown scheduling policy")
	}
}

// TestPolicyBackfillKeepsTasksFlowingEndToEnd drives the whole stack:
// on a backfill session, small compute tasks complete while an oversized
// high-priority blocker still sits unplaced at the scheduler head — on a
// strict session they would be stuck behind it. The blocked head is held
// blocked by hour-long holder tasks, so the discriminating assertion is
// that the smalls are DONE while the blocker has not even started. The
// policy name pins generous explicit bounds (k=64, time bound off) so the
// assertion cannot race the default starvation limits on a compressed
// clock.
func TestPolicyBackfillKeepsTasksFlowingEndToEnd(t *testing.T) {
	s, err := NewSession(SessionConfig{
		Seed:        7,
		Clock:       simtime.NewScaled(100000, DefaultOrigin),
		SchedPolicy: "backfill:k=64,t=-1",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p, err := s.PilotManager().Submit(deltaPilotDesc())
	if err != nil {
		t.Fatal(err)
	}
	tm := s.TaskManager()
	tm.AddPilot(p)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Tasks run through the scheduler asynchronously, so sequence on
	// observed task states rather than submission order.
	waitState := func(task *Task, want states.State) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for task.State() != want {
			if time.Now().After(deadline) {
				t.Fatalf("task %s stuck in %s, want %s", task.UID(), task.State(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Saturate one node dimension so the blocker cannot be granted: the
	// pilot has 4×64 cores; hold 60 of node capacity per node via tasks,
	// then submit a 64-core high-priority blocker that fits no node now.
	holders, err := tm.Submit(ctx,
		spec.TaskDescription{Name: "hold-0", Cores: 60, Duration: rng.ConstDuration(time.Hour)},
		spec.TaskDescription{Name: "hold-1", Cores: 60, Duration: rng.ConstDuration(time.Hour)},
		spec.TaskDescription{Name: "hold-2", Cores: 60, Duration: rng.ConstDuration(time.Hour)},
		spec.TaskDescription{Name: "hold-3", Cores: 60, Duration: rng.ConstDuration(time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range holders {
		waitState(h, states.TaskExecuting)
	}
	blockers, err := tm.Submit(ctx, spec.TaskDescription{
		Name: "blocker", Cores: 64, Priority: spec.ServicePriority,
		Duration: rng.ConstDuration(time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The blocker must be sitting in the scheduler's wait pool before the
	// smalls are submitted, or there is no head to bypass.
	waitState(blockers[0], states.TaskScheduling)
	smalls, err := tm.Submit(ctx,
		spec.TaskDescription{Name: "small-0", Cores: 2, Duration: rng.ConstDuration(2 * time.Second)},
		spec.TaskDescription{Name: "small-1", Cores: 2, Duration: rng.ConstDuration(2 * time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tm.Wait(ctx, smalls...); err != nil {
		t.Fatalf("small tasks did not complete behind the blocked head: %v", err)
	}
	for _, task := range smalls {
		if task.State() != states.TaskDone {
			t.Fatalf("task %s = %s", task.UID(), task.State())
		}
	}
	// The discriminator: the blocker must still be waiting for placement
	// (the holders run for a simulated hour). Under strict scheduling the
	// smalls could only have completed after it.
	if st := blockers[0].State(); st == states.TaskDone || st == states.TaskExecuting {
		t.Fatalf("blocker state = %s while smalls finished; backfill did not bypass it", st)
	}
}

// TestHeteroPilotBestFitEndToEnd drives node heterogeneity through the
// whole stack: a session on a mixed-shape platform acquires one pilot
// spanning both shapes, and the pilot's best-fit scheduler packs small
// CPU tasks onto the thin partition so large GPU tasks still fit the
// fat one — while a strict (first-fit) twin session fragments the fat
// partition with the same workload and wedges the second large task.
func TestHeteroPilotBestFitEndToEnd(t *testing.T) {
	fat := platform.NodeSpec{Cores: 64, GPUs: 8, MemGB: 256}
	thin := platform.NodeSpec{Cores: 16, GPUs: 0, MemGB: 64}
	// ≈36s real at the test scale: far past the assertion window even on
	// a loaded -race/-shuffle CI run, so the holders can never complete
	// and free capacity mid-test (the leaked sleeps die with the binary)
	hold := rng.ConstDuration(1000 * time.Hour)

	waitState := func(task *Task, want states.State) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for task.State() != want {
			if time.Now().After(deadline) {
				t.Fatalf("task %s stuck in %s, want %s", task.UID(), task.State(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// run returns the two large tasks after the 8 small tasks are running.
	run := func(pol string) (*Session, []*Task) {
		mix := platform.NewMixed("campus", []platform.NodeGroup{
			{Count: 2, Spec: fat}, {Count: 4, Spec: thin},
		})
		s, err := NewSession(SessionConfig{
			Seed:        5,
			Clock:       simtime.NewScaled(100000, DefaultOrigin),
			Topology:    platform.NewTopology(mix),
			FastBoot:    true,
			SchedPolicy: pol,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		p, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "campus", Nodes: 6})
		if err != nil {
			t.Fatal(err)
		}
		if shapes := p.Shapes(); len(shapes) != 2 || shapes[0].Spec != fat || shapes[1].Spec != thin {
			t.Fatalf("pilot shapes = %+v, want fat + thin", shapes)
		}
		tm := s.TaskManager()
		tm.AddPilot(p)
		ctx := context.Background()
		var descs []spec.TaskDescription
		for i := 0; i < 8; i++ { // 8×8 cores: exactly the thin partition's capacity
			descs = append(descs, spec.TaskDescription{Name: "small", Cores: 8, Duration: hold})
		}
		smalls, err := tm.Submit(ctx, descs...)
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range smalls {
			waitState(task, states.TaskExecuting)
		}
		larges, err := tm.Submit(ctx,
			spec.TaskDescription{Name: "large-0", Cores: 64, GPUs: 8, Duration: hold},
			spec.TaskDescription{Name: "large-1", Cores: 64, GPUs: 8, Duration: hold})
		if err != nil {
			t.Fatal(err)
		}
		return s, larges
	}

	// best-fit: smalls packed onto thin nodes, both fat nodes stay whole
	_, larges := run("best-fit")
	waitState(larges[0], states.TaskExecuting)
	waitState(larges[1], states.TaskExecuting)

	// strict/first-fit control: the smalls fragment fat node 0, so only
	// one large can run and the other stays stuck in scheduling. The two
	// larges race each other to the scheduler (per-task goroutines), so
	// which one wins is not deterministic — only that exactly one does.
	_, larges = run("strict")
	var stuck *Task
	deadline := time.Now().Add(10 * time.Second)
	for stuck == nil {
		switch {
		case larges[0].State() == states.TaskExecuting:
			stuck = larges[1]
		case larges[1].State() == states.TaskExecuting:
			stuck = larges[0]
		case time.Now().After(deadline):
			t.Fatalf("no large task started under strict (states %s/%s)",
				larges[0].State(), larges[1].State())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	time.Sleep(150 * time.Millisecond)
	if st := stuck.State(); st != states.TaskScheduling {
		t.Fatalf("second large = %s under strict, want stuck in %s (fat partition fragmented)",
			st, states.TaskScheduling)
	}
}

func TestSessionDeterministicUID(t *testing.T) {
	a, _ := NewSession(SessionConfig{Seed: 9, Clock: simtime.NewScaled(1000, DefaultOrigin)})
	defer a.Close()
	b, _ := NewSession(SessionConfig{Seed: 9, Clock: simtime.NewScaled(1000, DefaultOrigin)})
	defer b.Close()
	if a.UID() != b.UID() {
		t.Fatal("same seed produced different session UIDs")
	}
}

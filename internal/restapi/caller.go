package restapi

import (
	"context"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/service"
	"repro/internal/simtime"
)

// Caller adapts the REST client to the service.Caller interface, so
// remote REST-exposed model instances (the R3 deployment) are
// interchangeable with msgq-connected local services from the client
// task's perspective.
type Caller struct {
	ep     proto.Endpoint
	client *Client
	clock  simtime.Clock

	seq uint64
}

var _ service.Caller = (*Caller)(nil)

// NewCaller builds a Caller for a REST endpoint (ep.Address is the base
// URL, ep.Protocol must be "rest").
func NewCaller(ep proto.Endpoint, clock simtime.Clock) (*Caller, error) {
	if ep.Protocol != "rest" {
		return nil, fmt.Errorf("restapi: endpoint %s has protocol %q, want rest", ep.ServiceUID, ep.Protocol)
	}
	return &Caller{ep: ep, client: NewClient(ep.Address), clock: clock}, nil
}

// Endpoint returns the wrapped endpoint.
func (c *Caller) Endpoint() proto.Endpoint { return c.ep }

// Infer implements service.Caller over HTTP.
func (c *Caller) Infer(ctx context.Context, prompt string, maxTokens int) (proto.InferenceReply, metrics.Breakdown, error) {
	c.seq++
	start := c.clock.Now()
	resp, err := c.client.Generate(ctx, GenerateRequest{
		Model:     c.ep.Model,
		Prompt:    prompt,
		MaxTokens: maxTokens,
		RequestID: fmt.Sprintf("%s.rest.%06d", c.ep.ServiceUID, c.seq),
	})
	total := c.clock.Now().Sub(start)
	if err != nil {
		return proto.InferenceReply{}, metrics.Breakdown{}, err
	}
	reply := proto.InferenceReply{
		RequestUID:   fmt.Sprintf("%s.rest.%06d", c.ep.ServiceUID, c.seq),
		ServiceUID:   resp.ServiceUID,
		Model:        resp.Model,
		Text:         resp.Response,
		PromptTokens: resp.PromptTokens,
		OutputTokens: resp.OutputTokens,
		Timing:       resp.Timing,
	}
	return reply, service.DecomposeRT(total, resp.Timing), nil
}

// Close implements service.Caller (HTTP clients hold no persistent
// state).
func (c *Caller) Close() error { return nil }

package workflow

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/spec"
)

func newRunner(t *testing.T) (*Runner, *core.Session) {
	return newRunnerScale(t, 100000)
}

func newRunnerScale(t *testing.T, scale float64) (*Runner, *core.Session) {
	t.Helper()
	sess, err := core.NewSession(core.SessionConfig{
		Seed:  5,
		Clock: simtime.NewScaled(scale, core.DefaultOrigin),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sess.Close)
	p, err := sess.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Cores: 256, GPUs: 16})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(sess, p)
	if err != nil {
		t.Fatal(err)
	}
	return r, sess
}

func simTask(name string, d time.Duration) spec.TaskDescription {
	return spec.TaskDescription{Name: name, Cores: 1, Duration: rng.ConstDuration(d)}
}

func TestValidateDuplicateStage(t *testing.T) {
	p := &Pipeline{Name: "p", Stages: []*Stage{{Name: "a"}, {Name: "a"}}}
	if err := p.Validate(); err == nil {
		t.Fatal("accepted duplicate stage names")
	}
}

func TestValidateUnknownDependency(t *testing.T) {
	p := &Pipeline{Name: "p", Stages: []*Stage{{Name: "a", After: []string{"ghost"}}}}
	if err := p.Validate(); err == nil {
		t.Fatal("accepted unknown dependency")
	}
}

func TestValidateCycle(t *testing.T) {
	p := &Pipeline{Name: "p", Stages: []*Stage{
		{Name: "a", After: []string{"b"}},
		{Name: "b", After: []string{"a"}},
	}}
	if err := p.Validate(); err == nil {
		t.Fatal("accepted cycle")
	}
}

func TestValidateUnnamed(t *testing.T) {
	if err := (&Pipeline{}).Validate(); err == nil {
		t.Fatal("accepted unnamed pipeline")
	}
	if err := (&Pipeline{Name: "p", Stages: []*Stage{{}}}).Validate(); err == nil {
		t.Fatal("accepted unnamed stage")
	}
}

func TestLinearPipelineOrdering(t *testing.T) {
	r, _ := newRunner(t)
	var order []string
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	mark := func(name string) Hook {
		return func(ctx context.Context, sess *core.Session) error {
			<-mu
			order = append(order, name)
			mu <- struct{}{}
			return nil
		}
	}
	p := &Pipeline{Name: "linear", Stages: []*Stage{
		{Name: "s1", Tasks: []spec.TaskDescription{simTask("t1", time.Second)}, Post: mark("s1")},
		{Name: "s2", After: []string{"s1"}, Tasks: []spec.TaskDescription{simTask("t2", time.Second)}, Post: mark("s2")},
		{Name: "s3", After: []string{"s2"}, Post: mark("s3")},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := r.Run(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "s1" || order[1] != "s2" || order[2] != "s3" {
		t.Fatalf("order = %v", order)
	}
	if len(rep.Stages) != 3 {
		t.Fatalf("stage reports = %d", len(rep.Stages))
	}
	if s1, ok := rep.StageReport("s1"); !ok || s1.Tasks != 1 {
		t.Fatalf("s1 report = %+v", s1)
	}
}

func TestIndependentStagesRunConcurrently(t *testing.T) {
	// Two independent stages with 60s tasks: pipeline wall time on the sim
	// clock must be well under the ~120s a serial execution would need.
	// Moderate scale keeps real orchestration overhead (~ms) from
	// inflating into significant simulated time.
	r, sess := newRunnerScale(t, 1000)
	p := &Pipeline{Name: "par", Stages: []*Stage{
		{Name: "a", Tasks: []spec.TaskDescription{simTask("ta", 60*time.Second)}},
		{Name: "b", Tasks: []spec.TaskDescription{simTask("tb", 60*time.Second)}},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	rep, err := r.Run(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	_ = sess
	if d := rep.Duration(); d > 100*time.Second {
		t.Fatalf("independent stages took %v sim, want ≈ parallel (<100s)", d)
	}
}

func TestFailurePropagatesToDependents(t *testing.T) {
	r, _ := newRunner(t)
	boom := errors.New("boom")
	var ranC atomic.Bool
	p := &Pipeline{Name: "fail", Stages: []*Stage{
		{Name: "a", Tasks: []spec.TaskDescription{{
			Name: "bad", Cores: 1, Func: func(ctx context.Context) error { return boom },
		}}},
		{Name: "b", After: []string{"a"}, Post: func(ctx context.Context, s *core.Session) error {
			t.Error("dependent stage ran despite failed dependency")
			return nil
		}},
		{Name: "c", Post: func(ctx context.Context, s *core.Session) error {
			ranC.Store(true)
			return nil
		}},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	_, err := r.Run(ctx, p)
	if err == nil {
		t.Fatal("pipeline reported success despite failure")
	}
	if !ranC.Load() {
		t.Fatal("independent branch did not run")
	}
}

func TestStageWithServices(t *testing.T) {
	r, sess := newRunner(t)
	var sawEndpoint atomic.Bool
	p := &Pipeline{Name: "svc", Stages: []*Stage{
		{
			Name: "serve",
			Services: []spec.ServiceDescription{{
				TaskDescription: spec.TaskDescription{Name: "noop-svc", Cores: 1},
				Model:           "noop",
			}},
			Post: func(ctx context.Context, s *core.Session) error {
				if len(s.ServiceManager().Endpoints("noop")) == 1 {
					sawEndpoint.Store(true)
				}
				return nil
			},
		},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := r.Run(ctx, p); err != nil {
		t.Fatal(err)
	}
	if !sawEndpoint.Load() {
		t.Fatal("service endpoint not visible during stage")
	}
	// non-persistent services are terminated at pipeline end
	if got := len(sess.ServiceManager().Endpoints("noop")); got != 0 {
		t.Fatalf("%d endpoints left after pipeline end", got)
	}
}

func TestKeepServicesSurvivePipeline(t *testing.T) {
	r, sess := newRunner(t)
	p := &Pipeline{Name: "keep", Stages: []*Stage{
		{
			Name:         "serve",
			KeepServices: true,
			Services: []spec.ServiceDescription{{
				TaskDescription: spec.TaskDescription{Name: "kept", Cores: 1},
				Model:           "noop",
			}},
		},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := r.Run(ctx, p); err != nil {
		t.Fatal(err)
	}
	eps := sess.ServiceManager().Endpoints("noop")
	if len(eps) != 1 {
		t.Fatalf("kept service endpoints = %d, want 1", len(eps))
	}
	// a second pipeline can consume the kept service without starting one
	consume := &Pipeline{Name: "consume", Stages: []*Stage{
		{Name: "use", Post: func(ctx context.Context, s *core.Session) error {
			cl, err := s.Dial("delta//keeper-client", eps[0])
			if err != nil {
				return err
			}
			defer cl.Close()
			_, _, err = cl.Infer(ctx, "ping", 0)
			return err
		}},
	}}
	if _, err := r.Run(ctx, consume); err != nil {
		t.Fatal(err)
	}
}

func TestPreHookGate(t *testing.T) {
	r, _ := newRunner(t)
	gateErr := errors.New("gate closed")
	p := &Pipeline{Name: "gated", Stages: []*Stage{
		{Name: "a", Pre: func(ctx context.Context, s *core.Session) error { return gateErr }},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := r.Run(ctx, p)
	if !errors.Is(err, gateErr) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunnerValidation(t *testing.T) {
	if _, err := NewRunner(nil); err == nil {
		t.Fatal("NewRunner accepted nil session")
	}
}

func TestDiamondDependency(t *testing.T) {
	r, _ := newRunner(t)
	var joined atomic.Int32
	p := &Pipeline{Name: "diamond", Stages: []*Stage{
		{Name: "root"},
		{Name: "left", After: []string{"root"}, Tasks: []spec.TaskDescription{simTask("l", time.Second)}},
		{Name: "right", After: []string{"root"}, Tasks: []spec.TaskDescription{simTask("r", time.Second)}},
		{Name: "join", After: []string{"left", "right"}, Post: func(ctx context.Context, s *core.Session) error {
			joined.Add(1)
			return nil
		}},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := r.Run(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if joined.Load() != 1 {
		t.Fatal("join stage did not run exactly once")
	}
	// join must start after both branches finished
	l, _ := rep.StageReport("left")
	rt, _ := rep.StageReport("right")
	j, _ := rep.StageReport("join")
	if j.Started.Before(l.Finished) || j.Started.Before(rt.Finished) {
		t.Fatal("join started before branches finished")
	}
}

// TestStagePilotRoutingHint pins the workflow-level routing hint: a
// stage naming a pilot sends every one of its tasks there, bypassing the
// session router, while an unhinted stage follows the router's choice.
func TestStagePilotRoutingHint(t *testing.T) {
	sess, err := core.NewSession(core.SessionConfig{
		Seed:  5,
		Clock: simtime.NewScaled(100000, core.DefaultOrigin),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sess.Close)
	p1, err := sess.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := sess.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(sess, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	pl := &Pipeline{Name: "hinted", Stages: []*Stage{{
		Name:  "pinned",
		Pilot: p2.UID(),
		Tasks: []spec.TaskDescription{
			simTask("a", time.Second), simTask("b", time.Second), simTask("c", time.Second),
		},
	}}}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := r.Run(ctx, pl); err != nil {
		t.Fatal(err)
	}
	for _, task := range sess.TaskManager().Tasks() {
		if task.Pilot() != p2.UID() {
			t.Fatalf("task %s ran on %s, want hinted pilot %s", task.UID(), task.Pilot(), p2.UID())
		}
	}
	// The hint must not mutate the caller's stage descriptions.
	for _, d := range pl.Stages[0].Tasks {
		if d.Pilot != "" {
			t.Fatalf("stage description mutated: Pilot = %q", d.Pilot)
		}
	}
}

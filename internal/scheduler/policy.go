package scheduler

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/platform"
)

// Policy names accepted by PolicyByName. The default ("", PolicyStrict)
// preserves the seed semantics the equivalence suite pins.
const (
	// PolicyStrict is strict-priority FIFO with head-of-line blocking: a
	// blocked head is never bypassed, so services cannot be starved by a
	// stream of small tasks (§III readiness over utilization).
	PolicyStrict = "strict"
	// PolicyBackfill grants the highest-priority *fitting* request when
	// the head is blocked, bounded by a starvation limit (at most K
	// bypasses or T of scheduler-clock time per blocked head).
	PolicyBackfill = "backfill"
	// PolicyBestFit is PolicyBackfill with best-fit node selection: every
	// placement picks the fitting node with the least leftover capacity,
	// minimizing fragmentation on heterogeneous node pools.
	PolicyBestFit = "best-fit"
)

// Policy decides, one grant at a time, which waiting request the
// scheduler places next and on which node. Grant is called with the
// scheduler lock held, from the scheduler goroutine only; implementations
// may keep per-scheduler state across calls (the backfill policies track
// how often the current head has been bypassed) but must not block or
// call back into the Scheduler. A Policy instance must not be shared
// between schedulers — construct a fresh one per Scheduler.
type Policy interface {
	// Name returns the policy identifier (one of the Policy* constants
	// for the built-in policies).
	Name() string
	// Grant selects the next grant from the wait pool exposed by p: it
	// returns the pool position of the chosen request together with a live
	// allocation for it, or a nil allocation when nothing may be granted
	// now (the scheduler then waits for the next submit or release).
	Grant(p *Pool) (pos int, alloc *platform.Allocation)
}

// Pool is a Policy's window into the scheduler during one Grant call: the
// wait pool, the capacity index and the scheduler clock. It is only valid
// for the duration of that call.
//
// Pool positions index the wait pool's backing array. Position 0 is the
// head — the request strict priority order would grant next; the
// remaining positions hold the other waiting requests in no particular
// order (binary-heap layout), so order-sensitive policies must compare
// positions with Before rather than assume sortedness.
type Pool struct{ s *Scheduler }

// Len returns the number of waiting requests.
func (p *Pool) Len() int { return p.s.waiting.len() }

// Request returns the waiting request at position i.
func (p *Pool) Request(i int) Request { return p.s.waiting.items[i].req }

// Seq returns the submission sequence number of the request at position
// i. Sequence numbers are unique and increase in submission order, so
// they identify a particular head across Grant calls.
func (p *Pool) Seq(i int) uint64 { return p.s.waiting.items[i].seq }

// Before reports whether position i precedes position j in strict
// (priority descending, submission order ascending) terms.
func (p *Pool) Before(i, j int) bool { return p.s.waiting.less(i, j) }

// Fits reports whether some node's current free capacity covers the
// request at position i, without allocating. Like placement itself it
// re-syncs the capacity index when an out-of-band release is detected.
func (p *Pool) Fits(i int) bool { return p.s.fits(p.s.waiting.items[i].req) }

// FirstFit returns the position of the request that strict (priority
// desc, submission asc) order ranks first among the non-head requests
// whose demand currently fits free capacity, or -1 when none does — the
// backfill policies' bypass query. It walks the wait pool's per-priority
// bucket index in strict order and stops at the first fit, so a grant
// near the front of a deep pool no longer pays a capacity probe per
// waiting request.
func (p *Pool) FirstFit() int {
	return p.s.waiting.firstFit(func(i int) bool { return p.s.fits(p.s.waiting.items[i].req) })
}

// Place attempts first-fit placement (lowest fitting node index) of the
// request at position i, returning nil when no node currently fits it.
func (p *Pool) Place(i int) *platform.Allocation {
	return p.s.tryPlace(p.s.waiting.items[i].req, false)
}

// PlaceBestFit places the request at position i on the fitting node with
// the least leftover capacity instead of the lowest index, returning nil
// when no node fits. The query runs on the capacity index's min-leftover
// augmentation — O(log nodes) on pools with near-uniform residuals,
// degrading toward the exhaustive fitting-node scan only when leftover
// scores are highly diverse — so fragmentation avoidance on
// heterogeneous pools no longer carries a per-grant cost premium.
func (p *Pool) PlaceBestFit(i int) *platform.Allocation {
	return p.s.tryPlace(p.s.waiting.items[i].req, true)
}

// Now returns the scheduler clock's current time. Schedulers created
// without WithClock read the wall clock.
func (p *Pool) Now() time.Time { return p.s.clock.Now() }

// PolicyByName returns a fresh instance of the named built-in policy.
// The empty name selects PolicyStrict. The backfill policies accept
// optional starvation-bound parameters after a colon —
// "backfill:k=32,t=2m" or "best-fit:k=-1,t=-1" — where k is
// BackfillConfig.MaxBypass (an integer, -1 disables the count bound) and
// t is BackfillConfig.MaxDelay (a Go duration, -1 disables the time
// bound); omitted parameters keep their defaults. This is the config
// surface of every name-threaded selection point (session, pilot,
// platform, CLI flags).
func PolicyByName(name string) (Policy, error) {
	base, params, hasParams := strings.Cut(name, ":")
	var cfg BackfillConfig
	if hasParams {
		var err error
		if cfg, err = parseBackfillParams(params); err != nil {
			return nil, fmt.Errorf("scheduler: policy %q: %w", name, err)
		}
	}
	switch base {
	case "", PolicyStrict, "fifo":
		if hasParams {
			return nil, fmt.Errorf("scheduler: policy %q: strict takes no parameters", name)
		}
		return Strict(), nil
	case PolicyBackfill:
		return Backfill(cfg), nil
	case PolicyBestFit, "bestfit", "best_fit":
		return BestFit(cfg), nil
	default:
		return nil, fmt.Errorf("scheduler: unknown policy %q (want %s|%s[:k=N,t=D]|%s[:k=N,t=D])",
			name, PolicyStrict, PolicyBackfill, PolicyBestFit)
	}
}

// parseBackfillParams parses the "k=N,t=D" suffix of a backfill policy
// name into a BackfillConfig.
func parseBackfillParams(params string) (BackfillConfig, error) {
	var cfg BackfillConfig
	for _, kv := range strings.Split(params, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok || val == "" {
			return cfg, fmt.Errorf("malformed parameter %q (want k=N or t=D)", kv)
		}
		switch key {
		case "k":
			n, err := strconv.Atoi(val)
			if err != nil {
				return cfg, fmt.Errorf("k=%q is not an integer", val)
			}
			cfg.MaxBypass = n
		case "t":
			if val == "-1" {
				cfg.MaxDelay = -1
				break
			}
			d, err := time.ParseDuration(val)
			if err != nil {
				return cfg, fmt.Errorf("t=%q is not a duration", val)
			}
			cfg.MaxDelay = d
		default:
			return cfg, fmt.Errorf("unknown parameter %q (want k or t)", key)
		}
	}
	return cfg, nil
}

// --- strict ------------------------------------------------------------------

type strictPolicy struct{}

// Strict returns the default policy: strict priority order, first-fit
// placement, no backfill. Its grant sequence is pinned byte-for-byte to
// the seed scheduler by TestIndexedPlacementMatchesSeedFirstFit.
func Strict() Policy { return strictPolicy{} }

// Name implements Policy.
func (strictPolicy) Name() string { return PolicyStrict }

// Grant implements Policy: place the head or nothing.
func (strictPolicy) Grant(p *Pool) (int, *platform.Allocation) {
	if p.Len() == 0 {
		return 0, nil
	}
	return 0, p.Place(0)
}

// --- backfill ----------------------------------------------------------------

// Starvation-bound defaults for the backfill policies.
const (
	// DefaultMaxBypass is the default K: how many times one blocked head
	// may be overtaken before backfill suspends.
	DefaultMaxBypass = 16
	// DefaultMaxDelay is the default T: how long (scheduler-clock time) a
	// head may stay blocked while being overtaken before backfill
	// suspends.
	DefaultMaxDelay = 30 * time.Second
)

// BackfillConfig bounds how far the backfill policies may starve a
// blocked head. Once either bound trips, the policy degenerates to strict
// behaviour until that head is granted, so a blocked service's wait is
// bounded by K small-task grants or T seconds — the §III readiness
// guarantee survives backfill.
type BackfillConfig struct {
	// MaxBypass is K, the bypass-count bound per blocked head. Zero
	// selects DefaultMaxBypass; negative disables the count bound.
	MaxBypass int
	// MaxDelay is T, the blocked-duration bound per head, measured on the
	// scheduler clock. Zero selects DefaultMaxDelay; negative disables
	// the time bound.
	MaxDelay time.Duration
}

func (c BackfillConfig) resolved() BackfillConfig {
	if c.MaxBypass == 0 {
		c.MaxBypass = DefaultMaxBypass
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = DefaultMaxDelay
	}
	return c
}

// backfillPolicy implements capacity-aware backfill: when the head does
// not fit, grant the highest-priority fitting request instead, within the
// starvation bound. bestFit switches node selection from first-fit to
// least-leftover for every placement.
type backfillPolicy struct {
	cfg     BackfillConfig
	bestFit bool

	// heads carries the starvation accounting per request (keyed by
	// submission seq) for every request that has been observed blocked at
	// the pool head. Keying by request — not by "whoever sits at position
	// 0 right now" — makes the K/T bound stick across head churn: a
	// blocked request temporarily displaced by a higher-priority arrival
	// returns to the head with its spent bypass budget, not a fresh one.
	// Entries are dropped when their request is granted, so the map is
	// bounded by the number of waiting once-blocked requests.
	heads map[uint64]*headState
}

// headState is one blocked request's starvation accounting.
type headState struct {
	bypasses     int
	blockedSince time.Time
}

// Backfill returns a capacity-aware backfill policy: strict priority
// order first, but a blocked head is bypassed by the highest-priority
// request that fits the currently free capacity, at most cfg.MaxBypass
// times or for cfg.MaxDelay of scheduler-clock time per head.
func Backfill(cfg BackfillConfig) Policy {
	return &backfillPolicy{cfg: cfg.resolved(), heads: make(map[uint64]*headState)}
}

// BestFit returns the backfill policy with best-fit node selection: every
// placement (head or backfill) picks the fitting node with the least
// leftover capacity, keeping large nodes free for large requests on
// heterogeneous pools.
func BestFit(cfg BackfillConfig) Policy {
	return &backfillPolicy{cfg: cfg.resolved(), bestFit: true, heads: make(map[uint64]*headState)}
}

// Name implements Policy.
func (b *backfillPolicy) Name() string {
	if b.bestFit {
		return PolicyBestFit
	}
	return PolicyBackfill
}

func (b *backfillPolicy) place(p *Pool, i int) *platform.Allocation {
	if b.bestFit {
		return p.PlaceBestFit(i)
	}
	return p.Place(i)
}

// Grant implements Policy.
func (b *backfillPolicy) Grant(p *Pool) (int, *platform.Allocation) {
	if p.Len() == 0 {
		return 0, nil
	}
	if alloc := b.place(p, 0); alloc != nil {
		delete(b.heads, p.Seq(0)) // head granted: drop its accounting
		return 0, alloc
	}

	// The head is blocked. Arm its starvation accounting on the first
	// sighting; a request already seen blocked keeps its spent budget.
	hs := b.heads[p.Seq(0)]
	if hs == nil {
		hs = &headState{blockedSince: p.Now()}
		b.heads[p.Seq(0)] = hs
	}
	if b.cfg.MaxBypass > 0 && hs.bypasses >= b.cfg.MaxBypass {
		return 0, nil // bound tripped: strict until this head is granted
	}
	if b.cfg.MaxDelay > 0 && p.Now().Sub(hs.blockedSince) >= b.cfg.MaxDelay {
		return 0, nil
	}

	// Backfill scan: the highest-priority fitting request among the rest.
	// FirstFit walks the pool's per-priority bucket index in strict order
	// and stops at its first fit — sublinear when a fitting request ranks
	// early, instead of the pre-index O(waiting · log nodes) argmin.
	best := p.FirstFit()
	if best < 0 {
		return 0, nil
	}
	alloc := b.place(p, best)
	if alloc == nil {
		// Fits raced a stale index leaf; the placement attempt refreshed
		// it. Treat as blocked rather than rescanning — the next kick
		// retries with corrected counters.
		return 0, nil
	}
	hs.bypasses++
	delete(b.heads, p.Seq(best)) // the backfilled request may have head history
	return best, alloc
}

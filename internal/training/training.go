// Package training models distributed data-parallel training — the
// "distributed online model training (e.g., PyTorch FSDP)" the paper
// names as the next service capability to integrate (§III). It provides a
// calibrated performance model of sharded data-parallel fine-tuning:
// per-step compute derived from model size and accelerator throughput,
// plus a communication term for gradient/parameter collectives that grows
// with the participant count, following the standard ring/tree-collective
// cost model.
//
// The Cell Painting pipeline uses this model to size its ViT fine-tuning
// trials; the training service benchmark uses it to extrapolate scaling.
package training

import (
	"fmt"
	"time"

	"repro/internal/rng"
)

// Config describes one fine-tuning job.
type Config struct {
	// ParamsB is the model size in billions of parameters.
	ParamsB float64
	// DatasetSamples is the number of training samples per epoch.
	DatasetSamples int
	// GlobalBatch is the global batch size (split across GPUs).
	GlobalBatch int
	// Epochs is the number of passes over the dataset.
	Epochs int
	// GPUs is the data-parallel width.
	GPUs int
	// TokensPerSample is the sequence length (LLM tokens, or ViT patches;
	// default 512). Per-sample training compute is ~6 FLOPs × params ×
	// tokens (forward+backward).
	TokensPerSample int
	// GPUTeraFLOPS is the sustained per-GPU throughput (default 150, an
	// A100-class mixed-precision figure).
	GPUTeraFLOPS float64
	// InterconnectGBps is the per-link collective bandwidth (default 100,
	// NVLink/Slingshot class).
	InterconnectGBps float64
	// Jitter is the relative std applied when sampling durations.
	Jitter float64
}

func (c *Config) defaults() error {
	if c.ParamsB <= 0 || c.DatasetSamples <= 0 || c.GlobalBatch <= 0 || c.Epochs <= 0 || c.GPUs <= 0 {
		return fmt.Errorf("training: incomplete config %+v", *c)
	}
	if c.TokensPerSample <= 0 {
		c.TokensPerSample = 512
	}
	if c.GPUTeraFLOPS <= 0 {
		c.GPUTeraFLOPS = 150
	}
	if c.InterconnectGBps <= 0 {
		c.InterconnectGBps = 100
	}
	return nil
}

// StepsPerEpoch returns ceil(samples / global batch).
func (c Config) StepsPerEpoch() int {
	return (c.DatasetSamples + c.GlobalBatch - 1) / c.GlobalBatch
}

// computeTime is the per-step forward+backward compute on one GPU's shard
// of the batch: ~6 FLOPs per parameter per token (fwd+bwd), split across
// GPUs. Defaults are applied defensively so direct calls are safe.
func (c Config) computeTime() time.Duration {
	if c.TokensPerSample <= 0 {
		c.TokensPerSample = 512
	}
	if c.GPUTeraFLOPS <= 0 {
		c.GPUTeraFLOPS = 150
	}
	gpus := c.GPUs
	if gpus < 1 {
		gpus = 1
	}
	flops := 6 * c.ParamsB * 1e9 * float64(c.TokensPerSample) * float64(c.GlobalBatch) / float64(gpus)
	sec := flops / (c.GPUTeraFLOPS * 1e12)
	return time.Duration(sec * float64(time.Second))
}

// commTime is the per-step collective cost: an FSDP step moves O(2·params)
// bytes (fp16 gather + scatter) through the ring, with the classic
// 2(n-1)/n bandwidth factor.
func (c Config) commTime() time.Duration {
	if c.GPUs <= 1 {
		return 0
	}
	if c.InterconnectGBps <= 0 {
		c.InterconnectGBps = 100
	}
	bytes := 2 * c.ParamsB * 1e9 * 2 // gather+scatter, 2 bytes/param
	factor := 2 * float64(c.GPUs-1) / float64(c.GPUs)
	sec := bytes * factor / (c.InterconnectGBps * 1e9)
	return time.Duration(sec * float64(time.Second))
}

// StepTime returns the modelled wall time of one optimizer step.
func (c Config) StepTime() (time.Duration, error) {
	cc := c
	if err := cc.defaults(); err != nil {
		return 0, err
	}
	return cc.computeTime() + cc.commTime(), nil
}

// Makespan returns the modelled wall time of the full job.
func (c Config) Makespan() (time.Duration, error) {
	step, err := c.StepTime()
	if err != nil {
		return 0, err
	}
	total := step * time.Duration(c.StepsPerEpoch()*c.Epochs)
	return total, nil
}

// Speedup returns the modelled parallel speedup of running on gpus
// relative to one GPU (same global batch). It is sub-linear: the
// communication term does not shrink with the worker count.
func (c Config) Speedup(gpus int) (float64, error) {
	base := c
	base.GPUs = 1
	t1, err := base.Makespan()
	if err != nil {
		return 0, err
	}
	par := c
	par.GPUs = gpus
	tn, err := par.Makespan()
	if err != nil {
		return 0, err
	}
	if tn <= 0 {
		return 0, fmt.Errorf("training: degenerate makespan")
	}
	return float64(t1) / float64(tn), nil
}

// Efficiency returns Speedup(gpus)/gpus.
func (c Config) Efficiency(gpus int) (float64, error) {
	s, err := c.Speedup(gpus)
	if err != nil {
		return 0, err
	}
	return s / float64(gpus), nil
}

// Duration returns a sampled duration distribution around the modelled
// makespan (for use as a task Duration).
func (c Config) Duration() (rng.DurationDist, error) {
	m, err := c.Makespan()
	if err != nil {
		return rng.DurationDist{}, err
	}
	jitter := c.Jitter
	if jitter <= 0 {
		jitter = 0.1
	}
	std := time.Duration(float64(m) * jitter)
	return rng.NormalDuration(m, std), nil
}

// OptimalGPUs returns the smallest data-parallel width whose marginal
// efficiency falls below threshold — a simple capacity-planning helper
// for the adaptive resource scheduling the paper's future work proposes.
func (c Config) OptimalGPUs(maxGPUs int, threshold float64) (int, error) {
	if maxGPUs < 1 {
		return 0, fmt.Errorf("training: maxGPUs < 1")
	}
	best := 1
	for g := 2; g <= maxGPUs; g *= 2 {
		eff, err := c.Efficiency(g)
		if err != nil {
			return 0, err
		}
		if eff < threshold {
			break
		}
		best = g
	}
	return best, nil
}

// ViTBase returns the fine-tuning profile of the Cell Painting pipeline's
// ViT-Base backbone (86M parameters) on the paper-scale dataset slice.
func ViTBase(datasetSamples, globalBatch, epochs, gpus int) Config {
	return Config{
		ParamsB:         0.086,
		DatasetSamples:  datasetSamples,
		GlobalBatch:     globalBatch,
		Epochs:          epochs,
		GPUs:            gpus,
		TokensPerSample: 197, // 196 patches + CLS for ViT-B/16 @ 224px
	}
}

// Llama8B returns the UQ pipeline's LoRA fine-tuning profile. LoRA
// reduces trained parameters, but forward/backward still traverses the
// full model; the collective moves only adapter gradients, approximated
// here by scaling the communication-relevant parameter count.
func Llama8B(datasetSamples, globalBatch, epochs, gpus int) Config {
	return Config{
		ParamsB:        8,
		DatasetSamples: datasetSamples,
		GlobalBatch:    globalBatch,
		Epochs:         epochs,
		GPUs:           gpus,
	}
}

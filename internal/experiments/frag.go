package experiments

// Fragmentation ablation on heterogeneous pilots: the paper's three
// testbeds are each internally homogeneous, but campus-scale machines
// mix node shapes — and there first-fit placement fragments the large
// nodes with small tasks until large work no longer fits, while
// best-fit packs small tasks onto the small nodes and keeps the large
// nodes whole. RunFrag drives that comparison end to end (session →
// pilot spanning mixed shapes → policy-driven scheduler) at figure
// scale: saturate a mixed pilot with small holders, then offer one
// whole-fat-node task per fat node and count how many are granted under
// each policy.

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/states"
)

// FragConfig parameterizes the fragmentation ablation.
type FragConfig struct {
	// Platform names the (mixed-shape) catalog platform (default
	// "hetero"). The pilot spans every node of it.
	Platform string
	// Policy is the challenger placement policy compared against the
	// strict/first-fit baseline (default "best-fit"; any
	// scheduler.PolicyByName form works, e.g. "best-fit:k=-1,t=-1").
	Policy string
	// Smalls is the number of small holder tasks, each demanding one
	// whole thin-shaped node's cores (default: the thin partition size).
	Smalls int
	// Larges is the number of large tasks, each demanding one whole
	// fat-shaped node (default: the fat partition size).
	Larges int
	// Scale is the clock compression (default 2000).
	Scale float64
	// Seed drives determinism.
	Seed uint64

	// Churn switches to the steady-state variant: only half the small
	// holders run forever; the other half complete after SmallHold of
	// simulated time, and ChurnWaves waves of Smalls/4 fresh smalls
	// arrive after the larges are offered. This measures how much of
	// best-fit's fragmentation win survives realistic task turnover —
	// under first-fit the permanent holders keep part of the fat
	// partition fragmented forever, while the transient churn releases
	// the rest back to the waiting larges.
	Churn bool
	// ChurnWaves is the number of arrival waves (default 2).
	ChurnWaves int
	// SmallHold is the transient smalls' simulated duration (default 60s).
	SmallHold time.Duration
}

// DefaultFragConfig returns the figure-scale parameterization on the
// hetero campus: enough smalls to fragment a third of the fat partition
// under first-fit, and one large per fat node.
func DefaultFragConfig() FragConfig {
	return FragConfig{
		Platform: "hetero",
		Policy:   "best-fit",
		Scale:    2000,
		Seed:     4,
	}
}

// FragRow is one policy's outcome on the saturated mixed pilot.
type FragRow struct {
	Policy       string
	SmallGranted int
	LargeGranted int
	Waiting      int
	CoreUtil     float64
	GPUUtil      float64
}

// FragResult is the fragmentation-ablation dataset.
type FragResult struct {
	Cfg FragConfig
	// Shapes is the pilot's node composition (e.g. "32×128c/16g + 96×16c/0g").
	Shapes string
	// SmallCores / LargeCores / LargeGPUs are the per-task demands derived
	// from the platform's thin and fat shapes.
	SmallCores, LargeCores, LargeGPUs int
	Rows                              []FragRow
}

// RunFrag executes the fragmentation ablation: once under strict
// (first-fit) placement, once under cfg.Policy, on identical workloads.
func RunFrag(ctx context.Context, cfg FragConfig) (*FragResult, error) {
	if cfg.Platform == "" {
		cfg.Platform = "hetero"
	}
	if cfg.Policy == "" {
		cfg.Policy = "best-fit"
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 2000
	}
	if cfg.Churn {
		if cfg.ChurnWaves <= 0 {
			cfg.ChurnWaves = 2
		}
		if cfg.SmallHold <= 0 {
			cfg.SmallHold = 60 * time.Second
		}
	}
	// Resolve the workload from the platform's shape mix once, up front:
	// every session instantiates the catalog platform identically, so the
	// shapes (and the defaults derived from them) are the same per policy.
	plat := platform.DefaultTopology().Platform(cfg.Platform)
	if plat == nil {
		return nil, fmt.Errorf("experiments: frag: unknown platform %q", cfg.Platform)
	}
	shapes := plat.Shapes()
	thin, fat := thinAndFat(shapes)
	if cfg.Smalls <= 0 {
		cfg.Smalls = thin.Count
	}
	if cfg.Larges <= 0 {
		cfg.Larges = fat.Count
	}
	res := &FragResult{
		Cfg:        cfg,
		Shapes:     platform.FormatShapes(shapes),
		SmallCores: thin.Spec.Cores,
		LargeCores: fat.Spec.Cores,
		LargeGPUs:  fat.Spec.GPUs,
	}
	policies := []string{"strict"}
	if cfg.Policy != "strict" {
		policies = append(policies, cfg.Policy)
	}
	for _, pol := range policies {
		var row FragRow
		var err error
		if cfg.Churn {
			row, err = runFragChurnPoint(ctx, cfg, pol, len(plat.Nodes()), thin.Spec, fat.Spec)
		} else {
			row, err = runFragPoint(ctx, cfg, pol, len(plat.Nodes()), thin.Spec, fat.Spec)
		}
		if err != nil {
			return res, fmt.Errorf("experiments: frag %s on %s: %w", pol, cfg.Platform, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// thinAndFat picks the smallest- and largest-capacity shapes of a
// (possibly mixed) node-group list, ranked on the same weighted scale
// best-fit placement optimizes.
func thinAndFat(groups []platform.NodeGroup) (thin, fat platform.NodeGroup) {
	weight := func(s platform.NodeSpec) float64 {
		return scheduler.WeightedCapacity(s.Cores, s.GPUs, s.MemGB)
	}
	thin, fat = groups[0], groups[0]
	for _, g := range groups[1:] {
		if weight(g.Spec) < weight(thin.Spec) {
			thin = g
		}
		if weight(g.Spec) > weight(fat.Spec) {
			fat = g
		}
	}
	return thin, fat
}

// runFragPoint runs the workload under one policy on a whole-platform
// pilot of nodeCount nodes, with small tasks shaped to thin and large
// tasks shaped to fat.
func runFragPoint(ctx context.Context, cfg FragConfig, policy string, nodeCount int, thin, fat platform.NodeSpec) (FragRow, error) {
	sess, err := core.NewSession(core.SessionConfig{
		Seed:        cfg.Seed,
		Clock:       simtime.NewScaled(cfg.Scale, core.DefaultOrigin),
		FastBoot:    true,
		SchedPolicy: policy,
	})
	if err != nil {
		return FragRow{}, err
	}
	defer sess.Close()
	p, err := sess.PilotManager().Submit(spec.PilotDescription{
		Platform: cfg.Platform, Nodes: nodeCount,
	})
	if err != nil {
		return FragRow{}, err
	}

	tm := sess.TaskManager()
	tm.AddPilot(p)
	// Holders sleep far past the measurement window; cancelling taskCtx
	// on return aborts their payloads so the session shuts down cleanly.
	taskCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hold := rng.ConstDuration(1000 * time.Hour)

	sched := p.Scheduler()
	allGranted := func(target int) error { return waitGranted(sched, target) }
	quiesced := func(total int) error { return waitQuiesced(sched, total) }

	// Phase 1: small holders — every one of them fits, so wait for all
	// grants before offering large work (inter-class submission order
	// must not race, or the fragmentation pattern would be noisy).
	smallDescs := make([]spec.TaskDescription, cfg.Smalls)
	for i := range smallDescs {
		smallDescs[i] = spec.TaskDescription{
			Name: fmt.Sprintf("small-%04d", i), Cores: thin.Cores, Duration: hold,
		}
	}
	if _, err := tm.Submit(taskCtx, smallDescs...); err != nil {
		return FragRow{}, err
	}
	if err := allGranted(cfg.Smalls); err != nil {
		return FragRow{}, fmt.Errorf("small holders: %w", err)
	}

	// Phase 2: one whole-fat-node task per fat node.
	largeDescs := make([]spec.TaskDescription, cfg.Larges)
	for i := range largeDescs {
		largeDescs[i] = spec.TaskDescription{
			Name:  fmt.Sprintf("large-%04d", i),
			Cores: fat.Cores, GPUs: fat.GPUs, Duration: hold,
		}
	}
	if _, err := tm.Submit(taskCtx, largeDescs...); err != nil {
		return FragRow{}, err
	}
	if err := quiesced(cfg.Smalls + cfg.Larges); err != nil {
		return FragRow{}, fmt.Errorf("large offers: %w", err)
	}

	granted := sched.Scheduled()
	row := FragRow{
		Policy:       policy,
		SmallGranted: cfg.Smalls,
		LargeGranted: granted - cfg.Smalls,
		Waiting:      sched.Waiting(),
	}
	var totCores, totGPUs, freeCores, freeGPUs int
	for _, n := range p.Nodes() {
		sp := n.Spec()
		totCores += sp.Cores
		totGPUs += sp.GPUs
		fc, fg, _ := n.Free()
		freeCores += fc
		freeGPUs += fg
	}
	if totCores > 0 {
		row.CoreUtil = 1 - float64(freeCores)/float64(totCores)
	}
	if totGPUs > 0 {
		row.GPUUtil = 1 - float64(freeGPUs)/float64(totGPUs)
	}
	return row, nil
}

// waitGranted polls until exactly target grants have happened.
func waitGranted(sched *scheduler.Scheduler, target int) error {
	deadline := time.Now().Add(20 * time.Second)
	for sched.Scheduled() != target {
		if time.Now().After(deadline) {
			return fmt.Errorf("scheduler did not settle (granted %d/%d)", sched.Scheduled(), target)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil
}

// waitAdmitted polls until at least total accepted requests have reached
// the scheduler (granted or waiting). The sum only grows, so this
// serializes submission phases whose relative wait-pool order matters.
func waitAdmitted(sched *scheduler.Scheduler, total int) error {
	deadline := time.Now().Add(20 * time.Second)
	for sched.Scheduled()+sched.Waiting() < total {
		if time.Now().After(deadline) {
			return fmt.Errorf("scheduler did not admit the batch (granted %d, waiting %d, want %d)",
				sched.Scheduled(), sched.Waiting(), total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

// waitQuiesced polls until every accepted request is either granted or
// waiting (all submissions reached the scheduler) and the grant count has
// stopped moving.
func waitQuiesced(sched *scheduler.Scheduler, total int) error {
	deadline := time.Now().Add(20 * time.Second)
	stable, last := 0, -1
	for {
		g, w := sched.Scheduled(), sched.Waiting()
		if g+w == total && g == last {
			if stable++; stable >= 3 {
				return nil
			}
		} else {
			stable = 0
		}
		last = g
		if time.Now().After(deadline) {
			return fmt.Errorf("scheduler did not quiesce (granted %d, waiting %d, want total %d)", g, w, total)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// runFragChurnPoint is the steady-state variant of runFragPoint: half
// the smalls hold forever (the persistent load), half complete after
// cfg.SmallHold; the larges are offered against that mix, and fresh
// small arrivals keep churning while the transients drain. The end state
// is deterministic: under first-fit the permanent holders pin part of
// the fat partition fragmented, the transient releases hand the rest to
// the waiting larges; under best-fit every small (initial or arriving)
// packs onto the thin partition and all larges run.
func runFragChurnPoint(ctx context.Context, cfg FragConfig, policy string, nodeCount int, thin, fat platform.NodeSpec) (FragRow, error) {
	holders := cfg.Smalls / 2
	transients := cfg.Smalls - holders
	waveSize := cfg.Smalls / 4

	sess, err := core.NewSession(core.SessionConfig{
		Seed:        cfg.Seed,
		Clock:       simtime.NewScaled(cfg.Scale, core.DefaultOrigin),
		FastBoot:    true,
		SchedPolicy: policy,
	})
	if err != nil {
		return FragRow{}, err
	}
	defer sess.Close()
	p, err := sess.PilotManager().Submit(spec.PilotDescription{
		Platform: cfg.Platform, Nodes: nodeCount,
	})
	if err != nil {
		return FragRow{}, err
	}
	tm := sess.TaskManager()
	tm.AddPilot(p)
	taskCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hold := rng.ConstDuration(1000 * time.Hour)
	churn := rng.ConstDuration(cfg.SmallHold)
	sched := p.Scheduler()

	submitSmalls := func(n int, label string, dur rng.DurationDist) error {
		descs := make([]spec.TaskDescription, n)
		for i := range descs {
			descs[i] = spec.TaskDescription{
				Name: fmt.Sprintf("%s-%04d", label, i), Cores: thin.Cores, Duration: dur,
			}
		}
		_, err := tm.Submit(taskCtx, descs...)
		return err
	}
	// Phase 1: the steady load — permanent holders, then transients.
	// Both classes fit entirely; wait for all grants so the placement
	// pattern is deterministic before any large work is offered.
	if err := submitSmalls(holders, "perm", hold); err != nil {
		return FragRow{}, err
	}
	if err := waitGranted(sched, holders); err != nil {
		return FragRow{}, fmt.Errorf("permanent holders: %w", err)
	}
	if err := submitSmalls(transients, "churn", churn); err != nil {
		return FragRow{}, err
	}
	if err := waitGranted(sched, holders+transients); err != nil {
		return FragRow{}, fmt.Errorf("transient holders: %w", err)
	}

	// Phase 2: offer the larges; they hold whatever they win.
	largeDescs := make([]spec.TaskDescription, cfg.Larges)
	for i := range largeDescs {
		largeDescs[i] = spec.TaskDescription{
			Name:  fmt.Sprintf("large-%04d", i),
			Cores: fat.Cores, GPUs: fat.GPUs, Duration: hold,
		}
	}
	larges, err := tm.Submit(taskCtx, largeDescs...)
	if err != nil {
		return FragRow{}, err
	}
	// Tasks reach the scheduler from per-task goroutines, so wait until
	// every large is admitted (granted or waiting) before offering the
	// waves — otherwise an arrival could race ahead of a large in
	// submission-sequence order and be granted past the blocked head.
	if err := waitAdmitted(sched, cfg.Smalls+cfg.Larges); err != nil {
		return FragRow{}, fmt.Errorf("large offers: %w", err)
	}

	// Phase 3: arrival churn behind the larges.
	for w := 0; w < cfg.ChurnWaves; w++ {
		if err := submitSmalls(waveSize, fmt.Sprintf("wave%d", w), churn); err != nil {
			return FragRow{}, err
		}
	}

	// Phase 4: let the turnover drain. Transient and wave smalls either
	// complete or stay blocked behind an ungrantable large head; the end
	// state is stable either way.
	total := cfg.Smalls + cfg.Larges + cfg.ChurnWaves*waveSize
	if err := waitQuiesced(sched, total); err != nil {
		return FragRow{}, fmt.Errorf("churn: %w", err)
	}

	largeGranted := 0
	for _, t := range larges {
		if t.State() == states.TaskExecuting {
			largeGranted++
		}
	}
	row := FragRow{
		Policy:       policy,
		SmallGranted: sched.Scheduled() - largeGranted,
		LargeGranted: largeGranted,
		Waiting:      sched.Waiting(),
	}
	var totCores, totGPUs, freeCores, freeGPUs int
	for _, n := range p.Nodes() {
		sp := n.Spec()
		totCores += sp.Cores
		totGPUs += sp.GPUs
		fc, fg, _ := n.Free()
		freeCores += fc
		freeGPUs += fg
	}
	if totCores > 0 {
		row.CoreUtil = 1 - float64(freeCores)/float64(totCores)
	}
	if totGPUs > 0 {
		row.GPUUtil = 1 - float64(freeGPUs)/float64(totGPUs)
	}
	return row, nil
}

// TotalSmalls returns how many small tasks the configuration submits in
// total: the initial holders plus, under churn, every arrival wave.
func (c FragConfig) TotalSmalls() int {
	if !c.Churn {
		return c.Smalls
	}
	return c.Smalls + c.ChurnWaves*(c.Smalls/4)
}

// Table renders the fragmentation ablation.
func (r *FragResult) Table() metrics.Table {
	title := fmt.Sprintf(
		"Fragmentation ablation — %s (%s), %d smalls (%dc) then %d larges (%dc/%dg)",
		r.Cfg.Platform, r.Shapes, r.Cfg.Smalls, r.SmallCores,
		r.Cfg.Larges, r.LargeCores, r.LargeGPUs)
	if r.Cfg.Churn {
		title += fmt.Sprintf(" — churn: half the smalls complete after %s, %d waves of %d more arrive",
			r.Cfg.SmallHold, r.Cfg.ChurnWaves, r.Cfg.Smalls/4)
	}
	t := metrics.Table{
		Title:  title,
		Header: []string{"policy", "smalls granted", "larges granted", "waiting", "core util", "gpu util"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Policy,
			fmt.Sprintf("%d/%d", row.SmallGranted, r.Cfg.TotalSmalls()),
			fmt.Sprintf("%d/%d", row.LargeGranted, r.Cfg.Larges),
			fmt.Sprintf("%d", row.Waiting),
			fmt.Sprintf("%.3f", row.CoreUtil),
			fmt.Sprintf("%.3f", row.GPUUtil))
	}
	return t
}

// Package core is the client-facing runtime facade — the analogue of
// RADICAL-Pilot's client layer extended with the paper's service
// capabilities. A Session owns the clock, RNG, platform topology,
// communication network and metrics; a PilotManager acquires pilots; a
// TaskManager and a ServiceManager submit TaskDescriptions and
// ServiceDescriptions through one unified API (Fig. 2 (1)); an Updater
// publishes every entity state transition on a dedicated channel
// (Fig. 2 (6)). Remote (e.g. R3-hosted) services register their endpoints
// directly with the session, so client tasks consume local and remote
// model instances through the same interface.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/executor"
	"repro/internal/journal"
	"repro/internal/loadbal"
	"repro/internal/metrics"
	"repro/internal/msgq"
	"repro/internal/pilot"
	"repro/internal/platform"
	"repro/internal/profile"
	"repro/internal/proto"
	"repro/internal/restapi"
	"repro/internal/rng"
	"repro/internal/router"
	"repro/internal/scheduler"
	"repro/internal/service"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/states"
)

// DefaultOrigin is the simulated epoch used when no clock is supplied.
var DefaultOrigin = time.Date(2025, 3, 17, 0, 0, 0, 0, time.UTC)

// UpdatesAddr is the session-level PUB endpoint for state updates.
const UpdatesAddr = "session//updates"

// SessionConfig parameterizes a Session.
type SessionConfig struct {
	// Seed drives all stochastic behaviour; the same seed replays the
	// same run.
	Seed uint64
	// Clock defaults to a 1000x scaled clock at DefaultOrigin.
	Clock simtime.Clock
	// Topology defaults to the full catalog topology: the paper's three
	// platforms (frontier, delta, r3) plus the mixed-shape hetero campus.
	Topology *platform.Topology
	// FastBoot zeroes pilot boot, launch and publish overheads. Use for
	// runs that measure steady-state behaviour (the paper's Exp 2/3, where
	// bootstrap is out of scope) on low clock scales where those sleeps
	// would cost real wall time.
	FastBoot bool
	// SchedPolicy names the placement policy every pilot's agent
	// scheduler uses ("strict", "backfill", "best-fit"). Empty defers to
	// the platform's default, then to strict.
	SchedPolicy string
	// Router names the session-level task→pilot routing strategy of the
	// TaskManager ("round-robin", "least-loaded", "capacity-fit"). Empty
	// selects round-robin, the seed dispatch.
	Router string
	// JournalPath, when set, makes the session durable: every entity
	// description, state transition, placement binding and endpoint
	// registry mutation is appended to a write-ahead journal at this path,
	// and core.Recover can reconstruct the session from it after a client
	// crash. Journaled sessions launch attachable pilots under
	// session-scoped UIDs so recovery can find the survivors.
	JournalPath string
	// JournalFlushEvery overrides the journal's fsync batching interval on
	// the session clock (default journal.DefaultFlushEvery).
	JournalFlushEvery time.Duration
	// Transport selects the msgq transport for service endpoints
	// (msgq.TransportInproc, the default, or msgq.TransportTCP for real
	// loopback sockets with dialable published addresses — the transport
	// multi-process sessions run on).
	Transport string
	// LoadHorizon bounds how old a registry load report may be before
	// balancing clients treat it as no information and fall back to blind
	// rotation (default service.DefaultLoadHorizon). It must comfortably
	// cover the report cadence — the autoscaler's ScaleInterval or a
	// campaign reporter's interval — or every pick degrades to rotation.
	LoadHorizon time.Duration
}

// Session is one runtime instance.
type Session struct {
	uid   string
	clock simtime.Clock
	src   *rng.Source
	topo  *platform.Topology
	net   *msgq.Network
	coll  *metrics.Collector
	prof  *profile.Recorder

	updates msgq.Publisher

	// jw is the write-ahead journal (nil for volatile sessions);
	// incarnation counts recoveries: 0 volatile, 1 first journaled life,
	// +1 per Recover. Both are fixed before the session is reachable.
	jw          *journal.Writer
	incarnation uint64
	routerName  string
	transport   string
	loadHorizon time.Duration

	mu       sync.Mutex
	closed   bool
	remotes  map[string]proto.Endpoint
	fastBoot bool
	schedPol string

	pm *PilotManager
	tm *TaskManager
	sm *ServiceManager
}

// NewSession assembles a runtime session.
func NewSession(cfg SessionConfig) (*Session, error) {
	if cfg.Clock == nil {
		cfg.Clock = simtime.NewScaled(1000, DefaultOrigin)
	}
	if cfg.Topology == nil {
		cfg.Topology = platform.DefaultTopology()
	}
	// Fail fast on a bad policy or router name instead of at the first
	// pilot launch / task submission.
	if _, err := scheduler.PolicyByName(cfg.SchedPolicy); err != nil {
		return nil, err
	}
	rt, err := router.ByName(cfg.Router)
	if err != nil {
		return nil, err
	}
	// Routers keep per-selection state (the round-robin cursor) and are
	// not safe to share: the task and service managers each get their own
	// instance, which also preserves the seed's independent dispatch
	// sequences.
	srt, err := router.ByName(cfg.Router)
	if err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	net := msgq.NewNetwork(cfg.Clock, src.Derive("net"), cfg.Topology.Resolver())
	if err := net.SetTransport(cfg.Transport); err != nil {
		return nil, err
	}
	s := &Session{
		uid:      fmt.Sprintf("session.%08x", src.Derive("uid").Uint64()&0xffffffff),
		clock:    cfg.Clock,
		src:      src,
		topo:     cfg.Topology,
		net:      net,
		coll:     metrics.NewCollector(),
		prof:     profile.NewRecorder(),
		remotes:  make(map[string]proto.Endpoint),
		fastBoot: cfg.FastBoot,
		schedPol: cfg.SchedPolicy,

		routerName:  cfg.Router,
		transport:   cfg.Transport,
		loadHorizon: cfg.LoadHorizon,
	}
	pub, err := net.BindPub(UpdatesAddr)
	if err != nil {
		net.Close()
		return nil, err
	}
	s.updates = pub
	s.pm = &PilotManager{sess: s, pilots: make(map[string]*pilot.Pilot)}
	s.tm = &TaskManager{
		sess:     s,
		rt:       rt,
		tasks:    make(map[string]*Task),
		overflow: make(map[string]*Task),
	}
	s.sm = &ServiceManager{
		sess:     s,
		rt:       srt,
		reg:      service.NewEndpointRegistry(),
		services: make(map[string]*Service),
	}
	if cfg.JournalPath != "" {
		jw, err := journal.Open(journal.Config{
			Path: cfg.JournalPath, Clock: cfg.Clock, FlushEvery: cfg.JournalFlushEvery,
		})
		if err != nil {
			_ = s.updates.Close()
			net.Close()
			return nil, err
		}
		s.jw = jw
		s.incarnation = 1
		if err := s.attachJournal(cfg.Seed); err != nil {
			_ = jw.Close()
			_ = s.updates.Close()
			net.Close()
			return nil, err
		}
	}
	return s, nil
}

// attachJournal writes the opening session record and wires the endpoint
// registry's mutations into the journal. The registry fence moves to the
// current incarnation, so publications from earlier incarnations (zombies
// surviving a recovery) are rejected.
func (s *Session) attachJournal(seed uint64) error {
	if err := s.jw.Append(journal.KindSession, journal.SessionBody{
		UID: s.uid, Seed: seed, Incarnation: s.incarnation,
		SchedPolicy: s.schedPol, Router: s.routerName, FastBoot: s.fastBoot,
	}); err != nil {
		return err
	}
	s.sm.reg.SetFence(s.incarnation)
	s.sm.reg.SetObserver(func(op service.EndpointOp, uid string, ep proto.Endpoint, gen uint64) {
		s.journalAppend(journal.KindEndpoint, journal.EndpointBody{
			Op: string(op), UID: uid, Endpoint: ep, Generation: gen,
		})
	})
	return nil
}

// journalAppend appends one record to the session journal (no-op for
// volatile sessions or after the journal crashed).
func (s *Session) journalAppend(kind journal.Kind, body any) {
	if s.jw == nil {
		return
	}
	_ = s.jw.Append(kind, body)
}

// UID returns the session identifier.
func (s *Session) UID() string { return s.uid }

// Clock returns the session clock.
func (s *Session) Clock() simtime.Clock { return s.clock }

// RNG returns the session's root RNG source.
func (s *Session) RNG() *rng.Source { return s.src }

// Network returns the session's communication network.
func (s *Session) Network() *msgq.Network { return s.net }

// Topology returns the platform topology.
func (s *Session) Topology() *platform.Topology { return s.topo }

// Metrics returns the session-wide metrics collector.
func (s *Session) Metrics() *metrics.Collector { return s.coll }

// Profile returns the session profile recorder (the RADICAL-Analytics
// analogue): every entity state transition is recorded with its clock
// timestamp and can be exported as CSV.
func (s *Session) Profile() *profile.Recorder { return s.prof }

// Journal returns the session's write-ahead journal writer (nil for
// volatile sessions).
func (s *Session) Journal() *journal.Writer { return s.jw }

// Incarnation returns the session's journal incarnation: 0 for volatile
// sessions, 1 for a journaled session's first life, +1 per recovery.
// Endpoint publications are stamped with it and fenced by the registry.
func (s *Session) Incarnation() uint64 { return s.incarnation }

// PilotManager returns the session's pilot manager.
func (s *Session) PilotManager() *PilotManager { return s.pm }

// TaskManager returns the session's task manager.
func (s *Session) TaskManager() *TaskManager { return s.tm }

// ServiceManager returns the session's service manager.
func (s *Session) ServiceManager() *ServiceManager { return s.sm }

// SubscribeUpdates attaches to the Updater's state-update channel,
// optionally filtered by entity topics ("pilot", "task", "service").
func (s *Session) SubscribeUpdates(buffer int, topics ...string) (*msgq.Subscription, error) {
	return s.net.Subscribe("client", UpdatesAddr, buffer, topics...)
}

// publishState is the Updater: it broadcasts one state transition on the
// session's update channel, records it in the session profile, and — for
// journaled sessions — appends it to the write-ahead journal.
func (s *Session) publishState(entity string) states.Callback {
	record := s.prof.Callback(entity)
	return func(uid string, from, to states.State, at time.Time) {
		record(uid, from, to, at)
		s.journalAppend(journal.KindTransition, journal.TransitionBody{
			Entity: entity, UID: uid, From: string(from), To: string(to), At: at,
		})
		env, err := proto.NewEnvelope(proto.KindStateUpdate, 0, uid, "", at, proto.StateUpdate{
			EntityUID: uid, Entity: entity, State: string(to), At: at,
		})
		if err != nil {
			return
		}
		s.updates.Publish(entity, env)
	}
}

// RegisterRemote adds a remote (externally managed, e.g. R3-hosted)
// service endpoint to the session. Remote models "are usually persistent
// on dedicated resources and do not need to be bootstrapped" (§IV).
//
// The registration is also published into the session EndpointRegistry —
// the single source of endpoint truth — stamped with the session
// incarnation, so pooled and resolver clients discover remote endpoints
// through exactly the same generation-stamped lookup as local ones.
func (s *Session) RegisterRemote(ep proto.Endpoint) {
	s.mu.Lock()
	s.remotes[ep.ServiceUID] = ep
	s.mu.Unlock()
	ep.Incarnation = s.incarnation
	_, _ = s.sm.reg.Publish(ep)
}

// RemoteEndpoints returns registered remote endpoints (all models when
// model is empty).
func (s *Session) RemoteEndpoints(model string) []proto.Endpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []proto.Endpoint
	for _, ep := range s.remotes {
		if model == "" || ep.Model == model {
			out = append(out, ep)
		}
	}
	sortEndpoints(out)
	return out
}

// Dial connects a client address to a service endpoint, dispatching on
// the endpoint protocol: msgq endpoints get an in-network client, REST
// endpoints (remote R3-style deployments) get an HTTP-backed caller. Both
// satisfy service.Caller, so client tasks are agnostic to locality.
func (s *Session) Dial(clientAddr string, ep proto.Endpoint) (service.Caller, error) {
	if ep.Protocol == "rest" {
		return restapi.NewCaller(ep, s.clock)
	}
	return service.Dial(s.net, s.clock, clientAddr, ep)
}

// Pool returns a load-balanced Caller over all live endpoints of model in
// the session EndpointRegistry — local pilot services arrive there via
// the publish mirror, remote registrations via RegisterRemote. Every
// pooled request goes through a per-UID generation-aware resolver, so
// pool clients survive failover re-publications exactly like DialService
// clients (the old evict-on-error connection cache is gone).
func (s *Session) Pool(clientAddr, model string, bal loadbal.Balancer) (*service.Pool, error) {
	return service.NewPool(s.sm.reg, model, bal, func(ep proto.Endpoint) (service.Caller, error) {
		return s.Dial(clientAddr, ep)
	})
}

// EndpointRegistry returns the session-level endpoint registry: the
// authority mapping stable service UIDs to live, generation-stamped
// endpoints across failover re-placements.
func (s *Session) EndpointRegistry() *service.EndpointRegistry { return s.sm.reg }

// DialService returns a registry-resolving Caller bound to a stable
// service UID: every request resolves the UID through the session
// EndpointRegistry, so the caller survives failure-driven re-placements —
// when the hosting pilot dies and the service re-publishes from a new
// pilot, the caller re-resolves and redials instead of erroring into the
// dead address (the fate of a client that cached the raw endpoint).
func (s *Session) DialService(clientAddr, uid string) (*service.Resolver, error) {
	return service.NewResolver(s.sm.reg, uid, func(ep proto.Endpoint) (service.Caller, error) {
		return s.Dial(clientAddr, ep)
	}, 0)
}

// DialBalanced returns a replica-aware inference client for uid: requests
// spread over the base instance and whatever replicas the registry's
// balancing group currently lists, picked by seeded power-of-two-choices
// over the live load reports (two probes per request, lock-free, with a
// round-robin fallback when reports age past the session's LoadHorizon).
// For an unscaled service it behaves exactly like DialService.
func (s *Session) DialBalanced(clientAddr, uid string) (*service.Balancer, error) {
	return s.DialBalancedWith(clientAddr, uid, nil)
}

// DialBalancedWith is DialBalanced with an explicit picker strategy (nil
// selects the default: power-of-two-choices seeded deterministically from
// the session seed and uid). The ablation harness uses it to hold the
// same request stream against p2c, blind round-robin and the full-scan
// least-loaded baseline.
func (s *Session) DialBalancedWith(clientAddr, uid string, picker loadbal.Picker) (*service.Balancer, error) {
	return service.NewBalancer(s.sm.reg, uid, func(ep proto.Endpoint) (service.Caller, error) {
		return s.Dial(clientAddr, ep)
	}, service.BalancerOptions{
		Picker:  picker,
		Seed:    s.src.Derive("balance." + uid).Uint64(),
		Now:     s.clock.Now,
		Horizon: s.loadHorizon,
	})
}

// Close shuts the session down: pilots, services, network. Tasks still
// parked in the TaskManager's overflow pool fail with ErrSessionClosed,
// and the pilot shutdowns fail queued tasks instead of re-routing them.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.sm.close()
	s.tm.close()
	s.pm.shutdownAll()
	s.net.Close()
	if s.jw != nil {
		_ = s.jw.Close()
	}
}

// Abandon simulates the client process dying mid-campaign: the session's
// managers stop (in-flight re-placements settle with ErrSessionClosed,
// overflow tasks fail), the update channel unbinds, and the journal
// crashes — no graceful final fsync, every later append dropped. Unlike
// Close, the pilots and the network stay up: they model remote machines
// that outlive the client, which is exactly what Recover reattaches to.
// Experiment fault injection wires this as the journal's OnCrash callback.
func (s *Session) Abandon() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.sm.close()
	s.tm.close()
	// Free the updates address so a recovered session can bind it on the
	// same (surviving) network.
	_ = s.updates.Close()
	if s.jw != nil {
		s.jw.Crash()
	}
}

func sortEndpoints(eps []proto.Endpoint) {
	for i := 1; i < len(eps); i++ {
		for j := i; j > 0 && eps[j].ServiceUID < eps[j-1].ServiceUID; j-- {
			eps[j], eps[j-1] = eps[j-1], eps[j]
		}
	}
}

// --- PilotManager -----------------------------------------------------------

// PilotManager acquires and tracks pilots.
type PilotManager struct {
	sess *Session

	mu     sync.Mutex
	seq    int
	pilots map[string]*pilot.Pilot
}

// Submit launches a pilot on the described platform.
func (pm *PilotManager) Submit(desc spec.PilotDescription) (*pilot.Pilot, error) {
	plat := pm.sess.topo.Platform(desc.Platform)
	if plat == nil {
		return nil, fmt.Errorf("core: unknown platform %q", desc.Platform)
	}
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	pm.mu.Lock()
	pm.seq++
	seq := pm.seq
	pm.mu.Unlock()
	if desc.UID == "" {
		if pm.sess.jw != nil {
			// Session-scoped UIDs keep attachable pilots of concurrent
			// journaled sessions apart in the package-level live registry.
			desc.UID = fmt.Sprintf("%s.pilot.%s.%04d", pm.sess.uid, desc.Platform, seq)
		} else {
			desc.UID = fmt.Sprintf("pilot.%s.%04d", desc.Platform, seq)
		}
	}
	// WAL intent: the description lands in the journal before Launch, so
	// pilot state transitions (which begin during Launch) always replay
	// against a known UID.
	pm.sess.journalAppend(journal.KindPilot, journal.PilotBody{UID: desc.UID, Desc: desc})
	cfg := pilot.Config{
		Clock:                pm.sess.clock,
		Src:                  pm.sess.src.Derive(fmt.Sprintf("pilot.%s.%d", desc.Platform, seq)),
		Net:                  pm.sess.net,
		Platform:             plat,
		SchedPolicy:          pm.sess.schedPol,
		StateCallback:        pm.sess.publishState("task"),
		PilotStateCallback:   pm.sess.publishState("pilot"),
		ServiceStateCallback: pm.sess.publishState("service"),
		Attach:               pm.sess.jw != nil,
		Transport:            pm.sess.transport,
		// Mirror every service endpoint publication into the session
		// EndpointRegistry as part of the publish bootstrap phase, so a
		// ready service is already resolvable session-wide. The pilot UID
		// identifies the publishing incarnation: a straggling publication
		// from a pilot the service has already migrated away from is
		// dropped instead of overwriting the failover re-publication.
		OnServicePublish: func(ep proto.Endpoint) { pm.sess.sm.mirrorPublish(desc.UID, ep) },
	}
	if pm.sess.fastBoot {
		cfg.BootTime = rng.ConstDuration(0)
		cfg.PublishOverhead = rng.ConstDuration(0)
		cfg.LaunchModel = &platform.LaunchModel{}
	}
	p, err := pilot.Launch(cfg, desc)
	if err != nil {
		return nil, err
	}
	pm.mu.Lock()
	pm.pilots[p.UID()] = p
	pm.mu.Unlock()
	return p, nil
}

// Get returns a pilot by UID.
func (pm *PilotManager) Get(uid string) (*pilot.Pilot, bool) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	p, ok := pm.pilots[uid]
	return p, ok
}

// List returns all pilots.
func (pm *PilotManager) List() []*pilot.Pilot {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	out := make([]*pilot.Pilot, 0, len(pm.pilots))
	for _, p := range pm.pilots {
		out = append(out, p)
	}
	return out
}

func (pm *PilotManager) shutdownAll() {
	for _, p := range pm.List() {
		if p.State() == states.PilotActive {
			_ = p.Shutdown()
		}
	}
}

// --- TaskManager -------------------------------------------------------------

// ErrSessionClosed is the failure overflow-pooled tasks receive when the
// session shuts down before new capacity arrives for them.
var ErrSessionClosed = errors.New("core: session closed")

// TaskManager submits compute tasks across the session's pilots. Which
// pilot a task binds to is the pluggable Router's decision (default:
// round-robin, the seed dispatch; see SessionConfig.Router), made one
// task at a time against the pilots' live capacity snapshots — the
// session-level half of the pilot abstraction's late binding.
//
// Submission is transactional per description: Submit returns the
// successfully submitted prefix together with the error that stopped the
// batch. Validation failures and routing rejections stop the batch
// before any routing state moves, so resubmitting the remainder
// continues the sequence exactly where it stopped. (A pilot dying in
// the instant between routing and dispatch re-enters routing instead of
// erroring; only that race consumes extra rotation steps.)
//
// Tasks whose pilot shuts down before granting them resources are
// re-routed to another active pilot; when none is attached they park in
// a session-level overflow pool that AddPilot drains, so late-bound work
// survives pilot churn. Tasks pinned to a pilot (TaskDescription.Pilot)
// and tasks already executing are not re-routed: the former fail with
// pilot.ErrPilotStopped, the latter keep their own lifecycle.
type TaskManager struct {
	sess *Session

	mu       sync.Mutex
	pilots   []*pilot.Pilot
	rt       router.Router
	seq      int
	tasks    map[string]*Task
	overflow map[string]*Task
	closed   bool
}

// Task is a session-level task handle. It follows one logical task
// across pilot re-routes: the underlying pilot task may be replaced when
// a pilot dies, but the UID, description and completion channel stay.
type Task struct {
	tm  *TaskManager
	uid string
	// desc and ctx are fixed at submission; re-dispatches reuse both.
	desc spec.TaskDescription
	ctx  context.Context

	mu       sync.Mutex
	cur      *pilot.Task
	p        *pilot.Pilot
	reroutes int
	finished bool
	err      error
	done     chan struct{}
}

// UID returns the stable logical task UID.
func (t *Task) UID() string { return t.uid }

// Description returns the submitted description.
func (t *Task) Description() spec.TaskDescription { return t.desc }

// State returns the task's current lifecycle state. A task parked in the
// session overflow pool (no pilot bound) reports TMGR_SCHEDULING.
func (t *Task) State() states.State {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur != nil {
		return t.cur.State()
	}
	if t.finished {
		if t.err != nil {
			return states.TaskFailed
		}
		return states.TaskDone
	}
	return states.TaskTmgrScheduling
}

// Result returns the execution result (valid once Done() is closed).
func (t *Task) Result() executor.Result {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur != nil {
		return t.cur.Result()
	}
	return executor.Result{Err: t.err}
}

// Pilot returns the UID of the pilot currently running the task, or ""
// while it sits in the session overflow pool.
func (t *Task) Pilot() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.p == nil {
		return ""
	}
	return t.p.UID()
}

// Reroutes counts how many times the session re-bound this task to a new
// pilot after its previous one shut down.
func (t *Task) Reroutes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reroutes
}

// Done returns a channel closed when the logical task reaches a final
// state — including across re-routes, which the per-pilot task handles
// underneath cannot express.
func (t *Task) Done() <-chan struct{} { return t.done }

// Err returns the task's final error (nil on success; undefined before
// Done() closes).
func (t *Task) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// finish seals the logical task exactly once.
func (t *Task) finish(err error) {
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	t.err = err
	t.mu.Unlock()
	close(t.done)
}

// AddPilot attaches a pilot to the task manager and offers it to every
// task parked in the overflow pool.
func (tm *TaskManager) AddPilot(p *pilot.Pilot) {
	tm.mu.Lock()
	tm.pilots = append(tm.pilots, p)
	pending := make([]*Task, 0, len(tm.overflow))
	for _, t := range tm.overflow {
		pending = append(pending, t)
	}
	for _, t := range pending {
		delete(tm.overflow, t.uid)
	}
	rt := tm.rt
	tm.mu.Unlock()
	// Drain deterministically: submission order (UIDs embed the session
	// sequence number), re-ordered by the router's own ranking when it has
	// one — capacity-fit drains fits-now tasks first, so the new pilot
	// starts real work instead of queueing a blocked head in front of it.
	sortTasks(pending)
	if ranker, ok := rt.(router.Ranker); ok && len(pending) > 1 {
		descs := make([]spec.TaskDescription, len(pending))
		for i, t := range pending {
			descs[i] = t.desc
		}
		// Accept the ranking only if it is a genuine permutation: an
		// out-of-range or duplicated index from a custom Ranker must not
		// panic the drain or dispatch a task twice while dropping another.
		ranked := make([]*Task, 0, len(pending))
		seen := make([]bool, len(pending))
		valid := true
		for _, i := range ranker.RankDrain(p, descs) {
			if i < 0 || i >= len(pending) || seen[i] {
				valid = false
				break
			}
			seen[i] = true
			ranked = append(ranked, pending[i])
		}
		if valid && len(ranked) == len(pending) {
			pending = ranked
		}
	}
	for _, t := range pending {
		// Ordered handoff: wait for each drained task to reach an agent
		// scheduler before dispatching the next, so the drain order is
		// also the scheduler arrival order — without it the per-task
		// dispatch goroutines race and the ranking (or the seed's
		// submission order) would only hold probabilistically.
		tm.redispatch(t, true)
	}
}

// RouterName returns the name of the active task→pilot router.
func (tm *TaskManager) RouterName() string {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.rt.Name()
}

// Submit routes and dispatches descriptions over the attached pilots,
// one at a time in order. On error it returns the successfully submitted
// prefix together with the error; descriptions after the failure are
// neither submitted nor accounted in any router state, so a retry of the
// remainder continues the task→pilot sequence unperturbed.
func (tm *TaskManager) Submit(ctx context.Context, descs ...spec.TaskDescription) ([]*Task, error) {
	tasks := make([]*Task, 0, len(descs))
	for _, d := range descs {
		t, err := tm.submitOne(ctx, d)
		if err != nil {
			return tasks, err
		}
		tasks = append(tasks, t)
	}
	return tasks, nil
}

// submitOne validates, routes and dispatches a single description.
// Validation runs before routing so a malformed description cannot
// advance the router's selection state, and a pilot that leaves ACTIVE
// between routing and dispatch triggers a re-route over the survivors
// rather than an error — only validation failures, routing rejections
// and capacity exhaustion surface to the caller.
func (tm *TaskManager) submitOne(ctx context.Context, d spec.TaskDescription) (*Task, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	for {
		tm.mu.Lock()
		if tm.closed {
			tm.mu.Unlock()
			return nil, ErrSessionClosed
		}
		if len(tm.pilots) == 0 {
			tm.mu.Unlock()
			return nil, errors.New("core: task manager has no pilots")
		}
		if d.UID == "" {
			tm.seq++
			d.UID = fmt.Sprintf("%s.task.%06d", tm.sess.uid, tm.seq)
		}
		if _, dup := tm.tasks[d.UID]; dup {
			tm.mu.Unlock()
			return nil, fmt.Errorf("core: duplicate task UID %s", d.UID)
		}
		p, err := tm.routeLocked(d)
		if err != nil {
			tm.mu.Unlock()
			return nil, err
		}
		t := &Task{tm: tm, uid: d.UID, desc: d, ctx: ctx, done: make(chan struct{})}
		tm.tasks[d.UID] = t
		tm.mu.Unlock()

		// Journal the description outside tm.mu (the writer's crash hook may
		// abandon the session, which takes tm.mu). A dispatch retry re-appends
		// it; replay skips the duplicate.
		tm.sess.journalAppend(journal.KindTask, journal.TaskBody{UID: d.UID, Desc: d})
		if _, err := tm.dispatch(t, p); err != nil {
			// The routed pilot left ACTIVE between routing and dispatch.
			// Seal and drop the handle (a concurrent Wait/Tasks snapshot
			// may already hold it), then retry: the state filter now
			// excludes the dead pilot. Terminal pilot states make the
			// retry count finite.
			t.finish(err)
			tm.mu.Lock()
			delete(tm.tasks, d.UID)
			tm.mu.Unlock()
			if pinned := d.Pilot != ""; pinned {
				return nil, err
			}
			continue
		}
		return t, nil
	}
}

// routeLocked picks the destination pilot for d: the pinned pilot when
// the description names one, the Router's choice over the currently
// active pilots otherwise. Callers hold tm.mu.
func (tm *TaskManager) routeLocked(d spec.TaskDescription) (*pilot.Pilot, error) {
	return pickPilot(tm.pilots, tm.rt, "task", d)
}

// pickPilot is the routing decision both session managers share: the
// pinned pilot when d names one (it must be ACTIVE), the router's choice
// over the ACTIVE subset of pilots otherwise. kind labels errors ("task"
// or "service"). Callers hold the owning manager's lock, which also
// serializes the router's per-selection state.
func pickPilot(pilots []*pilot.Pilot, rt router.Router, kind string, d spec.TaskDescription) (*pilot.Pilot, error) {
	if d.Pilot != "" {
		for _, p := range pilots {
			if p.UID() == d.Pilot {
				if p.State() != states.PilotActive {
					return nil, fmt.Errorf("core: %s %s pinned to pilot %s in state %s",
						kind, d.UID, d.Pilot, p.State())
				}
				return p, nil
			}
		}
		return nil, fmt.Errorf("core: %s %s pinned to unknown pilot %q", kind, d.UID, d.Pilot)
	}
	targets, live := activePilots(pilots)
	if len(live) == 0 {
		return nil, errors.New("core: no active pilots")
	}
	i, err := rt.Route(targets, d)
	if err != nil {
		return nil, err
	}
	return live[i], nil
}

// activePilots filters pilots to the ACTIVE subset, as router targets
// and as pilots (same order) — the one liveness filter every routing
// path shares.
func activePilots(pilots []*pilot.Pilot) ([]router.Target, []*pilot.Pilot) {
	targets := make([]router.Target, 0, len(pilots))
	live := make([]*pilot.Pilot, 0, len(pilots))
	for _, p := range pilots {
		if p.State() != states.PilotActive {
			continue
		}
		targets = append(targets, p)
		live = append(live, p)
	}
	return targets, live
}

// dispatch submits the task to p and starts its watcher. The binding is
// journaled before the submission: a crash in between replays as a task
// bound to a pilot that never heard of it, which Recover detects (no
// pilot-level handle under the UID) and re-dispatches.
func (tm *TaskManager) dispatch(t *Task, p *pilot.Pilot) (*pilot.Task, error) {
	tm.sess.journalAppend(journal.KindBind, journal.BindBody{Entity: "task", UID: t.uid, Pilot: p.UID()})
	pt, err := p.SubmitTask(t.ctx, t.desc)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.cur, t.p = pt, p
	t.mu.Unlock()
	go tm.watch(t, pt, p)
	return pt, nil
}

// watch follows one pilot-level task to a final state and settles or
// re-routes the logical task: DONE finishes it, a queued-at-shutdown
// failure (pilot.ErrPilotStopped, unpinned) re-enters routing, anything
// else fails it.
func (tm *TaskManager) watch(t *Task, pt *pilot.Task, p *pilot.Pilot) {
	// The pilot drives every task to a final state (context cancellation
	// and pilot shutdown are both failure paths), so this wait needs no
	// deadline of its own.
	_ = p.WaitTasks(context.Background(), pt.UID())
	if pt.State() == states.TaskDone {
		t.finish(nil)
		return
	}
	err := pt.Result().Err
	if errors.Is(err, pilot.ErrPilotStopped) && t.desc.Pilot == "" {
		tm.requeue(t)
		return
	}
	if err == nil {
		err = fmt.Errorf("core: task %s failed", t.uid)
	}
	t.finish(err)
}

// requeue re-routes a task whose pilot stopped before granting it
// resources: to another active pilot when one can take it, into the
// overflow pool when none is attached, or to failure when no attached
// pilot's shapes could ever fit it (shape-aware routers reject it the
// same way they would at submit). A pilot that dies between routing and
// dispatch just re-enters routing — terminal pilot states keep the
// retry count bounded by the number of attached pilots.
func (tm *TaskManager) requeue(t *Task) { tm.redispatch(t, false) }

// redispatch is requeue's body. With ordered set (the AddPilot drain), it
// additionally blocks until the dispatched task's request has reached the
// destination pilot's agent scheduler, so consecutive drain dispatches
// arrive in drain order.
func (tm *TaskManager) redispatch(t *Task, ordered bool) {
	t.mu.Lock()
	t.cur, t.p = nil, nil
	t.reroutes++
	t.mu.Unlock()

	for {
		tm.mu.Lock()
		if tm.closed {
			tm.mu.Unlock()
			t.finish(ErrSessionClosed)
			return
		}
		targets, live := activePilots(tm.pilots)
		if len(live) == 0 {
			tm.overflow[t.uid] = t
			tm.mu.Unlock()
			return
		}
		i, err := tm.rt.Route(targets, t.desc)
		tm.mu.Unlock()
		if err != nil {
			t.finish(err)
			return
		}
		p := live[i]
		pt, err := tm.dispatch(t, p)
		if err != nil {
			continue
		}
		if ordered {
			tm.awaitEnqueued(t, pt, p)
		}
		return
	}
}

// awaitEnqueued blocks until t's resource request has reached p's agent
// scheduler — the pilot task acks its enqueue (after staging, right when
// the scheduler accepts the request), so consecutive ordered dispatches
// arrive in drain order without polling wall-clock time. It also returns
// when t settles on a failure path that never reaches the scheduler or
// the pilot stops: both paths close their channel, so the select cannot
// stall the remaining drain.
func (tm *TaskManager) awaitEnqueued(t *Task, pt *pilot.Task, p *pilot.Pilot) {
	select {
	case <-pt.Enqueued():
	case <-t.done:
	case <-p.Stopped():
	}
}

// close fails every overflow-pooled task and stops further submissions.
func (tm *TaskManager) close() {
	tm.mu.Lock()
	tm.closed = true
	pending := make([]*Task, 0, len(tm.overflow))
	for uid, t := range tm.overflow {
		pending = append(pending, t)
		delete(tm.overflow, uid)
	}
	tm.mu.Unlock()
	for _, t := range pending {
		t.finish(ErrSessionClosed)
	}
}

// Wait blocks until the listed tasks reach a final state (following them
// across re-routes); with none listed it waits for every task submitted
// through this manager so far. It returns the first task failure, or the
// context error if ctx expires first.
func (tm *TaskManager) Wait(ctx context.Context, tasks ...*Task) error {
	if len(tasks) == 0 {
		tm.mu.Lock()
		tasks = make([]*Task, 0, len(tm.tasks))
		for _, t := range tm.tasks {
			tasks = append(tasks, t)
		}
		tm.mu.Unlock()
		sortTasks(tasks)
	}
	var firstErr error
	for _, t := range tasks {
		if t.tm != tm {
			return fmt.Errorf("core: task %s not owned by this manager", t.UID())
		}
		select {
		case <-t.done:
			if err := t.Err(); err != nil && firstErr == nil {
				firstErr = err
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return firstErr
}

// Tasks returns every task submitted through this manager, in submission
// order.
func (tm *TaskManager) Tasks() []*Task {
	tm.mu.Lock()
	out := make([]*Task, 0, len(tm.tasks))
	for _, t := range tm.tasks {
		out = append(out, t)
	}
	tm.mu.Unlock()
	sortTasks(out)
	return out
}

// Overflow reports how many tasks are parked in the session overflow
// pool awaiting an active pilot.
func (tm *TaskManager) Overflow() int {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return len(tm.overflow)
}

// sortTasks orders tasks by UID — submission order for manager-assigned
// UIDs, which embed the session sequence number.
func sortTasks(tasks []*Task) {
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].uid < tasks[j].uid })
}

// --- ServiceManager -----------------------------------------------------------

// ServiceManager submits service tasks across pilots and aggregates
// endpoint discovery over local pilots and remote registrations. Like the
// TaskManager, it binds work to pilots through the session's pluggable
// Router — a service is a task with raised priority, routed over the same
// pilot shape/snapshot probes — and it survives pilot churn: when the
// pilot hosting a service stops, the service is re-placed on a surviving
// pilot through the router, re-bootstrapped under its stable UID, and its
// endpoint atomically re-published in the session EndpointRegistry with a
// bumped generation, so registry-resolving clients follow it while the
// dead address is never handed out again. Services pinned to a pilot
// (ServiceDescription.Pilot) are never re-placed: the pilot's death
// surfaces as pilot.ErrPilotStopped, mirroring task semantics.
type ServiceManager struct {
	sess *Session
	reg  *service.EndpointRegistry

	mu       sync.Mutex
	pilots   []*pilot.Pilot
	rt       router.Router
	seq      int
	services map[string]*Service
	closed   bool
}

// Service is a session-level service handle: it follows one logical
// service across failure-driven re-placements. The pilot-level instance
// underneath may be replaced when a pilot dies, but the UID, description
// and completion channel stay.
type Service struct {
	sm   *ServiceManager
	uid  string
	desc spec.ServiceDescription

	mu           sync.Mutex
	inst         *service.Instance
	p            *pilot.Pilot
	swapped      chan struct{} // closed and re-made on every re-placement
	replacements int
	terminated   bool
	finished     bool
	err          error
	done         chan struct{}

	// Autoscaler state (see autoscale.go): replica instances spawned
	// under this logical UID, the replica UID sequence, the consecutive
	// below-threshold tick count (scale-down hysteresis), and the peak
	// serving-replica count observed. Mutated only by the handle's
	// autoscale loop; guarded by mu for the accessors.
	reps     []*replicaRef
	repSeq   int
	below    int
	peakReps int

	// Warm-standby state (see autoscale.go): pre-bootstrapped instances
	// held suspended in the registry, the standby UID sequence, and the
	// count of promotions (single-publish failovers). instUID is the
	// pilot-level UID of the current base instance — h.uid normally, the
	// promoted standby's <uid>.sN after a promotion, which Terminate and
	// the agent-facing paths must address the instance by.
	standbys   []*standbyRef
	sbSeq      int
	promotions int
	instUID    string
}

// UID returns the stable logical service UID — the key clients resolve
// through the session EndpointRegistry.
func (h *Service) UID() string { return h.uid }

// Description returns the submitted description (after defaulting).
func (h *Service) Description() spec.ServiceDescription { return h.desc }

// Instance returns the current pilot-level instance. It changes across
// re-placements and is nil for the instant between routing and dispatch;
// prefer the handle's own accessors, which tolerate that window.
func (h *Service) Instance() *service.Instance {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.inst
}

// State returns the current lifecycle state of the live instance (NEW
// while dispatch is still in flight).
func (h *Service) State() states.State {
	if inst := h.Instance(); inst != nil {
		return inst.State()
	}
	return states.ServiceNew
}

// Endpoint returns the service's current endpoint: the session registry's
// live, generation-stamped record when published, the instance's own view
// otherwise (zero before publication).
func (h *Service) Endpoint() proto.Endpoint {
	if ep, _, ok := h.sm.reg.Resolve(h.uid); ok {
		return ep
	}
	if inst := h.Instance(); inst != nil {
		return inst.Endpoint()
	}
	return proto.Endpoint{}
}

// Bootstrap returns the live instance's measured BT components. After a
// re-placement these are the new instance's — the service paid a fresh
// bootstrap on its new pilot.
func (h *Service) Bootstrap() metrics.Breakdown {
	if inst := h.Instance(); inst != nil {
		return inst.Bootstrap()
	}
	return metrics.Breakdown{}
}

// QueueDepth returns the logical service's request queue depth — queued
// plus executing, summed across the base instance and any serving
// replicas.
func (h *Service) QueueDepth() int {
	return h.Queued() + h.InFlight()
}

// Queued returns requests admitted but not yet executing, summed across
// the base instance and any serving replicas — the backlog signal the
// autoscaler watches.
func (h *Service) Queued() int {
	n := 0
	if inst := h.Instance(); inst != nil {
		n = inst.Queued()
	}
	h.mu.Lock()
	for _, r := range h.reps {
		if r.member && !r.draining {
			n += r.inst.Queued()
		}
	}
	h.mu.Unlock()
	return n
}

// InFlight returns requests currently executing, summed across the base
// instance and any serving replicas.
func (h *Service) InFlight() int {
	n := 0
	if inst := h.Instance(); inst != nil {
		n = inst.InFlight()
	}
	h.mu.Lock()
	for _, r := range h.reps {
		if r.member && !r.draining {
			n += r.inst.InFlight()
		}
	}
	h.mu.Unlock()
	return n
}

// Replicas returns the current serving-replica count: the base instance
// plus every autoscaled replica admitted to the balancing group (1 for
// unscaled services).
func (h *Service) Replicas() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 1
	for _, r := range h.reps {
		if r.member && !r.draining {
			n++
		}
	}
	return n
}

// PeakReplicas returns the highest serving-replica count the autoscaler
// reached over the handle's lifetime (1 for unscaled services).
func (h *Service) PeakReplicas() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.peakReps < 1 {
		return 1
	}
	return h.peakReps
}

// Kill injects a service-process crash into the live instance (failure
// injection for tests; the liveness probe detects it).
func (h *Service) Kill() {
	if inst := h.Instance(); inst != nil {
		inst.Kill()
	}
}

// Pilot returns the UID of the pilot currently hosting the service.
func (h *Service) Pilot() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.p == nil {
		return ""
	}
	return h.p.UID()
}

// Replacements counts how many times the session re-placed this service
// on a new pilot after its previous one stopped — cold failovers that
// paid a fresh bootstrap. Warm-standby promotions are counted separately
// by Promotions.
func (h *Service) Replacements() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.replacements
}

// Promotions counts how many times a failover was absorbed by promoting
// a warm standby: a single registry publish, no re-bootstrap.
func (h *Service) Promotions() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.promotions
}

// Standbys returns the number of warm standbys currently held ready for
// promotion (bootstrapped, ACTIVE, suspended in the registry).
func (h *Service) Standbys() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, sb := range h.standbys {
		if sb.held && !sb.inst.Final() {
			n++
		}
	}
	return n
}

// Done returns a channel closed when the logical service reaches a final
// state — including across re-placements, which the per-pilot instances
// underneath cannot express.
func (h *Service) Done() <-chan struct{} { return h.done }

// Err returns the service's final error (nil on graceful termination;
// undefined before Done() closes).
func (h *Service) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}

// finish seals the logical service exactly once.
func (h *Service) finish(err error) {
	h.mu.Lock()
	if h.finished {
		h.mu.Unlock()
		return
	}
	h.finished = true
	h.err = err
	h.mu.Unlock()
	close(h.done)
}

// WaitReady blocks until the service is ACTIVE (following it across
// re-placements: during a failover it waits for the replacement instead
// of surfacing the transient failure), or returns the final error when
// the service fails for good.
func (h *Service) WaitReady(ctx context.Context) error {
	for {
		h.mu.Lock()
		inst := h.inst
		finished, err := h.finished, h.err
		swapped := h.swapped
		h.mu.Unlock()
		if finished {
			if err == nil {
				err = fmt.Errorf("core: service %s reached a final state before ACTIVE", h.uid)
			}
			return err
		}
		if inst == nil {
			// dispatch in flight (handle observed through Get between
			// routing and submission): no instance to wait on yet — the
			// window is host-scheduling bound, so poll on real time
			select {
			case <-h.done:
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Millisecond):
			}
			continue
		}
		if inst.State() == states.ServiceActive {
			return nil
		}
		ch := inst.Changed()
		// re-check after registering the waiter (lost-wakeup race), then
		// wait on whichever happens first: a state transition, a
		// re-placement swap, or the handle settling.
		if inst.State() == states.ServiceActive {
			return nil
		}
		select {
		case <-ch:
		case <-swapped:
		case <-h.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Registry returns the session EndpointRegistry services publish into.
func (sm *ServiceManager) Registry() *service.EndpointRegistry { return sm.reg }

// mirrorPublish is the pilot publish hook's session half: it mirrors an
// endpoint publication into the session registry unless the publishing
// pilot is no longer the service's current host — a bootstrap straggling
// past its pilot's death must not overwrite the failover re-publication
// with a dead address. Services without a session handle (submitted
// directly to a pilot's agent manager) mirror unconditionally.
//
// Like the pilot-side stopped guard this is check-then-act: a straggler
// publishing in the instant between passing this check and the watcher
// re-pointing h.p is mirrored anyway, but it is then superseded by the
// failover re-publication's higher generation (resolvers that woke into
// the dead address retry into the newer one). Across sessions the
// registry's incarnation fence is airtight: the publication is stamped
// with the current session incarnation, so after a crash recovery a
// zombie publisher from the previous incarnation is rejected outright.
func (sm *ServiceManager) mirrorPublish(pilotUID string, ep proto.Endpoint) {
	if h, ok := sm.Get(ep.ServiceUID); ok {
		h.mu.Lock()
		cur := h.p
		h.mu.Unlock()
		if cur != nil && cur.UID() != pilotUID {
			return
		}
	}
	ep.Incarnation = sm.sess.Incarnation()
	_, _ = sm.reg.Publish(ep)
}

// RouterName returns the name of the active service→pilot router.
func (sm *ServiceManager) RouterName() string {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.rt.Name()
}

// AddPilot attaches a pilot to the service manager.
func (sm *ServiceManager) AddPilot(p *pilot.Pilot) {
	sm.mu.Lock()
	sm.pilots = append(sm.pilots, p)
	sm.mu.Unlock()
}

// Submit routes one service description to a pilot and starts its
// bootstrap. Routing mirrors the TaskManager: a description pinned to a
// pilot (ServiceDescription.Pilot) goes exactly there or fails, anything
// else is the Router's decision over the live pilot snapshots — made with
// the service's raised priority already applied, since that is what the
// agent scheduler will see.
func (sm *ServiceManager) Submit(d spec.ServiceDescription) (*Service, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	for {
		sm.mu.Lock()
		if sm.closed {
			sm.mu.Unlock()
			return nil, ErrSessionClosed
		}
		if len(sm.pilots) == 0 {
			sm.mu.Unlock()
			return nil, errors.New("core: service manager has no pilots")
		}
		if d.UID == "" {
			sm.seq++
			d.UID = fmt.Sprintf("%s.svc.%04d", sm.sess.uid, sm.seq)
		}
		if d.Priority == 0 {
			d.Priority = spec.ServicePriority
		}
		if d.MaxReplicas > 1 || d.WarmStandbys > 0 {
			applyScaleDefaults(&d)
		}
		if _, dup := sm.services[d.UID]; dup {
			sm.mu.Unlock()
			return nil, fmt.Errorf("core: duplicate service UID %s", d.UID)
		}
		p, err := sm.routeLocked(d)
		if err != nil {
			sm.mu.Unlock()
			return nil, err
		}
		// h.p is set before the handle becomes reachable (and before the
		// bootstrap can publish), so the publish mirror can check the
		// publishing incarnation; h.inst stays nil until dispatch returns
		// and every accessor tolerates that window.
		h := &Service{
			sm: sm, uid: d.UID, desc: d, p: p,
			swapped: make(chan struct{}), done: make(chan struct{}),
		}
		sm.services[d.UID] = h
		sm.mu.Unlock()

		// Journal description and binding outside sm.mu (the writer's crash
		// hook may abandon the session, which takes sm.mu), in that order and
		// before the dispatch: a crash in between replays as a service bound
		// to a pilot that never heard of it, which Recover re-places.
		sm.sess.journalAppend(journal.KindService, journal.ServiceBody{UID: d.UID, Desc: d})
		sm.sess.journalAppend(journal.KindBind, journal.BindBody{Entity: "service", UID: d.UID, Pilot: p.UID()})
		inst, err := p.Services().Submit(d)
		if err != nil {
			sm.mu.Lock()
			delete(sm.services, d.UID)
			sm.mu.Unlock()
			// The routed pilot left ACTIVE between routing and dispatch:
			// retry against the survivors, exactly like task submission.
			if p.State() != states.PilotActive && d.Pilot == "" {
				continue
			}
			return nil, err
		}
		h.mu.Lock()
		h.inst = inst
		h.mu.Unlock()
		go sm.watch(h)
		if d.WarmStandbys > 0 {
			sm.fillStandbys(h)
		}
		if d.MaxReplicas > 1 || d.WarmStandbys > 0 {
			// Standby-only services run the autoscaler too: its tick
			// reconciles dead standbys, refills the pool, and publishes the
			// load reports balancing clients steer by (the scaling decision
			// itself stays gated on MaxReplicas > 1).
			sm.startAutoscaler(h)
		}
		return h, nil
	}
}

// routeLocked picks the hosting pilot for d: the pinned pilot when the
// description names one, the Router's choice over the active pilots
// otherwise (routers see the embedded TaskDescription — a service is a
// task with raised priority). Callers hold sm.mu.
func (sm *ServiceManager) routeLocked(d spec.ServiceDescription) (*pilot.Pilot, error) {
	return pickPilot(sm.pilots, sm.rt, "service", d.TaskDescription)
}

// watch follows one logical service across instances (endpoint
// publication itself rides the pilot's OnServicePublish hook, ordered
// before ACTIVE): on the hosting pilot stopping it re-places the service
// (or fails a pinned one with pilot.ErrPilotStopped); instance failures
// with a healthy pilot — bad model, liveness kill — settle the handle.
//
// The settle-vs-replace decision keys on pilot liveness plus the
// session's terminate intent: a pilot shutdown tears ACTIVE services
// down gracefully (nil-error DONE), so a nil-error final state cannot
// mean "deliberately stopped" by itself. Terminate session-managed
// services through ServiceManager.Terminate — a direct agent-level
// Terminate that races a pilot shutdown is indistinguishable from the
// shutdown's own teardown and will be re-placed.
func (sm *ServiceManager) watch(h *Service) {
	for {
		h.mu.Lock()
		inst, p := h.inst, h.p
		h.mu.Unlock()

		pilotDead := false
		for !inst.Final() {
			ch := inst.Changed()
			// re-check after registering the waiter (lost-wakeup race)
			if inst.Final() {
				break
			}
			select {
			case <-ch:
			case <-p.Stopped():
				pilotDead = true
			}
			if pilotDead {
				break
			}
		}
		if !pilotDead {
			// The instance settled; a concurrent pilot shutdown may have
			// been the cause (its stop channel closes before the service
			// teardown starts, so this observation is ordered).
			select {
			case <-p.Stopped():
				pilotDead = true
			default:
			}
		}
		h.mu.Lock()
		terminated := h.terminated
		h.mu.Unlock()

		if terminated || !pilotDead {
			// The handle is settling for good (session Terminate, an
			// agent-level graceful termination via the control channel, or
			// an own failure on a healthy pilot): tombstone the registry
			// entry unconditionally — idempotent for the Terminate path —
			// so parked resolvers fail with ErrWithdrawn instead of
			// waiting forever for a re-publication.
			sm.reg.Withdraw(h.uid)
			h.finish(inst.Err())
			return
		}
		if h.desc.Pilot != "" {
			// Pinned services mirror pinned-task semantics: surface the
			// pilot's death instead of migrating.
			sm.reg.Withdraw(h.uid)
			h.finish(fmt.Errorf("core: service %s pinned to pilot %s: %w",
				h.uid, h.desc.Pilot, pilot.ErrPilotStopped))
			return
		}
		// A session closing down tears its pilots down too; a watcher that
		// observes its pilot's death in that window must settle instead of
		// racing Close for the survivors (the re-placed instance would be
		// orphaned on a pilot the session no longer manages).
		sm.mu.Lock()
		closed := sm.closed
		sm.mu.Unlock()
		if closed {
			sm.reg.Withdraw(h.uid)
			h.finish(ErrSessionClosed)
			return
		}
		// Failure-driven re-placement: suspend resolution (clients park in
		// AwaitNewer instead of being handed the dead address), then prefer
		// promoting a warm standby — the instance is already bootstrapped
		// and ACTIVE on a surviving pilot, so failover is one registry
		// publish instead of a fresh boot/launch/publish cycle. Only when
		// no standby survives does the watcher fall back to routing the
		// description over the survivors and re-bootstrapping.
		sm.reg.Suspend(h.uid)
		if sm.promoteStandby(h) {
			continue
		}
		newInst, newP, err := sm.replace(h)
		if err != nil {
			sm.reg.Withdraw(h.uid)
			h.finish(err)
			return
		}
		h.mu.Lock()
		h.inst, h.p = newInst, newP
		h.instUID = h.uid
		h.replacements++
		close(h.swapped)
		h.swapped = make(chan struct{})
		h.mu.Unlock()
	}
}

// replace routes h's description onto a surviving active pilot and
// re-submits it under the stable UID. A pilot dying between routing and
// dispatch re-enters routing; terminal pilot states keep the retry count
// bounded.
func (sm *ServiceManager) replace(h *Service) (*service.Instance, *pilot.Pilot, error) {
	d := h.desc
	d.UID = h.uid
	for {
		sm.mu.Lock()
		if sm.closed {
			sm.mu.Unlock()
			return nil, nil, ErrSessionClosed
		}
		p, err := sm.routeLocked(d)
		sm.mu.Unlock()
		if err != nil {
			return nil, nil, fmt.Errorf("core: service %s lost its pilot: %w (%v)",
				h.uid, pilot.ErrPilotStopped, err)
		}
		// Point the handle at the new incarnation before its bootstrap can
		// publish, so the publish mirror accepts the re-publication (and
		// rejects any straggler from the dead pilot).
		h.mu.Lock()
		h.p = p
		h.mu.Unlock()
		sm.sess.journalAppend(journal.KindBind, journal.BindBody{Entity: "service", UID: d.UID, Pilot: p.UID()})
		inst, err := p.Services().Submit(d)
		if err != nil {
			if p.State() != states.PilotActive {
				continue
			}
			return nil, nil, err
		}
		// Close may have slipped in between the closed check and the
		// dispatch: the re-placed instance would outlive the session on a
		// pilot it no longer manages. Undo best-effort and settle — the
		// watcher loop is the only caller, and it treats ErrSessionClosed
		// as final.
		sm.mu.Lock()
		closed := sm.closed
		sm.mu.Unlock()
		if closed {
			_ = p.Services().Terminate(d.UID, false)
			return nil, nil, ErrSessionClosed
		}
		return inst, p, nil
	}
}

// WaitReady blocks until every listed service is ACTIVE (or any fails for
// good). During a failover it waits for the re-placed instance rather
// than surfacing the transient pilot loss.
func (sm *ServiceManager) WaitReady(ctx context.Context, uids ...string) error {
	for _, uid := range uids {
		h, ok := sm.Get(uid)
		if !ok {
			return fmt.Errorf("core: service %s not owned by this manager", uid)
		}
		if err := h.WaitReady(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Terminate stops a managed service and withdraws its endpoint from the
// session registry (parked resolvers fail with service.ErrWithdrawn
// instead of waiting for a re-publication that will never come).
//
// Terminate targets the service's current incarnation: called while a
// failover re-placement is in flight (the replacement not yet ACTIVE),
// it returns service.ErrNotActive and the re-placement proceeds — wait
// for readiness (WaitReady) and retry to stop the migrated instance.
func (sm *ServiceManager) Terminate(uid string, drain bool) error {
	h, ok := sm.Get(uid)
	if !ok {
		return fmt.Errorf("core: service %s not owned by this manager", uid)
	}
	h.mu.Lock()
	if h.finished {
		err := h.err
		h.mu.Unlock()
		if err != nil {
			return fmt.Errorf("%w: service %s already settled: %v", service.ErrNotActive, uid, err)
		}
		return fmt.Errorf("%w: service %s already terminated", service.ErrNotActive, uid)
	}
	h.terminated = true
	p := h.p
	// After a warm-standby promotion the pilot-level instance keeps its
	// standby UID; the agent manager must be addressed by that, not the
	// logical UID.
	instUID := h.instUID
	if instUID == "" {
		instUID = h.uid
	}
	h.mu.Unlock()
	if err := p.Services().Terminate(instUID, drain); err != nil {
		h.mu.Lock()
		finishedMeanwhile := h.finished
		h.terminated = false
		h.mu.Unlock()
		if finishedMeanwhile {
			// The hosting pilot died while we were terminating and the
			// watcher, observing the terminate intent, settled the handle
			// instead of re-placing it. The service is down — which is
			// exactly what Terminate asked for — so report success rather
			// than leaking the lost race as an error.
			sm.reg.Withdraw(uid)
			return nil
		}
		if errors.Is(err, service.ErrUnknownService) {
			// A failover re-placement is in flight: h.p already points at
			// the new pilot but its agent manager has not registered the
			// UID yet. Surface the documented not-active contract so
			// callers retry after WaitReady instead of treating it as a
			// hard failure.
			return fmt.Errorf("%w: service %s re-placement in flight (%v)",
				service.ErrNotActive, uid, err)
		}
		return err
	}
	sm.reg.Withdraw(uid)
	return nil
}

// Get returns a managed service handle.
func (sm *ServiceManager) Get(uid string) (*Service, bool) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	h, ok := sm.services[uid]
	return h, ok
}

// Services returns every managed service handle, sorted by UID —
// submission order for manager-assigned UIDs, which embed the session
// sequence number (caller-supplied UIDs sort lexicographically).
func (sm *ServiceManager) Services() []*Service {
	sm.mu.Lock()
	out := make([]*Service, 0, len(sm.services))
	for _, h := range sm.services {
		out = append(out, h)
	}
	sm.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].uid < out[j].uid })
	return out
}

// Endpoints returns every known endpoint for model (local pilots plus
// remote registrations), in deterministic order.
func (sm *ServiceManager) Endpoints(model string) []proto.Endpoint {
	sm.mu.Lock()
	pilots := append([]*pilot.Pilot{}, sm.pilots...)
	sm.mu.Unlock()
	var out []proto.Endpoint
	for _, p := range pilots {
		out = append(out, p.Registry().ByModel(model)...)
	}
	out = append(out, sm.sess.RemoteEndpoints(model)...)
	sortEndpoints(out)
	return out
}

// QueueDepth reports a managed service's live queue depth (remote
// endpoints report 0: their depth is not observable from the client side).
func (sm *ServiceManager) QueueDepth(uid string) int {
	if h, ok := sm.Get(uid); ok {
		return h.QueueDepth()
	}
	return 0
}

// close stops re-placements: handles losing their pilot after session
// close settle with ErrSessionClosed instead of chasing dying pilots.
func (sm *ServiceManager) close() {
	sm.mu.Lock()
	sm.closed = true
	sm.mu.Unlock()
}

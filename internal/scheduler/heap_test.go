package scheduler

import (
	"sort"
	"testing"

	"repro/internal/rng"
)

// verifyHeapShape asserts the binary-heap invariant: no element sorts
// strictly before its parent under (priority desc, seq asc).
func verifyHeapShape(t *testing.T, h *waitHeap) {
	t.Helper()
	for i := 1; i < h.len(); i++ {
		if parent := (i - 1) / 2; h.less(i, parent) {
			t.Fatalf("heap shape violated: h[%d] (prio %d, seq %d) sorts before its parent h[%d] (prio %d, seq %d)",
				i, h.items[i].req.Priority, h.items[i].seq, parent, h.items[parent].req.Priority, h.items[parent].seq)
		}
	}
}

// verifyIndexes asserts the backfill-scan augmentations: the seq→position
// map points at the right slots, the priority list is strictly
// descending, and the buckets hold exactly the waiting seqs of their
// priority in ascending order.
func verifyIndexes(t *testing.T, h *waitHeap) {
	t.Helper()
	if len(h.pos) != h.len() {
		t.Fatalf("pos map has %d entries for %d items", len(h.pos), h.len())
	}
	for i, it := range h.items {
		if h.pos[it.seq] != i {
			t.Fatalf("pos[%d] = %d, item sits at %d", it.seq, h.pos[it.seq], i)
		}
	}
	want := map[int][]uint64{}
	for _, it := range h.items {
		want[it.req.Priority] = append(want[it.req.Priority], it.seq)
	}
	if len(h.prios) != len(want) || len(h.buckets) != len(want) {
		t.Fatalf("%d prios / %d buckets for %d distinct priorities", len(h.prios), len(h.buckets), len(want))
	}
	for i, prio := range h.prios {
		if i > 0 && h.prios[i-1] <= prio {
			t.Fatalf("prios not strictly descending: %v", h.prios)
		}
		got := h.buckets[prio]
		exp := want[prio]
		sort.Slice(exp, func(a, b int) bool { return exp[a] < exp[b] })
		if len(got) != len(exp) {
			t.Fatalf("bucket %d has %d seqs, want %d", prio, len(got), len(exp))
		}
		for j := range got {
			if got[j] != exp[j] {
				t.Fatalf("bucket %d = %v, want %v", prio, got, exp)
			}
		}
	}
}

// strictSort orders items the way the scheduler must grant them:
// priority descending, submission sequence ascending.
func strictSort(items []waitItem) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].req.Priority != items[j].req.Priority {
			return items[i].req.Priority > items[j].req.Priority
		}
		return items[i].seq < items[j].seq
	})
}

// TestWaitHeapProperty drives random interleavings of push, head pop
// (removeAt(0)) and arbitrary-position removeAt — the operation mix the
// backfill policies produce — and asserts after every step that the
// heap shape and the bucket/position indexes hold, that removeAt
// returned exactly the item that sat at the requested position, and that
// the head is always the strict-order minimum of the reference multiset.
func TestWaitHeapProperty(t *testing.T) {
	src := rng.New(31)
	for trial := 0; trial < 40; trial++ {
		h := newWaitHeap()
		var ref []waitItem
		seq := uint64(0)
		removeRef := func(it waitItem) {
			for i := range ref {
				if ref[i].seq == it.seq {
					ref = append(ref[:i], ref[i+1:]...)
					return
				}
			}
			t.Fatalf("trial %d: removeAt returned seq %d not present in reference", trial, it.seq)
		}
		for step := 0; step < 150; step++ {
			switch {
			case h.len() == 0 || src.Intn(5) > 1: // push-biased
				seq++
				it := waitItem{req: Request{Priority: src.Intn(4) * 10}, seq: seq}
				h.push(it)
				ref = append(ref, it)
			case src.Intn(2) == 0: // head pop
				want := h.items[0]
				if got := h.removeAt(0); got != want {
					t.Fatalf("trial %d step %d: removeAt(0) = %+v, head was %+v", trial, step, got, want)
				}
				removeRef(want)
			default: // remove from an arbitrary backing-array position
				pos := src.Intn(h.len())
				want := h.items[pos]
				if got := h.removeAt(pos); got != want {
					t.Fatalf("trial %d step %d: removeAt(%d) = %+v, slot held %+v", trial, step, pos, got, want)
				}
				removeRef(want)
			}
			if h.len() != len(ref) {
				t.Fatalf("trial %d step %d: heap has %d items, reference %d", trial, step, h.len(), len(ref))
			}
			verifyHeapShape(t, &h)
			verifyIndexes(t, &h)
			if h.len() > 0 {
				want := append([]waitItem{}, ref...)
				strictSort(want)
				if h.items[0] != want[0] {
					t.Fatalf("trial %d step %d: head = %+v, strict order wants %+v", trial, step, h.items[0], want[0])
				}
			}
		}
		// drain through the head: items must come out in exactly
		// (priority desc, seq asc) order
		want := append([]waitItem{}, ref...)
		strictSort(want)
		for i, w := range want {
			got := h.removeAt(0)
			if got != w {
				t.Fatalf("trial %d: drain position %d = (prio %d, seq %d), want (prio %d, seq %d)",
					trial, i, got.req.Priority, got.seq, w.req.Priority, w.seq)
			}
			verifyHeapShape(t, &h)
			verifyIndexes(t, &h)
		}
		if h.len() != 0 {
			t.Fatalf("trial %d: %d items left after drain", trial, h.len())
		}
	}
}

// TestWaitHeapFirstFitMatchesArgminScan pins the backfill-scan
// equivalence: for random pools and random fit predicates, firstFit
// returns exactly the position the pre-index policy scan found — the
// argmin under Before over all fitting non-head positions.
func TestWaitHeapFirstFitMatchesArgminScan(t *testing.T) {
	src := rng.New(47)
	for trial := 0; trial < 200; trial++ {
		h := newWaitHeap()
		n := 1 + src.Intn(40)
		fit := make(map[uint64]bool, n)
		for i := 0; i < n; i++ {
			seq := uint64(i + 1)
			h.push(waitItem{req: Request{Priority: src.Intn(5) * 10}, seq: seq})
			fit[seq] = src.Intn(3) == 0
		}
		fits := func(pos int) bool { return fit[h.items[pos].seq] }

		// the replaced scan: argmin under less over fitting positions 1..n-1
		want := -1
		for i := 1; i < h.len(); i++ {
			if !fits(i) {
				continue
			}
			if want < 0 || h.less(i, want) {
				want = i
			}
		}
		if got := h.firstFit(fits); got != want {
			t.Fatalf("trial %d: firstFit = %d, argmin scan = %d", trial, got, want)
		}
	}
}

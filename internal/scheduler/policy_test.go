package scheduler

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/simtime"
)

func TestPolicyByName(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", PolicyStrict},
		{"strict", PolicyStrict},
		{"fifo", PolicyStrict},
		{"backfill", PolicyBackfill},
		{"best-fit", PolicyBestFit},
		{"bestfit", PolicyBestFit},
	}
	for _, c := range cases {
		p, err := PolicyByName(c.in)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", c.in, err)
		}
		if p.Name() != c.want {
			t.Fatalf("PolicyByName(%q).Name() = %q, want %q", c.in, p.Name(), c.want)
		}
	}
	if _, err := PolicyByName("round-robin"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	// Parameterized backfill names.
	p, err := PolicyByName("backfill:k=3,t=2m")
	if err != nil {
		t.Fatal(err)
	}
	if cfg := p.(*backfillPolicy).cfg; cfg.MaxBypass != 3 || cfg.MaxDelay != 2*time.Minute {
		t.Fatalf("parsed config = %+v", cfg)
	}
	p, err = PolicyByName("best-fit:k=-1,t=-1")
	if err != nil {
		t.Fatal(err)
	}
	if cfg := p.(*backfillPolicy).cfg; cfg.MaxBypass != -1 || cfg.MaxDelay != -1 {
		t.Fatalf("parsed disabled bounds = %+v", cfg)
	}
	for _, bad := range []string{"strict:k=1", "backfill:k=x", "backfill:t=soon", "backfill:q=1", "backfill:k"} {
		if _, err := PolicyByName(bad); err == nil {
			t.Fatalf("PolicyByName(%q) accepted", bad)
		}
	}
	// Backfill policies are stateful: instances must be fresh per call.
	a, _ := PolicyByName(PolicyBackfill)
	b, _ := PolicyByName(PolicyBackfill)
	if a == b {
		t.Fatal("PolicyByName returned a shared backfill instance")
	}
}

func TestPolicyDefaultIsStrict(t *testing.T) {
	s := New(nodes(1, 4, 0), func(Placement) {})
	defer s.Close()
	if got := s.Policy().Name(); got != PolicyStrict {
		t.Fatalf("default policy = %q, want %q", got, PolicyStrict)
	}
}

// TestPolicyStrictKeepsHeadOfLineBlocking pins that an explicitly selected
// strict policy behaves like the default: a small low-priority request
// never jumps a blocked high-priority head.
func TestPolicyStrictKeepsHeadOfLineBlocking(t *testing.T) {
	c := newCollector()
	s := New(nodes(1, 4, 0), c.fn, WithPolicy(Strict()))
	defer s.Close()
	_ = s.Submit(Request{UID: "filler", Cores: 3})
	c.waitN(t, 1)
	_ = s.Submit(Request{UID: "big-service", Cores: 4, Priority: 100})
	_ = s.Submit(Request{UID: "small-task", Cores: 1, Priority: 0})
	time.Sleep(50 * time.Millisecond)
	c.mu.Lock()
	n := len(c.placed)
	c.mu.Unlock()
	if n != 1 {
		t.Fatalf("%d placements under strict, want 1", n)
	}
}

// TestPolicyBackfillBypassesBlockedHead is the counterpart: with backfill,
// the small task is granted from the capacity the blocked head cannot use,
// and the head is still granted first once it fits.
func TestPolicyBackfillBypassesBlockedHead(t *testing.T) {
	c := newCollector()
	s := New(nodes(1, 4, 0), c.fn, WithPolicy(Backfill(BackfillConfig{})))
	defer s.Close()
	_ = s.Submit(Request{UID: "filler", Cores: 3})
	filler := c.waitN(t, 1)[0]
	_ = s.Submit(Request{UID: "big-service", Cores: 4, Priority: 100})
	_ = s.Submit(Request{UID: "small-task", Cores: 1, Priority: 0})
	got := c.waitN(t, 2)
	if got[1].Req.UID != "small-task" {
		t.Fatalf("backfilled %q, want small-task", got[1].Req.UID)
	}
	// Freeing everything must grant the head before anything else.
	_ = s.Submit(Request{UID: "late-task", Cores: 1, Priority: 0})
	s.Release(got[1].Alloc)
	s.Release(filler.Alloc)
	got = c.waitN(t, 3)
	if got[2].Req.UID != "big-service" {
		t.Fatalf("post-release grant = %s, want big-service", got[2].Req.UID)
	}
	s.Release(got[2].Alloc)
	if got = c.waitN(t, 4); got[3].Req.UID != "late-task" {
		t.Fatalf("final grant = %s, want late-task", got[3].Req.UID)
	}
}

// TestPolicyBackfillPrefersHighestPriorityFitting: backfill is not "first
// fitting wins" — among the requests that fit, strict (priority, FIFO)
// order still decides.
func TestPolicyBackfillPrefersHighestPriorityFitting(t *testing.T) {
	c := newCollector()
	s := New(nodes(1, 4, 0), c.fn, WithPolicy(Backfill(BackfillConfig{})))
	defer s.Close()
	_ = s.Submit(Request{UID: "filler", Cores: 3})
	c.waitN(t, 1)
	_ = s.Submit(Request{UID: "blocked-head", Cores: 4, Priority: 100})
	_ = s.Submit(Request{UID: "low-early", Cores: 1, Priority: 0})
	_ = s.Submit(Request{UID: "mid-late", Cores: 1, Priority: 50})
	got := c.waitN(t, 2)
	if got[1].Req.UID != "mid-late" {
		t.Fatalf("first backfill grant = %q, want the higher-priority mid-late", got[1].Req.UID)
	}
	s.Release(got[1].Alloc)
	if got = c.waitN(t, 3); got[2].Req.UID != "low-early" {
		t.Fatalf("second backfill grant = %q, want low-early", got[2].Req.UID)
	}
}

// TestPolicyBackfillStarvationBound is the property test of the ISSUE's
// acceptance criteria: over randomized streams of fitting small tasks,
// backfill never bypasses one blocked head more than the configured K,
// and the head is granted as soon as its demand fits.
func TestPolicyBackfillStarvationBound(t *testing.T) {
	src := rng.New(7)
	for trial := 0; trial < 20; trial++ {
		maxBypass := 1 + src.Intn(12)
		nSmall := 1 + src.Intn(3*maxBypass)
		func() {
			c := newCollector()
			s := New(nodes(1, 8, 0), c.fn, WithPolicy(Backfill(BackfillConfig{
				MaxBypass: maxBypass,
				MaxDelay:  -1, // isolate the count bound
			})))
			defer s.Close()
			_ = s.Submit(Request{UID: "hold", Cores: 1})
			hold := c.waitN(t, 1)[0]
			_ = s.Submit(Request{UID: "big", Cores: 8, Priority: 100})
			for i := 0; i < nSmall; i++ {
				_ = s.Submit(Request{UID: fmt.Sprintf("small-%03d", i), Cores: 1 + src.Intn(7)})
			}
			// Release each backfilled small as it lands so capacity keeps
			// returning: an unbounded policy would drain every small.
			want := min(nSmall, maxBypass)
			for seen := 1; seen < 1+want; seen++ {
				p := c.waitN(t, seen+1)[seen]
				if p.Req.UID == "big" {
					t.Fatalf("trial %d: big granted while blocked", trial)
				}
				s.Release(p.Alloc)
			}
			// The bound must now be in force: no further smalls sneak by.
			time.Sleep(20 * time.Millisecond)
			c.mu.Lock()
			n := len(c.placed)
			c.mu.Unlock()
			if n != 1+want {
				t.Fatalf("trial %d: %d grants while head blocked, starvation bound K=%d (smalls=%d)",
					trial, n-1, maxBypass, nSmall)
			}
			// Unblock: the head must be granted before the remaining smalls.
			s.Release(hold.Alloc)
			got := c.waitN(t, 2+want)
			if got[1+want].Req.UID != "big" {
				t.Fatalf("trial %d: post-release grant = %q, want big", trial, got[1+want].Req.UID)
			}
			s.Release(got[1+want].Alloc)
			// Drain the leftover smalls one release at a time: later ones
			// only fit once earlier ones give their cores back.
			for seen := 2 + want; seen < 2+nSmall; seen++ {
				s.Release(c.waitN(t, seen+1)[seen].Alloc)
			}
		}()
	}
}

// TestPolicyBackfillBoundSurvivesHeadChurn pins the per-request nature of
// the starvation bound: when a blocked head with an exhausted bypass
// budget is temporarily displaced by a higher-priority arrival and then
// returns to the head, it must NOT receive a fresh budget — otherwise a
// steady trickle of services plus small tasks could starve it forever.
func TestPolicyBackfillBoundSurvivesHeadChurn(t *testing.T) {
	c := newCollector()
	s := New(nodes(1, 8, 0), c.fn, WithPolicy(Backfill(BackfillConfig{
		MaxBypass: 2,
		MaxDelay:  -1,
	})))
	defer s.Close()
	_ = s.Submit(Request{UID: "hold", Cores: 1})
	hold := c.waitN(t, 1)[0]
	_ = s.Submit(Request{UID: "big", Cores: 8, Priority: 50}) // blocked head
	// Exhaust big's bypass budget (K=2).
	_ = s.Submit(Request{UID: "bypass-0", Cores: 1})
	s.Release(c.waitN(t, 2)[1].Alloc)
	_ = s.Submit(Request{UID: "bypass-1", Cores: 1})
	s.Release(c.waitN(t, 3)[2].Alloc)
	// Head churn: a higher-priority request displaces big and is granted.
	_ = s.Submit(Request{UID: "urgent", Cores: 7, Priority: 100})
	urgent := c.waitN(t, 4)[3]
	if urgent.Req.UID != "urgent" {
		t.Fatalf("grant 3 = %q, want urgent", urgent.Req.UID)
	}
	s.Release(urgent.Alloc)
	// big is back at the head with its budget spent: no more bypasses.
	_ = s.Submit(Request{UID: "bypass-2", Cores: 1})
	time.Sleep(20 * time.Millisecond)
	c.mu.Lock()
	n := len(c.placed)
	c.mu.Unlock()
	if n != 4 {
		t.Fatalf("%d grants after head churn, want 4: big's bypass budget must stay exhausted", n)
	}
	// Unblocking still grants big first, then the waiting small.
	s.Release(hold.Alloc)
	got := c.waitN(t, 5)
	if got[4].Req.UID != "big" {
		t.Fatalf("post-release grant = %q, want big", got[4].Req.UID)
	}
	s.Release(got[4].Alloc)
	if got = c.waitN(t, 6); got[5].Req.UID != "bypass-2" {
		t.Fatalf("final grant = %q, want bypass-2", got[5].Req.UID)
	}
}

// TestPolicyBackfillTimeBound exercises T on a virtual clock: once the
// head has been blocked longer than MaxDelay of simulated time, backfill
// suspends even though the bypass count is far from exhausted.
func TestPolicyBackfillTimeBound(t *testing.T) {
	vclock := simtime.NewVirtual(time.Date(2025, 3, 17, 0, 0, 0, 0, time.UTC))
	c := newCollector()
	s := New(nodes(1, 4, 0), c.fn, WithPolicy(Backfill(BackfillConfig{
		MaxBypass: -1, // isolate the time bound
		MaxDelay:  10 * time.Second,
	})), WithClock(vclock))
	defer s.Close()
	_ = s.Submit(Request{UID: "filler", Cores: 3})
	c.waitN(t, 1)
	_ = s.Submit(Request{UID: "big", Cores: 4, Priority: 100}) // arms blockedSince
	_ = s.Submit(Request{UID: "small-0", Cores: 1})
	first := c.waitN(t, 2)[1]
	if first.Req.UID != "small-0" {
		t.Fatalf("grant inside the window = %q", first.Req.UID)
	}
	s.Release(first.Alloc)
	vclock.Advance(11 * time.Second)
	_ = s.Submit(Request{UID: "small-1", Cores: 1})
	time.Sleep(20 * time.Millisecond)
	c.mu.Lock()
	n := len(c.placed)
	c.mu.Unlock()
	if n != 2 {
		t.Fatalf("%d grants after T elapsed, want 2 (backfill suspended)", n)
	}
}

// TestPolicyBestFitReducesFragmentation: on a heterogeneous pool, best-fit
// packs a small request onto the small node so a following large request
// still fits the large node — where first-fit fragments it.
func TestPolicyBestFitReducesFragmentation(t *testing.T) {
	hetero := func() []*platform.Node {
		return []*platform.Node{
			platform.NewNode("large", platform.NodeSpec{Cores: 64, GPUs: 0, MemGB: 256}),
			platform.NewNode("small", platform.NodeSpec{Cores: 8, GPUs: 0, MemGB: 32}),
		}
	}

	// Best-fit: the 4-core task lands on "small"; the 64-core task fits.
	c := newCollector()
	s := New(hetero(), c.fn, WithPolicy(BestFit(BackfillConfig{})))
	_ = s.Submit(Request{UID: "small-task", Cores: 4})
	_ = s.Submit(Request{UID: "large-task", Cores: 64})
	got := c.waitN(t, 2)
	if node := got[0].Alloc.Node().Name(); node != "small" {
		t.Fatalf("best-fit placed small-task on %q, want the small node", node)
	}
	if got[1].Req.UID != "large-task" || got[1].Alloc.Node().Name() != "large" {
		t.Fatalf("large-task not granted on the large node: %+v", got[1].Req)
	}
	s.Close()

	// First-fit control: the 4-core task fragments the large node and the
	// 64-core task is stuck waiting.
	c = newCollector()
	s = New(hetero(), c.fn, WithPolicy(Strict()))
	defer s.Close()
	_ = s.Submit(Request{UID: "small-task", Cores: 4})
	_ = s.Submit(Request{UID: "large-task", Cores: 64})
	got = c.waitN(t, 1)
	if node := got[0].Alloc.Node().Name(); node != "large" {
		t.Fatalf("first-fit placed small-task on %q, want the large node", node)
	}
	time.Sleep(20 * time.Millisecond)
	if w := s.Waiting(); w != 1 {
		t.Fatalf("first-fit left %d waiting, want the fragmented large-task", w)
	}
}

// TestPolicyBestFitTieBreaksLikeFirstFit: equal residuals resolve to the
// lowest node index, so on homogeneous pools best-fit stays deterministic
// and matches first-fit.
func TestPolicyBestFitTieBreaksLikeFirstFit(t *testing.T) {
	c := newCollector()
	s := New(nodes(4, 8, 0), c.fn, WithPolicy(BestFit(BackfillConfig{})))
	defer s.Close()
	for i := 0; i < 4; i++ {
		_ = s.Submit(Request{UID: fmt.Sprintf("t%d", i), Cores: 8})
	}
	for i, p := range c.waitN(t, 4) {
		want := fmt.Sprintf("test-node%04d", i)
		if p.Alloc.Node().Name() != want {
			t.Fatalf("grant %d on %s, want %s", i, p.Alloc.Node().Name(), want)
		}
	}
}

// TestPolicyBackfillHeterogeneousGPUs drives a mixed CPU/GPU workload:
// a GPU-hungry head blocked on exhausted GPUs must not stop CPU-only
// work, and GPU accounting stays exact throughout.
func TestPolicyBackfillHeterogeneousGPUs(t *testing.T) {
	c := newCollector()
	s := New(nodes(2, 8, 2), c.fn, WithPolicy(Backfill(BackfillConfig{MaxBypass: 64})))
	defer s.Close()
	// Exhaust all 4 GPUs.
	for i := 0; i < 4; i++ {
		_ = s.Submit(Request{UID: fmt.Sprintf("gpu-%d", i), GPUs: 1})
	}
	c.waitN(t, 4)
	_ = s.Submit(Request{UID: "gpu-head", GPUs: 2, Priority: 100}) // blocked
	for i := 0; i < 6; i++ {
		_ = s.Submit(Request{UID: fmt.Sprintf("cpu-%d", i), Cores: 2})
	}
	got := c.waitN(t, 10)
	for _, p := range got[4:] {
		if p.Req.UID == "gpu-head" {
			t.Fatal("gpu-head granted without free GPUs")
		}
		if len(p.Alloc.GPUs) != 0 {
			t.Fatalf("CPU task %s granted GPUs %v", p.Req.UID, p.Alloc.GPUs)
		}
	}
	s.Release(got[0].Alloc)
	s.Release(got[1].Alloc)
	got = c.waitN(t, 11)
	if got[10].Req.UID != "gpu-head" {
		t.Fatalf("after GPU release, grant = %q, want gpu-head", got[10].Req.UID)
	}
}

package loadgen

import (
	"testing"
	"time"
)

func TestScenarioWithDefaults(t *testing.T) {
	sc := Scenario{}.WithDefaults()
	if sc.Kind != KindSteady || sc.Name != "steady" {
		t.Errorf("zero scenario defaulted to kind %q name %q", sc.Kind, sc.Name)
	}
	if sc.Requests != 10000 || sc.Rate != 1000 || sc.Services != 4 || sc.Interval != 5*time.Second {
		t.Errorf("unexpected defaults: %+v", sc)
	}

	d := Scenario{Kind: KindDiurnal}.WithDefaults()
	if d.WaveAmp != 0.8 || d.WavePeriod != 20*time.Second {
		t.Errorf("diurnal defaults: amp=%v period=%v", d.WaveAmp, d.WavePeriod)
	}
	h := Scenario{Kind: KindHotspot}.WithDefaults()
	if h.HotspotWeight != 0.8 {
		t.Errorf("hotspot default weight %v", h.HotspotWeight)
	}
	if h.Balance != "p2c" {
		t.Errorf("hotspot default balance %q, want p2c", h.Balance)
	}
	hd := Scenario{Kind: KindHotspot, Balance: "direct"}.WithDefaults()
	if hd.Balance != "direct" {
		t.Errorf("explicit direct balance overridden to %q", hd.Balance)
	}
	st := Scenario{Kind: KindSteady}.WithDefaults()
	if st.Balance != "" {
		t.Errorf("steady scenario grew balance %q", st.Balance)
	}
	s := Scenario{Kind: KindStraggler}.WithDefaults()
	if s.StragglerModel != "vit-base" || s.MaxTokens != 8 {
		t.Errorf("straggler defaults: model=%q tokens=%d", s.StragglerModel, s.MaxTokens)
	}
	c := Scenario{Kind: KindChurn, Requests: 1000, Rate: 100}.WithDefaults()
	if c.ChurnAt != 5*time.Second { // half of 1000/100 = 10s span
		t.Errorf("churn default offset %v, want 5s", c.ChurnAt)
	}
	tr := Scenario{Kind: KindTrace, Trace: []time.Duration{1, 2, 3}}.WithDefaults()
	if tr.Requests != 3 {
		t.Errorf("trace request count %d, want len(Trace)=3", tr.Requests)
	}
}

func TestScenarioValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		sc   Scenario
		ok   bool
	}{
		{"valid-steady", Scenario{Kind: KindSteady, Requests: 1, Rate: 1}, true},
		{"unknown-kind", Scenario{Kind: "bogus", Requests: 1, Rate: 1}, false},
		{"no-requests", Scenario{Kind: KindSteady, Rate: 1}, false},
		{"no-rate", Scenario{Kind: KindSteady, Requests: 1}, false},
		{"diurnal-amp-high", Scenario{Kind: KindDiurnal, Requests: 1, Rate: 1, WaveAmp: 1}, false},
		{"hotspot-weight-high", Scenario{Kind: KindHotspot, Requests: 1, Rate: 1, HotspotWeight: 1.5}, false},
		{"churn-no-offset", Scenario{Kind: KindChurn, Requests: 1, Rate: 1}, false},
		{"balance-p2c", Scenario{Kind: KindHotspot, Requests: 1, Rate: 1, Balance: "p2c"}, true},
		{"balance-direct", Scenario{Kind: KindHotspot, Requests: 1, Rate: 1, Balance: "direct"}, true},
		{"balance-unknown", Scenario{Kind: KindHotspot, Requests: 1, Rate: 1, Balance: "bogus"}, false},
		{"trace-empty", Scenario{Kind: KindTrace, Requests: 1, Rate: 1}, false},
	} {
		err := tc.sc.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

func TestCatalogIsValid(t *testing.T) {
	cat := Catalog()
	if len(cat) != 5 {
		t.Fatalf("catalog has %d scenarios, want 5", len(cat))
	}
	seen := map[string]bool{}
	for _, sc := range cat {
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if err := sc.WithDefaults().Validate(); err != nil {
			t.Errorf("catalog scenario %q invalid: %v", sc.Name, err)
		}
	}
	for _, want := range []string{"steady", "diurnal", "hotspot", "straggler", "churn"} {
		if !seen[want] {
			t.Errorf("catalog missing scenario %q", want)
		}
	}
}

package scheduler

import (
	"fmt"
	"testing"

	"repro/internal/platform"
	"repro/internal/simtime"
)

// newBenchScheduler builds a scheduler over nodes WITHOUT starting the
// scheduling loop, so a benchmark can drive policy.Grant by hand over a
// frozen wait pool.
func newBenchScheduler(nodes []*platform.Node, pol Policy) *Scheduler {
	s := &Scheduler{
		nodes:     nodes,
		policy:    pol,
		waiting:   newWaitHeap(),
		clock:     simtime.NewReal(),
		index:     newNodeIndex(nodes),
		nodeOf:    make(map[*platform.Node]int, len(nodes)),
		kick:      make(chan struct{}, 1),
		done:      make(chan struct{}),
		seenEpoch: platform.ReleaseEpoch(),
	}
	for i, n := range nodes {
		s.nodeOf[n] = i
	}
	return s
}

// BenchmarkBackfillGrantDeepPool measures one backfill Grant against a
// deep wait pool whose head is blocked: a single node with one core
// free, a blocked 8-core head, `depth` non-fitting 2-core fillers at low
// priorities, and exactly one fitting 1-core request at a high priority.
// The grant returns that request every iteration (it is re-pushed after
// an immediate release, keeping the pool in steady state), so the
// benchmark isolates the highest-priority-fitting query the backfill
// policies run per blocked-head grant.
func BenchmarkBackfillGrantDeepPool(b *testing.B) {
	for _, depth := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			node := platform.NewNode("n0", platform.NodeSpec{Cores: 8, GPUs: 0, MemGB: 64})
			pol := Backfill(BackfillConfig{MaxBypass: -1, MaxDelay: -1})
			s := newBenchScheduler([]*platform.Node{node}, pol)

			// occupy 7 of 8 cores so the 8-core head is blocked and the
			// 2-core fillers do not fit, while a 1-core request does
			held := node.TryAlloc(7, 0, 7)
			if held == nil {
				b.Fatal("setup alloc failed")
			}
			s.index.refresh(0)

			push := func(prio, cores int) {
				s.seq++
				s.waiting.push(waitItem{req: Request{
					UID: fmt.Sprintf("r%d", s.seq), Cores: cores, MemGB: 1, Priority: prio,
				}, seq: s.seq})
			}
			push(100, 8) // the blocked head
			for i := 0; i < depth; i++ {
				push(10+i%4*10, 2) // non-fitting fillers, prio 10..40
			}
			push(90, 1) // the one fitting request, first in strict order after the head

			pool := Pool{s: s}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pos, alloc := pol.Grant(&pool)
				if alloc == nil {
					b.Fatal("grant blocked")
				}
				it := s.waiting.removeAt(pos)
				s.Release(alloc)
				s.waiting.push(it) // same seq: the pool state replays exactly
			}
		})
	}
}

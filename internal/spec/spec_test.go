package spec

import (
	"context"
	"testing"
	"time"

	"repro/internal/rng"
)

func validTask() TaskDescription {
	return TaskDescription{
		Name:     "t",
		Cores:    1,
		Duration: rng.ConstDuration(time.Second),
	}
}

func TestTaskValidateOK(t *testing.T) {
	if err := validTask().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTaskValidateNegativeResources(t *testing.T) {
	for _, mut := range []func(*TaskDescription){
		func(d *TaskDescription) { d.Cores = -1 },
		func(d *TaskDescription) { d.GPUs = -1 },
		func(d *TaskDescription) { d.MemGB = -1 },
	} {
		d := validTask()
		mut(&d)
		if err := d.Validate(); err == nil {
			t.Fatalf("accepted invalid task %+v", d)
		}
	}
}

func TestTaskValidateEmpty(t *testing.T) {
	d := TaskDescription{Name: "empty"}
	if err := d.Validate(); err == nil {
		t.Fatal("accepted task with no resources and no payload")
	}
	// a pure function task with zero resources is legal
	d.Func = func(ctx context.Context) error { return nil }
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTaskValidateStaging(t *testing.T) {
	d := validTask()
	d.InputStaging = []StagingDirective{{Source: "delta:/a", Target: "delta:/b", Bytes: 1, Mode: StageCopy}}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	d.OutputStaging = []StagingDirective{{Source: "", Target: "x", Mode: StageCopy}}
	if err := d.Validate(); err == nil {
		t.Fatal("accepted empty staging endpoint")
	}
}

func TestStagingDirectiveValidate(t *testing.T) {
	good := StagingDirective{Source: "a", Target: "b", Bytes: 10, Mode: StageTransfer}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []StagingDirective{
		{Source: "", Target: "b", Mode: StageCopy},
		{Source: "a", Target: "", Mode: StageCopy},
		{Source: "a", Target: "b", Bytes: -1, Mode: StageCopy},
		{Source: "a", Target: "b", Mode: "teleport"},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Fatalf("accepted invalid directive %+v", c)
		}
	}
}

func TestServiceValidate(t *testing.T) {
	s := ServiceDescription{
		TaskDescription: TaskDescription{Name: "svc", GPUs: 1},
		Model:           "llama-8b",
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.Model = ""
	if err := s.Validate(); err == nil {
		t.Fatal("accepted service without model")
	}
	s.Model = "noop"
	s.Concurrency = -1
	if err := s.Validate(); err == nil {
		t.Fatal("accepted negative concurrency")
	}
}

func TestServiceZeroResourceLegal(t *testing.T) {
	s := ServiceDescription{
		TaskDescription: TaskDescription{Name: "noop-svc"},
		Model:           "noop",
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPilotValidate(t *testing.T) {
	good := PilotDescription{Platform: "delta", Nodes: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	byCores := PilotDescription{Platform: "delta", Cores: 256, GPUs: 16}
	if err := byCores.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []PilotDescription{
		{Platform: "", Nodes: 1},
		{Platform: "delta"},
		{Platform: "delta", Nodes: -1},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Fatalf("accepted invalid pilot %+v", c)
		}
	}
}

func TestServicePriorityConstant(t *testing.T) {
	if ServicePriority <= 0 {
		t.Fatal("ServicePriority must boost services above default tasks")
	}
}

package scheduler

import "repro/internal/platform"

// ShapeCapacity aggregates the free capacity of all nodes sharing one
// hardware shape inside a scheduler's pool. The aggregates are maintained
// incrementally by the capacity index (updated on the same point
// refreshes that keep the segment tree current), so reading them costs
// nothing beyond the lock.
type ShapeCapacity struct {
	// Spec is the node hardware shape.
	Spec platform.NodeSpec
	// Nodes is how many nodes of this shape the pool holds.
	Nodes int
	// FreeCores, FreeGPUs and FreeMemGB sum the currently free capacity
	// across those nodes.
	FreeCores int
	FreeGPUs  int
	FreeMemGB float64
}

// Snapshot is a point-in-time view of a scheduler's load and free
// capacity, taken under the scheduler lock in O(distinct shapes). It is
// the probe the session-level task router reads per routing decision:
// wait-pool depth for load ranking, shape specs for can-this-task-ever-run
// admission, and free-capacity aggregates plus single-node maxima for
// does-it-fit-now preference.
type Snapshot struct {
	// Waiting is the wait-pool depth (requests admitted but not granted).
	Waiting int
	// Scheduled counts grants so far.
	Scheduled int
	// Shapes holds per-shape free-capacity aggregates, one entry per
	// distinct node spec in the pool.
	Shapes []ShapeCapacity
	// MaxFreeCores, MaxFreeGPUs and MaxFreeMemGB are the per-dimension
	// maxima over single nodes (the capacity index's root segment). They
	// are a necessary fit condition only: the maxima may come from
	// different nodes.
	MaxFreeCores int
	MaxFreeGPUs  int
	MaxFreeMemGB float64
}

// Snapshot returns a consistent view of the scheduler's current load and
// free capacity. It is safe to call from any goroutine and cheap enough
// to take once per routing decision: the per-shape aggregates and the
// root maxima are maintained by the index, so the call copies O(distinct
// shapes) data under one lock acquisition.
//
// The result is cached against the scheduler's mutation generation: while
// nothing changed (no submit, grant, release or index re-sync), repeated
// calls return the cached value without taking the lock at all — the
// regime a session router is in while it places a whole submit batch
// against an idle or slow-moving pilot. Callers must treat the Shapes
// slice as read-only; consecutive unchanged snapshots share it.
func (s *Scheduler) Snapshot() Snapshot {
	g := s.gen.Load()
	if c := s.snapCache.Load(); c != nil && c.gen == g {
		return c.snap
	}
	s.mu.Lock()
	sn := Snapshot{
		Waiting:   s.waiting.len(),
		Scheduled: s.scheduled,
		Shapes:    append([]ShapeCapacity(nil), s.index.shapes...),
	}
	if len(s.index.nodes) > 0 {
		sn.MaxFreeCores = s.index.cores[1]
		sn.MaxFreeGPUs = s.index.gpus[1]
		sn.MaxFreeMemGB = s.index.mem[1]
	}
	// Pair the cache entry with the generation read under the same lock
	// hold that built it; storing under the lock keeps a concurrent
	// builder from overwriting a fresher entry with a staler one.
	s.snapCache.Store(&cachedSnapshot{gen: s.gen.Load(), snap: sn})
	s.mu.Unlock()
	return sn
}

// CanEverFit reports whether some node shape's total capacity covers the
// demand — the admission condition Submit enforces. A false answer means
// the pool can never run such a task, busy or idle.
func (sn Snapshot) CanEverFit(cores, gpus int, memGB float64) bool {
	if cores < 0 || gpus < 0 || memGB < 0 {
		return false
	}
	for _, sh := range sn.Shapes {
		if sh.Spec.Covers(cores, gpus, memGB) {
			return true
		}
	}
	return false
}

// MayFitNow reports whether the demand passes the single-node free-maxima
// check. It is a necessary condition for immediate placement, not a
// sufficient one (the maxima may come from different nodes), so routers
// use it as a preference signal, never as an admission decision.
func (sn Snapshot) MayFitNow(cores, gpus int, memGB float64) bool {
	return sn.MaxFreeCores >= cores && sn.MaxFreeGPUs >= gpus && sn.MaxFreeMemGB >= memGB
}

// FreeWeighted folds the pool's total free capacity onto the global
// weighted scale (WeightedCapacity). Cross-pilot comparisons — the
// least-loaded router ranking pilots against each other — need one common
// exchange rate, so this deliberately uses the global default weights,
// not the pool-calibrated ones best-fit placement optimizes internally.
func (sn Snapshot) FreeWeighted() float64 {
	var cores, gpus int
	var mem float64
	for _, sh := range sn.Shapes {
		cores += sh.FreeCores
		gpus += sh.FreeGPUs
		mem += sh.FreeMemGB
	}
	return WeightedCapacity(cores, gpus, mem)
}

// --- best-fit leftover weights ----------------------------------------------

// Weights is the exchange rate best-fit leftovers are compared on: one
// GPU counts as GPU cores, one GB of memory as Mem cores. Each capacity
// index derives its own from the pool's shape mix (DeriveWeights), so the
// least-leftover scale self-calibrates on unusual machines.
type Weights struct {
	// GPU is the core-equivalent of one GPU.
	GPU float64
	// Mem is the core-equivalent of one GB of memory.
	Mem float64
}

// DefaultWeights is the global scale (1 GPU = 16 cores, 4 GB = 1 core,
// matching the catalog's 8-16 cores per GPU). Single-shape pools keep it
// (see DeriveWeights), and cross-pool comparisons always use it.
var DefaultWeights = Weights{GPU: bestFitGPUWeight, Mem: bestFitMemWeight}

// Capacity folds a capacity (or demand) triple onto w's scale.
func (w Weights) Capacity(cores, gpus int, memGB float64) float64 {
	return float64(cores) + w.GPU*float64(gpus) + w.Mem*memGB
}

// DeriveWeights calibrates best-fit leftover weights from a pool's actual
// shape mix: one GPU is worth the pool's observed cores-per-GPU ratio and
// one GB of memory its cores-per-GB ratio, each computed over the nodes
// that carry that dimension.
//
// The exchange rate only matters where leftovers from different shapes
// compete, so pools with fewer than two distinct shapes keep
// DefaultWeights — on a homogeneous pool every node offers the same
// dimensions and recalibrating could only perturb the seed-pinned
// tie-breaks among partially drained nodes without improving any
// cross-shape decision (TestDeriveWeightsHomogeneousIdenticalChoices pins
// that homogeneous catalog platforms place identically under both).
func DeriveWeights(groups []platform.NodeGroup) Weights {
	distinct := make(map[platform.NodeSpec]bool, len(groups))
	for _, g := range groups {
		distinct[g.Spec] = true
	}
	if len(distinct) < 2 {
		return DefaultWeights
	}
	w := DefaultWeights
	var gpuCores, gpus, memCores int
	var mem float64
	for _, g := range groups {
		if g.Spec.GPUs > 0 {
			gpuCores += g.Count * g.Spec.Cores
			gpus += g.Count * g.Spec.GPUs
		}
		if g.Spec.MemGB > 0 {
			memCores += g.Count * g.Spec.Cores
			mem += float64(g.Count) * g.Spec.MemGB
		}
	}
	if gpus > 0 && gpuCores > 0 {
		w.GPU = float64(gpuCores) / float64(gpus)
	}
	if mem > 0 && memCores > 0 {
		w.Mem = float64(memCores) / mem
	}
	return w
}

// Package xproc runs pilots as separate OS processes reached over the TCP
// transport: multi-process sessions as a first-class scenario.
//
// A pilot-agent process is any binary that calls MaybeRunAgent early in
// main (cmd/rppilot, cmd/rpexp, and the experiments test binary all do).
// The driver re-executes its own binary with an AgentConfig in the
// RPPILOT_AGENT environment variable; the child detects it, launches a
// real pilot on a TCP-transport network, prints a one-line ready handshake
// with its control address on stdout, and serves control RPCs (task
// submission, service bootstrap, snapshots) as binary proto frames over
// TCP. Services the pilot hosts bind their own TCP endpoints and publish
// dialable "tcp://host:port" addresses, so the driver's clients reach them
// directly — the control channel is only for orchestration.
//
// See README "Multi-process sessions" and ARCHITECTURE.md Flow 8 for the
// bootstrap diagram.
package xproc

import (
	"encoding/json"

	"repro/internal/proto"
	"repro/internal/spec"
)

// EnvAgentConfig is the environment variable carrying the JSON AgentConfig
// that turns a process into a pilot agent.
const EnvAgentConfig = "RPPILOT_AGENT"

// readyPrefix starts the one-line stdout handshake: the agent prints
// "RPPILOT_READY <host:port>" once its control endpoint is listening.
const readyPrefix = "RPPILOT_READY "

// AgentConfig parameterizes one pilot-agent process.
type AgentConfig struct {
	// UID is the pilot UID (required; the driver names its agents).
	UID string `json:"uid"`
	// Platform is the catalog platform the agent instantiates a private
	// copy of. Every agent of one experiment builds the same platform and
	// carves its own partition out of it via SkipNodes/Nodes, mirroring
	// the in-proc experiments' consecutive-partition pilot carving.
	Platform string `json:"platform"`
	// SkipNodes pre-allocates the first SkipNodes nodes wholly before the
	// pilot acquires, so this agent's pilot lands on the nodes after them
	// (partition carving across processes).
	SkipNodes int `json:"skip_nodes"`
	// Nodes is the pilot's node count (<= 0: the whole remaining platform
	// after the carved partition).
	Nodes int `json:"nodes"`
	// Seed drives the agent's RNG tree.
	Seed uint64 `json:"seed"`
	// Scale is the agent clock compression (simtime.NewScaled at the
	// session origin). <= 0 defaults to 2000.
	Scale float64 `json:"scale"`
	// SchedPolicy names the agent scheduler's placement policy (empty:
	// platform default).
	SchedPolicy string `json:"sched_policy,omitempty"`
}

// KindCall is the envelope kind of control RPCs on the agent channel.
// (proto.Kind is open-ended; the core message set is untouched.)
const KindCall proto.Kind = "xproc_call"

// callBody is a control RPC request: a method name plus JSON arguments.
type callBody struct {
	Method string          `json:"method"`
	Args   json.RawMessage `json:"args,omitempty"`
}

// replyBody is a control RPC response. Err is empty on success.
type replyBody struct {
	Err    string          `json:"err,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// TaskStatus is one settled task in a wait reply.
type TaskStatus struct {
	UID   string `json:"uid"`
	State string `json:"state"`
	Err   string `json:"err,omitempty"`
}

// Argument/result payloads per method. The zero-argument methods (ping,
// shapes, snapshot, shutdown) use no args.
type (
	submitArgs struct {
		// Desc serializes directly: spec.TaskDescription excludes the
		// in-process Func payload from JSON, and duration distributions
		// carry their own JSON codec.
		Desc spec.TaskDescription `json:"desc"`
	}
	submitResult struct {
		UID string `json:"uid"`
	}
	waitArgs struct {
		UIDs []string `json:"uids"`
	}
	waitReply struct {
		Tasks []TaskStatus `json:"tasks"`
	}
	svcSubmitArgs struct {
		Desc spec.ServiceDescription `json:"desc"`
	}
	svcAwaitArgs struct {
		UID string `json:"uid"`
	}
	svcAwaitReply struct {
		Endpoint proto.Endpoint `json:"endpoint"`
	}
)

package loadgen

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/loadbal"
	"repro/internal/metrics"
	"repro/internal/pilot"
	"repro/internal/platform"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/service"
	"repro/internal/simtime"
	"repro/internal/spec"
)

// inferClient is the campaign-facing inference seam: a single-endpoint
// *service.Resolver, or a replica-aware *service.Balancer when the
// scenario enables the autoscaler.
type inferClient interface {
	Infer(ctx context.Context, prompt string, maxTokens int) (proto.InferenceReply, metrics.Breakdown, error)
	Reresolved() int
	Close() error
}

var (
	_ inferClient = (*service.Resolver)(nil)
	_ inferClient = (*service.Balancer)(nil)
)

// probeNever pushes the liveness probe ticker past any campaign horizon:
// probes are irrelevant to open-loop measurement and a short probe period
// would dominate the virtual-clock event heap.
const probeNever = 10000 * time.Hour

// Result is the outcome of one campaign.
type Result struct {
	// Scenario is the (defaulted) scenario that ran.
	Scenario Scenario
	// Offered/Completed/Failed are the exact request counts; Offered is
	// always Scenario.Requests and Completed+Failed == Offered.
	Offered   int64
	Completed int64
	Failed    int64
	// TasksSubmitted/TasksDone count the side-channel compute tasks.
	TasksSubmitted int64
	TasksDone      int64
	// Replacements counts session-level service re-placements (churn).
	Replacements int
	// Reresolved counts resolver re-resolutions after endpoint failures.
	Reresolved int
	// PeakReplicas is the highest concurrent serving-replica count any
	// backend reached (1 unless the autoscaler was enabled).
	PeakReplicas int
	// Duration is the virtual-time makespan from campaign start to the
	// last completion.
	Duration time.Duration
	// Wall is the real time the campaign took.
	Wall time.Duration
	// Series is the per-interval time series (counts, rates, percentiles).
	Series *metrics.IntervalSeries
	// Latency is the campaign-wide latency sketch (merged across
	// intervals).
	Latency *metrics.Sketch
	// SketchBytes is the merged sketch's bucket footprint.
	SketchBytes int
	// Samples holds every completion latency when Scenario.KeepSamples
	// was set (oracle comparisons in tests), nil otherwise.
	Samples []time.Duration
}

// Run executes one open-loop campaign on a fresh session over an
// auto-advancing virtual clock.
//
// Determinism: the arrival schedule and target choices are pure functions
// of the scenario seed; the virtual clock advances only when every
// registered campaign goroutine is parked, so request interleaving — and
// with it every count and latency — replays exactly across runs. The
// driver, the per-request goroutines and the churn controller register
// with the clock (simtime.Runners); requests use non-cancellable contexts
// so the whole REQ/REP round trip runs inline on the accounted goroutine.
func Run(ctx context.Context, sc Scenario) (*Result, error) {
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	wallStart := time.Now()

	clock := simtime.NewVirtualAuto(core.DefaultOrigin)
	sess, err := core.NewSession(core.SessionConfig{
		Seed:  sc.Seed,
		Clock: clock,
		// Campaigns measure steady-state serving, not bootstrap.
		FastBoot: true,
	})
	if err != nil {
		return nil, err
	}
	defer sess.Close()

	pilots, err := startPilots(sess, sc)
	if err != nil {
		return nil, err
	}
	handles, err := startBackends(ctx, sess, sc)
	if err != nil {
		return nil, err
	}
	// The balanced hotspot shape turns service 0's client into a
	// load-aware Balancer over the whole fleet: the registry group under
	// service 0 lists the other services as members, and the driver
	// publishes load reports each arrival so the picker can steer the
	// skewed mass away from the direct background traffic.
	balanced := sc.Kind == KindHotspot && sc.Balance != "direct" && sc.Services > 1
	if balanced {
		reg := sess.EndpointRegistry()
		for _, h := range handles[1:] {
			reg.AddMember(handles[0].UID(), h.UID())
		}
	}
	resolvers := make([]inferClient, len(handles))
	for i, h := range handles {
		addr := platform.Addr("delta", "", fmt.Sprintf("loadgen.client.%02d", i))
		var r inferClient
		var err error
		switch {
		case balanced && i == 0:
			var picker loadbal.Picker
			picker, err = loadbal.PickerByName(sc.Balance, rng.New(sc.Seed).Derive("balance").Uint64())
			if err == nil {
				r, err = sess.DialBalancedWith(addr, h.UID(), picker)
			}
		case sc.MaxReplicas > 1:
			r, err = sess.DialBalanced(addr, h.UID())
		default:
			r, err = sess.DialService(addr, h.UID())
		}
		if err != nil {
			return nil, err
		}
		defer r.Close()
		resolvers[i] = r
	}

	c := &campaign{
		sc:        sc,
		sess:      sess,
		clock:     clock,
		acct:      simtime.RunnersOf(clock),
		pilots:    pilots,
		handles:   handles,
		resolvers: resolvers,
		balanced:  balanced,
		t0:        clock.Now(),
		bg:        context.Background(),
	}
	c.series = metrics.NewIntervalSeries(c.t0, sc.Interval, sc.Alpha)
	c.maxDone = c.t0

	churnDone := c.startChurn(ctx)
	driverDone := make(chan struct{})
	clock.Go(func() {
		defer close(driverDone)
		c.drive(ctx)
	})
	select {
	case <-driverDone:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if churnDone != nil {
		select {
		case <-churnDone:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if c.churnErr != nil {
			return nil, c.churnErr
		}
	}
	if len(c.tasks) > 0 {
		if err := sess.TaskManager().Wait(ctx, c.tasks...); err != nil {
			return nil, fmt.Errorf("loadgen: task stream: %w", err)
		}
	}

	res := &Result{
		Scenario:       sc,
		Offered:        c.offered.Load(),
		Completed:      c.completed.Load(),
		Failed:         c.failed.Load(),
		TasksSubmitted: int64(len(c.tasks)),
		TasksDone:      c.tasksDone.Load(),
		Duration:       c.maxDone.Sub(c.t0),
		Wall:           time.Since(wallStart),
		Series:         c.series,
		Samples:        c.samples,
	}
	res.Latency = c.series.Sketch()
	res.SketchBytes = res.Latency.MemoryBytes()
	for _, h := range handles {
		res.Replacements += h.Replacements()
		if pr := h.PeakReplicas(); pr > res.PeakReplicas {
			res.PeakReplicas = pr
		}
	}
	for _, r := range resolvers {
		res.Reresolved += r.Reresolved()
	}
	return res, nil
}

// campaign is the mutable state shared by the driver, the per-request
// goroutines and the churn controller.
type campaign struct {
	sc        Scenario
	sess      *core.Session
	clock     *simtime.Virtual
	acct      simtime.Runners
	pilots    []*pilot.Pilot
	handles   []*core.Service
	resolvers []inferClient
	balanced  bool
	t0        time.Time
	bg        context.Context

	offered, completed, failed atomic.Int64
	outstanding                atomic.Int64
	tasksDone                  atomic.Int64
	tasks                      []*core.Task

	mu      sync.Mutex // guards series, samples, maxDone
	series  *metrics.IntervalSeries
	samples []time.Duration
	maxDone time.Time

	churnErr error
}

// startPilots submits the campaign pilots (two for churn — one to kill,
// one to survive) and attaches them to the session managers.
func startPilots(sess *core.Session, sc Scenario) ([]*pilot.Pilot, error) {
	n := 1
	if sc.Kind == KindChurn {
		n = 2
	}
	pilots := make([]*pilot.Pilot, 0, n)
	for i := 0; i < n; i++ {
		p, err := sess.PilotManager().Submit(spec.PilotDescription{
			Platform: "delta", Cores: 128, GPUs: 8,
		})
		if err != nil {
			return nil, err
		}
		sess.ServiceManager().AddPilot(p)
		sess.TaskManager().AddPilot(p)
		pilots = append(pilots, p)
	}
	return pilots, nil
}

// startBackends boots the scenario's service fleet and waits for every
// instance to publish.
func startBackends(ctx context.Context, sess *core.Session, sc Scenario) ([]*core.Service, error) {
	sm := sess.ServiceManager()
	handles := make([]*core.Service, 0, sc.Services)
	uids := make([]string, 0, sc.Services)
	for i := 0; i < sc.Services; i++ {
		model := sc.Model
		if model == "" {
			model = "noop"
		}
		if sc.Kind == KindStraggler && i == 0 {
			model = sc.StragglerModel
		}
		d := spec.ServiceDescription{
			TaskDescription: spec.TaskDescription{Name: fmt.Sprintf("ld-%02d", i)},
			Model:           model,
			Concurrency:     sc.Concurrency,
			QueueCap:        sc.QueueCap,
			MaxBatch:        sc.MaxBatch,
			MinReplicas:     sc.MinReplicas,
			MaxReplicas:     sc.MaxReplicas,
			ScaleInterval:   sc.ScaleInterval,
			ScaleUpQueue:    sc.ScaleUpQueue,
			ScaleDownQueue:  sc.ScaleDownQueue,
			ScaleStabilize:  sc.ScaleStabilize,
			StartTimeout:    time.Hour,
			ProbeInterval:   probeNever,
		}
		if model == "noop" {
			d.Cores = 1
		} else {
			d.GPUs = 1
		}
		h, err := sm.Submit(d)
		if err != nil {
			return nil, err
		}
		handles = append(handles, h)
		uids = append(uids, h.UID())
	}
	if err := sm.WaitReady(ctx, uids...); err != nil {
		return nil, err
	}
	return handles, nil
}

// drive runs the open-loop arrival schedule on a clock-registered
// goroutine: sleep the next gap, stamp the arrival, hand the request to a
// fresh registered goroutine, repeat. The final wait for in-flight
// requests is bracketed with Block/Unblock so the clock keeps advancing
// while the driver parks on the WaitGroup.
func (c *campaign) drive(ctx context.Context) {
	arr := c.sc.arrivals(c.sc.Seed)
	targets := rng.New(c.sc.Seed).Derive("targets")
	var wg sync.WaitGroup
	for i := 0; ; i++ {
		gap, ok := arr.Next()
		if !ok {
			break
		}
		if gap > 0 {
			c.clock.Sleep(gap)
		}
		now := c.clock.Now()
		if c.balanced {
			c.reportLoads(now)
		}
		svc := c.pickTarget(i, targets)
		c.offered.Add(1)
		depth := c.outstanding.Add(1)
		c.mu.Lock()
		c.series.Offered(now)
		c.series.ObserveQueue(now, depth)
		c.mu.Unlock()

		wg.Add(1)
		idx := i
		c.clock.Go(func() {
			defer wg.Done()
			c.request(idx, svc)
		})
		if c.sc.TaskEvery > 0 && idx%c.sc.TaskEvery == 0 {
			c.submitTask(ctx, idx)
		}
	}
	if c.acct != nil {
		c.acct.Block()
		defer c.acct.Unblock()
	}
	wg.Wait()
}

// reportLoads publishes each backend's queue gauges into the registry —
// the load signal the balanced hotspot's picker probes. Reporting rides
// the driver's own arrival wake-ups, so report freshness equals the
// inter-arrival gap and the schedule stays a pure function of the seed
// (no extra clock-registered goroutine to interleave).
func (c *campaign) reportLoads(now time.Time) {
	reg := c.sess.EndpointRegistry()
	for _, h := range c.handles {
		reg.ReportLoad(h.UID(), service.Load{
			Queued: h.Queued(), InFlight: h.InFlight(), At: now,
		})
	}
}

// pickTarget maps the i-th arrival to a backend: round-robin by default,
// rng-skewed under the hotspot scenario.
func (c *campaign) pickTarget(i int, targets *rng.Source) int {
	n := len(c.resolvers)
	if c.sc.Kind == KindHotspot && n > 1 {
		if targets.Float64() < c.sc.HotspotWeight {
			return 0
		}
		return 1 + targets.Intn(n-1)
	}
	return i % n
}

// request issues one inference on a registered goroutine with a
// non-cancellable context (the inline msgq path keeps every modelled hop
// on this accounted goroutine) and records the outcome.
func (c *campaign) request(idx, svc int) {
	start := c.clock.Now()
	_, _, err := c.resolvers[svc].Infer(c.bg, fmt.Sprintf("req-%07d", idx), c.sc.MaxTokens)
	end := c.clock.Now()
	c.outstanding.Add(-1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.failed.Add(1)
		c.series.Failed(end)
	} else {
		c.completed.Add(1)
		lat := end.Sub(start)
		c.series.Completed(end, lat)
		if c.sc.KeepSamples {
			c.samples = append(c.samples, lat)
		}
	}
	if end.After(c.maxDone) {
		c.maxDone = end
	}
}

// submitTask pushes one no-op compute task through the TaskManager seam.
// Submission never parks on virtual time, so the driver calls it inline.
func (c *campaign) submitTask(ctx context.Context, idx int) {
	ts, err := c.sess.TaskManager().Submit(ctx, spec.TaskDescription{
		Name:  fmt.Sprintf("ld-task-%06d", idx),
		Cores: 1,
		Func: func(context.Context) error {
			c.tasksDone.Add(1)
			return nil
		},
	})
	if err == nil {
		c.tasks = append(c.tasks, ts...)
	}
}

// startChurn launches the mid-stream pilot-churn controller on a
// registered goroutine: at ChurnAt it shuts down pilot 0 and parks in
// AwaitNewer until every affected service has re-published from the
// survivor. The controller stays registered (it never calls Block), so
// the clock is frozen for the whole failover — re-placement under
// FastBoot needs no virtual time, making the churn atomic in simulated
// time: the offered schedule resumes exactly where it paused.
func (c *campaign) startChurn(ctx context.Context) chan struct{} {
	if c.sc.Kind != KindChurn {
		return nil
	}
	done := make(chan struct{})
	c.clock.Go(func() {
		defer close(done)
		c.clock.Sleep(c.sc.ChurnAt)
		victim := c.pilots[0]
		reg := c.sess.EndpointRegistry()
		gens := make(map[string]uint64)
		for _, h := range c.handles {
			if h.Pilot() == victim.UID() {
				gens[h.UID()] = reg.Generation(h.UID())
			}
		}
		if err := victim.Shutdown(); err != nil {
			c.churnErr = fmt.Errorf("loadgen: churn shutdown: %w", err)
			return
		}
		for uid, gen := range gens {
			if _, _, err := reg.AwaitNewer(ctx, uid, gen); err != nil {
				c.churnErr = fmt.Errorf("loadgen: churn re-publication of %s: %w", uid, err)
				return
			}
		}
	})
	return done
}

// Package profile is the RADICAL-Analytics analogue: it records the
// timestamped state transitions of every runtime entity (pilots, tasks,
// services) into a session profile, computes durations between state
// pairs across entity populations, and exports CSV for offline analysis.
// The paper's BT/RT/IT figures are produced from exactly this kind of
// profile data.
package profile

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/states"
)

// Event is one recorded transition.
type Event struct {
	UID    string
	Entity string
	From   states.State
	To     states.State
	At     time.Time
}

// Recorder accumulates events. It is safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Callback returns a states.Callback recording transitions for one entity
// kind; install it as (or chain it into) a runtime StateCallback.
func (r *Recorder) Callback(entity string) states.Callback {
	return func(uid string, from, to states.State, at time.Time) {
		r.mu.Lock()
		r.events = append(r.events, Event{UID: uid, Entity: entity, From: from, To: to, At: at})
		r.mu.Unlock()
	}
}

// Record appends one event directly.
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of the recorded events in insertion order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event{}, r.events...)
}

// Entities returns the distinct UIDs recorded for an entity kind (all
// kinds when entity is empty), sorted.
func (r *Recorder) Entities(entity string) []string {
	seen := map[string]bool{}
	for _, e := range r.Events() {
		if entity == "" || e.Entity == entity {
			seen[e.UID] = true
		}
	}
	out := make([]string, 0, len(seen))
	for uid := range seen {
		out = append(out, uid)
	}
	sort.Strings(out)
	return out
}

// EnteredAt returns the first time uid entered state s.
func (r *Recorder) EnteredAt(uid string, s states.State) (time.Time, bool) {
	for _, e := range r.Events() {
		if e.UID == uid && e.To == s {
			return e.At, true
		}
	}
	return time.Time{}, false
}

// Durations returns, for every entity of the given kind that passed
// through both states, the duration between first entering a and first
// entering b.
func (r *Recorder) Durations(entity string, a, b states.State) []time.Duration {
	type marks struct {
		ta, tb time.Time
		hasA   bool
		hasB   bool
	}
	byUID := map[string]*marks{}
	for _, e := range r.Events() {
		if entity != "" && e.Entity != entity {
			continue
		}
		m := byUID[e.UID]
		if m == nil {
			m = &marks{}
			byUID[e.UID] = m
		}
		if e.To == a && !m.hasA {
			m.ta, m.hasA = e.At, true
		}
		if e.To == b && !m.hasB {
			m.tb, m.hasB = e.At, true
		}
	}
	uids := make([]string, 0, len(byUID))
	for uid := range byUID {
		uids = append(uids, uid)
	}
	sort.Strings(uids)
	var out []time.Duration
	for _, uid := range uids {
		m := byUID[uid]
		if m.hasA && m.hasB {
			out = append(out, m.tb.Sub(m.ta))
		}
	}
	return out
}

// Stats aggregates Durations into summary statistics.
func (r *Recorder) Stats(entity string, a, b states.State) metrics.Stats {
	return metrics.Compute(r.Durations(entity, a, b))
}

// ConcurrencyAt returns how many entities of the kind were between states
// a (entered) and b (not yet entered) at time t — the utilization series
// behind scaling plots.
func (r *Recorder) ConcurrencyAt(entity string, a, b states.State, t time.Time) int {
	n := 0
	for _, uid := range r.Entities(entity) {
		ta, okA := r.EnteredAt(uid, a)
		if !okA || ta.After(t) {
			continue
		}
		tb, okB := r.EnteredAt(uid, b)
		if okB && !tb.After(t) {
			continue
		}
		n++
	}
	return n
}

// WriteCSV exports the profile as "uid,entity,from,to,unix_ns".
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"uid", "entity", "from", "to", "unix_ns"}); err != nil {
		return fmt.Errorf("profile: write header: %w", err)
	}
	for _, e := range r.Events() {
		rec := []string{e.UID, e.Entity, string(e.From), string(e.To), strconv.FormatInt(e.At.UnixNano(), 10)}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("profile: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a profile previously written by WriteCSV.
func ReadCSV(rd io.Reader) (*Recorder, error) {
	cr := csv.NewReader(rd)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("profile: read: %w", err)
	}
	if len(rows) == 0 {
		return NewRecorder(), nil
	}
	rec := NewRecorder()
	for i, row := range rows[1:] { // skip header
		if len(row) != 5 {
			return nil, fmt.Errorf("profile: row %d has %d fields", i+2, len(row))
		}
		ns, err := strconv.ParseInt(row[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("profile: row %d timestamp: %w", i+2, err)
		}
		rec.Record(Event{
			UID:    row[0],
			Entity: row[1],
			From:   states.State(row[2]),
			To:     states.State(row[3]),
			At:     time.Unix(0, ns).UTC(),
		})
	}
	return rec, nil
}

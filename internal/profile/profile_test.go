package profile

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/simtime"
	"repro/internal/states"
)

var origin = time.Date(2025, 3, 17, 0, 0, 0, 0, time.UTC)

func recordedTask(r *Recorder, uid string, clk *simtime.Virtual, stepSec int) {
	m := states.NewMachine(uid, states.TaskModel(), clk)
	m.OnTransition(r.Callback("task"))
	for _, s := range []states.State{
		states.TaskTmgrScheduling, states.TaskStagingInput, states.TaskScheduling,
		states.TaskExecuting, states.TaskStagingOutput, states.TaskDone,
	} {
		clk.Advance(time.Duration(stepSec) * time.Second)
		_ = m.To(s)
	}
}

func TestCallbackRecordsTransitions(t *testing.T) {
	clk := simtime.NewVirtual(origin)
	r := NewRecorder()
	recordedTask(r, "task.1", clk, 1)
	if r.Len() != 6 {
		t.Fatalf("events = %d, want 6", r.Len())
	}
	evs := r.Events()
	if evs[0].From != states.TaskNew || evs[0].To != states.TaskTmgrScheduling {
		t.Fatalf("first event = %+v", evs[0])
	}
}

func TestEntitiesSortedAndFiltered(t *testing.T) {
	clk := simtime.NewVirtual(origin)
	r := NewRecorder()
	recordedTask(r, "task.b", clk, 1)
	recordedTask(r, "task.a", clk, 1)
	r.Record(Event{UID: "svc.1", Entity: "service", To: states.ServiceActive, At: clk.Now()})
	tasks := r.Entities("task")
	if len(tasks) != 2 || tasks[0] != "task.a" || tasks[1] != "task.b" {
		t.Fatalf("task entities = %v", tasks)
	}
	if all := r.Entities(""); len(all) != 3 {
		t.Fatalf("all entities = %v", all)
	}
}

func TestDurationsBetweenStates(t *testing.T) {
	clk := simtime.NewVirtual(origin)
	r := NewRecorder()
	recordedTask(r, "task.1", clk, 2) // 2s per transition
	ds := r.Durations("task", states.TaskExecuting, states.TaskDone)
	if len(ds) != 1 || ds[0] != 4*time.Second { // EXEC → STAGE_OUT → DONE
		t.Fatalf("durations = %v", ds)
	}
	st := r.Stats("task", states.TaskExecuting, states.TaskDone)
	if st.N != 1 || st.Mean != 4*time.Second {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDurationsSkipIncompleteEntities(t *testing.T) {
	clk := simtime.NewVirtual(origin)
	r := NewRecorder()
	m := states.NewMachine("task.partial", states.TaskModel(), clk)
	m.OnTransition(r.Callback("task"))
	_ = m.To(states.TaskTmgrScheduling) // never reaches DONE
	if ds := r.Durations("task", states.TaskTmgrScheduling, states.TaskDone); len(ds) != 0 {
		t.Fatalf("durations include incomplete entity: %v", ds)
	}
}

func TestConcurrencyAt(t *testing.T) {
	clk := simtime.NewVirtual(origin)
	r := NewRecorder()
	// task.1 executes from t=4s to t=5s (1s steps), task.2 from t=10s to
	// t=12.5s... build two tasks offset in time
	recordedTask(r, "task.1", clk, 1) // transitions at 1..6s; EXEC at 4s, STAGE_OUT at 5s
	recordedTask(r, "task.2", clk, 1) // starts after: EXEC at 10s, STAGE_OUT at 11s
	if n := r.ConcurrencyAt("task", states.TaskExecuting, states.TaskStagingOutput, origin.Add(4500*time.Millisecond)); n != 1 {
		t.Fatalf("concurrency at 4.5s = %d, want 1", n)
	}
	if n := r.ConcurrencyAt("task", states.TaskExecuting, states.TaskStagingOutput, origin.Add(20*time.Second)); n != 0 {
		t.Fatalf("concurrency at 20s = %d, want 0", n)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	clk := simtime.NewVirtual(origin)
	r := NewRecorder()
	recordedTask(r, "task.1", clk, 3)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "uid,entity,from,to,unix_ns\n") {
		t.Fatalf("csv header wrong: %q", buf.String()[:40])
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != r.Len() {
		t.Fatalf("round trip %d events, want %d", back.Len(), r.Len())
	}
	// durations survive the round trip
	a := r.Stats("task", states.TaskExecuting, states.TaskDone)
	b := back.Stats("task", states.TaskExecuting, states.TaskDone)
	if a.Mean != b.Mean {
		t.Fatalf("round trip changed stats: %v vs %v", a.Mean, b.Mean)
	}
}

func TestReadCSVMalformed(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("uid,entity,from,to,unix_ns\nonly,three,fields\n")); err == nil {
		t.Fatal("accepted short row")
	}
	if _, err := ReadCSV(strings.NewReader("uid,entity,from,to,unix_ns\na,task,NEW,DONE,notanumber\n")); err == nil {
		t.Fatal("accepted bad timestamp")
	}
	r, err := ReadCSV(strings.NewReader(""))
	if err != nil || r.Len() != 0 {
		t.Fatalf("empty input: %v, %d", err, r.Len())
	}
}

func TestEnteredAt(t *testing.T) {
	clk := simtime.NewVirtual(origin)
	r := NewRecorder()
	recordedTask(r, "task.1", clk, 1)
	at, ok := r.EnteredAt("task.1", states.TaskExecuting)
	if !ok || !at.Equal(origin.Add(4*time.Second)) {
		t.Fatalf("EnteredAt = %v/%v", at, ok)
	}
	if _, ok := r.EnteredAt("ghost", states.TaskDone); ok {
		t.Fatal("EnteredAt found ghost entity")
	}
}

// Package journal implements the session's durability layer: an
// append-only write-ahead journal of entity descriptions, state
// transitions, placement bindings and endpoint publications. A session
// configured with a journal path appends one record per event; after a
// client crash, core.Recover replays the journal to reconstruct the
// session's last known world view and reattaches to whatever survived.
//
// Wire format: each record is framed as
//
//	[4-byte big-endian payload length][4-byte big-endian CRC-32 (IEEE) of
//	payload][JSON payload]
//
// mirroring the length-prefixed framing of the proto package. The CRC
// guards against bit rot; the length prefix makes a torn final record —
// the expected artifact of a crash mid-append — detectable and tolerable:
// replay applies every complete record and reports the tail as torn
// instead of failing the recovery.
//
// Durability model: every Append writes its record to the journal file
// synchronously (so a process crash loses at most the record being
// written), while fsync is batched on the session clock — the usual WAL
// group-commit trade: per-record write() cost without per-record fsync
// cost. The simulation only models process crashes (completed write()s
// survive in the OS page cache), so the fsync cadence is fidelity and
// accounting, not correctness.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/proto"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/states"
)

// Journal errors.
var (
	// ErrClosed marks appends after Close.
	ErrClosed = errors.New("journal: writer closed")
	// ErrCrashed marks appends after an injected crash: the writer models
	// a dead process and silently persists nothing further.
	ErrCrashed = errors.New("journal: writer crashed")
	// ErrChecksum marks a record whose payload does not match its CRC.
	ErrChecksum = errors.New("journal: record checksum mismatch")
	// ErrTooLarge marks a length prefix beyond MaxRecordSize — framing
	// corruption replay cannot resynchronize from.
	ErrTooLarge = errors.New("journal: record exceeds maximum size")
)

// MaxRecordSize bounds one record's payload. Descriptions and transitions
// are tiny; a larger length prefix means the framing itself is corrupt.
const MaxRecordSize = 1 << 20

// DefaultFlushEvery is the default fsync batching interval on the session
// clock.
const DefaultFlushEvery = 100 * time.Millisecond

// headerSize is the per-record framing overhead (length + CRC).
const headerSize = 8

// Kind discriminates record bodies.
type Kind string

// Record kinds.
const (
	// KindSession opens a journal (and re-opens it per recovery
	// incarnation): session identity, seed and configuration.
	KindSession Kind = "session"
	// KindPilot, KindTask and KindService record a description the moment
	// the session accepts it — the WAL intent preceding the action.
	KindPilot   Kind = "pilot"
	KindTask    Kind = "task"
	KindService Kind = "service"
	// KindBind records a placement decision: which pilot a task or
	// service was dispatched to.
	KindBind Kind = "bind"
	// KindTransition records one committed entity state transition.
	KindTransition Kind = "transition"
	// KindEndpoint records a session EndpointRegistry mutation.
	KindEndpoint Kind = "endpoint"
)

// Record is one journal entry.
type Record struct {
	Kind Kind            `json:"kind"`
	Seq  uint64          `json:"seq"`
	Body json.RawMessage `json:"body"`
}

// SessionBody is the KindSession payload.
type SessionBody struct {
	UID         string `json:"uid"`
	Seed        uint64 `json:"seed"`
	Incarnation uint64 `json:"incarnation"`
	SchedPolicy string `json:"sched_policy,omitempty"`
	Router      string `json:"router,omitempty"`
	FastBoot    bool   `json:"fast_boot,omitempty"`
}

// PilotBody is the KindPilot payload.
type PilotBody struct {
	UID  string                `json:"uid"`
	Desc spec.PilotDescription `json:"desc"`
}

// TaskBody is the KindTask payload. Function payloads (TaskDescription.
// Func) are not serializable and are dropped: a recovered task that must
// be re-run re-executes its Duration payload only.
type TaskBody struct {
	UID  string               `json:"uid"`
	Desc spec.TaskDescription `json:"desc"`
}

// ServiceBody is the KindService payload.
type ServiceBody struct {
	UID  string                  `json:"uid"`
	Desc spec.ServiceDescription `json:"desc"`
}

// BindBody is the KindBind payload.
type BindBody struct {
	Entity string `json:"entity"` // "task" | "service"
	UID    string `json:"uid"`
	Pilot  string `json:"pilot"`
}

// TransitionBody is the KindTransition payload.
type TransitionBody struct {
	Entity string    `json:"entity"` // "pilot" | "task" | "service"
	UID    string    `json:"uid"`
	From   string    `json:"from"`
	To     string    `json:"to"`
	At     time.Time `json:"at"`
}

// Endpoint record operations (EndpointBody.Op).
const (
	OpPublish  = "publish"
	OpSuspend  = "suspend"
	OpWithdraw = "withdraw"
)

// EndpointBody is the KindEndpoint payload.
type EndpointBody struct {
	Op         string         `json:"op"`
	UID        string         `json:"uid"`
	Endpoint   proto.Endpoint `json:"endpoint,omitempty"`
	Generation uint64         `json:"generation,omitempty"`
}

// EncodeRecord frames rec: length prefix, CRC, JSON payload.
func EncodeRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: marshal %s record: %w", rec.Kind, err)
	}
	if len(payload) > MaxRecordSize {
		return nil, ErrTooLarge
	}
	frame := make([]byte, headerSize+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[headerSize:], payload)
	return frame, nil
}

// DecodeRecord decodes one framed record from the front of data. It
// returns the record, the number of bytes consumed, and an error. A short
// buffer (header or payload cut off) returns io.ErrUnexpectedEOF — the
// torn-tail signal; an empty buffer returns io.EOF.
func DecodeRecord(data []byte) (Record, int, error) {
	if len(data) == 0 {
		return Record{}, 0, io.EOF
	}
	if len(data) < headerSize {
		return Record{}, 0, io.ErrUnexpectedEOF
	}
	n := int(binary.BigEndian.Uint32(data[0:4]))
	if n > MaxRecordSize {
		return Record{}, 0, ErrTooLarge
	}
	if len(data) < headerSize+n {
		return Record{}, 0, io.ErrUnexpectedEOF
	}
	payload := data[headerSize : headerSize+n]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(data[4:8]) {
		return Record{}, 0, ErrChecksum
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, 0, fmt.Errorf("journal: decode record: %w", err)
	}
	return rec, headerSize + n, nil
}

// --- Writer -----------------------------------------------------------------

// CrashMode is a fault-injection verdict returned by a crash hook.
type CrashMode int

// Crash modes.
const (
	// NoCrash appends the record normally.
	NoCrash CrashMode = iota
	// CrashLost simulates the process dying before the record's write():
	// the record is lost entirely and the writer is dead.
	CrashLost
	// CrashTorn simulates the process dying mid-write(): a prefix of the
	// framed record lands in the file and the writer is dead. Replay
	// tolerates exactly this artifact as a torn tail.
	CrashTorn
)

// Config parameterizes a Writer.
type Config struct {
	// Path is the journal file (created or appended to).
	Path string
	// Clock paces the fsync batching. Required.
	Clock simtime.Clock
	// FlushEvery is the fsync batching interval on Clock (default
	// DefaultFlushEvery).
	FlushEvery time.Duration
}

// Writer appends records to a journal file. Appends are synchronous
// write()s under a mutex; fsync runs on the session clock's cadence.
type Writer struct {
	f     *os.File
	path  string
	clock simtime.Clock

	mu        sync.Mutex
	seq       uint64
	closed    bool
	crashed   bool
	dirty     bool
	appends   int64
	syncs     int64
	crashHook func(Record) CrashMode
	onCrash   func()

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// Open opens (or creates) the journal at cfg.Path for appending and
// starts the flusher.
func Open(cfg Config) (*Writer, error) {
	if cfg.Path == "" || cfg.Clock == nil {
		return nil, errors.New("journal: Open needs a path and a clock")
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = DefaultFlushEvery
	}
	f, err := os.OpenFile(cfg.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", cfg.Path, err)
	}
	w := &Writer{
		f: f, path: cfg.Path, clock: cfg.Clock,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	go w.flusher(cfg.FlushEvery)
	return w, nil
}

// Path returns the journal file path.
func (w *Writer) Path() string { return w.path }

// SetCrashHook installs a fault-injection hook consulted on every append
// (before the write). Returning CrashLost or CrashTorn kills the writer
// at exactly that record; the OnCrash callback then fires once, outside
// the writer lock.
func (w *Writer) SetCrashHook(hook func(Record) CrashMode) {
	w.mu.Lock()
	w.crashHook = hook
	w.mu.Unlock()
}

// OnCrash registers a callback fired once when an injected crash triggers
// (simulating the rest of the process dying with the journal). It runs
// outside the writer lock but possibly under a caller's lock — it must
// not call back into the component whose append crashed.
func (w *Writer) OnCrash(fn func()) {
	w.mu.Lock()
	w.onCrash = fn
	w.mu.Unlock()
}

// Append journals one record. After a crash (injected or Crash()), it
// drops the record and returns ErrCrashed.
func (w *Writer) Append(kind Kind, body any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("journal: marshal %s body: %w", kind, err)
	}

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.crashed {
		w.mu.Unlock()
		return ErrCrashed
	}
	rec := Record{Kind: kind, Seq: w.seq + 1, Body: raw}
	frame, err := EncodeRecord(rec)
	if err != nil {
		w.mu.Unlock()
		return err
	}
	mode := NoCrash
	if w.crashHook != nil {
		mode = w.crashHook(rec)
	}
	var fireCrash func()
	switch mode {
	case CrashLost:
		w.crashed = true
		fireCrash = w.onCrash
	case CrashTorn:
		// Die mid-write: the header plus part of the payload lands.
		torn := frame[:headerSize+len(frame[headerSize:])/2]
		_, _ = w.f.Write(torn)
		w.crashed = true
		fireCrash = w.onCrash
	default:
		if _, werr := w.f.Write(frame); werr != nil {
			w.mu.Unlock()
			return fmt.Errorf("journal: append: %w", werr)
		}
		w.seq++
		w.dirty = true
		w.appends++
	}
	w.mu.Unlock()

	if fireCrash != nil {
		fireCrash()
	}
	if mode != NoCrash {
		return ErrCrashed
	}
	return nil
}

// flusher batches fsync on the session clock.
func (w *Writer) flusher(every time.Duration) {
	defer close(w.done)
	ticker := w.clock.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C():
			w.mu.Lock()
			if w.dirty && !w.closed && !w.crashed {
				_ = w.f.Sync()
				w.dirty = false
				w.syncs++
			}
			w.mu.Unlock()
		}
	}
}

// stopFlusher stops the flusher and waits for it to exit.
func (w *Writer) stopFlusher() {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}

// Close flushes, syncs and closes the journal (graceful shutdown).
func (w *Writer) Close() error {
	w.stopFlusher()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.crashed {
		return nil
	}
	if w.dirty {
		_ = w.f.Sync()
		w.syncs++
		w.dirty = false
	}
	return w.f.Close()
}

// Crash simulates the owning process dying: the file descriptor closes
// without a final fsync and every subsequent Append is dropped with
// ErrCrashed. Records already written survive (a process crash does not
// roll back completed write()s).
func (w *Writer) Crash() {
	w.stopFlusher()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.crashed {
		return
	}
	w.crashed = true
	_ = w.f.Close()
}

// Crashed reports whether the writer is dead from Crash or an injected
// fault.
func (w *Writer) Crashed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.crashed
}

// Stats returns the append and fsync counts (for overhead accounting).
func (w *Writer) Stats() (appends, syncs int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appends, w.syncs
}

// --- Replay -----------------------------------------------------------------

// ReplayStats is the granular accounting of one replay.
type ReplayStats struct {
	// Records counts complete, checksum-valid records decoded.
	Records int
	// Applied counts records that changed the snapshot.
	Applied int
	// Skipped counts records tolerated but not applied (duplicates,
	// out-of-order transitions, references to unknown UIDs). SkipReasons
	// breaks the count down.
	Skipped int
	// Invalid counts records that fail structural validation (checksum,
	// framing, JSON). Any invalid record fails the replay: apply is
	// all-or-nothing.
	Invalid int
	// TornTail reports a truncated final record — the expected artifact
	// of a crash mid-append, tolerated and not counted as invalid.
	TornTail bool
	// ValidBytes is the byte offset of the end of the valid record
	// prefix; anything after it is the torn tail. A writer re-opening the
	// journal for appending MUST truncate to this offset first when
	// TornTail is set — appending after the torn fragment would make the
	// fragment's length prefix consume the new records as its payload on
	// the next replay, failing the whole journal with ErrChecksum.
	ValidBytes int64
	// SkipReasons counts skips by reason.
	SkipReasons map[string]int
}

func (st *ReplayStats) skip(reason string) {
	st.Skipped++
	if st.SkipReasons == nil {
		st.SkipReasons = make(map[string]int)
	}
	st.SkipReasons[reason]++
}

// PilotState is a pilot's replayed last known state.
type PilotState struct {
	Desc  spec.PilotDescription
	State states.State
}

// TaskState is a task's replayed last known state.
type TaskState struct {
	Desc  spec.TaskDescription
	State states.State
	// Pilot is the last journaled placement binding ("" if never bound).
	Pilot string
}

// ServiceState is a service's replayed last known state.
type ServiceState struct {
	Desc  spec.ServiceDescription
	State states.State
	Pilot string
	// Endpoint and Generation reflect the last journaled publication.
	Endpoint   proto.Endpoint
	Generation uint64
	// Suspended means the last endpoint op was a suspend (a failover was
	// in flight when the journal ended). Withdrawn tombstones the logical
	// service: it settled for good and recovery must not resurrect it.
	Suspended bool
	Withdrawn bool
}

// Snapshot is the world view a journal replays to: the session identity
// plus the last known state of every journaled entity, each list in
// first-appearance (submission) order.
type Snapshot struct {
	Session  SessionBody
	Pilots   []*PilotState
	Tasks    []*TaskState
	Services []*ServiceState
}

// Pilot returns the replayed pilot state for uid.
func (s *Snapshot) Pilot(uid string) *PilotState {
	for _, p := range s.Pilots {
		if p.Desc.UID == uid {
			return p
		}
	}
	return nil
}

// ReplayFile replays the journal at path. See Replay.
func ReplayFile(path string) (*Snapshot, *ReplayStats, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, &ReplayStats{}, fmt.Errorf("journal: read %s: %w", path, err)
	}
	return Replay(data)
}

// Replay decodes and applies every record in data. Application is
// all-or-nothing with respect to structural validity: any checksum,
// framing or JSON failure before the final record returns an error and no
// snapshot (stats still report what was seen). Semantically impossible
// records — duplicate descriptions, out-of-order or illegal transitions,
// references to unknown UIDs — are skipped and accounted, mirroring a
// transactional importer: the journal is evidence, replay is the
// validator. A truncated final record is tolerated as the torn tail of a
// crash mid-append.
func Replay(data []byte) (*Snapshot, *ReplayStats, error) {
	stats := &ReplayStats{}
	snap := &Snapshot{}
	pilots := make(map[string]*PilotState)
	tasks := make(map[string]*TaskState)
	services := make(map[string]*ServiceState)

	off := 0
	for off < len(data) {
		rec, n, err := DecodeRecord(data[off:])
		if err == io.EOF {
			break
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			stats.TornTail = true
			break
		}
		if err != nil {
			stats.Invalid++
			return nil, stats, fmt.Errorf("journal: record at offset %d: %w", off, err)
		}
		off += n
		stats.ValidBytes = int64(off)
		stats.Records++
		if err := apply(rec, snap, pilots, tasks, services, stats); err != nil {
			stats.Invalid++
			return nil, stats, fmt.Errorf("journal: record seq %d: %w", rec.Seq, err)
		}
	}
	return snap, stats, nil
}

// apply folds one record into the snapshot. It returns an error only for
// structurally invalid bodies (all-or-nothing); semantic rejections are
// skipped and counted.
func apply(rec Record, snap *Snapshot, pilots map[string]*PilotState,
	tasks map[string]*TaskState, services map[string]*ServiceState, stats *ReplayStats) error {
	switch rec.Kind {
	case KindSession:
		var b SessionBody
		if err := json.Unmarshal(rec.Body, &b); err != nil {
			return err
		}
		// One session record per incarnation; the latest wins, and the
		// incarnation only moves forward.
		if b.Incarnation < snap.Session.Incarnation {
			stats.skip("stale-session")
			return nil
		}
		snap.Session = b
		stats.Applied++

	case KindPilot:
		var b PilotBody
		if err := json.Unmarshal(rec.Body, &b); err != nil {
			return err
		}
		if _, dup := pilots[b.UID]; dup {
			stats.skip("duplicate-desc")
			return nil
		}
		ps := &PilotState{Desc: b.Desc, State: states.PilotModel().Initial()}
		pilots[b.UID] = ps
		snap.Pilots = append(snap.Pilots, ps)
		stats.Applied++

	case KindTask:
		var b TaskBody
		if err := json.Unmarshal(rec.Body, &b); err != nil {
			return err
		}
		if _, dup := tasks[b.UID]; dup {
			stats.skip("duplicate-desc")
			return nil
		}
		ts := &TaskState{Desc: b.Desc, State: states.TaskModel().Initial()}
		tasks[b.UID] = ts
		snap.Tasks = append(snap.Tasks, ts)
		stats.Applied++

	case KindService:
		var b ServiceBody
		if err := json.Unmarshal(rec.Body, &b); err != nil {
			return err
		}
		if _, dup := services[b.UID]; dup {
			stats.skip("duplicate-desc")
			return nil
		}
		ss := &ServiceState{Desc: b.Desc, State: states.ServiceModel().Initial()}
		services[b.UID] = ss
		snap.Services = append(snap.Services, ss)
		stats.Applied++

	case KindBind:
		var b BindBody
		if err := json.Unmarshal(rec.Body, &b); err != nil {
			return err
		}
		switch b.Entity {
		case "task":
			if ts := tasks[b.UID]; ts != nil {
				ts.Pilot = b.Pilot
				stats.Applied++
				return nil
			}
		case "service":
			if ss := services[b.UID]; ss != nil {
				ss.Pilot = b.Pilot
				stats.Applied++
				return nil
			}
		}
		stats.skip("bind-unknown-uid")

	case KindTransition:
		var b TransitionBody
		if err := json.Unmarshal(rec.Body, &b); err != nil {
			return err
		}
		applyTransition(b, pilots, tasks, services, stats)

	case KindEndpoint:
		var b EndpointBody
		if err := json.Unmarshal(rec.Body, &b); err != nil {
			return err
		}
		ss := services[b.UID]
		if ss == nil {
			stats.skip("endpoint-unknown-uid")
			return nil
		}
		switch b.Op {
		case OpPublish:
			ss.Endpoint = b.Endpoint
			if b.Generation > ss.Generation {
				ss.Generation = b.Generation
			}
			ss.Suspended = false
			ss.Withdrawn = false
		case OpSuspend:
			ss.Suspended = true
		case OpWithdraw:
			ss.Withdrawn = true
			ss.Suspended = false
		default:
			stats.skip("endpoint-unknown-op")
			return nil
		}
		stats.Applied++

	default:
		stats.skip("unknown-kind")
	}
	return nil
}

// applyTransition validates one journaled transition against the entity's
// state model and current replayed state. Valid edges apply; duplicates
// and out-of-order records skip with accounting. A transition from the
// model's initial state while the replayed state is final is a machine
// restart — a re-placement re-bootstrapping the same UID on a new host —
// and re-enters the model from the top.
func applyTransition(b TransitionBody, pilots map[string]*PilotState,
	tasks map[string]*TaskState, services map[string]*ServiceState, stats *ReplayStats) {
	model := states.ModelFor(states.Entity(b.Entity))
	if model == nil {
		stats.skip("transition-unknown-entity")
		return
	}
	var cur *states.State
	switch states.Entity(b.Entity) {
	case states.EntityPilot:
		if ps := pilots[b.UID]; ps != nil {
			cur = &ps.State
		}
	case states.EntityTask:
		if ts := tasks[b.UID]; ts != nil {
			cur = &ts.State
		}
	case states.EntityService:
		if ss := services[b.UID]; ss != nil {
			cur = &ss.State
		}
	}
	if cur == nil {
		stats.skip("transition-unknown-uid")
		return
	}
	from, to := states.State(b.From), states.State(b.To)
	switch {
	case from == *cur && model.CanTransition(from, to):
		*cur = to
		stats.Applied++
	case from == model.Initial() && model.IsFinal(*cur) && model.CanTransition(from, to):
		// Machine restart under the same UID (re-placement bootstrap).
		*cur = to
		stats.Applied++
	case to == *cur:
		stats.skip("duplicate-transition")
	case from != *cur:
		stats.skip("out-of-order-transition")
	default:
		stats.skip("illegal-transition")
	}
}

// MaxSeqSuffix scans uids for manager-generated identifiers of the form
// prefix+"%0Nd" and returns the highest numeric suffix (0 when none
// match). Recovery seeds manager sequence counters with it so new UIDs
// never collide with journaled ones.
func MaxSeqSuffix(uids []string, prefix string) int {
	max := 0
	for _, uid := range uids {
		if len(uid) <= len(prefix) || uid[:len(prefix)] != prefix {
			continue
		}
		n := 0
		ok := true
		for _, c := range uid[len(prefix):] {
			if c < '0' || c > '9' {
				ok = false
				break
			}
			n = n*10 + int(c-'0')
		}
		if ok && n > max {
			max = n
		}
	}
	return max
}

// SortedUIDs returns the UIDs of every journaled task, in submission
// order (exported for reports).
func (s *Snapshot) SortedUIDs() []string {
	out := make([]string, 0, len(s.Tasks))
	for _, t := range s.Tasks {
		out = append(out, t.Desc.UID)
	}
	sort.Strings(out)
	return out
}

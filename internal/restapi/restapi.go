// Package restapi exposes a model-serving Server over HTTP — the REST
// interface of the paper's R3 deployment ("a cloud-based server on which
// we expose ML capabilities via REST and ZeroMQ interfaces"). The API
// shape follows Ollama's: POST /api/generate for inference, plus
// /api/health for readiness and liveness probing across the WAN.
package restapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/proto"
	"repro/internal/serving"
)

// GenerateRequest is the POST /api/generate body.
type GenerateRequest struct {
	Model     string `json:"model"`
	Prompt    string `json:"prompt"`
	MaxTokens int    `json:"max_tokens,omitempty"`
	RequestID string `json:"request_id,omitempty"`
	ClientID  string `json:"client_id,omitempty"`
}

// GenerateResponse is the POST /api/generate reply body.
type GenerateResponse struct {
	Model        string       `json:"model"`
	Response     string       `json:"response"`
	PromptTokens int          `json:"prompt_tokens"`
	OutputTokens int          `json:"output_tokens"`
	ServiceUID   string       `json:"service_uid"`
	Timing       proto.Timing `json:"timing"`
	Error        string       `json:"error,omitempty"`
}

// Health is the GET /api/health body.
type Health struct {
	ServiceUID string `json:"service_uid"`
	Model      string `json:"model"`
	Ready      bool   `json:"ready"`
	Queued     int    `json:"queued"`
	InFlight   int    `json:"in_flight"`
	QueueDepth int    `json:"queue_depth"` // Queued + InFlight
	Processed  int64  `json:"processed"`
}

// Gateway serves one serving.Server over HTTP.
type Gateway struct {
	srv  *serving.Server
	http *http.Server
	ln   net.Listener
}

// NewGateway binds addr (e.g. "127.0.0.1:0") and starts serving.
func NewGateway(srv *serving.Server, addr string) (*Gateway, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("restapi: listen %s: %w", addr, err)
	}
	g := &Gateway{srv: srv, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/generate", g.handleGenerate)
	mux.HandleFunc("GET /api/health", g.handleHealth)
	g.http = &http.Server{Handler: mux}
	go g.http.Serve(ln) //nolint:errcheck
	return g, nil
}

// Addr returns the bound address ("host:port").
func (g *Gateway) Addr() string { return g.ln.Addr().String() }

// URL returns the base URL.
func (g *Gateway) URL() string { return "http://" + g.Addr() }

// Endpoint returns the registrable endpoint record for this gateway.
func (g *Gateway) Endpoint() proto.Endpoint {
	return proto.Endpoint{
		ServiceUID: g.srv.UID(),
		Model:      g.srv.Model(),
		Address:    g.URL(),
		Protocol:   "rest",
	}
}

// Close shuts the HTTP server down.
func (g *Gateway) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return g.http.Shutdown(ctx)
}

func (g *Gateway) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, GenerateResponse{Error: "malformed request: " + err.Error()})
		return
	}
	reply, err := g.srv.Submit(r.Context(), proto.InferenceRequest{
		RequestUID: req.RequestID,
		ClientUID:  req.ClientID,
		Model:      req.Model,
		Prompt:     req.Prompt,
		MaxTokens:  req.MaxTokens,
	})
	if err != nil {
		status := http.StatusServiceUnavailable
		if errors.Is(err, serving.ErrQueueFull) {
			status = http.StatusTooManyRequests
		}
		writeJSON(w, status, GenerateResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, GenerateResponse{
		Model:        reply.Model,
		Response:     reply.Text,
		PromptTokens: reply.PromptTokens,
		OutputTokens: reply.OutputTokens,
		ServiceUID:   reply.ServiceUID,
		Timing:       reply.Timing,
	})
}

func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		ServiceUID: g.srv.UID(),
		Model:      g.srv.Model(),
		Ready:      g.srv.Ready(),
		Queued:     g.srv.Queued(),
		InFlight:   g.srv.InFlight(),
		QueueDepth: g.srv.QueueDepth(),
		Processed:  g.srv.Processed(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// Client calls a remote REST model service.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the gateway at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{base: baseURL, hc: &http.Client{Timeout: 5 * time.Minute}}
}

// Generate performs one inference call.
func (c *Client) Generate(ctx context.Context, req GenerateRequest) (GenerateResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return GenerateResponse{}, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/api/generate", bytes.NewReader(body))
	if err != nil {
		return GenerateResponse{}, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		return GenerateResponse{}, fmt.Errorf("restapi: generate: %w", err)
	}
	defer resp.Body.Close()
	var out GenerateResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&out); err != nil {
		return GenerateResponse{}, fmt.Errorf("restapi: decode response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		msg := out.Error
		if msg == "" {
			msg = resp.Status
		}
		return out, fmt.Errorf("restapi: generate failed: %s", msg)
	}
	return out, nil
}

// Health fetches the remote health record.
func (c *Client) Health(ctx context.Context) (Health, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/api/health", nil)
	if err != nil {
		return Health{}, err
	}
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		return Health{}, fmt.Errorf("restapi: health: %w", err)
	}
	defer resp.Body.Close()
	var out Health
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&out); err != nil {
		return Health{}, err
	}
	return out, nil
}

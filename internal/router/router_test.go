package router

import (
	"errors"
	"testing"

	"repro/internal/platform"
	"repro/internal/scheduler"
	"repro/internal/spec"
)

// fakeTarget is a scripted pilot view.
type fakeTarget struct {
	uid    string
	groups []platform.NodeGroup
	snap   scheduler.Snapshot
}

func (f *fakeTarget) UID() string                  { return f.uid }
func (f *fakeTarget) Shapes() []platform.NodeGroup { return f.groups }
func (f *fakeTarget) Snapshot() scheduler.Snapshot { return f.snap }

func mkTarget(uid string, spec platform.NodeSpec, nodes, waiting, freeCores int) *fakeTarget {
	return &fakeTarget{
		uid:    uid,
		groups: []platform.NodeGroup{{Count: nodes, Spec: spec}},
		snap: scheduler.Snapshot{
			Waiting: waiting,
			Shapes: []scheduler.ShapeCapacity{{
				Spec: spec, Nodes: nodes, FreeCores: freeCores,
			}},
			MaxFreeCores: min(freeCores, spec.Cores),
			MaxFreeGPUs:  spec.GPUs,
			MaxFreeMemGB: spec.MemGB,
		},
	}
}

var (
	fat  = platform.NodeSpec{Cores: 128, GPUs: 16, MemGB: 1024}
	thin = platform.NodeSpec{Cores: 16, GPUs: 0, MemGB: 64}
)

func TestByName(t *testing.T) {
	for name, want := range map[string]string{
		"":             NameRoundRobin,
		"round-robin":  NameRoundRobin,
		"rr":           NameRoundRobin,
		"least-loaded": NameLeastLoaded,
		"capacity-fit": NameCapacityFit,
	} {
		r, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if r.Name() != want {
			t.Fatalf("ByName(%q).Name() = %q, want %q", name, r.Name(), want)
		}
	}
	if _, err := ByName("strict"); err == nil {
		t.Fatal("ByName accepted an unknown router")
	}
}

// TestRoundRobinRotationAndNoAdvanceOnError pins the two round-robin
// contracts: strict rotation over targets, and a cursor that only moves
// when a selection is actually returned (the partial-failure semantics
// the TaskManager exposes).
func TestRoundRobinRotationAndNoAdvanceOnError(t *testing.T) {
	r := NewRoundRobin()
	targets := []Target{
		mkTarget("p0", fat, 2, 0, 256),
		mkTarget("p1", fat, 2, 0, 256),
		mkTarget("p2", fat, 2, 0, 256),
	}
	d := spec.TaskDescription{Name: "t", Cores: 1}
	for i := 0; i < 9; i++ {
		got, err := r.Route(targets, d)
		if err != nil {
			t.Fatal(err)
		}
		if got != i%3 {
			t.Fatalf("route %d = %d, want %d", i, got, i%3)
		}
	}
	if _, err := r.Route(nil, d); !errors.Is(err, ErrNoTargets) {
		t.Fatalf("empty targets err = %v, want ErrNoTargets", err)
	}
	// The failed call must not have advanced the cursor.
	if got, _ := r.Route(targets, d); got != 0 {
		t.Fatalf("cursor advanced across a failed route: got %d, want 0", got)
	}
}

func TestLeastLoadedPrefersShallowQueueThenFreeCapacity(t *testing.T) {
	r := NewLeastLoaded()
	d := spec.TaskDescription{Name: "t", Cores: 1}
	// p1 has the shallowest wait pool.
	i, err := r.Route([]Target{
		mkTarget("p0", fat, 2, 5, 256),
		mkTarget("p1", fat, 2, 1, 0),
		mkTarget("p2", fat, 2, 3, 256),
	}, d)
	if err != nil || i != 1 {
		t.Fatalf("route = %d, %v; want 1", i, err)
	}
	// Equal wait depth: more free weighted capacity wins.
	i, err = r.Route([]Target{
		mkTarget("p0", fat, 2, 2, 4),
		mkTarget("p1", fat, 2, 2, 200),
	}, d)
	if err != nil || i != 1 {
		t.Fatalf("route = %d, %v; want 1 (more free capacity)", i, err)
	}
	// Full tie: lowest index, deterministically.
	i, err = r.Route([]Target{
		mkTarget("p0", fat, 2, 2, 8),
		mkTarget("p1", fat, 2, 2, 8),
	}, d)
	if err != nil || i != 0 {
		t.Fatalf("route = %d, %v; want 0 (tie → lowest index)", i, err)
	}
}

func TestCapacityFitRoutesOnShapes(t *testing.T) {
	r := NewCapacityFit()
	thinPilot := mkTarget("thin", thin, 96, 0, 96*16)
	fatPilot := mkTarget("fat", fat, 32, 4, 32*128)

	// A whole-fat-node task fits only the fat pilot's shapes, even though
	// the thin pilot is idle and the fat one has queued work.
	i, err := r.Route([]Target{thinPilot, fatPilot},
		spec.TaskDescription{Name: "large", Cores: 128, GPUs: 16})
	if err != nil || i != 1 {
		t.Fatalf("large route = %d, %v; want 1 (fat pilot)", i, err)
	}

	// A thin task fits both; the idle thin pilot wins on load.
	i, err = r.Route([]Target{thinPilot, fatPilot},
		spec.TaskDescription{Name: "small", Cores: 16})
	if err != nil || i != 0 {
		t.Fatalf("small route = %d, %v; want 0 (idle thin pilot)", i, err)
	}

	// A task that fits no attached pilot's shapes is rejected at submit.
	_, err = r.Route([]Target{thinPilot, fatPilot},
		spec.TaskDescription{Name: "monster", Cores: 256})
	var unroutable ErrUnroutable
	if !errors.As(err, &unroutable) {
		t.Fatalf("monster err = %v, want ErrUnroutable", err)
	}
	if unroutable.Cores != 256 {
		t.Fatalf("ErrUnroutable echoes %+v", unroutable)
	}
	if _, err := r.Route(nil, spec.TaskDescription{Name: "t", Cores: 1}); !errors.Is(err, ErrNoTargets) {
		t.Fatalf("empty targets err = %v, want ErrNoTargets", err)
	}
}

// TestCapacityFitPrefersFitsNow pins the late-binding preference: among
// ever-fitting pilots, one whose free single-node maxima admit the task
// right now beats a less-loaded pilot that would only queue it.
func TestCapacityFitPrefersFitsNow(t *testing.T) {
	r := NewCapacityFit()
	// Both pilots' shapes fit the task; busy's nodes are drained (nothing
	// fits now) while full-capacity idle can start it immediately even
	// though its wait pool is deeper.
	busy := mkTarget("busy", fat, 4, 0, 0)
	busy.snap.MaxFreeCores = 0
	busy.snap.MaxFreeGPUs = 0
	busy.snap.MaxFreeMemGB = 0
	idle := mkTarget("idle", fat, 4, 3, 4*128)
	i, err := r.Route([]Target{busy, idle}, spec.TaskDescription{Name: "t", Cores: 64, GPUs: 8})
	if err != nil || i != 1 {
		t.Fatalf("route = %d, %v; want 1 (fits-now beats shallow queue)", i, err)
	}
	// When nobody fits now, queue on the shallowest ever-fitting pool.
	alsoBusy := mkTarget("busy2", fat, 4, 2, 0)
	alsoBusy.snap.MaxFreeCores = 0
	alsoBusy.snap.MaxFreeGPUs = 0
	alsoBusy.snap.MaxFreeMemGB = 0
	i, err = r.Route([]Target{busy, alsoBusy}, spec.TaskDescription{Name: "t", Cores: 64, GPUs: 8})
	if err != nil || i != 0 {
		t.Fatalf("route = %d, %v; want 0 (shallowest queue among queue-only)", i, err)
	}
}

// TestRoutersAreFreshInstances guards the per-manager state contract:
// ByName must hand out independent cursors.
func TestRoutersAreFreshInstances(t *testing.T) {
	a, _ := ByName(NameRoundRobin)
	b, _ := ByName(NameRoundRobin)
	targets := []Target{
		mkTarget("p0", fat, 1, 0, 128),
		mkTarget("p1", fat, 1, 0, 128),
	}
	d := spec.TaskDescription{Name: "t", Cores: 1}
	if i, _ := a.Route(targets, d); i != 0 {
		t.Fatalf("a first route = %d", i)
	}
	if i, _ := b.Route(targets, d); i != 0 {
		t.Fatalf("b first route = %d; cursors shared between instances", i)
	}
}

package scheduler

import (
	"math"

	"repro/internal/platform"
)

// nodeIndex is a max-capacity segment tree over the scheduler's node list.
// Each leaf mirrors one node's free cores / GPUs / memory; each inner
// segment holds the per-dimension maxima of its children. It answers the
// first-fit query — "lowest node index whose free capacity covers a
// demand" — by descending left-first and pruning every segment whose
// maxima cannot cover the demand, replacing the scheduler's O(nodes)
// linear scan with an O(log nodes) search on large pilots.
//
// The per-dimension maxima are a necessary condition only (the max cores
// and max GPUs in a segment may come from different nodes), so the search
// backtracks: a pruned descent is retried in the right sibling. Leaves are
// exact, which keeps the result identical to the linear first-fit.
//
// The tree is owned by the scheduler goroutine (guarded by Scheduler.mu)
// and refreshed from the nodes' maintained free counters: point refreshes
// after every grant and release the scheduler performs itself, and a full
// refresh before concluding that nothing fits — which re-synchronizes any
// capacity released behind the scheduler's back (allocations released
// directly rather than through Scheduler.Release), exactly the staleness
// the seed's rescan-every-time loop tolerated.
type nodeIndex struct {
	nodes []*platform.Node
	size  int // number of leaves: smallest power of two ≥ len(nodes)
	cores []int
	gpus  []int
	mem   []float64
	// score is the min-leftover augmentation: each leaf holds the node's
	// weighted free capacity (w.Capacity of its free counters;
	// +Inf for padding leaves), each inner segment
	// the minimum over its children. For a fixed demand, least leftover =
	// least weighted free among fitting leaves, so findBest can prune any
	// segment whose minimum cannot beat the best leaf found so far and
	// typically descends a single root-to-leaf path instead of visiting
	// every fitting leaf.
	score []float64
	// w is the leftover exchange rate the score dimension folds on,
	// calibrated per pool from the node shape mix (DeriveWeights).
	w Weights
	// shapeOf maps each node index to its entry in shapes.
	shapeOf []int
	// shapes holds per-distinct-spec free-capacity aggregates, maintained
	// on every refresh so Scheduler.Snapshot is O(distinct shapes). Only
	// read or written under the scheduler lock.
	shapes []ShapeCapacity
	// specs lists the distinct node shapes, immutable after construction —
	// the lock-free satisfiability check reads this, never shapes.
	specs []platform.NodeSpec
}

func newNodeIndex(nodes []*platform.Node) *nodeIndex {
	size := 1
	for size < len(nodes) {
		size <<= 1
	}
	ix := &nodeIndex{
		nodes:   nodes,
		size:    size,
		cores:   make([]int, 2*size),
		gpus:    make([]int, 2*size),
		mem:     make([]float64, 2*size),
		score:   make([]float64, 2*size),
		shapeOf: make([]int, len(nodes)),
	}
	pos := make(map[platform.NodeSpec]int)
	for i, n := range nodes {
		sp := n.Spec()
		k, seen := pos[sp]
		if !seen {
			k = len(ix.shapes)
			pos[sp] = k
			ix.shapes = append(ix.shapes, ShapeCapacity{Spec: sp})
		}
		ix.shapes[k].Nodes++
		ix.shapeOf[i] = k
	}
	for _, sh := range ix.shapes {
		ix.specs = append(ix.specs, sh.Spec)
	}
	groups := make([]platform.NodeGroup, len(ix.shapes))
	for k, sh := range ix.shapes {
		groups[k] = platform.NodeGroup{Count: sh.Nodes, Spec: sh.Spec}
	}
	ix.w = DeriveWeights(groups)
	ix.refreshAll()
	return ix
}

// WeightedCapacity folds a capacity (or demand) triple onto the global
// default scale (DefaultWeights): cores + bestFitGPUWeight·gpus +
// bestFitMemWeight·memGB. Exported so cross-pool rankings — the
// fragmentation experiment's thin/fat split, the least-loaded router's
// free-capacity comparison — share one exchange rate. Placement inside a
// pool uses the pool-calibrated Weights instead (DeriveWeights).
func WeightedCapacity(cores, gpus int, memGB float64) float64 {
	return DefaultWeights.Capacity(cores, gpus, memGB)
}

// refresh re-reads one node's free counters into its leaf, folds the
// change into the node's per-shape aggregate, and bubbles the
// per-dimension maxima and the min score up.
func (ix *nodeIndex) refresh(i int) {
	leaf := ix.size + i
	sh := &ix.shapes[ix.shapeOf[i]]
	sh.FreeCores -= ix.cores[leaf]
	sh.FreeGPUs -= ix.gpus[leaf]
	sh.FreeMemGB -= ix.mem[leaf]
	ix.cores[leaf], ix.gpus[leaf], ix.mem[leaf] = ix.nodes[i].Free()
	sh.FreeCores += ix.cores[leaf]
	sh.FreeGPUs += ix.gpus[leaf]
	sh.FreeMemGB += ix.mem[leaf]
	ix.score[leaf] = ix.w.Capacity(ix.cores[leaf], ix.gpus[leaf], ix.mem[leaf])
	for p := leaf / 2; p >= 1; p /= 2 {
		l, r := 2*p, 2*p+1
		ix.cores[p] = max(ix.cores[l], ix.cores[r])
		ix.gpus[p] = max(ix.gpus[l], ix.gpus[r])
		ix.mem[p] = max(ix.mem[l], ix.mem[r])
		ix.score[p] = min(ix.score[l], ix.score[r])
	}
}

// refreshAll rebuilds the whole tree and the per-shape aggregates from
// the nodes' counters in O(n).
func (ix *nodeIndex) refreshAll() {
	for k := range ix.shapes {
		ix.shapes[k].FreeCores = 0
		ix.shapes[k].FreeGPUs = 0
		ix.shapes[k].FreeMemGB = 0
	}
	for i := range ix.nodes {
		leaf := ix.size + i
		ix.cores[leaf], ix.gpus[leaf], ix.mem[leaf] = ix.nodes[i].Free()
		ix.score[leaf] = ix.w.Capacity(ix.cores[leaf], ix.gpus[leaf], ix.mem[leaf])
		sh := &ix.shapes[ix.shapeOf[i]]
		sh.FreeCores += ix.cores[leaf]
		sh.FreeGPUs += ix.gpus[leaf]
		sh.FreeMemGB += ix.mem[leaf]
	}
	for i := len(ix.nodes); i < ix.size; i++ {
		leaf := ix.size + i
		ix.cores[leaf], ix.gpus[leaf], ix.mem[leaf] = 0, 0, 0
		// padding leaves must never look like attractive best-fit targets
		ix.score[leaf] = math.Inf(1)
	}
	for p := ix.size - 1; p >= 1; p-- {
		l, r := 2*p, 2*p+1
		ix.cores[p] = max(ix.cores[l], ix.cores[r])
		ix.gpus[p] = max(ix.gpus[l], ix.gpus[r])
		ix.mem[p] = max(ix.mem[l], ix.mem[r])
		ix.score[p] = min(ix.score[l], ix.score[r])
	}
}

// find returns the lowest node index whose leaf covers the demand, or -1.
func (ix *nodeIndex) find(cores, gpus int, memGB float64) int {
	if len(ix.nodes) == 0 {
		return -1
	}
	return ix.search(1, cores, gpus, memGB)
}

// search is a left-first DFS with segment pruning. When no segment's
// maxima are false positives it descends a single root-to-leaf path
// (O(log n)); false positives (per-dimension maxima from different nodes)
// cost extra sibling visits, degrading gracefully toward the linear scan
// it replaces.
func (ix *nodeIndex) search(p, cores, gpus int, memGB float64) int {
	if !ix.covers(p, cores, gpus, memGB) {
		return -1
	}
	if p >= ix.size { // leaf: counters are exact
		if i := p - ix.size; i < len(ix.nodes) {
			return i
		}
		return -1
	}
	if i := ix.search(2*p, cores, gpus, memGB); i >= 0 {
		return i
	}
	return ix.search(2*p+1, cores, gpus, memGB)
}

func (ix *nodeIndex) covers(p, cores, gpus int, memGB float64) bool {
	return ix.cores[p] >= cores && ix.gpus[p] >= gpus && ix.mem[p] >= memGB
}

// Default best-fit leftover weights: one GPU counts like 16 cores (the
// catalog's node shapes carry 8-16 cores per GPU) and 4 GB of memory like
// one core, so the score compares leftovers of different dimensions on
// one scale. Mixed pools recalibrate both rates from their actual shape
// mix (DeriveWeights); these constants remain the single-shape and
// cross-pool scale via DefaultWeights.
const (
	bestFitGPUWeight = 16
	bestFitMemWeight = 0.25
)

// findBest returns the fitting node index whose free capacity exceeds
// the demand by the least (weighted leftover cores + GPUs + memory), or
// -1. Ties break toward the lower index, so on homogeneous pools with
// equal residuals best-fit degenerates to first-fit.
//
// The search is a branch-and-bound over the min-leftover augmentation:
// for a fixed demand the leftover score of a leaf is its weighted free
// capacity minus a constant, so a segment whose min score cannot
// strictly beat the best fitting leaf found so far is pruned — as is,
// via the per-dimension maxima, any segment with no fitting leaf at
// all. Descending left-first makes the pruning inequality (≥) implement
// the lowest-index tie-break, and on pools where equal-score leaves
// dominate (homogeneous, or saturated to near-uniform residuals) the
// walk collapses to one root-to-leaf path: O(log n) against the
// exhaustive O(fitting leaves) scan it replaces, which
// TestFindBestMatchesExhaustiveOracle keeps as the reference.
func (ix *nodeIndex) findBest(cores, gpus int, memGB float64) int {
	if len(ix.nodes) == 0 {
		return -1
	}
	wDemand := ix.w.Capacity(cores, gpus, memGB)
	best, bestScore := -1, math.Inf(1)
	var walk func(p int)
	walk = func(p int) {
		if !ix.covers(p, cores, gpus, memGB) {
			return
		}
		if ix.score[p]-wDemand >= bestScore {
			return // no leaf below can strictly beat the current best
		}
		if p >= ix.size {
			if i := p - ix.size; i < len(ix.nodes) {
				// leaf counters are exact and the bound check passed:
				// this leaf fits and strictly improves on best
				best, bestScore = i, ix.score[p]-wDemand
			}
			return
		}
		walk(2 * p)
		walk(2*p + 1)
	}
	walk(1)
	return best
}

package metrics

import (
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/rng"
)

// sketchTolerance is the assertion bound for sketch-vs-oracle comparisons:
// the documented relative error α, plus a 1ns absolute slop and a hair of
// relative headroom for float rounding at exact bucket boundaries.
func sketchTolerance(alpha float64, exact time.Duration) time.Duration {
	return time.Duration(alpha*float64(exact)*(1+1e-9)) + 1
}

func checkQuantile(t *testing.T, name string, sk *Sketch, sorted []time.Duration, q float64) {
	t.Helper()
	exact := percentile(sorted, q)
	got := sk.Quantile(q)
	tol := sketchTolerance(sk.Alpha(), exact)
	diff := got - exact
	if diff < 0 {
		diff = -diff
	}
	if diff > tol {
		t.Fatalf("%s: q=%v sketch=%v exact=%v diff=%v > tol=%v", name, q, got, exact, diff, tol)
	}
}

// adversarialDistributions generates the sample sets of the property test:
// the shapes most likely to break a log-bucketed sketch.
func adversarialDistributions(src *rng.Source) map[string][]time.Duration {
	out := make(map[string][]time.Duration)

	out["single-sample"] = []time.Duration{137 * time.Millisecond}

	constant := make([]time.Duration, 5000)
	for i := range constant {
		constant[i] = 42 * time.Millisecond
	}
	out["constant"] = constant

	bimodal := make([]time.Duration, 20000)
	for i := range bimodal {
		if src.Float64() < 0.9 {
			bimodal[i] = time.Duration(src.Normal(10e6, 1e6)) // ~10ms
		} else {
			bimodal[i] = time.Duration(src.Normal(2e9, 1e8)) // ~2s
		}
		if bimodal[i] < 0 {
			bimodal[i] = 0
		}
	}
	out["bimodal"] = bimodal

	heavy := make([]time.Duration, 20000)
	for i := range heavy {
		heavy[i] = time.Duration(src.LogNormal(16, 2.5)) // spans µs..minutes
	}
	out["heavy-tailed"] = heavy

	uniform := make([]time.Duration, 10000)
	for i := range uniform {
		uniform[i] = time.Duration(src.Float64() * 1e9)
	}
	out["uniform"] = uniform

	expo := make([]time.Duration, 10000)
	for i := range expo {
		expo[i] = time.Duration(src.Exponential(50e6))
	}
	out["exponential"] = expo

	withZeros := make([]time.Duration, 3000)
	for i := range withZeros {
		if i%3 == 0 {
			withZeros[i] = 0
		} else {
			withZeros[i] = time.Duration(src.Exponential(5e6))
		}
	}
	out["with-zeros"] = withZeros

	return out
}

// TestSketchVsOracle pins the sketch against the exact sort-based oracle
// (metrics.Compute's percentile) over adversarial distributions: every
// quantile must land within the documented relative-error bound, and
// min/max must be exact.
func TestSketchVsOracle(t *testing.T) {
	src := rng.New(7)
	for name, samples := range adversarialDistributions(src) {
		sk := NewSketch(DefaultSketchAlpha)
		for _, v := range samples {
			sk.Observe(v)
		}
		sorted := append([]time.Duration{}, samples...)
		sortDurations(sorted)

		if sk.Count() != len(samples) {
			t.Fatalf("%s: Count = %d, want %d", name, sk.Count(), len(samples))
		}
		if sk.Min() != sorted[0] || sk.Max() != sorted[len(sorted)-1] {
			t.Fatalf("%s: min/max = %v/%v, want exact %v/%v",
				name, sk.Min(), sk.Max(), sorted[0], sorted[len(sorted)-1])
		}
		for _, q := range []float64{0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1.0} {
			checkQuantile(t, name, sk, sorted, q)
		}

		// Stats mean/std must match Compute's exactly modulo float order.
		exact := Compute(samples)
		got := sk.Stats()
		if got.N != exact.N || got.Min != exact.Min || got.Max != exact.Max {
			t.Fatalf("%s: Stats N/Min/Max = %d/%v/%v, want %d/%v/%v",
				name, got.N, got.Min, got.Max, exact.N, exact.Min, exact.Max)
		}
		if d := got.Mean - exact.Mean; d > time.Microsecond || d < -time.Microsecond {
			t.Fatalf("%s: Stats Mean = %v, exact %v", name, got.Mean, exact.Mean)
		}
	}
}

// TestSketchMergeEquivalence asserts merge(a, b) ≡ sketch(a ∪ b) exactly:
// identical bucket contents mean identical quantiles, not merely within
// tolerance.
func TestSketchMergeEquivalence(t *testing.T) {
	src := rng.New(11)
	dists := adversarialDistributions(src)
	a, b := dists["heavy-tailed"], dists["bimodal"]

	ska := NewSketch(DefaultSketchAlpha)
	skb := NewSketch(DefaultSketchAlpha)
	union := NewSketch(DefaultSketchAlpha)
	for _, v := range a {
		ska.Observe(v)
		union.Observe(v)
	}
	for _, v := range b {
		skb.Observe(v)
		union.Observe(v)
	}
	if err := ska.Merge(skb); err != nil {
		t.Fatal(err)
	}
	if ska.Count() != union.Count() {
		t.Fatalf("merged Count = %d, union %d", ska.Count(), union.Count())
	}
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
		if got, want := ska.Quantile(q), union.Quantile(q); got != want {
			t.Fatalf("q=%v: merged %v != union %v", q, got, want)
		}
	}
	if ska.Min() != union.Min() || ska.Max() != union.Max() {
		t.Fatalf("merged min/max %v/%v != union %v/%v",
			ska.Min(), ska.Max(), union.Min(), union.Max())
	}
}

func TestSketchMergeAlphaMismatch(t *testing.T) {
	a := NewSketch(0.01)
	b := NewSketch(0.02)
	b.Observe(time.Second)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging sketches with different alphas must error")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merging nil: %v", err)
	}
	if err := a.Merge(a); err == nil {
		t.Fatal("self-merge must error")
	}
}

// TestSketchMemoryIndependent pins the acceptance criterion that sketch
// memory is a function of the value range, not the sample count: 100× more
// samples from the same distribution must not grow the bucket array.
func TestSketchMemoryIndependent(t *testing.T) {
	small := NewSketch(DefaultSketchAlpha)
	big := NewSketch(DefaultSketchAlpha)
	src := rng.New(3)
	samples := make([]time.Duration, 1000)
	for i := range samples {
		samples[i] = time.Duration(src.Exponential(20e6))
	}
	for _, v := range samples {
		small.Observe(v)
	}
	for rep := 0; rep < 100; rep++ {
		for _, v := range samples {
			big.Observe(v)
		}
	}
	if small.MemoryBytes() != big.MemoryBytes() {
		t.Fatalf("memory grew with sample count: %d bytes at 1k, %d bytes at 100k",
			small.MemoryBytes(), big.MemoryBytes())
	}
	// And the footprint itself is small: ~log(max/min)/α buckets.
	if mb := big.MemoryBytes(); mb > 64<<10 {
		t.Fatalf("sketch footprint %d bytes, want < 64KiB", mb)
	}
}

func TestSketchEmptyAndReset(t *testing.T) {
	sk := NewSketch(0)
	if sk.Alpha() != DefaultSketchAlpha {
		t.Fatalf("Alpha = %v, want default", sk.Alpha())
	}
	if sk.Quantile(0.5) != 0 || sk.Count() != 0 || (sk.Stats() != Stats{}) {
		t.Fatal("empty sketch must be all-zero")
	}
	sk.Observe(time.Second)
	sk.Reset()
	if sk.Count() != 0 || sk.Quantile(1) != 0 || sk.Min() != 0 || sk.Max() != 0 {
		t.Fatal("Reset must clear all state")
	}
}

// TestSketchRelativeErrorExhaustive sweeps single-value sketches across
// magnitudes and checks the midpoint estimate honors the α bound at every
// scale (the geometric bucketing must not degrade at nanosecond or hour
// scales).
func TestSketchRelativeErrorExhaustive(t *testing.T) {
	for _, alpha := range []float64{0.001, 0.01, 0.05} {
		v := time.Duration(1)
		for v < 10*time.Hour {
			sk := NewSketch(alpha)
			sk.Observe(v)
			sk.Observe(v) // interior rank so the bucket estimate is exercised
			sk.Observe(v)
			got := sk.Quantile(0.5)
			diff := time.Duration(math.Abs(float64(got - v)))
			if tol := sketchTolerance(alpha, v); diff > tol {
				t.Fatalf("alpha=%v v=%v: estimate %v diff %v > tol %v", alpha, v, got, diff, tol)
			}
			v = v*7 + 13
		}
	}
}

func sortDurations(d []time.Duration) {
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
}

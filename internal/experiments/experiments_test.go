package experiments

import (
	"context"
	"strings"
	"testing"
	"time"
)

// The tests run miniature versions of each experiment — small instance
// counts and request budgets — and assert the qualitative shapes the paper
// reports, not absolute numbers.

func TestDefaultConfigsMatchPaper(t *testing.T) {
	bt := DefaultBTConfig()
	if len(bt.Counts) != 10 || bt.Counts[0] != 1 || bt.Counts[9] != 640 {
		t.Fatalf("Exp 1 counts = %v", bt.Counts)
	}
	e2 := DefaultExp2Config(DeployLocal, ScalingStrong)
	if e2.RequestsPerClient != 1024 {
		t.Fatalf("Exp 2 requests/client = %d, paper uses 1024", e2.RequestsPerClient)
	}
	if p := e2.Pairs; p[0] != [2]int{16, 1} || p[len(p)-1] != [2]int{16, 16} {
		t.Fatalf("strong pairs = %v", p)
	}
	if p := DefaultExp2Config(DeployLocal, ScalingWeak).Pairs; p[0] != [2]int{1, 1} {
		t.Fatalf("weak pairs = %v", p)
	}
	e3 := DefaultExp3Config(DeployRemote, ScalingWeak)
	if e3.Model != "llama-8b" || e3.Deploy != DeployRemote {
		t.Fatalf("Exp 3 config = %+v", e3)
	}
}

func TestExp1BootstrapShape(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	// scale 100 keeps the base launch sleep at ~22ms real, so the 320-way
	// burst overlaps robustly even when the test suite runs under CPU
	// contention from parallel packages
	cfg := BTConfig{Counts: []int{1, 8, 320}, Model: "llama-8b", Scale: 100, Seed: 1}
	res, err := RunBT(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Launch.N != row.N || row.Init.N != row.N {
			t.Fatalf("N=%d: sample counts %d/%d", row.N, row.Launch.N, row.Init.N)
		}
		// Fig. 3: init dominates launch; publish below launch
		if row.Init.Mean <= row.Launch.Mean {
			t.Fatalf("N=%d: init %v !> launch %v", row.N, row.Init.Mean, row.Launch.Mean)
		}
		if row.Publish.Mean >= row.Launch.Mean {
			t.Fatalf("N=%d: publish %v !< launch %v", row.N, row.Publish.Mean, row.Launch.Mean)
		}
	}
	// Fig. 3: launch grows past the 160-instance saturation
	if res.Rows[2].Launch.Mean <= 2*res.Rows[0].Launch.Mean {
		t.Fatalf("launch at 320 (%v) not markedly above launch at 1 (%v)",
			res.Rows[2].Launch.Mean, res.Rows[0].Launch.Mean)
	}
	// init stays roughly flat (per instance) across the sweep
	ratio := float64(res.Rows[2].Init.Mean) / float64(res.Rows[0].Init.Mean)
	if ratio > 2.0 || ratio < 0.5 {
		t.Fatalf("init mean drifted by %.2fx across the sweep", ratio)
	}
	tab := res.Table().Render()
	if !strings.Contains(tab, "Fig. 3") || !strings.Contains(tab, "320") {
		t.Fatalf("table rendering broken:\n%s", tab)
	}
}

func TestExp2LocalNoopShape(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cfg := RTConfig{
		Model: "noop", Deploy: DeployLocal,
		Pairs:             [][2]int{{4, 1}, {4, 4}},
		RequestsPerClient: 32,
		Scale:             1,
		Seed:              2,
	}
	res, err := RunRT(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Total.N != row.Clients*cfg.RequestsPerClient {
			t.Fatalf("%d/%d: %d samples, want %d", row.Clients, row.Services, row.Total.N, row.Clients*cfg.RequestsPerClient)
		}
		// Exp 2: communication dominates the NOOP response time
		if row.Comm.Mean <= row.Infer.Mean {
			t.Fatalf("%d/%d: communication %v !> inference %v", row.Clients, row.Services, row.Comm.Mean, row.Infer.Mean)
		}
	}
}

func TestExp2RemoteSlowerThanLocal(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	// Root cause of the historical flake: this comparison used to run at
	// Scale 1, where the measured communication component is (modelled
	// link latency) + (genuine host scheduling overhead). The remote and
	// local addresses both resolve correctly — delta/<node>/client.NNNN →
	// r3/<node>/<svc> resolves to the 0.47 ms WAN link, NOT the free-link
	// ParseAddr fallback (verified) — but the host overhead is ~2 ms per
	// request under a parallel test load, an order of magnitude above the
	// 2 × (0.47 − 0.063) ms ≈ 0.81 ms modelled gap, so noise could erase
	// the signal. Running in slow motion (Scale 0.25: one simulated ms
	// takes four real ms) shrinks the overhead's simulated footprint 4×
	// while leaving the modelled latencies untouched, making the modelled
	// gap the dominant term and the margin deterministic.
	base := RTConfig{
		Model:             "noop",
		Pairs:             [][2]int{{2, 2}},
		RequestsPerClient: 64,
		Scale:             0.25,
		Seed:              7,
	}
	local := base
	local.Deploy = DeployLocal
	remote := base
	remote.Deploy = DeployRemote
	lres, err := RunRT(ctx, local)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := RunRT(ctx, remote)
	if err != nil {
		t.Fatal(err)
	}
	lc, rc := lres.Rows[0].Comm.Mean, rres.Rows[0].Comm.Mean
	// paper: remote latency 0.47ms vs local 0.063ms per hop → a round trip
	// (2 hops) is modelled ~0.81ms slower remote. Require at least half of
	// that gap so residual scheduling noise cannot flip the verdict.
	if rc-lc < 400*time.Microsecond {
		t.Fatalf("remote communication %v not clearly above local %v (want ≥ 400µs gap)", rc, lc)
	}
	if float64(rc) < 1.3*float64(lc) {
		t.Fatalf("remote communication %v not clearly above local %v", rc, lc)
	}
}

func TestExp3InferenceDominates(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	// scale 200: real per-request overhead (≲1ms) inflates to ≲0.2s sim,
	// an order of magnitude below the multi-second inference
	cfg := RTConfig{
		Model: "llama-8b", Deploy: DeployRemote,
		Pairs:             [][2]int{{2, 2}},
		RequestsPerClient: 2,
		MaxTokens:         128,
		Scale:             200,
		Seed:              3,
	}
	res, err := RunRT(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	// Fig. 6: inference dwarfs both communication and queue/service time in
	// the weak-scaling (uncontended) regime
	if row.Infer.Mean < 5*row.Comm.Mean {
		t.Fatalf("inference %v does not dominate communication %v", row.Infer.Mean, row.Comm.Mean)
	}
	if row.Infer.Mean < 500*time.Millisecond {
		t.Fatalf("inference %v implausibly fast for llama-8b", row.Infer.Mean)
	}
}

func TestExp3StrongScalingQueueing(t *testing.T) {
	// 4 clients on 1 single-threaded service vs 4 on 4: the contended
	// configuration must show far larger service (queue) time.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cfg := RTConfig{
		Model: "llama-8b", Deploy: DeployLocal,
		Pairs:             [][2]int{{4, 1}, {4, 4}},
		RequestsPerClient: 2,
		MaxTokens:         64,
		Scale:             1000,
		Seed:              4,
	}
	res, err := RunRT(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	contended, uncontended := res.Rows[0], res.Rows[1]
	if contended.Service.Mean < 2*uncontended.Service.Mean {
		t.Fatalf("queueing: contended service time %v vs uncontended %v — no backlog visible",
			contended.Service.Mean, uncontended.Service.Mean)
	}
}

func TestRTTableRendering(t *testing.T) {
	res := &RTResult{Cfg: DefaultExp3Config(DeployRemote, ScalingStrong)}
	res.Rows = append(res.Rows, RTRow{Clients: 16, Services: 1})
	out := res.Table().Render()
	if !strings.Contains(out, "Fig. 6") || !strings.Contains(out, "16/1") {
		t.Fatalf("table:\n%s", out)
	}
	res2 := &RTResult{Cfg: DefaultExp2Config(DeployRemote, ScalingStrong)}
	if !strings.Contains(res2.Table().Render(), "Fig. 5") {
		t.Fatal("Fig. 5 title missing")
	}
}

func TestTableII(t *testing.T) {
	out := TableII().Render()
	for _, want := range []string{"Frontier", "Delta and R3", "llama 8b", "strong/weak", "1024"} {
		if want == "1024" {
			continue // request count is §IV-C text, not a Table II column
		}
		if !strings.Contains(out, want) {
			t.Fatalf("Table II missing %q:\n%s", want, out)
		}
	}
}

package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestWriteCSV(t *testing.T) {
	c := NewCollector()
	c.Add("bt.launch", 2*time.Second)
	c.Add("bt.launch", 3*time.Second)
	c.Add("bt.init", 26*time.Second)
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "series,sample_idx,seconds" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("rows = %d, want 4", len(lines))
	}
	// series sorted: bt.init before bt.launch
	if !strings.HasPrefix(lines[1], "bt.init,0,26.0") {
		t.Fatalf("first row = %q", lines[1])
	}
	if !strings.HasPrefix(lines[3], "bt.launch,1,3.0") {
		t.Fatalf("last row = %q", lines[3])
	}
}

func TestWriteCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewCollector().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "series,sample_idx,seconds\n" {
		t.Fatalf("empty export = %q", buf.String())
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n--
	if f.n < 0 {
		return 0, errWrite
	}
	return len(p), nil
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "synthetic write failure" }

func TestWriteCSVPropagatesErrors(t *testing.T) {
	c := NewCollector()
	c.Add("x", time.Second)
	if err := c.WriteCSV(&failWriter{n: 0}); err == nil {
		t.Fatal("header write failure swallowed")
	}
	if err := c.WriteCSV(&failWriter{n: 1}); err == nil {
		t.Fatal("row write failure swallowed")
	}
}

// TestWriteCSVExact pins the collector export byte-for-byte — the
// per-series locking rework must not perturb row order or formatting.
func TestWriteCSVExact(t *testing.T) {
	c := NewCollector()
	c.Add("rt.service", 1500*time.Millisecond)
	c.Add("rt.communication", 250*time.Microsecond)
	c.Add("rt.service", 2*time.Second)
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "series,sample_idx,seconds\n" +
		"rt.communication,0,0.000250000\n" +
		"rt.service,0,1.500000000\n" +
		"rt.service,1,2.000000000\n"
	if buf.String() != want {
		t.Fatalf("WriteCSV drifted:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

// Uncertainty Quantification (paper §II-C): the three-level hierarchy —
// UQ methods × random seeds × base LLMs — executes with maximal task
// concurrency on the pilot's GPUs, bracketed by cheap data-preparation and
// post-processing stages.
package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/usecases"
	"repro/internal/workflow"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "uq: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	sess, err := core.NewSession(core.SessionConfig{
		Seed:  23,
		Clock: simtime.NewScaled(500000, core.DefaultOrigin),
	})
	if err != nil {
		return err
	}
	defer sess.Close()

	p, err := sess.PilotManager().Submit(spec.PilotDescription{
		Platform: "delta", Cores: 256, GPUs: 16,
	})
	if err != nil {
		return err
	}
	runner, err := workflow.NewRunner(sess, p)
	if err != nil {
		return err
	}

	cfg := usecases.UQConfig{
		Methods: []string{"bayesian-lora", "lora-ensemble"},
		Seeds:   3,
		Models:  []string{"llama-8b", "mistral-7b"},
	}
	pipe := usecases.UQ(cfg)
	fmt.Printf("running UQ pipeline (use case II-C): %d fine-tuning tasks (%d methods × %d seeds × %d models) on 16 GPUs ...\n",
		cfg.TaskCount(), len(cfg.Methods), cfg.Seeds, len(cfg.Models))

	rep, err := runner.Run(context.Background(), pipe)
	if err != nil {
		return err
	}

	stages := append([]workflow.StageReport{}, rep.Stages...)
	sort.Slice(stages, func(i, j int) bool { return stages[i].Started.Before(stages[j].Started) })
	for _, s := range stages {
		fmt.Printf("  stage %-18s tasks=%-3d duration=%s\n", s.Stage, s.Tasks, s.Duration().Round(time.Second))
	}
	fmt.Printf("pipeline finished in %s simulated\n", rep.Duration().Round(time.Second))

	ft, _ := rep.StageReport("uq-finetuning")
	serial := 15 * time.Minute * time.Duration(cfg.TaskCount())
	fmt.Printf("concurrency: %d×~15min tasks completed in %s (serial would be ≈%s)\n",
		cfg.TaskCount(), ft.Duration().Round(time.Minute), serial)
	return nil
}

package restapi

import (
	"context"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/simtime"
)

func TestCallerRejectsNonRESTEndpoint(t *testing.T) {
	_, err := NewCaller(proto.Endpoint{Protocol: "msgq"}, simtime.NewReal())
	if err == nil {
		t.Fatal("NewCaller accepted msgq endpoint")
	}
}

func TestCallerInferRoundTrip(t *testing.T) {
	g, _ := newGateway(t, "llama-8b")
	clock := simtime.NewScaled(1000, origin)
	caller, err := NewCaller(g.Endpoint(), clock)
	if err != nil {
		t.Fatal(err)
	}
	defer caller.Close()
	reply, bd, err := caller.Infer(context.Background(), "compare signatures", 32)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Model != "llama-8b" || reply.OutputTokens < 1 {
		t.Fatalf("reply = %+v", reply)
	}
	if bd.Components["inference"] <= 0 {
		t.Fatal("no inference component in REST breakdown")
	}
	if bd.Total() <= 0 {
		t.Fatal("empty breakdown total")
	}
	if caller.Endpoint().ServiceUID != g.Endpoint().ServiceUID {
		t.Fatal("endpoint accessor mismatch")
	}
}

func TestCallerErrorPropagation(t *testing.T) {
	g, srv := newGateway(t, "noop")
	srv.Stop()
	caller, _ := NewCaller(g.Endpoint(), simtime.NewScaled(1000, origin))
	if _, _, err := caller.Infer(context.Background(), "x", 0); err == nil {
		t.Fatal("Infer succeeded against stopped server")
	}
}

func TestCallerContextCancellation(t *testing.T) {
	g, _ := newGateway(t, "llama-8b")
	// real clock so the HTTP call genuinely outlives the context
	caller, _ := NewCaller(g.Endpoint(), simtime.NewReal())
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	// llama at scale 100000 completes in ~µs, so race may pass; use large
	// budget to make the deadline bite more often — either outcome must
	// not hang
	done := make(chan error, 1)
	go func() {
		_, _, err := caller.Infer(ctx, "x", 4096)
		done <- err
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("REST Infer hung past context deadline")
	}
}

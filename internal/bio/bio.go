// Package bio implements the computational substrate of the Signature
// Detection pipeline (paper §II-B): synthetic VCF variant generation (the
// stand-in for the 15 proprietary low-dose-radiation samples), VEP-style
// functional annotation against a synthetic gene model, pathway
// enrichment over KEGG/GO-style gene sets using a hypergeometric test,
// and dose-response association by least-squares regression. The
// pipeline's tasks execute these functions as real compute (Func
// payloads), not just modelled durations.
package bio

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/rng"
)

// Variant is one VCF record.
type Variant struct {
	Chrom string
	Pos   int
	Ref   string
	Alt   string
	// Qual is the call quality.
	Qual float64
}

// Annotation is a VEP-style functional annotation of one variant.
type Annotation struct {
	Variant Variant
	Gene    string
	// Consequence is the predicted effect class.
	Consequence string
	// Impact grades severity: HIGH, MODERATE, LOW, MODIFIER.
	Impact string
}

var bases = []string{"A", "C", "G", "T"}

var consequences = []struct {
	name   string
	impact string
	weight int
}{
	{"stop_gained", "HIGH", 1},
	{"missense_variant", "MODERATE", 6},
	{"splice_region_variant", "LOW", 4},
	{"synonymous_variant", "LOW", 8},
	{"intron_variant", "MODIFIER", 20},
	{"intergenic_variant", "MODIFIER", 12},
}

// GeneModel is a synthetic genome annotation: genes laid out over
// chromosome coordinates.
type GeneModel struct {
	genes []string
}

// NewGeneModel creates a model of n genes named GENE0000..
func NewGeneModel(n int) *GeneModel {
	if n <= 0 {
		n = 500
	}
	m := &GeneModel{}
	for i := 0; i < n; i++ {
		m.genes = append(m.genes, fmt.Sprintf("GENE%04d", i))
	}
	return m
}

// Genes returns the gene universe.
func (m *GeneModel) Genes() []string { return m.genes }

// GeneAt maps a position to its containing gene (deterministic binning).
func (m *GeneModel) GeneAt(chrom string, pos int) string {
	h := 0
	for _, c := range chrom {
		h = h*31 + int(c)
	}
	idx := (h + pos/1000) % len(m.genes)
	if idx < 0 {
		idx += len(m.genes)
	}
	return m.genes[idx]
}

// GenerateVCF produces a deterministic synthetic sample of n variants.
// Dose shifts the mutational burden: higher dose biases positions toward
// a "radiation-sensitive" subset of the genome, which downstream
// enrichment must be able to detect.
func GenerateVCF(src *rng.Source, n int, dose float64) []Variant {
	out := make([]Variant, 0, n)
	for i := 0; i < n; i++ {
		chrom := fmt.Sprintf("chr%d", 1+src.Intn(22))
		pos := 1 + src.Intn(50_000_000)
		if dose > 0 && src.Float64() < dose {
			// radiation-associated hotspot band: a ~25-gene region at the
			// start of chr1 that receives disproportionate hits at high
			// dose — the signal the enrichment stage must recover
			chrom = "chr1"
			pos = 1 + src.Intn(25_000)
		}
		ref := bases[src.Intn(4)]
		alt := bases[src.Intn(4)]
		for alt == ref {
			alt = bases[src.Intn(4)]
		}
		out = append(out, Variant{
			Chrom: chrom, Pos: pos, Ref: ref, Alt: alt,
			Qual: 30 + 40*src.Float64(),
		})
	}
	return out
}

// Annotate performs VEP-style annotation of variants against the model.
func Annotate(m *GeneModel, src *rng.Source, variants []Variant) []Annotation {
	out := make([]Annotation, 0, len(variants))
	total := 0
	for _, c := range consequences {
		total += c.weight
	}
	for _, v := range variants {
		pick := src.Intn(total)
		var cons struct {
			name   string
			impact string
			weight int
		}
		for _, c := range consequences {
			if pick < c.weight {
				cons = c
				break
			}
			pick -= c.weight
		}
		out = append(out, Annotation{
			Variant:     v,
			Gene:        m.GeneAt(v.Chrom, v.Pos),
			Consequence: cons.name,
			Impact:      cons.impact,
		})
	}
	return out
}

// GeneHits counts annotated variants per gene, excluding MODIFIER-impact
// (non-coding) annotations.
func GeneHits(anns []Annotation) map[string]int {
	hits := make(map[string]int)
	for _, a := range anns {
		if a.Impact == "MODIFIER" {
			continue
		}
		hits[a.Gene]++
	}
	return hits
}

// Pathway is a named gene set (KEGG/GO analogue).
type Pathway struct {
	Name  string
	Genes []string
}

// SyntheticPathways builds k pathways over the model's genes. The first
// pathway ("radiation-response") collects the hotspot genes that
// GenerateVCF biases toward at high dose.
func SyntheticPathways(m *GeneModel, src *rng.Source, k, genesPer int) []Pathway {
	if k <= 0 {
		k = 20
	}
	if genesPer <= 0 {
		genesPer = 25
	}
	genes := m.Genes()
	out := make([]Pathway, 0, k)
	// hotspot pathway: genes covering the low-coordinate chr1 band that
	// GenerateVCF biases toward. GeneAt bins by pos/1000; collect genes
	// appearing for positions < 25k on chr1.
	seen := map[string]bool{}
	var hot []string
	for pos := 1; pos < 25_000 && len(hot) < genesPer; pos += 1000 {
		g := m.GeneAt("chr1", pos)
		if !seen[g] {
			seen[g] = true
			hot = append(hot, g)
		}
	}
	out = append(out, Pathway{Name: "radiation-response", Genes: hot})
	for i := 1; i < k; i++ {
		perm := src.Perm(len(genes))
		var gs []string
		for _, idx := range perm[:genesPer] {
			gs = append(gs, genes[idx])
		}
		sort.Strings(gs)
		out = append(out, Pathway{Name: fmt.Sprintf("pathway-%03d", i), Genes: gs})
	}
	return out
}

// Enrichment is the result of testing one pathway.
type Enrichment struct {
	Pathway string
	// Overlap is the number of hit genes in the pathway.
	Overlap int
	// PValue is the hypergeometric tail probability of seeing at least
	// Overlap hits by chance.
	PValue float64
}

// Enrich tests every pathway against the hit set using the
// hypergeometric distribution over the gene universe.
func Enrich(m *GeneModel, hits map[string]int, pathways []Pathway) []Enrichment {
	universe := len(m.Genes())
	hitSet := make(map[string]bool, len(hits))
	for g := range hits {
		hitSet[g] = true
	}
	drawn := len(hitSet)
	out := make([]Enrichment, 0, len(pathways))
	for _, pw := range pathways {
		overlap := 0
		for _, g := range pw.Genes {
			if hitSet[g] {
				overlap++
			}
		}
		p := hypergeomTail(universe, len(pw.Genes), drawn, overlap)
		out = append(out, Enrichment{Pathway: pw.Name, Overlap: overlap, PValue: p})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PValue != out[j].PValue {
			return out[i].PValue < out[j].PValue
		}
		return out[i].Pathway < out[j].Pathway
	})
	return out
}

// hypergeomTail returns P(X >= k) for X ~ Hypergeom(N, K, n): the
// probability that drawing n items from a universe of N containing K
// marked items yields at least k marked.
func hypergeomTail(N, K, n, k int) float64 {
	if k <= 0 {
		return 1
	}
	upper := K
	if n < upper {
		upper = n
	}
	var tail float64
	for x := k; x <= upper; x++ {
		tail += math.Exp(lnChoose(K, x) + lnChoose(N-K, n-x) - lnChoose(N, n))
	}
	if tail > 1 {
		tail = 1
	}
	return tail
}

func lnChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lgN, _ := math.Lgamma(float64(n + 1))
	lgK, _ := math.Lgamma(float64(k + 1))
	lgNK, _ := math.Lgamma(float64(n - k + 1))
	return lgN - lgK - lgNK
}

// DosePoint is one (dose, response) observation, e.g. pathway hit count
// per sample.
type DosePoint struct {
	Dose     float64
	Response float64
}

// DoseResponse is the fitted association.
type DoseResponse struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination.
	R2 float64
}

// FitDoseResponse fits response = slope·dose + intercept by least
// squares.
func FitDoseResponse(points []DosePoint) (DoseResponse, error) {
	if len(points) < 2 {
		return DoseResponse{}, fmt.Errorf("bio: need >= 2 dose points, have %d", len(points))
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(points))
	for _, p := range points {
		sx += p.Dose
		sy += p.Response
		sxx += p.Dose * p.Dose
		sxy += p.Dose * p.Response
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return DoseResponse{}, fmt.Errorf("bio: degenerate dose design (all doses equal)")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	meanY := sy / n
	var ssTot, ssRes float64
	for _, p := range points {
		pred := slope*p.Dose + intercept
		ssTot += (p.Response - meanY) * (p.Response - meanY)
		ssRes += (p.Response - pred) * (p.Response - pred)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return DoseResponse{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// FormatVCF renders variants as minimal VCF text (for staging payloads
// and debugging).
func FormatVCF(variants []Variant) string {
	var sb strings.Builder
	sb.WriteString("##fileformat=VCFv4.2\n#CHROM\tPOS\tID\tREF\tALT\tQUAL\n")
	for _, v := range variants {
		fmt.Fprintf(&sb, "%s\t%d\t.\t%s\t%s\t%.1f\n", v.Chrom, v.Pos, v.Ref, v.Alt, v.Qual)
	}
	return sb.String()
}

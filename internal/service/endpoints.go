package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proto"
)

// ErrWithdrawn is returned by the EndpointRegistry's Await* calls when the
// service was withdrawn for good (terminated, or failed without a
// re-placement) — no newer endpoint will ever arrive, so waiting on is
// pointless.
var ErrWithdrawn = errors.New("service: endpoint withdrawn")

// ErrStaleIncarnation is returned by Publish when the endpoint's session
// incarnation is below the registry fence: the publisher is a zombie from
// before a crash recovery and must not clobber its re-placed successor.
var ErrStaleIncarnation = errors.New("service: stale-incarnation publish rejected")

// EndpointOp names a registry mutation, for observers (journaling).
type EndpointOp string

// Endpoint registry operations.
const (
	EndpointPublish  EndpointOp = "publish"
	EndpointSuspend  EndpointOp = "suspend"
	EndpointWithdraw EndpointOp = "withdraw"
)

// EndpointObserver observes committed registry mutations. It is called
// under the registry lock — it must not call back into the registry.
type EndpointObserver func(op EndpointOp, uid string, ep proto.Endpoint, gen uint64)

// EndpointRegistry is the session-level endpoint registry — the authority
// clients resolve a stable service UID against instead of caching a raw
// endpoint. Where the per-pilot Registry models the paper's publication
// channel (and charges the Fig. 3 `publish` overhead), the
// EndpointRegistry owns the session-wide mapping that survives the pilot:
// every publication carries a monotonically increasing generation per
// service UID, so a client holding generation g detects staleness the
// moment Resolve returns g' > g and re-resolves instead of redialing a
// dead address.
//
// Lifecycle of one entry: Publish (live, gen+1) → Suspend (endpoint
// retained, not resolvable — the hosting pilot died and a re-placement is
// in flight) → Publish (live again, gen+1) → … → Withdraw (tombstoned;
// Await* fail with ErrWithdrawn).
//
// The registry is purely synchronization and bookkeeping: publication
// overhead is charged where the endpoint is physically published (the
// pilot registry), never here, which keeps every method safe to call from
// any goroutine without touching the session clock.
type EndpointRegistry struct {
	mu      sync.Mutex
	entries map[string]*endpointEntry
	// fence is the minimum session incarnation a publication must carry
	// (crash recovery raises it; zero accepts everything, which keeps
	// journal-less sessions — incarnation 0 throughout — unaffected).
	fence    uint64
	observer EndpointObserver
}

type endpointEntry struct {
	ep        proto.Endpoint
	gen       uint64
	live      bool
	withdrawn bool
	waiters   []chan struct{}
	// members are replica service UIDs grouped under this logical UID by
	// the session autoscaler; balancing clients spread requests across
	// them. Membership is routing state, not a publication: it does not
	// move the generation.
	members []string
	// load is the endpoint's last reported load gauge pair.
	load Load
	// depth and loadAt are the lock-free mirrors of load: total depth
	// (queued+in-flight) and the report stamp in nanoseconds. Balancing
	// pickers read them on the request hot path without taking r.mu.
	depth  atomic.Int64
	loadAt atomic.Int64
	// group is the atomically-swapped immutable balancing view of this
	// logical UID (base plus members), rebuilt under r.mu on every
	// membership change. Balancers cache the entry pointer once and load
	// the view per pick — no lock, no allocation.
	group atomic.Pointer[GroupView]
	// pinned marks entries referenced by a balancing view (a group base
	// or one of its members). The await placeholder cleanup must not
	// delete them: a balancer holds their pointers.
	pinned bool
}

// Load is a per-endpoint load report: the honest queue split surfaced by
// serving.Server, stamped with the session-clock time it was taken.
// Whoever observes the instance (the session autoscaler's control loop, a
// campaign's reporter) pushes reports; balancing clients read them to
// pick less-loaded replicas, and treat a stamp older than their staleness
// horizon as no information at all.
type Load struct {
	Queued   int       // admitted, waiting for a worker
	InFlight int       // currently executing
	At       time.Time // session-clock stamp of the observation
}

// LoadFromReport converts the wire form into the registry's gauge record.
func LoadFromReport(lr proto.LoadReport) Load {
	return Load{Queued: lr.Queued, InFlight: lr.InFlight, At: lr.At}
}

// GroupView is the immutable balancing view of one logical service UID:
// the base entry at index 0 plus the current replica members. It
// implements loadbal.LoadView; Load reads the per-entry atomic gauges, so
// a pick costs two atomic loads per probe and never blocks a registry
// mutation.
type GroupView struct {
	uids    []string
	entries []*endpointEntry
}

// Len returns the candidate count (base plus members).
func (g *GroupView) Len() int { return len(g.uids) }

// UID returns candidate i's service UID.
func (g *GroupView) UID(i int) string { return g.uids[i] }

// Load returns candidate i's reported depth and report stamp
// (nanoseconds; 0 = never reported).
func (g *GroupView) Load(i int) (int, int64) {
	e := g.entries[i]
	return int(e.depth.Load()), e.loadAt.Load()
}

// NewEndpointRegistry returns an empty registry.
func NewEndpointRegistry() *EndpointRegistry {
	return &EndpointRegistry{entries: make(map[string]*endpointEntry)}
}

// Publish records ep as the live endpoint of its service UID and returns
// the new generation. Re-publication (failover onto a new pilot) bumps the
// generation; a previously withdrawn UID may be published again (the
// tombstone clears). Every waiter parked in AwaitLive/AwaitNewer wakes.
//
// A publication stamped with a session incarnation below the registry
// fence is rejected with ErrStaleIncarnation: after a crash recovery, a
// zombie instance from the previous incarnation may still try to publish,
// and letting it through would clobber the re-placed successor.
func (r *EndpointRegistry) Publish(ep proto.Endpoint) (uint64, error) {
	r.mu.Lock()
	if ep.Incarnation < r.fence {
		r.mu.Unlock()
		return 0, fmt.Errorf("%w: %s at incarnation %d, fence %d",
			ErrStaleIncarnation, ep.ServiceUID, ep.Incarnation, r.fence)
	}
	e := r.entries[ep.ServiceUID]
	if e == nil {
		e = &endpointEntry{}
		r.entries[ep.ServiceUID] = e
	}
	e.gen++
	ep.Generation = e.gen
	e.ep = ep
	e.live = true
	e.withdrawn = false
	gen := e.gen
	r.wakeLocked(e)
	if r.observer != nil {
		r.observer(EndpointPublish, ep.ServiceUID, ep, gen)
	}
	r.mu.Unlock()
	return gen, nil
}

// SetFence raises the minimum accepted publication incarnation. It only
// moves forward; a lower value than the current fence is ignored.
func (r *EndpointRegistry) SetFence(min uint64) {
	r.mu.Lock()
	if min > r.fence {
		r.fence = min
	}
	r.mu.Unlock()
}

// Fence returns the current incarnation fence.
func (r *EndpointRegistry) Fence() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fence
}

// SetObserver installs the registry's mutation observer (at most one; the
// session journal). The observer runs under the registry lock and must
// not re-enter the registry.
func (r *EndpointRegistry) SetObserver(obs EndpointObserver) {
	r.mu.Lock()
	r.observer = obs
	r.mu.Unlock()
}

// Restore seeds a UID's entry from a journal replay: the generation floor
// (so the first post-recovery re-publish lands strictly newer than any
// pre-crash client copy) and the withdrawn tombstone. It does not make the
// entry live — only a real Publish does.
func (r *EndpointRegistry) Restore(uid string, gen uint64, withdrawn bool) {
	r.mu.Lock()
	e := r.entries[uid]
	if e == nil {
		e = &endpointEntry{}
		r.entries[uid] = e
	}
	if gen > e.gen {
		e.gen = gen
	}
	if withdrawn {
		e.withdrawn = true
		r.wakeLocked(e)
	}
	r.mu.Unlock()
}

// Suspend marks a service's endpoint unresolvable without forgetting it:
// the hosting pilot stopped and the session is re-placing the service.
// Clients block in AwaitNewer until the re-publication lands. The
// generation does not move — it only counts publications, so a client
// holding the pre-failover generation still detects the eventual
// re-publish as newer.
func (r *EndpointRegistry) Suspend(uid string) {
	r.mu.Lock()
	if e := r.entries[uid]; e != nil {
		e.live = false
		if r.observer != nil {
			r.observer(EndpointSuspend, uid, e.ep, e.gen)
		}
	}
	r.mu.Unlock()
}

// Withdraw tombstones a service UID: the service is gone for good and no
// re-publication will follow. Parked waiters wake and fail with
// ErrWithdrawn.
func (r *EndpointRegistry) Withdraw(uid string) {
	r.mu.Lock()
	e := r.entries[uid]
	if e == nil {
		e = &endpointEntry{}
		r.entries[uid] = e
	}
	e.live = false
	e.withdrawn = true
	r.wakeLocked(e)
	if r.observer != nil {
		r.observer(EndpointWithdraw, uid, e.ep, e.gen)
	}
	r.mu.Unlock()
}

// wakeLocked releases every waiter of e. Callers hold r.mu.
func (r *EndpointRegistry) wakeLocked(e *endpointEntry) {
	for _, ch := range e.waiters {
		close(ch)
	}
	e.waiters = nil
}

// Resolve returns the live endpoint of uid and its generation. A
// suspended, withdrawn or never-published UID resolves to false.
func (r *EndpointRegistry) Resolve(uid string) (proto.Endpoint, uint64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[uid]
	if e == nil || !e.live {
		return proto.Endpoint{}, 0, false
	}
	return e.ep, e.gen, true
}

// Peek returns the last-published endpoint of uid and its generation
// even while the entry is suspended — the warm-standby promotion path
// reads the held standby's endpoint to re-publish it under the base UID.
// A never-published or withdrawn UID reports false.
func (r *EndpointRegistry) Peek(uid string) (proto.Endpoint, uint64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[uid]
	if e == nil || e.withdrawn || e.gen == 0 {
		return proto.Endpoint{}, 0, false
	}
	return e.ep, e.gen, true
}

// Generation returns the publication count of uid (0 when never
// published). Unlike Resolve it also reports suspended entries, so
// clients can cheaply check staleness without resolving.
func (r *EndpointRegistry) Generation(uid string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.entries[uid]; e != nil {
		return e.gen
	}
	return 0
}

// All returns every live endpoint, sorted by service UID.
func (r *EndpointRegistry) All() []proto.Endpoint {
	r.mu.Lock()
	out := make([]proto.Endpoint, 0, len(r.entries))
	for _, e := range r.entries {
		if e.live {
			out = append(out, e.ep)
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ServiceUID < out[j].ServiceUID })
	return out
}

// ByModel returns every live endpoint exposing model, sorted by service
// UID.
func (r *EndpointRegistry) ByModel(model string) []proto.Endpoint {
	r.mu.Lock()
	var out []proto.Endpoint
	for _, e := range r.entries {
		if e.live && e.ep.Model == model {
			out = append(out, e.ep)
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ServiceUID < out[j].ServiceUID })
	return out
}

// AwaitLive blocks until uid has a live endpoint (any generation), the
// UID is withdrawn, or ctx expires.
func (r *EndpointRegistry) AwaitLive(ctx context.Context, uid string) (proto.Endpoint, uint64, error) {
	return r.await(ctx, uid, 0)
}

// AwaitNewer blocks until uid has a live endpoint with a generation
// strictly greater than after — the re-resolution primitive: a client
// whose request failed on generation g parks here and wakes exactly when
// the failover re-publication lands. It returns immediately when the
// registry already holds a newer live endpoint (the client lost the race
// to the re-publish, which is the good case).
func (r *EndpointRegistry) AwaitNewer(ctx context.Context, uid string, after uint64) (proto.Endpoint, uint64, error) {
	return r.await(ctx, uid, after)
}

// AddMember records member (a replica service UID) under the logical
// group UID. Adding an already-present member is a no-op. The group's
// entry is created if the group was never published — membership may
// precede the base publication during recovery replays.
func (r *EndpointRegistry) AddMember(group, member string) {
	r.mu.Lock()
	e := r.entries[group]
	if e == nil {
		e = &endpointEntry{}
		r.entries[group] = e
	}
	for _, m := range e.members {
		if m == member {
			r.mu.Unlock()
			return
		}
	}
	e.members = append(e.members, member)
	r.rebuildGroupLocked(group, e)
	r.mu.Unlock()
}

// RemoveMember drops member from the logical group UID. Removing an
// absent member is a no-op.
func (r *EndpointRegistry) RemoveMember(group, member string) {
	r.mu.Lock()
	if e := r.entries[group]; e != nil {
		for i, m := range e.members {
			if m == member {
				e.members = append(e.members[:i], e.members[i+1:]...)
				r.rebuildGroupLocked(group, e)
				break
			}
		}
	}
	r.mu.Unlock()
}

// rebuildGroupLocked swaps in a fresh immutable balancing view for the
// group after a membership change. Member entries are created eagerly
// (membership can precede publication) and pinned along with the base:
// balancers hold view entry pointers, so the await placeholder cleanup
// must never delete them. Caller holds r.mu.
func (r *EndpointRegistry) rebuildGroupLocked(group string, e *endpointEntry) {
	view := &GroupView{
		uids:    make([]string, 0, len(e.members)+1),
		entries: make([]*endpointEntry, 0, len(e.members)+1),
	}
	e.pinned = true
	view.uids = append(view.uids, group)
	view.entries = append(view.entries, e)
	for _, m := range e.members {
		me := r.entries[m]
		if me == nil {
			me = &endpointEntry{}
			r.entries[m] = me
		}
		me.pinned = true
		view.uids = append(view.uids, m)
		view.entries = append(view.entries, me)
	}
	e.group.Store(view)
}

// groupEntry returns (creating and pinning if absent) the entry a
// balancer caches for its logical UID: the per-pick view load goes
// through the returned pointer, not the registry map.
func (r *EndpointRegistry) groupEntry(uid string) *endpointEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[uid]
	if e == nil {
		e = &endpointEntry{}
		r.entries[uid] = e
	}
	e.pinned = true
	return e
}

// Members returns the replica UIDs grouped under the logical UID, in
// membership order (nil when the group has none — the common, unscaled
// case). The base UID itself is not listed; balancing clients treat the
// group as base plus members.
func (r *EndpointRegistry) Members(group string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[group]
	if e == nil || len(e.members) == 0 {
		return nil
	}
	out := make([]string, len(e.members))
	copy(out, e.members)
	return out
}

// ReportLoad records uid's latest load gauges. Reports for unknown UIDs
// are dropped — a retired replica's straggling report must not
// resurrect its entry. Besides the locked record (LoadOf), the report is
// mirrored into the entry's atomic depth/stamp pair so balancing pickers
// read it lock-free.
func (r *EndpointRegistry) ReportLoad(uid string, l Load) {
	r.mu.Lock()
	if e := r.entries[uid]; e != nil {
		e.load = l
		e.depth.Store(int64(l.Queued + l.InFlight))
		e.loadAt.Store(l.At.UnixNano())
	}
	r.mu.Unlock()
}

// LoadOf returns uid's last reported load gauges (zero when never
// reported or unknown).
func (r *EndpointRegistry) LoadOf(uid string) Load {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.entries[uid]; e != nil {
		return e.load
	}
	return Load{}
}

func (r *EndpointRegistry) await(ctx context.Context, uid string, after uint64) (proto.Endpoint, uint64, error) {
	for {
		r.mu.Lock()
		e := r.entries[uid]
		if e == nil {
			e = &endpointEntry{}
			r.entries[uid] = e
		}
		if e.withdrawn {
			r.mu.Unlock()
			return proto.Endpoint{}, 0, fmt.Errorf("%w: %s", ErrWithdrawn, uid)
		}
		if e.live && e.gen > after {
			ep, gen := e.ep, e.gen
			r.mu.Unlock()
			return ep, gen, nil
		}
		ch := make(chan struct{})
		e.waiters = append(e.waiters, ch)
		r.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			// Unregister the waiter (a concurrent wake may already have
			// consumed it) and drop the entry again if it was only ever a
			// placeholder this call synthesized — a long-lived session
			// polling unknown or never-republished UIDs with per-request
			// timeouts must not grow the registry without bound.
			r.mu.Lock()
			for i, w := range e.waiters {
				if w == ch {
					e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
					break
				}
			}
			if e.gen == 0 && !e.live && !e.withdrawn && !e.pinned && len(e.waiters) == 0 && len(e.members) == 0 {
				delete(r.entries, uid)
			}
			r.mu.Unlock()
			return proto.Endpoint{}, 0, ctx.Err()
		}
	}
}

package proto

// Binary framing for the pooled TCP transport.
//
// WriteFrame/ReadFrame (proto.go) frame the whole envelope as JSON, which
// costs two json.Marshal calls per write (body, then envelope) and a fresh
// allocation plus a full json.Unmarshal per read. The binary frame format
// here encodes the fixed envelope header fields directly and pays JSON only
// for the body, exactly once, via the envelope's lazy WireBody cache:
//
//	u32  payload length N (big endian), N ≤ MaxFrameSize
//	--- payload, N bytes ---
//	u8   version (frameVersion)
//	u8   kind length   | kind bytes
//	u8   from length   | from bytes
//	u8   to length     | to bytes
//	u64  envelope ID (big endian)
//	i64  sent, unix nanoseconds (big endian; 0 encodes the zero time)
//	u32  body length B | body bytes (JSON), ending exactly at N
//
// Decoding is zero-copy for the body: DecodeFrame returns an envelope whose
// Body aliases the payload slice. The caller owns the backing buffer and
// must keep it alive (and unmodified) for as long as the envelope's Body is
// in use — the pooled transport's buffer-ownership rules are built on this.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// frameVersion is the binary frame format version byte.
const frameVersion = 1

// ErrBadFrame is returned when a binary frame payload is structurally
// invalid: wrong version, a field length pointing past the payload, or
// trailing bytes after the body. Corrupt input surfaces as a wrapped
// ErrBadFrame, never as a panic.
var ErrBadFrame = errors.New("proto: malformed frame")

// frameHeaderMax bounds the string header fields (kind, from, to), which
// the format stores with one-byte lengths.
const frameHeaderMax = 255

// AppendFrame appends env as one length-prefixed binary frame to dst and
// returns the extended slice. The body JSON is produced once through the
// envelope's WireBody cache (a lazily-held payload snapshot is marshaled
// here and cached on env); everything else is encoded directly, so a write
// costs a single JSON pass. Frames above MaxFrameSize are rejected with
// ErrFrameTooLarge before anything is appended to the wire.
func AppendFrame(dst []byte, env *Envelope) ([]byte, error) {
	body, err := env.WireBody()
	if err != nil {
		return dst, err
	}
	if len(env.Kind) > frameHeaderMax || len(env.From) > frameHeaderMax || len(env.To) > frameHeaderMax {
		return dst, fmt.Errorf("%w: header field over %d bytes", ErrBadFrame, frameHeaderMax)
	}
	payload := 1 + // version
		1 + len(env.Kind) + 1 + len(env.From) + 1 + len(env.To) +
		8 + 8 + // id, sent
		4 + len(body)
	if payload > MaxFrameSize {
		return dst, ErrFrameTooLarge
	}
	var u32 [4]byte
	var u64 [8]byte
	binary.BigEndian.PutUint32(u32[:], uint32(payload))
	dst = append(dst, u32[:]...)
	dst = append(dst, frameVersion)
	dst = append(dst, byte(len(env.Kind)))
	dst = append(dst, env.Kind...)
	dst = append(dst, byte(len(env.From)))
	dst = append(dst, env.From...)
	dst = append(dst, byte(len(env.To)))
	dst = append(dst, env.To...)
	binary.BigEndian.PutUint64(u64[:], env.ID)
	dst = append(dst, u64[:]...)
	var sent int64
	if !env.Sent.IsZero() {
		sent = env.Sent.UnixNano()
	}
	binary.BigEndian.PutUint64(u64[:], uint64(sent))
	dst = append(dst, u64[:]...)
	binary.BigEndian.PutUint32(u32[:], uint32(len(body)))
	dst = append(dst, u32[:]...)
	dst = append(dst, body...)
	return dst, nil
}

// internMax bounds an Interner's table; a connection whose peers mint
// unbounded fresh addresses resets the table instead of growing forever.
const internMax = 1024

// Interner deduplicates the small header strings of decoded frames (kind,
// from, to). On a long-lived connection those fields cycle through a
// handful of values, so interning turns three allocations per decode into
// three map hits. An Interner is single-goroutine state — give each
// connection read loop its own; a nil *Interner is valid and falls back to
// plain allocation.
type Interner struct {
	m map[string]string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{m: make(map[string]string, 16)}
}

// intern returns b as a string, reusing a previous allocation when the
// same bytes were seen before. (The map index with a string(b) key does
// not allocate on the hit path.)
func (in *Interner) intern(b []byte) string {
	if in == nil {
		return string(b)
	}
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	if len(in.m) >= internMax {
		clear(in.m)
	}
	s := string(b)
	in.m[s] = s
	return s
}

// DecodeFrame parses one binary frame payload (the bytes after the length
// prefix) into an envelope. The returned envelope's Body aliases payload —
// no copy is made — so the caller must not recycle or overwrite payload's
// backing buffer while the Body is still referenced. Malformed input
// returns a wrapped ErrBadFrame; no input can panic the decoder.
func DecodeFrame(payload []byte) (Envelope, error) {
	return DecodeFrameInterned(payload, nil)
}

// DecodeFrameInterned is DecodeFrame with the header strings resolved
// through in (see Interner); the transport read loops use it so steady
// traffic decodes without per-frame string allocations.
func DecodeFrameInterned(payload []byte, in *Interner) (Envelope, error) {
	var env Envelope
	p := payload
	if len(p) < 1 {
		return env, fmt.Errorf("%w: empty payload", ErrBadFrame)
	}
	if p[0] != frameVersion {
		return env, fmt.Errorf("%w: version %d (want %d)", ErrBadFrame, p[0], frameVersion)
	}
	p = p[1:]
	str := func(field string) (string, error) {
		if len(p) < 1 {
			return "", fmt.Errorf("%w: truncated %s length", ErrBadFrame, field)
		}
		n := int(p[0])
		p = p[1:]
		if len(p) < n {
			return "", fmt.Errorf("%w: truncated %s", ErrBadFrame, field)
		}
		s := in.intern(p[:n])
		p = p[n:]
		return s, nil
	}
	kind, err := str("kind")
	if err != nil {
		return env, err
	}
	from, err := str("from")
	if err != nil {
		return env, err
	}
	to, err := str("to")
	if err != nil {
		return env, err
	}
	if len(p) < 8+8+4 {
		return env, fmt.Errorf("%w: truncated fixed header", ErrBadFrame)
	}
	env.Kind = Kind(kind)
	env.From = from
	env.To = to
	env.ID = binary.BigEndian.Uint64(p[:8])
	if sent := int64(binary.BigEndian.Uint64(p[8:16])); sent != 0 {
		env.Sent = time.Unix(0, sent).UTC()
	}
	bodyLen := int(binary.BigEndian.Uint32(p[16:20]))
	p = p[20:]
	if bodyLen != len(p) {
		return env, fmt.Errorf("%w: body length %d, %d bytes remain", ErrBadFrame, bodyLen, len(p))
	}
	if bodyLen > 0 {
		env.Body = p
	}
	return env, nil
}

// ReadFramePayload reads one length-prefixed binary frame from r into *buf
// (growing it when the frame is larger than its capacity) and returns the
// payload as a sub-slice of the buffer. The caller owns the buffer and its
// recycling; the returned slice is valid until the buffer's next use.
//
// A clean close at a frame boundary returns io.EOF untouched; a stream
// ending mid-frame returns a wrapped io.ErrUnexpectedEOF; a length prefix
// above MaxFrameSize returns ErrFrameTooLarge without consuming the
// payload.
func ReadFramePayload(r io.Reader, buf *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF // clean close between frames
		}
		return nil, fmt.Errorf("proto: read frame header: %w", err)
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	p := (*buf)[:n]
	if _, err := io.ReadFull(r, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("proto: read frame payload: %w", err)
	}
	return p, nil
}

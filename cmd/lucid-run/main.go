// Command lucid-run executes one of the three LUCID use-case pipelines
// (§II of the paper) end to end on a simulated Delta pilot and prints the
// per-stage execution report.
//
// Usage:
//
//	lucid-run -pipeline cellpainting
//	lucid-run -pipeline signature -llm
//	lucid-run -pipeline uq -seeds 3
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/usecases"
	"repro/internal/workflow"
)

func main() {
	name := flag.String("pipeline", "cellpainting", "pipeline: cellpainting|signature|uq")
	seed := flag.Uint64("seed", 42, "RNG seed")
	scale := flag.Float64("scale", 100000, "clock compression factor")
	useLLM := flag.Bool("llm", true, "signature: enable the LLM comparison stage")
	seeds := flag.Int("seeds", 3, "uq: random seeds per method")
	trials := flag.Int("trials", 8, "cellpainting: HPO trials")
	flag.Parse()

	if err := run(*name, *seed, *scale, *useLLM, *seeds, *trials); err != nil {
		fmt.Fprintf(os.Stderr, "lucid-run: %v\n", err)
		os.Exit(1)
	}
}

func run(name string, seed uint64, scale float64, useLLM bool, seeds, trials int) error {
	sess, err := core.NewSession(core.SessionConfig{
		Seed:  seed,
		Clock: simtime.NewScaled(scale, core.DefaultOrigin),
	})
	if err != nil {
		return err
	}
	defer sess.Close()

	p, err := sess.PilotManager().Submit(spec.PilotDescription{
		Platform: "delta", Cores: 256, GPUs: 16,
	})
	if err != nil {
		return err
	}
	runner, err := workflow.NewRunner(sess, p)
	if err != nil {
		return err
	}

	coll := metrics.NewCollector()
	var pipe *workflow.Pipeline
	switch name {
	case "cellpainting":
		pipe = usecases.CellPainting(usecases.CellPaintingConfig{
			DatasetBytes: 16 << 30, // 16 GB demo-scale slice of the 1.6 TB set
			HPOTrials:    trials,
		}, sess.RNG())
	case "signature":
		pipe = usecases.Signature(usecases.SignatureConfig{
			UseLLM:    useLLM,
			Collector: coll,
		}, sess.RNG())
	case "uq":
		pipe = usecases.UQ(usecases.UQConfig{Seeds: seeds})
	default:
		return fmt.Errorf("unknown pipeline %q", name)
	}

	fmt.Printf("running pipeline %q (clock compression %.0fx, seed %d)\n\n", pipe.Name, scale, seed)
	start := time.Now()
	rep, err := runner.Run(context.Background(), pipe)
	if err != nil {
		return err
	}

	tab := metrics.Table{
		Title:  fmt.Sprintf("Pipeline %q — %s simulated, %s wall", pipe.Name, rep.Duration().Round(time.Second), time.Since(start).Round(time.Millisecond)),
		Header: []string{"stage", "tasks", "services", "sim duration"},
	}
	stages := append([]workflow.StageReport{}, rep.Stages...)
	sort.Slice(stages, func(i, j int) bool { return stages[i].Started.Before(stages[j].Started) })
	for _, s := range stages {
		tab.AddRow(s.Stage, fmt.Sprintf("%d", s.Tasks), fmt.Sprintf("%d", s.Services),
			s.Duration().Round(time.Second).String())
	}
	fmt.Print(tab.Render())

	if n := coll.Count("sig.llm.inference"); n > 0 {
		fmt.Printf("\nLLM signature comparison: %d inferences, %s\n",
			n, coll.Stats("sig.llm.inference"))
	}
	return nil
}

// Package states implements the entity state model of the runtime. It is
// the Go analogue of RADICAL-Pilot's stateful execution paradigm: pilots,
// tasks and services progress through a fixed, validated sequence of
// states, every transition is timestamped on the session clock, and the
// recorded history is the raw material for the paper's BT/RT/IT metric
// decomposition.
package states

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/simtime"
)

// State is one named lifecycle state.
type State string

// Pilot states (client-side manager prefix PMGR, mirroring RP).
const (
	PilotNew       State = "NEW"
	PilotLaunching State = "PMGR_LAUNCHING"
	PilotActive    State = "PMGR_ACTIVE"
	PilotDone      State = "DONE"
	PilotFailed    State = "FAILED"
	PilotCanceled  State = "CANCELED"
)

// Task states, following RADICAL-Pilot's split between client-side (TMGR)
// and agent-side (AGENT) components.
const (
	TaskNew            State = "NEW"
	TaskTmgrScheduling State = "TMGR_SCHEDULING"
	TaskStagingInput   State = "AGENT_STAGING_INPUT"
	TaskScheduling     State = "AGENT_SCHEDULING"
	TaskExecuting      State = "AGENT_EXECUTING"
	TaskStagingOutput  State = "AGENT_STAGING_OUTPUT"
	TaskDone           State = "DONE"
	TaskFailed         State = "FAILED"
	TaskCanceled       State = "CANCELED"
)

// Service states. A service is a task whose lifecycle gains an explicit
// readiness phase: after AGENT_EXECUTING starts the service process, the
// service loads its capability (e.g. an ML model), publishes its endpoint,
// and only then becomes ACTIVE — the paper's "available to receive client
// calls". DRAINING covers graceful shutdown: the service stops accepting
// new requests and finishes its queue.
const (
	ServiceNew            State = "NEW"
	ServiceSmgrScheduling State = "SMGR_SCHEDULING"
	ServiceStagingInput   State = "AGENT_STAGING_INPUT"
	ServiceScheduling     State = "AGENT_SCHEDULING"
	ServiceLaunching      State = "AGENT_EXECUTING"      // process launch on target resource
	ServiceInitializing   State = "SERVICE_INITIALIZING" // capability/model load
	ServicePublishing     State = "SERVICE_PUBLISHING"   // endpoint publication
	ServiceActive         State = "SERVICE_ACTIVE"
	ServiceDraining       State = "SERVICE_DRAINING"
	ServiceDone           State = "DONE"
	ServiceFailed         State = "FAILED"
	ServiceCanceled       State = "CANCELED"
)

// Entity discriminates the three state models.
type Entity string

// Entity kinds.
const (
	EntityPilot   Entity = "pilot"
	EntityTask    Entity = "task"
	EntityService Entity = "service"
)

// Model holds the legal transition relation for one entity kind.
type Model struct {
	entity  Entity
	initial State
	next    map[State][]State
	final   map[State]bool
}

func newModel(entity Entity, initial State, edges map[State][]State, finals ...State) *Model {
	f := make(map[State]bool, len(finals))
	for _, s := range finals {
		f[s] = true
	}
	return &Model{entity: entity, initial: initial, next: edges, final: f}
}

// failureEdges appends FAILED and CANCELED targets to every non-final state.
func failureEdges(edges map[State][]State, failed, canceled State, finals ...State) map[State][]State {
	isFinal := make(map[State]bool)
	for _, s := range finals {
		isFinal[s] = true
	}
	out := make(map[State][]State, len(edges))
	for s, ts := range edges {
		if isFinal[s] {
			out[s] = ts
			continue
		}
		out[s] = append(append([]State{}, ts...), failed, canceled)
	}
	return out
}

// PilotModel returns the pilot state model.
func PilotModel() *Model {
	edges := failureEdges(map[State][]State{
		PilotNew:       {PilotLaunching},
		PilotLaunching: {PilotActive},
		PilotActive:    {PilotDone},
		PilotDone:      {},
		PilotFailed:    {},
		PilotCanceled:  {},
	}, PilotFailed, PilotCanceled, PilotDone, PilotFailed, PilotCanceled)
	return newModel(EntityPilot, PilotNew, edges, PilotDone, PilotFailed, PilotCanceled)
}

// TaskModel returns the task state model.
func TaskModel() *Model {
	edges := failureEdges(map[State][]State{
		TaskNew:            {TaskTmgrScheduling},
		TaskTmgrScheduling: {TaskStagingInput},
		TaskStagingInput:   {TaskScheduling},
		TaskScheduling:     {TaskExecuting},
		TaskExecuting:      {TaskStagingOutput},
		TaskStagingOutput:  {TaskDone},
		TaskDone:           {},
		TaskFailed:         {},
		TaskCanceled:       {},
	}, TaskFailed, TaskCanceled, TaskDone, TaskFailed, TaskCanceled)
	return newModel(EntityTask, TaskNew, edges, TaskDone, TaskFailed, TaskCanceled)
}

// ServiceModel returns the service state model: the task model extended
// with the initialization, publication, readiness, and draining phases the
// paper's ServiceManager introduces.
func ServiceModel() *Model {
	edges := failureEdges(map[State][]State{
		ServiceNew:            {ServiceSmgrScheduling},
		ServiceSmgrScheduling: {ServiceStagingInput},
		ServiceStagingInput:   {ServiceScheduling},
		ServiceScheduling:     {ServiceLaunching},
		ServiceLaunching:      {ServiceInitializing},
		ServiceInitializing:   {ServicePublishing},
		ServicePublishing:     {ServiceActive},
		ServiceActive:         {ServiceDraining, ServiceDone},
		ServiceDraining:       {ServiceDone},
		ServiceDone:           {},
		ServiceFailed:         {},
		ServiceCanceled:       {},
	}, ServiceFailed, ServiceCanceled, ServiceDone, ServiceFailed, ServiceCanceled)
	return newModel(EntityService, ServiceNew, edges, ServiceDone, ServiceFailed, ServiceCanceled)
}

// ModelFor returns the state model of an entity kind, or nil for an
// unknown kind. Journal replay uses it to validate recorded transitions
// against the same relation the live machines enforce.
func ModelFor(e Entity) *Model {
	switch e {
	case EntityPilot:
		return PilotModel()
	case EntityTask:
		return TaskModel()
	case EntityService:
		return ServiceModel()
	default:
		return nil
	}
}

// Entity returns the model's entity kind.
func (m *Model) Entity() Entity { return m.entity }

// Initial returns the model's initial state.
func (m *Model) Initial() State { return m.initial }

// CanTransition reports whether from → to is a legal edge.
func (m *Model) CanTransition(from, to State) bool {
	for _, s := range m.next[from] {
		if s == to {
			return true
		}
	}
	return false
}

// IsFinal reports whether s is terminal.
func (m *Model) IsFinal(s State) bool { return m.final[s] }

// States returns every state reachable in the model (keys of the edge map).
func (m *Model) States() []State {
	out := make([]State, 0, len(m.next))
	for s := range m.next {
		out = append(out, s)
	}
	return out
}

// Record is one timestamped transition.
type Record struct {
	State State
	At    time.Time
}

// Callback observes a committed transition.
type Callback func(uid string, from, to State, at time.Time)

// Machine tracks the live state of one entity instance. It is safe for
// concurrent use.
type Machine struct {
	uid   string
	model *Model
	clock simtime.Clock

	mu        sync.Mutex
	current   State
	history   []Record
	callbacks []Callback
	waiters   []chan State
}

// NewMachine returns a Machine in the model's initial state, timestamped
// now.
func NewMachine(uid string, model *Model, clock simtime.Clock) *Machine {
	m := &Machine{uid: uid, model: model, clock: clock, current: model.Initial()}
	m.history = []Record{{State: model.Initial(), At: clock.Now()}}
	return m
}

// UID returns the entity UID.
func (m *Machine) UID() string { return m.uid }

// Current returns the current state.
func (m *Machine) Current() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.current
}

// IsFinal reports whether the machine reached a terminal state.
func (m *Machine) IsFinal() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.model.IsFinal(m.current)
}

// OnTransition registers cb to run (synchronously, outside the machine
// lock) after every committed transition.
func (m *Machine) OnTransition(cb Callback) {
	m.mu.Lock()
	m.callbacks = append(m.callbacks, cb)
	m.mu.Unlock()
}

// To transitions the machine to state to. It returns an error (and leaves
// the machine unchanged) if the edge is illegal.
func (m *Machine) To(to State) error {
	m.mu.Lock()
	from := m.current
	if !m.model.CanTransition(from, to) {
		m.mu.Unlock()
		return &TransitionError{Entity: m.model.entity, UID: m.uid, From: from, To: to}
	}
	at := m.clock.Now()
	m.current = to
	m.history = append(m.history, Record{State: to, At: at})
	cbs := append([]Callback{}, m.callbacks...)
	fire := m.waiters
	m.waiters = nil
	m.mu.Unlock()
	for _, w := range fire {
		// non-blocking: waiter channels are buffered
		select {
		case w <- to:
		default:
		}
	}
	for _, cb := range cbs {
		cb(m.uid, from, to, at)
	}
	return nil
}

// Fail moves the machine to its model's FAILED state if legal.
func (m *Machine) Fail() error {
	switch m.model.entity {
	case EntityPilot:
		return m.To(PilotFailed)
	case EntityService:
		return m.To(ServiceFailed)
	default:
		return m.To(TaskFailed)
	}
}

// WaitChan returns a buffered channel receiving each subsequent state (one
// notification per registered wait; re-arm by calling again).
func (m *Machine) WaitChan() <-chan State {
	ch := make(chan State, 1)
	m.mu.Lock()
	m.waiters = append(m.waiters, ch)
	m.mu.Unlock()
	return ch
}

// History returns a copy of the timestamped transition history.
func (m *Machine) History() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Record{}, m.history...)
}

// EnteredAt returns the time the machine first entered s and whether it
// ever did.
func (m *Machine) EnteredAt(s State) (time.Time, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range m.history {
		if r.State == s {
			return r.At, true
		}
	}
	return time.Time{}, false
}

// Between returns the duration between the first entries of a and b. It
// reports ok=false when either state was never entered.
func (m *Machine) Between(a, b State) (time.Duration, bool) {
	ta, oka := m.EnteredAt(a)
	tb, okb := m.EnteredAt(b)
	if !oka || !okb {
		return 0, false
	}
	return tb.Sub(ta), true
}

// TransitionError reports an illegal transition attempt.
type TransitionError struct {
	Entity Entity
	UID    string
	From   State
	To     State
}

// Error implements error.
func (e *TransitionError) Error() string {
	return fmt.Sprintf("states: illegal %s transition %s → %s (uid %s)", e.Entity, e.From, e.To, e.UID)
}

package platform

import (
	"time"

	"repro/internal/rng"
)

// This file is the platform catalog: constructors for the three machines
// of the paper's evaluation (Table II), parameterized with the latencies
// the paper reports and launch models calibrated to reproduce the Fig. 3
// shape — plus the mixed-shape hetero campus, which combines a fat GPU
// partition with a thin CPU partition so heterogeneous pilots and
// fragmentation-aware placement can be exercised at figure scale.

// Paper §IV-C measured latencies.
const (
	// DeltaInterNodeLatency: "inter-node-latency: 0.063 ms +/- 0.014 ms".
	DeltaInterNodeLatencyMean = 63 * time.Microsecond
	DeltaInterNodeLatencyStd  = 14 * time.Microsecond
	// DeltaToR3Latency: "node-to-node-latency: 0.47 ms +/- 0.04 ms".
	DeltaToR3LatencyMean = 470 * time.Microsecond
	DeltaToR3LatencyStd  = 40 * time.Microsecond
)

// FrontierLaunchSaturation is the concurrency beyond which Fig. 3 shows a
// growing system-level (MPI startup) launch overhead.
const FrontierLaunchSaturation = 160

func localLatency(mean, std time.Duration) rng.DurationDist {
	return rng.NormalDuration(mean, std)
}

// NewFrontier models an OLCF Frontier partition large enough for the
// paper's Exp 1 pilot: 640 GPUs = 80 nodes × 8 GPUs (AMD MI250X GCDs), 64
// cores and 512 GB per node. The launch model produces near-constant
// per-instance launch overhead up to 160 concurrent launches and a
// super-linear penalty beyond, as observed in Fig. 3.
func NewFrontier() *Platform {
	p := New("frontier", 80, NodeSpec{Cores: 64, GPUs: 8, MemGB: 512})
	p.IntraNodeLatency = localLatency(5*time.Microsecond, 1*time.Microsecond)
	p.LocalLatency = localLatency(70*time.Microsecond, 15*time.Microsecond)
	p.WANLatency["r3"] = rng.NormalDuration(DeltaToR3LatencyMean, DeltaToR3LatencyStd)
	p.Launch = LaunchModel{
		Base:       rng.NormalDuration(2200*time.Millisecond, 300*time.Millisecond),
		Saturation: FrontierLaunchSaturation,
		PenaltyExp: 1.6,
	}
	return p
}

// NewDelta models the NCSA Delta partition of Exp 2/3: a 256-core /
// 16-GPU pilot is 4 nodes × 64 cores × 4 A100s, 256 GB per node.
func NewDelta() *Platform {
	p := New("delta", 4, NodeSpec{Cores: 64, GPUs: 4, MemGB: 256})
	p.IntraNodeLatency = localLatency(5*time.Microsecond, 1*time.Microsecond)
	p.LocalLatency = localLatency(DeltaInterNodeLatencyMean, DeltaInterNodeLatencyStd)
	p.WANLatency["r3"] = rng.NormalDuration(DeltaToR3LatencyMean, DeltaToR3LatencyStd)
	p.Launch = LaunchModel{
		Base:       rng.NormalDuration(1800*time.Millisecond, 250*time.Millisecond),
		Saturation: 64,
		PenaltyExp: 1.5,
	}
	return p
}

// NewR3 models the R3 cloud server that hosts the remote, persistent model
// services: one large node with enough GPUs for the 16-service sweeps.
// Remote services are persistent (the paper does not measure their BT), so
// the launch model is nominal.
func NewR3() *Platform {
	p := New("r3", 1, NodeSpec{Cores: 128, GPUs: 16, MemGB: 1024})
	p.IntraNodeLatency = localLatency(5*time.Microsecond, 1*time.Microsecond)
	p.LocalLatency = localLatency(20*time.Microsecond, 4*time.Microsecond)
	p.WANLatency["delta"] = rng.NormalDuration(DeltaToR3LatencyMean, DeltaToR3LatencyStd)
	p.WANLatency["frontier"] = rng.NormalDuration(DeltaToR3LatencyMean, DeltaToR3LatencyStd)
	p.Launch = LaunchModel{
		Base:       rng.NormalDuration(500*time.Millisecond, 100*time.Millisecond),
		Saturation: 0,
	}
	return p
}

// Hetero-campus node shapes: the fat partition is R3-class (128 cores,
// 16 GPUs), the thin partition is a diskless CPU blade. The fat
// partition comes first in node order on purpose — index-ordered
// first-fit placement then fragments the fat nodes with small tasks,
// which is exactly the failure mode best-fit placement is for.
var (
	// HeteroFatSpec is the hetero campus's GPU-partition node shape.
	HeteroFatSpec = NodeSpec{Cores: 128, GPUs: 16, MemGB: 1024}
	// HeteroThinSpec is the hetero campus's CPU-partition node shape.
	HeteroThinSpec = NodeSpec{Cores: 16, GPUs: 0, MemGB: 64}
)

// Hetero-campus partition sizes.
const (
	// HeteroFatNodes is the number of fat (GPU) nodes in the campus.
	HeteroFatNodes = 32
	// HeteroThinNodes is the number of thin (CPU) nodes in the campus.
	HeteroThinNodes = 96
)

// NewHeteroCampus models a mixed-shape campus cluster — the kind of
// machine the paper's three single-shape testbeds bracket but never
// combine: a fat GPU partition (32 × 128 cores/16 GPUs/1024 GB) in front
// of a thin CPU partition (96 × 16 cores/64 GB, no GPUs) behind one
// batch system. It exists to exercise heterogeneous pilots end to end:
// whole-campus pilots span both shapes, and the fragmentation ablation
// (`rpexp -exp frag`) compares first-fit against best-fit placement on
// it at figure scale.
func NewHeteroCampus() *Platform {
	p := NewMixed("hetero", []NodeGroup{
		{Count: HeteroFatNodes, Spec: HeteroFatSpec},
		{Count: HeteroThinNodes, Spec: HeteroThinSpec},
	})
	p.IntraNodeLatency = localLatency(5*time.Microsecond, 1*time.Microsecond)
	p.LocalLatency = localLatency(90*time.Microsecond, 20*time.Microsecond)
	p.WANLatency["r3"] = rng.NormalDuration(DeltaToR3LatencyMean, DeltaToR3LatencyStd)
	p.Launch = LaunchModel{
		Base:       rng.NormalDuration(2000*time.Millisecond, 300*time.Millisecond),
		Saturation: 128,
		PenaltyExp: 1.5,
	}
	return p
}

// DefaultTopology wires the three paper platforms plus the mixed-shape
// hetero campus into one topology with the Delta↔R3 WAN latency as the
// default wide-area link.
func DefaultTopology() *Topology {
	t := NewTopology(NewFrontier(), NewDelta(), NewR3(), NewHeteroCampus())
	t.DefaultWAN = rng.NormalDuration(DeltaToR3LatencyMean, DeltaToR3LatencyStd)
	return t
}

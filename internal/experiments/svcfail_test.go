package experiments

import (
	"context"
	"testing"
	"time"
)

// TestSvcFailContrastDeterministic pins the ablation's acceptance
// contrast at reduced scale: over an identical mid-stream kill of the
// hosting pilot, the endpoint-caching client recovers 0 post-failover
// requests while the registry-resolving client recovers all of them via
// exactly one re-resolution, with the service re-placed once and its
// endpoint at generation 2.
func TestSvcFailContrastDeterministic(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cfg := DefaultSvcFailConfig()
	cfg.Requests = 8
	cfg.KillAfter = 4
	res, err := RunSvcFail(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	post := cfg.Requests - cfg.KillAfter
	for _, row := range res.Rows {
		if row.PreKill != cfg.KillAfter {
			t.Fatalf("%s: pre-kill = %d, want %d", row.Client, row.PreKill, cfg.KillAfter)
		}
		if row.Replacements != 1 {
			t.Fatalf("%s: replacements = %d, want 1", row.Client, row.Replacements)
		}
		if row.Generation != 2 {
			t.Fatalf("%s: endpoint generation = %d, want 2", row.Client, row.Generation)
		}
		if row.HostAfter == row.HostBefore || row.HostAfter == "" {
			t.Fatalf("%s: host %s → %s — no migration", row.Client, row.HostBefore, row.HostAfter)
		}
		switch row.Client {
		case SvcFailClientCaching:
			if row.Recovered != 0 || row.Failed != post {
				t.Fatalf("caching client recovered %d failed %d, want 0/%d", row.Recovered, row.Failed, post)
			}
		case SvcFailClientResolving:
			if row.Recovered != post || row.Failed != 0 {
				t.Fatalf("resolving client recovered %d failed %d, want %d/0", row.Recovered, row.Failed, post)
			}
			if row.Reresolved != 1 {
				t.Fatalf("resolving client re-resolved %d times, want 1", row.Reresolved)
			}
		}
	}
	if res.Table().Render() == "" {
		t.Fatal("empty table")
	}
}

// Package experiments reproduces the paper's performance characterization
// (§IV): Experiment 1 (Fig. 3, bootstrap-time scaling on Frontier),
// Experiment 2 (Figs. 4/5, NOOP response time, local and remote, strong
// and weak scaling on Delta/R3) and Experiment 3 (Fig. 6, llama-8b
// inference time, local and remote). It also renders the paper's Table I
// (use cases) and Table II (experiment setup).
//
// Clock-scale calibration matters: bootstrap components are tens of
// seconds, so Exp 1 runs highly compressed; NOOP response times are
// sub-millisecond, so Exp 2 runs at (or near) real time, where simulated
// network latencies and genuine scheduling overheads are of comparable
// magnitude — exactly as on the paper's testbed.
package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pilot"
	"repro/internal/platform"
	"repro/internal/proto"
	"repro/internal/service"
	"repro/internal/simtime"
	"repro/internal/spec"
)

// Deployment selects where the model services run relative to the client
// tasks.
type Deployment string

// Deployments.
const (
	DeployLocal  Deployment = "local"  // services on the same platform (Delta)
	DeployRemote Deployment = "remote" // services on R3, clients on Delta
)

// Scaling selects the sweep mode.
type Scaling string

// Scaling modes (paper §IV-C): strong keeps 16 clients and grows services;
// weak grows both together.
const (
	ScalingStrong Scaling = "strong"
	ScalingWeak   Scaling = "weak"
)

// StrongPairs are the paper's strong-scaling client/service pairs.
func StrongPairs() [][2]int {
	return [][2]int{{16, 1}, {16, 2}, {16, 4}, {16, 8}, {16, 16}}
}

// WeakPairs are the paper's weak-scaling client/service pairs.
func WeakPairs() [][2]int {
	return [][2]int{{1, 1}, {2, 2}, {4, 4}, {8, 8}, {16, 16}}
}

// --- Experiment 1: bootstrap time -------------------------------------------

// BTConfig parameterizes Experiment 1.
type BTConfig struct {
	// Counts are the concurrent service-instance counts; the paper uses
	// 1..640 on Frontier.
	Counts []int
	// Model is the hosted model (paper: llama-8b via ollama).
	Model string
	// Scale is the clock compression (default 2000).
	Scale float64
	// Seed drives determinism.
	Seed uint64
	// Partition, when positive, bootstraps services in waves of at most
	// Partition concurrent launches — the paper's §IV-B mitigation for the
	// post-160 launch penalty ("we will utilize both resource partitioning
	// and asynchronous execution"). Zero launches everything at once.
	Partition int
	// SchedPolicy selects the pilot scheduler's placement policy
	// ("strict", "backfill", "best-fit"; empty = strict).
	SchedPolicy string
	// Router selects the session's task routing strategy ("round-robin",
	// "least-loaded", "capacity-fit"; empty = round-robin).
	Router string
}

// DefaultBTConfig returns the paper's Exp 1 parameterization.
func DefaultBTConfig() BTConfig {
	return BTConfig{
		Counts: []int{1, 2, 4, 8, 20, 40, 80, 160, 320, 640},
		Model:  "llama-8b",
		// 200x keeps the base launch sleep (~2.2s → ~11ms real) long
		// enough that burst members genuinely overlap in real time, which
		// the launch-concurrency model depends on.
		Scale: 200,
		Seed:  1,
	}
}

// BTRow is one point of Fig. 3.
type BTRow struct {
	N       int
	Launch  metrics.Stats
	Init    metrics.Stats
	Publish metrics.Stats
	Total   metrics.Stats
	// Wall is the simulated makespan from first submission to last
	// service ACTIVE — the cost axis of the partitioning trade-off.
	Wall time.Duration
}

// BTResult is the Fig. 3 dataset.
type BTResult struct {
	Cfg  BTConfig
	Rows []BTRow
}

// RunBT executes Experiment 1: for each instance count N it boots a fresh
// Frontier pilot, submits N one-GPU llama services concurrently, waits for
// all to become ACTIVE, and records the per-instance launch/init/publish
// bootstrap components.
func RunBT(ctx context.Context, cfg BTConfig) (*BTResult, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 200
	}
	if cfg.Model == "" {
		cfg.Model = "llama-8b"
	}
	res := &BTResult{Cfg: cfg}
	for _, n := range cfg.Counts {
		row, err := runBTPoint(ctx, cfg, n)
		if err != nil {
			return res, fmt.Errorf("experiments: exp1 N=%d: %w", n, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runBTPoint(ctx context.Context, cfg BTConfig, n int) (BTRow, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 200
	}
	sess, err := core.NewSession(core.SessionConfig{
		Seed:        cfg.Seed + uint64(n),
		Clock:       simtime.NewScaled(cfg.Scale, core.DefaultOrigin),
		SchedPolicy: cfg.SchedPolicy,
		Router:      cfg.Router,
	})
	if err != nil {
		return BTRow{}, err
	}
	defer sess.Close()

	p, err := sess.PilotManager().Submit(spec.PilotDescription{
		Platform: "frontier", GPUs: 640, // Table II: 640 GPUs/pilot
	})
	if err != nil {
		return BTRow{}, err
	}
	sm := sess.ServiceManager()
	sm.AddPilot(p)

	wave := cfg.Partition
	if wave <= 0 || wave > n {
		wave = n
	}
	started := sess.Clock().Now()
	uids := make([]string, 0, n)
	for base := 0; base < n; base += wave {
		count := wave
		if base+count > n {
			count = n - base
		}
		batch := make([]string, 0, count)
		for i := 0; i < count; i++ {
			inst, err := sm.Submit(spec.ServiceDescription{
				TaskDescription: spec.TaskDescription{Name: fmt.Sprintf("llm-%04d", base+i), GPUs: 1},
				Model:           cfg.Model,
				StartTimeout:    time.Hour,
				// liveness probing is irrelevant to the measurement and, at
				// high clock compression, a 5s-sim probe period busy-spins
				ProbeInterval: time.Hour,
			})
			if err != nil {
				return BTRow{}, err
			}
			batch = append(batch, inst.UID())
		}
		// partitioned mode gates each wave on the previous one, capping
		// launch concurrency at the wave size
		if err := sm.WaitReady(ctx, batch...); err != nil {
			return BTRow{}, err
		}
		uids = append(uids, batch...)
	}
	wall := sess.Clock().Now().Sub(started)

	coll := metrics.NewCollector()
	for _, uid := range uids {
		inst, _ := sm.Get(uid)
		bt := inst.Bootstrap()
		coll.AddAll("bt", bt.Components)
		coll.Add("bt.total", bt.Total())
	}
	return BTRow{
		N:       n,
		Launch:  coll.Stats("bt.launch"),
		Init:    coll.Stats("bt.init"),
		Publish: coll.Stats("bt.publish"),
		Total:   coll.Stats("bt.total"),
		Wall:    wall,
	}, nil
}

// Table renders the Fig. 3 dataset.
func (r *BTResult) Table() metrics.Table {
	t := metrics.Table{
		Title:  "Experiment 1 / Fig. 3 — Service Bootstrap Time (s), " + r.Cfg.Model + " on Frontier",
		Header: []string{"#instances", "launch", "init", "publish", "total"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", row.N),
			metrics.FmtMeanStd(row.Launch),
			metrics.FmtMeanStd(row.Init),
			metrics.FmtMeanStd(row.Publish),
			metrics.FmtMeanStd(row.Total))
	}
	return t
}

// --- Experiments 2 and 3: response and inference time -----------------------

// RTConfig parameterizes Experiments 2 (NOOP) and 3 (llama-8b).
type RTConfig struct {
	// Model: "noop" (Exp 2) or "llama-8b" (Exp 3).
	Model string
	// Deploy: local (Delta) or remote (Delta clients → R3 services).
	Deploy Deployment
	// Pairs are the (clients, services) sweep points.
	Pairs [][2]int
	// RequestsPerClient: the paper uses 1024 for NOOP; inference sweeps
	// use fewer per point to bound runtime.
	RequestsPerClient int
	// MaxTokens bounds generation for inference models.
	MaxTokens int
	// Scale is the clock compression (Exp 2 wants ≈1; Exp 3 ≈1000).
	Scale float64
	// Seed drives determinism.
	Seed uint64
	// ServiceConcurrency overrides the single-threaded default (ablation).
	ServiceConcurrency int
	// SchedPolicy selects the pilot scheduler's placement policy
	// ("strict", "backfill", "best-fit"; empty = strict).
	SchedPolicy string
	// Router selects the session's task routing strategy ("round-robin",
	// "least-loaded", "capacity-fit"; empty = round-robin).
	Router string
}

// DefaultExp2Config returns the paper's Exp 2 parameterization for the
// given deployment and scaling mode.
func DefaultExp2Config(deploy Deployment, scaling Scaling) RTConfig {
	pairs := StrongPairs()
	if scaling == ScalingWeak {
		pairs = WeakPairs()
	}
	return RTConfig{
		Model:             "noop",
		Deploy:            deploy,
		Pairs:             pairs,
		RequestsPerClient: 1024,
		Scale:             1, // real time: sub-ms latencies must be resolvable
		Seed:              2,
	}
}

// DefaultExp3Config returns the paper's Exp 3 parameterization. The
// request count per client is reduced (the paper's setup is "identical" to
// Exp 2, but a 1024-request llama sweep is hours of simulated compute; the
// scaling shape is established within a few requests per client).
func DefaultExp3Config(deploy Deployment, scaling Scaling) RTConfig {
	pairs := StrongPairs()
	if scaling == ScalingWeak {
		pairs = WeakPairs()
	}
	return RTConfig{
		Model:             "llama-8b",
		Deploy:            deploy,
		Pairs:             pairs,
		RequestsPerClient: 8,
		MaxTokens:         128,
		Scale:             1000,
		Seed:              3,
	}
}

// RTRow is one sweep point of Figs. 4-6.
type RTRow struct {
	Clients  int
	Services int
	Comm     metrics.Stats
	Service  metrics.Stats
	Infer    metrics.Stats
	Total    metrics.Stats
}

// RTResult is a Figs. 4-6 dataset.
type RTResult struct {
	Cfg  RTConfig
	Rows []RTRow
}

// RunRT executes one RT sweep.
func RunRT(ctx context.Context, cfg RTConfig) (*RTResult, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.RequestsPerClient <= 0 {
		cfg.RequestsPerClient = 1024
	}
	res := &RTResult{Cfg: cfg}
	for _, pair := range cfg.Pairs {
		row, err := runRTPoint(ctx, cfg, pair[0], pair[1])
		if err != nil {
			return res, fmt.Errorf("experiments: %s %s %d/%d: %w", cfg.Model, cfg.Deploy, pair[0], pair[1], err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runRTPoint(ctx context.Context, cfg RTConfig, clients, services int) (RTRow, error) {
	sess, err := core.NewSession(core.SessionConfig{
		Seed:  cfg.Seed + uint64(clients*1000+services),
		Clock: simtime.NewScaled(cfg.Scale, core.DefaultOrigin),
		// Exp 2/3 measure steady-state RT/IT, not bootstrap; skip boot
		// sleeps, which at low scales would cost real wall time.
		FastBoot:    true,
		SchedPolicy: cfg.SchedPolicy,
		Router:      cfg.Router,
	})
	if err != nil {
		return RTRow{}, err
	}
	defer sess.Close()

	// client-side pilot: Delta, Table II (256 cores / 16 GPUs)
	clientPilot, err := sess.PilotManager().Submit(spec.PilotDescription{
		Platform: "delta", Cores: 256, GPUs: 16,
	})
	if err != nil {
		return RTRow{}, err
	}

	// service-side pilot: Delta for local, R3 for remote
	svcPilot := clientPilot
	if cfg.Deploy == DeployRemote {
		svcPilot, err = sess.PilotManager().Submit(spec.PilotDescription{
			Platform: "r3", Nodes: 1,
		})
		if err != nil {
			return RTRow{}, err
		}
	}

	eps, err := startServices(ctx, sess, svcPilot, cfg, services)
	if err != nil {
		return RTRow{}, err
	}

	coll := metrics.NewCollector()
	if err := runClients(ctx, sess, clientPilot, cfg, clients, eps, coll); err != nil {
		return RTRow{}, err
	}
	return RTRow{
		Clients:  clients,
		Services: services,
		Comm:     coll.Stats("rt.communication"),
		Service:  coll.Stats("rt.service"),
		Infer:    coll.Stats("rt.inference"),
		Total:    coll.Stats("rt.total"),
	}, nil
}

// startServices boots `services` instances on svcPilot and returns their
// endpoints. GPU models take one GPU each; the NOOP model takes one core.
func startServices(ctx context.Context, sess *core.Session, svcPilot *pilot.Pilot, cfg RTConfig, services int) ([]proto.Endpoint, error) {
	mgr := svcPilot.Services()
	uids := make([]string, 0, services)
	for i := 0; i < services; i++ {
		d := spec.ServiceDescription{
			TaskDescription: spec.TaskDescription{Name: fmt.Sprintf("svc-%02d", i)},
			Model:           cfg.Model,
			Concurrency:     cfg.ServiceConcurrency,
			StartTimeout:    time.Hour,
			ProbeInterval:   time.Hour,
		}
		if cfg.Model == "noop" {
			d.Cores = 1
		} else {
			d.GPUs = 1
		}
		inst, err := mgr.Submit(d)
		if err != nil {
			return nil, err
		}
		uids = append(uids, inst.UID())
	}
	if err := mgr.WaitReady(ctx, uids...); err != nil {
		return nil, err
	}
	eps := make([]proto.Endpoint, 0, services)
	for _, uid := range uids {
		ep, ok := svcPilot.Registry().Lookup(uid)
		if !ok {
			return nil, fmt.Errorf("experiments: endpoint of %s not published", uid)
		}
		eps = append(eps, ep)
	}
	return eps, nil
}

// runClients submits `clients` function tasks on clientPilot; each client
// sends RequestsPerClient requests to its assigned service (round-robin
// client→service mapping, the paper's rudimentary load balancing) and
// records the RT decomposition.
func runClients(ctx context.Context, sess *core.Session, clientPilot *pilot.Pilot, cfg RTConfig, clients int, eps []proto.Endpoint, coll *metrics.Collector) error {
	nodes := clientPilot.Nodes()
	var tasks []*pilot.Task
	for c := 0; c < clients; c++ {
		c := c
		ep := eps[c%len(eps)]
		node := nodes[c%len(nodes)]
		clientAddr := platform.Addr("delta", node.Name(), fmt.Sprintf("client.%04d", c))
		desc := spec.TaskDescription{
			Name:  fmt.Sprintf("client-%04d", c),
			Cores: 1,
			Func: func(taskCtx context.Context) error {
				cl, err := service.Dial(sess.Network(), sess.Clock(), clientAddr, ep)
				if err != nil {
					return err
				}
				defer cl.Close()
				for i := 0; i < cfg.RequestsPerClient; i++ {
					prompt := fmt.Sprintf("request %d from client %d", i, c)
					_, rt, err := cl.Infer(taskCtx, prompt, cfg.MaxTokens)
					if err != nil {
						return err
					}
					coll.AddAll("rt", rt.Components)
					coll.Add("rt.total", rt.Total())
				}
				return nil
			},
		}
		t, err := clientPilot.SubmitTask(ctx, desc)
		if err != nil {
			return err
		}
		tasks = append(tasks, t)
	}
	uids := make([]string, len(tasks))
	for i, t := range tasks {
		uids[i] = t.UID()
	}
	return clientPilot.WaitTasks(ctx, uids...)
}

// Table renders an RT dataset in the layout of Figs. 4-6.
func (r *RTResult) Table() metrics.Table {
	expName := "Experiment 2 (NOOP RT)"
	fig := map[Deployment]string{DeployLocal: "Fig. 4", DeployRemote: "Fig. 5"}[r.Cfg.Deploy]
	if r.Cfg.Model != "noop" {
		expName = "Experiment 3 (LLAMA IT)"
		fig = "Fig. 6"
	}
	t := metrics.Table{
		Title: fmt.Sprintf("%s / %s — %s deployment, %d requests/client (times in s)",
			expName, fig, r.Cfg.Deploy, r.Cfg.RequestsPerClient),
		Header: []string{"clients/services", "communication", "service", "inference", "total RT"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d/%d", row.Clients, row.Services),
			metrics.FmtMeanStd(row.Comm),
			metrics.FmtMeanStd(row.Service),
			metrics.FmtMeanStd(row.Infer),
			metrics.FmtMeanStd(row.Total))
	}
	return t
}

// --- Table II -----------------------------------------------------------------

// TableII renders the paper's experiment-setup table.
func TableII() metrics.Table {
	t := metrics.Table{
		Title: "Table II — Experiment setup",
		Header: []string{"ID", "HPC Platform", "Task Type", "Model", "Deployment",
			"#Tasks", "#Models", "#Cores/Pilot", "#GPUs/Pilot", "Scaling"},
	}
	t.AddRow("1", "Frontier", "n/a", "llama 8b", "local", "n/a", "1-640", "640", "40", "weak")
	t.AddRow("2", "Delta", "NOOP", "noop", "local", "1-16", "1-16", "256", "16", "strong/weak")
	t.AddRow("2", "Delta and R3", "NOOP", "noop", "remote", "1-16", "1-16", "256", "16", "strong/weak")
	t.AddRow("3", "Delta", "inference", "llama 8b", "local", "1-16", "1-16", "256", "16", "strong/weak")
	t.AddRow("3", "Delta and R3", "inference", "llama 8b", "remote", "1-16", "1-16", "256", "16", "strong/weak")
	return t
}

package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/msgq"
	"repro/internal/proto"
)

func ep(uid, addr string) proto.Endpoint {
	return proto.Endpoint{ServiceUID: uid, Model: "noop", Address: addr, Protocol: "msgq"}
}

func TestEndpointRegistryPublishResolveGenerations(t *testing.T) {
	r := NewEndpointRegistry()
	if _, _, ok := r.Resolve("svc"); ok {
		t.Fatal("empty registry resolved")
	}
	if g, _ := r.Publish(ep("svc", "a")); g != 1 {
		t.Fatalf("first publish gen = %d, want 1", g)
	}
	got, gen, ok := r.Resolve("svc")
	if !ok || got.Address != "a" || gen != 1 || got.Generation != 1 {
		t.Fatalf("resolve = %+v gen=%d ok=%v", got, gen, ok)
	}
	// re-publication (failover) bumps the generation
	if g, _ := r.Publish(ep("svc", "b")); g != 2 {
		t.Fatalf("re-publish gen = %d, want 2", g)
	}
	got, gen, _ = r.Resolve("svc")
	if got.Address != "b" || gen != 2 {
		t.Fatalf("after re-publish: %+v gen=%d", got, gen)
	}
	if r.Generation("svc") != 2 {
		t.Fatalf("Generation = %d", r.Generation("svc"))
	}
}

func TestEndpointRegistrySuspendHidesButKeepsGeneration(t *testing.T) {
	r := NewEndpointRegistry()
	r.Publish(ep("svc", "a"))
	r.Suspend("svc")
	if _, _, ok := r.Resolve("svc"); ok {
		t.Fatal("suspended endpoint resolved")
	}
	if g := r.Generation("svc"); g != 1 {
		t.Fatalf("suspend moved the generation: %d", g)
	}
	if got := len(r.All()); got != 0 {
		t.Fatalf("All lists %d suspended endpoints", got)
	}
	// the re-publication is strictly newer than the pre-failover copy
	if g, _ := r.Publish(ep("svc", "b")); g != 2 {
		t.Fatalf("gen after suspend+publish = %d", g)
	}
}

func TestEndpointRegistryAwaitNewerWakesOnRepublish(t *testing.T) {
	r := NewEndpointRegistry()
	r.Publish(ep("svc", "a"))
	r.Suspend("svc")

	done := make(chan proto.Endpoint, 1)
	go func() {
		got, gen, err := r.AwaitNewer(context.Background(), "svc", 1)
		if err != nil || gen != 2 {
			t.Errorf("AwaitNewer = gen %d err %v", gen, err)
		}
		done <- got
	}()
	// the waiter must genuinely park (no endpoint newer than gen 1 yet)
	select {
	case <-done:
		t.Fatal("AwaitNewer returned before the re-publication")
	case <-time.After(10 * time.Millisecond):
	}
	r.Publish(ep("svc", "b"))
	select {
	case got := <-done:
		if got.Address != "b" {
			t.Fatalf("woke with %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AwaitNewer never woke")
	}
}

func TestEndpointRegistryAwaitNewerImmediateWhenAlreadyNewer(t *testing.T) {
	r := NewEndpointRegistry()
	r.Publish(ep("svc", "a"))
	r.Publish(ep("svc", "b"))
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	got, gen, err := r.AwaitNewer(ctx, "svc", 1)
	if err != nil || gen != 2 || got.Address != "b" {
		t.Fatalf("AwaitNewer = %+v gen %d err %v", got, gen, err)
	}
}

func TestEndpointRegistryWithdrawFailsWaiters(t *testing.T) {
	r := NewEndpointRegistry()
	r.Publish(ep("svc", "a"))
	errs := make(chan error, 1)
	go func() {
		_, _, err := r.AwaitNewer(context.Background(), "svc", 1)
		errs <- err
	}()
	time.Sleep(5 * time.Millisecond)
	r.Withdraw("svc")
	select {
	case err := <-errs:
		if !errors.Is(err, ErrWithdrawn) {
			t.Fatalf("err = %v, want ErrWithdrawn", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never failed after withdraw")
	}
	if _, _, ok := r.Resolve("svc"); ok {
		t.Fatal("withdrawn endpoint resolved")
	}
	// a fresh publication clears the tombstone (new incarnation)
	r.Publish(ep("svc", "c"))
	if _, _, ok := r.Resolve("svc"); !ok {
		t.Fatal("re-published endpoint not resolvable")
	}
}

func TestEndpointRegistryAwaitContextExpiry(t *testing.T) {
	r := NewEndpointRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := r.AwaitLive(ctx, "never"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

// TestEndpointRegistryConcurrentResolveDuringRepublish is the satellite's
// race test: resolvers hammer Resolve/AwaitNewer while publishers churn
// the entry through suspend/re-publish cycles. Run under -race; the
// invariant checked is that a resolved endpoint's address always matches
// its generation (no torn read across the swap).
func TestEndpointRegistryConcurrentResolveDuringRepublish(t *testing.T) {
	r := NewEndpointRegistry()
	addrOf := func(gen uint64) string { return fmt.Sprintf("addr-%d", gen) }
	r.Publish(ep("svc", addrOf(1)))

	const cycles = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got, gen, ok := r.Resolve("svc"); ok {
					if got.Address != addrOf(gen) || got.Generation != gen {
						t.Errorf("torn read: gen %d address %s", gen, got.Address)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		gen := uint64(1)
		for {
			got, newGen, err := r.AwaitNewer(context.Background(), "svc", gen)
			if err != nil {
				return // withdrawn at the end
			}
			if newGen <= gen || got.Address != addrOf(newGen) {
				t.Errorf("await regressed: had %d got %d (%s)", gen, newGen, got.Address)
				return
			}
			gen = newGen
		}
	}()
	for g := uint64(2); g <= cycles; g++ {
		r.Suspend("svc")
		r.Publish(ep("svc", addrOf(g)))
	}
	r.Withdraw("svc")
	close(stop)
	wg.Wait()
}

// --- resolver ----------------------------------------------------------------

// fakeCaller counts calls against one address and fails — with the
// transport's endpoint-gone error, as a closed msgq server produces —
// once its address is marked dead.
type fakeCaller struct {
	addr  string
	dead  *atomic.Value // current dead address (string)
	calls atomic.Int64
}

func (f *fakeCaller) Infer(ctx context.Context, prompt string, maxTokens int) (proto.InferenceReply, metrics.Breakdown, error) {
	f.calls.Add(1)
	if d, _ := f.dead.Load().(string); d == f.addr {
		return proto.InferenceReply{}, metrics.Breakdown{}, fmt.Errorf("%w: %s", msgq.ErrClosed, f.addr)
	}
	return proto.InferenceReply{Model: "noop", Text: f.addr}, metrics.Breakdown{}, nil
}

func (f *fakeCaller) Close() error { return nil }

func TestResolverStaleGenerationReresolution(t *testing.T) {
	r := NewEndpointRegistry()
	var dead atomic.Value
	dead.Store("")
	var dialed []string
	var mu sync.Mutex
	dial := func(e proto.Endpoint) (Caller, error) {
		mu.Lock()
		dialed = append(dialed, e.Address)
		mu.Unlock()
		return &fakeCaller{addr: e.Address, dead: &dead}, nil
	}
	res, err := NewResolver(r, "svc", dial, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	r.Publish(ep("svc", "a"))

	ctx := context.Background()
	reply, _, err := res.Infer(ctx, "p", 0)
	if err != nil || reply.Text != "a" {
		t.Fatalf("first infer = %q err %v", reply.Text, err)
	}
	if res.Reresolved() != 0 {
		t.Fatalf("reresolved = %d before any failover", res.Reresolved())
	}

	// failover: a is dead, b published with a newer generation. The
	// resolver must detect the stale generation and redial without an
	// error surfacing to the caller.
	dead.Store("a")
	r.Suspend("svc")
	r.Publish(ep("svc", "b"))
	reply, _, err = res.Infer(ctx, "p", 0)
	if err != nil || reply.Text != "b" {
		t.Fatalf("post-failover infer = %q err %v", reply.Text, err)
	}
	if res.Reresolved() != 1 {
		t.Fatalf("reresolved = %d, want 1", res.Reresolved())
	}
	mu.Lock()
	want := []string{"a", "b"}
	if len(dialed) != 2 || dialed[0] != want[0] || dialed[1] != want[1] {
		t.Fatalf("dialed %v, want %v", dialed, want)
	}
	mu.Unlock()
}

func TestResolverRetriesThroughMidRequestFailure(t *testing.T) {
	// The harder ordering: the request fails BEFORE the registry knows
	// anything — the resolver must park in AwaitNewer and retry once the
	// re-publication lands.
	r := NewEndpointRegistry()
	var dead atomic.Value
	dead.Store("")
	dial := func(e proto.Endpoint) (Caller, error) {
		return &fakeCaller{addr: e.Address, dead: &dead}, nil
	}
	res, err := NewResolver(r, "svc", dial, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	r.Publish(ep("svc", "a"))
	if _, _, err := res.Infer(context.Background(), "p", 0); err != nil {
		t.Fatal(err)
	}

	dead.Store("a") // service crashed; registry not yet updated
	done := make(chan error, 1)
	var text atomic.Value
	go func() {
		reply, _, err := res.Infer(context.Background(), "p", 0)
		text.Store(reply.Text)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("infer settled (%v) before the re-publication", err)
	case <-time.After(10 * time.Millisecond):
	}
	r.Publish(ep("svc", "b"))
	select {
	case err := <-done:
		if err != nil || text.Load().(string) != "b" {
			t.Fatalf("recovered infer = %q err %v", text.Load(), err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("resolver never recovered")
	}
}

// TestResolverSurfacesApplicationError: an application-level error from
// a live service at the current generation (queue full, model error) is
// NOT a failover — it must surface immediately instead of parking the
// caller in AwaitNewer for a re-publication that will never come.
func TestResolverSurfacesApplicationError(t *testing.T) {
	r := NewEndpointRegistry()
	appErr := errors.New("serving: request queue full")
	dial := func(e proto.Endpoint) (Caller, error) {
		return callerFunc(func() (proto.InferenceReply, metrics.Breakdown, error) {
			return proto.InferenceReply{}, metrics.Breakdown{}, appErr
		}), nil
	}
	res, err := NewResolver(r, "svc", dial, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	r.Publish(ep("svc", "a"))
	done := make(chan error, 1)
	go func() {
		_, _, err := res.Infer(context.Background(), "p", 0)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, appErr) {
			t.Fatalf("err = %v, want the application error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("resolver parked on an application error from a live service")
	}
}

// callerFunc adapts a function to Caller for test stubs.
type callerFunc func() (proto.InferenceReply, metrics.Breakdown, error)

func (f callerFunc) Infer(context.Context, string, int) (proto.InferenceReply, metrics.Breakdown, error) {
	return f()
}
func (f callerFunc) Close() error { return nil }

func TestResolverSurfacesWithdrawal(t *testing.T) {
	r := NewEndpointRegistry()
	var dead atomic.Value
	dead.Store("a")
	dial := func(e proto.Endpoint) (Caller, error) {
		return &fakeCaller{addr: e.Address, dead: &dead}, nil
	}
	res, err := NewResolver(r, "svc", dial, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	r.Publish(ep("svc", "a"))
	errs := make(chan error, 1)
	go func() {
		_, _, err := res.Infer(context.Background(), "p", 0)
		errs <- err
	}()
	time.Sleep(5 * time.Millisecond)
	r.Withdraw("svc") // terminated for good: the resolver must stop waiting
	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("infer succeeded against a withdrawn, dead service")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("resolver hung on a withdrawn service")
	}
}

func TestEndpointRegistryIncarnationFence(t *testing.T) {
	r := NewEndpointRegistry()
	// Journal-less path: fence 0 accepts incarnation-0 publications.
	if _, err := r.Publish(ep("svc", "a")); err != nil {
		t.Fatalf("unfenced publish: %v", err)
	}

	r.SetFence(2)
	if r.Fence() != 2 {
		t.Fatalf("Fence = %d", r.Fence())
	}
	r.SetFence(1) // fences only move forward
	if r.Fence() != 2 {
		t.Fatalf("fence moved backwards: %d", r.Fence())
	}

	stale := ep("svc", "zombie")
	stale.Incarnation = 1
	if _, err := r.Publish(stale); !errors.Is(err, ErrStaleIncarnation) {
		t.Fatalf("stale publish err = %v, want ErrStaleIncarnation", err)
	}
	if e, _, ok := r.Resolve("svc"); !ok || e.Address != "a" {
		t.Fatalf("stale publish clobbered the entry: %+v ok=%v", e, ok)
	}

	fresh := ep("svc", "successor")
	fresh.Incarnation = 2
	if g, err := r.Publish(fresh); err != nil || g != 2 {
		t.Fatalf("fresh publish gen=%d err=%v", g, err)
	}
}

func TestEndpointRegistryObserverAndRestore(t *testing.T) {
	r := NewEndpointRegistry()
	type event struct {
		op  EndpointOp
		uid string
		gen uint64
	}
	var events []event
	r.SetObserver(func(op EndpointOp, uid string, e proto.Endpoint, gen uint64) {
		events = append(events, event{op, uid, gen})
	})
	r.Publish(ep("svc", "a"))
	r.Suspend("svc")
	r.Publish(ep("svc", "b"))
	r.Withdraw("svc")
	want := []event{
		{EndpointPublish, "svc", 1},
		{EndpointSuspend, "svc", 1},
		{EndpointPublish, "svc", 2},
		{EndpointWithdraw, "svc", 2},
	}
	if len(events) != len(want) {
		t.Fatalf("events = %+v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}

	// Restore seeds a generation floor without making the entry live; the
	// next publish lands strictly above the floor.
	r2 := NewEndpointRegistry()
	r2.Restore("svc", 3, false)
	if _, _, ok := r2.Resolve("svc"); ok {
		t.Fatal("restored entry resolved before a publish")
	}
	if g, err := r2.Publish(ep("svc", "c")); err != nil || g != 4 {
		t.Fatalf("publish after restore gen=%d err=%v, want 4", g, err)
	}
	// Restored tombstone: Await fails immediately with ErrWithdrawn.
	r3 := NewEndpointRegistry()
	r3.Restore("gone", 2, true)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, _, err := r3.AwaitLive(ctx, "gone"); !errors.Is(err, ErrWithdrawn) {
		t.Fatalf("await on restored tombstone err = %v, want ErrWithdrawn", err)
	}
}

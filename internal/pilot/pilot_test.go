package pilot

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/msgq"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/states"
)

var origin = time.Date(2025, 3, 17, 0, 0, 0, 0, time.UTC)

func newPilot(t *testing.T, scale float64, desc spec.PilotDescription) (*Pilot, *platform.Platform) {
	t.Helper()
	clock := simtime.NewScaled(scale, origin)
	src := rng.New(11)
	plat := platform.NewDelta()
	topo := platform.NewTopology(plat)
	net := msgq.NewNetwork(clock, src.Derive("net"), topo.Resolver())
	p, err := Launch(Config{Clock: clock, Src: src, Net: net, Platform: plat}, desc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if p.State() == states.PilotActive {
			_ = p.Shutdown()
		}
		net.Close()
	})
	return p, plat
}

func deltaPilot() spec.PilotDescription {
	return spec.PilotDescription{Platform: "delta", Cores: 256, GPUs: 16}
}

func TestLaunchAcquiresWholeNodes(t *testing.T) {
	p, plat := newPilot(t, 100000, deltaPilot())
	if p.State() != states.PilotActive {
		t.Fatalf("state = %s", p.State())
	}
	if len(p.Nodes()) != 4 {
		t.Fatalf("pilot nodes = %d, want 4 (256 cores / 64 per node)", len(p.Nodes()))
	}
	if plat.FreeCores() != 0 || plat.FreeGPUs() != 0 {
		t.Fatal("platform resources not reserved by pilot")
	}
}

func TestLaunchByNodeCount(t *testing.T) {
	p, plat := newPilot(t, 100000, spec.PilotDescription{Platform: "delta", Nodes: 2})
	if len(p.Nodes()) != 2 {
		t.Fatalf("pilot nodes = %d", len(p.Nodes()))
	}
	if plat.FreeCores() != 128 {
		t.Fatalf("platform free cores = %d, want 128", plat.FreeCores())
	}
}

func TestLaunchInsufficient(t *testing.T) {
	clock := simtime.NewScaled(100000, origin)
	src := rng.New(1)
	plat := platform.NewDelta()
	net := msgq.NewNetwork(clock, src, nil)
	defer net.Close()
	_, err := Launch(Config{Clock: clock, Src: src, Net: net, Platform: plat},
		spec.PilotDescription{Platform: "delta", Nodes: 99})
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v", err)
	}
	if plat.FreeCores() != plat.TotalCores() {
		t.Fatal("failed launch leaked node allocations")
	}
}

func TestLaunchValidation(t *testing.T) {
	clock := simtime.NewScaled(1000, origin)
	src := rng.New(1)
	plat := platform.NewDelta()
	net := msgq.NewNetwork(clock, src, nil)
	defer net.Close()
	if _, err := Launch(Config{Clock: clock, Src: src, Net: net, Platform: plat},
		spec.PilotDescription{}); err == nil {
		t.Fatal("accepted empty pilot description")
	}
	if _, err := Launch(Config{}, deltaPilot()); err == nil {
		t.Fatal("accepted empty config")
	}
}

func TestShutdownReleasesPlatform(t *testing.T) {
	p, plat := newPilot(t, 100000, deltaPilot())
	if err := p.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if p.State() != states.PilotDone {
		t.Fatalf("state = %s", p.State())
	}
	if plat.FreeCores() != plat.TotalCores() || plat.FreeGPUs() != plat.TotalGPUs() {
		t.Fatal("shutdown did not release platform resources")
	}
	if err := p.Shutdown(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("double shutdown = %v", err)
	}
}

func TestTaskLifecycle(t *testing.T) {
	p, _ := newPilot(t, 100000, deltaPilot())
	task, err := p.SubmitTask(context.Background(), spec.TaskDescription{
		Name: "sim", Cores: 4, Duration: rng.ConstDuration(30 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := p.WaitTasks(ctx, task.UID()); err != nil {
		t.Fatal(err)
	}
	if task.State() != states.TaskDone {
		t.Fatalf("state = %s", task.State())
	}
	res := task.Result()
	if res.ExecTime < 20*time.Second || res.LaunchTime <= 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestTaskFuncPayload(t *testing.T) {
	p, _ := newPilot(t, 100000, deltaPilot())
	var ran bool
	task, _ := p.SubmitTask(context.Background(), spec.TaskDescription{
		Name: "fn", Cores: 1,
		Func: func(ctx context.Context) error { ran = true; return nil },
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := p.WaitTasks(ctx, task.UID()); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("function payload did not run")
	}
}

func TestTaskFailurePropagates(t *testing.T) {
	p, _ := newPilot(t, 100000, deltaPilot())
	boom := errors.New("boom")
	task, _ := p.SubmitTask(context.Background(), spec.TaskDescription{
		Name: "bad", Cores: 1,
		Func: func(ctx context.Context) error { return boom },
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	err := p.WaitTasks(ctx, task.UID())
	if !errors.Is(err, boom) {
		t.Fatalf("WaitTasks = %v, want boom", err)
	}
	if task.State() != states.TaskFailed {
		t.Fatalf("state = %s", task.State())
	}
}

func TestTaskWithStaging(t *testing.T) {
	p, _ := newPilot(t, 100000, deltaPilot())
	task, _ := p.SubmitTask(context.Background(), spec.TaskDescription{
		Name: "staged", Cores: 1, Duration: rng.ConstDuration(time.Second),
		InputStaging: []spec.StagingDirective{
			{Source: "delta:/raw/a", Target: "delta:/sandbox/a", Bytes: 1 << 20, Mode: spec.StageCopy},
		},
		OutputStaging: []spec.StagingDirective{
			{Source: "delta:/sandbox/out", Target: "delta:/results/out", Bytes: 1 << 10, Mode: spec.StageCopy},
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := p.WaitTasks(ctx, task.UID()); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Stage().Lookup("delta:/results/out"); !ok {
		t.Fatal("output staging did not register the result object")
	}
}

func TestManyTasksConcurrent(t *testing.T) {
	p, _ := newPilot(t, 100000, deltaPilot())
	const n = 64
	uids := make([]string, n)
	for i := 0; i < n; i++ {
		task, err := p.SubmitTask(context.Background(), spec.TaskDescription{
			Name: "bulk", Cores: 4, Duration: rng.ConstDuration(5 * time.Second),
		})
		if err != nil {
			t.Fatal(err)
		}
		uids[i] = task.UID()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := p.WaitTasks(ctx, uids...); err != nil {
		t.Fatal(err)
	}
	if got := p.Executor().Completed(); got != n {
		t.Fatalf("completed = %d, want %d", got, n)
	}
	// all resources back
	for _, node := range p.Nodes() {
		if node.FreeCores() != node.Spec().Cores {
			t.Fatalf("node %s leaked cores", node.Name())
		}
	}
}

func TestServiceViaPilot(t *testing.T) {
	p, _ := newPilot(t, 100000, deltaPilot())
	inst, err := p.Services().Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "svc", GPUs: 1},
		Model:           "llama-8b",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Services().WaitReady(ctx, inst.UID()); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Registry().Lookup(inst.UID()); !ok {
		t.Fatal("service endpoint not registered via pilot agent")
	}
}

func TestStateCallbackObservesTransitions(t *testing.T) {
	clock := simtime.NewScaled(100000, origin)
	src := rng.New(11)
	plat := platform.NewDelta()
	net := msgq.NewNetwork(clock, src, nil)
	defer net.Close()
	var mu sync.Mutex
	var seen []states.State
	cb := func(uid string, from, to states.State, at time.Time) {
		mu.Lock()
		seen = append(seen, to)
		mu.Unlock()
	}
	p, err := Launch(Config{Clock: clock, Src: src, Net: net, Platform: plat, StateCallback: cb}, deltaPilot())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown() //nolint:errcheck
	task, _ := p.SubmitTask(context.Background(), spec.TaskDescription{
		Name: "cb", Cores: 1, Duration: rng.ConstDuration(time.Second),
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	_ = p.WaitTasks(ctx, task.UID())
	mu.Lock()
	defer mu.Unlock()
	var gotDone bool
	for _, s := range seen {
		if s == states.TaskDone {
			gotDone = true
		}
	}
	if !gotDone {
		t.Fatalf("callback never saw DONE; saw %v", seen)
	}
}

func TestWaitTasksAllWhenUnspecified(t *testing.T) {
	p, _ := newPilot(t, 100000, deltaPilot())
	for i := 0; i < 4; i++ {
		_, _ = p.SubmitTask(context.Background(), spec.TaskDescription{
			Name: "t", Cores: 1, Duration: rng.ConstDuration(time.Second),
		})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.WaitTasks(ctx); err != nil {
		t.Fatal(err)
	}
	for _, task := range p.Tasks() {
		if task.State() != states.TaskDone {
			t.Fatalf("task %s = %s", task.UID(), task.State())
		}
	}
}

func TestWaitTasksUnknown(t *testing.T) {
	p, _ := newPilot(t, 100000, deltaPilot())
	if err := p.WaitTasks(context.Background(), "task.404"); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("err = %v", err)
	}
}

func TestSubmitTaskAfterShutdown(t *testing.T) {
	p, _ := newPilot(t, 100000, deltaPilot())
	_ = p.Shutdown()
	if _, err := p.SubmitTask(context.Background(), spec.TaskDescription{
		Name: "late", Cores: 1, Duration: rng.ConstDuration(time.Second),
	}); !errors.Is(err, ErrNotActive) {
		t.Fatalf("err = %v", err)
	}
}

// newPilotOn launches a pilot on an arbitrary platform (newPilot is
// pinned to Delta).
func newPilotOn(t *testing.T, plat *platform.Platform, desc spec.PilotDescription, polName string) *Pilot {
	t.Helper()
	clock := simtime.NewScaled(100000, origin)
	src := rng.New(11)
	net := msgq.NewNetwork(clock, src.Derive("net"), platform.NewTopology(plat).Resolver())
	p, err := Launch(Config{
		Clock: clock, Src: src, Net: net, Platform: plat, SchedPolicy: polName,
	}, desc)
	if err != nil {
		net.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if p.State() == states.PilotActive {
			_ = p.Shutdown()
		}
		net.Close()
	})
	return p
}

// TestLaunchSpansMixedShapes pins heterogeneous acquisition: a
// whole-campus pilot on a mixed platform owns nodes of every shape and
// reports them through Shapes.
func TestLaunchSpansMixedShapes(t *testing.T) {
	plat := platform.NewHeteroCampus()
	p := newPilotOn(t, plat, spec.PilotDescription{
		Platform: "hetero", Nodes: len(plat.Nodes()),
	}, "")
	if len(p.Nodes()) != len(plat.Nodes()) {
		t.Fatalf("pilot nodes = %d, want the whole campus (%d)", len(p.Nodes()), len(plat.Nodes()))
	}
	shapes := p.Shapes()
	if len(shapes) != 2 {
		t.Fatalf("pilot shapes = %+v, want fat + thin", shapes)
	}
	if shapes[0].Spec != platform.HeteroFatSpec || shapes[1].Spec != platform.HeteroThinSpec {
		t.Fatalf("pilot shape specs = %+v", shapes)
	}
	if plat.FreeCores() != 0 || plat.FreeGPUs() != 0 {
		t.Fatal("whole-campus pilot left platform capacity unreserved")
	}
}

// TestLaunchMixedCapacityAccumulates pins the Cores/GPUs acquisition
// path on a mixed platform: demand is met by accumulating capacity
// across shapes, and nodes contributing nothing toward the unmet
// dimensions are skipped.
func TestLaunchMixedCapacityAccumulates(t *testing.T) {
	fat := platform.NodeSpec{Cores: 64, GPUs: 8, MemGB: 256}
	thin := platform.NodeSpec{Cores: 8, GPUs: 0, MemGB: 32}

	// cores-dominated demand spans both shapes: 2 fat (128c) + 4 thin
	// (32c) reach 160 cores
	plat := platform.NewMixed("mix", []platform.NodeGroup{{Count: 2, Spec: fat}, {Count: 8, Spec: thin}})
	p := newPilotOn(t, plat, spec.PilotDescription{Platform: "mix", Cores: 160}, "")
	if len(p.Nodes()) != 6 {
		t.Fatalf("pilot nodes = %d, want 6 (2 fat + 4 thin)", len(p.Nodes()))
	}

	// a GPU demand on a thin-first platform must skip the GPU-less
	// partition instead of reserving it
	plat = platform.NewMixed("mix2", []platform.NodeGroup{{Count: 8, Spec: thin}, {Count: 2, Spec: fat}})
	p = newPilotOn(t, plat, spec.PilotDescription{Platform: "mix2", GPUs: 16}, "")
	if len(p.Nodes()) != 2 {
		t.Fatalf("pilot nodes = %d, want 2 fat nodes only", len(p.Nodes()))
	}
	for _, n := range p.Nodes() {
		if n.Spec() != fat {
			t.Fatalf("GPU pilot acquired a %+v node", n.Spec())
		}
	}
	if free := plat.FreeCores(); free != 8*8 {
		t.Fatalf("thin partition cores reserved by a GPU pilot: %d free, want 64", free)
	}

	// a dimension no shape provides fails fast instead of silently
	// granting an under-provisioned pilot (deliberate divergence from
	// the pre-mixed-shapes behavior: such a pilot's scheduler would
	// reject every task demanding that dimension anyway)
	cpuOnly := platform.New("cpuonly", 4, thin)
	cpuNet := msgq.NewNetwork(simtime.NewScaled(100000, origin), rng.New(1), nil)
	defer cpuNet.Close()
	_, err := Launch(Config{
		Clock: simtime.NewScaled(100000, origin), Src: rng.New(1), Net: cpuNet, Platform: cpuOnly,
	}, spec.PilotDescription{Platform: "cpuonly", Cores: 8, GPUs: 1})
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("GPU demand on a GPU-less platform = %v, want ErrInsufficient", err)
	}
	if cpuOnly.FreeCores() != cpuOnly.TotalCores() {
		t.Fatal("failed GPU-less launch leaked core allocations")
	}

	// over-demand fails cleanly and releases everything
	plat = platform.NewMixed("mix3", []platform.NodeGroup{{Count: 8, Spec: thin}, {Count: 2, Spec: fat}})
	net := msgq.NewNetwork(simtime.NewScaled(100000, origin), rng.New(1), nil)
	defer net.Close()
	_, err = Launch(Config{
		Clock: simtime.NewScaled(100000, origin), Src: rng.New(1), Net: net, Platform: plat,
	}, spec.PilotDescription{Platform: "mix3", GPUs: 999})
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("over-demand err = %v", err)
	}
	if plat.FreeGPUs() != 16 || plat.FreeCores() != plat.TotalCores() {
		t.Fatal("failed mixed launch leaked allocations")
	}
}

// TestPolicyResolutionPrecedence pins the policy fallback chain: an
// explicit Config.SchedPolicy wins, otherwise the platform's default
// applies, otherwise strict — and a bad name fails the launch before any
// resources are acquired.
func TestPolicyResolutionPrecedence(t *testing.T) {
	launch := func(platPolicy, cfgPolicy string) (*Pilot, error) {
		clock := simtime.NewScaled(100000, origin)
		src := rng.New(11)
		plat := platform.NewDelta()
		plat.SchedPolicy = platPolicy
		net := msgq.NewNetwork(clock, src.Derive("net"), platform.NewTopology(plat).Resolver())
		p, err := Launch(Config{
			Clock: clock, Src: src, Net: net, Platform: plat, SchedPolicy: cfgPolicy,
		}, deltaPilot())
		if err == nil {
			t.Cleanup(func() {
				if p.State() == states.PilotActive {
					_ = p.Shutdown()
				}
				net.Close()
			})
		}
		return p, err
	}

	p, err := launch("", "")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Scheduler().Policy().Name(); got != "strict" {
		t.Fatalf("default policy = %q, want strict", got)
	}

	p, err = launch("backfill", "")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Scheduler().Policy().Name(); got != "backfill" {
		t.Fatalf("platform-default policy = %q, want backfill", got)
	}

	p, err = launch("backfill", "best-fit")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Scheduler().Policy().Name(); got != "best-fit" {
		t.Fatalf("config override policy = %q, want best-fit", got)
	}

	if _, err = launch("", "florble"); err == nil {
		t.Fatal("Launch accepted an unknown policy name")
	}
}

// TestShutdownFailsQueuedTasks pins the late-binding failure contract:
// a task still waiting for a scheduler grant when the pilot shuts down
// fails promptly with ErrPilotStopped (instead of wedging on the closed
// wait pool), while a task that was already executing keeps its own
// lifecycle.
func TestShutdownFailsQueuedTasks(t *testing.T) {
	p, _ := newPilot(t, 100000, spec.PilotDescription{Platform: "delta", Nodes: 1})
	ctx := context.Background()
	hold := rng.ConstDuration(1000 * time.Hour)

	running, err := p.SubmitTask(ctx, spec.TaskDescription{Name: "holder", Cores: 64, Duration: hold})
	if err != nil {
		t.Fatal(err)
	}
	waitFor := func(task *Task, want states.State) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for task.State() != want {
			if time.Now().After(deadline) {
				t.Fatalf("task %s stuck in %s, want %s", task.UID(), task.State(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor(running, states.TaskExecuting)

	// The node is saturated: this one queues in the scheduler wait pool.
	queued, err := p.SubmitTask(ctx, spec.TaskDescription{Name: "queued", Cores: 64, Duration: hold})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(queued, states.TaskScheduling)

	if err := p.Shutdown(); err != nil {
		t.Fatal(err)
	}
	waitFor(queued, states.TaskFailed)
	if err := queued.Result().Err; !errors.Is(err, ErrPilotStopped) {
		t.Fatalf("queued task error = %v, want ErrPilotStopped", err)
	}
	select {
	case <-p.Stopped():
	default:
		t.Fatal("Stopped channel not closed after Shutdown")
	}
}

// TestPilotSnapshotReflectsLoad checks the router-facing load probe: the
// snapshot reports the pilot's shape table, and its wait depth moves with
// queued work.
func TestPilotSnapshotReflectsLoad(t *testing.T) {
	p, _ := newPilot(t, 100000, spec.PilotDescription{Platform: "delta", Nodes: 2})
	sn := p.Snapshot()
	if len(sn.Shapes) != 1 || sn.Shapes[0].Nodes != 2 || sn.Shapes[0].Spec.Cores != 64 {
		t.Fatalf("snapshot shapes = %+v", sn.Shapes)
	}
	if sn.Waiting != 0 || !sn.MayFitNow(64, 4, 0) {
		t.Fatalf("idle snapshot = %+v", sn)
	}
	hold := rng.ConstDuration(1000 * time.Hour)
	ctx := context.Background()
	for i := 0; i < 3; i++ { // two run (one per node), one queues
		if _, err := p.SubmitTask(ctx, spec.TaskDescription{Name: "t", Cores: 64, Duration: hold}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		sn = p.Snapshot()
		if sn.Scheduled == 2 && sn.Waiting == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot never settled: %+v", sn)
		}
		time.Sleep(time.Millisecond)
	}
	if sn.MayFitNow(64, 0, 0) {
		t.Fatal("saturated cores must fail the free-maxima check")
	}
}

package proto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2025, 3, 17, 12, 0, 0, 0, time.UTC)

func TestEnvelopeRoundTrip(t *testing.T) {
	req := InferenceRequest{
		RequestUID: "req.0001", ClientUID: "task.0002",
		Model: "llama-8b", Prompt: "hello", MaxTokens: 16, SentAt: t0,
	}
	env, err := NewEnvelope(KindRequest, 7, "task.0002", "service.0001", t0, req)
	if err != nil {
		t.Fatal(err)
	}
	if env.Kind != KindRequest || env.ID != 7 || env.From != "task.0002" {
		t.Fatalf("envelope header mismatch: %+v", env)
	}
	var got InferenceRequest
	if err := env.Decode(KindRequest, &got); err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Fatalf("decoded %+v, want %+v", got, req)
	}
}

func TestDecodeWrongKind(t *testing.T) {
	env, _ := NewEnvelope(KindReply, 1, "a", "b", t0, InferenceReply{})
	var req InferenceRequest
	if err := env.Decode(KindRequest, &req); err == nil {
		t.Fatal("Decode accepted mismatched kind")
	}
}

func TestDecodeBadBody(t *testing.T) {
	env := Envelope{Kind: KindRequest, Body: []byte(`{"max_tokens":"nope"}`)}
	var req InferenceRequest
	if err := env.Decode(KindRequest, &req); err == nil {
		t.Fatal("Decode accepted malformed body")
	}
}

func TestNewEnvelopeUnmarshalable(t *testing.T) {
	if _, err := NewEnvelope(KindRequest, 1, "a", "b", t0, make(chan int)); err == nil {
		t.Fatal("NewEnvelope accepted unmarshalable body")
	}
}

func TestTimingDecomposition(t *testing.T) {
	tm := Timing{
		ReceivedAt:   t0,
		DequeuedAt:   t0.Add(10 * time.Millisecond),
		InferStartAt: t0.Add(12 * time.Millisecond),
		InferEndAt:   t0.Add(1012 * time.Millisecond),
		RepliedAt:    t0.Add(1015 * time.Millisecond),
	}
	if q := tm.QueueTime(); q != 10*time.Millisecond {
		t.Fatalf("QueueTime = %v", q)
	}
	if it := tm.InferTime(); it != time.Second {
		t.Fatalf("InferTime = %v", it)
	}
	if st := tm.ServiceTime(); st != 15*time.Millisecond {
		t.Fatalf("ServiceTime = %v, want 15ms", st)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	env, _ := NewEnvelope(KindHeartbeat, 3, "service.0001", "", t0,
		Heartbeat{ServiceUID: "service.0001", At: t0, QueueDepth: 4, Busy: true})
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindHeartbeat || got.ID != 3 || got.From != "service.0001" {
		t.Fatalf("frame round trip mismatch: %+v", got)
	}
	var hb Heartbeat
	if err := got.Decode(KindHeartbeat, &hb); err != nil {
		t.Fatal(err)
	}
	if hb.QueueDepth != 4 || !hb.Busy {
		t.Fatalf("heartbeat body mismatch: %+v", hb)
	}
}

func TestFrameMultipleSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := uint64(0); i < 10; i++ {
		env, _ := NewEnvelope(KindControl, i, "mgr", "svc", t0, Control{Command: CtlPing, Target: "svc"})
		if err := WriteFrame(&buf, env); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 10; i++ {
		env, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if env.ID != i {
			t.Fatalf("frame %d read out of order as %d", i, env.ID)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("trailing read err = %v, want io.EOF", err)
	}
}

func TestReadFrameTooLarge(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
	_, err := ReadFrame(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	env, _ := NewEnvelope(KindPingOrError(), 1, "a", "b", t0, ErrorBody{Origin: "x", Msg: "y"})
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("ReadFrame accepted truncated body")
	}
}

// KindPingOrError exists to exercise KindError in tests.
func KindPingOrError() Kind { return KindError }

func TestReadFrameGarbageJSON(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("{not json")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("ReadFrame accepted garbage JSON")
	}
}

func TestFramePropertyRoundTrip(t *testing.T) {
	f := func(id uint64, from, to, prompt string) bool {
		env, err := NewEnvelope(KindRequest, id, from, to, t0, InferenceRequest{Prompt: prompt})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, env); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		var body InferenceRequest
		if err := got.Decode(KindRequest, &body); err != nil {
			return false
		}
		return got.ID == id && got.From == from && got.To == to && body.Prompt == prompt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package loadbal

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/proto"
	"repro/internal/rng"
)

func endpoints(n int) []proto.Endpoint {
	eps := make([]proto.Endpoint, n)
	for i := range eps {
		eps[i] = proto.Endpoint{ServiceUID: fmt.Sprintf("service.%04d", i), Model: "llama-8b"}
	}
	return eps
}

func TestRoundRobinCycles(t *testing.T) {
	b := NewRoundRobin()
	eps := endpoints(3)
	for round := 0; round < 3; round++ {
		for i := 0; i < 3; i++ {
			ep, err := b.Pick(eps)
			if err != nil {
				t.Fatal(err)
			}
			if ep.ServiceUID != eps[i].ServiceUID {
				t.Fatalf("round %d pick %d = %s", round, i, ep.ServiceUID)
			}
		}
	}
}

func TestRoundRobinEmpty(t *testing.T) {
	b := NewRoundRobin()
	if _, err := b.Pick(nil); !errors.Is(err, ErrNoEndpoints) {
		t.Fatalf("err = %v", err)
	}
}

func TestRoundRobinFairnessProperty(t *testing.T) {
	// Property: over k*n picks on n endpoints, every endpoint is picked
	// exactly k times.
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%8) + 1
		k := int(kRaw%8) + 1
		b := NewRoundRobin()
		eps := endpoints(n)
		counts := map[string]int{}
		for i := 0; i < k*n; i++ {
			ep, err := b.Pick(eps)
			if err != nil {
				return false
			}
			counts[ep.ServiceUID]++
		}
		for _, c := range counts {
			if c != k {
				return false
			}
		}
		return len(counts) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomCoverage(t *testing.T) {
	b := NewRandom(rng.New(3))
	eps := endpoints(4)
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		ep, err := b.Pick(eps)
		if err != nil {
			t.Fatal(err)
		}
		counts[ep.ServiceUID]++
	}
	for uid, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("endpoint %s picked %d/4000, want ≈1000", uid, c)
		}
	}
}

func TestRandomEmpty(t *testing.T) {
	b := NewRandom(rng.New(1))
	if _, err := b.Pick(nil); !errors.Is(err, ErrNoEndpoints) {
		t.Fatalf("err = %v", err)
	}
}

func TestLeastPendingPicksShallowest(t *testing.T) {
	depths := map[string]int{
		"service.0000": 5,
		"service.0001": 1,
		"service.0002": 3,
	}
	b := NewLeastPending(func(uid string) int { return depths[uid] })
	ep, err := b.Pick(endpoints(3))
	if err != nil {
		t.Fatal(err)
	}
	if ep.ServiceUID != "service.0001" {
		t.Fatalf("picked %s, want the shallowest queue", ep.ServiceUID)
	}
}

func TestLeastPendingTieBreaksAcrossCalls(t *testing.T) {
	b := NewLeastPending(func(string) int { return 0 })
	eps := endpoints(4)
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		ep, _ := b.Pick(eps)
		seen[ep.ServiceUID] = true
	}
	if len(seen) < 2 {
		t.Fatalf("all-ties picks concentrated on %d endpoint(s)", len(seen))
	}
}

func TestLeastPendingEmpty(t *testing.T) {
	b := NewLeastPending(func(string) int { return 0 })
	if _, err := b.Pick(nil); !errors.Is(err, ErrNoEndpoints) {
		t.Fatalf("err = %v", err)
	}
}

func TestLeastPendingAdaptsToChangingDepths(t *testing.T) {
	depth := map[string]int{"service.0000": 0, "service.0001": 0}
	b := NewLeastPending(func(uid string) int { return depth[uid] })
	eps := endpoints(2)
	first, _ := b.Pick(eps)
	depth[first.ServiceUID] = 10
	second, _ := b.Pick(eps)
	if second.ServiceUID == first.ServiceUID {
		t.Fatal("balancer kept routing to the loaded instance")
	}
}

package core

// Tests for the session autoscaler: demand-driven replica scale-up under
// a saturating open-loop burst, hysteresis-gated scale-down once idle,
// and exact request accounting through the balancing client — all on an
// auto-advancing virtual clock, so every interleaving replays exactly.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/simtime"
	"repro/internal/spec"
)

// TestAutoscalerScalesUpAndBackDown drives 6000 arrivals at 1000 req/s
// into a vit-base service whose single worker sustains ~285 req/s. The
// backlog crosses the scale-up threshold on the first evaluation, the
// autoscaler grows the fleet to its MaxReplicas bound of three (exactly:
// the in-flight bootstrap counts against the bound, so the peak cannot
// overshoot), every request completes, and once the queue drains the
// ScaleStabilize hysteresis retires the replicas back down to one.
func TestAutoscalerScalesUpAndBackDown(t *testing.T) {
	clock := simtime.NewVirtualAuto(DefaultOrigin)
	s, err := NewSession(SessionConfig{Seed: 42, Clock: clock, FastBoot: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	p, err := s.PilotManager().Submit(deltaPilotDesc())
	if err != nil {
		t.Fatal(err)
	}
	s.ServiceManager().AddPilot(p)

	h, err := s.ServiceManager().Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "scaled", GPUs: 1},
		Model:           "vit-base",
		Concurrency:     1,
		QueueCap:        20000,
		MinReplicas:     1,
		MaxReplicas:     3,
		ScaleInterval:   time.Second,
		ScaleUpQueue:    2,
		ScaleDownQueue:  1,
		ScaleStabilize:  2,
		ProbeInterval:   10000 * time.Hour,
		StartTimeout:    time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s.ServiceManager().WaitReady(ctx, h.UID()); err != nil {
		t.Fatal(err)
	}
	bal, err := s.DialBalanced(platform.Addr("delta", "", "as-client"), h.UID())
	if err != nil {
		t.Fatal(err)
	}
	defer bal.Close()

	const requests = 6000
	var completed, failed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	clock.Go(func() {
		defer wg.Done()
		for i := 0; i < requests; i++ {
			clock.Sleep(time.Millisecond)
			idx := i
			wg.Add(1)
			clock.Go(func() {
				defer wg.Done()
				if _, _, err := bal.Infer(ctx, fmt.Sprintf("req-%04d", idx), 8); err != nil {
					failed.Add(1)
				} else {
					completed.Add(1)
				}
			})
		}
	})
	wg.Wait()

	if completed.Load() != requests || failed.Load() != 0 {
		t.Fatalf("completed=%d failed=%d, want %d/0", completed.Load(), failed.Load(), requests)
	}
	if pk := h.PeakReplicas(); pk != 3 {
		t.Fatalf("peak replicas = %d, want exactly MaxReplicas (3)", pk)
	}
	// Idle now: the hysteresis retires both replicas (two quiet
	// evaluations each, two-phase drain) back down to the base instance.
	deadline := time.Now().Add(30 * time.Second)
	for h.Replicas() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("replicas = %d, want 1 after idle scale-down", h.Replicas())
		}
		time.Sleep(time.Millisecond)
	}
	if pk := h.PeakReplicas(); pk != 3 {
		t.Fatalf("peak replicas = %d after scale-down, want the high-water 3", pk)
	}
}

// TestAutoscalerStaysAtOneBelowThreshold: a trickle an order of magnitude
// under one worker's capacity never crosses the scale-up threshold — the
// fleet stays at exactly one instance and no replica is ever spawned.
func TestAutoscalerStaysAtOneBelowThreshold(t *testing.T) {
	clock := simtime.NewVirtualAuto(DefaultOrigin)
	s, err := NewSession(SessionConfig{Seed: 42, Clock: clock, FastBoot: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	p, err := s.PilotManager().Submit(deltaPilotDesc())
	if err != nil {
		t.Fatal(err)
	}
	s.ServiceManager().AddPilot(p)

	h, err := s.ServiceManager().Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "idle", GPUs: 1},
		Model:           "vit-base",
		Concurrency:     1,
		MinReplicas:     1,
		MaxReplicas:     3,
		ScaleInterval:   time.Second,
		ScaleUpQueue:    2,
		ScaleDownQueue:  1,
		ScaleStabilize:  2,
		ProbeInterval:   10000 * time.Hour,
		StartTimeout:    time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s.ServiceManager().WaitReady(ctx, h.UID()); err != nil {
		t.Fatal(err)
	}
	bal, err := s.DialBalanced(platform.Addr("delta", "", "idle-client"), h.UID())
	if err != nil {
		t.Fatal(err)
	}
	defer bal.Close()

	const requests = 200
	var completed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	clock.Go(func() {
		defer wg.Done()
		for i := 0; i < requests; i++ {
			clock.Sleep(50 * time.Millisecond) // 20 req/s against ~285 req/s capacity
			idx := i
			wg.Add(1)
			clock.Go(func() {
				defer wg.Done()
				if _, _, err := bal.Infer(ctx, fmt.Sprintf("req-%04d", idx), 8); err == nil {
					completed.Add(1)
				}
			})
		}
	})
	wg.Wait()

	if completed.Load() != requests {
		t.Fatalf("completed = %d, want %d", completed.Load(), requests)
	}
	if pk := h.PeakReplicas(); pk != 1 {
		t.Fatalf("peak replicas = %d, want 1 (threshold never crossed)", pk)
	}
	if n := h.Replicas(); n != 1 {
		t.Fatalf("replicas = %d, want 1", n)
	}
}

// Command modelserve runs a standalone simulated model service behind the
// REST API — the "R3" side of the paper's remote deployment. Point
// examples/remote (or curl) at it:
//
//	modelserve -model llama-8b -addr 127.0.0.1:8080 -scale 1000 &
//	curl -s localhost:8080/api/health
//	curl -s -X POST localhost:8080/api/generate \
//	     -d '{"model":"llama-8b","prompt":"hello","max_tokens":32}'
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/restapi"
	"repro/internal/rng"
	"repro/internal/serving"
	"repro/internal/simtime"
)

func main() {
	model := flag.String("model", "llama-8b", "model to serve (catalog name)")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	scale := flag.Float64("scale", 1000, "clock compression (1 = real-time model speeds)")
	seed := flag.Uint64("seed", 7, "RNG seed")
	conc := flag.Int("concurrency", 1, "request handlers (paper prototype: 1)")
	flag.Parse()

	if err := run(*model, *addr, *scale, *seed, *conc); err != nil {
		fmt.Fprintf(os.Stderr, "modelserve: %v\n", err)
		os.Exit(1)
	}
}

func run(model, addr string, scale float64, seed uint64, conc int) error {
	spec, err := llm.Lookup(model)
	if err != nil {
		return err
	}
	clock := simtime.NewScaled(scale, core.DefaultOrigin)
	src := rng.New(seed)
	srv, err := serving.New(serving.Config{
		UID:         "r3.service.0001",
		Backend:     serving.LLMBackend{M: llm.NewInstance(spec, clock, src.Derive("model"))},
		Clock:       clock,
		Src:         src.Derive("server"),
		Concurrency: conc,
	})
	if err != nil {
		return err
	}
	fmt.Printf("loading %s ...\n", model)
	start := time.Now()
	load, err := srv.Start()
	if err != nil {
		return err
	}
	fmt.Printf("model ready: %s simulated load (%s wall)\n", load.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))

	g, err := restapi.NewGateway(srv, addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving %s at %s (POST /api/generate, GET /api/health)\n", model, g.URL())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("draining ...")
	srv.Drain()
	return g.Close()
}

package core

import (
	"fmt"
	"time"

	"repro/internal/journal"
	"repro/internal/pilot"
	"repro/internal/service"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/states"
)

// This file implements the session autoscaler: the control loop that
// closes the paper's declared-future-work loop by scaling a service's
// replica count with demand. A service submitted with MaxReplicas > 1
// gets a per-handle loop on the session clock that each ScaleInterval
// reads the honest per-endpoint queue gauges (serving.Server's Queued
// split, PR-8), publishes them as registry load reports for balancing
// clients, and spawns or retires replica instances under the logical
// service UID.
//
// Replicas are ordinary pilot-level services named <uid>.rN, routed
// through the session Router like any service and auto-mirrored into the
// session EndpointRegistry by the pilot publish hook (handle-less
// services mirror unconditionally, with the session incarnation
// stamped). They are deliberately not journaled: replica count is
// derived from demand, so after a crash recovery the autoscaler simply
// re-derives it instead of replaying it.
//
// Determinism contract: on an auto-advancing virtual clock the loop
// goroutine is clock-registered, and it NEVER blocks on anything but
// clock.Sleep — no WaitReady, no Drain. A registered goroutine parked on
// a channel would freeze the clock and deadlock every in-flight request
// sleep. Spawns are therefore fire-and-forget (the replica's bootstrap
// runs on its own clock-registered goroutine and is observed ACTIVE on a
// later tick) and retires are two-phase: leave the balancing group now,
// then terminate on a later tick once the replica reports zero queued
// and zero in-flight — at which point Stop is sleep-free.

// replicaRef tracks one autoscaled replica instance under a Service
// handle.
type replicaRef struct {
	uid      string
	inst     *service.Instance
	p        *pilot.Pilot
	member   bool // admitted to the registry balancing group (seen ACTIVE)
	draining bool // removed from balancing; terminated once empty
}

// standbyRef tracks one warm standby: a fully bootstrapped instance of
// the service, named <uid>.sN and hosted on a pilot distinct from the
// base instance's where the topology allows, held suspended in the
// registry until a failover promotes it.
type standbyRef struct {
	uid  string
	inst *service.Instance
	p    *pilot.Pilot
	held bool // seen ACTIVE and suspended: ready for promotion
}

// applyScaleDefaults fills the autoscaler knobs of a scaled description.
func applyScaleDefaults(d *spec.ServiceDescription) {
	if d.MinReplicas == 0 {
		d.MinReplicas = 1
	}
	if d.ScaleInterval <= 0 {
		d.ScaleInterval = 2 * time.Second
	}
	if d.ScaleUpQueue <= 0 {
		d.ScaleUpQueue = 4
	}
	if d.ScaleDownQueue <= 0 {
		d.ScaleDownQueue = 1
	}
	if d.ScaleStabilize <= 0 {
		d.ScaleStabilize = 3
	}
}

// startAutoscaler launches h's autoscale loop, clock-registered on a
// runnability-accounting clock (the clock.Go rule: register before
// spawn).
func (sm *ServiceManager) startAutoscaler(h *Service) {
	if run := simtime.RunnersOf(sm.sess.clock); run != nil {
		run.AddRunner()
		go func() {
			defer run.DoneRunner()
			sm.autoscale(h)
		}()
	} else {
		go sm.autoscale(h)
	}
}

// autoscale is the per-handle control loop: one evaluation per
// ScaleInterval of the session clock until the logical service reaches a
// final state, then a best-effort teardown of surviving replicas.
func (sm *ServiceManager) autoscale(h *Service) {
	for {
		sm.sess.clock.Sleep(h.desc.ScaleInterval)
		select {
		case <-h.done:
			sm.scaleShutdown(h)
			return
		default:
		}
		sm.scaleTick(h)
	}
}

// scaleTick runs one autoscaler evaluation for h.
func (sm *ServiceManager) scaleTick(h *Service) {
	d := h.desc

	h.mu.Lock()
	base := h.inst
	reps := append([]*replicaRef(nil), h.reps...)
	h.mu.Unlock()

	// Phase 1 — reconcile replica lifecycles. A replica that reached a
	// final state on its own (hosting pilot died, liveness kill) is
	// reaped, not re-placed: replica count derives from demand, and the
	// next evaluation re-spawns if the load still warrants it. A
	// bootstrapped replica is admitted to the balancing group; a drained
	// one is terminated now that Stop is sleep-free.
	kept := reps[:0]
	for _, r := range reps {
		switch {
		case r.inst.Final():
			if r.member {
				sm.reg.RemoveMember(h.uid, r.uid)
			}
			sm.reg.Withdraw(r.uid)
		case r.draining:
			if r.inst.Queued() == 0 && r.inst.InFlight() == 0 {
				sm.reg.Withdraw(r.uid)
				_ = r.p.Services().Terminate(r.uid, false)
			} else {
				kept = append(kept, r)
			}
		default:
			if !r.member && r.inst.State() == states.ServiceActive {
				sm.reg.AddMember(h.uid, r.uid)
				r.member = true
			}
			kept = append(kept, r)
		}
	}

	// Phase 2 — read the load signal and publish it for balancing
	// clients, stamped with the session-clock read so pickers can bound
	// staleness. Serving set: the base instance plus admitted,
	// non-draining replicas.
	now := sm.sess.clock.Now()
	queued, serving := 0, 1
	if base != nil {
		queued = base.Queued()
		sm.reg.ReportLoad(h.uid, service.Load{Queued: base.Queued(), InFlight: base.InFlight(), At: now})
	}
	pending := 0
	for _, r := range kept {
		switch {
		case r.draining:
		case r.member:
			queued += r.inst.Queued()
			serving++
			sm.reg.ReportLoad(r.uid, service.Load{Queued: r.inst.Queued(), InFlight: r.inst.InFlight(), At: now})
		default:
			pending++ // bootstrap in flight: counts against the max, not the mean
		}
	}

	h.mu.Lock()
	h.reps = kept
	if serving > h.peakReps {
		h.peakReps = serving
	}
	finished := h.finished
	h.mu.Unlock()
	if finished {
		return
	}

	// Reconcile the warm-standby pool: reap dead standbys and refill the
	// deficit. Submit is non-blocking (the standby bootstraps on its own
	// clock-registered goroutine), so this keeps the tick sleep-free.
	if d.WarmStandbys > 0 {
		sm.fillStandbys(h)
	}

	// Phase 3 — the scaling decision (demand-scaled services only). Mean
	// queued requests per serving replica against the up/down thresholds;
	// scale-down waits for ScaleStabilize consecutive quiet evaluations
	// (hysteresis) and retires the newest replica, never the base
	// instance.
	if d.MaxReplicas <= 1 {
		return
	}
	mean := float64(queued) / float64(serving)
	minReps := d.MinReplicas
	if minReps < 1 {
		minReps = 1
	}
	switch {
	case serving+pending < minReps:
		h.below = 0
		sm.spawnReplica(h)
	case mean >= d.ScaleUpQueue && serving+pending < d.MaxReplicas:
		h.below = 0
		sm.spawnReplica(h)
	case mean <= d.ScaleDownQueue && pending == 0:
		h.below++
		if h.below >= d.ScaleStabilize && serving > minReps {
			h.below = 0
			sm.retireNewest(h)
		}
	default:
		h.below = 0
	}
}

// spawnReplica fires off one replica bootstrap for h: route, submit,
// track. The bootstrap proceeds on its own clock-registered goroutine
// (model load sleeps and all); the replica joins the balancing group
// when a later tick observes it ACTIVE. Routing or dispatch failures are
// dropped — the next evaluation retries if demand persists.
func (sm *ServiceManager) spawnReplica(h *Service) {
	h.mu.Lock()
	h.repSeq++
	ruid := fmt.Sprintf("%s.r%d", h.uid, h.repSeq)
	h.mu.Unlock()

	d := h.desc
	d.UID = ruid
	d.MinReplicas, d.MaxReplicas = 0, 0 // a replica is not itself scaled

	sm.mu.Lock()
	if sm.closed {
		sm.mu.Unlock()
		return
	}
	p, err := sm.routeLocked(d)
	sm.mu.Unlock()
	if err != nil {
		return
	}
	inst, err := p.Services().Submit(d)
	if err != nil {
		return
	}
	h.mu.Lock()
	h.reps = append(h.reps, &replicaRef{uid: ruid, inst: inst, p: p})
	h.mu.Unlock()
}

// retireNewest starts the two-phase retirement of h's newest serving
// replica: drop it from the balancing group immediately (no new requests
// route to it), terminate on a later tick once its queue and in-flight
// gauges reach zero.
func (sm *ServiceManager) retireNewest(h *Service) {
	h.mu.Lock()
	var victim *replicaRef
	for i := len(h.reps) - 1; i >= 0; i-- {
		if r := h.reps[i]; r.member && !r.draining {
			victim = r
			break
		}
	}
	if victim != nil {
		victim.draining = true
		victim.member = false
	}
	h.mu.Unlock()
	if victim != nil {
		sm.reg.RemoveMember(h.uid, victim.uid)
	}
}

// scaleShutdown tears down every surviving replica and warm standby
// after the logical service reached a final state. Best-effort: the
// hosting pilots may already be gone (session close shuts them down
// first).
func (sm *ServiceManager) scaleShutdown(h *Service) {
	h.mu.Lock()
	reps := h.reps
	h.reps = nil
	standbys := h.standbys
	h.standbys = nil
	h.mu.Unlock()
	for _, r := range reps {
		if r.member {
			sm.reg.RemoveMember(h.uid, r.uid)
		}
		sm.reg.Withdraw(r.uid)
		_ = r.p.Services().Terminate(r.uid, false)
	}
	for _, sb := range standbys {
		sm.reg.Withdraw(sb.uid)
		_ = sb.p.Services().Terminate(sb.uid, false)
	}
}

// fillStandbys reconciles h's warm-standby pool up to the declared
// WarmStandbys count: dead standbys (hosting pilot stopped, liveness
// kill) are reaped, then the deficit is spawned. Each standby is a
// pilot-level service named <uid>.sN, routed away from the base
// instance's pilot and the other standbys' pilots when the topology has
// spares, bootstrapped fire-and-forget and suspended in the registry the
// moment it reaches ACTIVE (holdStandby). Never blocks: safe from both
// Submit and the clock-registered autoscale tick.
func (sm *ServiceManager) fillStandbys(h *Service) {
	h.mu.Lock()
	kept := h.standbys[:0]
	for _, sb := range h.standbys {
		if sb.inst.Final() {
			sm.reg.Withdraw(sb.uid)
			continue
		}
		kept = append(kept, sb)
	}
	h.standbys = kept
	deficit := h.desc.WarmStandbys - len(kept)
	finished := h.finished || h.terminated
	h.mu.Unlock()
	if finished {
		return
	}
	for i := 0; i < deficit; i++ {
		sm.spawnStandby(h)
	}
}

// spawnStandby fires off one standby bootstrap for h. Routing or
// dispatch failures are dropped — the next autoscale tick refills.
func (sm *ServiceManager) spawnStandby(h *Service) {
	h.mu.Lock()
	h.sbSeq++
	suid := fmt.Sprintf("%s.s%d", h.uid, h.sbSeq)
	// Distinct-pilot preference: exclude the base instance's pilot and
	// every pilot already hosting one of h's standbys, so a single pilot
	// failure cannot take the service and its spare down together.
	exclude := map[string]bool{}
	if h.p != nil {
		exclude[h.p.UID()] = true
	}
	for _, sb := range h.standbys {
		exclude[sb.p.UID()] = true
	}
	h.mu.Unlock()

	d := h.desc
	d.UID = suid
	d.WarmStandbys = 0                  // a standby has no standbys of its own
	d.MinReplicas, d.MaxReplicas = 0, 0 // nor is it demand-scaled

	sm.mu.Lock()
	if sm.closed {
		sm.mu.Unlock()
		return
	}
	p, err := sm.routeStandbyLocked(d, exclude)
	sm.mu.Unlock()
	if err != nil {
		return
	}
	inst, err := p.Services().Submit(d)
	if err != nil {
		return
	}
	ref := &standbyRef{uid: suid, inst: inst, p: p}
	h.mu.Lock()
	h.standbys = append(h.standbys, ref)
	h.mu.Unlock()
	// Plain goroutine on purpose: it blocks on state-change channels,
	// which a clock-registered goroutine must never do.
	go sm.holdStandby(h, ref)
}

// routeStandbyLocked routes a standby description preferring pilots
// outside the exclusion set, falling back to the full active set when
// the exclusions exhaust it (a spare on the same pilot still beats no
// spare). Callers hold sm.mu.
func (sm *ServiceManager) routeStandbyLocked(d spec.ServiceDescription, exclude map[string]bool) (*pilot.Pilot, error) {
	if len(exclude) > 0 {
		var rest []*pilot.Pilot
		for _, p := range sm.pilots {
			if !exclude[p.UID()] {
				rest = append(rest, p)
			}
		}
		if p, err := pickPilot(rest, sm.rt, "service", d.TaskDescription); err == nil {
			return p, nil
		}
	}
	return pickPilot(sm.pilots, sm.rt, "service", d.TaskDescription)
}

// holdStandby follows one standby bootstrap until it reaches ACTIVE,
// then suspends its registry entry: the endpoint publication (ordered
// before ACTIVE by the pilot publish hook) is retained for Peek but the
// standby is unresolvable — it serves no traffic until promoted.
func (sm *ServiceManager) holdStandby(h *Service, ref *standbyRef) {
	for ref.inst.State() != states.ServiceActive {
		if ref.inst.Final() {
			return // reaped by the next fillStandbys
		}
		ch := ref.inst.Changed()
		// re-check after registering the waiter (lost-wakeup race)
		if ref.inst.State() == states.ServiceActive {
			break
		}
		if ref.inst.Final() {
			return
		}
		<-ch
	}
	sm.reg.Suspend(ref.uid)
	h.mu.Lock()
	ref.held = true
	h.mu.Unlock()
}

// promoteStandby is the watcher's warm failover path: pop a held, live
// standby whose pilot survives and re-point the logical UID at it with a
// single generation-bumping publish of the standby's already-live
// endpoint. No routing, no bootstrap — parked resolvers wake straight
// into the promoted address. Returns false when no standby is
// promotable, in which case the watcher falls back to a cold
// re-placement. The drained pool is refilled in the background.
func (sm *ServiceManager) promoteStandby(h *Service) bool {
	for {
		h.mu.Lock()
		var ref *standbyRef
		idx := -1
		for i, sb := range h.standbys {
			if sb.held && !sb.inst.Final() && sb.p.State() == states.PilotActive {
				ref, idx = sb, i
				break
			}
		}
		if ref == nil {
			h.mu.Unlock()
			return false
		}
		h.standbys = append(h.standbys[:idx], h.standbys[idx+1:]...)
		h.mu.Unlock()

		ep, _, ok := sm.reg.Peek(ref.uid)
		if !ok {
			// Published record already gone (withdrawn by a racing
			// teardown): discard this standby and try the next.
			sm.reg.Withdraw(ref.uid)
			_ = ref.p.Services().Terminate(ref.uid, false)
			continue
		}
		// Point h at the promoted instance before publishing, so the
		// mirror guard attributes the new pilot's publications to the
		// handle and parked resolvers that wake on the publish observe a
		// consistent handle.
		h.mu.Lock()
		h.inst, h.p = ref.inst, ref.p
		h.instUID = ref.uid
		h.promotions++
		close(h.swapped)
		h.swapped = make(chan struct{})
		h.mu.Unlock()

		sm.sess.journalAppend(journal.KindBind, journal.BindBody{Entity: "service", UID: h.uid, Pilot: ref.p.UID()})
		ep.ServiceUID = h.uid
		ep.Incarnation = sm.sess.Incarnation()
		ep.PublishedAt = sm.sess.clock.Now()
		_, _ = sm.reg.Publish(ep)
		go sm.fillStandbys(h)
		return true
	}
}

package service

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/loadbal"
	"repro/internal/metrics"
	"repro/internal/proto"
)

// DefaultLoadHorizon is the load-report staleness horizon balancing
// clients apply when the session does not configure one: reports older
// than this are treated as no information and load-aware pickers fall
// back to blind rotation. 10s comfortably covers the autoscaler's 2s
// default report cadence and a campaign reporter's coarser intervals.
const DefaultLoadHorizon = 10 * time.Second

// BalancerOptions tune a Balancer. The zero value selects a
// power-of-two-choices picker with seed 0, the default staleness horizon,
// and no clock (every report counts as stale, so picks degrade to
// rotation until a Now source is supplied).
type BalancerOptions struct {
	// Picker selects among the group candidates per request. nil selects
	// power-of-two-choices seeded with Seed.
	Picker loadbal.Picker
	// Seed drives the default picker's probe sequence.
	Seed uint64
	// Now supplies the current session-clock time for the staleness
	// check. nil disables load awareness: with no timebase every report
	// is stale and load-aware pickers fall back to rotation.
	Now func() time.Time
	// Horizon is the load-report staleness bound (default
	// DefaultLoadHorizon).
	Horizon time.Duration
	// Retries bounds re-resolutions per request in the member resolvers
	// (default DefaultResolverRetries).
	Retries int
}

// Balancer is an inference client for a logical service UID that may be
// backed by several replicas: the base instance plus whatever replica
// members the session autoscaler currently lists in the EndpointRegistry
// group. Each request picks one member and delegates to that member's
// Resolver — so every replica request still gets the resolvers'
// generation-aware failover machinery. With no members the Balancer
// degrades to a plain Resolver on the base UID.
//
// The pick path is constant-time and contention-free: the registry keeps
// the group membership in an atomically-swapped immutable view holding
// entry pointers, the per-entry load gauges are atomics, and the default
// power-of-two-choices picker probes exactly two members per request
// from a seeded splitmix64 walker. No lock is taken and nothing is
// allocated between a request arriving and its target UID being known,
// however many replicas the group holds. When either probe's load report
// is older than the configured horizon the pick falls back to blind
// round-robin rather than trusting dead information.
type Balancer struct {
	reg     *EndpointRegistry
	uid     string
	dial    DialFn
	picker  loadbal.Picker
	now     func() time.Time
	horizon int64 // staleness bound in nanoseconds
	retries int
	// entry is the pinned registry entry of the logical UID; its group
	// field holds the current immutable balancing view.
	entry *endpointEntry

	// res is the copy-on-write member-resolver map: reads are one atomic
	// load, misses take mu and swap in a grown copy.
	res    atomic.Pointer[map[string]*Resolver]
	mu     sync.Mutex
	closed atomic.Bool
}

// NewBalancer returns a Balancer for the logical service uid.
func NewBalancer(reg *EndpointRegistry, uid string, dial DialFn, opts BalancerOptions) (*Balancer, error) {
	if reg == nil {
		return nil, fmt.Errorf("service: balancer %s: nil registry", uid)
	}
	if dial == nil {
		return nil, fmt.Errorf("service: balancer %s: nil dial", uid)
	}
	if opts.Picker == nil {
		opts.Picker = loadbal.NewP2C(opts.Seed)
	}
	if opts.Horizon <= 0 {
		opts.Horizon = DefaultLoadHorizon
	}
	return &Balancer{
		reg:     reg,
		uid:     uid,
		dial:    dial,
		picker:  opts.Picker,
		now:     opts.Now,
		horizon: int64(opts.Horizon),
		retries: opts.Retries,
		entry:   reg.groupEntry(uid),
	}, nil
}

// Infer routes one request to the picked group member and blocks for its
// reply.
func (b *Balancer) Infer(ctx context.Context, prompt string, maxTokens int) (proto.InferenceReply, metrics.Breakdown, error) {
	r, err := b.resolver(b.Pick())
	if err != nil {
		return proto.InferenceReply{}, metrics.Breakdown{}, err
	}
	return r.Infer(ctx, prompt, maxTokens)
}

// Pick returns the member UID the next request goes to: one atomic view
// load plus the picker's probes (two for power-of-two-choices), zero
// locks and zero allocations regardless of group size. With no replica
// members it returns the base UID without consulting the picker.
func (b *Balancer) Pick() string {
	view := b.entry.group.Load()
	if view == nil || view.Len() <= 1 {
		return b.uid
	}
	minAt := int64(math.MaxInt64) // no timebase: every report is stale
	if b.now != nil {
		minAt = b.now().UnixNano() - b.horizon
	}
	return view.UID(b.picker.PickIndex(view, minAt))
}

// resolver returns (creating on first use) the member's Resolver.
func (b *Balancer) resolver(uid string) (*Resolver, error) {
	if m := b.res.Load(); m != nil {
		if r, ok := (*m)[uid]; ok {
			return r, nil
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed.Load() {
		return nil, fmt.Errorf("service: balancer %s closed", b.uid)
	}
	cur := b.res.Load()
	if cur != nil {
		if r, ok := (*cur)[uid]; ok {
			return r, nil
		}
	}
	r, err := NewResolver(b.reg, uid, b.dial, b.retries)
	if err != nil {
		return nil, err
	}
	next := make(map[string]*Resolver, 1)
	if cur != nil {
		next = make(map[string]*Resolver, len(*cur)+1)
		for k, v := range *cur {
			next[k] = v
		}
	}
	next[uid] = r
	b.res.Store(&next)
	return r, nil
}

// Reresolved sums the re-resolution counts of every member resolver.
func (b *Balancer) Reresolved() int {
	n := 0
	if m := b.res.Load(); m != nil {
		for _, r := range *m {
			n += r.Reresolved()
		}
	}
	return n
}

// Close closes every member resolver. Subsequent Infer calls fail.
func (b *Balancer) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed.Swap(true) {
		return nil
	}
	if m := b.res.Load(); m != nil {
		for _, r := range *m {
			_ = r.Close()
		}
	}
	return nil
}

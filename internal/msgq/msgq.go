// Package msgq is the communication substrate of the runtime — the Go
// analogue of the ZeroMQ infrastructure RADICAL-Pilot uses for API calls
// between services and clients. It offers two socket patterns (REQ/REP and
// PUB/SUB) over two transports:
//
//   - An in-process transport with injected, distribution-sampled link
//     latency driven by the session clock. This is how the experiments
//     reproduce the paper's measured interconnects (Delta inter-node
//     0.063 ms ± 0.014 ms; Delta↔R3 0.47 ms ± 0.04 ms) deterministically.
//   - A TCP transport speaking length-prefixed proto frames, used for the
//     genuinely remote REST/R3 scenarios and to demonstrate that the
//     runtime works over real sockets.
package msgq

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/simtime"
)

// Common errors.
var (
	ErrClosed      = errors.New("msgq: endpoint closed")
	ErrUnknownAddr = errors.New("msgq: unknown address")
	ErrAddrInUse   = errors.New("msgq: address already bound")
)

// Handler serves one request and returns the reply envelope.
type Handler func(proto.Envelope) proto.Envelope

// Server is a bound REQ/REP endpoint.
type Server interface {
	Addr() string
	Close() error
}

// Client is a connected REQ/REP endpoint.
type Client interface {
	// Request sends env and blocks for the matching reply or ctx expiry.
	Request(ctx context.Context, env proto.Envelope) (proto.Envelope, error)
	Close() error
}

// LinkProfile describes one directed network link.
type LinkProfile struct {
	// Latency is sampled once per message hop (request and reply each pay
	// one sample), modelling one-way packet latency.
	Latency rng.DurationDist
	// BytesPerSec caps throughput; zero means unbounded. Transfer time is
	// added on top of latency for the message's encoded size.
	BytesPerSec float64
}

// Resolver maps a (client address, server address) pair to the link profile
// connecting them. The platform package supplies resolvers that encode
// local vs remote topology.
type Resolver func(from, to string) LinkProfile

// Network is the in-process transport: a set of named endpoints connected
// by latency-modelled links, all timed on a shared Clock.
//
// The endpoint registries are sync.Maps rather than mutex-guarded maps:
// lookups (Dial, Subscribe, and the request fast path's re-resolution
// after a server close) are lock-free, so thousands of concurrent clients
// never serialize on a global registry lock. The plain mutex only guards
// the closed flag and serializes Bind/Close registry writes.
type Network struct {
	clock   simtime.Clock
	src     *rng.Source
	resolve Resolver

	mu        sync.Mutex // guards closed and transport; serializes registry writes
	closed    bool
	transport string   // default transport for BindVia(""); zero value = inproc
	reps      sync.Map // addr → *inprocServer
	pubs      sync.Map // addr → *inprocPublisher
	tcpBinds  sync.Map // addr → *tcpBind (logical name → TCP listener)
}

// NewNetwork returns an empty in-process network. resolve may be nil, in
// which case all links are zero-latency and unbounded.
func NewNetwork(clock simtime.Clock, src *rng.Source, resolve Resolver) *Network {
	if resolve == nil {
		resolve = func(_, _ string) LinkProfile { return LinkProfile{} }
	}
	return &Network{
		clock:   clock,
		src:     src,
		resolve: resolve,
	}
}

// Clock returns the network's clock.
func (n *Network) Clock() simtime.Clock { return n.clock }

// Close shuts down every endpoint.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	var reps []*inprocServer
	n.reps.Range(func(_, v any) bool {
		reps = append(reps, v.(*inprocServer))
		return true
	})
	var pubs []*inprocPublisher
	n.pubs.Range(func(_, v any) bool {
		pubs = append(pubs, v.(*inprocPublisher))
		return true
	})
	var tcps []*tcpBind
	n.tcpBinds.Range(func(_, v any) bool {
		tcps = append(tcps, v.(*tcpBind))
		return true
	})
	for _, s := range reps {
		_ = s.Close()
	}
	for _, p := range pubs {
		_ = p.Close()
	}
	for _, b := range tcps {
		_ = b.Close()
	}
	return nil
}

// hopDelay returns the simulated traversal time of a message of bodyLen
// encoded bytes over profile: one latency sample plus serialization time
// for the size. It takes the size rather than the envelope so hot-path
// callers never force their envelope to escape to the heap.
func (n *Network) hopDelay(profile LinkProfile, bodyLen int) time.Duration {
	d := profile.Latency.Sample(n.src)
	if profile.BytesPerSec > 0 {
		size := bodyLen + 64 // envelope header overhead estimate
		d += time.Duration(float64(size) / profile.BytesPerSec * float64(time.Second))
	}
	return d
}

// hop simulates one message traversal over profile, blocking the calling
// goroutine for the sampled delay.
func (n *Network) hop(profile LinkProfile, bodyLen int) {
	if d := n.hopDelay(profile, bodyLen); d > 0 {
		n.clock.Sleep(d)
	}
}

// wireLen returns the encoded body size of env when profile charges for
// bandwidth, and 0 otherwise. Envelope bodies encode lazily: forcing the
// encode just to measure a size that latency-only links ignore would put
// json.Marshal back on the in-proc hot path, so the size is materialized
// only for bandwidth-capped links. env is taken by value so the hot
// path's envelope never escapes to the heap.
func wireLen(profile LinkProfile, env proto.Envelope) int {
	if profile.BytesPerSec <= 0 {
		return 0
	}
	return env.EncodedBodyLen()
}

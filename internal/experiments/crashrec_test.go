package experiments

import (
	"context"
	"testing"
)

// findCrashRecRow pulls one (point, journaled) row out of the result.
func findCrashRecRow(t *testing.T, res *CrashRecResult, point string, journaled bool) CrashRecRow {
	t.Helper()
	for _, row := range res.Rows {
		if row.FaultPoint == point && row.Journaled == journaled {
			return row
		}
	}
	t.Fatalf("no row for fault point %q journaled=%v", point, journaled)
	return CrashRecRow{}
}

// TestCrashRecExactCounts drives the full ablation and pins every cell:
// placements are deterministic (round-robin or pinned), fault points fire
// on specific record kinds, so each row's recovery accounting is exact —
// no >=1 hedging.
func TestCrashRecExactCounts(t *testing.T) {
	cfg := DefaultCrashRecConfig()
	res, err := RunCrashRec(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunCrashRec: %v", err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 fault points x journal on/off)", len(res.Rows))
	}

	// Mid-transition: the trigger task's first state transition is torn in
	// half. Replay tolerates the torn tail, the task restarts from its
	// journaled description, and everything reattaches to the two live
	// pilots.
	row := findCrashRecRow(t, res, FaultMidTransition, true)
	if !row.Recovered || row.Incarnation != 2 {
		t.Fatalf("mid-transition: recovered=%v incarnation=%d, want true/2", row.Recovered, row.Incarnation)
	}
	if !row.TornTail {
		t.Fatalf("mid-transition: torn tail not detected")
	}
	if row.PilotsAlive != 2 || row.PilotsLost != 0 {
		t.Fatalf("mid-transition: pilots alive/lost = %d/%d, want 2/0", row.PilotsAlive, row.PilotsLost)
	}
	if row.TasksReattached != cfg.Tasks+1 || row.TasksRerouted != 0 || row.TasksSettled != 0 {
		t.Fatalf("mid-transition: tasks reattach/reroute/settle = %d/%d/%d, want %d/0/0",
			row.TasksReattached, row.TasksRerouted, row.TasksSettled, cfg.Tasks+1)
	}
	if row.ServicesReattached != 1 || row.ServicesReplaced != 0 || row.ServicesSettled != 0 {
		t.Fatalf("mid-transition: svcs reattach/replace/settle = %d/%d/%d, want 1/0/0",
			row.ServicesReattached, row.ServicesReplaced, row.ServicesSettled)
	}
	if row.TasksCompleted != cfg.Tasks+1 {
		t.Fatalf("mid-transition: completed %d/%d tasks after recovery", row.TasksCompleted, cfg.Tasks+1)
	}

	// Mid-publish: the second service's endpoint publication is lost
	// entirely (clean tail). Recovery reattaches it and re-mirrors the
	// endpoint under the new incarnation.
	row = findCrashRecRow(t, res, FaultMidPublish, true)
	if !row.Recovered || row.Incarnation != 2 {
		t.Fatalf("mid-publish: recovered=%v incarnation=%d, want true/2", row.Recovered, row.Incarnation)
	}
	if row.TornTail {
		t.Fatalf("mid-publish: lost record misread as torn tail")
	}
	if row.PilotsAlive != 2 || row.PilotsLost != 0 {
		t.Fatalf("mid-publish: pilots alive/lost = %d/%d, want 2/0", row.PilotsAlive, row.PilotsLost)
	}
	if row.TasksReattached != cfg.Tasks || row.TasksRerouted != 0 || row.TasksSettled != 0 {
		t.Fatalf("mid-publish: tasks reattach/reroute/settle = %d/%d/%d, want %d/0/0",
			row.TasksReattached, row.TasksRerouted, row.TasksSettled, cfg.Tasks)
	}
	if row.ServicesReattached != 2 || row.ServicesReplaced != 0 || row.ServicesSettled != 0 {
		t.Fatalf("mid-publish: svcs reattach/replace/settle = %d/%d/%d, want 2/0/0",
			row.ServicesReattached, row.ServicesReplaced, row.ServicesSettled)
	}
	if row.TasksCompleted != cfg.Tasks {
		t.Fatalf("mid-publish: completed %d/%d tasks after recovery", row.TasksCompleted, cfg.Tasks)
	}

	// Mid-failover: the service host dies and the crash eats the suspend
	// record. Recovery sees a live-state service bound to a dead pilot and
	// finishes the re-placement the old session never got to.
	row = findCrashRecRow(t, res, FaultMidFailover, true)
	if !row.Recovered || row.Incarnation != 2 {
		t.Fatalf("mid-failover: recovered=%v incarnation=%d, want true/2", row.Recovered, row.Incarnation)
	}
	if row.PilotsAlive != 1 || row.PilotsLost != 1 {
		t.Fatalf("mid-failover: pilots alive/lost = %d/%d, want 1/1", row.PilotsAlive, row.PilotsLost)
	}
	if row.TasksReattached != cfg.Tasks || row.TasksRerouted != 0 || row.TasksSettled != 0 {
		t.Fatalf("mid-failover: tasks reattach/reroute/settle = %d/%d/%d, want %d/0/0",
			row.TasksReattached, row.TasksRerouted, row.TasksSettled, cfg.Tasks)
	}
	if row.ServicesReattached != 0 || row.ServicesReplaced != 1 || row.ServicesSettled != 0 {
		t.Fatalf("mid-failover: svcs reattach/replace/settle = %d/%d/%d, want 0/1/0",
			row.ServicesReattached, row.ServicesReplaced, row.ServicesSettled)
	}
	if row.TasksCompleted != cfg.Tasks {
		t.Fatalf("mid-failover: completed %d/%d tasks after recovery", row.TasksCompleted, cfg.Tasks)
	}

	// The journal-less contrast loses everything, at every fault point.
	for _, point := range cfg.FaultPoints {
		row := findCrashRecRow(t, res, point, false)
		if row.Recovered || row.Incarnation != 0 {
			t.Fatalf("%s journal-less: recovered=%v incarnation=%d, want false/0", point, row.Recovered, row.Incarnation)
		}
		if row.PilotsAlive+row.PilotsLost+row.TasksReattached+row.TasksRerouted+row.TasksSettled+
			row.ServicesReattached+row.ServicesReplaced+row.ServicesSettled+row.TasksCompleted != 0 {
			t.Fatalf("%s journal-less: nonzero recovery accounting %+v", point, row)
		}
	}

	tbl := res.Table()
	if len(tbl.Rows) != 6 {
		t.Fatalf("table rows = %d, want 6", len(tbl.Rows))
	}
}

// Package repro's root benchmark suite regenerates every table and figure
// of the paper's evaluation as testing.B benchmarks:
//
//	BenchmarkTable1UseCases       — Table I   (the three LUCID pipelines)
//	BenchmarkTable2Setup          — Table II  (experiment parameterization)
//	BenchmarkExp1BootstrapTime    — Fig. 3    (BT scaling, 1..640 services)
//	BenchmarkExp2LocalNOOP        — Fig. 4    (local NOOP RT, strong+weak)
//	BenchmarkExp2RemoteNOOP       — Fig. 5    (remote NOOP RT, strong+weak)
//	BenchmarkExp3InferenceLocal   — Fig. 6    (llama IT, local)
//	BenchmarkExp3InferenceRemote  — Fig. 6    (llama IT, remote)
//
// plus ablation benchmarks for the design decisions DESIGN.md calls out
// (service-priority scheduling, single-threaded services, load balancing).
//
// Reported custom metrics carry the figure series: e.g. Exp 1 reports
// launch-s, init-s and publish-s per instance; Exp 2/3 report comm-ms,
// svc-ms, infer-ms per request. Request budgets are reduced relative to
// the paper (1024 requests/client) to keep `go test -bench=.` tractable;
// cmd/rpexp runs the full-budget sweeps.
package repro

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/loadbal"
	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/usecases"
	"repro/internal/workflow"
)

// --- Table I -----------------------------------------------------------------

// BenchmarkTable1UseCases executes a reduced-size instance of each LUCID
// pipeline end to end, reporting simulated makespans.
func BenchmarkTable1UseCases(b *testing.B) {
	cases := []struct {
		name  string
		build func(sess *core.Session, coll *metrics.Collector) *workflow.Pipeline
	}{
		{"cell-painting", func(sess *core.Session, _ *metrics.Collector) *workflow.Pipeline {
			return usecases.CellPainting(usecases.CellPaintingConfig{
				DatasetBytes: 8 << 30, Shards: 4, HPOTrials: 4,
			}, sess.RNG())
		}},
		{"signature-detection", func(sess *core.Session, coll *metrics.Collector) *workflow.Pipeline {
			return usecases.Signature(usecases.SignatureConfig{
				Samples: 5, UseLLM: true, LLMQueries: 2, Collector: coll,
			}, sess.RNG())
		}},
		{"uncertainty-quantification", func(sess *core.Session, _ *metrics.Collector) *workflow.Pipeline {
			return usecases.UQ(usecases.UQConfig{Seeds: 2})
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var sim time.Duration
			for i := 0; i < b.N; i++ {
				sess, err := core.NewSession(core.SessionConfig{
					Seed: uint64(i), Clock: simtime.NewScaled(500000, core.DefaultOrigin),
				})
				if err != nil {
					b.Fatal(err)
				}
				p, err := sess.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Cores: 256, GPUs: 16})
				if err != nil {
					b.Fatal(err)
				}
				runner, err := workflow.NewRunner(sess, p)
				if err != nil {
					b.Fatal(err)
				}
				coll := metrics.NewCollector()
				rep, err := runner.Run(context.Background(), c.build(sess, coll))
				if err != nil {
					b.Fatal(err)
				}
				sim += rep.Duration()
				sess.Close()
			}
			b.ReportMetric(sim.Seconds()/float64(b.N), "sim-makespan-s")
		})
	}
}

// --- Table II ------------------------------------------------------------------

// BenchmarkTable2Setup renders the experiment-setup table (trivial; exists
// so every paper artifact has a bench target).
func BenchmarkTable2Setup(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.TableII().Render()
	}
	if len(out) == 0 {
		b.Fatal("empty table")
	}
}

// --- Experiment 1 / Fig. 3 ------------------------------------------------------

// BenchmarkExp1BootstrapTime regenerates the Fig. 3 series: per-instance
// launch/init/publish bootstrap components for growing instance counts.
func BenchmarkExp1BootstrapTime(b *testing.B) {
	for _, n := range []int{1, 8, 40, 160, 320, 640} {
		b.Run(fmt.Sprintf("instances=%d", n), func(b *testing.B) {
			var launch, init, publish float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunBT(context.Background(), experiments.BTConfig{
					Counts: []int{n}, Model: "llama-8b", Scale: 200, Seed: uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				row := res.Rows[0]
				launch += row.Launch.Mean.Seconds()
				init += row.Init.Mean.Seconds()
				publish += row.Publish.Mean.Seconds()
			}
			b.ReportMetric(launch/float64(b.N), "launch-s")
			b.ReportMetric(init/float64(b.N), "init-s")
			b.ReportMetric(publish/float64(b.N), "publish-s")
		})
	}
}

// --- Experiments 2 and 3 / Figs. 4-6 ---------------------------------------------

func benchRT(b *testing.B, model string, deploy experiments.Deployment, requests, maxTokens int, scale float64) {
	type point struct {
		scaling string
		pair    [2]int
	}
	var points []point
	for _, p := range experiments.StrongPairs() {
		points = append(points, point{"strong", p})
	}
	for _, p := range experiments.WeakPairs() {
		points = append(points, point{"weak", p})
	}
	for _, pt := range points {
		name := fmt.Sprintf("%s/clients=%d/services=%d", pt.scaling, pt.pair[0], pt.pair[1])
		b.Run(name, func(b *testing.B) {
			var comm, svc, infer float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunRT(context.Background(), experiments.RTConfig{
					Model: model, Deploy: deploy,
					Pairs:             [][2]int{pt.pair},
					RequestsPerClient: requests,
					MaxTokens:         maxTokens,
					Scale:             scale,
					Seed:              uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				row := res.Rows[0]
				comm += float64(row.Comm.Mean.Microseconds()) / 1000
				svc += float64(row.Service.Mean.Microseconds()) / 1000
				infer += float64(row.Infer.Mean.Microseconds()) / 1000
			}
			b.ReportMetric(comm/float64(b.N), "comm-ms")
			b.ReportMetric(svc/float64(b.N), "svc-ms")
			b.ReportMetric(infer/float64(b.N), "infer-ms")
		})
	}
}

// BenchmarkExp2LocalNOOP regenerates Fig. 4 (local NOOP response time).
func BenchmarkExp2LocalNOOP(b *testing.B) {
	benchRT(b, "noop", experiments.DeployLocal, 64, 0, 1)
}

// BenchmarkExp2RemoteNOOP regenerates Fig. 5 (remote NOOP response time).
func BenchmarkExp2RemoteNOOP(b *testing.B) {
	benchRT(b, "noop", experiments.DeployRemote, 64, 0, 1)
}

// BenchmarkExp3InferenceLocal regenerates Fig. 6's local configuration
// (Table II row 3, llama-8b on Delta).
func BenchmarkExp3InferenceLocal(b *testing.B) {
	benchRT(b, "llama-8b", experiments.DeployLocal, 4, 128, 1000)
}

// BenchmarkExp3InferenceRemote regenerates Fig. 6 (remote llama-8b
// inference from Delta clients to R3 services).
func BenchmarkExp3InferenceRemote(b *testing.B) {
	benchRT(b, "llama-8b", experiments.DeployRemote, 4, 128, 1000)
}

// --- Ablations ------------------------------------------------------------------

// BenchmarkAblationServiceConcurrency compares the paper's single-threaded
// service against the multi-threaded future-work configuration under the
// contended 16-clients/1-service point: queueing (the svc-ms metric)
// should collapse with workers.
func BenchmarkAblationServiceConcurrency(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var svc float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunRT(context.Background(), experiments.RTConfig{
					Model: "llama-8b", Deploy: experiments.DeployLocal,
					Pairs:              [][2]int{{8, 1}},
					RequestsPerClient:  2,
					MaxTokens:          64,
					Scale:              1000,
					Seed:               uint64(i + 1),
					ServiceConcurrency: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				svc += float64(res.Rows[0].Service.Mean.Microseconds()) / 1000
			}
			b.ReportMetric(svc/float64(b.N), "svc-ms")
		})
	}
}

// BenchmarkAblationLoadBalancing compares round-robin (the paper's
// rudimentary strategy) against least-pending routing on a skewed
// candidate set.
func BenchmarkAblationLoadBalancing(b *testing.B) {
	eps := make([]proto.Endpoint, 8)
	depths := make(map[string]int, 8)
	var mu sync.Mutex
	for i := range eps {
		uid := fmt.Sprintf("service.%04d", i)
		eps[i] = proto.Endpoint{ServiceUID: uid, Model: "llama-8b"}
		depths[uid] = i * 3 // skewed initial load
	}
	depthFn := func(uid string) int {
		mu.Lock()
		defer mu.Unlock()
		return depths[uid]
	}
	balancers := map[string]loadbal.Balancer{
		"round-robin":   loadbal.NewRoundRobin(),
		"random":        loadbal.NewRandom(rng.New(1)),
		"least-pending": loadbal.NewLeastPending(depthFn),
	}
	for name, bal := range balancers {
		b.Run(name, func(b *testing.B) {
			imbalance := 0
			for i := 0; i < b.N; i++ {
				ep, err := bal.Pick(eps)
				if err != nil {
					b.Fatal(err)
				}
				mu.Lock()
				depths[ep.ServiceUID]++
				// track max-min spread as the imbalance signal
				min, max := 1<<30, 0
				for _, d := range depths {
					if d < min {
						min = d
					}
					if d > max {
						max = d
					}
				}
				depths[ep.ServiceUID]-- // undo: keep the scenario static per op
				mu.Unlock()
				imbalance += max - min
			}
			b.ReportMetric(float64(imbalance)/float64(b.N), "spread")
		})
	}
}

// BenchmarkAblationSchedulerPriority measures how long a service waits for
// placement on a saturated pilot with and without the service-priority
// extension (paper §III: services must start before compute tasks).
func BenchmarkAblationSchedulerPriority(b *testing.B) {
	for _, priority := range []int{0, spec.ServicePriority} {
		name := "fifo"
		if priority > 0 {
			name = "service-priority"
		}
		b.Run(name, func(b *testing.B) {
			var waited int64
			for i := 0; i < b.N; i++ {
				plat := platform.New("bench", 1, platform.NodeSpec{Cores: 4, GPUs: 0, MemGB: 64})
				placed := make(chan scheduler.Placement, 256)
				sched := scheduler.New(plat.Nodes(), func(p scheduler.Placement) { placed <- p })
				// fill the node, queue 32 tasks, then the service
				if err := sched.Submit(scheduler.Request{UID: "filler", Cores: 4}); err != nil {
					b.Fatal(err)
				}
				filler := <-placed
				for t := 0; t < 32; t++ {
					_ = sched.Submit(scheduler.Request{UID: fmt.Sprintf("task-%d", t), Cores: 4})
				}
				_ = sched.Submit(scheduler.Request{UID: "service", Cores: 4, Priority: priority})
				// release resources one at a time until the service places
				sched.Release(filler.Alloc)
				grants := 0
				for p := range placed {
					grants++
					if p.Req.UID == "service" {
						break
					}
					sched.Release(p.Alloc)
				}
				waited += int64(grants)
				sched.Close()
			}
			b.ReportMetric(float64(waited)/float64(b.N), "grants-before-service")
		})
	}
}

// BenchmarkAblationBackfill quantifies the strict-vs-backfill trade-off
// on the regime the paper's continuous scheduler cares about: a
// saturated 1024-node pilot (every node down to its last core) with a
// mixed workload — one large high-priority request that fits no node
// blocking the head, and a stream of small one-core tasks behind it.
// Strict priority grants zero small tasks until the blocker clears;
// capacity-aware backfill grants them from the capacity the head cannot
// use, bounded by the configured starvation limit K. The
// "smalls-before-big" metric is the per-policy bypass count actually
// observed; ns/op is the cost of the full scenario (setup + 258 grants).
func BenchmarkAblationBackfill(b *testing.B) {
	const nNodes, nSmall = 1024, 256
	unbounded := scheduler.BackfillConfig{MaxBypass: -1, MaxDelay: -1}
	countOnly := scheduler.BackfillConfig{MaxDelay: -1} // K = DefaultMaxBypass
	policies := []struct {
		name string
		mk   func() scheduler.Policy
		// bypasses is the deterministic number of smalls granted while
		// the head is blocked: 0 (strict), K, or all of them.
		bypasses int
	}{
		{"strict", func() scheduler.Policy { return scheduler.Strict() }, 0},
		{"backfill-k16", func() scheduler.Policy { return scheduler.Backfill(countOnly) }, scheduler.DefaultMaxBypass},
		{"backfill-unbounded", func() scheduler.Policy { return scheduler.Backfill(unbounded) }, nSmall},
		{"best-fit-unbounded", func() scheduler.Policy { return scheduler.BestFit(unbounded) }, nSmall},
	}
	for _, pol := range policies {
		b.Run(pol.name, func(b *testing.B) {
			var beforeBig int64
			for i := 0; i < b.N; i++ {
				plat := platform.New("bench", nNodes, platform.NodeSpec{Cores: 64, GPUs: 8, MemGB: 256})
				nodes := plat.Nodes()
				// Saturate: every node but node 0 keeps exactly one core.
				for _, n := range nodes[1:] {
					if a := n.TryAlloc(63, 8, 224); a == nil {
						b.Fatal("saturation alloc failed")
					}
				}
				placed := make(chan scheduler.Placement, nSmall+8)
				sched := scheduler.New(nodes, func(p scheduler.Placement) { placed <- p },
					scheduler.WithPolicy(pol.mk()))
				// hold takes the one whole free node; big then fits nowhere.
				if err := sched.Submit(scheduler.Request{UID: "hold", Cores: 64}); err != nil {
					b.Fatal(err)
				}
				hold := <-placed
				_ = sched.Submit(scheduler.Request{UID: "big", Cores: 64, Priority: 100})
				for t := 0; t < nSmall; t++ {
					_ = sched.Submit(scheduler.Request{UID: "small", Cores: 1})
				}
				// The policy's bypass budget drains deterministically (every
				// small fits one of the 1023 single-core slots).
				for g := 0; g < pol.bypasses; g++ {
					<-placed
				}
				// Unblock the head; big must clear before the rest.
				sched.Release(hold.Alloc)
				order := 0
				bigAt := -1
				for g := pol.bypasses; g < nSmall+1; g++ {
					p := <-placed
					if p.Req.UID == "big" {
						bigAt = pol.bypasses + order
						sched.Release(p.Alloc) // frees node 0 for leftover smalls
					}
					order++
				}
				if bigAt < 0 {
					b.Fatal("big never granted")
				}
				beforeBig += int64(bigAt)
				sched.Close()
			}
			b.ReportMetric(float64(beforeBig)/float64(b.N), "smalls-before-big")
		})
	}
}

// BenchmarkAblationFragmentation quantifies first-fit vs best-fit
// placement on a saturated mixed 1024-node pool — the heterogeneous
// regime best-fit exists for. The pool is 64 fat nodes (128c/16g) in
// front of 960 thin nodes (16c, no GPUs); the workload is 512 thin-sized
// smalls (16 cores each) followed by 64 whole-fat-node larges
// (128c/16g), no releases. First-fit lands the smalls on the lowest
// node indexes — the fat partition — consuming exactly all 64 fat
// nodes' cores (8 smalls each), so zero larges fit; best-fit packs
// every small onto a thin node (least weighted leftover) and grants all
// 64 larges. The "larges-granted" metric is that count; ns/op is the
// full scenario (pool build + all grants), so it also reflects the
// augmented findBest's per-grant cost at 1024 nodes.
func BenchmarkAblationFragmentation(b *testing.B) {
	const nFat, nThin, nSmall, nLarge = 64, 960, 512, 64
	fat := platform.NodeSpec{Cores: 128, GPUs: 16, MemGB: 1024}
	thin := platform.NodeSpec{Cores: 16, GPUs: 0, MemGB: 64}
	policies := []struct {
		name string
		mk   func() scheduler.Policy
		// deterministic outcome: total grants and larges among them
		larges int
	}{
		{"first-fit", func() scheduler.Policy { return scheduler.Strict() }, 0},
		{"best-fit", func() scheduler.Policy {
			return scheduler.BestFit(scheduler.BackfillConfig{MaxBypass: -1, MaxDelay: -1})
		}, nLarge},
	}
	for _, pol := range policies {
		b.Run(pol.name, func(b *testing.B) {
			var largesGranted int64
			for i := 0; i < b.N; i++ {
				plat := platform.NewMixed("bench", []platform.NodeGroup{
					{Count: nFat, Spec: fat}, {Count: nThin, Spec: thin},
				})
				placed := make(chan scheduler.Placement, nSmall+nLarge)
				sched := scheduler.New(plat.Nodes(), func(p scheduler.Placement) { placed <- p },
					scheduler.WithPolicy(pol.mk()))
				for t := 0; t < nSmall; t++ {
					if err := sched.Submit(scheduler.Request{UID: "small", Cores: thin.Cores}); err != nil {
						b.Fatal(err)
					}
				}
				// all smalls fit under both policies: drain their grants so
				// the large offers meet the fully fragmented/packed pool
				for g := 0; g < nSmall; g++ {
					<-placed
				}
				for t := 0; t < nLarge; t++ {
					if err := sched.Submit(scheduler.Request{UID: "large", Cores: fat.Cores, GPUs: fat.GPUs}); err != nil {
						b.Fatal(err)
					}
				}
				got := 0
				for g := 0; g < pol.larges; g++ {
					p := <-placed
					if p.Req.UID != "large" {
						b.Fatalf("unexpected grant %q", p.Req.UID)
					}
					got++
				}
				if got != pol.larges {
					b.Fatalf("granted %d larges under %s, expected %d", got, pol.name, pol.larges)
				}
				// no releases happen, so the ungranted larges are exactly
				// the wait-pool remainder — deterministic under both policies
				if w := sched.Waiting(); w != nLarge-pol.larges {
					b.Fatalf("%s left %d waiting, expected %d", pol.name, w, nLarge-pol.larges)
				}
				largesGranted += int64(got)
				sched.Close()
			}
			b.ReportMetric(float64(largesGranted)/float64(b.N), "larges-granted")
		})
	}
}

// BenchmarkAblationPartitionedBootstrap quantifies the paper's §IV-B
// mitigation for the launch penalty: partitioning a 640-instance
// bootstrap into ≤160-instance waves keeps per-instance launch time at
// the base (~2.2 s instead of ~20 s), trading per-instance overhead for
// wall-clock (waves serialize on the dominant init time).
func BenchmarkAblationPartitionedBootstrap(b *testing.B) {
	for _, part := range []int{0, 160} {
		name := "monolithic-640"
		if part > 0 {
			name = fmt.Sprintf("partition=%d", part)
		}
		b.Run(name, func(b *testing.B) {
			var launch, wall float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunBT(context.Background(), experiments.BTConfig{
					Counts: []int{640}, Model: "llama-8b", Scale: 200,
					Seed: uint64(i + 1), Partition: part,
				})
				if err != nil {
					b.Fatal(err)
				}
				launch += res.Rows[0].Launch.Mean.Seconds()
				wall += res.Rows[0].Wall.Seconds()
			}
			b.ReportMetric(launch/float64(b.N), "launch-s")
			b.ReportMetric(wall/float64(b.N), "wall-sim-s")
		})
	}
}

// BenchmarkAblationServiceFailover quantifies what the session endpoint
// registry buys across a pilot death — the failure mode the paper's
// in-pilot services cannot survive. The hetero campus is split into two
// pilots; a noop service bootstraps on the first, a client streams
// requests, the hosting pilot is killed mid-stream and the session
// re-places + re-publishes the service on the survivor. The
// endpoint-caching client (seed behaviour) recovers 0 post-failover
// requests against the dead address; the registry-resolving client
// detects the stale generation and recovers all of them. The "recovered"
// metric is that deterministic count; ns/op covers the full scenario
// (session + two pilots + service failover + all requests).
func BenchmarkAblationServiceFailover(b *testing.B) {
	const requests, killAfter = 8, 4
	clients := []struct {
		name      string
		recovered int
	}{
		{experiments.SvcFailClientCaching, 0},
		{experiments.SvcFailClientResolving, requests - killAfter},
	}
	for _, cl := range clients {
		b.Run(cl.name, func(b *testing.B) {
			var recovered int64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunSvcFail(context.Background(), experiments.SvcFailConfig{
					Platform: "hetero",
					Requests: requests, KillAfter: killAfter,
					Clients: []string{cl.name},
					Scale:   2000, Seed: uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				row := res.Rows[0]
				if row.Recovered != cl.recovered {
					b.Fatalf("%s recovered %d/%d post-failover requests, expected %d",
						cl.name, row.Recovered, requests-killAfter, cl.recovered)
				}
				if row.Replacements != 1 || row.Generation != 2 {
					b.Fatalf("%s: replacements=%d generation=%d, want 1/2",
						cl.name, row.Replacements, row.Generation)
				}
				recovered += int64(row.Recovered)
			}
			b.ReportMetric(float64(recovered)/float64(b.N), "recovered")
		})
	}
}

// BenchmarkAblationCrashRecovery quantifies what the write-ahead journal
// and core.Recover buy across a CLIENT death — the failure mode
// BenchmarkAblationServiceFailover's registry cannot touch, because there
// the session itself survives. Each sub-benchmark drives the full
// crash-recovery scenario at one fault point (tasks + a service across
// two pilots, client killed mid-append, recovery from the journal) and
// asserts the exact resume counts; "resumed" reports the fraction of
// in-flight tasks the recovered session ran to DONE (always 1.0 — the
// journal-less contrast inside the same run resumes 0).
func BenchmarkAblationCrashRecovery(b *testing.B) {
	points := []struct {
		name  string
		extra int // trigger entities the fault point adds to the fleet
	}{
		{experiments.FaultMidTransition, 1},
		{experiments.FaultMidPublish, 0},
		{experiments.FaultMidFailover, 0},
	}
	const tasks = 4
	for _, pt := range points {
		b.Run(pt.name, func(b *testing.B) {
			var resumed float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunCrashRec(context.Background(), experiments.CrashRecConfig{
					Tasks: tasks, FaultPoints: []string{pt.name},
					Scale: 20000, Seed: uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, row := range res.Rows {
					want := 0
					if row.Journaled {
						want = tasks + pt.extra
					}
					if !row.Journaled && row.Recovered {
						b.Fatalf("%s: journal-less contrast recovered state", pt.name)
					}
					if row.TasksCompleted != want {
						b.Fatalf("%s journaled=%v: completed %d/%d tasks after the crash",
							pt.name, row.Journaled, row.TasksCompleted, want)
					}
					if row.Journaled {
						resumed += float64(row.TasksCompleted) / float64(row.TasksInFlight)
					}
				}
			}
			b.ReportMetric(resumed/float64(b.N), "resumed")
		})
	}
}

// BenchmarkJournalOverhead prices the write-ahead journal on the steady
// state: one session, one pilot, a batch of short tasks run to DONE, with
// and without a journal underneath. The none/wal delta is the durability
// tax per campaign — per-record JSON encode + checksum + write, roughly
// ~10 us per record, visible here only because the simulated tasks are
// microseconds of wall time themselves.
func BenchmarkJournalOverhead(b *testing.B) {
	const tasks = 64
	modes := []struct {
		name       string
		journaled  bool
		flushEvery time.Duration // simulated; 0 = default (100 ms simulated)
	}{
		{"none", false, 0},
		// At the benchmark's 100000x clock compression the default 100 ms
		// simulated flush cadence degenerates to an fsync every ~1 us of
		// wall time; the wal-batched mode holds it at one simulated minute
		// (600 us wall). The two measure the same — the tax is the
		// per-record append (JSON encode + checksum + write), not the
		// fsync cadence.
		{"wal", true, 0},
		{"wal-batched", true, time.Minute},
	}
	for _, mode := range modes {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			dir := b.TempDir()
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				cfg := core.SessionConfig{
					Seed:     uint64(i + 1),
					Clock:    simtime.NewScaled(100000, core.DefaultOrigin),
					FastBoot: true,
				}
				if mode.journaled {
					cfg.JournalPath = fmt.Sprintf("%s/bench-%d.wal", dir, i)
					cfg.JournalFlushEvery = mode.flushEvery
				}
				sess, err := core.NewSession(cfg)
				if err != nil {
					b.Fatal(err)
				}
				p, err := sess.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Cores: 256, GPUs: 16})
				if err != nil {
					b.Fatal(err)
				}
				tm := sess.TaskManager()
				tm.AddPilot(p)
				for j := 0; j < tasks; j++ {
					if _, err := tm.Submit(ctx, spec.TaskDescription{
						Name: "t", Cores: 1, Duration: rng.ConstDuration(time.Second),
					}); err != nil {
						b.Fatal(err)
					}
				}
				if err := tm.Wait(ctx); err != nil {
					b.Fatal(err)
				}
				sess.Close()
			}
		})
	}
}

// --- micro-benchmarks on the substrates -----------------------------------------

// BenchmarkInferenceRoundTrip measures one full client→service→client
// round trip on the in-proc transport (noop model, zero-latency link).
func BenchmarkInferenceRoundTrip(b *testing.B) {
	sess, err := core.NewSession(core.SessionConfig{
		Seed: 1, Clock: simtime.NewScaled(100000, core.DefaultOrigin), FastBoot: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	p, err := sess.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Cores: 256, GPUs: 16})
	if err != nil {
		b.Fatal(err)
	}
	sm := sess.ServiceManager()
	sm.AddPilot(p)
	inst, err := sm.Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "svc", Cores: 1},
		Model:           "noop",
		ProbeInterval:   time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if err := sm.WaitReady(ctx, inst.UID()); err != nil {
		b.Fatal(err)
	}
	cl, err := sess.Dial(platform.Addr("delta", "", "bench-client"), inst.Endpoint())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cl.Infer(ctx, "bench", 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerThroughput measures placements per second through the
// continuous scheduler.
func BenchmarkSchedulerThroughput(b *testing.B) {
	plat := platform.New("bench", 16, platform.NodeSpec{Cores: 64, GPUs: 8, MemGB: 256})
	done := make(chan scheduler.Placement, 4096)
	sched := scheduler.New(plat.Nodes(), func(p scheduler.Placement) { done <- p })
	defer sched.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sched.Submit(scheduler.Request{UID: "t", Cores: 1}); err != nil {
			b.Fatal(err)
		}
		p := <-done
		sched.Release(p.Alloc)
	}
}

// BenchmarkAblationRoute quantifies session-level routing on mismatched
// pilots — the late-binding regime the Router seam exists for. The
// hetero campus is split into a fat pilot (32×128c/16g) and a thin pilot
// (96×16c): blind round-robin dispatch binds every second whole-fat-node
// task to the thin pilot, whose shapes can never run it (the task fails
// as unsatisfiable), while capacity-fit consults pilot shapes plus live
// scheduler snapshots and completes all of them. The "fat-done" metric
// is the deterministic per-router completion count; ns/op covers the
// full scenario (session + two pilots + all task lifecycles).
func BenchmarkAblationRoute(b *testing.B) {
	const nFat, nThin = 8, 16
	routers := []struct {
		name    string
		fatDone int
	}{
		{"round-robin", nFat / 2},
		{"capacity-fit", nFat},
	}
	for _, rt := range routers {
		b.Run(rt.name, func(b *testing.B) {
			var fatDone int64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunRoute(context.Background(), experiments.RouteConfig{
					Platform: "hetero",
					Routers:  []string{rt.name},
					FatTasks: nFat, ThinTasks: nThin,
					Scale: 2000, Seed: uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				row := res.Rows[0]
				if row.FatDone != rt.fatDone {
					b.Fatalf("%s completed %d/%d fat tasks, expected %d",
						rt.name, row.FatDone, nFat, rt.fatDone)
				}
				if row.ThinDone != nThin {
					b.Fatalf("%s completed %d/%d thin tasks", rt.name, row.ThinDone, nThin)
				}
				fatDone += int64(row.FatDone)
			}
			b.ReportMetric(float64(fatDone)/float64(b.N), "fat-done")
		})
	}
}

// --- Open-loop load harness (PR 7) ------------------------------------------

// BenchmarkAblationLoad runs the loadgen scenario catalog — steady,
// diurnal wave, hotspot skew, straggler backend, mid-stream pilot churn —
// as full open-loop campaigns on the virtual clock. Counts are exact and
// asserted (offered == catalog request budget, nothing lost); reported
// metrics carry the harness's headline numbers: wall-clock request
// throughput, virtual-time makespan, and the fixed sketch footprint.
func BenchmarkAblationLoad(b *testing.B) {
	for _, sc := range loadgen.Catalog() {
		sc := sc
		b.Run(sc.Name, func(b *testing.B) {
			var wall time.Duration
			var last *loadgen.Result
			for i := 0; i < b.N; i++ {
				res, err := loadgen.Run(context.Background(), sc)
				if err != nil {
					b.Fatal(err)
				}
				if res.Offered != int64(sc.Requests) || res.Completed+res.Failed != res.Offered {
					b.Fatalf("%s: offered=%d completed=%d failed=%d (budget %d)",
						sc.Name, res.Offered, res.Completed, res.Failed, sc.Requests)
				}
				wall += res.Wall
				last = res
			}
			b.ReportMetric(float64(last.Offered)*float64(b.N)/wall.Seconds(), "req/s")
			b.ReportMetric(last.Duration.Seconds(), "sim-s")
			b.ReportMetric(float64(last.SketchBytes), "sketch-B")
		})
	}
}

// BenchmarkLoadMillionSteady is the acceptance campaign: one million
// Poisson arrivals driven through the full session/router/resolver stack
// on the virtual clock. The run must finish in under 30 s of wall time,
// and the latency sketch's footprint must stay what it was at 10^4
// requests — fixed memory, bounded relative error, no reservoir.
func BenchmarkLoadMillionSteady(b *testing.B) {
	sc := loadgen.Scenario{
		Name: "steady-1M", Kind: loadgen.KindSteady,
		Requests: 1_000_000, Rate: 2000, Services: 4, Seed: 7,
		Interval: time.Minute,
	}
	for i := 0; i < b.N; i++ {
		res, err := loadgen.Run(context.Background(), sc)
		if err != nil {
			b.Fatal(err)
		}
		if res.Offered != 1_000_000 || res.Completed != 1_000_000 || res.Failed != 0 {
			b.Fatalf("counts: offered=%d completed=%d failed=%d", res.Offered, res.Completed, res.Failed)
		}
		if res.Wall > 30*time.Second {
			b.Fatalf("campaign took %v wall, acceptance bound is 30s", res.Wall)
		}
		b.ReportMetric(float64(res.Offered)/res.Wall.Seconds(), "req/s")
		b.ReportMetric(res.Duration.Seconds(), "sim-s")
		b.ReportMetric(float64(res.SketchBytes), "sketch-B")
	}
}

// --- Serving scalability (PR 8) ----------------------------------------------

// BenchmarkAblationScale runs the serving-scalability ablation: the
// vit-base offered-load sweep over the single / concurrent / batched
// serving modes plus the diurnal fixed-vs-autoscaled replica pair. Every
// count is exact (nothing rejected, nothing lost), and the two headline
// claims are asserted on every run: continuous batching at least doubles
// the saturated single-worker throughput, and the autoscaler beats the
// fixed single replica's tail latency under the diurnal wave.
func BenchmarkAblationScale(b *testing.B) {
	cfg := experiments.DefaultScaleConfig()
	cfg.Requests = 4000
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunScale(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		rows := make(map[string]experiments.ScaleRow, len(res.Rows))
		for _, row := range res.Rows {
			if row.Completed != row.Offered || row.Failed != 0 {
				b.Fatalf("%s: offered=%d completed=%d failed=%d",
					row.Config, row.Offered, row.Completed, row.Failed)
			}
			rows[row.Config] = row
		}
		single, batched := rows["single@8000"], rows["batched@8000"]
		if batched.Throughput < 2*single.Throughput {
			b.Fatalf("batched throughput %.0f/s not 2x saturated single %.0f/s",
				batched.Throughput, single.Throughput)
		}
		fixed, scaled := rows["diurnal-fixed"], rows["diurnal-autoscaled"]
		if scaled.P99 >= fixed.P99 {
			b.Fatalf("autoscaled p99 %v not under fixed p99 %v", scaled.P99, fixed.P99)
		}
		if scaled.PeakReplicas < 2 {
			b.Fatalf("autoscaler never scaled: peak replicas %d", scaled.PeakReplicas)
		}
		b.ReportMetric(batched.Throughput/single.Throughput, "batch-speedup")
		b.ReportMetric(float64(scaled.PeakReplicas), "peak-reps")
		b.ReportMetric(float64(scaled.P99.Milliseconds()), "auto-p99-ms")
		b.ReportMetric(float64(fixed.P99.Milliseconds()), "fixed-p99-ms")
	}
}

// --- Multi-process sessions (PR 9) -------------------------------------------

// BenchmarkAblationXproc runs the cross-process ablation: the route and
// service-failover scenarios with every pilot as a real OS process
// (re-executions of this test binary, see TestMain) reached over the
// pooled TCP transport, next to their in-proc twins. The determinism
// contract is asserted on every run: outcome counts must be identical
// across the transport swap — the wire changes timing, never results.
func BenchmarkAblationXproc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunXproc(context.Background(), experiments.DefaultXprocConfig())
		if err != nil {
			b.Fatal(err)
		}
		for j, row := range res.Route {
			if row != res.RouteInproc[j] {
				b.Fatalf("route %s diverged: os-process %+v, in-proc %+v", row.Router, row, res.RouteInproc[j])
			}
		}
		post := res.Cfg.Requests - res.Cfg.KillAfter
		for j, row := range res.SvcFail {
			in := res.SvcFailInproc[j]
			if row.PreKill != in.PreKill || row.Recovered != in.Recovered || row.Failed != in.Failed {
				b.Fatalf("svcfail %s diverged: os-process %+v, in-proc %+v", row.Client, row, in)
			}
			if row.Client == experiments.SvcFailClientResolving && row.Recovered != post {
				b.Fatalf("resolving client lost %d/%d post-failover requests", post-row.Recovered, post)
			}
		}
		b.ReportMetric(float64(len(res.Route)+len(res.SvcFail)), "xproc-rows")
	}
}

// --- Load-aware balancing + warm standbys (PR 10) ----------------------------

// BenchmarkAblationHotspot runs the hotspot-balancing ablation: the
// identical 80%-skewed seeded stream against p2c, blind round-robin and
// the full-scan least-loaded oracle, plus the warm-vs-cold failover
// contrast. The headline claims are asserted on every run: load-aware p2c
// beats blind selection strictly at p99 while staying within 2x of the
// full-scan oracle, and promoting a warm standby is faster than a cold
// re-bootstrap.
func BenchmarkAblationHotspot(b *testing.B) {
	cfg := experiments.DefaultHotspotConfig()
	cfg.Requests = 4000
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHotspot(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		rows := make(map[string]experiments.HotspotRow, len(res.Rows))
		for _, row := range res.Rows {
			if row.Completed+row.Failed != row.Offered || row.Offered != int64(cfg.Requests) {
				b.Fatalf("%s: offered=%d completed=%d failed=%d",
					row.Balancer, row.Offered, row.Completed, row.Failed)
			}
			rows[row.Balancer] = row
		}
		p2c, rr, least := rows["p2c"], rows["round-robin"], rows["least-loaded"]
		if p2c.P99 >= rr.P99 {
			b.Fatalf("p2c p99 %v not strictly under blind round-robin %v", p2c.P99, rr.P99)
		}
		if p2c.P99 > 2*least.P99 {
			b.Fatalf("p2c p99 %v outside 2x band of least-loaded %v", p2c.P99, least.P99)
		}
		fo := make(map[string]experiments.FailoverRow, len(res.Failover))
		for _, row := range res.Failover {
			fo[row.Mode] = row
		}
		warm, cold := fo[experiments.FailoverWarm], fo[experiments.FailoverCold]
		if warm.Generations != 1 || warm.Promotions != 1 || warm.Replacements != 0 {
			b.Fatalf("warm failover: gens=%d promotions=%d replacements=%d, want 1/1/0",
				warm.Generations, warm.Promotions, warm.Replacements)
		}
		if warm.Latency >= cold.Latency {
			b.Fatalf("warm failover %v not under cold re-bootstrap %v", warm.Latency, cold.Latency)
		}
		b.ReportMetric(float64(rr.P99.Microseconds())/float64(p2c.P99.Microseconds()), "p99-vs-rr")
		b.ReportMetric(float64(cold.Latency.Milliseconds())/float64(warm.Latency.Milliseconds()), "failover-speedup")
		b.ReportMetric(float64(p2c.P99.Microseconds()), "p2c-p99-us")
	}
}

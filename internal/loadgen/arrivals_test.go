package loadgen

import (
	"testing"
	"time"

	"repro/internal/rng"
)

// collect drains an Arrivals into its gap sequence.
func collect(a Arrivals) []time.Duration {
	var gaps []time.Duration
	for {
		g, ok := a.Next()
		if !ok {
			return gaps
		}
		gaps = append(gaps, g)
	}
}

func TestPoissonArrivalsCountAndMean(t *testing.T) {
	const n = 20000
	const rate = 1000.0
	gaps := collect(PoissonArrivals(rng.New(11).Derive("arrivals"), rate, n))
	if len(gaps) != n {
		t.Fatalf("got %d arrivals, want exactly %d", len(gaps), n)
	}
	var sum time.Duration
	for _, g := range gaps {
		if g < 0 {
			t.Fatalf("negative gap %v", g)
		}
		sum += g
	}
	mean := sum / n
	want := time.Duration(float64(time.Second) / rate)
	// 20000 exponential samples: the sample mean is within a few percent
	// of 1/rate with overwhelming probability, and the seed is fixed.
	if mean < want*9/10 || mean > want*11/10 {
		t.Errorf("mean gap %v not within 10%% of %v", mean, want)
	}
}

func TestPoissonArrivalsDeterministic(t *testing.T) {
	a := collect(PoissonArrivals(rng.New(3).Derive("arrivals"), 500, 1000))
	b := collect(PoissonArrivals(rng.New(3).Derive("arrivals"), 500, 1000))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gap %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDiurnalArrivalsCountAndPositivity(t *testing.T) {
	const n = 10000
	gaps := collect(DiurnalArrivals(rng.New(5).Derive("arrivals"), 1000, 0.8, 20*time.Second, n))
	if len(gaps) != n {
		t.Fatalf("got %d arrivals, want exactly %d", len(gaps), n)
	}
	for i, g := range gaps {
		if g <= 0 {
			t.Fatalf("gap %d is %v; thinning must always advance time", i, g)
		}
	}
}

func TestDiurnalArrivalsDeterministic(t *testing.T) {
	a := collect(DiurnalArrivals(rng.New(5).Derive("arrivals"), 1000, 0.5, 10*time.Second, 2000))
	b := collect(DiurnalArrivals(rng.New(5).Derive("arrivals"), 1000, 0.5, 10*time.Second, 2000))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gap %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDiurnalArrivalsRejectsBadWave(t *testing.T) {
	for _, tc := range []struct {
		name      string
		base, amp float64
		period    time.Duration
	}{
		{"zero-base", 0, 0.5, time.Second},
		{"amp-one", 100, 1.0, time.Second},
		{"negative-amp", 100, -0.1, time.Second},
		{"zero-period", 100, 0.5, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("DiurnalArrivals(%v, %v, %v) did not panic", tc.base, tc.amp, tc.period)
				}
			}()
			DiurnalArrivals(rng.New(1), tc.base, tc.amp, tc.period, 1)
		})
	}
}

func TestTraceArrivalsReplayVerbatim(t *testing.T) {
	in := []time.Duration{0, time.Millisecond, 5 * time.Millisecond, 0, time.Second}
	got := collect(TraceArrivals(in))
	if len(got) != len(in) {
		t.Fatalf("got %d gaps, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Errorf("gap %d: got %v, want %v", i, got[i], in[i])
		}
	}
}

package msgq

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proto"
)

// inprocServer is a REQ/REP endpoint on a Network.
type inprocServer struct {
	net     *Network
	addr    string
	handler Handler
	closed  atomic.Bool
}

// Bind registers a REQ/REP server at addr. Requests are served
// concurrently; serialization (e.g. the paper's single-threaded services)
// is the handler's responsibility.
func (n *Network) Bind(addr string, h Handler) (Server, error) {
	if h == nil {
		return nil, fmt.Errorf("msgq: bind %s: nil handler", addr)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	s := &inprocServer{net: n, addr: addr, handler: h}
	if _, loaded := n.reps.LoadOrStore(addr, s); loaded {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	return s, nil
}

// Addr implements Server.
func (s *inprocServer) Addr() string { return s.addr }

// Close implements Server.
func (s *inprocServer) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	// Delete only our own registration: the address may have been rebound
	// by the time a second Close runs.
	s.net.reps.CompareAndDelete(s.addr, s)
	return nil
}

func (s *inprocServer) isClosed() bool { return s.closed.Load() }

// inprocClient is a connected REQ/REP client.
//
// The server pointer is cached at Dial time (and refreshed if that server
// closes), so the request hot path touches no registry at all: a round
// trip is two latency hops and one handler call, with no goroutine spawn,
// no channel allocation and no shared lock when the context is not
// cancellable — the paper's synchronous REQ/REP round trip executed
// entirely on the calling goroutine.
type inprocClient struct {
	net     *Network
	from    string
	to      string
	profile LinkProfile

	srv    atomic.Pointer[inprocServer]
	closed atomic.Bool
}

// dialInproc connects a client at address from to the in-process server
// bound at to (the transport-dispatching entry point is Network.Dial in
// transport.go). The link profile and the server endpoint are resolved
// once at dial time, mirroring a connected socket.
func (n *Network) dialInproc(from, to string) (Client, error) {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	v, ok := n.reps.Load(to)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownAddr, to)
	}
	c := &inprocClient{net: n, from: from, to: to, profile: n.resolve(from, to)}
	c.srv.Store(v.(*inprocServer))
	return c, nil
}

// server returns the live server for c.to, re-resolving through the
// registry when the cached endpoint has closed (the address may have been
// rebound since).
func (c *inprocClient) server() (*inprocServer, error) {
	srv := c.srv.Load()
	if srv != nil && !srv.isClosed() {
		return srv, nil
	}
	v, ok := c.net.reps.Load(c.to)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownAddr, c.to)
	}
	srv = v.(*inprocServer)
	if srv.isClosed() {
		return nil, fmt.Errorf("%w: %s", ErrUnknownAddr, c.to)
	}
	c.srv.Store(srv)
	return srv, nil
}

// Request implements Client. The calling goroutine pays the request hop,
// the handler execution, and the reply hop — matching the synchronous
// REQ/REP round trip the paper's response-time metric measures.
//
// With a non-cancellable context the whole round trip runs inline on the
// calling goroutine. Only a cancellable context takes the asynchronous
// path, where a helper goroutine lets Request return at ctx expiry even
// while the handler still blocks.
func (c *inprocClient) Request(ctx context.Context, env proto.Envelope) (proto.Envelope, error) {
	if c.closed.Load() {
		return proto.Envelope{}, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return proto.Envelope{}, err
	}
	srv, err := c.server()
	if err != nil {
		return proto.Envelope{}, err
	}

	if ctx.Done() == nil {
		// Fast path: synchronous round trip, zero allocations in the
		// transport.
		c.net.hop(c.profile, wireLen(c.profile, env))
		if srv.isClosed() {
			return proto.Envelope{}, ErrClosed
		}
		reply := srv.handler(env)
		c.net.hop(c.profile, wireLen(c.profile, reply))
		return reply, nil
	}

	type result struct {
		env proto.Envelope
		err error
	}
	done := make(chan result, 1)
	go func() {
		c.net.hop(c.profile, wireLen(c.profile, env)) // request traversal
		if srv.isClosed() {
			done <- result{err: ErrClosed}
			return
		}
		reply := srv.handler(env)
		c.net.hop(c.profile, wireLen(c.profile, reply)) // reply traversal
		done <- result{env: reply}
	}()
	select {
	case r := <-done:
		return r.env, r.err
	case <-ctx.Done():
		return proto.Envelope{}, ctx.Err()
	}
}

// Close implements Client.
func (c *inprocClient) Close() error {
	c.closed.Store(true)
	return nil
}

// --- PUB/SUB --------------------------------------------------------------

// Publisher broadcasts envelopes to topic subscribers.
type Publisher interface {
	Publish(topic string, env proto.Envelope)
	Addr() string
	Close() error
}

// Subscription receives published envelopes for its topics.
type Subscription struct {
	C      <-chan proto.Envelope
	cancel func()
}

// Cancel removes the subscription and closes C.
func (s *Subscription) Cancel() {
	if s.cancel != nil {
		s.cancel()
	}
}

// pubItem is one pending delivery in a subscriber's ring: the envelope
// plus the clock time at which its simulated traversal completes.
type pubItem struct {
	env       proto.Envelope
	deliverAt time.Time
}

// subscriber owns one persistent delivery worker. The publisher enqueues
// into ring (dropping when the subscriber lags, per PUB/SUB semantics);
// the worker waits out each message's link traversal and forwards it to
// ch. The link profile is resolved once at subscribe time.
type subscriber struct {
	id      uint64
	topics  map[string]bool // empty set = all topics
	ch      chan proto.Envelope
	from    string
	profile LinkProfile
	ring    chan pubItem
	stop    chan struct{}
}

type inprocPublisher struct {
	net  *Network
	addr string

	mu     sync.Mutex
	closed bool
	nextID uint64
	subs   map[uint64]*subscriber
}

// BindPub registers a PUB endpoint at addr.
func (n *Network) BindPub(addr string) (Publisher, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	p := &inprocPublisher{net: n, addr: addr, subs: make(map[uint64]*subscriber)}
	if _, loaded := n.pubs.LoadOrStore(addr, p); loaded {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	return p, nil
}

// Subscribe attaches to the PUB endpoint at addr, receiving envelopes whose
// topic is in topics (all topics when none given). buffer sizes both the
// delivery channel and the worker's pending ring; slow subscribers drop
// messages rather than block the publisher, matching PUB/SUB semantics.
func (n *Network) Subscribe(from, addr string, buffer int, topics ...string) (*Subscription, error) {
	v, ok := n.pubs.Load(addr)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownAddr, addr)
	}
	p := v.(*inprocPublisher)
	if buffer <= 0 {
		buffer = 64
	}
	ts := make(map[string]bool, len(topics))
	for _, t := range topics {
		ts[t] = true
	}
	sub := &subscriber{
		topics:  ts,
		ch:      make(chan proto.Envelope, buffer),
		from:    from,
		profile: n.resolve(addr, from),
		ring:    make(chan pubItem, buffer),
		stop:    make(chan struct{}),
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	p.nextID++
	sub.id = p.nextID
	p.subs[sub.id] = sub
	p.mu.Unlock()
	go p.deliverLoop(sub)
	return &Subscription{
		C: sub.ch,
		cancel: func() {
			p.mu.Lock()
			if _, ok := p.subs[sub.id]; ok {
				delete(p.subs, sub.id)
				close(sub.stop)
			}
			p.mu.Unlock()
		},
	}, nil
}

// deliverLoop is a subscriber's persistent delivery worker: it drains the
// pending ring, waits until each message's simulated arrival time, and
// forwards it. It owns closing sub.ch, so cancellation never races a
// send-on-closed-channel.
func (p *inprocPublisher) deliverLoop(sub *subscriber) {
	defer close(sub.ch)
	for {
		select {
		case <-sub.stop:
			return
		case it := <-sub.ring:
			if wait := it.deliverAt.Sub(p.net.clock.Now()); wait > 0 {
				t := p.net.clock.NewTimer(wait)
				select {
				case <-t.C():
				case <-sub.stop:
					t.Stop()
					return
				}
			}
			select {
			case sub.ch <- it.env:
			default: // slow subscriber: drop
			}
		}
	}
}

// Publish implements Publisher. Delivery is asynchronous per subscriber
// through its persistent worker: the publisher only samples the link
// traversal and enqueues — no goroutine is spawned and no profile is
// re-resolved per message.
func (p *inprocPublisher) Publish(topic string, env proto.Envelope) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	var now time.Time
	for _, s := range p.subs {
		if len(s.topics) != 0 && !s.topics[topic] {
			continue
		}
		if now.IsZero() {
			now = p.net.clock.Now()
		}
		it := pubItem{env: env, deliverAt: now.Add(p.net.hopDelay(s.profile, wireLen(s.profile, env)))}
		select {
		case s.ring <- it:
		default: // subscriber's ring full: drop, never block the publisher
		}
	}
}

// Addr implements Publisher.
func (p *inprocPublisher) Addr() string { return p.addr }

// Close implements Publisher.
func (p *inprocPublisher) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for id, s := range p.subs {
		delete(p.subs, id)
		close(s.stop)
	}
	p.mu.Unlock()
	p.net.pubs.CompareAndDelete(p.addr, p)
	return nil
}

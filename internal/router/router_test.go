package router

import (
	"errors"
	"testing"

	"repro/internal/platform"
	"repro/internal/scheduler"
	"repro/internal/spec"
)

// fakeTarget is a scripted pilot view.
type fakeTarget struct {
	uid    string
	groups []platform.NodeGroup
	snap   scheduler.Snapshot
}

func (f *fakeTarget) UID() string                  { return f.uid }
func (f *fakeTarget) Shapes() []platform.NodeGroup { return f.groups }
func (f *fakeTarget) Snapshot() scheduler.Snapshot { return f.snap }

func mkTarget(uid string, spec platform.NodeSpec, nodes, waiting, freeCores int) *fakeTarget {
	return &fakeTarget{
		uid:    uid,
		groups: []platform.NodeGroup{{Count: nodes, Spec: spec}},
		snap: scheduler.Snapshot{
			Waiting: waiting,
			Shapes: []scheduler.ShapeCapacity{{
				Spec: spec, Nodes: nodes, FreeCores: freeCores,
			}},
			MaxFreeCores: min(freeCores, spec.Cores),
			MaxFreeGPUs:  spec.GPUs,
			MaxFreeMemGB: spec.MemGB,
		},
	}
}

var (
	fat  = platform.NodeSpec{Cores: 128, GPUs: 16, MemGB: 1024}
	thin = platform.NodeSpec{Cores: 16, GPUs: 0, MemGB: 64}
)

func TestByName(t *testing.T) {
	for name, want := range map[string]string{
		"":             NameRoundRobin,
		"round-robin":  NameRoundRobin,
		"rr":           NameRoundRobin,
		"least-loaded": NameLeastLoaded,
		"capacity-fit": NameCapacityFit,
	} {
		r, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if r.Name() != want {
			t.Fatalf("ByName(%q).Name() = %q, want %q", name, r.Name(), want)
		}
	}
	if _, err := ByName("strict"); err == nil {
		t.Fatal("ByName accepted an unknown router")
	}
}

// TestRoundRobinRotationAndNoAdvanceOnError pins the two round-robin
// contracts: strict rotation over targets, and a cursor that only moves
// when a selection is actually returned (the partial-failure semantics
// the TaskManager exposes).
func TestRoundRobinRotationAndNoAdvanceOnError(t *testing.T) {
	r := NewRoundRobin()
	targets := []Target{
		mkTarget("p0", fat, 2, 0, 256),
		mkTarget("p1", fat, 2, 0, 256),
		mkTarget("p2", fat, 2, 0, 256),
	}
	d := spec.TaskDescription{Name: "t", Cores: 1}
	for i := 0; i < 9; i++ {
		got, err := r.Route(targets, d)
		if err != nil {
			t.Fatal(err)
		}
		if got != i%3 {
			t.Fatalf("route %d = %d, want %d", i, got, i%3)
		}
	}
	if _, err := r.Route(nil, d); !errors.Is(err, ErrNoTargets) {
		t.Fatalf("empty targets err = %v, want ErrNoTargets", err)
	}
	// The failed call must not have advanced the cursor.
	if got, _ := r.Route(targets, d); got != 0 {
		t.Fatalf("cursor advanced across a failed route: got %d, want 0", got)
	}
}

func TestLeastLoadedPrefersShallowQueueThenFreeCapacity(t *testing.T) {
	r := NewLeastLoaded()
	d := spec.TaskDescription{Name: "t", Cores: 1}
	// p1 has the shallowest wait pool.
	i, err := r.Route([]Target{
		mkTarget("p0", fat, 2, 5, 256),
		mkTarget("p1", fat, 2, 1, 0),
		mkTarget("p2", fat, 2, 3, 256),
	}, d)
	if err != nil || i != 1 {
		t.Fatalf("route = %d, %v; want 1", i, err)
	}
	// Equal wait depth: more free weighted capacity wins.
	i, err = r.Route([]Target{
		mkTarget("p0", fat, 2, 2, 4),
		mkTarget("p1", fat, 2, 2, 200),
	}, d)
	if err != nil || i != 1 {
		t.Fatalf("route = %d, %v; want 1 (more free capacity)", i, err)
	}
	// Full tie: lowest index, deterministically.
	i, err = r.Route([]Target{
		mkTarget("p0", fat, 2, 2, 8),
		mkTarget("p1", fat, 2, 2, 8),
	}, d)
	if err != nil || i != 0 {
		t.Fatalf("route = %d, %v; want 0 (tie → lowest index)", i, err)
	}
}

func TestCapacityFitRoutesOnShapes(t *testing.T) {
	r := NewCapacityFit()
	thinPilot := mkTarget("thin", thin, 96, 0, 96*16)
	fatPilot := mkTarget("fat", fat, 32, 4, 32*128)

	// A whole-fat-node task fits only the fat pilot's shapes, even though
	// the thin pilot is idle and the fat one has queued work.
	i, err := r.Route([]Target{thinPilot, fatPilot},
		spec.TaskDescription{Name: "large", Cores: 128, GPUs: 16})
	if err != nil || i != 1 {
		t.Fatalf("large route = %d, %v; want 1 (fat pilot)", i, err)
	}

	// A thin task fits both; the idle thin pilot wins on load.
	i, err = r.Route([]Target{thinPilot, fatPilot},
		spec.TaskDescription{Name: "small", Cores: 16})
	if err != nil || i != 0 {
		t.Fatalf("small route = %d, %v; want 0 (idle thin pilot)", i, err)
	}

	// A task that fits no attached pilot's shapes is rejected at submit.
	_, err = r.Route([]Target{thinPilot, fatPilot},
		spec.TaskDescription{Name: "monster", Cores: 256})
	var unroutable ErrUnroutable
	if !errors.As(err, &unroutable) {
		t.Fatalf("monster err = %v, want ErrUnroutable", err)
	}
	if unroutable.Cores != 256 {
		t.Fatalf("ErrUnroutable echoes %+v", unroutable)
	}
	if _, err := r.Route(nil, spec.TaskDescription{Name: "t", Cores: 1}); !errors.Is(err, ErrNoTargets) {
		t.Fatalf("empty targets err = %v, want ErrNoTargets", err)
	}
}

// TestCapacityFitPrefersFitsNow pins the late-binding preference: among
// ever-fitting pilots, one whose free single-node maxima admit the task
// right now beats a less-loaded pilot that would only queue it.
func TestCapacityFitPrefersFitsNow(t *testing.T) {
	r := NewCapacityFit()
	// Both pilots' shapes fit the task; busy's nodes are drained (nothing
	// fits now) while full-capacity idle can start it immediately even
	// though its wait pool is deeper.
	busy := mkTarget("busy", fat, 4, 0, 0)
	busy.snap.MaxFreeCores = 0
	busy.snap.MaxFreeGPUs = 0
	busy.snap.MaxFreeMemGB = 0
	idle := mkTarget("idle", fat, 4, 3, 4*128)
	i, err := r.Route([]Target{busy, idle}, spec.TaskDescription{Name: "t", Cores: 64, GPUs: 8})
	if err != nil || i != 1 {
		t.Fatalf("route = %d, %v; want 1 (fits-now beats shallow queue)", i, err)
	}
	// When nobody fits now, queue on the shallowest ever-fitting pool.
	alsoBusy := mkTarget("busy2", fat, 4, 2, 0)
	alsoBusy.snap.MaxFreeCores = 0
	alsoBusy.snap.MaxFreeGPUs = 0
	alsoBusy.snap.MaxFreeMemGB = 0
	i, err = r.Route([]Target{busy, alsoBusy}, spec.TaskDescription{Name: "t", Cores: 64, GPUs: 8})
	if err != nil || i != 0 {
		t.Fatalf("route = %d, %v; want 0 (shallowest queue among queue-only)", i, err)
	}
}

// TestRoutersAreFreshInstances guards the per-manager state contract:
// ByName must hand out independent cursors.
func TestRoutersAreFreshInstances(t *testing.T) {
	a, _ := ByName(NameRoundRobin)
	b, _ := ByName(NameRoundRobin)
	targets := []Target{
		mkTarget("p0", fat, 1, 0, 128),
		mkTarget("p1", fat, 1, 0, 128),
	}
	d := spec.TaskDescription{Name: "t", Cores: 1}
	if i, _ := a.Route(targets, d); i != 0 {
		t.Fatalf("a first route = %d", i)
	}
	if i, _ := b.Route(targets, d); i != 0 {
		t.Fatalf("b first route = %d; cursors shared between instances", i)
	}
}

// --- retry wrapper -----------------------------------------------------------

// TestWithRetrySkipsNeverFittingPilots: a blind round-robin pick that
// lands a fat task on a thin pilot is retried until a fitting pilot comes
// up in rotation, while routable tasks keep the untouched inner sequence.
func TestWithRetrySkipsNeverFittingPilots(t *testing.T) {
	r := WithRetry(NewRoundRobin())
	if r.Name() != NameRoundRobin+"+retry" {
		t.Fatalf("Name = %q", r.Name())
	}
	targets := []Target{
		mkTarget("fat0", fat, 2, 0, 256),
		mkTarget("thin0", thin, 4, 0, 64),
	}
	fatTask := spec.TaskDescription{Name: "fat", Cores: fat.Cores, GPUs: fat.GPUs}
	thinTask := spec.TaskDescription{Name: "thin", Cores: 1}

	// Blind round-robin would route the second fat task to thin0 (it can
	// never run there); the wrapper advances past it to fat0 every time.
	for i := 0; i < 4; i++ {
		got, err := r.Route(targets, fatTask)
		if err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Fatalf("fat task %d routed to %s", i, targets[got].UID())
		}
	}
	// Routable tasks see plain rotation: the 4 fat tasks consumed 7 inner
	// cursor steps (1 + 3×2), so the thin task continues the sequence at
	// step 7 — thin0 on a two-target rotation.
	got, err := r.Route(targets, thinTask)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("thin task routed to %s, want thin0 (cursor continues)", targets[got].UID())
	}
}

// TestWithRetryMatchesInnerSequenceWhenEverythingFits: wrapping must not
// change a single pick while all tasks fit everywhere — the graceful-
// degradation contract that keeps the seed dispatch pinned.
func TestWithRetryMatchesInnerSequenceWhenEverythingFits(t *testing.T) {
	plain, wrapped := NewRoundRobin(), WithRetry(NewRoundRobin())
	targets := []Target{
		mkTarget("p0", fat, 2, 0, 256),
		mkTarget("p1", fat, 2, 0, 256),
		mkTarget("p2", fat, 2, 0, 256),
	}
	d := spec.TaskDescription{Name: "t", Cores: 1}
	for i := 0; i < 12; i++ {
		a, err1 := plain.Route(targets, d)
		b, err2 := wrapped.Route(targets, d)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if a != b {
			t.Fatalf("pick %d diverged: plain %d, wrapped %d", i, a, b)
		}
	}
}

// TestWithRetryRejectsGloballyUnroutable: when no target could ever fit,
// the wrapper rejects at submit with ErrUnroutable like the shape-aware
// routers, instead of wedging the task anywhere.
func TestWithRetryRejectsGloballyUnroutable(t *testing.T) {
	r := WithRetry(NewRoundRobin())
	targets := []Target{mkTarget("thin0", thin, 4, 0, 64)}
	_, err := r.Route(targets, spec.TaskDescription{Name: "fat", Cores: fat.Cores, GPUs: fat.GPUs})
	var unroutable ErrUnroutable
	if !errors.As(err, &unroutable) {
		t.Fatalf("err = %v, want ErrUnroutable", err)
	}
	if _, err := r.Route(nil, spec.TaskDescription{Name: "t", Cores: 1}); !errors.Is(err, ErrNoTargets) {
		t.Fatalf("err = %v, want ErrNoTargets", err)
	}
}

// TestByNameRetrySuffix: the "+retry" suffix wraps any built-in.
func TestByNameRetrySuffix(t *testing.T) {
	r, err := ByName("round-robin+retry")
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != NameRoundRobin+"+retry" {
		t.Fatalf("Name = %q", r.Name())
	}
	if _, err := ByName("+retry"); err == nil {
		t.Fatal("ByName accepted a bare +retry")
	}
	if _, err := ByName("bogus+retry"); err == nil {
		t.Fatal("ByName accepted an unknown inner router")
	}
}

// --- drain ranking -----------------------------------------------------------

// TestCapacityFitRankDrain pins the overflow-drain ordering: fits-now
// descriptions first, submission order within each class.
func TestCapacityFitRankDrain(t *testing.T) {
	cf, ok := NewCapacityFit().(Ranker)
	if !ok {
		t.Fatal("capacity-fit does not implement Ranker")
	}
	// Target with 16 free cores on its best node: only small tasks fit now.
	target := mkTarget("p0", fat, 2, 0, 16)
	descs := []spec.TaskDescription{
		{Name: "big-0", Cores: 128},
		{Name: "small-0", Cores: 8},
		{Name: "big-1", Cores: 64},
		{Name: "small-1", Cores: 16},
	}
	got := cf.RankDrain(target, descs)
	want := []int{1, 3, 0, 2}
	if len(got) != len(want) {
		t.Fatalf("rank = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank = %v, want %v", got, want)
		}
	}
	// Round-robin has no ranking capability: the drain keeps seed order.
	if _, ok := NewRoundRobin().(Ranker); ok {
		t.Fatal("round-robin unexpectedly implements Ranker")
	}
}

// TestWithRetryForwardsRanker: wrapping must not lose the inner router's
// drain-ranking capability (capacity-fit+retry keeps fits-now-first),
// and a ranking-less inner router yields the identity permutation.
func TestWithRetryForwardsRanker(t *testing.T) {
	target := mkTarget("p0", fat, 2, 0, 16)
	descs := []spec.TaskDescription{
		{Name: "big", Cores: 128},
		{Name: "small", Cores: 8},
	}
	cf := WithRetry(NewCapacityFit()).(Ranker)
	if got := cf.RankDrain(target, descs); len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Fatalf("capacity-fit+retry rank = %v, want [1 0]", got)
	}
	rr := WithRetry(NewRoundRobin()).(Ranker)
	if got := rr.RankDrain(target, descs); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("round-robin+retry rank = %v, want identity [0 1]", got)
	}
}

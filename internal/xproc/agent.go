package xproc

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/msgq"
	"repro/internal/pilot"
	"repro/internal/platform"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/spec"
)

// MaybeRunAgent turns the current process into a pilot agent when
// EnvAgentConfig is set, and never returns in that case. Binaries that can
// host agents (cmd/rppilot, cmd/rpexp, test binaries that spawn agents)
// must call it at the very top of main / TestMain, before flag parsing.
func MaybeRunAgent() {
	raw := os.Getenv(EnvAgentConfig)
	if raw == "" {
		return
	}
	var cfg AgentConfig
	if err := json.Unmarshal([]byte(raw), &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "rppilot agent: bad %s: %v\n", EnvAgentConfig, err)
		os.Exit(2)
	}
	if err := RunAgent(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "rppilot agent %s: %v\n", cfg.UID, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// RunAgent launches one pilot on a TCP-transport network, serves control
// RPCs, and blocks until a shutdown RPC arrives or stdin reaches EOF (the
// driver died). The ready handshake line goes to stdout.
func RunAgent(cfg AgentConfig) error {
	if cfg.UID == "" {
		return fmt.Errorf("xproc: agent without UID")
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 2000
	}
	plat := platform.DefaultTopology().Platform(cfg.Platform)
	if plat == nil {
		return fmt.Errorf("xproc: unknown platform %q", cfg.Platform)
	}
	// Partition carving: every agent builds the same catalog platform and
	// pre-allocates the first SkipNodes nodes wholly, so its pilot's
	// first-available acquisition lands on the partition after them —
	// process-local mirroring of the in-proc consecutive-pilot carving.
	nodes := plat.Nodes()
	if cfg.SkipNodes < 0 || cfg.SkipNodes > len(nodes) {
		return fmt.Errorf("xproc: skip %d of %d nodes", cfg.SkipNodes, len(nodes))
	}
	for _, n := range nodes[:cfg.SkipNodes] {
		s := n.Spec()
		if a := n.TryAlloc(s.Cores, s.GPUs, s.MemGB); a == nil {
			return fmt.Errorf("xproc: carving node %s failed", n.Name())
		}
	}
	if cfg.Nodes <= 0 {
		// Whole remaining platform: everything after the carved partition.
		cfg.Nodes = len(nodes) - cfg.SkipNodes
	}

	clock := simtime.NewScaled(cfg.Scale, core.DefaultOrigin)
	src := rng.New(cfg.Seed)
	net := msgq.NewNetwork(clock, src.Derive("net"), nil)
	if err := net.SetTransport(msgq.TransportTCP); err != nil {
		return err
	}
	defer net.Close()

	p, err := pilot.Launch(pilot.Config{
		Clock:           clock,
		Src:             src.Derive("pilot." + cfg.UID),
		Net:             net,
		Platform:        plat,
		BootTime:        rng.ConstDuration(0),
		PublishOverhead: rng.ConstDuration(0),
		LaunchModel:     &platform.LaunchModel{},
		SchedPolicy:     cfg.SchedPolicy,
		Transport:       msgq.TransportTCP,
	}, spec.PilotDescription{UID: cfg.UID, Platform: cfg.Platform, Nodes: cfg.Nodes})
	if err != nil {
		return err
	}

	a := &agent{cfg: cfg, pilot: p, clock: clock, done: make(chan struct{})}
	srv, err := msgq.ListenTCPOpts("127.0.0.1:0", a.handler(), msgq.TCPServerOptions{Workers: 16})
	if err != nil {
		_ = p.Shutdown()
		return err
	}
	fmt.Printf("%s%s\n", readyPrefix, srv.Addr())

	// The driver holds our stdin pipe open for our lifetime: EOF means it
	// exited (or killed us softly) and we must not linger.
	go func() {
		_, _ = io.Copy(io.Discard, os.Stdin)
		a.stop()
	}()

	<-a.done
	_ = srv.Close()
	_ = p.Shutdown()
	return nil
}

// agent is the server side of the control channel.
type agent struct {
	cfg   AgentConfig
	pilot *pilot.Pilot
	clock simtime.Clock

	stopOnce sync.Once
	done     chan struct{}
}

func (a *agent) stop() { a.stopOnce.Do(func() { close(a.done) }) }

// handler decodes control calls and dispatches them. Replies are plain
// envelopes with a replyBody JSON payload; errors travel as strings — the
// driver turns them back into errors.
func (a *agent) handler() msgq.Handler {
	return func(env proto.Envelope) proto.Envelope {
		var call callBody
		if err := env.Decode(KindCall, &call); err != nil {
			return a.reply(env, nil, err)
		}
		result, err := a.dispatch(call)
		return a.reply(env, result, err)
	}
}

func (a *agent) reply(req proto.Envelope, result any, err error) proto.Envelope {
	var body replyBody
	if err != nil {
		body.Err = err.Error()
	} else if result != nil {
		raw, merr := json.Marshal(result)
		if merr != nil {
			body.Err = merr.Error()
		} else {
			body.Result = raw
		}
	}
	out, _ := proto.NewEnvelope(proto.KindReply, req.ID, a.cfg.UID, req.From, a.clock.Now(), body)
	return out
}

func (a *agent) dispatch(call callBody) (any, error) {
	switch call.Method {
	case "ping":
		return nil, nil
	case "shapes":
		return a.pilot.Shapes(), nil
	case "snapshot":
		return a.pilot.Snapshot(), nil
	case "submit":
		var args submitArgs
		if err := json.Unmarshal(call.Args, &args); err != nil {
			return nil, err
		}
		t, err := a.pilot.SubmitTask(context.Background(), args.Desc)
		if err != nil {
			return nil, err
		}
		return submitResult{UID: t.UID()}, nil
	case "wait":
		// One blocking RPC for the whole UID set: the driver waits once
		// per agent instead of holding a control worker per task.
		var args waitArgs
		if err := json.Unmarshal(call.Args, &args); err != nil {
			return nil, err
		}
		_ = a.pilot.WaitTasks(context.Background(), args.UIDs...)
		out := waitReply{Tasks: make([]TaskStatus, 0, len(args.UIDs))}
		for _, uid := range args.UIDs {
			st := TaskStatus{UID: uid}
			if t, ok := a.pilot.Task(uid); ok {
				st.State = string(t.State())
				if err := t.Result().Err; err != nil {
					st.Err = err.Error()
				}
			} else {
				st.State = "unknown"
			}
			out.Tasks = append(out.Tasks, st)
		}
		return out, nil
	case "svc_submit":
		var args svcSubmitArgs
		if err := json.Unmarshal(call.Args, &args); err != nil {
			return nil, err
		}
		inst, err := a.pilot.Services().Submit(args.Desc)
		if err != nil {
			return nil, err
		}
		return submitResult{UID: inst.UID()}, nil
	case "svc_await":
		var args svcAwaitArgs
		if err := json.Unmarshal(call.Args, &args); err != nil {
			return nil, err
		}
		if err := a.pilot.Services().WaitReady(context.Background(), args.UID); err != nil {
			return nil, err
		}
		inst, ok := a.pilot.Services().Get(args.UID)
		if !ok {
			return nil, fmt.Errorf("xproc: service %s not found after ready", args.UID)
		}
		return svcAwaitReply{Endpoint: inst.Endpoint()}, nil
	case "shutdown":
		// Ack first, stop shortly after, so the reply frame reaches the
		// driver before the process exits.
		time.AfterFunc(100*time.Millisecond, a.stop)
		return nil, nil
	default:
		return nil, fmt.Errorf("xproc: unknown method %q", call.Method)
	}
}

package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// IntervalSeries aggregates a load campaign into fixed-width time buckets:
// offered/completed/failed counts, peak queue depth, and a latency Sketch
// per interval. It is the streaming replacement for collecting every
// sample and sorting at the end — memory grows with campaign *duration*
// (one row per interval), never with request count.
//
// Timestamps are bucketed relative to the origin passed to
// NewIntervalSeries; events before the origin land in interval 0. An
// IntervalSeries is not safe for concurrent use — campaign drivers on the
// virtual clock are cooperatively serialized, and concurrent collectors
// each own a series and Merge afterwards.
type IntervalSeries struct {
	origin time.Time
	width  time.Duration
	alpha  float64
	rows   []*intervalAcc
}

type intervalAcc struct {
	offered   int64
	completed int64
	failed    int64
	queuePeak int64
	sketch    *Sketch
}

// IntervalRow is one finished interval of an IntervalSeries.
type IntervalRow struct {
	Index         int           `json:"interval"`
	Start         time.Duration `json:"start_s"` // offset from the series origin
	Offered       int64         `json:"offered"`
	Completed     int64         `json:"completed"`
	Failed        int64         `json:"failed"`
	QueuePeak     int64         `json:"queue_peak"`
	OfferedRate   float64       `json:"offered_rate"`   // per second
	CompletedRate float64       `json:"completed_rate"` // per second
	P50           time.Duration `json:"p50_ms"`
	P99           time.Duration `json:"p99_ms"`
	Max           time.Duration `json:"max_ms"`
	Mean          time.Duration `json:"mean_ms"`
}

// NewIntervalSeries returns a series bucketing events into width-sized
// intervals starting at origin. Latency percentiles per interval use a
// Sketch with relative-error bound alpha (≤ 0 selects DefaultSketchAlpha).
func NewIntervalSeries(origin time.Time, width time.Duration, alpha float64) *IntervalSeries {
	if width <= 0 {
		panic("metrics: interval width must be positive")
	}
	return &IntervalSeries{origin: origin, width: width, alpha: alpha}
}

// Width returns the interval width.
func (is *IntervalSeries) Width() time.Duration { return is.width }

func (is *IntervalSeries) at(t time.Time) *intervalAcc {
	idx := 0
	if d := t.Sub(is.origin); d > 0 {
		idx = int(d / is.width)
	}
	for len(is.rows) <= idx {
		is.rows = append(is.rows, &intervalAcc{sketch: NewSketch(is.alpha)})
	}
	return is.rows[idx]
}

// Offered records one arrival at time t.
func (is *IntervalSeries) Offered(t time.Time) { is.at(t).offered++ }

// Completed records one successful completion at time t with latency d.
func (is *IntervalSeries) Completed(t time.Time, d time.Duration) {
	acc := is.at(t)
	acc.completed++
	acc.sketch.Observe(d)
}

// Failed records one failed request at time t.
func (is *IntervalSeries) Failed(t time.Time) { is.at(t).failed++ }

// ObserveQueue records an instantaneous queue depth at time t; the row
// keeps the peak.
func (is *IntervalSeries) ObserveQueue(t time.Time, depth int64) {
	acc := is.at(t)
	if depth > acc.queuePeak {
		acc.queuePeak = depth
	}
}

// Rows materializes the series, one row per interval from the origin to
// the last interval that saw an event.
func (is *IntervalSeries) Rows() []IntervalRow {
	secs := is.width.Seconds()
	rows := make([]IntervalRow, len(is.rows))
	for i, acc := range is.rows {
		rows[i] = IntervalRow{
			Index:         i,
			Start:         time.Duration(i) * is.width,
			Offered:       acc.offered,
			Completed:     acc.completed,
			Failed:        acc.failed,
			QueuePeak:     acc.queuePeak,
			OfferedRate:   float64(acc.offered) / secs,
			CompletedRate: float64(acc.completed) / secs,
			P50:           acc.sketch.Quantile(0.50),
			P99:           acc.sketch.Quantile(0.99),
			Max:           acc.sketch.Max(),
			Mean:          acc.sketch.Stats().Mean,
		}
	}
	return rows
}

// Totals sums counts across all intervals.
func (is *IntervalSeries) Totals() (offered, completed, failed int64) {
	for _, acc := range is.rows {
		offered += acc.offered
		completed += acc.completed
		failed += acc.failed
	}
	return
}

// Sketch merges every interval's latency sketch into one campaign-wide
// sketch and returns it.
func (is *IntervalSeries) Sketch() *Sketch {
	all := NewSketch(is.alpha)
	for _, acc := range is.rows {
		all.Merge(acc.sketch) //nolint:errcheck // same alpha by construction
	}
	return all
}

// Merge folds other (same origin and width) into is.
func (is *IntervalSeries) Merge(other *IntervalSeries) error {
	if other == nil {
		return nil
	}
	if other.width != is.width || !other.origin.Equal(is.origin) {
		return fmt.Errorf("metrics: interval series mismatch: origin/width differ")
	}
	for i, acc := range other.rows {
		for len(is.rows) <= i {
			is.rows = append(is.rows, &intervalAcc{sketch: NewSketch(is.alpha)})
		}
		dst := is.rows[i]
		dst.offered += acc.offered
		dst.completed += acc.completed
		dst.failed += acc.failed
		if acc.queuePeak > dst.queuePeak {
			dst.queuePeak = acc.queuePeak
		}
		if err := dst.sketch.Merge(acc.sketch); err != nil {
			return err
		}
	}
	return nil
}

// intervalCSVHeader is the stable column order of WriteCSV. Golden-file
// tests pin it; changing it is a breaking change for downstream parsers.
const intervalCSVHeader = "interval,start_s,offered,completed,failed,queue_peak,offered_rate,completed_rate,p50_ms,p99_ms,max_ms,mean_ms\n"

// WriteCSV emits one row per interval with a fixed header and column
// order. Rates are per second; latencies are milliseconds with three
// decimals.
func (is *IntervalSeries) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, intervalCSVHeader); err != nil {
		return err
	}
	for _, r := range is.Rows() {
		_, err := fmt.Fprintf(w, "%d,%.3f,%d,%d,%d,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n",
			r.Index, r.Start.Seconds(), r.Offered, r.Completed, r.Failed, r.QueuePeak,
			r.OfferedRate, r.CompletedRate,
			durMillis(r.P50), durMillis(r.P99), durMillis(r.Max), durMillis(r.Mean))
		if err != nil {
			return err
		}
	}
	return nil
}

// intervalRowJSON mirrors IntervalRow with numeric units resolved
// (seconds/milliseconds as floats) so the JSON is self-describing.
type intervalRowJSON struct {
	Interval      int     `json:"interval"`
	StartS        float64 `json:"start_s"`
	Offered       int64   `json:"offered"`
	Completed     int64   `json:"completed"`
	Failed        int64   `json:"failed"`
	QueuePeak     int64   `json:"queue_peak"`
	OfferedRate   float64 `json:"offered_rate"`
	CompletedRate float64 `json:"completed_rate"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MaxMs         float64 `json:"max_ms"`
	MeanMs        float64 `json:"mean_ms"`
}

// WriteJSON emits the series as an indented JSON array, field order fixed
// by the struct tags.
func (is *IntervalSeries) WriteJSON(w io.Writer) error {
	rows := is.Rows()
	out := make([]intervalRowJSON, len(rows))
	for i, r := range rows {
		out[i] = intervalRowJSON{
			Interval:      r.Index,
			StartS:        round3(r.Start.Seconds()),
			Offered:       r.Offered,
			Completed:     r.Completed,
			Failed:        r.Failed,
			QueuePeak:     r.QueuePeak,
			OfferedRate:   round3(r.OfferedRate),
			CompletedRate: round3(r.CompletedRate),
			P50Ms:         round3(durMillis(r.P50)),
			P99Ms:         round3(durMillis(r.P99)),
			MaxMs:         round3(durMillis(r.Max)),
			MeanMs:        round3(durMillis(r.Mean)),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func durMillis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func round3(f float64) float64 {
	return float64(int64(f*1000+0.5)) / 1000
}

// Package stager implements the data-management layer of the runtime: the
// DataManager of the paper's Fig. 2 plus the agent-side input/output
// stagers. It models the three movement mechanisms the LUCID use cases
// need — intra-platform copies, constant-time links, and wide-area
// (Globus-like) transfers such as the Cell Painting pipeline's ~1.6 TB
// dataset — with bandwidth- and latency-parameterized links, and it keeps
// a registry of staged objects so pipelines can gate on data availability
// ("training ... starting only when sufficient processed data are
// available", §II-A).
package stager

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/spec"
)

// Link models one storage path (e.g. "delta" → "frontier", or local disk).
type Link struct {
	// BytesPerSec is the sustained transfer bandwidth.
	BytesPerSec float64
	// Latency is the per-operation setup cost (negotiation, metadata).
	Latency rng.DurationDist
}

// Manager is the DataManager: it owns link profiles and the staged-object
// registry. All methods are safe for concurrent use.
type Manager struct {
	clock simtime.Clock
	src   *rng.Source

	mu      sync.Mutex
	links   map[string]Link // key "src→dst" platform pair, or "*" default
	objects map[string]Object
	waiters []objWaiter
}

// Object records one staged data object.
type Object struct {
	URI      string
	Bytes    int64
	StagedAt time.Time
}

type objWaiter struct {
	prefix   string
	minBytes int64
	ch       chan struct{}
}

// DefaultLocalBandwidth is used for copies when no link matches
// (node-local NVMe-class storage).
const DefaultLocalBandwidth = 2e9 // 2 GB/s

// DefaultWANBandwidth approximates a Globus transfer over a production
// WAN.
const DefaultWANBandwidth = 1.25e9 // 10 Gb/s

// NewManager returns a Manager with sensible default links.
func NewManager(clock simtime.Clock, src *rng.Source) *Manager {
	return &Manager{
		clock:   clock,
		src:     src,
		links:   make(map[string]Link),
		objects: make(map[string]Object),
	}
}

// SetLink registers the link used for transfers from platform src to dst.
// Use "*" for either side as a wildcard.
func (m *Manager) SetLink(src, dst string, link Link) {
	m.mu.Lock()
	m.links[src+"→"+dst] = link
	m.mu.Unlock()
}

// linkFor resolves the most specific link for a platform pair.
func (m *Manager) linkFor(src, dst string) (Link, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, key := range []string{src + "→" + dst, src + "→*", "*→" + dst, "*→*"} {
		if l, ok := m.links[key]; ok {
			return l, true
		}
	}
	return Link{}, false
}

// SplitURI parses "platform:/path" into its parts. URIs without a platform
// prefix belong to the local platform "".
func SplitURI(uri string) (platform, path string) {
	if i := strings.Index(uri, ":/"); i >= 0 {
		return uri[:i], uri[i+1:]
	}
	return "", uri
}

// Stage executes one directive, blocking for the modelled duration, and
// registers the target object. It returns the time spent.
func (m *Manager) Stage(d spec.StagingDirective) (time.Duration, error) {
	if err := d.Validate(); err != nil {
		return 0, fmt.Errorf("stager: %w", err)
	}
	srcPlat, _ := SplitURI(d.Source)
	dstPlat, _ := SplitURI(d.Target)

	var dur time.Duration
	switch d.Mode {
	case spec.StageLink:
		dur = time.Millisecond // constant-time metadata operation
	case spec.StageCopy, spec.StageTransfer:
		link, ok := m.linkFor(srcPlat, dstPlat)
		if !ok {
			bw := DefaultLocalBandwidth
			if d.Mode == spec.StageTransfer || srcPlat != dstPlat {
				bw = DefaultWANBandwidth
			}
			link = Link{BytesPerSec: bw, Latency: rng.ConstDuration(50 * time.Millisecond)}
		}
		dur = link.Latency.Sample(m.src)
		if link.BytesPerSec > 0 && d.Bytes > 0 {
			dur += time.Duration(float64(d.Bytes) / link.BytesPerSec * float64(time.Second))
		}
	}
	if dur > 0 {
		m.clock.Sleep(dur)
	}
	m.register(Object{URI: d.Target, Bytes: d.Bytes, StagedAt: m.clock.Now()})
	return dur, nil
}

// StageAll executes directives sequentially (input staging order matters:
// later directives may depend on earlier ones). It returns the total time.
func (m *Manager) StageAll(ds []spec.StagingDirective) (time.Duration, error) {
	var total time.Duration
	for _, d := range ds {
		dur, err := m.Stage(d)
		total += dur
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func (m *Manager) register(obj Object) {
	m.mu.Lock()
	m.objects[obj.URI] = obj
	// wake waiters whose predicate now holds
	var keep []objWaiter
	for _, w := range m.waiters {
		if m.bytesUnderLocked(w.prefix) >= w.minBytes {
			close(w.ch)
		} else {
			keep = append(keep, w)
		}
	}
	m.waiters = keep
	m.mu.Unlock()
}

// Lookup returns the staged object at uri.
func (m *Manager) Lookup(uri string) (Object, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.objects[uri]
	return o, ok
}

// Objects returns all staged objects sorted by URI.
func (m *Manager) Objects() []Object {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Object, 0, len(m.objects))
	for _, o := range m.objects {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URI < out[j].URI })
	return out
}

func (m *Manager) bytesUnderLocked(prefix string) int64 {
	var total int64
	for uri, o := range m.objects {
		if strings.HasPrefix(uri, prefix) {
			total += o.Bytes
		}
	}
	return total
}

// BytesUnder sums the sizes of staged objects whose URI has the prefix.
func (m *Manager) BytesUnder(prefix string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytesUnderLocked(prefix)
}

// WaitBytes returns a channel closed once at least minBytes of data are
// staged under prefix — the §II-A gate "training ... starting only when
// sufficient processed data are available". The channel is closed
// immediately if the predicate already holds.
func (m *Manager) WaitBytes(prefix string, minBytes int64) <-chan struct{} {
	ch := make(chan struct{})
	m.mu.Lock()
	if m.bytesUnderLocked(prefix) >= minBytes {
		close(ch)
	} else {
		m.waiters = append(m.waiters, objWaiter{prefix: prefix, minBytes: minBytes, ch: ch})
	}
	m.mu.Unlock()
	return ch
}

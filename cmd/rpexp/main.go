// Command rpexp regenerates the paper's tables and figures: Table I (use
// cases), Table II (experiment setup), Fig. 3 (Exp 1, bootstrap-time
// scaling), Figs. 4/5 (Exp 2, local/remote NOOP response time) and Fig. 6
// (Exp 3, llama inference time) — plus the fragmentation ablation on a
// heterogeneous (mixed node shape) pilot, which the paper's homogeneous
// testbeds cannot exhibit.
//
// Usage:
//
//	rpexp -exp all
//	rpexp -exp 1 -counts 1,8,64,320,640
//	rpexp -exp 2 -deploy remote -scaling weak
//	rpexp -exp 3 -deploy local -requests 4
//	rpexp -exp frag -platform hetero -sched best-fit
//	rpexp -exp frag -churn
//	rpexp -exp route -platform hetero
//	rpexp -exp route -router capacity-fit
//	rpexp -exp svcfail -platform hetero
//	rpexp -exp crashrec
//	rpexp -exp load -scenarios steady,churn
//	rpexp -exp scale
//	rpexp -exp hotspot -balance p2c,round-robin
//	rpexp -exp xproc
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/router"
	"repro/internal/scheduler"
	"repro/internal/usecases"
	"repro/internal/xproc"
)

func main() {
	// When re-executed as a pilot agent (RPPILOT_AGENT set), become one
	// before anything else; never returns in that case.
	xproc.MaybeRunAgent()

	exp := flag.String("exp", "all", "experiment: 1|2|3|frag|route|svcfail|crashrec|load|scale|hotspot|xproc|table1|table2|all")
	deploy := flag.String("deploy", "both", "deployment for exp 2/3: local|remote|both")
	scaling := flag.String("scaling", "both", "scaling for exp 2/3: strong|weak|both")
	counts := flag.String("counts", "", "comma-separated instance counts for exp 1 (default: paper sweep)")
	requests := flag.Int("requests", 0, "requests per client (default: paper values)")
	seed := flag.Uint64("seed", 0, "override RNG seed (0: per-experiment defaults)")
	sched := flag.String("sched", "", "pilot scheduling policy: strict|backfill[:k=N,t=D]|best-fit[:k=N,t=D] (default strict)")
	rt := flag.String("router", "", "session task router: round-robin|least-loaded|capacity-fit, optionally +retry (default round-robin; for -exp route it selects the single challenger row)")
	plat := flag.String("platform", "hetero", "mixed-shape platform for the frag/route ablations")
	churn := flag.Bool("churn", false, "steady-state fragmentation ablation: transient holders + arrival waves")
	scenarios := flag.String("scenarios", "", "comma-separated scenario name filter for -exp load (default: full catalog)")
	balance := flag.String("balance", "", "comma-separated picker list for -exp hotspot: p2c|round-robin|least-loaded (default: all three)")
	flag.Parse()

	if _, err := scheduler.PolicyByName(*sched); err != nil {
		fmt.Fprintf(os.Stderr, "rpexp: %v\n", err)
		os.Exit(2)
	}
	if _, err := router.ByName(*rt); err != nil {
		fmt.Fprintf(os.Stderr, "rpexp: %v\n", err)
		os.Exit(2)
	}

	ctx := context.Background()
	run := func(name string, fn func() error) {
		fmt.Printf("== %s ==\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "rpexp: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	want := func(s string) bool { return *exp == "all" || *exp == s }

	if want("table1") {
		run("Table I", func() error {
			fmt.Print(usecases.TableI().Render())
			return nil
		})
	}
	if want("table2") {
		run("Table II", func() error {
			fmt.Print(experiments.TableII().Render())
			return nil
		})
	}
	if want("1") {
		run("Experiment 1 (Fig. 3)", func() error {
			cfg := experiments.DefaultBTConfig()
			if *counts != "" {
				cfg.Counts = parseCounts(*counts)
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			cfg.SchedPolicy = *sched
			cfg.Router = *rt
			res, err := experiments.RunBT(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(res.Table().Render())
			return nil
		})
	}
	deployments := func() []experiments.Deployment {
		switch *deploy {
		case "local":
			return []experiments.Deployment{experiments.DeployLocal}
		case "remote":
			return []experiments.Deployment{experiments.DeployRemote}
		default:
			return []experiments.Deployment{experiments.DeployLocal, experiments.DeployRemote}
		}
	}
	scalings := func() []experiments.Scaling {
		switch *scaling {
		case "strong":
			return []experiments.Scaling{experiments.ScalingStrong}
		case "weak":
			return []experiments.Scaling{experiments.ScalingWeak}
		default:
			return []experiments.Scaling{experiments.ScalingStrong, experiments.ScalingWeak}
		}
	}
	if want("frag") {
		run("Fragmentation ablation (heterogeneous pilot)", func() error {
			cfg := experiments.DefaultFragConfig()
			cfg.Platform = *plat
			cfg.Churn = *churn
			if *sched != "" {
				cfg.Policy = *sched
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			res, err := experiments.RunFrag(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(res.Table().Render())
			return nil
		})
	}
	if want("route") {
		run("Route ablation (mismatched pilots)", func() error {
			cfg := experiments.DefaultRouteConfig()
			cfg.Platform = *plat
			if *rt != "" {
				cfg.Routers = []string{"round-robin", *rt}
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			res, err := experiments.RunRoute(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(res.Table().Render())
			return nil
		})
	}
	if want("svcfail") {
		run("Service-failover ablation (endpoint registry)", func() error {
			cfg := experiments.DefaultSvcFailConfig()
			cfg.Platform = *plat
			if *requests > 0 {
				cfg.Requests = *requests
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			res, err := experiments.RunSvcFail(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(res.Table().Render())
			return nil
		})
	}
	if want("load") {
		run("Load matrix (open-loop campaigns on the virtual clock)", func() error {
			cfg := experiments.DefaultLoadConfig()
			cfg.ScenarioFilter = *scenarios
			if *requests > 0 {
				cfg.Requests = *requests
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			res, err := experiments.RunLoad(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(res.Table().Render())
			return nil
		})
	}
	if want("scale") {
		run("Serving scalability (batching + replica autoscaling)", func() error {
			cfg := experiments.DefaultScaleConfig()
			if *requests > 0 {
				cfg.Requests = *requests
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			res, err := experiments.RunScale(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(res.Table().Render())
			return nil
		})
	}
	if want("hotspot") {
		run("Hotspot-balancing ablation (p2c vs blind vs full-scan)", func() error {
			cfg := experiments.DefaultHotspotConfig()
			if *balance != "" {
				cfg.Balancers = nil
				for _, b := range strings.Split(*balance, ",") {
					if b = strings.TrimSpace(b); b != "" {
						cfg.Balancers = append(cfg.Balancers, b)
					}
				}
			}
			if *requests > 0 {
				cfg.Requests = *requests
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			res, err := experiments.RunHotspot(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(res.Table().Render())
			fmt.Print(res.FailoverTable().Render())
			return nil
		})
	}
	if want("xproc") {
		run("Cross-process ablation (pilots as OS processes over TCP)", func() error {
			cfg := experiments.DefaultXprocConfig()
			cfg.Platform = *plat
			if *requests > 0 {
				cfg.Requests = *requests
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			res, err := experiments.RunXproc(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(res.RouteTable().Render())
			fmt.Print(res.SvcFailTable().Render())
			return nil
		})
	}
	if want("crashrec") {
		run("Crash-recovery ablation (write-ahead journal)", func() error {
			cfg := experiments.DefaultCrashRecConfig()
			if *seed != 0 {
				cfg.Seed = *seed
			}
			res, err := experiments.RunCrashRec(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(res.Table().Render())
			return nil
		})
	}
	if want("2") {
		for _, d := range deployments() {
			for _, sc := range scalings() {
				d, sc := d, sc
				run(fmt.Sprintf("Experiment 2 (%s, %s)", d, sc), func() error {
					cfg := experiments.DefaultExp2Config(d, sc)
					if *requests > 0 {
						cfg.RequestsPerClient = *requests
					}
					if *seed != 0 {
						cfg.Seed = *seed
					}
					cfg.SchedPolicy = *sched
					cfg.Router = *rt
					res, err := experiments.RunRT(ctx, cfg)
					if err != nil {
						return err
					}
					fmt.Print(res.Table().Render())
					return nil
				})
			}
		}
	}
	if want("3") {
		for _, d := range deployments() {
			for _, sc := range scalings() {
				d, sc := d, sc
				run(fmt.Sprintf("Experiment 3 (%s, %s)", d, sc), func() error {
					cfg := experiments.DefaultExp3Config(d, sc)
					if *requests > 0 {
						cfg.RequestsPerClient = *requests
					}
					if *seed != 0 {
						cfg.Seed = *seed
					}
					cfg.SchedPolicy = *sched
					cfg.Router = *rt
					res, err := experiments.RunRT(ctx, cfg)
					if err != nil {
						return err
					}
					fmt.Print(res.Table().Render())
					return nil
				})
			}
		}
	}
}

func parseCounts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "rpexp: bad count %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

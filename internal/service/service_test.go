package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/executor"
	"repro/internal/metrics"
	"repro/internal/msgq"
	"repro/internal/platform"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/stager"
	"repro/internal/states"
)

var origin = time.Date(2025, 3, 17, 0, 0, 0, 0, time.UTC)

// rig assembles a single-pilot agent environment on a scaled clock.
type rig struct {
	clock simtime.Clock
	src   *rng.Source
	net   *msgq.Network
	sched *scheduler.Scheduler
	rtr   *scheduler.Router
	exec  *executor.Executor
	reg   *Registry
	mgr   *Manager
	plat  *platform.Platform
}

func newRig(t *testing.T, scale float64) *rig {
	t.Helper()
	clock := simtime.NewScaled(scale, origin)
	src := rng.New(7)
	plat := platform.NewDelta()
	topo := platform.NewTopology(plat)
	net := msgq.NewNetwork(clock, src.Derive("net"), topo.Resolver())
	rtr := scheduler.NewRouter()
	sched := scheduler.New(plat.Nodes(), func(p scheduler.Placement) { rtr.Route(p) })
	exec := executor.New(clock, src.Derive("exec"), plat.Launch)
	reg := NewRegistry(clock, src.Derive("reg"), rng.DurationDist{})
	mgr, err := NewManager(Config{
		Clock: clock, Src: src.Derive("mgr"), Net: net,
		Sched: sched, Router: rtr, Exec: exec,
		Stage: stager.NewManager(clock, src.Derive("stage")), Registry: reg,
		Platform: plat.Name(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		mgr.Close()
		sched.Close()
		net.Close()
	})
	return &rig{clock: clock, src: src, net: net, sched: sched, rtr: rtr,
		exec: exec, reg: reg, mgr: mgr, plat: plat}
}

func llamaDesc(name string) spec.ServiceDescription {
	return spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: name, GPUs: 1},
		Model:           "llama-8b",
	}
}

func noopDesc(name string) spec.ServiceDescription {
	return spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: name, Cores: 1},
		Model:           "noop",
	}
}

func waitReady(t *testing.T, r *rig, uids ...string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.mgr.WaitReady(ctx, uids...); err != nil {
		t.Fatal(err)
	}
}

func TestManagerConfigValidation(t *testing.T) {
	if _, err := NewManager(Config{}); err == nil {
		t.Fatal("NewManager accepted empty config")
	}
}

func TestSubmitRejectsInvalidDescription(t *testing.T) {
	r := newRig(t, 100000)
	if _, err := r.mgr.Submit(spec.ServiceDescription{}); err == nil {
		t.Fatal("Submit accepted empty description")
	}
	if _, err := r.mgr.Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "x", GPUs: 1},
		Model:           "unknown-model",
	}); err != nil {
		t.Fatal("model existence must be checked at bootstrap, not submit:", err)
	}
}

func TestServiceBootstrapLifecycle(t *testing.T) {
	r := newRig(t, 100000)
	inst, err := r.mgr.Submit(llamaDesc("svc"))
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, r, inst.UID())
	if inst.State() != states.ServiceActive {
		t.Fatalf("state = %s", inst.State())
	}
	ep := inst.Endpoint()
	if ep.Model != "llama-8b" || ep.Address == "" || ep.Node == "" {
		t.Fatalf("endpoint = %+v", ep)
	}
	if _, ok := r.reg.Lookup(inst.UID()); !ok {
		t.Fatal("endpoint not in registry")
	}
}

func TestBootstrapBreakdownShape(t *testing.T) {
	// Fig. 3: init (model load, tens of seconds) dominates launch (~2s),
	// and publish stays below launch.
	r := newRig(t, 100000)
	inst, _ := r.mgr.Submit(llamaDesc("svc"))
	waitReady(t, r, inst.UID())
	bt := inst.Bootstrap()
	launch := bt.Components["launch"]
	init := bt.Components["init"]
	publish := bt.Components["publish"]
	if init <= launch {
		t.Fatalf("init (%v) must dominate launch (%v)", init, launch)
	}
	if publish >= launch {
		t.Fatalf("publish (%v) must stay below launch (%v)", publish, launch)
	}
	if init < 10*time.Second {
		t.Fatalf("init = %v, implausible for llama-8b", init)
	}
}

func TestBootstrapStateTimestampsConsistent(t *testing.T) {
	// low scale: real scheduling skew between state transitions (which can
	// reach tens of ms under full-suite CPU contention) must stay well
	// below the tolerance once amplified by the clock factor
	r := newRig(t, 200)
	inst, _ := r.mgr.Submit(llamaDesc("svc"))
	waitReady(t, r, inst.UID())
	m := inst.machine
	d, ok := m.Between(states.ServiceInitializing, states.ServicePublishing)
	if !ok {
		t.Fatal("missing state history")
	}
	// state-derived init duration must match the measured server load time
	// within clock skew
	bt := inst.Bootstrap()
	diff := d - bt.Components["init"]
	if diff < 0 {
		diff = -diff
	}
	if diff > 5*time.Second {
		t.Fatalf("state-derived init %v vs measured %v", d, bt.Components["init"])
	}
}

func TestUIDAssignmentUnique(t *testing.T) {
	r := newRig(t, 100000)
	a, _ := r.mgr.Submit(noopDesc("a"))
	b, _ := r.mgr.Submit(noopDesc("b"))
	if a.UID() == b.UID() || a.UID() == "" {
		t.Fatalf("UIDs = %q/%q", a.UID(), b.UID())
	}
}

func TestPriorityDefaulted(t *testing.T) {
	r := newRig(t, 100000)
	inst, _ := r.mgr.Submit(noopDesc("a"))
	if inst.Description().Priority != spec.ServicePriority {
		t.Fatalf("priority = %d, want %d", inst.Description().Priority, spec.ServicePriority)
	}
}

func TestInferenceRoundTripThroughEndpoint(t *testing.T) {
	r := newRig(t, 1000)
	inst, _ := r.mgr.Submit(llamaDesc("svc"))
	waitReady(t, r, inst.UID())
	c, err := Dial(r.net, r.clock, platform.Addr("delta", "", "client.0001"), inst.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, rt, err := c.Infer(context.Background(), "what pathways respond to low-dose radiation", 128)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Model != "llama-8b" || reply.OutputTokens < 1 {
		t.Fatalf("reply = %+v", reply)
	}
	if rt.Components["inference"] <= 0 {
		t.Fatal("no inference component measured")
	}
	// Fig. 6: inference dominates for a real model
	if rt.Components["inference"] < rt.Components["communication"] {
		t.Fatalf("inference %v below communication %v", rt.Components["inference"], rt.Components["communication"])
	}
}

func TestNoopRTCommunicationDominates(t *testing.T) {
	// Exp 2 (Fig. 4): for NOOP inference, communication dominates the
	// response time. Run near real time so sub-millisecond latencies are
	// resolvable.
	r := newRig(t, 10)
	inst, _ := r.mgr.Submit(noopDesc("svc"))
	waitReady(t, r, inst.UID())
	c, err := Dial(r.net, r.clock, platform.Addr("delta", "delta-node0003", "client.0001"), inst.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	agg := metrics.NewCollector()
	for i := 0; i < 20; i++ {
		_, rt, err := c.Infer(context.Background(), "noop", 0)
		if err != nil {
			t.Fatal(err)
		}
		agg.AddAll("rt", rt.Components)
	}
	comm := agg.Stats("rt.communication").Mean
	infer := agg.Stats("rt.inference").Mean
	if comm <= infer {
		t.Fatalf("communication (%v) must dominate noop inference (%v)", comm, infer)
	}
}

func TestRegistryByModel(t *testing.T) {
	r := newRig(t, 100000)
	a, _ := r.mgr.Submit(noopDesc("a"))
	b, _ := r.mgr.Submit(noopDesc("b"))
	l, _ := r.mgr.Submit(llamaDesc("l"))
	waitReady(t, r, a.UID(), b.UID(), l.UID())
	noops := r.reg.ByModel("noop")
	if len(noops) != 2 {
		t.Fatalf("ByModel(noop) = %d endpoints", len(noops))
	}
	if len(r.reg.All()) != 3 {
		t.Fatalf("All = %d", len(r.reg.All()))
	}
	// deterministic order
	if noops[0].ServiceUID > noops[1].ServiceUID {
		t.Fatal("ByModel not sorted")
	}
}

func TestControlPing(t *testing.T) {
	r := newRig(t, 100000)
	inst, _ := r.mgr.Submit(noopDesc("svc"))
	waitReady(t, r, inst.UID())
	conn, err := r.net.Dial("probe", inst.Endpoint().Address+".ctl")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	env, _ := proto.NewEnvelope(proto.KindControl, 1, "probe", inst.UID(), r.clock.Now(),
		proto.Control{Command: proto.CtlPing, Target: inst.UID()})
	out, err := conn.Request(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	var hb proto.Heartbeat
	if err := out.Decode(proto.KindHeartbeat, &hb); err != nil {
		t.Fatalf("ping reply not a heartbeat: %v (%+v)", err, out)
	}
	if hb.ServiceUID != inst.UID() {
		t.Fatalf("heartbeat = %+v", hb)
	}
}

func TestTerminateDrain(t *testing.T) {
	r := newRig(t, 100000)
	inst, _ := r.mgr.Submit(noopDesc("svc"))
	waitReady(t, r, inst.UID())
	if err := r.mgr.Terminate(inst.UID(), true); err != nil {
		t.Fatal(err)
	}
	if inst.State() != states.ServiceDone {
		t.Fatalf("state after drain = %s", inst.State())
	}
	if _, ok := r.reg.Lookup(inst.UID()); ok {
		t.Fatal("endpoint still registered after terminate")
	}
	if err := r.mgr.Terminate(inst.UID(), true); !errors.Is(err, ErrNotActive) {
		t.Fatalf("double terminate = %v", err)
	}
}

func TestTerminateReleasesResources(t *testing.T) {
	r := newRig(t, 100000)
	free := r.plat.FreeGPUs()
	inst, _ := r.mgr.Submit(llamaDesc("svc"))
	waitReady(t, r, inst.UID())
	if r.plat.FreeGPUs() != free-1 {
		t.Fatalf("GPU not allocated: %d", r.plat.FreeGPUs())
	}
	_ = r.mgr.Terminate(inst.UID(), false)
	if r.plat.FreeGPUs() != free {
		t.Fatalf("GPU leaked after terminate: %d", r.plat.FreeGPUs())
	}
}

func TestTerminateUnknown(t *testing.T) {
	r := newRig(t, 100000)
	if err := r.mgr.Terminate("service.9999", false); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("err = %v", err)
	}
}

func TestBootstrapFailsOnUnknownModel(t *testing.T) {
	r := newRig(t, 100000)
	inst, err := r.mgr.Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "bad", Cores: 1},
		Model:           "gpt-99",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.mgr.WaitReady(ctx, inst.UID()); err == nil {
		t.Fatal("WaitReady succeeded for unknown model")
	}
	if inst.State() != states.ServiceFailed {
		t.Fatalf("state = %s, want FAILED", inst.State())
	}
}

func TestBootstrapFailureReleasesResources(t *testing.T) {
	r := newRig(t, 100000)
	free := r.plat.FreeCores()
	inst, _ := r.mgr.Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "bad", Cores: 2},
		Model:           "gpt-99",
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = r.mgr.WaitReady(ctx, inst.UID())
	// allocation must be returned
	deadline := time.Now().Add(2 * time.Second)
	for r.plat.FreeCores() != free && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if r.plat.FreeCores() != free {
		t.Fatalf("cores leaked after failed bootstrap: %d != %d", r.plat.FreeCores(), free)
	}
}

func TestUnsatisfiableServiceFails(t *testing.T) {
	r := newRig(t, 100000)
	inst, _ := r.mgr.Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "huge", GPUs: 100},
		Model:           "noop",
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.mgr.WaitReady(ctx, inst.UID()); err == nil {
		t.Fatal("unsatisfiable service became ready")
	}
}

func TestLivenessProbeDetectsKill(t *testing.T) {
	r := newRig(t, 100000)
	d := noopDesc("victim")
	d.ProbeInterval = 2 * time.Second // ~20µs real at this scale
	inst, _ := r.mgr.Submit(d)
	waitReady(t, r, inst.UID())
	inst.Kill()
	deadline := time.Now().Add(5 * time.Second)
	for inst.State() != states.ServiceFailed && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if inst.State() != states.ServiceFailed {
		t.Fatalf("state = %s, want FAILED after kill", inst.State())
	}
	if _, ok := r.reg.Lookup(inst.UID()); ok {
		t.Fatal("killed service still registered")
	}
}

func TestConcurrentServiceHandlesParallelRequests(t *testing.T) {
	// the paper's future-work configuration: a service with Concurrency=4
	// must show near-zero queue time for 4 simultaneous clients, where the
	// single-threaded default serializes them
	r := newRig(t, 1000)
	single := llamaDesc("single")
	multi := llamaDesc("multi")
	multi.Concurrency = 4
	a, _ := r.mgr.Submit(single)
	b, _ := r.mgr.Submit(multi)
	waitReady(t, r, a.UID(), b.UID())

	run := func(uid string) time.Duration {
		ep, _ := r.reg.Lookup(uid)
		var wg sync.WaitGroup
		var mu sync.Mutex
		var maxQ time.Duration
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cl, err := Dial(r.net, r.clock, "delta//cc-client", ep)
				if err != nil {
					t.Error(err)
					return
				}
				defer cl.Close()
				reply, _, err := cl.Infer(context.Background(), "p", 256)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if q := reply.Timing.QueueTime(); q > maxQ {
					maxQ = q
				}
				mu.Unlock()
			}()
		}
		wg.Wait()
		return maxQ
	}
	qSingle := run(a.UID())
	qMulti := run(b.UID())
	if qMulti >= qSingle {
		t.Fatalf("concurrency=4 queued %v, single-threaded %v — no improvement", qMulti, qSingle)
	}
}

func TestServiceQueueCapThroughManager(t *testing.T) {
	r := newRig(t, 1000)
	d := llamaDesc("tiny-queue")
	d.QueueCap = 1
	inst, _ := r.mgr.Submit(d)
	waitReady(t, r, inst.UID())
	ep, _ := r.reg.Lookup(inst.UID())
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(r.net, r.clock, "delta//qc-client", ep)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			_, _, err = cl.Infer(context.Background(), "p", 1024)
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	rejected := 0
	for err := range errs {
		if err != nil {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("no request rejected despite QueueCap=1 under 8-way burst")
	}
}

func TestWaitReadyUnknownUID(t *testing.T) {
	r := newRig(t, 100000)
	err := r.mgr.WaitReady(context.Background(), "service.404")
	if !errors.Is(err, ErrUnknownService) {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentServiceBootstrap(t *testing.T) {
	// Exp 1 in miniature: 8 concurrent llama services on Delta (16 GPUs)
	r := newRig(t, 200000)
	const n = 8
	uids := make([]string, n)
	for i := 0; i < n; i++ {
		inst, err := r.mgr.Submit(llamaDesc("svc"))
		if err != nil {
			t.Fatal(err)
		}
		uids[i] = inst.UID()
	}
	waitReady(t, r, uids...)
	for _, uid := range uids {
		inst, _ := r.mgr.Get(uid)
		if inst.State() != states.ServiceActive {
			t.Fatalf("%s state = %s", uid, inst.State())
		}
	}
	if got := len(r.reg.All()); got != n {
		t.Fatalf("registry has %d endpoints, want %d", got, n)
	}
}

func TestServicesStartBeforeTasks(t *testing.T) {
	// Submit a burst of compute tasks and then a service onto a saturated
	// scheduler: the service's raised priority must place it before the
	// queued tasks once resources free.
	r := newRig(t, 100000)
	var placedOrder []string
	var mu sync.Mutex
	// occupy all 16 GPUs with tasks, then queue 8 more tasks and 1 service
	taskPlaced := make(chan scheduler.Placement, 64)
	routeAll := func(p scheduler.Placement) {
		mu.Lock()
		placedOrder = append(placedOrder, p.Req.UID)
		mu.Unlock()
		if !r.rtr.Route(p) {
			taskPlaced <- p
		}
	}
	// swap the scheduler: build a dedicated one for this test
	sched := scheduler.New(r.plat.Nodes(), routeAll)
	defer sched.Close()
	for i := 0; i < 16; i++ {
		_ = sched.Submit(scheduler.Request{UID: fmt18("hold", i), GPUs: 1})
	}
	var holds []scheduler.Placement
	for i := 0; i < 16; i++ {
		holds = append(holds, <-taskPlaced)
	}
	for i := 0; i < 8; i++ {
		_ = sched.Submit(scheduler.Request{UID: fmt18("task", i), GPUs: 1, Priority: 0})
	}
	_ = sched.Submit(scheduler.Request{UID: "service.X", GPUs: 1, Priority: spec.ServicePriority})
	// release one GPU → the service must be placed next
	sched.Release(holds[0].Alloc)
	next := <-taskPlaced
	if next.Req.UID != "service.X" {
		t.Fatalf("placed %q first after release, want service.X", next.Req.UID)
	}
}

func fmt18(prefix string, i int) string { return prefix + "." + string(rune('a'+i)) }

package bio

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestGenerateVCFDeterministic(t *testing.T) {
	a := GenerateVCF(rng.New(1), 100, 0.3)
	b := GenerateVCF(rng.New(1), 100, 0.3)
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("variant %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateVCFWellFormed(t *testing.T) {
	for _, v := range GenerateVCF(rng.New(2), 500, 0.5) {
		if v.Ref == v.Alt {
			t.Fatalf("ref == alt in %+v", v)
		}
		if !strings.HasPrefix(v.Chrom, "chr") || v.Pos < 1 {
			t.Fatalf("malformed variant %+v", v)
		}
		if v.Qual < 30 || v.Qual > 70 {
			t.Fatalf("quality out of band: %+v", v)
		}
	}
}

func TestDoseBiasesHotspots(t *testing.T) {
	lowDose := GenerateVCF(rng.New(3), 2000, 0.0)
	highDose := GenerateVCF(rng.New(3), 2000, 0.8)
	count := func(vs []Variant) int {
		n := 0
		for _, v := range vs {
			if v.Chrom == "chr1" && v.Pos < 25_000 {
				n++
			}
		}
		return n
	}
	lo, hi := count(lowDose), count(highDose)
	if hi < 3*lo {
		t.Fatalf("hotspot hits low=%d high=%d, want strong dose bias", lo, hi)
	}
}

func TestGeneModelMapping(t *testing.T) {
	m := NewGeneModel(100)
	if len(m.Genes()) != 100 {
		t.Fatalf("genes = %d", len(m.Genes()))
	}
	// deterministic and stable
	if m.GeneAt("chr1", 12345) != m.GeneAt("chr1", 12345) {
		t.Fatal("GeneAt not deterministic")
	}
	// nearby positions within the same kb share a gene
	if m.GeneAt("chr1", 1000) != m.GeneAt("chr1", 1999) {
		t.Fatal("kb-binning broken")
	}
	// default size
	if got := len(NewGeneModel(0).Genes()); got != 500 {
		t.Fatalf("default genes = %d", got)
	}
}

func TestAnnotateCoversAllVariants(t *testing.T) {
	m := NewGeneModel(200)
	src := rng.New(4)
	variants := GenerateVCF(src, 300, 0.2)
	anns := Annotate(m, src, variants)
	if len(anns) != 300 {
		t.Fatalf("annotations = %d", len(anns))
	}
	impacts := map[string]int{}
	for _, a := range anns {
		if a.Gene == "" || a.Consequence == "" {
			t.Fatalf("incomplete annotation %+v", a)
		}
		impacts[a.Impact]++
	}
	// the weighted consequence distribution must produce a spread
	if len(impacts) < 3 {
		t.Fatalf("impact classes = %v, want >= 3", impacts)
	}
	if impacts["MODIFIER"] == 0 {
		t.Fatal("no non-coding annotations drawn")
	}
}

func TestGeneHitsExcludesModifiers(t *testing.T) {
	anns := []Annotation{
		{Gene: "A", Impact: "HIGH"},
		{Gene: "A", Impact: "MODIFIER"},
		{Gene: "B", Impact: "LOW"},
	}
	hits := GeneHits(anns)
	if hits["A"] != 1 || hits["B"] != 1 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestEnrichDetectsRadiationPathwayAtHighDose(t *testing.T) {
	// end-to-end signal check: at high dose, the radiation-response
	// pathway (hotspot genes) must rank near the top of the enrichment
	m := NewGeneModel(500)
	src := rng.New(5)
	pathways := SyntheticPathways(m, src.Derive("pw"), 20, 25)
	variants := GenerateVCF(src.Derive("vcf"), 400, 0.7)
	anns := Annotate(m, src.Derive("ann"), variants)
	enr := Enrich(m, GeneHits(anns), pathways)
	if len(enr) != 20 {
		t.Fatalf("enrichments = %d", len(enr))
	}
	rank := -1
	for i, e := range enr {
		if e.Pathway == "radiation-response" {
			rank = i
		}
	}
	if rank == -1 || rank > 2 {
		t.Fatalf("radiation-response ranked %d, want top-3: %+v", rank, enr[:3])
	}
	if enr[0].PValue > enr[len(enr)-1].PValue {
		t.Fatal("enrichments not sorted by p-value")
	}
}

func TestEnrichNoSignalAtZeroDose(t *testing.T) {
	m := NewGeneModel(500)
	src := rng.New(6)
	pathways := SyntheticPathways(m, src.Derive("pw"), 20, 25)
	variants := GenerateVCF(src.Derive("vcf"), 400, 0.0)
	anns := Annotate(m, src.Derive("ann"), variants)
	enr := Enrich(m, GeneHits(anns), pathways)
	for _, e := range enr {
		if e.Pathway == "radiation-response" && e.PValue < 1e-6 {
			t.Fatalf("spurious strong signal at zero dose: p=%g", e.PValue)
		}
	}
}

func TestHypergeomTailProperties(t *testing.T) {
	// P(X >= 0) == 1; monotone decreasing in k; bounded in [0,1]
	if p := hypergeomTail(100, 20, 30, 0); p != 1 {
		t.Fatalf("tail at 0 = %v", p)
	}
	prev := 1.1
	for k := 0; k <= 20; k++ {
		p := hypergeomTail(100, 20, 30, k)
		if p < 0 || p > 1 {
			t.Fatalf("tail(%d) = %v out of [0,1]", k, p)
		}
		if p > prev+1e-12 {
			t.Fatalf("tail not monotone at k=%d: %v > %v", k, p, prev)
		}
		prev = p
	}
}

func TestFitDoseResponseRecoversSlope(t *testing.T) {
	points := []DosePoint{}
	for d := 0.0; d <= 2.0; d += 0.25 {
		points = append(points, DosePoint{Dose: d, Response: 3*d + 1})
	}
	fit, err := FitDoseResponse(points)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-3) > 1e-9 || math.Abs(fit.Intercept-1) > 1e-9 {
		t.Fatalf("fit = %+v, want slope 3 intercept 1", fit)
	}
	if fit.R2 < 0.999 {
		t.Fatalf("R2 = %v for exact line", fit.R2)
	}
}

func TestFitDoseResponseErrors(t *testing.T) {
	if _, err := FitDoseResponse(nil); err == nil {
		t.Fatal("accepted empty input")
	}
	same := []DosePoint{{Dose: 1, Response: 2}, {Dose: 1, Response: 3}}
	if _, err := FitDoseResponse(same); err == nil {
		t.Fatal("accepted degenerate design")
	}
}

func TestFitDoseResponseProperty(t *testing.T) {
	// Property: for any non-degenerate linear data, the fit recovers the
	// generating slope within numerical tolerance.
	f := func(slopeRaw, interceptRaw int8) bool {
		slope := float64(slopeRaw) / 8
		intercept := float64(interceptRaw) / 4
		var pts []DosePoint
		for d := 0.0; d < 3; d += 0.5 {
			pts = append(pts, DosePoint{Dose: d, Response: slope*d + intercept})
		}
		fit, err := FitDoseResponse(pts)
		if err != nil {
			return false
		}
		return math.Abs(fit.Slope-slope) < 1e-6 && math.Abs(fit.Intercept-intercept) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatVCF(t *testing.T) {
	out := FormatVCF(GenerateVCF(rng.New(7), 3, 0))
	if !strings.HasPrefix(out, "##fileformat=VCFv4.2\n") {
		t.Fatalf("missing header: %q", out[:40])
	}
	if got := strings.Count(out, "\n"); got != 5 { // 2 header + 3 records
		t.Fatalf("lines = %d", got)
	}
}

func TestSyntheticPathwaysShape(t *testing.T) {
	m := NewGeneModel(500)
	pws := SyntheticPathways(m, rng.New(8), 10, 15)
	if len(pws) != 10 {
		t.Fatalf("pathways = %d", len(pws))
	}
	if pws[0].Name != "radiation-response" || len(pws[0].Genes) == 0 {
		t.Fatalf("first pathway = %+v", pws[0])
	}
	for _, pw := range pws[1:] {
		if len(pw.Genes) != 15 {
			t.Fatalf("pathway %s has %d genes", pw.Name, len(pw.Genes))
		}
	}
}

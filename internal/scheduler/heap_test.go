package scheduler

import (
	"sort"
	"testing"

	"repro/internal/rng"
)

// verifyHeapShape asserts the binary-heap invariant: no element sorts
// strictly before its parent under (priority desc, seq asc).
func verifyHeapShape(t *testing.T, h waitHeap) {
	t.Helper()
	for i := 1; i < len(h); i++ {
		if parent := (i - 1) / 2; h.less(i, parent) {
			t.Fatalf("heap shape violated: h[%d] (prio %d, seq %d) sorts before its parent h[%d] (prio %d, seq %d)",
				i, h[i].req.Priority, h[i].seq, parent, h[parent].req.Priority, h[parent].seq)
		}
	}
}

// strictSort orders items the way the scheduler must grant them:
// priority descending, submission sequence ascending.
func strictSort(items []waitItem) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].req.Priority != items[j].req.Priority {
			return items[i].req.Priority > items[j].req.Priority
		}
		return items[i].seq < items[j].seq
	})
}

// TestWaitHeapProperty drives random interleavings of push, head pop
// (removeAt(0)) and arbitrary-position removeAt — the operation mix the
// backfill policies produce — and asserts after every step that the
// heap shape holds, that removeAt returned exactly the item that sat at
// the requested position, and that the head is always the strict-order
// minimum of the reference multiset. removeAt had no direct coverage
// before this test: its vacated-slot replacement must be able to sift
// in either direction.
func TestWaitHeapProperty(t *testing.T) {
	src := rng.New(31)
	for trial := 0; trial < 40; trial++ {
		var h waitHeap
		var ref []waitItem
		seq := uint64(0)
		removeRef := func(it waitItem) {
			for i := range ref {
				if ref[i].seq == it.seq {
					ref = append(ref[:i], ref[i+1:]...)
					return
				}
			}
			t.Fatalf("trial %d: removeAt returned seq %d not present in reference", trial, it.seq)
		}
		for step := 0; step < 150; step++ {
			switch {
			case len(h) == 0 || src.Intn(5) > 1: // push-biased
				seq++
				it := waitItem{req: Request{Priority: src.Intn(4) * 10}, seq: seq}
				h.push(it)
				ref = append(ref, it)
			case src.Intn(2) == 0: // head pop
				want := h[0]
				if got := h.removeAt(0); got != want {
					t.Fatalf("trial %d step %d: removeAt(0) = %+v, head was %+v", trial, step, got, want)
				}
				removeRef(want)
			default: // remove from an arbitrary backing-array position
				pos := src.Intn(len(h))
				want := h[pos]
				if got := h.removeAt(pos); got != want {
					t.Fatalf("trial %d step %d: removeAt(%d) = %+v, slot held %+v", trial, step, pos, got, want)
				}
				removeRef(want)
			}
			if len(h) != len(ref) {
				t.Fatalf("trial %d step %d: heap has %d items, reference %d", trial, step, len(h), len(ref))
			}
			verifyHeapShape(t, h)
			if len(h) > 0 {
				want := append([]waitItem{}, ref...)
				strictSort(want)
				if h[0] != want[0] {
					t.Fatalf("trial %d step %d: head = %+v, strict order wants %+v", trial, step, h[0], want[0])
				}
			}
		}
		// drain through the head: items must come out in exactly
		// (priority desc, seq asc) order
		want := append([]waitItem{}, ref...)
		strictSort(want)
		for i, w := range want {
			got := h.removeAt(0)
			if got != w {
				t.Fatalf("trial %d: drain position %d = (prio %d, seq %d), want (prio %d, seq %d)",
					trial, i, got.req.Priority, got.seq, w.req.Priority, w.seq)
			}
			verifyHeapShape(t, h)
		}
		if len(h) != 0 {
			t.Fatalf("trial %d: %d items left after drain", trial, len(h))
		}
	}
}

// Load balancing (paper §IV-E future work): the prototype uses
// round-robin ("only a rudimentary load balancing"); the future-work
// strategy reroutes to "less used service instances". This example runs
// both against a fleet of four llama services under a bursty client and
// compares the queueing each strategy induces.
//
// The pilot's placement policy is configurable with -sched
// (strict|backfill|best-fit), threading the scheduler's Policy seam
// end-to-end: with -sched backfill, small client tasks keep flowing even
// while a large request blocks the head of the pilot's wait pool. The
// hosting platform is configurable with -platform: "delta" (the paper's
// homogeneous testbed) or "hetero", the mixed-shape campus, where
// -sched best-fit keeps the fat GPU nodes whole. The session's
// task→pilot router is configurable with -router
// (round-robin|least-loaded|capacity-fit) — one pilot here, so it only
// changes which strategy the TaskManager reports, but it mirrors the
// rpexp -router seam end to end.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/loadbal"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/router"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/spec"
)

func main() {
	sched := flag.String("sched", scheduler.PolicyStrict,
		"pilot scheduling policy: strict|backfill[:k=N,t=D]|best-fit[:k=N,t=D]")
	plat := flag.String("platform", "delta",
		"hosting platform: delta (homogeneous) or hetero (mixed node shapes)")
	rt := flag.String("router", router.NameRoundRobin,
		"session task router: round-robin|least-loaded|capacity-fit")
	flag.Parse()
	if err := run(*sched, *plat, *rt); err != nil {
		fmt.Fprintf(os.Stderr, "loadbalance: %v\n", err)
		os.Exit(1)
	}
}

func run(sched, plat, rt string) error {
	sess, err := core.NewSession(core.SessionConfig{
		Seed:        5,
		Clock:       simtime.NewScaled(2000, core.DefaultOrigin),
		FastBoot:    true,
		SchedPolicy: sched,
		Router:      rt,
	})
	if err != nil {
		return err
	}
	defer sess.Close()

	// On a homogeneous platform the fleet needs 256 cores / 16 GPUs; on a
	// mixed platform take the whole machine instead — a capacity request
	// would be satisfied by the (index-leading) fat partition alone,
	// leaving the pilot homogeneous and nothing for best-fit to win.
	desc := spec.PilotDescription{Platform: plat, Cores: 256, GPUs: 16}
	if hosting := sess.Topology().Platform(plat); hosting != nil && len(hosting.Shapes()) > 1 {
		desc = spec.PilotDescription{Platform: plat, Nodes: len(hosting.Nodes())}
	}
	p, err := sess.PilotManager().Submit(desc)
	if err != nil {
		return err
	}
	if shapes := p.Shapes(); len(shapes) > 1 {
		fmt.Printf("pilot spans mixed node shapes: %s\n", platform.FormatShapes(shapes))
	}
	sm := sess.ServiceManager()
	sm.AddPilot(p)

	const fleet = 4
	uids := make([]string, 0, fleet)
	for i := 0; i < fleet; i++ {
		inst, err := sm.Submit(spec.ServiceDescription{
			TaskDescription: spec.TaskDescription{Name: fmt.Sprintf("llm-%d", i), GPUs: 1},
			Model:           "llama-8b",
			ProbeInterval:   time.Hour,
		})
		if err != nil {
			return err
		}
		uids = append(uids, inst.UID())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := sm.WaitReady(ctx, uids...); err != nil {
		return err
	}
	fmt.Printf("fleet of %d llama-8b services ready (scheduling policy: %s, task router: %s)\n",
		fleet, p.Scheduler().Policy().Name(), sess.TaskManager().RouterName())

	strategies := []struct {
		name string
		bal  loadbal.Balancer
	}{
		{"round-robin (paper's rudimentary strategy)", loadbal.NewRoundRobin()},
		{"least-pending (future-work rerouting)", loadbal.NewLeastPending(sm.QueueDepth)},
	}
	for _, s := range strategies {
		pool, err := sess.Pool(platform.Addr(plat, "", "burst-client"), "llama-8b", s.bal)
		if err != nil {
			return err
		}
		coll := metrics.NewCollector()
		var wg sync.WaitGroup
		// bursty load: 16 staggered requests with skewed sizes, so naive
		// round-robin stacks short requests behind long-tail ones while a
		// depth-aware balancer routes around the busy instances
		for i := 0; i < 16; i++ {
			wg.Add(1)
			sess.Clock().Sleep(400 * time.Millisecond) // arrival spacing
			go func(i int) {
				defer wg.Done()
				tokens := 32
				if i%4 == 0 {
					tokens = 1024 // long-tail requests
				}
				reply, rt, err := pool.Infer(ctx, fmt.Sprintf("burst %d", i), tokens)
				if err != nil {
					fmt.Fprintf(os.Stderr, "  request %d: %v\n", i, err)
					return
				}
				_ = reply
				coll.Add("queue", rt.Components["service"])
				coll.Add("total", rt.Total())
			}(i)
		}
		wg.Wait()
		pool.Close()
		fmt.Printf("%s:\n  queueing %s\n  total RT %s\n",
			s.name, coll.Stats("queue"), coll.Stats("total"))
	}
	return nil
}

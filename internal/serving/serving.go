// Package serving implements the model server a runtime service wraps —
// the Go analogue of Ollama in the paper's prototype. A Server owns one
// model backend and accepts inference requests through a msgq handler.
// By default it matches the paper's stated simplification — "services are
// single-threaded, and, as such, they only handle one request at a time,
// queuing further incoming requests" — but lifting that simplification is
// the paper's declared future work, and this package implements it: a
// worker pool (Config.Concurrency) feeds a continuous-batching dispatcher
// (Config.MaxBatch) that coalesces compatible queued requests into one
// batched backend invocation whenever a worker frees up. Batches are not
// fixed windows: each batch is sized by whatever happens to be queued at
// dequeue time, so an idle server still serves single requests with no
// added latency.
package serving

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/llm"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/simtime"
)

// Errors returned to clients in reply envelopes or by Start.
var (
	ErrNotReady   = errors.New("serving: server not ready")
	ErrDraining   = errors.New("serving: server draining")
	ErrQueueFull  = errors.New("serving: request queue full")
	ErrStopped    = errors.New("serving: server stopped")
	ErrBadRequest = errors.New("serving: malformed request")
)

// Backend is one servable capability.
type Backend interface {
	// Name returns the model name the backend serves.
	Name() string
	// Load blocks for the capability's initialization (model load).
	Load() time.Duration
	// Infer blocks for one inference and returns its result.
	Infer(prompt string, maxTokens int) llm.Result
	// MemGB returns the accelerator memory footprint.
	MemGB() float64
}

// BatchBackend is optionally implemented by backends that can serve
// several compatible requests in one model invocation (continuous
// batching). InferBatch blocks for the whole batch and returns one result
// per item, in order. A batch of one must be indistinguishable from Infer
// — same randomness draws, same result bytes — so enabling batching never
// perturbs an unbatched workload.
type BatchBackend interface {
	Backend
	InferBatch(items []llm.BatchItem) []llm.Result
}

// LLMBackend adapts an llm.Instance to Backend.
type LLMBackend struct{ M *llm.Instance }

// Name implements Backend.
func (b LLMBackend) Name() string { return b.M.Spec().Name }

// Load implements Backend.
func (b LLMBackend) Load() time.Duration { return b.M.Load() }

// Infer implements Backend.
func (b LLMBackend) Infer(prompt string, maxTokens int) llm.Result {
	return b.M.Infer(prompt, maxTokens)
}

// MemGB implements Backend.
func (b LLMBackend) MemGB() float64 { return b.M.Spec().MemGB }

// InferBatch implements BatchBackend via the llm batch cost model.
func (b LLMBackend) InferBatch(items []llm.BatchItem) []llm.Result {
	return b.M.InferBatch(items)
}

// Config parameterizes a Server.
type Config struct {
	// UID identifies the server (usually the owning service task UID).
	UID string
	// Backend is the capability to serve. Required.
	Backend Backend
	// Clock times every phase. Required.
	Clock simtime.Clock
	// Src samples service-side overheads. Required.
	Src *rng.Source
	// Concurrency is the number of worker goroutines. Default 1 — the
	// paper's single-threaded service.
	Concurrency int
	// QueueCap bounds the request queue. Default 4096.
	QueueCap int
	// MaxBatch bounds how many compatible queued requests (same model,
	// none flagged NoBatch) one worker coalesces into a single batched
	// inference. Effective only when Backend implements BatchBackend;
	// 0 or 1 disables batching (the paper's request-at-a-time service).
	MaxBatch int
	// ParseOverhead is the per-request deserialize/parse/serialize cost
	// (the paper's `service` RT component). Default ≈ 30µs ± 10µs of
	// modelled cost; at real-time clock scales the host's genuine
	// scheduling overhead adds to the measured span, landing the total in
	// the paper's sub-communication band.
	ParseOverhead rng.DurationDist
	// DedupWindow caps the number of completed request UIDs remembered for
	// idempotent redelivery: a request whose UID matches a remembered
	// completion is answered from the cache instead of re-executed, making
	// resolver park-and-retry safe for non-idempotent backends. 0 selects
	// DefaultDedupWindow; negative disables deduplication.
	//
	// Scope: the memory is per server instance. Retries that land on the
	// same surviving instance (lost reply, suspend/resume of its
	// registration) dedup; after a failover re-placement the replacement
	// starts with empty memory, so a request that completed on the dead
	// instance re-executes there — at-most-once per instance, not
	// exactly-once across instances. A retry racing a still-in-flight
	// first attempt also re-executes: only completions are remembered.
	DedupWindow int
}

// DefaultDedupWindow is the default completed-request memory size.
const DefaultDedupWindow = 1024

// Server is one model-serving process.
//
// The request queue is an explicit FIFO under s.mu with direct handoff to
// parked workers rather than a Go channel: when the server runs on a
// runnability-accounting clock (simtime.RunnersOf, i.e. an auto-advancing
// virtual clock), every park and wake must be told to the clock under the
// same critical section that moves the job, or the discrete-event loop
// could advance time while a handoff is still in flight. Direct handoff
// also guarantees a wake token is consumed by exactly the worker it was
// issued for, which a shared channel cannot (any worker may steal the
// element).
type Server struct {
	cfg Config
	// run is the clock's runnability accounting (nil on real/scaled
	// clocks, where parks and wakes need no bookkeeping).
	run simtime.Runners
	// batch is non-nil when batching is enabled (MaxBatch > 1 and the
	// backend implements BatchBackend); workers then dispatch through
	// dequeueBatch/serveBatch instead of the single-request path.
	batch BatchBackend

	mu       sync.Mutex
	jobs     []*job      // queued, not yet picked up by a worker
	waiters  []chan *job // parked workers, FIFO; each receives one job or nil
	qclosed  bool        // no further jobs will be queued (Drain/Stop)
	started  bool
	ready    bool
	draining bool
	stopped  bool
	loadTime time.Duration
	workers  sync.WaitGroup

	// queued counts requests admitted to the queue (or in handoff to a
	// worker) but not yet being served; inflight counts requests a worker
	// is executing. They are split so load signals can tell a fully-busy-
	// but-empty-queue replica from a backlogged one — the autoscaler and
	// balancer read Queued, liveness probes read InFlight.
	queued    atomic.Int64
	inflight  atomic.Int64
	processed atomic.Int64
	rejected  atomic.Int64
	deduped   atomic.Int64

	// dedupMu guards the completed-request memory (separate from s.mu:
	// remember() runs on the worker goroutine while Submit holds s.mu).
	// Replies live in a fixed-size FIFO ring and the map holds only ring
	// indices: a reply struct is too large for direct map storage, so a
	// map[string]reply would box every insert — and the round-trip alloc
	// budget is pinned by a benchmark.
	dedupMu   sync.Mutex
	dedupDone map[string]int
	dedupRing []dedupEntry
	dedupNext int
}

// dedupEntry is one remembered completion in the dedup ring.
type dedupEntry struct {
	uid   string
	reply proto.InferenceReply
}

// Drop-box states for job.state: the single-word handoff protocol between
// the worker's reply and a Submit caller abandoning the wait on ctx
// expiry. Exactly one side wins the CAS out of jobWaiting; the loser
// takes the cleanup duty the winner left behind (see reply and Submit).
const (
	jobWaiting   int32 = iota // Submit caller is (or will be) parked on done
	jobReplied                // worker committed the reply; wake token issued
	jobAbandoned              // caller left; worker recycles on reply
)

type job struct {
	req      proto.InferenceRequest
	received time.Time
	done     chan proto.InferenceReply
	state    atomic.Int32 // jobWaiting | jobReplied | jobAbandoned
}

// recycle resets the job and returns it to the pool. Callers must own the
// job outright: either the reply has been consumed, the job never reached
// the queue, or the worker observed jobAbandoned (so no send into done is
// outstanding or ever will be).
func (j *job) recycle() {
	j.req = proto.InferenceRequest{}
	j.state.Store(jobWaiting)
	jobPool.Put(j)
}

// jobPool recycles jobs and their reply channels across requests. Every
// path returns its job: completed submissions recycle after consuming the
// reply, rejected ones before parking, and abandoned ones (ctx expiry)
// are recycled by the worker when its reply hits the jobAbandoned
// drop-box state.
var jobPool = sync.Pool{
	New: func() any { return &job{done: make(chan proto.InferenceReply, 1)} },
}

// New validates cfg and returns an unstarted Server.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("serving: %s: nil backend", cfg.UID)
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("serving: %s: nil clock", cfg.UID)
	}
	if cfg.Src == nil {
		return nil, fmt.Errorf("serving: %s: nil rng source", cfg.UID)
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	if cfg.ParseOverhead.IsZero() {
		cfg.ParseOverhead = rng.NormalDuration(30*time.Microsecond, 10*time.Microsecond)
	}
	if cfg.DedupWindow == 0 {
		cfg.DedupWindow = DefaultDedupWindow
	}
	s := &Server{cfg: cfg, run: simtime.RunnersOf(cfg.Clock)}
	if cfg.MaxBatch > 1 {
		if bb, ok := cfg.Backend.(BatchBackend); ok {
			s.batch = bb
		}
	}
	if cfg.DedupWindow > 0 {
		s.dedupDone = make(map[string]int, cfg.DedupWindow)
		s.dedupRing = make([]dedupEntry, cfg.DedupWindow)
	}
	return s, nil
}

// UID returns the server's identifier.
func (s *Server) UID() string { return s.cfg.UID }

// Model returns the served model name.
func (s *Server) Model() string { return s.cfg.Backend.Name() }

// Start loads the backend (blocking for the model's init time) and starts
// the worker pool. It returns the load duration.
func (s *Server) Start() (time.Duration, error) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return 0, ErrStopped
	}
	if s.started {
		s.mu.Unlock()
		return 0, fmt.Errorf("serving: %s already started", s.cfg.UID)
	}
	s.started = true
	s.mu.Unlock()

	load := s.cfg.Backend.Load()

	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return load, ErrStopped
	}
	s.ready = true
	s.loadTime = load
	for i := 0; i < s.cfg.Concurrency; i++ {
		s.workers.Add(1)
		if s.run != nil {
			// Register before spawn (the clock.Go rule): the runner token
			// must exist before Start returns, or the auto-advancing clock
			// could move time past workers the Go scheduler has not run yet
			// — queued jobs would then stall for a scheduler-dependent span
			// of virtual time, destroying both latency and determinism.
			s.run.AddRunner()
		}
		go s.worker()
	}
	s.mu.Unlock()
	return load, nil
}

// Ready reports whether the server accepts requests.
func (s *Server) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ready && !s.draining && !s.stopped
}

// LoadTime returns the measured backend load duration (0 before Start).
func (s *Server) LoadTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadTime
}

// Queued returns requests admitted but not yet picked up by a worker.
func (s *Server) Queued() int { return int(s.queued.Load()) }

// InFlight returns requests currently being executed by workers.
func (s *Server) InFlight() int { return int(s.inflight.Load()) }

// QueueDepth returns queued plus executing requests — the compatibility
// sum of the Queued and InFlight gauges.
func (s *Server) QueueDepth() int { return int(s.queued.Load() + s.inflight.Load()) }

// Processed returns the number of completed requests.
func (s *Server) Processed() int64 { return s.processed.Load() }

// Rejected returns the number of rejected requests.
func (s *Server) Rejected() int64 { return s.rejected.Load() }

// Deduped returns the number of requests answered from the completed-
// request memory instead of re-executed.
func (s *Server) Deduped() int64 { return s.deduped.Load() }

// lookupDedup returns the remembered reply for a completed request UID.
func (s *Server) lookupDedup(uid string) (proto.InferenceReply, bool) {
	if s.dedupDone == nil || uid == "" {
		return proto.InferenceReply{}, false
	}
	s.dedupMu.Lock()
	defer s.dedupMu.Unlock()
	if idx, ok := s.dedupDone[uid]; ok {
		return s.dedupRing[idx].reply, true
	}
	return proto.InferenceReply{}, false
}

// remember records a completed request for idempotent redelivery, evicting
// the oldest entry past the window.
func (s *Server) remember(uid string, reply proto.InferenceReply) {
	if s.dedupDone == nil || uid == "" {
		return
	}
	s.dedupMu.Lock()
	if idx, exists := s.dedupDone[uid]; exists {
		s.dedupRing[idx].reply = reply
	} else {
		slot := &s.dedupRing[s.dedupNext]
		if slot.uid != "" {
			delete(s.dedupDone, slot.uid)
		}
		slot.uid, slot.reply = uid, reply
		s.dedupDone[uid] = s.dedupNext
		s.dedupNext = (s.dedupNext + 1) % len(s.dedupRing)
	}
	s.dedupMu.Unlock()
}

func (s *Server) worker() {
	defer s.workers.Done()
	if s.run != nil {
		// The matching AddRunner ran in Start, before this goroutine was
		// spawned — see the register-before-spawn comment there.
		defer s.run.DoneRunner()
	}
	if s.batch != nil {
		s.batchWorker()
		return
	}
	for {
		j, ok := s.dequeue()
		if !ok {
			return
		}
		s.queued.Add(-1)
		s.inflight.Add(1)
		s.mu.Lock()
		stopped := s.stopped
		s.mu.Unlock()
		if stopped {
			// Immediate termination: flush queued jobs with error replies so
			// their Submit callers unblock.
			s.flushStopped(j)
			continue
		}
		s.serve(j)
	}
}

// batchWorker is the dispatcher loop of a batching server: each time the
// worker frees up it takes whatever compatible requests are queued (up to
// MaxBatch) and serves them as one backend invocation — continuous
// batching, no forming windows and no added idle latency.
func (s *Server) batchWorker() {
	buf := make([]*job, 0, s.cfg.MaxBatch)
	for {
		batch, ok := s.dequeueBatch(buf[:0])
		if !ok {
			return
		}
		buf = batch[:0]
		s.queued.Add(-int64(len(batch)))
		s.inflight.Add(int64(len(batch)))
		s.mu.Lock()
		stopped := s.stopped
		s.mu.Unlock()
		if stopped {
			for _, j := range batch {
				s.flushStopped(j)
			}
			continue
		}
		s.serveBatch(batch)
	}
}

// flushStopped replies ErrStopped for a dequeued job of a stopped server.
// The caller has already moved the job's count from queued to inflight.
func (s *Server) flushStopped(j *job) {
	s.inflight.Add(-1)
	s.rejected.Add(1)
	s.reply(j, proto.InferenceReply{
		RequestUID: j.req.RequestUID,
		ServiceUID: s.cfg.UID,
		Err:        ErrStopped.Error(),
	})
}

// dequeue returns the next job, parking the worker when the queue is
// empty. Buffered jobs are drained even after qclosed (Drain semantics;
// Stop's flush happens in the worker loop), and false means the worker
// should exit. A parked worker is handed its job (or a nil close wakeup)
// directly by the waker, which also issues the runnability wake token
// under s.mu — see the Server doc comment.
func (s *Server) dequeue() (*job, bool) {
	for {
		s.mu.Lock()
		if len(s.jobs) > 0 {
			j := s.jobs[0]
			s.jobs = s.jobs[1:]
			s.mu.Unlock()
			return j, true
		}
		if s.qclosed {
			s.mu.Unlock()
			return nil, false
		}
		ch := make(chan *job, 1)
		s.waiters = append(s.waiters, ch)
		if s.run != nil {
			s.run.Block()
		}
		s.mu.Unlock()
		if j := <-ch; j != nil {
			return j, true
		}
		// nil wakeup: the queue closed while we were parked; loop to
		// observe qclosed under the lock.
	}
}

// dequeueBatch returns the next batch of compatible jobs, appending into
// buf: the head of the queue plus every immediately following request for
// the same model that is not flagged NoBatch, up to MaxBatch. A NoBatch
// head forms a batch of one. Like dequeue, it parks the worker when the
// queue is empty — a direct handoff then yields a batch of one, which is
// exactly continuous batching's idle behavior.
func (s *Server) dequeueBatch(buf []*job) ([]*job, bool) {
	for {
		s.mu.Lock()
		if len(s.jobs) > 0 {
			n := 1
			head := s.jobs[0]
			if !head.req.NoBatch {
				for n < len(s.jobs) && n < s.cfg.MaxBatch &&
					!s.jobs[n].req.NoBatch && s.jobs[n].req.Model == head.req.Model {
					n++
				}
			}
			buf = append(buf, s.jobs[:n]...)
			s.jobs = s.jobs[n:]
			s.mu.Unlock()
			return buf, true
		}
		if s.qclosed {
			s.mu.Unlock()
			return nil, false
		}
		ch := make(chan *job, 1)
		s.waiters = append(s.waiters, ch)
		if s.run != nil {
			s.run.Block()
		}
		s.mu.Unlock()
		if j := <-ch; j != nil {
			return append(buf, j), true
		}
		// nil wakeup: the queue closed while we were parked; loop to
		// observe qclosed under the lock.
	}
}

// enqueueLocked hands j to a parked worker (direct handoff, issuing the
// wake token) or appends it to the job buffer. It reports false when the
// buffer is at capacity. Callers hold s.mu.
func (s *Server) enqueueLocked(j *job) bool {
	if len(s.waiters) > 0 {
		ch := s.waiters[0]
		s.waiters = s.waiters[1:]
		if s.run != nil {
			s.run.Unblock() // wake token: issued before the wake itself
		}
		ch <- j
		return true
	}
	if len(s.jobs) >= s.cfg.QueueCap {
		return false
	}
	s.jobs = append(s.jobs, j)
	return true
}

// closeQueueLocked marks the queue closed and wakes every parked worker
// with a nil job. Callers hold s.mu.
func (s *Server) closeQueueLocked() {
	s.qclosed = true
	for _, ch := range s.waiters {
		if s.run != nil {
			s.run.Unblock()
		}
		ch <- nil
	}
	s.waiters = nil
}

// reply delivers the worker's single reply for j, issuing the requester's
// wake token first so a runnability-accounting clock cannot advance while
// the Submit caller's wakeup is in flight. If the Submit caller abandoned
// the wait (ctx expiry), the jobAbandoned drop-box state redirects the
// reply: the worker consumes it on the caller's behalf — recycling the
// job, issuing no wake token (nobody is parked) — so the runner
// accounting stays exact at every instant and cancellation is
// deterministic on the auto-advancing virtual clock.
func (s *Server) reply(j *job, r proto.InferenceReply) {
	if !j.state.CompareAndSwap(jobWaiting, jobReplied) {
		j.recycle()
		return
	}
	if s.run != nil {
		s.run.Unblock()
	}
	j.done <- r
}

func (s *Server) serve(j *job) {
	defer s.inflight.Add(-1)
	clock := s.cfg.Clock
	timing := proto.Timing{ReceivedAt: j.received, DequeuedAt: clock.Now()}

	// Parse/deserialize overhead — half before inference (request parsing),
	// half after (reply serialization), forming the `service` component.
	overhead := s.cfg.ParseOverhead.Sample(s.cfg.Src)
	if overhead > 0 {
		clock.Sleep(overhead / 2)
	}

	timing.InferStartAt = clock.Now()
	res := s.cfg.Backend.Infer(j.req.Prompt, j.req.MaxTokens)
	timing.InferEndAt = clock.Now()

	if overhead > 0 {
		clock.Sleep(overhead - overhead/2)
	}
	timing.RepliedAt = clock.Now()

	s.processed.Add(1)
	reply := proto.InferenceReply{
		RequestUID:   j.req.RequestUID,
		ServiceUID:   s.cfg.UID,
		Model:        s.cfg.Backend.Name(),
		Text:         res.Text,
		PromptTokens: res.PromptTokens,
		OutputTokens: res.OutputTokens,
		Timing:       timing,
	}
	s.remember(j.req.RequestUID, reply)
	s.reply(j, reply)
}

// serveBatch executes one coalesced batch as a single backend invocation
// and fans the results back out to every member's Submit caller. The
// per-request parse overhead is still charged — batching amortizes model
// compute, not request deserialization — with the summed overhead split
// half before inference (request parsing) and half after (reply
// serialization), mirroring the sequential path. Batch members share the
// dequeue/infer/reply timestamps: they ride one forward pass.
func (s *Server) serveBatch(batch []*job) {
	defer s.inflight.Add(-int64(len(batch)))
	clock := s.cfg.Clock
	dequeued := clock.Now()

	var overhead time.Duration
	for range batch {
		overhead += s.cfg.ParseOverhead.Sample(s.cfg.Src)
	}
	if overhead > 0 {
		clock.Sleep(overhead / 2)
	}

	items := make([]llm.BatchItem, len(batch))
	for i, j := range batch {
		items[i] = llm.BatchItem{Prompt: j.req.Prompt, MaxTokens: j.req.MaxTokens}
	}
	inferStart := clock.Now()
	results := s.batch.InferBatch(items)
	inferEnd := clock.Now()

	if overhead > 0 {
		clock.Sleep(overhead - overhead/2)
	}
	replied := clock.Now()

	for i, j := range batch {
		s.processed.Add(1)
		reply := proto.InferenceReply{
			RequestUID:   j.req.RequestUID,
			ServiceUID:   s.cfg.UID,
			Model:        s.cfg.Backend.Name(),
			Text:         results[i].Text,
			PromptTokens: results[i].PromptTokens,
			OutputTokens: results[i].OutputTokens,
			Timing: proto.Timing{
				ReceivedAt:   j.received,
				DequeuedAt:   dequeued,
				InferStartAt: inferStart,
				InferEndAt:   inferEnd,
				RepliedAt:    replied,
			},
		}
		s.remember(j.req.RequestUID, reply)
		s.reply(j, reply)
	}
}

// Submit enqueues one request and blocks until its reply (or ctx expiry).
// This is the synchronous request path a msgq handler invokes.
//
// The enqueue happens under s.mu, in the same critical section as the
// state check: Stop and Drain close the queue under the same lock, so an
// accepted request can never race the close. On a runnability-accounting
// clock the caller parks as Block'd while it waits; the worker's reply
// carries the matching wake token. A caller that abandons the wait on ctx
// expiry settles accounts through the job's drop-box state: it rebalances
// its own Block with an Unblock the moment it leaves, and the worker's
// eventual reply — seeing jobAbandoned — recycles the job without issuing
// a token. Both sides stay exact at every instant, so cancellation is
// deterministic on the auto-advancing virtual clock. If the reply commits
// first (its token already in flight), the caller loses the CAS and takes
// the completed reply instead of the ctx error.
func (s *Server) Submit(ctx context.Context, req proto.InferenceRequest) (proto.InferenceReply, error) {
	j := jobPool.Get().(*job)
	j.req = req
	j.received = s.cfg.Clock.Now()

	s.mu.Lock()
	var rejection error
	switch {
	case s.stopped:
		rejection = ErrStopped
	case s.draining:
		rejection = ErrDraining
	case !s.ready:
		rejection = ErrNotReady
	}
	if rejection == nil {
		// Idempotent redelivery: a request UID already served to
		// completion is answered from memory — the client's first attempt
		// raced a failover or a lost reply, and re-executing it would
		// double-apply a non-idempotent backend. Checked after the state
		// gate so a stopped server still rejects everything.
		if reply, ok := s.lookupDedup(req.RequestUID); ok {
			s.mu.Unlock()
			s.deduped.Add(1)
			j.recycle()
			return reply, nil
		}
		if s.enqueueLocked(j) {
			s.queued.Add(1)
		} else {
			rejection = ErrQueueFull
		}
	}
	s.mu.Unlock()

	if rejection != nil {
		s.rejected.Add(1)
		j.recycle()
		return proto.InferenceReply{}, rejection
	}
	if s.run != nil {
		s.run.Block()
	}
	select {
	case reply := <-j.done:
		j.recycle()
		return reply, nil
	case <-ctx.Done():
		if j.state.CompareAndSwap(jobWaiting, jobAbandoned) {
			// We own the abandonment: rebalance our own Block token now.
			// The worker's reply will observe jobAbandoned and recycle the
			// job without issuing a token — see reply.
			if s.run != nil {
				s.run.Unblock()
			}
			return proto.InferenceReply{}, ctx.Err()
		}
		// Lost the race: the reply committed first and its wake token is
		// already in flight for us. Take the reply — the request did
		// complete.
		reply := <-j.done
		j.recycle()
		return reply, nil
	}
}

// Handler returns the msgq request handler exposing the server: it decodes
// KindRequest envelopes, submits them, and encodes replies. Malformed
// requests and server-side rejections come back as KindError envelopes.
func (s *Server) Handler() func(proto.Envelope) proto.Envelope {
	return func(env proto.Envelope) proto.Envelope {
		var req proto.InferenceRequest
		if err := env.Decode(proto.KindRequest, &req); err != nil {
			return s.errEnvelope(env, fmt.Sprintf("%v: %v", ErrBadRequest, err))
		}
		reply, err := s.Submit(context.Background(), req)
		if err != nil {
			return s.errEnvelope(env, err.Error())
		}
		out, err := proto.NewEnvelope(proto.KindReply, env.ID, s.cfg.UID, env.From, s.cfg.Clock.Now(), reply)
		if err != nil {
			return s.errEnvelope(env, err.Error())
		}
		return out
	}
}

func (s *Server) errEnvelope(req proto.Envelope, msg string) proto.Envelope {
	out, err := proto.NewEnvelope(proto.KindError, req.ID, s.cfg.UID, req.From, s.cfg.Clock.Now(),
		proto.ErrorBody{Origin: s.cfg.UID, Msg: msg})
	if err != nil {
		// ErrorBody is a plain struct; marshalling cannot fail.
		panic(err)
	}
	return out
}

// Drain stops accepting new requests and blocks until the queue empties
// and all workers finish.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.stopped || s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	started := s.ready
	if started {
		s.closeQueueLocked() // under s.mu: serialized against Submit's enqueue
	}
	s.mu.Unlock()
	if started {
		s.workers.Wait()
	}
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
}

// Stop terminates immediately: queued but unserved requests receive
// ErrStopped replies; an already-executing inference finishes. Stop does
// not block.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	wasReady := s.ready && !s.draining
	s.stopped = true
	s.ready = false
	if wasReady {
		s.closeQueueLocked() // under s.mu: serialized against Submit's enqueue
	}
	s.mu.Unlock()
}

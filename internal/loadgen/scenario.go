package loadgen

import (
	"fmt"
	"time"

	"repro/internal/loadbal"
	"repro/internal/rng"
)

// Kind names a scenario shape.
type Kind string

// Scenario shapes.
const (
	// KindSteady is a homogeneous Poisson stream over round-robin targets.
	KindSteady Kind = "steady"
	// KindDiurnal modulates the arrival rate with a sinusoidal wave.
	KindDiurnal Kind = "diurnal"
	// KindHotspot skews request targeting onto service 0.
	KindHotspot Kind = "hotspot"
	// KindStraggler hosts a slow model on service 0 (the others stay noop).
	KindStraggler Kind = "straggler"
	// KindChurn shuts down one of two pilots mid-stream, forcing the
	// session to re-place and re-publish the affected services.
	KindChurn Kind = "churn"
	// KindTrace replays an explicit inter-arrival gap sequence.
	KindTrace Kind = "trace"
)

// Scenario parameterizes one open-loop campaign.
type Scenario struct {
	// Name labels the scenario in tables and artifacts.
	Name string
	// Kind selects the shape; zero value means KindSteady.
	Kind Kind
	// Requests is the exact number of offered arrivals.
	Requests int
	// Rate is the mean arrival rate in requests per second.
	Rate float64
	// Services is the number of backend service instances.
	Services int
	// Concurrency is the per-service worker count (0 = server default 1).
	Concurrency int
	// QueueCap bounds each service's request queue (0 = default 4096);
	// arrivals rejected by a full queue count as failed.
	QueueCap int
	// Seed drives every stochastic choice (arrivals, targeting, models).
	Seed uint64
	// Interval is the time-series bucket width (default 5s).
	Interval time.Duration
	// Alpha is the latency sketch's relative-error bound (0 = default).
	Alpha float64
	// MaxTokens bounds generation for non-noop backends.
	MaxTokens int
	// Model is the backend model every service hosts (default noop;
	// KindStraggler still overrides service 0 with StragglerModel).
	Model string
	// MaxBatch bounds the per-service dispatcher batch (0/1 = no
	// batching; >1 needs a batch-capable backend).
	MaxBatch int
	// MinReplicas/MaxReplicas bound the session autoscaler. MaxReplicas
	// > 1 enables it, and requests route through a load-aware Balancer
	// instead of a single Resolver.
	MinReplicas int
	MaxReplicas int
	// ScaleInterval/ScaleUpQueue/ScaleDownQueue/ScaleStabilize tune the
	// autoscaler's control loop (zero values take the core defaults).
	ScaleInterval  time.Duration
	ScaleUpQueue   float64
	ScaleDownQueue float64
	ScaleStabilize int

	// WaveAmp is the diurnal amplitude as a fraction of Rate, in [0, 1).
	WaveAmp float64
	// WavePeriod is the diurnal wave period.
	WavePeriod time.Duration

	// HotspotWeight is the probability mass targeted at service 0.
	HotspotWeight float64

	// Balance selects how KindHotspot routes its skewed mass: "direct"
	// sends it straight at service 0 (the legacy shape), anything else
	// forms a registry balancing group over the whole fleet and dials
	// service 0 through a Session.DialBalanced client with that picker
	// ("p2c" by default, "round-robin", "least-loaded"). The unskewed
	// remainder keeps hitting services 1..N-1 directly, so the balancer
	// only sees that background load through the load reports the driver
	// publishes each arrival.
	Balance string

	// StragglerModel is the model hosted by service 0 under KindStraggler
	// (default vit-base, whose modelled inference takes milliseconds).
	StragglerModel string

	// ChurnAt is the campaign offset at which pilot 0 is shut down.
	ChurnAt time.Duration

	// TaskEvery, when positive, submits one compute task through the
	// TaskManager every TaskEvery-th arrival, exercising the task seam
	// alongside service inference.
	TaskEvery int

	// Trace is the explicit gap sequence for KindTrace.
	Trace []time.Duration

	// KeepSamples retains every completion latency for oracle comparisons
	// (tests only — it reintroduces O(n) memory).
	KeepSamples bool
}

// WithDefaults returns a copy with unset fields defaulted.
func (sc Scenario) WithDefaults() Scenario {
	if sc.Kind == "" {
		sc.Kind = KindSteady
	}
	if sc.Name == "" {
		sc.Name = string(sc.Kind)
	}
	if sc.Requests <= 0 {
		sc.Requests = 10000
	}
	if sc.Rate <= 0 {
		sc.Rate = 1000
	}
	if sc.Services <= 0 {
		sc.Services = 4
	}
	if sc.Interval <= 0 {
		sc.Interval = 5 * time.Second
	}
	if sc.Kind == KindDiurnal {
		if sc.WaveAmp == 0 {
			sc.WaveAmp = 0.8
		}
		if sc.WavePeriod <= 0 {
			sc.WavePeriod = 20 * time.Second
		}
	}
	if sc.Kind == KindHotspot {
		if sc.HotspotWeight == 0 {
			sc.HotspotWeight = 0.8
		}
		if sc.Balance == "" {
			sc.Balance = "p2c"
		}
	}
	if sc.Kind == KindStraggler {
		if sc.StragglerModel == "" {
			sc.StragglerModel = "vit-base"
		}
		if sc.MaxTokens == 0 {
			sc.MaxTokens = 8
		}
	}
	if sc.Kind == KindChurn && sc.ChurnAt <= 0 {
		// halfway through the expected campaign span
		sc.ChurnAt = time.Duration(float64(sc.Requests) / sc.Rate / 2 * float64(time.Second))
	}
	if sc.Kind == KindTrace {
		sc.Requests = len(sc.Trace)
	}
	return sc
}

// Validate rejects inconsistent scenarios.
func (sc Scenario) Validate() error {
	switch sc.Kind {
	case KindSteady, KindDiurnal, KindHotspot, KindStraggler, KindChurn, KindTrace:
	default:
		return fmt.Errorf("loadgen: unknown scenario kind %q", sc.Kind)
	}
	if sc.Requests <= 0 {
		return fmt.Errorf("loadgen: scenario %s has no requests", sc.Name)
	}
	if sc.Rate <= 0 {
		return fmt.Errorf("loadgen: scenario %s needs a positive rate", sc.Name)
	}
	if sc.Kind == KindDiurnal && (sc.WaveAmp < 0 || sc.WaveAmp >= 1) {
		return fmt.Errorf("loadgen: scenario %s wave amplitude %v outside [0, 1)", sc.Name, sc.WaveAmp)
	}
	if sc.Kind == KindHotspot && (sc.HotspotWeight < 0 || sc.HotspotWeight > 1) {
		return fmt.Errorf("loadgen: scenario %s hotspot weight %v outside [0, 1]", sc.Name, sc.HotspotWeight)
	}
	if sc.Balance != "" && sc.Balance != "direct" {
		if _, err := loadbal.PickerByName(sc.Balance, 0); err != nil {
			return fmt.Errorf("loadgen: scenario %s: %w", sc.Name, err)
		}
	}
	if sc.Kind == KindChurn && sc.ChurnAt <= 0 {
		return fmt.Errorf("loadgen: scenario %s needs a positive churn offset", sc.Name)
	}
	if sc.Kind == KindTrace && len(sc.Trace) == 0 {
		return fmt.Errorf("loadgen: scenario %s has an empty trace", sc.Name)
	}
	if sc.MaxBatch < 0 {
		return fmt.Errorf("loadgen: scenario %s has a negative batch bound", sc.Name)
	}
	if sc.MinReplicas < 0 || sc.MaxReplicas < 0 {
		return fmt.Errorf("loadgen: scenario %s has negative replica bounds", sc.Name)
	}
	return nil
}

// arrivals builds the scenario's arrival process from the campaign seed.
func (sc Scenario) arrivals(seed uint64) Arrivals {
	src := rng.New(seed).Derive("arrivals")
	switch sc.Kind {
	case KindDiurnal:
		return DiurnalArrivals(src, sc.Rate, sc.WaveAmp, sc.WavePeriod, sc.Requests)
	case KindTrace:
		return TraceArrivals(sc.Trace)
	default:
		return PoissonArrivals(src, sc.Rate, sc.Requests)
	}
}

// Catalog returns the standard scenario suite of the load matrix — the
// five shapes named by the roadmap, sized so the full matrix runs in a
// few seconds of wall time. Callers scale Requests up for campaigns.
func Catalog() []Scenario {
	return []Scenario{
		{Name: "steady", Kind: KindSteady, Requests: 50000, Rate: 2000, Services: 4, Seed: 7, TaskEvery: 1000},
		{Name: "diurnal", Kind: KindDiurnal, Requests: 50000, Rate: 2000, Services: 4, Seed: 7},
		{Name: "hotspot", Kind: KindHotspot, Requests: 50000, Rate: 2000, Services: 4, Seed: 7},
		{Name: "straggler", Kind: KindStraggler, Requests: 20000, Rate: 800, Services: 4, Seed: 7},
		{Name: "churn", Kind: KindChurn, Requests: 50000, Rate: 2000, Services: 4, Seed: 7},
	}
}

package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/loadgen"
)

// TestLoadMatrixExactCounts runs the full catalog at reduced scale and
// pins exact totals: the matrix row for every scenario must conserve
// requests (completed + failed == offered) with zero failures, and the
// churn scenario must show exactly its two re-placements.
func TestLoadMatrixExactCounts(t *testing.T) {
	cfg := LoadConfig{Requests: 4000, Seed: 7}
	res, err := RunLoad(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("matrix has %d rows, want 5", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Offered != 4000 {
			t.Errorf("%s: offered %d, want exactly 4000", row.Scenario, row.Offered)
		}
		if row.Completed != 4000 || row.Failed != 0 {
			t.Errorf("%s: completed=%d failed=%d, want 4000/0", row.Scenario, row.Completed, row.Failed)
		}
		wantRepl := 0
		if row.Scenario == "churn" {
			wantRepl = 2
		}
		if row.Replacements != wantRepl {
			t.Errorf("%s: %d replacements, want %d", row.Scenario, row.Replacements, wantRepl)
		}
		wantTasks := int64(0)
		if row.Scenario == "steady" {
			wantTasks = 4 // 4000 requests / TaskEvery 1000
		}
		if row.TasksDone != wantTasks {
			t.Errorf("%s: %d tasks done, want %d", row.Scenario, row.TasksDone, wantTasks)
		}
		if row.SketchBytes <= 0 || row.SketchBytes > 64<<10 {
			t.Errorf("%s: sketch footprint %dB outside (0, 64KiB]", row.Scenario, row.SketchBytes)
		}
	}
}

// TestLoadMatrixFilter exercises the scenario filter and the override
// plumbing.
func TestLoadMatrixFilter(t *testing.T) {
	res, err := RunLoad(context.Background(), LoadConfig{
		Requests:       500,
		ScenarioFilter: "steady,hotspot",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("filtered matrix has %d rows, want 2", len(res.Rows))
	}
	if res.Rows[0].Scenario != "steady" || res.Rows[1].Scenario != "hotspot" {
		t.Errorf("filtered scenarios %q, %q; want steady, hotspot", res.Rows[0].Scenario, res.Rows[1].Scenario)
	}
	if _, err := RunLoad(context.Background(), LoadConfig{ScenarioFilter: "nonexistent"}); err == nil {
		t.Error("filter matching nothing should error")
	}
}

// TestLoadTableRender pins the matrix table's shape.
func TestLoadTableRender(t *testing.T) {
	res, err := RunLoad(context.Background(), LoadConfig{
		Scenarios: []loadgen.Scenario{
			{Name: "steady", Kind: loadgen.KindSteady, Requests: 200, Rate: 1000, Services: 2, Seed: 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Table().Render()
	for _, want := range []string{"Open-loop load matrix", "scenario", "offered", "p99", "sketch", "steady", "200"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

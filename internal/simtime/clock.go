// Package simtime provides the time substrate for the runtime and its
// experiments. Every component in this repository receives a Clock instead
// of calling the time package directly, which allows three execution modes:
//
//   - Real: wall-clock time, used when driving actual remote services.
//   - Scaled: wall-clock time compressed by a constant factor, used by the
//     experiment harness so that multi-minute bootstrap sweeps (e.g. 640
//     concurrent model loads at ~20 s each) complete in CI time while
//     preserving relative timing shapes.
//   - Virtual: a deterministic discrete-event clock for unit tests, with
//     manual advancement or cooperative auto-advancement.
package simtime

import (
	"context"
	"time"
)

// Clock abstracts the passage of time. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the calling goroutine for d of clock time.
	Sleep(d time.Duration)
	// After returns a channel that receives the clock time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a one-shot timer firing after d.
	NewTimer(d time.Duration) Timer
	// NewTicker returns a repeating ticker with period d.
	NewTicker(d time.Duration) Ticker
}

// Timer is a one-shot timer bound to a Clock.
type Timer interface {
	// C returns the channel on which the expiry time is delivered.
	C() <-chan time.Time
	// Stop prevents the timer from firing. It reports whether the call
	// stopped the timer before it fired.
	Stop() bool
}

// Ticker delivers ticks at a fixed period until stopped.
type Ticker interface {
	// C returns the channel on which ticks are delivered.
	C() <-chan time.Time
	// Stop turns off the ticker.
	Stop()
}

// Since returns the clock time elapsed since t.
func Since(c Clock, t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// SleepCtx sleeps for d of clock time or until ctx is done, whichever comes
// first. It returns ctx.Err if the context expired.
func SleepCtx(ctx context.Context, c Clock, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := c.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C():
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Real is the wall-clock implementation of Clock.
type Real struct{}

// NewReal returns a Clock backed by the system wall clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

// NewTicker implements Clock.
func (Real) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

type realTimer struct{ t *time.Timer }

func (r realTimer) C() <-chan time.Time { return r.t.C }
func (r realTimer) Stop() bool          { return r.t.Stop() }

type realTicker struct{ t *time.Ticker }

func (r realTicker) C() <-chan time.Time { return r.t.C }
func (r realTicker) Stop()               { r.t.Stop() }

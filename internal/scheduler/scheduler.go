// Package scheduler implements the agent-side continuous scheduler of the
// runtime. It binds tasks and service tasks to node resources (cores,
// GPUs, memory) within a pilot's allocation, honouring the priority
// relation the paper's extended Scheduler enacts between services and
// tasks: "We extended the existing Scheduler to enact priority relations
// between services and tasks" — in workflows, services often have to start
// before any computing task (§III).
//
// The algorithm is first-fit over the pilot's nodes with a priority-queue
// wait pool: higher priority first, FIFO within a priority class.
// Placement retries happen continuously as resources are released.
package scheduler

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"

	"repro/internal/platform"
)

// Request asks for resources for one entity.
type Request struct {
	// UID identifies the task or service.
	UID string
	// Cores, GPUs, MemGB are the per-node resource demand.
	Cores int
	GPUs  int
	MemGB float64
	// Priority orders the wait pool: higher first. The ServiceManager
	// submits services with a raised priority.
	Priority int
}

// Placement is a granted request.
type Placement struct {
	Req   Request
	Alloc *platform.Allocation
}

// PlaceFn receives each successful placement. It is called from a
// dedicated scheduler goroutine: implementations may block briefly but
// must not call back into the scheduler synchronously except Release.
type PlaceFn func(Placement)

// Scheduler performs continuous first-fit scheduling over a fixed node
// set.
type Scheduler struct {
	nodes []*platform.Node
	place PlaceFn

	mu      sync.Mutex
	waiting waitHeap
	seq     uint64
	closed  bool
	kick    chan struct{}
	done    chan struct{}

	scheduled int
	failed    int
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("scheduler: closed")

// ErrUnsatisfiable is returned when a request can never fit on any node.
type ErrUnsatisfiable struct{ Req Request }

// Error implements error.
func (e ErrUnsatisfiable) Error() string {
	return fmt.Sprintf("scheduler: request %s (%d cores, %d gpus, %.1f GB) exceeds every node",
		e.Req.UID, e.Req.Cores, e.Req.GPUs, e.Req.MemGB)
}

type waitItem struct {
	req Request
	seq uint64
}

type waitHeap []waitItem

func (h waitHeap) Len() int { return len(h) }
func (h waitHeap) Less(i, j int) bool {
	if h[i].req.Priority != h[j].req.Priority {
		return h[i].req.Priority > h[j].req.Priority
	}
	return h[i].seq < h[j].seq
}
func (h waitHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *waitHeap) Push(x any)        { *h = append(*h, x.(waitItem)) }
func (h *waitHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// New starts a scheduler over nodes, delivering placements to place.
func New(nodes []*platform.Node, place PlaceFn) *Scheduler {
	s := &Scheduler{
		nodes: nodes,
		place: place,
		kick:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	go s.loop()
	return s
}

// Submit enqueues a request. It returns ErrUnsatisfiable immediately when
// no node in the pilot could ever satisfy the request.
func (s *Scheduler) Submit(req Request) error {
	if !s.satisfiable(req) {
		s.mu.Lock()
		s.failed++
		s.mu.Unlock()
		return ErrUnsatisfiable{Req: req}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.seq++
	heap.Push(&s.waiting, waitItem{req: req, seq: s.seq})
	s.mu.Unlock()
	s.poke()
	return nil
}

// satisfiable reports whether some node's total capacity covers req.
func (s *Scheduler) satisfiable(req Request) bool {
	for _, n := range s.nodes {
		sp := n.Spec()
		if sp.Cores >= req.Cores && sp.GPUs >= req.GPUs && sp.MemGB >= req.MemGB {
			return true
		}
	}
	return false
}

// Release returns an allocation to its node and re-kicks scheduling.
func (s *Scheduler) Release(a *platform.Allocation) {
	a.Release()
	s.poke()
}

// Waiting returns the wait-pool depth.
func (s *Scheduler) Waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiting.Len()
}

// Scheduled returns the count of granted placements.
func (s *Scheduler) Scheduled() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scheduled
}

// Close stops the scheduler. Waiting requests are dropped.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
}

func (s *Scheduler) poke() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

func (s *Scheduler) loop() {
	for {
		select {
		case <-s.done:
			return
		case <-s.kick:
			s.schedule()
		}
	}
}

// schedule drains as much of the wait pool as currently fits. Priority
// order is strict: a large high-priority request at the head blocks lower
// priority work (no backfill) so that services cannot be starved by a
// stream of small tasks — the readiness guarantee of §III outweighs
// utilization here. The ablation benchmark BenchmarkAblationBackfill
// quantifies the trade-off.
func (s *Scheduler) schedule() {
	for {
		s.mu.Lock()
		if s.closed || s.waiting.Len() == 0 {
			s.mu.Unlock()
			return
		}
		it := s.waiting[0]
		alloc := s.tryPlace(it.req)
		if alloc == nil {
			s.mu.Unlock()
			return // head does not fit: wait for a release
		}
		heap.Pop(&s.waiting)
		s.scheduled++
		s.mu.Unlock()
		s.place(Placement{Req: it.req, Alloc: alloc})
	}
}

// tryPlace attempts first-fit placement of req.
func (s *Scheduler) tryPlace(req Request) *platform.Allocation {
	for _, n := range s.nodes {
		if a := n.TryAlloc(req.Cores, req.GPUs, req.MemGB); a != nil {
			return a
		}
	}
	return nil
}

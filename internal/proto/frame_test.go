package proto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/iotest"
	"time"
)

func testEnvelope(t *testing.T) Envelope {
	t.Helper()
	env, err := NewEnvelope(KindRequest, 42, "client.0", "svc.1",
		time.Date(2025, 3, 17, 12, 0, 0, 123456789, time.UTC),
		InferenceRequest{RequestUID: "req.0", ClientUID: "client.0", Model: "noop", Prompt: "hello", MaxTokens: 8})
	if err != nil {
		t.Fatalf("NewEnvelope: %v", err)
	}
	return env
}

func TestBinaryFrameRoundTrip(t *testing.T) {
	env := testEnvelope(t)
	frame, err := AppendFrame(nil, &env)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	var buf []byte
	payload, err := ReadFramePayload(bytes.NewReader(frame), &buf)
	if err != nil {
		t.Fatalf("ReadFramePayload: %v", err)
	}
	got, err := DecodeFrame(payload)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if got.Kind != env.Kind || got.ID != env.ID || got.From != env.From || got.To != env.To {
		t.Fatalf("header mismatch: got %+v want %+v", got, env)
	}
	if !got.Sent.Equal(env.Sent) {
		t.Fatalf("sent mismatch: got %v want %v", got.Sent, env.Sent)
	}
	var req InferenceRequest
	if err := got.Decode(KindRequest, &req); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if req.Prompt != "hello" || req.Model != "noop" {
		t.Fatalf("body mismatch: %+v", req)
	}
}

func TestBinaryFrameZeroTimeAndEmptyBody(t *testing.T) {
	env := Envelope{Kind: KindControl, ID: 7, From: "a"}
	frame, err := AppendFrame(nil, &env)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	got, err := DecodeFrame(frame[4:])
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if !got.Sent.IsZero() {
		t.Fatalf("zero Sent did not round-trip: %v", got.Sent)
	}
	if got.Body != nil {
		t.Fatalf("empty body came back non-nil: %q", got.Body)
	}
}

// TestBinaryFrameBodyAliasesPayload pins the zero-copy contract: the decoded
// Body is a sub-slice of the payload, not a copy.
func TestBinaryFrameBodyAliasesPayload(t *testing.T) {
	env := testEnvelope(t)
	frame, err := AppendFrame(nil, &env)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	payload := frame[4:]
	got, err := DecodeFrame(payload)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if len(got.Body) == 0 {
		t.Fatal("expected a body")
	}
	if &got.Body[0] != &payload[len(payload)-len(got.Body)] {
		t.Fatal("Body does not alias the payload slice")
	}
}

// TestBinaryFrameSplitReads feeds the frame one byte at a time: ReadFramePayload
// must reassemble across arbitrary Read boundaries.
func TestBinaryFrameSplitReads(t *testing.T) {
	env := testEnvelope(t)
	frame, err := AppendFrame(nil, &env)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	second, err := AppendFrame(nil, &env)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	r := iotest.OneByteReader(bytes.NewReader(append(frame, second...)))
	var buf []byte
	for i := 0; i < 2; i++ {
		payload, err := ReadFramePayload(r, &buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if _, err := DecodeFrame(payload); err != nil {
			t.Fatalf("frame %d decode: %v", i, err)
		}
	}
	if _, err := ReadFramePayload(r, &buf); err != io.EOF {
		t.Fatalf("want clean io.EOF at stream end, got %v", err)
	}
}

func TestBinaryFrameReadErrors(t *testing.T) {
	env := testEnvelope(t)
	frame, err := AppendFrame(nil, &env)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}

	var buf []byte
	// Truncated length prefix.
	if _, err := ReadFramePayload(bytes.NewReader(frame[:2]), &buf); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated prefix: want ErrUnexpectedEOF, got %v", err)
	}
	// Truncated payload.
	if _, err := ReadFramePayload(bytes.NewReader(frame[:len(frame)-3]), &buf); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated payload: want ErrUnexpectedEOF, got %v", err)
	}
	// Oversized length prefix.
	var huge [8]byte
	binary.BigEndian.PutUint32(huge[:4], MaxFrameSize+1)
	if _, err := ReadFramePayload(bytes.NewReader(huge[:]), &buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized prefix: want ErrFrameTooLarge, got %v", err)
	}
	// Clean close at a frame boundary.
	if _, err := ReadFramePayload(bytes.NewReader(nil), &buf); err != io.EOF {
		t.Fatalf("empty stream: want io.EOF, got %v", err)
	}
}

func TestDecodeFrameCorruption(t *testing.T) {
	env := testEnvelope(t)
	frame, err := AppendFrame(nil, &env)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	good := frame[4:]

	cases := map[string][]byte{
		"empty":             {},
		"bad version":       append([]byte{99}, good[1:]...),
		"truncated kind":    good[:2],
		"kind len past end": {frameVersion, 200, 'x'},
		"truncated fixed":   good[:len(good)-25],
		"trailing garbage":  append(append([]byte{}, good...), 0xde, 0xad),
	}
	// Body length field larger than the remaining bytes.
	short := append([]byte{}, good...)
	short = short[:len(short)-1]
	cases["body len mismatch"] = short

	for name, payload := range cases {
		if _, err := DecodeFrame(payload); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: want ErrBadFrame, got %v", name, err)
		}
	}
}

func TestAppendFrameLimits(t *testing.T) {
	long := Envelope{Kind: Kind(strings.Repeat("k", 300)), From: "a"}
	if _, err := AppendFrame(nil, &long); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized kind: want ErrBadFrame, got %v", err)
	}
	big := Envelope{Kind: KindRequest, Body: bytes.Repeat([]byte("x"), MaxFrameSize)}
	if _, err := AppendFrame(nil, &big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized body: want ErrFrameTooLarge, got %v", err)
	}
}

// FuzzDecodeFrame asserts the decoder never panics and fails only with the
// typed frame error.
func FuzzDecodeFrame(f *testing.F) {
	env, _ := NewEnvelope(KindReply, 9, "svc", "cli", time.Unix(1, 2).UTC(),
		InferenceReply{RequestUID: "r", Text: "ok"})
	frame, err := AppendFrame(nil, &env)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame[4:])
	f.Add([]byte{})
	f.Add([]byte{frameVersion})
	f.Add([]byte{frameVersion, 1, 'x', 0, 0})
	f.Fuzz(func(t *testing.T, payload []byte) {
		if _, err := DecodeFrame(payload); err != nil && !errors.Is(err, ErrBadFrame) {
			t.Fatalf("non-typed error: %v", err)
		}
	})
}

// FuzzReadFramePayload asserts the stream reader never panics on arbitrary
// byte streams and fails only with typed or io errors.
func FuzzReadFramePayload(f *testing.F) {
	env, _ := NewEnvelope(KindHeartbeat, 1, "s", "", time.Unix(3, 4).UTC(), Heartbeat{ServiceUID: "s"})
	frame, err := AppendFrame(nil, &env)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame)
	f.Add(frame[:3])
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, stream []byte) {
		var buf []byte
		r := bytes.NewReader(stream)
		for {
			payload, err := ReadFramePayload(r, &buf)
			if err != nil {
				ok := err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, ErrFrameTooLarge)
				if !ok {
					t.Fatalf("non-typed error: %v", err)
				}
				return
			}
			// Whatever parses must be re-encodable or typed-fail.
			if _, err := DecodeFrame(payload); err != nil && !errors.Is(err, ErrBadFrame) {
				t.Fatalf("non-typed decode error: %v", err)
			}
		}
	})
}

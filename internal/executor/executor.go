// Package executor implements the agent-side Executor: it launches placed
// tasks and service tasks on their target resources and runs their
// payloads. Launching is modelled with the owning platform's LaunchModel,
// reproducing the paper's Fig. 3 observation that per-instance launch time
// is near-constant up to ~160 concurrent launches and grows beyond (MPI
// startup overhead); the executor tracks the number of concurrent launches
// to drive that model.
//
// Payloads are either simulated compute (a sampled duration slept on the
// session clock — the analogue of an executable task) or TaskFuncs:
// in-process functions, which is how the experiment harness implements the
// paper's client tasks that send inference requests to services. The
// distinction mirrors the executable-vs-function task split the paper
// inherits from RADICAL-Pilot and Raptor.
package executor

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/spec"
)

// Executor launches and runs placed work.
type Executor struct {
	clock  simtime.Clock
	src    *rng.Source
	launch platform.LaunchModel

	launching atomic.Int64 // concurrent launches, drives the launch model
	// launchPeak is the high-water mark of concurrent launches within the
	// current launch burst; it resets when the burst drains. Sampling the
	// penalty against the burst peak (after the base sleep) mirrors the
	// collective nature of MPI startup: every instance of a large burst
	// pays the system-level cost, regardless of arrival order.
	launchPeak atomic.Int64
	running    atomic.Int64
	completed  atomic.Int64
	failures   atomic.Int64

	wg sync.WaitGroup
}

// New returns an Executor for one pilot's platform.
func New(clock simtime.Clock, src *rng.Source, launch platform.LaunchModel) *Executor {
	return &Executor{clock: clock, src: src, launch: launch}
}

// Result reports one execution.
type Result struct {
	UID        string
	LaunchTime time.Duration
	ExecTime   time.Duration
	Err        error
}

// Launch blocks for the modelled launch overhead of one instance and
// returns it. The overhead grows when many instances launch concurrently.
func (e *Executor) Launch(uid string) time.Duration {
	n := e.launching.Add(1)
	for {
		peak := e.launchPeak.Load()
		if n <= peak || e.launchPeak.CompareAndSwap(peak, n) {
			break
		}
	}
	base := e.launch.Base.Sample(e.src.Derive(uid + ".launch"))
	if base > 0 {
		e.clock.Sleep(base)
	}
	// penalty is assessed against the burst peak observed while this
	// instance was launching
	extra := e.launch.Penalty(int(e.launchPeak.Load()))
	if extra > 0 {
		e.clock.Sleep(extra)
	}
	if e.launching.Add(-1) == 0 {
		e.launchPeak.Store(0) // burst drained
	}
	return base + extra
}

// RunPayload executes the task's payload. Duration (when set) models the
// task's compute time as a clock sleep; Func (when set) runs real logic
// in-process. A task may carry both — e.g. a VEP annotation task whose
// modelled runtime is minutes but whose Func computes actual annotations
// on synthetic data — in which case the sleep precedes the Func.
func (e *Executor) RunPayload(ctx context.Context, d spec.TaskDescription) (time.Duration, error) {
	start := e.clock.Now()
	e.running.Add(1)
	defer e.running.Add(-1)
	var err error
	if !d.Duration.IsZero() {
		dur := d.Duration.Sample(e.src.Derive(d.UID + ".exec"))
		if dur > 0 {
			err = simtime.SleepCtx(ctx, e.clock, dur)
		}
	}
	if err == nil && d.Func != nil {
		err = d.Func(ctx)
	}
	elapsed := e.clock.Now().Sub(start)
	if err != nil {
		e.failures.Add(1)
		return elapsed, fmt.Errorf("executor: payload %s: %w", d.UID, err)
	}
	e.completed.Add(1)
	return elapsed, nil
}

// Execute performs the full launch+payload sequence for a placed task and
// releases the allocation through the scheduler (re-kicking placement).
// It is synchronous; the agent calls it from per-task goroutines.
func (e *Executor) Execute(ctx context.Context, sched *scheduler.Scheduler, p scheduler.Placement, d spec.TaskDescription) Result {
	defer sched.Release(p.Alloc)
	res := Result{UID: d.UID}
	res.LaunchTime = e.Launch(d.UID)
	res.ExecTime, res.Err = e.RunPayload(ctx, d)
	return res
}

// Go runs Execute asynchronously, delivering the result to done.
func (e *Executor) Go(ctx context.Context, sched *scheduler.Scheduler, p scheduler.Placement, d spec.TaskDescription, done func(Result)) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		done(e.Execute(ctx, sched, p, d))
	}()
}

// Wait blocks until all Go-launched executions finish.
func (e *Executor) Wait() { e.wg.Wait() }

// Launching returns the number of in-flight launches.
func (e *Executor) Launching() int { return int(e.launching.Load()) }

// Running returns the number of in-flight payloads.
func (e *Executor) Running() int { return int(e.running.Load()) }

// Completed returns the number of successful payloads.
func (e *Executor) Completed() int { return int(e.completed.Load()) }

// Failures returns the number of failed payloads.
func (e *Executor) Failures() int { return int(e.failures.Load()) }

// Package scheduler implements the agent-side continuous scheduler of the
// runtime. It binds tasks and service tasks to node resources (cores,
// GPUs, memory) within a pilot's allocation, honouring the priority
// relation the paper's extended Scheduler enacts between services and
// tasks: "We extended the existing Scheduler to enact priority relations
// between services and tasks" — in workflows, services often have to start
// before any computing task (§III).
//
// The algorithm is first-fit over the pilot's nodes with a priority-queue
// wait pool: higher priority first, FIFO within a priority class.
// Placement retries happen continuously as resources are released. Unlike
// a naive first-fit, placement does not scan the node list: a segment-tree
// capacity index (see index.go) locates the lowest-index fitting node in
// O(log nodes), and each scheduling kick drains every grantable request in
// one batch under a single lock acquisition.
package scheduler

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/platform"
)

// Request asks for resources for one entity.
type Request struct {
	// UID identifies the task or service.
	UID string
	// Cores, GPUs, MemGB are the per-node resource demand.
	Cores int
	GPUs  int
	MemGB float64
	// Priority orders the wait pool: higher first. The ServiceManager
	// submits services with a raised priority.
	Priority int
}

// Placement is a granted request.
type Placement struct {
	Req   Request
	Alloc *platform.Allocation
}

// PlaceFn receives each successful placement. It is called from a
// dedicated scheduler goroutine: implementations may block briefly but
// must not call back into the scheduler synchronously except Release.
type PlaceFn func(Placement)

// Scheduler performs continuous first-fit scheduling over a fixed node
// set.
type Scheduler struct {
	nodes []*platform.Node
	place PlaceFn
	// specs are the distinct node hardware shapes, computed once so the
	// per-submit satisfiability check is O(distinct specs), not O(nodes).
	specs []platform.NodeSpec

	mu      sync.Mutex
	index   *nodeIndex
	nodeOf  map[*platform.Node]int
	waiting waitHeap
	seq     uint64
	closed  bool
	kick    chan struct{}
	done    chan struct{}

	scheduled int
	failed    int
	// seenEpoch mirrors platform.ReleaseEpoch for the releases this
	// scheduler has already folded into its index (its own Releases are
	// point-refreshed; a full-refresh miss recovery accounts the rest).
	// While they match, no capacity has been returned behind the
	// scheduler's back and a placement miss needs no O(nodes) re-sync.
	seenEpoch uint64

	// batch is the grant buffer reused across scheduling passes; it is
	// only touched by the scheduler goroutine.
	batch []Placement
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("scheduler: closed")

// ErrUnsatisfiable is returned when a request can never fit on any node.
type ErrUnsatisfiable struct{ Req Request }

// Error implements error.
func (e ErrUnsatisfiable) Error() string {
	return fmt.Sprintf("scheduler: request %s (%d cores, %d gpus, %.1f GB) exceeds every node",
		e.Req.UID, e.Req.Cores, e.Req.GPUs, e.Req.MemGB)
}

// New starts a scheduler over nodes, delivering placements to place.
func New(nodes []*platform.Node, place PlaceFn) *Scheduler {
	s := &Scheduler{
		nodes:     nodes,
		place:     place,
		index:     newNodeIndex(nodes),
		nodeOf:    make(map[*platform.Node]int, len(nodes)),
		kick:      make(chan struct{}, 1),
		done:      make(chan struct{}),
		seenEpoch: platform.ReleaseEpoch(),
	}
	for i, n := range nodes {
		s.nodeOf[n] = i
		sp := n.Spec()
		seen := false
		for _, u := range s.specs {
			if u == sp {
				seen = true
				break
			}
		}
		if !seen {
			s.specs = append(s.specs, sp)
		}
	}
	go s.loop()
	return s
}

// Submit enqueues a request. It returns ErrUnsatisfiable immediately when
// no node in the pilot could ever satisfy the request.
func (s *Scheduler) Submit(req Request) error {
	if !s.satisfiable(req) {
		s.mu.Lock()
		s.failed++
		s.mu.Unlock()
		return ErrUnsatisfiable{Req: req}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.seq++
	s.waiting.push(waitItem{req: req, seq: s.seq})
	s.mu.Unlock()
	s.poke()
	return nil
}

// satisfiable reports whether some node's total capacity covers req.
// Negative demands are unsatisfiable: Node.TryAlloc rejects them on every
// node, so admitting one would wedge the wait-pool head forever.
func (s *Scheduler) satisfiable(req Request) bool {
	if req.Cores < 0 || req.GPUs < 0 || req.MemGB < 0 {
		return false
	}
	for _, sp := range s.specs {
		if sp.Cores >= req.Cores && sp.GPUs >= req.GPUs && sp.MemGB >= req.MemGB {
			return true
		}
	}
	return false
}

// Release returns an allocation to its node and re-kicks scheduling.
func (s *Scheduler) Release(a *platform.Allocation) {
	before := platform.ReleaseEpoch()
	a.Release()
	after := platform.ReleaseEpoch()
	s.mu.Lock()
	if i, ok := s.nodeOf[a.Node()]; ok {
		s.index.refresh(i)
		// Account our own release so a later placement miss does not
		// mistake it for out-of-band capacity needing a full re-sync.
		// Advance only when this call provably was release number
		// before+1 and nothing else interleaved — any ambiguity
		// (concurrent releases elsewhere, an already-released alloc)
		// leaves seenEpoch behind, which merely costs one conservative
		// refreshAll later, never a missed placement.
		if s.seenEpoch == before && after == before+1 {
			s.seenEpoch = after
		}
	}
	s.mu.Unlock()
	s.poke()
}

// Waiting returns the wait-pool depth.
func (s *Scheduler) Waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiting)
}

// Scheduled returns the count of granted placements.
func (s *Scheduler) Scheduled() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scheduled
}

// Close stops the scheduler. Waiting requests are dropped.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
}

func (s *Scheduler) poke() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

func (s *Scheduler) loop() {
	for {
		select {
		case <-s.done:
			return
		case <-s.kick:
			s.schedule()
		}
	}
}

// schedule drains as much of the wait pool as currently fits. Priority
// order is strict: a large high-priority request at the head blocks lower
// priority work (no backfill) so that services cannot be starved by a
// stream of small tasks — the readiness guarantee of §III outweighs
// utilization here. The ablation benchmark BenchmarkAblationBackfill
// quantifies the trade-off.
//
// Each pass collects every grantable head under one lock acquisition and
// delivers the whole batch after unlocking, so PlaceFn work (and the
// Releases it may perform) never holds up grant decisions.
func (s *Scheduler) schedule() {
	for {
		s.mu.Lock()
		s.batch = s.batch[:0]
		for !s.closed && len(s.waiting) > 0 {
			it := s.waiting[0]
			alloc := s.tryPlace(it.req)
			if alloc == nil {
				break // head does not fit: wait for a release
			}
			s.waiting.popHead()
			s.scheduled++
			s.batch = append(s.batch, Placement{Req: it.req, Alloc: alloc})
		}
		s.mu.Unlock()
		if len(s.batch) == 0 {
			return
		}
		for _, p := range s.batch {
			s.place(p)
		}
	}
}

// tryPlace attempts first-fit placement of req via the capacity index.
// Callers hold s.mu.
func (s *Scheduler) tryPlace(req Request) *platform.Allocation {
	refreshed := false
	for {
		i := s.index.find(req.Cores, req.GPUs, req.MemGB)
		if i < 0 {
			if refreshed {
				return nil
			}
			// The index can only under-report capacity if an allocation
			// was released directly (not through Scheduler.Release) since
			// we last synced. The release-epoch comparison detects that
			// without touching any node; only a genuine out-of-band
			// release pays the O(nodes) re-sync.
			epoch := platform.ReleaseEpoch()
			if epoch == s.seenEpoch {
				return nil
			}
			s.seenEpoch = epoch
			s.index.refreshAll()
			refreshed = true
			continue
		}
		a := s.nodes[i].TryAlloc(req.Cores, req.GPUs, req.MemGB)
		s.index.refresh(i)
		if a != nil {
			return a
		}
		// The leaf was stale-high (capacity consumed behind the
		// scheduler's back); the refresh above corrected it — retry.
	}
}

// --- wait pool --------------------------------------------------------------

type waitItem struct {
	req Request
	seq uint64
}

// waitHeap is a hand-rolled binary heap ordered by (priority desc, seq
// asc). Avoiding container/heap keeps push/pop free of interface boxing —
// one less allocation on every submit.
type waitHeap []waitItem

func (h waitHeap) less(i, j int) bool {
	if h[i].req.Priority != h[j].req.Priority {
		return h[i].req.Priority > h[j].req.Priority
	}
	return h[i].seq < h[j].seq
}

func (h *waitHeap) push(it waitItem) {
	*h = append(*h, it)
	q := *h
	for i := len(q) - 1; i > 0; {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *waitHeap) popHead() waitItem {
	q := *h
	head := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = waitItem{} // release references held by the vacated slot
	*h = q[:last]
	q = q[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q) && q.less(l, smallest) {
			smallest = l
		}
		if r < len(q) && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	return head
}

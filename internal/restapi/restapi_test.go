package restapi

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/rng"
	"repro/internal/serving"
	"repro/internal/simtime"
)

var origin = time.Date(2025, 3, 17, 0, 0, 0, 0, time.UTC)

func newGateway(t *testing.T, model string) (*Gateway, *serving.Server) {
	t.Helper()
	spec, err := llm.Lookup(model)
	if err != nil {
		t.Fatal(err)
	}
	clock := simtime.NewScaled(100000, origin)
	src := rng.New(5)
	srv, err := serving.New(serving.Config{
		UID:     "r3.service.0001",
		Backend: serving.LLMBackend{M: llm.NewInstance(spec, clock, src.Derive("m"))},
		Clock:   clock,
		Src:     src.Derive("s"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	g, err := NewGateway(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g, srv
}

func TestGenerateOverHTTP(t *testing.T) {
	g, _ := newGateway(t, "llama-8b")
	c := NewClient(g.URL())
	resp, err := c.Generate(context.Background(), GenerateRequest{
		Model: "llama-8b", Prompt: "what genes respond to radiation", MaxTokens: 32,
		RequestID: "req.1", ClientID: "client.1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Model != "llama-8b" || resp.OutputTokens < 1 || !strings.HasPrefix(resp.Response, "[llama-8b]") {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Timing.InferTime() <= 0 {
		t.Fatal("no inference timing over REST")
	}
}

func TestGenerateConcurrent(t *testing.T) {
	g, srv := newGateway(t, "noop")
	c := NewClient(g.URL())
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Generate(context.Background(), GenerateRequest{Model: "noop", Prompt: "x"})
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if srv.Processed() != 16 {
		t.Fatalf("processed = %d", srv.Processed())
	}
}

func TestHealthEndpoint(t *testing.T) {
	g, _ := newGateway(t, "noop")
	c := NewClient(g.URL())
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !h.Ready || h.ServiceUID != "r3.service.0001" || h.Model != "noop" {
		t.Fatalf("health = %+v", h)
	}
}

func TestGenerateAgainstStoppedServer(t *testing.T) {
	g, srv := newGateway(t, "noop")
	srv.Stop()
	c := NewClient(g.URL())
	if _, err := c.Generate(context.Background(), GenerateRequest{Model: "noop", Prompt: "x"}); err == nil {
		t.Fatal("Generate succeeded against stopped server")
	}
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Ready {
		t.Fatal("stopped server reports ready")
	}
}

func TestEndpointRecord(t *testing.T) {
	g, _ := newGateway(t, "llama-8b")
	ep := g.Endpoint()
	if ep.Protocol != "rest" || ep.Model != "llama-8b" || !strings.HasPrefix(ep.Address, "http://") {
		t.Fatalf("endpoint = %+v", ep)
	}
}

func TestMalformedRequestRejected(t *testing.T) {
	g, _ := newGateway(t, "noop")
	c := NewClient(g.URL())
	// direct malformed POST
	resp, err := c.hc.Post(g.URL()+"/api/generate", "application/json", strings.NewReader("{broken"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	c := NewClient("http://127.0.0.1:1")
	if _, err := c.Generate(context.Background(), GenerateRequest{Model: "noop"}); err == nil {
		t.Fatal("Generate against dead server succeeded")
	}
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("Health against dead server succeeded")
	}
}

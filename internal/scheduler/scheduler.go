// Package scheduler implements the agent-side continuous scheduler of the
// runtime. It binds tasks and service tasks to node resources (cores,
// GPUs, memory) within a pilot's allocation, honouring the priority
// relation the paper's extended Scheduler enacts between services and
// tasks: "We extended the existing Scheduler to enact priority relations
// between services and tasks" — in workflows, services often have to start
// before any computing task (§III).
//
// The wait pool is a priority queue: higher priority first, FIFO within a
// priority class. Placement retries happen continuously as resources are
// released. Unlike a naive first-fit, placement does not scan the node
// list: a segment-tree capacity index (see index.go) locates a fitting
// node in O(log nodes), and each scheduling kick drains every grantable
// request in one batch under a single lock acquisition.
//
// Which waiting request is granted next — and on which node — is decided
// by a pluggable Policy (see policy.go). The default, Strict, keeps the
// seed semantics: first-fit placement and hard head-of-line blocking.
// Backfill and BestFit trade bounded head starvation for utilization and
// lower fragmentation; select them per pilot via pilot.Config.SchedPolicy
// or per platform via platform.Platform.SchedPolicy.
package scheduler

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/platform"
	"repro/internal/simtime"
)

// Request asks for resources for one entity.
type Request struct {
	// UID identifies the task or service.
	UID string
	// Cores, GPUs, MemGB are the per-node resource demand.
	Cores int
	GPUs  int
	MemGB float64
	// Priority orders the wait pool: higher first. The ServiceManager
	// submits services with a raised priority.
	Priority int
}

// Placement is a granted request.
type Placement struct {
	Req   Request
	Alloc *platform.Allocation
}

// PlaceFn receives each successful placement. It is called from a
// dedicated scheduler goroutine: implementations may block briefly but
// must not call back into the scheduler synchronously except Release.
type PlaceFn func(Placement)

// Scheduler performs continuous policy-driven scheduling over a fixed
// node set.
type Scheduler struct {
	nodes  []*platform.Node
	place  PlaceFn
	policy Policy
	clock  simtime.Clock

	mu      sync.Mutex
	index   *nodeIndex
	nodeOf  map[*platform.Node]int
	waiting waitHeap
	seq     uint64
	closed  bool
	kick    chan struct{}
	done    chan struct{}

	scheduled int
	failed    int
	// seenEpoch mirrors platform.ReleaseEpoch for the releases this
	// scheduler has already folded into its index (its own Releases are
	// point-refreshed; a full-refresh miss recovery accounts the rest).
	// While they match, no capacity has been returned behind the
	// scheduler's back and a placement miss needs no O(nodes) re-sync.
	seenEpoch uint64

	// batch is the grant buffer reused across scheduling passes; it is
	// only touched by the scheduler goroutine.
	batch []Placement

	// gen counts state mutations (submissions, grants, releases, index
	// re-syncs). Snapshot caches its last result against it, so repeated
	// probes over an unchanged scheduler — a router ranking the same pilot
	// for every task of a submit batch — skip the lock and the shape-table
	// copy entirely. Bumped only while mu is held; read lock-free.
	gen       atomic.Uint64
	snapCache atomic.Pointer[cachedSnapshot]
}

// cachedSnapshot pairs a Snapshot with the generation it was built at.
type cachedSnapshot struct {
	gen  uint64
	snap Snapshot
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("scheduler: closed")

// ErrUnsatisfiable is returned when a request can never fit on any node.
type ErrUnsatisfiable struct{ Req Request }

// Error implements error.
func (e ErrUnsatisfiable) Error() string {
	return fmt.Sprintf("scheduler: request %s (%d cores, %d gpus, %.1f GB) exceeds every node",
		e.Req.UID, e.Req.Cores, e.Req.GPUs, e.Req.MemGB)
}

// Option configures a Scheduler at construction time.
type Option func(*Scheduler)

// WithPolicy selects the placement policy (default Strict). The policy
// instance must be exclusive to this scheduler: backfill policies keep
// per-head starvation state.
func WithPolicy(p Policy) Option {
	return func(s *Scheduler) {
		if p != nil {
			s.policy = p
		}
	}
}

// WithClock sets the clock backing the backfill starvation time bound and
// Pool.Now (default: the wall clock). Pilots pass their simulation clock
// so the T bound is measured in simulated time.
func WithClock(c simtime.Clock) Option {
	return func(s *Scheduler) {
		if c != nil {
			s.clock = c
		}
	}
}

// New starts a scheduler over nodes, delivering placements to place.
// Without options it schedules with the Strict policy on the wall clock.
func New(nodes []*platform.Node, place PlaceFn, opts ...Option) *Scheduler {
	s := &Scheduler{
		nodes:     nodes,
		place:     place,
		policy:    Strict(),
		clock:     simtime.NewReal(),
		index:     newNodeIndex(nodes),
		nodeOf:    make(map[*platform.Node]int, len(nodes)),
		kick:      make(chan struct{}, 1),
		done:      make(chan struct{}),
		seenEpoch: platform.ReleaseEpoch(),
	}
	for _, opt := range opts {
		opt(s)
	}
	for i, n := range nodes {
		s.nodeOf[n] = i
	}
	go s.loop()
	return s
}

// Submit enqueues a request. It returns ErrUnsatisfiable immediately when
// no node in the pilot could ever satisfy the request.
func (s *Scheduler) Submit(req Request) error {
	if !s.satisfiable(req) {
		s.mu.Lock()
		s.failed++
		s.mu.Unlock()
		return ErrUnsatisfiable{Req: req}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.seq++
	s.waiting.push(waitItem{req: req, seq: s.seq})
	s.gen.Add(1)
	s.mu.Unlock()
	s.poke()
	return nil
}

// Generation returns the scheduler's mutation counter. Two equal reads
// with no mutation in between guarantee Snapshot returns identical data,
// which is what lets callers batch routing decisions over one probe.
func (s *Scheduler) Generation() uint64 { return s.gen.Load() }

// satisfiable reports whether some node's total capacity covers req.
// Negative demands are unsatisfiable: Node.TryAlloc rejects them on every
// node, so admitting one would wedge the wait-pool head forever. The
// check is O(distinct shapes) over the index's immutable spec list — no
// lock needed.
func (s *Scheduler) satisfiable(req Request) bool {
	if req.Cores < 0 || req.GPUs < 0 || req.MemGB < 0 {
		return false
	}
	for _, sp := range s.index.specs {
		if sp.Covers(req.Cores, req.GPUs, req.MemGB) {
			return true
		}
	}
	return false
}

// Release returns an allocation to its node and re-kicks scheduling.
func (s *Scheduler) Release(a *platform.Allocation) {
	before := platform.ReleaseEpoch()
	a.Release()
	after := platform.ReleaseEpoch()
	s.mu.Lock()
	if i, ok := s.nodeOf[a.Node()]; ok {
		s.index.refresh(i)
		// Account our own release so a later placement miss does not
		// mistake it for out-of-band capacity needing a full re-sync.
		// Advance only when this call provably was release number
		// before+1 and nothing else interleaved — any ambiguity
		// (concurrent releases elsewhere, an already-released alloc)
		// leaves seenEpoch behind, which merely costs one conservative
		// refreshAll later, never a missed placement.
		if s.seenEpoch == before && after == before+1 {
			s.seenEpoch = after
		}
	}
	s.gen.Add(1)
	s.mu.Unlock()
	s.poke()
}

// Policy returns the scheduler's placement policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// Waiting returns the wait-pool depth.
func (s *Scheduler) Waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiting)
}

// Scheduled returns the count of granted placements.
func (s *Scheduler) Scheduled() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scheduled
}

// Close stops the scheduler. Waiting requests are dropped.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.gen.Add(1)
	s.mu.Unlock()
	close(s.done)
}

func (s *Scheduler) poke() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

func (s *Scheduler) loop() {
	for {
		select {
		case <-s.done:
			return
		case <-s.kick:
			s.schedule()
		}
	}
}

// schedule drains as much of the wait pool as the policy will grant. What
// "grantable" means is the policy's call: Strict stops at the first
// blocked head (the readiness guarantee of §III outweighs utilization),
// Backfill/BestFit keep granting fitting lower-priority work within the
// starvation bound. The ablation benchmark BenchmarkAblationBackfill
// quantifies the trade-off.
//
// Each pass collects every grantable request under one lock acquisition
// and delivers the whole batch after unlocking, so PlaceFn work (and the
// Releases it may perform) never holds up grant decisions.
func (s *Scheduler) schedule() {
	for {
		s.mu.Lock()
		pool := Pool{s: s}
		s.batch = s.batch[:0]
		for !s.closed && len(s.waiting) > 0 {
			pos, alloc := s.policy.Grant(&pool)
			if alloc == nil {
				break // nothing grantable: wait for a release
			}
			it := s.waiting.removeAt(pos)
			s.scheduled++
			s.batch = append(s.batch, Placement{Req: it.req, Alloc: alloc})
		}
		// A pass may mutate the index even without granting (a policy's
		// tryPlace/fits re-sync after an out-of-band release), so the
		// generation advances unconditionally — an occasional spurious
		// snapshot rebuild, never a stale one.
		s.gen.Add(1)
		s.mu.Unlock()
		if len(s.batch) == 0 {
			return
		}
		for _, p := range s.batch {
			s.place(p)
		}
	}
}

// tryPlace attempts placement of req via the capacity index: first-fit
// (lowest fitting node index) by default, least-leftover when bestFit is
// set. Callers hold s.mu.
func (s *Scheduler) tryPlace(req Request, bestFit bool) *platform.Allocation {
	find := s.index.find
	if bestFit {
		find = s.index.findBest
	}
	refreshed := false
	for {
		i := find(req.Cores, req.GPUs, req.MemGB)
		if i < 0 {
			if refreshed {
				return nil
			}
			// The index can only under-report capacity if an allocation
			// was released directly (not through Scheduler.Release) since
			// we last synced. The release-epoch comparison detects that
			// without touching any node; only a genuine out-of-band
			// release pays the O(nodes) re-sync.
			epoch := platform.ReleaseEpoch()
			if epoch == s.seenEpoch {
				return nil
			}
			s.seenEpoch = epoch
			s.index.refreshAll()
			refreshed = true
			continue
		}
		a := s.nodes[i].TryAlloc(req.Cores, req.GPUs, req.MemGB)
		s.index.refresh(i)
		if a != nil {
			return a
		}
		// The leaf was stale-high (capacity consumed behind the
		// scheduler's back); the refresh above corrected it — retry.
	}
}

// fits reports whether some node's current free capacity covers req,
// re-syncing the index once when an out-of-band release may have returned
// capacity behind the scheduler's back. Callers hold s.mu.
func (s *Scheduler) fits(req Request) bool {
	if s.index.find(req.Cores, req.GPUs, req.MemGB) >= 0 {
		return true
	}
	epoch := platform.ReleaseEpoch()
	if epoch == s.seenEpoch {
		return false
	}
	s.seenEpoch = epoch
	s.index.refreshAll()
	return s.index.find(req.Cores, req.GPUs, req.MemGB) >= 0
}

// --- wait pool --------------------------------------------------------------

type waitItem struct {
	req Request
	seq uint64
}

// waitHeap is a hand-rolled binary heap ordered by (priority desc, seq
// asc). Avoiding container/heap keeps push/pop free of interface boxing —
// one less allocation on every submit.
type waitHeap []waitItem

func (h waitHeap) less(i, j int) bool {
	if h[i].req.Priority != h[j].req.Priority {
		return h[i].req.Priority > h[j].req.Priority
	}
	return h[i].seq < h[j].seq
}

func (h *waitHeap) push(it waitItem) {
	*h = append(*h, it)
	h.siftUp(len(*h) - 1)
}

// removeAt deletes and returns the item at backing-array position pos
// (0 = head). Backfill policies grant from arbitrary positions, so the
// vacated slot's replacement may need to move either direction.
func (h *waitHeap) removeAt(pos int) waitItem {
	q := *h
	it := q[pos]
	last := len(q) - 1
	q[pos] = q[last]
	q[last] = waitItem{} // release references held by the vacated slot
	*h = q[:last]
	if pos < last {
		h.siftDown(pos)
		h.siftUp(pos)
	}
	return it
}

func (h *waitHeap) siftUp(i int) {
	q := *h
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *waitHeap) siftDown(i int) {
	q := *h
	for {
		l, r := 2*i+1, 2*i+2
		first := i
		if l < len(q) && q.less(l, first) {
			first = l
		}
		if r < len(q) && q.less(r, first) {
			first = r
		}
		if first == i {
			return
		}
		q[i], q[first] = q[first], q[i]
		i = first
	}
}

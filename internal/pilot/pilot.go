// Package pilot implements the pilot-job abstraction: acquiring a resource
// slice from a platform via a (simulated) batch system and running an
// agent on it. The agent owns the per-pilot runtime components of the
// paper's Fig. 2 — Stager, Scheduler, Executor, plus the ServiceManager
// extension — and drives tasks and service tasks through their state
// models.
package pilot

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/executor"
	"repro/internal/msgq"
	"repro/internal/platform"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/scheduler"
	"repro/internal/service"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/stager"
	"repro/internal/states"
)

// Errors.
var (
	ErrInsufficient = errors.New("pilot: platform cannot satisfy the pilot request")
	ErrUnknownTask  = errors.New("pilot: unknown task")
	ErrNotActive    = errors.New("pilot: not active")
	// ErrPilotStopped marks a task that was still queued (not yet granted
	// resources) when its pilot shut down. The seed wedged such tasks
	// forever on a closed scheduler; now they fail fast with this sentinel
	// so the session's TaskManager can re-route them to another pilot.
	ErrPilotStopped = errors.New("pilot: pilot stopped before task placement")
)

// Config wires a Pilot.
type Config struct {
	Clock simtime.Clock
	Src   *rng.Source
	Net   *msgq.Network
	// Platform is the machine to acquire resources from.
	Platform *platform.Platform
	// BootTime models the batch system's pilot startup (queue wait
	// excluded); defaults to N(10s, 2s).
	BootTime rng.DurationDist
	// PublishOverhead overrides the endpoint-publication overhead of the
	// pilot's registry (zero-valued: registry default).
	PublishOverhead rng.DurationDist
	// LaunchModel overrides the platform's launch model (nil: platform
	// default). Experiment harnesses that do not measure bootstrap use a
	// zero model to skip launch sleeps.
	LaunchModel *platform.LaunchModel
	// SchedPolicy names the agent scheduler's placement policy ("strict",
	// "backfill", "best-fit"). Empty falls back to the platform's
	// SchedPolicy, then to strict. Each pilot gets a fresh policy
	// instance, so backfill starvation state is never shared.
	SchedPolicy string
	// OnServicePublish, when set, observes every service endpoint
	// publication on this pilot (threaded into the agent ServiceManager's
	// publish phase). The session installs its EndpointRegistry mirror
	// here so local and re-placed services resolve session-wide.
	OnServicePublish func(proto.Endpoint)
	// StateCallback, when set, observes every task state transition (the
	// Updater hook). It also observes pilot transitions when
	// PilotStateCallback is unset.
	StateCallback states.Callback
	// PilotStateCallback, when set, observes the pilot's own lifecycle
	// transitions (labeled as a pilot entity, not a task).
	PilotStateCallback states.Callback
	// ServiceStateCallback, when set, observes every service instance
	// state transition on this pilot.
	ServiceStateCallback states.Callback
	// Attach registers the pilot in the package-level live registry so a
	// recovered session (core.Recover) can reattach to it by UID. Pilots
	// model remote machines that outlive a client crash; attachable pilots
	// must carry session-scoped UIDs to avoid cross-session collisions.
	Attach bool
	// Transport selects the msgq transport this pilot's services bind
	// their endpoints on (msgq.TransportInproc / msgq.TransportTCP; empty
	// = the network default). A pilot-agent process uses TCP so its
	// services are reachable from the driver process.
	Transport string
}

// Hooks is the rebindable set of session-side observers of a pilot. A
// recovered session calls Rebind to point a surviving pilot's callbacks at
// the new session's Updater, journal and EndpointRegistry mirror; the
// machines themselves keep running undisturbed.
type Hooks struct {
	PilotState       states.Callback
	TaskState        states.Callback
	ServiceState     states.Callback
	OnServicePublish func(proto.Endpoint)
}

// Pilot is one acquired resource slice plus its agent.
type Pilot struct {
	cfg     Config
	desc    spec.PilotDescription
	machine *states.Machine

	// agent components
	nodes  []*platform.Node // the pilot's virtual node view
	allocs []*platform.Allocation
	sched  *scheduler.Scheduler
	router *scheduler.Router
	exec   *executor.Executor
	stage  *stager.Manager
	svcMgr *service.Manager
	reg    *service.Registry

	// stopped is closed when the pilot shuts down, releasing every task
	// still waiting on a scheduler grant (see runTask).
	stopped  chan struct{}
	stopOnce sync.Once

	// hooks is the live session-side observer set. Machines register
	// trampolines that read it per event, so Rebind atomically redirects
	// every future callback to a recovered session.
	hooks atomic.Pointer[Hooks]

	mu    sync.Mutex
	seq   int
	tasks map[string]*Task
}

// Rebind redirects the pilot's session-side callbacks (state observers and
// the endpoint-publication mirror) to h. Crash recovery uses it to adopt a
// surviving pilot into the recovered session.
func (p *Pilot) Rebind(h Hooks) { p.hooks.Store(&h) }

// --- live registry ----------------------------------------------------------

// The package-level live registry models the "remote machines" side of a
// client crash: pilots launched with Config.Attach stay discoverable by
// UID, so core.Recover can reattach where a real runtime would redial the
// agent's network endpoint.
var (
	liveMu sync.Mutex
	live   = make(map[string]*Pilot)
)

// Lookup returns the attached live pilot with the given UID, if any.
func Lookup(uid string) (*Pilot, bool) {
	liveMu.Lock()
	defer liveMu.Unlock()
	p, ok := live[uid]
	return p, ok
}

// Task is one managed compute task.
type Task struct {
	desc    spec.TaskDescription
	machine *states.Machine

	// enqueued closes once the task is past wait-pool admission: the agent
	// scheduler accepted its request (or the task settled without ever
	// reaching the scheduler). Session-level ordered handoffs gate on it
	// instead of polling the scheduler's snapshot.
	enqueued chan struct{}
	enqOnce  sync.Once

	mu     sync.Mutex
	result executor.Result
}

// Enqueued returns a channel closed once the task has been admitted to the
// agent scheduler's wait pool (or settled without reaching it). It is the
// scheduler-side acknowledgment ordered drain handoffs block on.
func (t *Task) Enqueued() <-chan struct{} { return t.enqueued }

func (t *Task) markEnqueued() { t.enqOnce.Do(func() { close(t.enqueued) }) }

// UID returns the task UID.
func (t *Task) UID() string { return t.machine.UID() }

// State returns the task's current state.
func (t *Task) State() states.State { return t.machine.Current() }

// Description returns the submitted description.
func (t *Task) Description() spec.TaskDescription { return t.desc }

// Result returns the execution result (valid once DONE or FAILED).
func (t *Task) Result() executor.Result {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.result
}

// Launch validates desc, acquires nodes from the platform (simulating the
// batch system), boots the agent, and returns an ACTIVE pilot.
func Launch(cfg Config, desc spec.PilotDescription) (*Pilot, error) {
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	if cfg.Clock == nil || cfg.Src == nil || cfg.Net == nil || cfg.Platform == nil {
		return nil, errors.New("pilot: incomplete config")
	}
	if cfg.BootTime.IsZero() {
		cfg.BootTime = rng.NormalDuration(10*time.Second, 2*time.Second)
	}
	polName := cfg.SchedPolicy
	if polName == "" {
		polName = cfg.Platform.SchedPolicy
	}
	policy, err := scheduler.PolicyByName(polName)
	if err != nil {
		return nil, err
	}
	if desc.UID == "" {
		desc.UID = fmt.Sprintf("pilot.%s.%04d", desc.Platform, cfg.Src.Intn(10000))
	}

	p := &Pilot{
		cfg:     cfg,
		desc:    desc,
		machine: states.NewMachine(desc.UID, states.PilotModel(), cfg.Clock),
		stopped: make(chan struct{}),
		tasks:   make(map[string]*Task),
	}
	pilotCB := cfg.PilotStateCallback
	if pilotCB == nil {
		pilotCB = cfg.StateCallback
	}
	p.hooks.Store(&Hooks{
		PilotState:       pilotCB,
		TaskState:        cfg.StateCallback,
		ServiceState:     cfg.ServiceStateCallback,
		OnServicePublish: cfg.OnServicePublish,
	})
	p.machine.OnTransition(func(uid string, from, to states.State, at time.Time) {
		if cb := p.hooks.Load().PilotState; cb != nil {
			cb(uid, from, to, at)
		}
	})
	if err := p.machine.To(states.PilotLaunching); err != nil {
		return nil, err
	}

	if err := p.acquire(); err != nil {
		_ = p.machine.Fail()
		return nil, err
	}

	// batch-system bootstrap
	if d := cfg.BootTime.Sample(cfg.Src); d > 0 {
		cfg.Clock.Sleep(d)
	}

	// assemble the agent
	launch := cfg.Platform.Launch
	if cfg.LaunchModel != nil {
		launch = *cfg.LaunchModel
	}
	p.router = scheduler.NewRouter()
	p.sched = scheduler.New(p.nodes, func(pl scheduler.Placement) {
		if !p.router.Route(pl) {
			// The waiter cancelled (task ctx done, or pilot stopping)
			// between grant and delivery: give the capacity back instead
			// of leaking it.
			p.sched.Release(pl.Alloc)
		}
	}, scheduler.WithPolicy(policy), scheduler.WithClock(cfg.Clock))
	p.exec = executor.New(cfg.Clock, cfg.Src.Derive(desc.UID+".exec"), launch)
	p.stage = stager.NewManager(cfg.Clock, cfg.Src.Derive(desc.UID+".stage"))
	p.reg = service.NewRegistry(cfg.Clock, cfg.Src.Derive(desc.UID+".reg"), cfg.PublishOverhead)
	// A publication from a pilot that has already stopped is stale by
	// definition — the session is (or will be) re-placing the service
	// elsewhere, and mirroring the dead address could overwrite the
	// failover re-publication. Drop it at the source. (Best effort: this
	// is a check-then-act against the stop signal, so a straggler can slip
	// the instant before shutdown — the session's current-host check
	// narrows the window further, and the failover re-publication
	// supersedes anything that still slips both.) The hook indirection
	// lets a recovered session Rebind the mirror without restarting the
	// pilot.
	onPublish := func(ep proto.Endpoint) {
		select {
		case <-p.stopped:
			return
		default:
		}
		if cb := p.hooks.Load().OnServicePublish; cb != nil {
			cb(ep)
		}
	}
	svcMgr, err := service.NewManager(service.Config{
		Clock: cfg.Clock, Src: cfg.Src.Derive(desc.UID + ".svc"), Net: cfg.Net,
		Sched: p.sched, Router: p.router, Exec: p.exec, Stage: p.stage,
		Registry: p.reg, OnPublish: onPublish, Stopped: p.stopped,
		Platform:  cfg.Platform.Name(),
		UIDPrefix: desc.UID + ".",
		Transport: cfg.Transport,
		StateCallback: func(uid string, from, to states.State, at time.Time) {
			if cb := p.hooks.Load().ServiceState; cb != nil {
				cb(uid, from, to, at)
			}
		},
	})
	if err != nil {
		p.release()
		_ = p.machine.Fail()
		return nil, err
	}
	p.svcMgr = svcMgr

	if err := p.machine.To(states.PilotActive); err != nil {
		p.release()
		return nil, err
	}
	if cfg.Attach {
		liveMu.Lock()
		live[desc.UID] = p
		liveMu.Unlock()
	}
	return p, nil
}

// acquire reserves whole nodes on the platform and builds the pilot's
// virtual node view. Platforms may mix node shapes (platform.NewMixed):
// a Nodes-based request takes the first available nodes regardless of
// shape, while a Cores/GPUs-based request accumulates capacity across
// whatever shapes the platform offers — skipping nodes that contribute
// nothing to the still-unmet dimensions, so a GPU request on a mixed
// campus does not pointlessly reserve its CPU-only partition.
//
// When every demanded dimension exists somewhere on the platform, this
// acquires exactly the nodes the previous ceil-over-one-spec
// computation selected on homogeneous platforms. One deliberate
// divergence: demanding a dimension no node shape provides (e.g. GPUs
// on a GPU-less machine) now fails with ErrInsufficient, where the old
// path silently granted an under-provisioned pilot whose scheduler
// would then reject every GPU task as unsatisfiable anyway.
func (p *Pilot) acquire() error {
	plat := p.cfg.Platform
	needNodes := p.desc.Nodes
	needCores, needGPUs := 0, 0
	if needNodes == 0 {
		needCores, needGPUs = p.desc.Cores, p.desc.GPUs
		if needCores <= 0 && needGPUs <= 0 {
			return ErrInsufficient
		}
	}
	gotCores, gotGPUs := 0, 0
	done := func() bool {
		if needNodes > 0 {
			return len(p.allocs) == needNodes
		}
		return gotCores >= needCores && gotGPUs >= needGPUs
	}
	for _, n := range plat.Nodes() {
		if done() {
			break
		}
		sp := n.Spec()
		if needNodes == 0 {
			contributes := (gotCores < needCores && sp.Cores > 0) ||
				(gotGPUs < needGPUs && sp.GPUs > 0)
			if !contributes {
				continue
			}
		}
		if a := n.TryAlloc(sp.Cores, sp.GPUs, sp.MemGB); a != nil {
			p.allocs = append(p.allocs, a)
			p.nodes = append(p.nodes, platform.NewNode(n.Name(), sp))
			gotCores += sp.Cores
			gotGPUs += sp.GPUs
		}
	}
	if !done() {
		got := len(p.allocs)
		p.release()
		if needNodes > 0 {
			return fmt.Errorf("%w: got %d/%d nodes on %s", ErrInsufficient, got, needNodes, plat.Name())
		}
		return fmt.Errorf("%w: got %d/%d cores, %d/%d gpus on %s",
			ErrInsufficient, gotCores, needCores, gotGPUs, needGPUs, plat.Name())
	}
	return nil
}

func (p *Pilot) release() {
	// Every stop path — shutdown, launch failure, fault injection — runs
	// through here, so this is also where an attached pilot leaves the
	// package-level live registry: a pilot that stops outside the Shutdown
	// happy path must not pin its object graph for the process lifetime.
	p.detach()
	for _, a := range p.allocs {
		a.Release()
	}
	p.allocs = nil
}

// detach removes the pilot from the package-level live registry
// (idempotent; a no-op for pilots launched without Config.Attach).
func (p *Pilot) detach() {
	liveMu.Lock()
	delete(live, p.desc.UID)
	liveMu.Unlock()
}

// UID returns the pilot UID.
func (p *Pilot) UID() string { return p.machine.UID() }

// State returns the pilot's lifecycle state.
func (p *Pilot) State() states.State { return p.machine.Current() }

// Description returns the pilot description.
func (p *Pilot) Description() spec.PilotDescription { return p.desc }

// Nodes returns the pilot's virtual nodes.
func (p *Pilot) Nodes() []*platform.Node { return p.nodes }

// Shapes returns the node-shape composition of the pilot's allocation,
// as consecutive runs of identical specs in node order. Pilots on mixed
// platforms report more than one group; the scheduler underneath places
// across all of them.
func (p *Pilot) Shapes() []platform.NodeGroup { return platform.ShapesOf(p.nodes) }

// Services returns the pilot's ServiceManager.
func (p *Pilot) Services() *service.Manager { return p.svcMgr }

// Registry returns the pilot's endpoint registry.
func (p *Pilot) Registry() *service.Registry { return p.reg }

// Stage returns the pilot's data manager.
func (p *Pilot) Stage() *stager.Manager { return p.stage }

// Executor returns the pilot's executor (exposed for metrics).
func (p *Pilot) Executor() *executor.Executor { return p.exec }

// Scheduler returns the agent's continuous scheduler (exposed so callers
// can inspect wait depth, grant counts and the active placement policy).
func (p *Pilot) Scheduler() *scheduler.Scheduler { return p.sched }

// Snapshot returns the agent scheduler's live capacity/queue-depth view —
// the load probe session-level routers rank pilots on. See
// scheduler.Snapshot for what it carries and what it costs.
func (p *Pilot) Snapshot() scheduler.Snapshot { return p.sched.Snapshot() }

// Stopped returns a channel closed when the pilot shuts down. Tasks still
// waiting for placement at that point fail with ErrPilotStopped.
func (p *Pilot) Stopped() <-chan struct{} { return p.stopped }

// Network returns the message network the pilot is wired to. A recovered
// session adopts it so reattached services stay reachable at their
// published addresses.
func (p *Pilot) Network() *msgq.Network { return p.cfg.Net }

// Clock returns the clock the pilot runs on.
func (p *Pilot) Clock() simtime.Clock { return p.cfg.Clock }

// SubmitTask validates d and drives it through the task lifecycle
// asynchronously.
func (p *Pilot) SubmitTask(ctx context.Context, d spec.TaskDescription) (*Task, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if p.machine.Current() != states.PilotActive {
		return nil, fmt.Errorf("%w: pilot %s in %s", ErrNotActive, p.UID(), p.machine.Current())
	}
	p.mu.Lock()
	p.seq++
	if d.UID == "" {
		d.UID = fmt.Sprintf("%s.task.%06d", p.machine.UID(), p.seq)
	}
	t := &Task{
		desc:     d,
		machine:  states.NewMachine(d.UID, states.TaskModel(), p.cfg.Clock),
		enqueued: make(chan struct{}),
	}
	t.machine.OnTransition(func(uid string, from, to states.State, at time.Time) {
		if cb := p.hooks.Load().TaskState; cb != nil {
			cb(uid, from, to, at)
		}
	})
	p.tasks[d.UID] = t
	p.mu.Unlock()

	go p.runTask(ctx, t)
	return t, nil
}

// runTask drives one task: TMGR_SCHEDULING → STAGING_INPUT →
// AGENT_SCHEDULING → AGENT_EXECUTING → STAGING_OUTPUT → DONE.
func (p *Pilot) runTask(ctx context.Context, t *Task) {
	fail := func(err error) {
		t.mu.Lock()
		t.result.Err = err
		t.mu.Unlock()
		_ = t.machine.Fail()
		// A settled task is past the enqueue question: release anyone
		// waiting on the scheduler-side acknowledgment.
		t.markEnqueued()
	}
	d := t.desc
	if err := t.machine.To(states.TaskTmgrScheduling); err != nil {
		fail(err)
		return
	}
	if err := t.machine.To(states.TaskStagingInput); err != nil {
		fail(err)
		return
	}
	if len(d.InputStaging) > 0 {
		if _, err := p.stage.StageAll(d.InputStaging); err != nil {
			fail(err)
			return
		}
	}
	if err := t.machine.To(states.TaskScheduling); err != nil {
		fail(err)
		return
	}
	placed := p.router.Expect(d.UID)
	if err := p.sched.Submit(scheduler.Request{
		UID: d.UID, Cores: d.Cores, GPUs: d.GPUs, MemGB: d.MemGB, Priority: d.Priority,
	}); err != nil {
		p.router.Cancel(d.UID)
		if errors.Is(err, scheduler.ErrClosed) {
			// The scheduler shut down between task admission and enqueue:
			// same situation as a queued task at shutdown, same sentinel.
			err = fmt.Errorf("%w: %v", ErrPilotStopped, err)
		}
		fail(err)
		return
	}
	// Wait-pool admission succeeded: acknowledge the enqueue. From here
	// the scheduler owns the request, so an ordered drain behind this task
	// can submit without racing the handoff order.
	t.markEnqueued()
	// abandon cancels the placement expectation. If the scheduler's
	// router already committed a grant to this task (Cancel finds no
	// waiter), exactly one placement is in flight on the buffered
	// channel: receive it and give the capacity back, or it would stay
	// allocated for the pilot's remaining lifetime.
	abandon := func() {
		if !p.router.Cancel(d.UID) {
			pl := <-placed
			p.sched.Release(pl.Alloc)
		}
	}
	var pl scheduler.Placement
	select {
	case pl = <-placed:
	case <-p.stopped:
		abandon()
		fail(fmt.Errorf("%w: %s", ErrPilotStopped, p.UID()))
		return
	case <-ctx.Done():
		abandon()
		fail(ctx.Err())
		return
	}
	if err := t.machine.To(states.TaskExecuting); err != nil {
		pl.Alloc.Release()
		fail(err)
		return
	}
	res := p.exec.Execute(ctx, p.sched, pl, d)
	t.mu.Lock()
	t.result = res
	t.mu.Unlock()
	if res.Err != nil {
		fail(res.Err)
		return
	}
	if err := t.machine.To(states.TaskStagingOutput); err != nil {
		fail(err)
		return
	}
	if len(d.OutputStaging) > 0 {
		if _, err := p.stage.StageAll(d.OutputStaging); err != nil {
			fail(err)
			return
		}
	}
	if err := t.machine.To(states.TaskDone); err != nil {
		fail(err)
	}
}

// Task returns a managed task by UID.
func (p *Pilot) Task(uid string) (*Task, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.tasks[uid]
	return t, ok
}

// Tasks returns every managed task.
func (p *Pilot) Tasks() []*Task {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Task, 0, len(p.tasks))
	for _, t := range p.tasks {
		out = append(out, t)
	}
	return out
}

// WaitTasks blocks until every listed task (all tasks when none listed)
// reaches a final state, or ctx expires. It returns the first failure.
func (p *Pilot) WaitTasks(ctx context.Context, uids ...string) error {
	if len(uids) == 0 {
		for _, t := range p.Tasks() {
			uids = append(uids, t.UID())
		}
	}
	var firstErr error
	for _, uid := range uids {
		t, ok := p.Task(uid)
		if !ok {
			return fmt.Errorf("%w: %s", ErrUnknownTask, uid)
		}
		for !t.machine.IsFinal() {
			ch := t.machine.WaitChan()
			if t.machine.IsFinal() {
				break
			}
			select {
			case <-ch:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if t.State() == states.TaskFailed && firstErr == nil {
			firstErr = t.Result().Err
			if firstErr == nil {
				firstErr = fmt.Errorf("pilot: task %s failed", uid)
			}
		}
	}
	return firstErr
}

// Shutdown terminates the agent and releases the pilot's resources.
// Tasks that were queued but never granted resources fail with
// ErrPilotStopped (the stopped channel closes before the scheduler, so
// they observe the shutdown rather than wedging on a closed wait pool).
func (p *Pilot) Shutdown() error {
	if p.machine.Current() != states.PilotActive {
		return fmt.Errorf("%w: %s", ErrNotActive, p.machine.Current())
	}
	// Leave the live registry before the stop signal propagates, so a
	// concurrent Recover cannot adopt a pilot that is mid-teardown.
	p.detach()
	p.stopOnce.Do(func() { close(p.stopped) })
	p.svcMgr.Close()
	p.sched.Close()
	p.release()
	return p.machine.To(states.PilotDone)
}

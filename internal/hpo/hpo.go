// Package hpo is the hyperparameter-optimization substrate of the Cell
// Painting pipeline — the Optuna analogue the paper names: "The training
// is iterative, driven by hyperparameter optimization using the Optuna
// framework." It implements the ask/tell protocol with two samplers
// (random search and a TPE-flavoured good/bad density-ratio sampler) and
// median pruning of unpromising trials.
package hpo

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/rng"
)

// Param is one dimension of the search space.
type Param struct {
	// Name identifies the hyperparameter.
	Name string
	// Choices are the candidate values (categorical/log-grid search space,
	// matching the pipeline's lr/batch/decay/dropout grids).
	Choices []float64
}

// Space is a named search space.
type Space []Param

// Validate checks the space for emptiness.
func (s Space) Validate() error {
	if len(s) == 0 {
		return errors.New("hpo: empty search space")
	}
	for _, p := range s {
		if p.Name == "" || len(p.Choices) == 0 {
			return fmt.Errorf("hpo: parameter %q has no choices", p.Name)
		}
	}
	return nil
}

// Trial is one sampled configuration.
type Trial struct {
	ID     int
	Params map[string]float64
	// Value is the reported objective (lower is better); NaN until told.
	Value float64
	// State is "running", "complete" or "pruned".
	State string
}

// Sampler proposes configurations.
type Sampler interface {
	Sample(space Space, history []Trial, src *rng.Source) map[string]float64
}

// RandomSampler draws each parameter uniformly from its choices.
type RandomSampler struct{}

// Sample implements Sampler.
func (RandomSampler) Sample(space Space, _ []Trial, src *rng.Source) map[string]float64 {
	out := make(map[string]float64, len(space))
	for _, p := range space {
		out[p.Name] = p.Choices[src.Intn(len(p.Choices))]
	}
	return out
}

// TPESampler is a simplified Tree-structured Parzen Estimator: completed
// trials are split into good (best gamma fraction) and bad; each
// parameter choice is sampled proportionally to the smoothed ratio of its
// frequency among good versus bad trials. Falls back to random until
// enough history exists.
type TPESampler struct {
	// Gamma is the good fraction (default 0.25).
	Gamma float64
	// MinHistory is the trial count before TPE engages (default 8).
	MinHistory int
}

// Sample implements Sampler.
func (t TPESampler) Sample(space Space, history []Trial, src *rng.Source) map[string]float64 {
	gamma := t.Gamma
	if gamma <= 0 || gamma >= 1 {
		gamma = 0.25
	}
	minHist := t.MinHistory
	if minHist <= 0 {
		minHist = 8
	}
	var done []Trial
	for _, tr := range history {
		if tr.State == "complete" && !math.IsNaN(tr.Value) {
			done = append(done, tr)
		}
	}
	if len(done) < minHist {
		return RandomSampler{}.Sample(space, history, src)
	}
	sort.Slice(done, func(i, j int) bool { return done[i].Value < done[j].Value })
	nGood := int(math.Ceil(gamma * float64(len(done))))
	good, bad := done[:nGood], done[nGood:]

	out := make(map[string]float64, len(space))
	for _, p := range space {
		weights := make([]float64, len(p.Choices))
		for i, c := range p.Choices {
			g := countChoice(good, p.Name, c) + 1.0 // Laplace smoothing
			b := countChoice(bad, p.Name, c) + 1.0
			weights[i] = g / b
		}
		out[p.Name] = p.Choices[weightedPick(weights, src)]
	}
	return out
}

func countChoice(trials []Trial, name string, c float64) float64 {
	n := 0.0
	for _, tr := range trials {
		if v, ok := tr.Params[name]; ok && v == c {
			n++
		}
	}
	return n
}

func weightedPick(weights []float64, src *rng.Source) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	r := src.Float64() * total
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Study coordinates trials. It is safe for concurrent ask/tell, matching
// the pipeline's concurrently executing training tasks.
type Study struct {
	space   Space
	sampler Sampler
	src     *rng.Source

	mu     sync.Mutex
	nextID int
	trials map[int]*Trial
	// prune medians: intermediate reports per trial
	reports map[int][]float64
}

// NewStudy validates the space and builds a Study. sampler defaults to
// TPE.
func NewStudy(space Space, sampler Sampler, src *rng.Source) (*Study, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, errors.New("hpo: nil rng source")
	}
	if sampler == nil {
		sampler = TPESampler{}
	}
	return &Study{
		space:   space,
		sampler: sampler,
		src:     src,
		trials:  make(map[int]*Trial),
		reports: make(map[int][]float64),
	}, nil
}

// Ask samples a new trial.
func (s *Study) Ask() Trial {
	s.mu.Lock()
	defer s.mu.Unlock()
	hist := s.historyLocked()
	params := s.sampler.Sample(s.space, hist, s.src)
	s.nextID++
	tr := &Trial{ID: s.nextID, Params: params, Value: math.NaN(), State: "running"}
	s.trials[tr.ID] = tr
	return *tr
}

// Tell reports a trial's final objective value.
func (s *Study) Tell(id int, value float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tr, ok := s.trials[id]
	if !ok {
		return fmt.Errorf("hpo: unknown trial %d", id)
	}
	if tr.State != "running" {
		return fmt.Errorf("hpo: trial %d already %s", id, tr.State)
	}
	tr.Value = value
	tr.State = "complete"
	return nil
}

// Report records an intermediate value and returns true if the trial
// should be pruned: the value is worse than the median of other trials'
// reports at the same step (Optuna's MedianPruner).
func (s *Study) Report(id int, step int, value float64) (prune bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tr, ok := s.trials[id]
	if !ok {
		return false, fmt.Errorf("hpo: unknown trial %d", id)
	}
	if tr.State != "running" {
		return false, fmt.Errorf("hpo: trial %d already %s", id, tr.State)
	}
	// collect other trials' value at this step
	var peers []float64
	for otherID, reports := range s.reports {
		if otherID == id {
			continue
		}
		if step < len(reports) {
			peers = append(peers, reports[step])
		}
	}
	reports := s.reports[id]
	for len(reports) <= step {
		reports = append(reports, math.NaN())
	}
	reports[step] = value
	s.reports[id] = reports

	if len(peers) < 2 {
		return false, nil
	}
	sort.Float64s(peers)
	median := peers[len(peers)/2]
	return value > median, nil
}

// Prune marks a trial pruned.
func (s *Study) Prune(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tr, ok := s.trials[id]
	if !ok {
		return fmt.Errorf("hpo: unknown trial %d", id)
	}
	if tr.State != "running" {
		return fmt.Errorf("hpo: trial %d already %s", id, tr.State)
	}
	tr.State = "pruned"
	return nil
}

// Best returns the completed trial with the lowest value.
func (s *Study) Best() (Trial, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var best *Trial
	for _, tr := range s.trials {
		if tr.State != "complete" {
			continue
		}
		if best == nil || tr.Value < best.Value {
			best = tr
		}
	}
	if best == nil {
		return Trial{}, errors.New("hpo: no completed trials")
	}
	return *best, nil
}

// Trials returns all trials sorted by ID.
func (s *Study) Trials() []Trial {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.historyLocked()
	return out
}

func (s *Study) historyLocked() []Trial {
	out := make([]Trial, 0, len(s.trials))
	for _, tr := range s.trials {
		out = append(out, *tr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Remote deployment (paper §IV, R3 scenario): a model service runs behind
// a real HTTP REST gateway (the R3 cloud server side), and a client drives
// it over genuine TCP sockets — the same code path cmd/modelserve exposes,
// exercised end to end in one process.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/restapi"
	"repro/internal/rng"
	"repro/internal/serving"
	"repro/internal/simtime"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "remote: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	clock := simtime.NewScaled(2000, core.DefaultOrigin)
	src := rng.New(3)

	// --- the "R3" side: persistent model service behind REST ---
	spec, err := llm.Lookup("llama-8b")
	if err != nil {
		return err
	}
	srv, err := serving.New(serving.Config{
		UID:     "r3.service.0001",
		Backend: serving.LLMBackend{M: llm.NewInstance(spec, clock, src.Derive("model"))},
		Clock:   clock,
		Src:     src.Derive("server"),
	})
	if err != nil {
		return err
	}
	fmt.Println("R3 side: loading llama-8b ...")
	load, err := srv.Start()
	if err != nil {
		return err
	}
	g, err := restapi.NewGateway(srv, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer g.Close()
	fmt.Printf("R3 side: %s ready after %s simulated load, serving at %s\n",
		srv.Model(), load.Round(time.Second), g.URL())

	// --- the client side: health probe then a batch of inferences ---
	client := restapi.NewClient(g.URL())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	h, err := client.Health(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("client side: health ok (ready=%v, queue=%d)\n", h.Ready, h.QueueDepth)

	coll := metrics.NewCollector()
	prompts := []string{
		"rank candidate therapeutics for low-dose radiation damage",
		"explain the dose-response curve of pathway X",
		"propose follow-up experiments for signature S3",
		"summarize morphological changes at 0.1 Gy",
	}
	for i, prompt := range prompts {
		start := clock.Now()
		resp, err := client.Generate(ctx, restapi.GenerateRequest{
			Model: "llama-8b", Prompt: prompt, MaxTokens: 64,
			RequestID: fmt.Sprintf("req-%d", i), ClientID: "delta-client",
		})
		if err != nil {
			return err
		}
		total := clock.Now().Sub(start)
		coll.Add("rt.total", total)
		coll.Add("rt.inference", resp.Timing.InferTime())
		fmt.Printf("  req %d: %3d tokens, inference %6.2fs, total RT %6.2fs\n",
			i, resp.OutputTokens, resp.Timing.InferTime().Seconds(), total.Seconds())
	}
	fmt.Printf("inference dominates RT (Fig. 6): inference %s vs total %s\n",
		coll.Stats("rt.inference"), coll.Stats("rt.total"))

	srv.Drain()
	return nil
}

package simtime

import (
	"fmt"
	"time"
)

// Scaled is a Clock on which time flows Scale times faster than the wall
// clock: sleeping for one simulated second takes 1/Scale real seconds. A
// Scale of 1 behaves like Real with a configurable origin.
//
// Scaled preserves real concurrency (goroutines genuinely run in parallel
// and genuinely block) while compressing the long service bootstrap and
// inference durations the paper measures into milliseconds.
type Scaled struct {
	scale     float64
	origin    time.Time // simulated time at construction
	realStart time.Time // wall time at construction
}

// NewScaled returns a clock whose time advances factor times faster than
// wall time, starting from origin. factor must be positive.
func NewScaled(factor float64, origin time.Time) *Scaled {
	if factor <= 0 {
		panic(fmt.Sprintf("simtime: non-positive scale factor %v", factor))
	}
	return &Scaled{scale: factor, origin: origin, realStart: time.Now()}
}

// Scale returns the compression factor.
func (s *Scaled) Scale() float64 { return s.scale }

// Now implements Clock.
func (s *Scaled) Now() time.Time {
	real := time.Since(s.realStart)
	return s.origin.Add(time.Duration(float64(real) * s.scale))
}

// compress converts a simulated duration to the wall duration to wait.
func (s *Scaled) compress(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	w := time.Duration(float64(d) / s.scale)
	if w <= 0 {
		w = 1 // never busy-spin: round sub-nanosecond waits up
	}
	return w
}

// Sleep implements Clock.
func (s *Scaled) Sleep(d time.Duration) { time.Sleep(s.compress(d)) }

// After implements Clock.
func (s *Scaled) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	time.AfterFunc(s.compress(d), func() { ch <- s.Now() })
	return ch
}

// NewTimer implements Clock.
func (s *Scaled) NewTimer(d time.Duration) Timer {
	ch := make(chan time.Time, 1)
	t := time.AfterFunc(s.compress(d), func() { ch <- s.Now() })
	return &scaledTimer{t: t, ch: ch}
}

type scaledTimer struct {
	t  *time.Timer
	ch chan time.Time
}

func (t *scaledTimer) C() <-chan time.Time { return t.ch }
func (t *scaledTimer) Stop() bool          { return t.t.Stop() }

// NewTicker implements Clock.
func (s *Scaled) NewTicker(d time.Duration) Ticker {
	inner := time.NewTicker(s.compress(d))
	ch := make(chan time.Time, 1)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-inner.C:
				select {
				case ch <- s.Now():
				default: // drop ticks nobody consumes, like time.Ticker
				}
			case <-done:
				return
			}
		}
	}()
	return &scaledTicker{inner: inner, ch: ch, done: done}
}

type scaledTicker struct {
	inner *time.Ticker
	ch    chan time.Time
	done  chan struct{}
}

func (t *scaledTicker) C() <-chan time.Time { return t.ch }

func (t *scaledTicker) Stop() {
	t.inner.Stop()
	select {
	case <-t.done:
	default:
		close(t.done)
	}
}

// Package rng provides deterministic pseudo-random number generation and
// the duration distributions used to model platform behaviour (launch
// overheads, network latency jitter, model load and inference times).
//
// Determinism is a first-class requirement: every stochastic component in
// the runtime derives a child Source keyed by its entity UID from a single
// experiment seed, so any run — including the full figure sweeps — is
// exactly replayable.
package rng

import (
	"hash/fnv"
	"math"
	"sync"
	"time"
)

// Source is a deterministic PRNG (splitmix64 core). It is safe for
// concurrent use.
type Source struct {
	mu    sync.Mutex
	state uint64
	// cached second normal variate from Box-Muller
	hasSpare bool
	spare    float64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Derive returns a child Source whose stream is a deterministic function of
// the parent seed and name. Deriving the same name twice yields identical
// streams; distinct names yield decorrelated streams.
func (s *Source) Derive(name string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	s.mu.Lock()
	base := s.state
	s.mu.Unlock()
	return New(mix(base ^ h.Sum64()))
}

// mix is one splitmix64 output step applied to z as state.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.mu.Lock()
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	s.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Normal returns a normally distributed float with the given mean and
// standard deviation (Box-Muller).
func (s *Source) Normal(mean, std float64) float64 {
	s.mu.Lock()
	if s.hasSpare {
		s.hasSpare = false
		v := s.spare
		s.mu.Unlock()
		return mean + std*v
	}
	s.mu.Unlock()
	var u, v float64
	for {
		u = s.Float64()
		if u > 0 {
			break
		}
	}
	v = s.Float64()
	r := math.Sqrt(-2 * math.Log(u))
	z0 := r * math.Cos(2*math.Pi*v)
	z1 := r * math.Sin(2*math.Pi*v)
	s.mu.Lock()
	s.hasSpare = true
	s.spare = z1
	s.mu.Unlock()
	return mean + std*z0
}

// LogNormal returns exp(N(mu, sigma)).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Exponential returns an exponentially distributed float with the given
// mean (i.e. rate 1/mean).
func (s *Source) Exponential(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Dist is a real-valued distribution sampled against a Source.
type Dist interface {
	Sample(src *Source) float64
	// Mean returns the distribution's expected value (used by analytic
	// sanity checks in the experiment harness).
	Mean() float64
}

// Const is a degenerate distribution always returning V.
type Const struct{ V float64 }

// Sample implements Dist.
func (c Const) Sample(*Source) float64 { return c.V }

// Mean implements Dist.
func (c Const) Mean() float64 { return c.V }

// Uniform is the uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(src *Source) float64 { return u.Lo + (u.Hi-u.Lo)*src.Float64() }

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Normal is the normal distribution, optionally truncated below at Min
// (re-sampled; Min is ignored when NaN). Use TruncNormal to construct.
type Normal struct {
	Mu, Sigma float64
	Min       float64 // lower truncation bound; -Inf disables
}

// NewNormal returns an untruncated normal distribution.
func NewNormal(mu, sigma float64) Normal {
	return Normal{Mu: mu, Sigma: sigma, Min: math.Inf(-1)}
}

// TruncNormal returns a normal distribution truncated below at min.
func TruncNormal(mu, sigma, min float64) Normal {
	return Normal{Mu: mu, Sigma: sigma, Min: min}
}

// Sample implements Dist. Truncation clamps after 16 rejected draws to
// guarantee termination for pathological parameters.
func (n Normal) Sample(src *Source) float64 {
	for i := 0; i < 16; i++ {
		v := src.Normal(n.Mu, n.Sigma)
		if v >= n.Min {
			return v
		}
	}
	return n.Min
}

// Mean implements Dist. For truncated normals this returns the untruncated
// mean, which is accurate when Min is several sigmas below Mu (the only
// regime used here).
func (n Normal) Mean() float64 { return n.Mu }

// LogNormal is parameterized by the mean and sigma of the underlying
// normal.
type LogNormal struct{ Mu, Sigma float64 }

// Sample implements Dist.
func (l LogNormal) Sample(src *Source) float64 { return src.LogNormal(l.Mu, l.Sigma) }

// Mean implements Dist.
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Exponential distribution with the given mean.
type Exponential struct{ MeanV float64 }

// Sample implements Dist.
func (e Exponential) Sample(src *Source) float64 { return src.Exponential(e.MeanV) }

// Mean implements Dist.
func (e Exponential) Mean() float64 { return e.MeanV }

// DurationDist samples a Dist as a time.Duration, interpreting the
// underlying distribution's unit as seconds. Negative samples are clamped
// to zero (durations cannot be negative).
type DurationDist struct{ D Dist }

// Seconds wraps d as a duration distribution in units of seconds.
func Seconds(d Dist) DurationDist { return DurationDist{D: d} }

// ConstDuration returns a degenerate duration distribution.
func ConstDuration(d time.Duration) DurationDist {
	return DurationDist{D: Const{V: d.Seconds()}}
}

// NormalDuration returns a duration distribution N(mu, sigma) truncated at
// zero.
func NormalDuration(mu, sigma time.Duration) DurationDist {
	return DurationDist{D: TruncNormal(mu.Seconds(), sigma.Seconds(), 0)}
}

// Sample draws one duration.
func (dd DurationDist) Sample(src *Source) time.Duration {
	if dd.D == nil {
		return 0
	}
	v := dd.D.Sample(src)
	if v <= 0 {
		return 0
	}
	return time.Duration(v * float64(time.Second))
}

// Mean returns the expected duration.
func (dd DurationDist) Mean() time.Duration {
	if dd.D == nil {
		return 0
	}
	m := dd.D.Mean()
	if m <= 0 {
		return 0
	}
	return time.Duration(m * float64(time.Second))
}

// IsZero reports whether the distribution is unset.
func (dd DurationDist) IsZero() bool { return dd.D == nil }

package experiments

// Hotspot-balancing ablation: the paper's client-side service selection is
// a blind assignment — clients are mapped to service instances round-robin
// at submission time and never react to load. This ablation quantifies
// what the session's load-aware balancing seam buys under a skewed open
// stream: 80% of the offered mass targets one logical service while the
// rest lands directly on the other backends as background load the
// balancer can only see through registry load reports. The same seeded
// arrival schedule is replayed against three pickers — seeded
// power-of-two-choices, blind round-robin, and the full-scan least-loaded
// oracle — so the p99 spread isolates the selection strategy. A second
// half contrasts failover cost with and without warm standbys: the same
// pilot kill is answered either by promoting a pre-bootstrapped spare
// (one generation bump, no boot) or by a cold re-placement that pays the
// full launch/init/publish path. RunHotspot is the `rpexp -exp hotspot`
// table pair.

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/spec"
)

// HotspotConfig parameterizes the hotspot-balancing ablation.
type HotspotConfig struct {
	// Requests is the offered arrival count per balancer point.
	Requests int
	// Rate is the mean arrival rate in requests per second. The default
	// drives the background-loaded backends to ~90% utilization, where
	// blind selection pays for ignoring the skew.
	Rate float64
	// Model is the hosted backend model. The default vit-base has a
	// modelled per-request compute time of a few milliseconds — queueing
	// is what separates the pickers, and the instant noop model never
	// queues.
	Model string
	// MaxTokens bounds generation (the vit-base default keeps requests at
	// ~4ms).
	MaxTokens int
	// Services is the backend fleet size (≥2; default 4).
	Services int
	// HotspotWeight is the probability mass routed through the balancer
	// (the rest hits services 1..N-1 directly as background load).
	HotspotWeight float64
	// Balancers are the picker names compared (default p2c, round-robin,
	// least-loaded).
	Balancers []string
	// Seed drives every stochastic choice; all balancer points replay the
	// identical arrival and targeting schedule.
	Seed uint64
	// Interval is the campaign's time-series bucket width.
	Interval time.Duration
	// Standbys is the warm-standby pool size for the failover half
	// (default 1; negative skips the failover contrast).
	Standbys int
	// Scale is the failover half's clock compression (default 2000). The
	// failover sessions do NOT use FastBoot: the cold path must pay real
	// bootstrap time, that cost is the measurement.
	Scale float64
}

// DefaultHotspotConfig returns the figure-scale parameterization.
func DefaultHotspotConfig() HotspotConfig {
	return HotspotConfig{
		Requests:      16000,
		Rate:          800,
		Model:         "vit-base",
		MaxTokens:     8,
		Services:      4,
		HotspotWeight: 0.8,
		Balancers:     []string{"p2c", "round-robin", "least-loaded"},
		Seed:          11,
		Interval:      time.Second,
		Standbys:      1,
		Scale:         2000,
	}
}

// HotspotRow is one balancer's outcome under the identical skewed stream.
type HotspotRow struct {
	Balancer  string
	Offered   int64
	Completed int64
	Failed    int64
	P50       time.Duration
	P99       time.Duration
	Max       time.Duration
	// SimDuration is the virtual-time makespan; Wall the real time.
	SimDuration time.Duration
	Wall        time.Duration
}

// FailoverRow is one failover mode's outcome for the same pilot kill.
type FailoverRow struct {
	Mode string
	// Latency is the virtual time from the pilot kill to the re-published
	// endpoint the clients can dial.
	Latency time.Duration
	// Generations is how many registry generations the failover cost
	// (warm promotion: exactly 1).
	Generations uint64
	// Promotions and Replacements split the recovery path taken.
	Promotions   int
	Replacements int
}

// Failover modes.
const (
	FailoverWarm = "warm-standby"
	FailoverCold = "cold-replace"
)

// HotspotResult is the ablation dataset.
type HotspotResult struct {
	Cfg      HotspotConfig
	Rows     []HotspotRow
	Failover []FailoverRow
	// Results holds the full campaign results per balancer point.
	Results []*loadgen.Result
}

// RunHotspot executes the ablation: one open-loop campaign per picker on
// the identical seeded schedule, then the warm-vs-cold failover contrast.
func RunHotspot(ctx context.Context, cfg HotspotConfig) (*HotspotResult, error) {
	def := DefaultHotspotConfig()
	if cfg.Requests <= 0 {
		cfg.Requests = def.Requests
	}
	if cfg.Rate <= 0 {
		cfg.Rate = def.Rate
	}
	if cfg.Model == "" {
		cfg.Model = def.Model
	}
	if cfg.MaxTokens <= 0 {
		cfg.MaxTokens = def.MaxTokens
	}
	if cfg.Services <= 0 {
		cfg.Services = def.Services
	}
	if cfg.HotspotWeight <= 0 {
		cfg.HotspotWeight = def.HotspotWeight
	}
	if len(cfg.Balancers) == 0 {
		cfg.Balancers = def.Balancers
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	if cfg.Interval <= 0 {
		cfg.Interval = def.Interval
	}
	if cfg.Scale <= 0 {
		cfg.Scale = def.Scale
	}
	if cfg.Standbys == 0 {
		cfg.Standbys = def.Standbys
	}
	res := &HotspotResult{Cfg: cfg}
	for _, bal := range cfg.Balancers {
		r, err := loadgen.Run(ctx, loadgen.Scenario{
			Name:          "hotspot-" + bal,
			Kind:          loadgen.KindHotspot,
			Requests:      cfg.Requests,
			Rate:          cfg.Rate,
			Model:         cfg.Model,
			MaxTokens:     cfg.MaxTokens,
			Services:      cfg.Services,
			HotspotWeight: cfg.HotspotWeight,
			Balance:       bal,
			Seed:          cfg.Seed,
			Interval:      cfg.Interval,
		})
		if err != nil {
			return res, fmt.Errorf("experiments: hotspot %s: %w", bal, err)
		}
		res.Results = append(res.Results, r)
		res.Rows = append(res.Rows, HotspotRow{
			Balancer:    bal,
			Offered:     r.Offered,
			Completed:   r.Completed,
			Failed:      r.Failed,
			P50:         r.Latency.Quantile(0.50),
			P99:         r.Latency.Quantile(0.99),
			Max:         r.Latency.Max(),
			SimDuration: r.Duration,
			Wall:        r.Wall,
		})
	}
	if cfg.Standbys > 0 {
		for _, mode := range []string{FailoverWarm, FailoverCold} {
			row, err := runHotspotFailover(ctx, cfg, mode)
			if err != nil {
				return res, fmt.Errorf("experiments: hotspot failover %s: %w", mode, err)
			}
			res.Failover = append(res.Failover, row)
		}
	}
	return res, nil
}

// runHotspotFailover measures the virtual-time cost of one pilot kill
// under the given recovery mode. The session deliberately boots without
// FastBoot: a cold re-placement pays the modelled launch/init/publish
// path, a warm promotion pays only the registry publish — the contrast
// IS the bootstrap time the standby pre-paid.
func runHotspotFailover(ctx context.Context, cfg HotspotConfig, mode string) (FailoverRow, error) {
	row := FailoverRow{Mode: mode}
	sess, err := core.NewSession(core.SessionConfig{
		Seed:  cfg.Seed,
		Clock: simtime.NewScaled(cfg.Scale, core.DefaultOrigin),
	})
	if err != nil {
		return row, err
	}
	defer sess.Close()
	sm := sess.ServiceManager()
	p1, err := sess.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 2})
	if err != nil {
		return row, err
	}
	p2, err := sess.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 2})
	if err != nil {
		return row, err
	}
	sm.AddPilot(p1)
	sm.AddPilot(p2)

	d := spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "hot", Cores: 1},
		Model:           "noop",
		ProbeInterval:   time.Hour,
		StartTimeout:    time.Hour,
	}
	if mode == FailoverWarm {
		d.WarmStandbys = cfg.Standbys
	}
	h, err := sm.Submit(d)
	if err != nil {
		return row, err
	}
	if err := sm.WaitReady(ctx, h.UID()); err != nil {
		return row, err
	}
	if mode == FailoverWarm {
		// the spare must be bootstrapped and held before the kill: that
		// pre-payment is what the mode is about
		deadline := time.Now().Add(60 * time.Second)
		for h.Standbys() < cfg.Standbys {
			if time.Now().After(deadline) {
				return row, fmt.Errorf("standby pool never filled")
			}
			time.Sleep(time.Millisecond)
		}
	}

	var victim = p1
	if h.Pilot() == p2.UID() {
		victim = p2
	}
	reg := sess.EndpointRegistry()
	genBefore := reg.Generation(h.UID())
	t0 := sess.Clock().Now()
	if err := victim.Shutdown(); err != nil {
		return row, err
	}
	waitCtx, cancel := context.WithTimeout(ctx, 120*time.Second)
	defer cancel()
	_, genAfter, err := reg.AwaitNewer(waitCtx, h.UID(), genBefore)
	if err != nil {
		return row, fmt.Errorf("failover re-publication never landed: %w", err)
	}
	row.Latency = sess.Clock().Now().Sub(t0)
	row.Generations = genAfter - genBefore
	row.Promotions = h.Promotions()
	row.Replacements = h.Replacements()
	return row, nil
}

// Table renders the balancer matrix.
func (r *HotspotResult) Table() metrics.Table {
	t := metrics.Table{
		Title: fmt.Sprintf(
			"Hotspot-balancing ablation — %.0f%% skewed mass over %d backends at %.0f req/s, identical seeded stream per picker",
			r.Cfg.HotspotWeight*100, r.Cfg.Services, r.Cfg.Rate),
		Header: []string{"balancer", "offered", "completed", "failed", "p50", "p99", "max", "sim time", "wall"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Balancer,
			fmt.Sprintf("%d", row.Offered),
			fmt.Sprintf("%d", row.Completed),
			fmt.Sprintf("%d", row.Failed),
			fmtDur(row.P50),
			fmtDur(row.P99),
			fmtDur(row.Max),
			fmtDur(row.SimDuration),
			fmtDur(row.Wall))
	}
	return t
}

// FailoverTable renders the warm-vs-cold failover contrast.
func (r *HotspotResult) FailoverTable() metrics.Table {
	t := metrics.Table{
		Title: fmt.Sprintf(
			"Failover cost — hosting pilot killed, %d warm standby vs cold re-bootstrap (virtual time)",
			r.Cfg.Standbys),
		Header: []string{"mode", "failover latency", "generations", "promotions", "replacements"},
	}
	for _, row := range r.Failover {
		t.AddRow(row.Mode,
			fmtDur(row.Latency),
			fmt.Sprintf("%d", row.Generations),
			fmt.Sprintf("%d", row.Promotions),
			fmt.Sprintf("%d", row.Replacements))
	}
	return t
}

package msgq

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/proto"
)

// This file preserves the pre-PR-9 TCP transport verbatim (goroutine per
// request, JSON envelope framing, map-and-mutex pending table) as the
// benchmark baseline for BenchmarkTCPRoundTripSeed. It is not wired into
// sessions; the pooled transport in tcp.go replaced it.

// seedTCPServer is the seed REQ/REP endpoint over real TCP sockets,
// speaking length-prefixed JSON proto frames. Multiple requests may be in
// flight on one connection; replies are matched to requests by envelope ID.
type seedTCPServer struct {
	ln      net.Listener
	handler Handler

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// ListenTCPSeed binds the seed REQ/REP server on addr ("host:port"; ":0"
// picks a free port). Each request runs in its own goroutine. Kept only as
// the pre-PR-9 performance baseline.
func ListenTCPSeed(addr string, h Handler) (Server, error) {
	if h == nil {
		return nil, fmt.Errorf("msgq: listen %s: nil handler", addr)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("msgq: listen %s: %w", addr, err)
	}
	s := &seedTCPServer{ln: ln, handler: h, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr implements Server.
func (s *seedTCPServer) Addr() string { return s.ln.Addr().String() }

// Close implements Server.
func (s *seedTCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *seedTCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *seedTCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	var wmu sync.Mutex // serialize frame writes across request goroutines
	for {
		env, err := proto.ReadFrame(conn)
		if err != nil {
			return // io.EOF on clean close; any error tears the conn down
		}
		// Handler goroutines are deliberately not tracked by s.wg: Close
		// must not block on a stuck handler. The closed connection makes
		// their reply writes fail harmlessly.
		go func(env proto.Envelope) {
			reply := s.handler(env)
			reply.ID = env.ID // replies are matched by request ID
			wmu.Lock()
			err := proto.WriteFrame(conn, reply)
			wmu.Unlock()
			if err != nil {
				_ = conn.Close()
			}
		}(env)
	}
}

// seedTCPClient is the seed REQ/REP client over one TCP connection with an
// ID-matched reply mux, allowing concurrent Request calls.
type seedTCPClient struct {
	conn net.Conn

	wmu sync.Mutex // frame write serialization

	mu      sync.Mutex
	closed  bool
	nextID  uint64
	pending map[uint64]chan proto.Envelope
	readErr error
}

// DialTCPSeed connects to a seed TCP server. Kept only as the pre-PR-9
// performance baseline.
func DialTCPSeed(addr string) (Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("msgq: dial %s: %w", addr, err)
	}
	c := &seedTCPClient{conn: conn, pending: make(map[uint64]chan proto.Envelope)}
	go c.readLoop()
	return c, nil
}

func (c *seedTCPClient) readLoop() {
	for {
		env, err := proto.ReadFrame(c.conn)
		if err != nil {
			c.mu.Lock()
			if c.readErr == nil {
				if err == io.EOF {
					err = ErrClosed
				}
				c.readErr = err
			}
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[env.ID]
		if ok {
			delete(c.pending, env.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- env
		}
	}
}

// Request implements Client. The envelope's ID field is overwritten with a
// connection-unique sequence number.
func (c *seedTCPClient) Request(ctx context.Context, env proto.Envelope) (proto.Envelope, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return proto.Envelope{}, ErrClosed
	}
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return proto.Envelope{}, err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan proto.Envelope, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	env.ID = id
	c.wmu.Lock()
	err := proto.WriteFrame(c.conn, env)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return proto.Envelope{}, fmt.Errorf("msgq: send request: %w", err)
	}

	select {
	case reply, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.readErr
			c.mu.Unlock()
			if err == nil {
				err = ErrClosed
			}
			return proto.Envelope{}, err
		}
		return reply, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return proto.Envelope{}, ctx.Err()
	}
}

// Close implements Client.
func (c *seedTCPClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

package msgq

import (
	"context"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/simtime"
)

var t0 = time.Date(2025, 3, 17, 0, 0, 0, 0, time.UTC)

func echoHandler(env proto.Envelope) proto.Envelope {
	reply := env
	reply.Kind = proto.KindReply
	return reply
}

func newTestNet() *Network {
	return NewNetwork(simtime.NewReal(), rng.New(1), nil)
}

func TestInprocRequestReply(t *testing.T) {
	n := newTestNet()
	defer n.Close()
	if _, err := n.Bind("svc", echoHandler); err != nil {
		t.Fatal(err)
	}
	c, err := n.Dial("client", "svc")
	if err != nil {
		t.Fatal(err)
	}
	env, _ := proto.NewEnvelope(proto.KindRequest, 1, "client", "svc", t0, proto.InferenceRequest{Prompt: "hi"})
	reply, err := c.Request(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Kind != proto.KindReply || reply.From != "client" {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestInprocDialUnknownAddr(t *testing.T) {
	n := newTestNet()
	defer n.Close()
	if _, err := n.Dial("client", "nope"); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("err = %v, want ErrUnknownAddr", err)
	}
}

func TestInprocDoubleBind(t *testing.T) {
	n := newTestNet()
	defer n.Close()
	if _, err := n.Bind("svc", echoHandler); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Bind("svc", echoHandler); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("err = %v, want ErrAddrInUse", err)
	}
}

func TestInprocNilHandler(t *testing.T) {
	n := newTestNet()
	defer n.Close()
	if _, err := n.Bind("svc", nil); err == nil {
		t.Fatal("Bind accepted nil handler")
	}
}

func TestInprocServerCloseFreesAddr(t *testing.T) {
	n := newTestNet()
	defer n.Close()
	s, _ := n.Bind("svc", echoHandler)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
	if _, err := n.Bind("svc", echoHandler); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestInprocRequestAfterServerClose(t *testing.T) {
	n := newTestNet()
	defer n.Close()
	s, _ := n.Bind("svc", echoHandler)
	c, _ := n.Dial("client", "svc")
	_ = s.Close()
	env, _ := proto.NewEnvelope(proto.KindRequest, 1, "client", "svc", t0, struct{}{})
	if _, err := c.Request(context.Background(), env); err == nil {
		t.Fatal("Request succeeded against closed server")
	}
}

func TestInprocClientClose(t *testing.T) {
	n := newTestNet()
	defer n.Close()
	_, _ = n.Bind("svc", echoHandler)
	c, _ := n.Dial("client", "svc")
	_ = c.Close()
	env, _ := proto.NewEnvelope(proto.KindRequest, 1, "client", "svc", t0, struct{}{})
	if _, err := c.Request(context.Background(), env); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestInprocContextCancellation(t *testing.T) {
	n := newTestNet()
	defer n.Close()
	block := make(chan struct{})
	_, _ = n.Bind("slow", func(env proto.Envelope) proto.Envelope {
		<-block
		return env
	})
	defer close(block)
	c, _ := n.Dial("client", "slow")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	env, _ := proto.NewEnvelope(proto.KindRequest, 1, "client", "slow", t0, struct{}{})
	if _, err := c.Request(ctx, env); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestInprocCancellableSlowPathCompletes pins the asynchronous REQ/REP
// path: a cancellable context routes the round trip through the helper
// goroutine instead of the inline fast path, and an uncancelled request
// must still return the same reply, pay the same modelled link latency,
// and leave the client reusable. This is the path every client task in
// the experiment harness takes (task contexts are cancellable), so it
// must stay pinned before any future inline-cancellation rework.
func TestInprocCancellableSlowPathCompletes(t *testing.T) {
	resolve := func(from, to string) LinkProfile {
		return LinkProfile{Latency: rng.ConstDuration(5 * time.Millisecond)}
	}
	n := NewNetwork(simtime.NewReal(), rng.New(1), resolve)
	defer n.Close()
	_, _ = n.Bind("svc", echoHandler)
	c, _ := n.Dial("client", "svc")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if ctx.Done() == nil {
		t.Fatal("test context is not cancellable; would exercise the fast path")
	}
	env, _ := proto.NewEnvelope(proto.KindRequest, 1, "client", "svc", t0, proto.InferenceRequest{Prompt: "slow path"})
	start := time.Now()
	reply, err := c.Request(ctx, env)
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 9*time.Millisecond {
		t.Fatalf("round trip took %v, want >= ~10ms: slow path skipped the link model", el)
	}
	// The reply must be byte-identical to the fast path's.
	fast, err := c.Request(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := reply.WireBody()
	fb, _ := fast.WireBody()
	if reply.Kind != fast.Kind || reply.From != fast.From || string(rb) != string(fb) {
		t.Fatalf("slow-path reply %+v differs from fast-path reply %+v", reply, fast)
	}
	// Cancelling after completion must not poison later requests.
	cancel()
	if _, err := c.Request(context.Background(), env); err != nil {
		t.Fatalf("request after cancelled predecessor: %v", err)
	}
}

// TestInprocCancellableConcurrentCompletes floods the slow path from many
// goroutines under one shared cancellable (never cancelled) context —
// the experiment harness shape — and every request must complete.
func TestInprocCancellableConcurrentCompletes(t *testing.T) {
	n := newTestNet()
	defer n.Close()
	_, _ = n.Bind("svc", echoHandler)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const clients, perClient = 16, 32
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := n.Dial("client", "svc")
			if err != nil {
				errs <- err
				return
			}
			env, _ := proto.NewEnvelope(proto.KindRequest, 1, "client", "svc", t0, struct{}{})
			for j := 0; j < perClient; j++ {
				if _, err := c.Request(ctx, env); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestInprocLatencyInjection(t *testing.T) {
	// With a 5ms one-way latency, a round trip on the real clock must take
	// at least ~10ms.
	resolve := func(from, to string) LinkProfile {
		return LinkProfile{Latency: rng.ConstDuration(5 * time.Millisecond)}
	}
	n := NewNetwork(simtime.NewReal(), rng.New(1), resolve)
	defer n.Close()
	_, _ = n.Bind("svc", echoHandler)
	c, _ := n.Dial("client", "svc")
	env, _ := proto.NewEnvelope(proto.KindRequest, 1, "client", "svc", t0, struct{}{})
	start := time.Now()
	if _, err := c.Request(context.Background(), env); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 9*time.Millisecond {
		t.Fatalf("round trip took %v, want >= ~10ms with injected latency", el)
	}
}

func TestInprocBandwidthModel(t *testing.T) {
	// 1 KiB/s bandwidth: a ~1 KiB body should add ~1s per hop on a scaled
	// clock (1000x: ~1ms real per hop).
	resolve := func(from, to string) LinkProfile {
		return LinkProfile{BytesPerSec: 1024}
	}
	n := NewNetwork(simtime.NewScaled(1000, t0), rng.New(1), resolve)
	defer n.Close()
	_, _ = n.Bind("svc", echoHandler)
	c, _ := n.Dial("client", "svc")
	big := make([]byte, 1024)
	for i := range big {
		big[i] = 'a'
	}
	env, _ := proto.NewEnvelope(proto.KindRequest, 1, "client", "svc", t0, string(big))
	start := time.Now()
	if _, err := c.Request(context.Background(), env); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < time.Millisecond {
		t.Fatalf("bandwidth-limited round trip took %v real, want >= ~2ms", el)
	}
}

func TestInprocConcurrentRequests(t *testing.T) {
	n := newTestNet()
	defer n.Close()
	var mu sync.Mutex
	seen := map[uint64]bool{}
	_, _ = n.Bind("svc", func(env proto.Envelope) proto.Envelope {
		mu.Lock()
		seen[env.ID] = true
		mu.Unlock()
		return echoHandler(env)
	})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := n.Dial("client", "svc")
			if err != nil {
				t.Error(err)
				return
			}
			env, _ := proto.NewEnvelope(proto.KindRequest, uint64(i), "client", "svc", t0, struct{}{})
			if _, err := c.Request(context.Background(), env); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 32 {
		t.Fatalf("server saw %d distinct requests, want 32", len(seen))
	}
}

func TestNetworkCloseShutsEndpoints(t *testing.T) {
	n := newTestNet()
	_, _ = n.Bind("svc", echoHandler)
	_, _ = n.BindPub("pub")
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Bind("svc2", echoHandler); !errors.Is(err, ErrClosed) {
		t.Fatalf("Bind after Close: %v", err)
	}
	if _, err := n.Dial("c", "svc"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Dial after Close: %v", err)
	}
	if err := n.Close(); err != nil {
		t.Fatal("double Close errored:", err)
	}
}

func TestPubSubTopicFiltering(t *testing.T) {
	n := newTestNet()
	defer n.Close()
	p, err := n.BindPub("updates")
	if err != nil {
		t.Fatal(err)
	}
	subA, _ := n.Subscribe("a", "updates", 8, "task")
	subAll, _ := n.Subscribe("b", "updates", 8)
	env, _ := proto.NewEnvelope(proto.KindStateUpdate, 1, "updater", "", t0, proto.StateUpdate{State: "DONE"})
	p.Publish("task", env)
	p.Publish("service", env)

	recvN := func(sub *Subscription, want int) int {
		got := 0
		deadline := time.After(2 * time.Second)
		for got < want {
			select {
			case <-sub.C:
				got++
			case <-deadline:
				return got
			}
		}
		// drain any extra
		select {
		case <-sub.C:
			got++
		case <-time.After(50 * time.Millisecond):
		}
		return got
	}
	if got := recvN(subAll, 2); got != 2 {
		t.Fatalf("all-topics subscriber got %d messages, want 2", got)
	}
	if got := recvN(subA, 1); got != 1 {
		t.Fatalf("topic subscriber got %d messages, want 1", got)
	}
}

func TestPubSubCancel(t *testing.T) {
	n := newTestNet()
	defer n.Close()
	p, _ := n.BindPub("updates")
	sub, _ := n.Subscribe("a", "updates", 8)
	sub.Cancel()
	sub.Cancel() // idempotent
	if _, ok := <-sub.C; ok {
		t.Fatal("cancelled subscription channel not closed")
	}
	env, _ := proto.NewEnvelope(proto.KindStateUpdate, 1, "u", "", t0, struct{}{})
	p.Publish("x", env) // must not panic
}

func TestPubSubSubscribeUnknown(t *testing.T) {
	n := newTestNet()
	defer n.Close()
	if _, err := n.Subscribe("a", "nope", 1); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("err = %v, want ErrUnknownAddr", err)
	}
}

func TestPubSubPublisherClose(t *testing.T) {
	n := newTestNet()
	defer n.Close()
	p, _ := n.BindPub("updates")
	sub, _ := n.Subscribe("a", "updates", 1)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.C; ok {
		t.Fatal("subscriber channel not closed on publisher close")
	}
	if _, err := n.BindPub("updates"); err != nil {
		t.Fatalf("rebind pub after close: %v", err)
	}
}

func TestTCPRequestReply(t *testing.T) {
	s, err := ListenTCP("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := DialTCP(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	env, _ := proto.NewEnvelope(proto.KindRequest, 0, "client", "svc", t0, proto.InferenceRequest{Prompt: "over tcp"})
	reply, err := c.Request(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	var body proto.InferenceRequest
	if err := reply.Decode(proto.KindReply, &body); err != nil {
		t.Fatal(err)
	}
	if body.Prompt != "over tcp" {
		t.Fatalf("echoed prompt = %q", body.Prompt)
	}
}

func TestTCPConcurrentRequestsMuxed(t *testing.T) {
	// One connection, many in-flight requests with varying handler delays:
	// the ID mux must route every reply to its caller.
	s, err := ListenTCP("127.0.0.1:0", func(env proto.Envelope) proto.Envelope {
		time.Sleep(time.Duration(env.ID%5) * time.Millisecond)
		return echoHandler(env)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := DialTCP(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := proto.InferenceRequest{RequestUID: string(rune('A' + i%26))}
			env, _ := proto.NewEnvelope(proto.KindRequest, 0, "c", "s", t0, body)
			reply, err := c.Request(context.Background(), env)
			if err != nil {
				t.Error(err)
				return
			}
			var got proto.InferenceRequest
			if err := reply.Decode(proto.KindReply, &got); err != nil {
				t.Error(err)
				return
			}
			if got.RequestUID != body.RequestUID {
				t.Errorf("reply crossed: got %q want %q", got.RequestUID, body.RequestUID)
			}
		}(i)
	}
	wg.Wait()
}

func TestTCPServerCloseUnblocksClients(t *testing.T) {
	block := make(chan struct{})
	s, _ := ListenTCP("127.0.0.1:0", func(env proto.Envelope) proto.Envelope {
		<-block
		return env
	})
	c, _ := DialTCP(s.Addr())
	defer c.Close()
	errc := make(chan error, 1)
	go func() {
		env, _ := proto.NewEnvelope(proto.KindRequest, 0, "c", "s", t0, struct{}{})
		_, err := c.Request(context.Background(), env)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the request reach the handler
	close(block)
	_ = s.Close()
	select {
	case <-errc:
		// either a reply (if the handler won the race) or an error is fine;
		// the point is the client does not hang.
	case <-time.After(5 * time.Second):
		t.Fatal("client hung after server close")
	}
}

func TestTCPClientCloseRejectsRequests(t *testing.T) {
	s, _ := ListenTCP("127.0.0.1:0", echoHandler)
	defer s.Close()
	c, _ := DialTCP(s.Addr())
	_ = c.Close()
	_ = c.Close() // idempotent
	env, _ := proto.NewEnvelope(proto.KindRequest, 0, "c", "s", t0, struct{}{})
	if _, err := c.Request(context.Background(), env); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestTCPDialFailure(t *testing.T) {
	if _, err := DialTCP("127.0.0.1:1"); err == nil {
		t.Fatal("DialTCP to dead port succeeded")
	}
}

func TestTCPContextCancellation(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	s, _ := ListenTCP("127.0.0.1:0", func(env proto.Envelope) proto.Envelope {
		<-block
		return env
	})
	defer s.Close()
	c, _ := DialTCP(s.Addr())
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	env, _ := proto.NewEnvelope(proto.KindRequest, 0, "c", "s", t0, struct{}{})
	if _, err := c.Request(ctx, env); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestInprocEchoProperty(t *testing.T) {
	n := newTestNet()
	defer n.Close()
	_, _ = n.Bind("svc", echoHandler)
	c, _ := n.Dial("client", "svc")
	f := func(prompt string, id uint64) bool {
		env, err := proto.NewEnvelope(proto.KindRequest, id, "client", "svc", t0, proto.InferenceRequest{Prompt: prompt})
		if err != nil {
			return false
		}
		reply, err := c.Request(context.Background(), env)
		if err != nil {
			return false
		}
		var got proto.InferenceRequest
		return reply.Decode(proto.KindReply, &got) == nil && got.Prompt == prompt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
